// Command vaxsim boots MiniOS on a bare simulated VAX (standard or
// modified architecture) and runs a chosen workload to completion,
// printing the console output and machine statistics.
//
// Usage:
//
//	vaxsim [-variant standard|modified] [-workload mix|compute|syscall|tp|paging] [-procs N] [-preempt]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cpu"
	"repro/internal/vmos"
	"repro/internal/workload"
)

// buildProcesses maps a workload name to a process set.
func buildProcesses(name string, procs int) ([]vmos.Process, error) {
	if procs < 1 {
		procs = 1
	}
	out := make([]vmos.Process, 0, procs)
	for i := 0; i < procs; i++ {
		switch name {
		case "mix":
			return workload.Mix(25, 12, 16), nil
		case "compute":
			out = append(out, workload.Compute(5000))
		case "syscall":
			out = append(out, workload.Syscall(500))
		case "tp":
			out = append(out, workload.TP(10, 16))
		case "paging":
			out = append(out, workload.PageStress(10, true))
		case "calls":
			out = append(out, workload.CallHeavy(50, 8))
		default:
			return nil, fmt.Errorf("unknown workload %q", name)
		}
	}
	return out, nil
}

func main() {
	variant := flag.String("variant", "standard", "processor variant: standard or modified")
	wl := flag.String("workload", "mix", "workload: mix, compute, syscall, tp, paging, calls")
	procs := flag.Int("procs", 2, "number of processes (ignored for mix)")
	preempt := flag.Bool("preempt", true, "preemptive scheduling")
	maxSteps := flag.Uint64("max-steps", 500_000_000, "step budget")
	flag.Parse()

	v := cpu.StandardVAX
	switch *variant {
	case "standard":
	case "modified":
		v = cpu.ModifiedVAX
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(2)
	}

	ps, err := buildProcesses(*wl, *procs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	im, err := vmos.Build(vmos.Config{Target: vmos.TargetBare, Processes: ps, Preempt: *preempt})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ma, err := vmos.BootBare(im, v, 64)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i := range ma.Disk.Image() {
		ma.Disk.Image()[i] = byte(i)
	}
	if !ma.Run(*maxSteps) {
		fmt.Fprintf(os.Stderr, "did not halt within %d steps (pc=%#x)\n", *maxSteps, ma.CPU.PC())
		os.Exit(1)
	}

	fmt.Printf("MiniOS on the %s completed.\n\n", v)
	if out := ma.Console.Output(); out != "" {
		fmt.Printf("console: %q\n", out)
	}
	fmt.Printf("cycles:            %d\n", ma.CPU.Cycles)
	fmt.Printf("instructions:      %d\n", ma.CPU.Stats.Instructions)
	fmt.Printf("system calls:      %d\n", ma.ReadCell("syscalls"))
	fmt.Printf("context switches:  %d\n", ma.ReadCell("switches"))
	fmt.Printf("page faults:       %d\n", ma.ReadCell("faults"))
	fmt.Printf("disk operations:   %d\n", ma.ReadCell("ioops"))
	fmt.Printf("clock ticks:       %d\n", ma.ReadCell("ticks"))
	fmt.Printf("exceptions:        %d (interrupts %d)\n",
		ma.CPU.Stats.Exceptions, ma.CPU.Stats.Interrupts)
	fmt.Printf("TLB hits/misses:   %d/%d\n", ma.CPU.MMU.Stats.TLBHits, ma.CPU.MMU.Stats.TLBMisses)
}
