// Command experiments regenerates every table and figure of the paper
// and every quantitative claim of its evaluation, printing paper-versus-
// measured comparisons.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run E4    # run one experiment
//	experiments -list      # list experiment IDs
//	experiments -md        # emit Markdown (the body of EXPERIMENTS.md)
//	experiments -cpuprofile cpu.pprof -run E6   # profile the hot path
//	experiments -faults -seeds 16 -seedbase 100 # fault campaign only
//	experiments -recover -seeds 8               # recovery campaign only
//	experiments -parallel -vms 1,2,4,8          # multi-VM engine scaling
//	experiments -density -vms 64,256,1024       # mostly-idle fleet density
//	experiments -clone -vms 64,256,1024         # COW-clone fleet bring-up vs full boots
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/exp"
	"repro/internal/monitor"
)

func main() {
	os.Exit(run())
}

// run carries the real main so deferred profile writers execute before
// the process exits (os.Exit in main would skip them).
func run() int {
	runID := flag.String("run", "", "run a single experiment by ID (e.g. T1, F2, E4)")
	list := flag.Bool("list", false, "list experiments")
	md := flag.Bool("md", false, "emit Markdown")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	faults := flag.Bool("faults", false, "run only the fault-injection campaign (E10) with -seeds/-seedbase")
	recoverFlag := flag.Bool("recover", false, "run only the recovery campaign (E11) with -seeds/-seedbase")
	seeds := flag.Int("seeds", 8, "number of campaign seeds (with -faults)")
	seedbase := flag.Int64("seedbase", 1, "first campaign seed (with -faults)")
	parallel := flag.Bool("parallel", false, "measure the parallel multi-VM engine against the serial engine (wall-clock, not deterministic)")
	density := flag.Bool("density", false, "measure mostly-idle fleet density on a small worker pool (wall-clock, not deterministic)")
	clone := flag.Bool("clone", false, "measure COW-clone fleet bring-up against full boots (wall-clock, not deterministic)")
	vmsFlag := flag.String("vms", "", "comma-separated fleet sizes (with -parallel, -density or -clone)")
	workersFlag := flag.Int("workers", 0, "worker goroutines for the parallel engine; 0 = one per VM with -parallel, 8 with -density/-clone")
	traceCap := flag.Int("trace", exp.RecorderCap,
		"flight-recorder ring capacity per VM; 0 disables tracing (also VAX_TRACE)")
	translate := flag.Bool("translate", exp.Translation,
		"enable the hot-trace superblock translation tier (also VAX_TRANSLATE)")
	soak := flag.Bool("soak", false, "run the fleet-API soak: concurrent HTTP-driven VM lifecycles with leak and latency gates")
	lifecycles := flag.Int("lifecycles", 2000, "total VM lifecycles (with -soak)")
	clients := flag.Int("clients", 8, "concurrent API clients (with -soak)")
	tenants := flag.Int("tenants", 4, "tenants the lifecycles spread across (with -soak)")
	flag.Parse()
	exp.RecorderCap = *traceCap
	exp.Translation = *translate

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, s := range exp.All() {
			fmt.Printf("%-4s %s\n", s.ID, s.Title)
		}
		return 0
	}

	if *soak {
		rep, err := monitor.Soak(monitor.SoakOptions{
			Lifecycles: *lifecycles,
			Clients:    *clients,
			Tenants:    *tenants,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak: %v\n", err)
			return 2
		}
		fmt.Println(rep)
		if rep.Errors > 0 || rep.Leaked() {
			fmt.Fprintln(os.Stderr, "soak failed: lifecycle errors or leaked VMs/pages")
			return 1
		}
		return 0
	}

	if *parallel || *density || *clone {
		fleets, err := parseFleets(*vmsFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-vms: %v\n", err)
			return 2
		}
		var r *exp.Result
		switch {
		case *clone:
			r, err = exp.CloneDensity(fleets, *workersFlag)
		case *density:
			r, err = exp.ParallelDensity(fleets, *workersFlag)
		default:
			r, err = exp.ParallelScaling(fleets, *workersFlag)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "parallel scaling: %v\n", err)
			return 2
		}
		if *md {
			printMarkdown(r)
		} else {
			fmt.Println(r.Format())
		}
		return 0
	}

	if *faults || *recoverFlag {
		name, campaign := "fault campaign", exp.FaultCampaign
		if *recoverFlag {
			name, campaign = "recovery campaign", exp.RecoveryCampaign
		}
		r, err := campaign(exp.DefaultCampaignSeeds(*seeds, *seedbase))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			return 2
		}
		if *md {
			printMarkdown(r)
		} else {
			fmt.Println(r.Format())
		}
		if !r.Match {
			fmt.Fprintln(os.Stderr, name+" failed")
			return 1
		}
		return 0
	}

	specs := exp.All()
	if *runID != "" {
		s, ok := exp.ByID(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *runID)
			return 2
		}
		specs = []exp.Spec{s}
	}

	failed := 0
	for _, s := range specs {
		r, err := s.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.ID, err)
			failed++
			continue
		}
		if *md {
			printMarkdown(r)
		} else {
			fmt.Println(r.Format())
		}
		if r.PaperClaim != "" && !r.Match {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failed)
		return 1
	}
	return 0
}

// parseFleets parses the -vms list ("1,2,4,8") into fleet sizes.
func parseFleets(s string) ([]int, error) {
	var fleets []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(part, "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("bad fleet size %q", part)
		}
		fleets = append(fleets, n)
	}
	return fleets, nil
}

func printMarkdown(r *exp.Result) {
	fmt.Printf("## %s — %s\n\n", r.ID, r.Title)
	if len(r.Headers) > 0 {
		fmt.Printf("| %s |\n", strings.Join(r.Headers, " | "))
		sep := make([]string, len(r.Headers))
		for i := range sep {
			sep[i] = "---"
		}
		fmt.Printf("| %s |\n", strings.Join(sep, " | "))
		for _, row := range r.Rows {
			fmt.Printf("| %s |\n", strings.Join(row, " | "))
		}
		fmt.Println()
	}
	for _, n := range r.Notes {
		fmt.Printf("- _%s_\n", n)
	}
	if r.PaperClaim != "" {
		status := "**holds**"
		if !r.Match {
			status = "**does not hold**"
		}
		fmt.Printf("\n- paper: %s\n- measured: %s — shape %s\n", r.PaperClaim, r.Measured, status)
	}
	fmt.Println()
}
