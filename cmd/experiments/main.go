// Command experiments regenerates every table and figure of the paper
// and every quantitative claim of its evaluation, printing paper-versus-
// measured comparisons.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run E4    # run one experiment
//	experiments -list      # list experiment IDs
//	experiments -md        # emit Markdown (the body of EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	runID := flag.String("run", "", "run a single experiment by ID (e.g. T1, F2, E4)")
	list := flag.Bool("list", false, "list experiments")
	md := flag.Bool("md", false, "emit Markdown")
	flag.Parse()

	if *list {
		for _, s := range exp.All() {
			fmt.Printf("%-4s %s\n", s.ID, s.Title)
		}
		return
	}

	specs := exp.All()
	if *runID != "" {
		s, ok := exp.ByID(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *runID)
			os.Exit(2)
		}
		specs = []exp.Spec{s}
	}

	failed := 0
	for _, s := range specs {
		r, err := s.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.ID, err)
			failed++
			continue
		}
		if *md {
			printMarkdown(r)
		} else {
			fmt.Println(r.Format())
		}
		if r.PaperClaim != "" && !r.Match {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

func printMarkdown(r *exp.Result) {
	fmt.Printf("## %s — %s\n\n", r.ID, r.Title)
	if len(r.Headers) > 0 {
		fmt.Printf("| %s |\n", strings.Join(r.Headers, " | "))
		sep := make([]string, len(r.Headers))
		for i := range sep {
			sep[i] = "---"
		}
		fmt.Printf("| %s |\n", strings.Join(sep, " | "))
		for _, row := range r.Rows {
			fmt.Printf("| %s |\n", strings.Join(row, " | "))
		}
		fmt.Println()
	}
	for _, n := range r.Notes {
		fmt.Printf("- _%s_\n", n)
	}
	if r.PaperClaim != "" {
		status := "**holds**"
		if !r.Match {
			status = "**does not hold**"
		}
		fmt.Printf("\n- paper: %s\n- measured: %s — shape %s\n", r.PaperClaim, r.Measured, status)
	}
	fmt.Println()
}
