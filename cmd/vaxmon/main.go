// Command vaxmon is an interactive monitor (debugger) for the simulated
// VAX: it boots MiniOS — bare or inside a VM — and drops into a command
// loop with stepping, breakpoints, disassembly and memory inspection.
//
// Usage:
//
//	vaxmon                  # MiniOS on a bare standard VAX
//	vaxmon -vm              # MiniOS in a virtual machine under the VMM
//	vaxmon -workload tp
//
// Try: help, dis, step 20, break chmk_h, continue, regs, stat.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/monitor"
	"repro/internal/vmos"
	"repro/internal/workload"
)

func main() {
	inVM := flag.Bool("vm", false, "run MiniOS inside a virtual machine")
	wl := flag.String("workload", "mix", "workload: mix, compute, syscall, tp, paging")
	flag.Parse()

	var procs []vmos.Process
	switch *wl {
	case "mix":
		procs = workload.Mix(5, 3, 8)
	case "compute":
		procs = []vmos.Process{workload.Compute(1000)}
	case "syscall":
		procs = []vmos.Process{workload.Syscall(100)}
	case "tp":
		procs = []vmos.Process{workload.TP(5, 8)}
	case "paging":
		procs = []vmos.Process{workload.PageStress(5, true)}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	target := vmos.TargetBare
	if *inVM {
		target = vmos.TargetVM
	}
	im, err := vmos.Build(vmos.Config{Target: target, Processes: procs})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var mon *monitor.Monitor
	if *inVM {
		k := core.New(16<<20, core.Config{})
		if _, err := vmos.BootVM(k, im, 16); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		k.Run(1) // enter the VM so PC/PSL show guest state
		mon = monitor.New(k.CPU)
		mon.VMM = k
	} else {
		ma, err := vmos.BootBare(im, cpu.StandardVAX, 16)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		mon = monitor.New(ma.CPU)
	}
	mon.Symbols = im.Kernel.Symbols

	fmt.Printf("MiniOS monitor — %s, %d process(es). Type help.\n", target, len(procs))
	fmt.Println(must(mon, "dis"))
	in := bufio.NewScanner(os.Stdin)
	fmt.Print("vax> ")
	for in.Scan() {
		out, quit := mon.Execute(in.Text())
		if quit {
			return
		}
		if out != "" {
			fmt.Println(out)
		}
		fmt.Print("vax> ")
	}
}

func must(m *monitor.Monitor, cmd string) string {
	out, _ := m.Execute(cmd)
	return out
}
