// Command vaxmon is an interactive monitor (debugger) for the simulated
// VAX: it boots MiniOS — bare or inside a VM — and drops into a command
// loop with stepping, breakpoints, disassembly and memory inspection.
// In -vm mode it also carries the fleet control plane: lifecycle
// commands on the REPL, and the same commands over HTTP with -http.
//
// Usage:
//
//	vaxmon                  # MiniOS on a bare standard VAX
//	vaxmon -vm              # MiniOS in a virtual machine under the VMM
//	vaxmon -vm -trace 8192  # with a larger flight-recorder ring
//	vaxmon -vm -http :9110  # serve the fleet API, /metrics, /metrics.json
//	vaxmon -vm -http :9110 -serve   # and drive the fleet in the background
//	vaxmon -workload tp
//
// Try: help, dis, step 20, break chmk_h, continue, regs, stat, trace,
// hist, create, clone 1, snapshot 1, fleet.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fleet"
	"repro/internal/monitor"
	"repro/internal/trace"
	"repro/internal/vmos"
	"repro/internal/workload"
)

func main() {
	inVM := flag.Bool("vm", false, "run MiniOS inside a virtual machine")
	wl := flag.String("workload", "mix", "workload: mix, compute, syscall, tp, paging")
	traceCap := flag.Int("trace", 4096,
		"flight-recorder ring capacity per VM in -vm mode; 0 disables tracing")
	httpAddr := flag.String("http", "",
		"serve the fleet API (/v1), Prometheus (/metrics) and JSON (/metrics.json) on this address")
	translate := flag.Bool("translate", false,
		"enable the hot-trace superblock translation tier")
	serve := flag.Bool("serve", false,
		"drive the fleet continuously in the background (for API-driven use)")
	flag.Parse()

	var procs []vmos.Process
	switch *wl {
	case "mix":
		procs = workload.Mix(5, 3, 8)
	case "compute":
		procs = []vmos.Process{workload.Compute(1000)}
	case "syscall":
		procs = []vmos.Process{workload.Syscall(100)}
	case "tp":
		procs = []vmos.Process{workload.TP(5, 8)}
	case "paging":
		procs = []vmos.Process{workload.PageStress(5, true)}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	target := vmos.TargetBare
	if *inVM {
		target = vmos.TargetVM
	}
	im, err := vmos.Build(vmos.Config{Target: target, Processes: procs})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var mon *monitor.Monitor
	if *inVM {
		var opts []core.Option
		if *traceCap > 0 {
			opts = append(opts, core.WithRecorder(trace.NewRecorder(*traceCap)))
		}
		opts = append(opts, core.WithTranslation(*translate))
		k := core.New(16<<20, core.Config{}, opts...)
		if _, err := vmos.BootVM(k, im, 16); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		k.Run(1) // enter the VM so PC/PSL show guest state
		mon = monitor.New(k.CPU)
		mon.VMM = k
		mon.Fleet = fleet.NewManager(k, fleet.Config{})
	} else {
		ma, err := vmos.BootBare(im, cpu.StandardVAX, 16)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ma.CPU.EnableTranslation(*translate)
		mon = monitor.New(ma.CPU)
	}
	mon.Symbols = im.Kernel.Symbols

	// mu serializes the REPL against the HTTP handlers and the fleet
	// drive loop: the machine is single-threaded, so an API call must
	// never observe (or race with) a step in progress.
	var mu sync.Mutex
	if *httpAddr != "" {
		handler := monitor.APIHandler(mon, &mu)
		go func() {
			if err := http.ListenAndServe(*httpAddr, handler); err != nil {
				fmt.Fprintln(os.Stderr, "http:", err)
			}
		}()
		fmt.Printf("fleet API on http://%s/v1, metrics on /metrics and /metrics.json\n", *httpAddr)
	}
	if *serve && mon.Fleet != nil {
		mon.Fleet.Start(&mu)
		defer mon.Fleet.Stop()
	}

	fmt.Printf("MiniOS monitor — %s, %d process(es). Type help.\n", target, len(procs))
	fmt.Println(must(mon, "dis", &mu))
	in := bufio.NewScanner(os.Stdin)
	fmt.Print("vax> ")
	for in.Scan() {
		mu.Lock()
		out, quit := mon.Execute(in.Text())
		mu.Unlock()
		if quit {
			return
		}
		if out != "" {
			fmt.Println(out)
		}
		fmt.Print("vax> ")
	}
}

func must(m *monitor.Monitor, cmd string, mu *sync.Mutex) string {
	mu.Lock()
	defer mu.Unlock()
	out, _ := m.Execute(cmd)
	return out
}
