// Command vaxmon is an interactive monitor (debugger) for the simulated
// VAX: it boots MiniOS — bare or inside a VM — and drops into a command
// loop with stepping, breakpoints, disassembly and memory inspection.
//
// Usage:
//
//	vaxmon                  # MiniOS on a bare standard VAX
//	vaxmon -vm              # MiniOS in a virtual machine under the VMM
//	vaxmon -vm -trace 8192  # with a larger flight-recorder ring
//	vaxmon -vm -http :9110  # serve /metrics and /metrics.json
//	vaxmon -workload tp
//
// Try: help, dis, step 20, break chmk_h, continue, regs, stat, trace, hist.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/monitor"
	"repro/internal/trace"
	"repro/internal/vmos"
	"repro/internal/workload"
)

func main() {
	inVM := flag.Bool("vm", false, "run MiniOS inside a virtual machine")
	wl := flag.String("workload", "mix", "workload: mix, compute, syscall, tp, paging")
	traceCap := flag.Int("trace", 4096,
		"flight-recorder ring capacity per VM in -vm mode; 0 disables tracing")
	httpAddr := flag.String("http", "",
		"serve Prometheus (/metrics) and JSON (/metrics.json) exports on this address")
	translate := flag.Bool("translate", false,
		"enable the hot-trace superblock translation tier")
	flag.Parse()

	var procs []vmos.Process
	switch *wl {
	case "mix":
		procs = workload.Mix(5, 3, 8)
	case "compute":
		procs = []vmos.Process{workload.Compute(1000)}
	case "syscall":
		procs = []vmos.Process{workload.Syscall(100)}
	case "tp":
		procs = []vmos.Process{workload.TP(5, 8)}
	case "paging":
		procs = []vmos.Process{workload.PageStress(5, true)}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	target := vmos.TargetBare
	if *inVM {
		target = vmos.TargetVM
	}
	im, err := vmos.Build(vmos.Config{Target: target, Processes: procs})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var mon *monitor.Monitor
	if *inVM {
		var opts []core.Option
		if *traceCap > 0 {
			opts = append(opts, core.WithRecorder(trace.NewRecorder(*traceCap)))
		}
		if *translate {
			opts = append(opts, core.WithTranslation(true))
		}
		k := core.New(16<<20, core.Config{}, opts...)
		if _, err := vmos.BootVM(k, im, 16); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		k.Run(1) // enter the VM so PC/PSL show guest state
		mon = monitor.New(k.CPU)
		mon.VMM = k
	} else {
		ma, err := vmos.BootBare(im, cpu.StandardVAX, 16)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ma.CPU.EnableTranslation(*translate)
		mon = monitor.New(ma.CPU)
	}
	mon.Symbols = im.Kernel.Symbols

	// mu serializes the REPL against the export handlers: the machine
	// is single-threaded, so an HTTP scrape must never observe (or
	// race with) a step in progress.
	var mu sync.Mutex
	if *httpAddr != "" {
		serveMetrics(*httpAddr, mon, &mu)
	}

	fmt.Printf("MiniOS monitor — %s, %d process(es). Type help.\n", target, len(procs))
	fmt.Println(must(mon, "dis", &mu))
	in := bufio.NewScanner(os.Stdin)
	fmt.Print("vax> ")
	for in.Scan() {
		mu.Lock()
		out, quit := mon.Execute(in.Text())
		mu.Unlock()
		if quit {
			return
		}
		if out != "" {
			fmt.Println(out)
		}
		fmt.Print("vax> ")
	}
}

// sources collects every counter source the machine exposes.
func sources(mon *monitor.Monitor) []trace.Source {
	srcs := []trace.Source{mon.CPU, mon.CPU.MMU}
	if mon.VMM != nil {
		srcs = append(srcs, mon.VMM)
		for _, vm := range mon.VMM.VMs() {
			srcs = append(srcs, vm)
		}
		// The merged totals of the last parallel run carry the scheduler
		// counters (and the worker_occupancy_permille balance ratio) that
		// no per-VM or monitor source exposes.
		if pr := mon.VMM.LastParallelRun(); pr.VMs > 0 {
			srcs = append(srcs, pr)
		}
	}
	return srcs
}

// serveMetrics starts the opt-in export listener.
func serveMetrics(addr string, mon *monitor.Monitor, mu *sync.Mutex) {
	recorder := func() *trace.Recorder {
		if mon.VMM == nil {
			return nil
		}
		return mon.VMM.Recorder()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		trace.WritePrometheus(w, trace.CaptureAll(sources(mon)...), recorder())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if err := trace.WriteJSON(w, trace.CaptureAll(sources(mon)...), recorder()); err != nil {
			fmt.Fprintln(os.Stderr, "metrics.json:", err)
		}
	})
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintln(os.Stderr, "http:", err)
		}
	}()
	fmt.Printf("metrics on http://%s/metrics and /metrics.json\n", addr)
}

func must(m *monitor.Monitor, cmd string, mu *sync.Mutex) string {
	mu.Lock()
	defer mu.Unlock()
	out, _ := m.Execute(cmd)
	return out
}
