// Command vaxdis disassembles VAX machine code: hex bytes given as
// arguments or assembly of a MiniOS kernel for inspection.
//
// Usage:
//
//	vaxdis d0 01 50              # disassemble hex bytes
//	vaxdis -kernel               # disassemble the generated MiniOS kernel
//	echo 'movl #5, r0' | vaxdis -assemble   # assemble then disassemble
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/vmos"
	"repro/internal/workload"
)

func main() {
	kernel := flag.Bool("kernel", false, "disassemble the generated MiniOS kernel")
	assemble := flag.Bool("assemble", false, "read assembly from stdin, assemble, and disassemble")
	base := flag.Uint64("base", 0, "load address for the disassembly")
	flag.Parse()

	switch {
	case *kernel:
		im, err := vmos.Build(vmos.Config{
			Target:    vmos.TargetVM,
			Processes: []vmos.Process{workload.Compute(10)},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, line := range asm.DisassembleAll(im.Kernel.Code, im.Kernel.Origin) {
			fmt.Println(line)
		}
	case *assemble:
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		prog, err := asm.Assemble(string(src), uint32(*base))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, line := range asm.DisassembleAll(prog.Code, prog.Origin) {
			fmt.Println(line)
		}
	default:
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "usage: vaxdis <hex bytes> | -kernel | -assemble")
			os.Exit(2)
		}
		var code []byte
		for _, arg := range flag.Args() {
			for _, tok := range strings.Fields(strings.ReplaceAll(arg, ",", " ")) {
				v, err := strconv.ParseUint(strings.TrimPrefix(tok, "0x"), 16, 8)
				if err != nil {
					fmt.Fprintf(os.Stderr, "bad byte %q: %v\n", tok, err)
					os.Exit(2)
				}
				code = append(code, byte(v))
			}
		}
		for _, line := range asm.DisassembleAll(code, uint32(*base)) {
			fmt.Println(line)
		}
	}
}
