// Command vaxvm runs one or more MiniOS guests under the VAX security
// kernel VMM and reports per-VM and VMM statistics — the virtual-VAX
// counterpart of cmd/vaxsim.
//
// Usage:
//
//	vaxvm [-vms N] [-workload mix|compute|syscall|tp|paging] [-scheme compression|trapall|separate]
//	      [-shadow-slots N] [-prefetch N] [-mmio]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/vmos"
	"repro/internal/workload"
)

func buildProcesses(name string) ([]vmos.Process, error) {
	switch name {
	case "mix":
		return workload.Mix(25, 12, 16), nil
	case "compute":
		return []vmos.Process{workload.Compute(5000), workload.Compute(5000)}, nil
	case "syscall":
		return []vmos.Process{workload.Syscall(500)}, nil
	case "tp":
		return []vmos.Process{workload.TP(10, 16), workload.TP(10, 16)}, nil
	case "paging":
		return []vmos.Process{workload.PageStress(10, true), workload.PageStress(10, false)}, nil
	case "calls":
		return []vmos.Process{workload.CallHeavy(50, 8)}, nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func main() {
	nvms := flag.Int("vms", 2, "number of virtual machines")
	wl := flag.String("workload", "mix", "workload: mix, compute, syscall, tp, paging, calls")
	schemeName := flag.String("scheme", "compression", "ring scheme: compression, trapall, separate")
	slots := flag.Int("shadow-slots", 4, "cached shadow page tables per VM (1 disables the cache)")
	prefetch := flag.Int("prefetch", 1, "shadow PTEs filled per fault")
	mmio := flag.Bool("mmio", false, "emulate memory-mapped I/O instead of KCALL start-I/O")
	preempt := flag.Bool("preempt", true, "preemptive guest scheduling")
	maxSteps := flag.Uint64("max-steps", 1_000_000_000, "step budget")
	audit := flag.Int("audit", 0, "record an audit trail of N events and print its tail")
	table := flag.Bool("table", false, "print per-VM counters as a side-by-side table")
	flag.Parse()

	scheme := core.RingCompression
	switch *schemeName {
	case "compression":
	case "trapall":
		scheme = core.TrapAll
	case "separate":
		scheme = core.SeparateAddressSpace
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}

	procs, err := buildProcesses(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	target := vmos.TargetVM
	if *mmio {
		target = vmos.TargetVMMMIO
	}
	im, err := vmos.Build(vmos.Config{Target: target, Processes: procs, Preempt: *preempt})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	k := core.New(uint32(16+8*(*nvms))<<20, core.Config{},
		core.WithScheme(scheme),
		core.WithShadowCacheSlots(*slots),
		core.WithPrefetchGroup(*prefetch),
		core.WithMMIO(*mmio))
	if *audit > 0 {
		k.EnableAudit(*audit)
	}
	vms := make([]*core.VM, *nvms)
	for i := range vms {
		vm, err := vmos.BootVM(k, im, 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for j := range vm.Disk().Image() {
			vm.Disk().Image()[j] = byte(j)
		}
		vms[i] = vm
	}

	k.Run(*maxSteps)

	fmt.Printf("VMM (%s) ran %d MiniOS guest(s)\n\n", k.Config().Scheme, *nvms)
	allDone := true
	for _, vm := range vms {
		h, msg := vm.Halted()
		status := msg
		if !h {
			status = "still running (step budget exhausted)"
			allDone = false
		}
		fmt.Printf("%s: %s\n", vm.Name(), status)
		fmt.Printf("  uptime ticks %d, console %q\n", vm.Ticks(), vm.ConsoleOutput())
		s := vm.Stats
		fmt.Printf("  traps: %d total — %d CHM, %d REI, %d MTPR-IPL, %d MTPR-other, %d MFPR\n",
			s.VMTraps, s.CHMs, s.REIs, s.MTPRIPL, s.MTPROther, s.MFPRs)
		fmt.Printf("  shadow: %d fills (+%d prefetched), %d clears, cache %d hits / %d misses\n",
			s.ShadowFills, s.PrefetchFills, s.ShadowClears, s.CacheHits, s.CacheMisses)
		fmt.Printf("  memory: %d modify faults, %d reflected faults, %d context switches\n",
			s.ModifyFaults, s.ReflectedFaults, s.ContextSwitches)
		fmt.Printf("  i/o: %d KCALLs, %d MMIO emulations, %d virtual interrupts, %d WAITs\n",
			s.KCALLs, s.MMIOEmuls, s.VirtualIRQs, s.Waits)
	}
	fmt.Printf("\nmachine: %d cycles, %d instructions\n", k.CPU.Cycles, k.CPU.Stats.Instructions)
	fmt.Printf("VMM: %d entries, %d world switches, %d clock ticks, %d deliveries\n",
		k.Stats.VMMEntries, k.Stats.WorldSwitches, k.Stats.ClockTicks, k.Stats.ReflectedTraps)

	if *table {
		snaps := make([]trace.Snapshot, len(vms))
		for i, vm := range vms {
			snaps[i] = trace.Capture(vm)
		}
		fmt.Println()
		fmt.Print(trace.Table(snaps...))
	}
	if *audit > 0 {
		trail := k.AuditTrail()
		fmt.Printf("\naudit trail (%d events, newest last):\n", len(trail))
		start := 0
		if len(trail) > 20 {
			start = len(trail) - 20
		}
		for _, e := range trail[start:] {
			fmt.Println(" ", e)
		}
	}
	if !allDone {
		os.Exit(1)
	}
}
