// Ring compression demo: a guest walks down through all four virtual
// access modes with REI, climbs back up with CHMK, and probes the
// memory-protection blur the paper documents — VM-executive code
// reading a page the guest protected kernel-only (Section 4.3.1).
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro"
)

const guestSource = `
start:	movpsl r1            ; VM kernel
	pushl #0x01400000    ; PSL image: executive
	pushl #exec
	rei
	.align 4
exec:	movpsl r2            ; VM executive
	movl @#0x80004000, r6  ; kernel-only page: the documented blur
	movl #1, r7
	pushl #0x02800000
	pushl #super
	rei
	.align 4
super:	movpsl r3            ; VM supervisor
	pushl #0x03C00000
	pushl #user
	rei
	.align 4
user:	movpsl r4            ; VM user
	chmk #42             ; climb all the way back to the kernel
	.align 4
chmk:	movl (sp)+, r5       ; the CHMK code
	movpsl r8            ; back in VM kernel, previous mode user
	halt
	.align 4
avh:	halt                 ; access violations land here
	.align 4
privh:	halt
`

func main() {
	prog, err := repro.Assemble(guestSource, 0x80001000)
	if err != nil {
		log.Fatal(err)
	}
	img := make([]byte, 64*1024)
	put := func(at, v uint32) { binary.LittleEndian.PutUint32(img[at:], v) }
	for i := uint32(0); i < 64; i++ {
		prot := uint32(4) // UW
		if i == 32 {
			prot = 2 // KW: page 32 (va 0x80004000) is kernel-only
		}
		put(0x200+4*i, 1<<31|prot<<27|1<<26|i)
	}
	copy(img[0x1000:], prog.Code)
	// Guest SCB vectors (VM-physical page 0).
	put(0x40, prog.MustSymbol("chmk")) // CHMK
	put(0x20, prog.MustSymbol("avh"))  // access violation
	put(0x10, prog.MustSymbol("privh"))

	k := repro.NewVMM(8<<20, repro.Config{})
	vm, err := k.CreateVM(repro.VMConfig{
		Name: "rings", MemBytes: 64 * 1024, Image: img,
		StartPC:   prog.MustSymbol("start"),
		PreMapped: true, SBR: 0x200, SLR: 64, SCBB: 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	vm.SPs[repro.Kernel] = 0x80008000
	vm.SPs[repro.Executive] = 0x80007800
	vm.SPs[repro.Supervisor] = 0x80007400
	vm.SPs[repro.User] = 0x80007000

	k.Run(100_000)
	if h, msg := vm.Halted(); !h || msg != "HALT executed in VM kernel mode" {
		log.Fatalf("guest died: halted=%t %s", h, msg)
	}

	c := k.CPU
	fmt.Println("The VM walked through its four access modes:")
	for i, name := range []string{"kernel", "executive", "supervisor", "user"} {
		psl := repro.PSL(c.R[1+i])
		fmt.Printf("  MOVPSL in virtual %-10s -> cur=%s\n", name, psl.Cur())
	}
	fmt.Printf("\nCHMK #%d from user trapped to the VMM and was forwarded to the VM's kernel\n", c.R[5])
	handler := repro.PSL(c.R[8])
	fmt.Printf("handler PSL: cur=%s prv=%s\n", handler.Cur(), handler.Prv())
	fmt.Printf("\nthe documented imperfection (Section 4.3.1):\n")
	fmt.Printf("  VM-executive read a kernel-only (KW) page without a fault: reached=%t\n", c.R[7] == 1)
	fmt.Printf("\nVMM work: %d CHM traps, %d REI emulations, %d shadow fills\n",
		vm.Stats.CHMs, vm.Stats.REIs, vm.Stats.ShadowFills)
}
