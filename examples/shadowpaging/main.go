// Shadow paging demo: watch the VMM's shadow page tables at work.
// A MiniOS guest with demand-paged processes runs under three VMM
// configurations — on-demand fills, the multi-process shadow cache of
// Section 7.2, and the rejected prefetching experiment of Section 4.3.1
// — and the run statistics show why the paper made the choices it made.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func run(name string, cfg repro.Config) {
	im, err := repro.BuildOS(repro.OSConfig{
		Target: repro.TargetVM,
		Processes: []repro.Process{
			workload.PageStress(8, true), // demand paging on
			workload.PageStress(8, false),
			workload.PageStress(8, false),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	k := repro.NewVMM(16<<20, cfg)
	vm, err := repro.BootVM(k, im, 16)
	if err != nil {
		log.Fatal(err)
	}
	k.Run(400_000_000)
	if h, msg := vm.Halted(); !h || msg != "HALT executed in VM kernel mode" {
		log.Fatalf("%s: guest died: %s", name, msg)
	}
	s := vm.Stats
	fmt.Printf("%-28s fills=%4d prefetched=%4d clears=%3d cache=%d/%d modify-faults=%d cycles=%d\n",
		name, s.ShadowFills, s.PrefetchFills, s.ShadowClears,
		s.CacheHits, s.CacheHits+s.CacheMisses, s.ModifyFaults, k.CPU.Cycles)
}

func main() {
	fmt.Println("Three processes touching 16 pages each, 8 rounds, yielding between rounds.")
	fmt.Println("The VMM's shadow tables start as null PTEs and fill on demand (Section 4.3.1).")
	fmt.Println()
	run("on-demand, no cache", repro.Config{ShadowCacheSlots: 1})
	run("multi-process cache (x4)", repro.Config{ShadowCacheSlots: 4})
	run("prefetch groups of 8", repro.Config{ShadowCacheSlots: 1, PrefetchGroup: 8})
	fmt.Println()
	fmt.Println("the cache eliminates refills after process switches (Section 7.2's ~80%);")
	fmt.Println("prefetching fills entries that context switches throw away (Section 4.3.1).")
}
