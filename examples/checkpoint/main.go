// Checkpoint demo: run a MiniOS guest halfway through a transaction
// workload, snapshot it, "migrate" the snapshot into a different
// monitor instance, and let both copies finish independently — the VM
// image carries the virtual processor, memory, virtualized registers
// and disk.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	im, err := repro.BuildOS(repro.OSConfig{
		Target:    repro.TargetVM,
		Processes: []repro.Process{workload.TP(60, 16)},
	})
	if err != nil {
		log.Fatal(err)
	}

	host1 := repro.NewVMM(16<<20, repro.Config{})
	vm, err := repro.BootVM(host1, im, 32)
	if err != nil {
		log.Fatal(err)
	}
	for i := range vm.Disk().Image() {
		vm.Disk().Image()[i] = byte(i)
	}

	// Run partway.
	host1.Run(20_000)
	if h, _ := vm.Halted(); h {
		log.Fatal("finished before the checkpoint; nothing to demonstrate")
	}
	fmt.Printf("checkpoint at %d guest syscalls, %d disk ops\n",
		vm.Stats.KCALLs, vm.Disk().Reads+vm.Disk().Writes)

	snap, err := host1.Snapshot(vm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d KB\n", len(snap)/1024)

	// Migrate to a second monitor and finish there.
	host2 := repro.NewVMM(16<<20, repro.Config{})
	clone, err := host2.Restore("migrated", snap)
	if err != nil {
		log.Fatal(err)
	}
	host2.Run(100_000_000)
	h, msg := clone.Halted()
	fmt.Printf("migrated copy: halted=%t (%s), console %q\n", h, msg, clone.ConsoleOutput())

	// The original continues on its own host.
	host1.Run(100_000_000)
	h1, _ := vm.Halted()
	fmt.Printf("original copy: halted=%t, console %q\n", h1, vm.ConsoleOutput())
	fmt.Println("(the clone's console is shorter: a terminal belongs to the host, not the VM image)")

	// Both forks performed the same remaining transactions: their disks
	// — which ARE part of the VM image — end identical.
	d1, d2 := vm.Disk().Image(), clone.Disk().Image()
	for i := range d1 {
		if d1[i] != d2[i] {
			log.Fatalf("fork diverged: disks differ at byte %#x", i)
		}
	}
	if !h || !h1 {
		log.Fatal("a fork did not finish")
	}
	fmt.Println("both copies completed with identical disk state — OK")
}
