// Quickstart: assemble a small guest kernel from scratch, run it first
// on a bare standard VAX, then inside a virtual machine under the
// ring-compression VMM — and see the same program behave identically
// while every sensitive instruction is being emulated.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro"
)

// The guest: a pre-mapped kernel that computes 10! in a loop, writes it
// to memory, reads its own access mode with MOVPSL, and halts. It is
// assembled at the VAX system-space base.
const guestSource = `
start:	movl #1, r2
	movl #10, r3
fact:	mull2 r3, r2
	sobgtr r3, fact
	movl r2, @#0x80004000  ; publish the result
	movpsl r4              ; what mode do we think we are in?
	halt
`

const (
	sptPhys = 0x200 // guest system page table (identity map)
	nPages  = 64
	memSize = 64 * 1024
)

// buildImage assembles the guest and builds a VM-physical memory image
// with an identity-mapped system page table.
func buildImage() ([]byte, *repro.Program, error) {
	prog, err := repro.Assemble(guestSource, 0x80001000)
	if err != nil {
		return nil, nil, err
	}
	img := make([]byte, memSize)
	for i := uint32(0); i < nPages; i++ {
		pte := uint32(1)<<31 | uint32(4)<<27 | uint32(1)<<26 | i // valid | UW | modified | pfn
		binary.LittleEndian.PutUint32(img[sptPhys+4*i:], pte)
	}
	copy(img[0x1000:], prog.Code)
	return img, prog, nil
}

func main() {
	img, prog, err := buildImage()
	if err != nil {
		log.Fatal(err)
	}

	// --- Run inside a virtual machine. ---
	k := repro.NewVMM(8<<20, repro.Config{})
	vm, err := k.CreateVM(repro.VMConfig{
		Name:      "quickstart",
		MemBytes:  memSize,
		Image:     img,
		StartPC:   prog.MustSymbol("start"),
		PreMapped: true,
		SBR:       sptPhys,
		SLR:       nPages,
	})
	if err != nil {
		log.Fatal(err)
	}
	k.Run(100_000)

	halted, msg := vm.Halted()
	fmt.Printf("VM halted=%t (%s)\n", halted, msg)

	dump := vm.DumpMemory()
	result := binary.LittleEndian.Uint32(dump[0x4000:])
	fmt.Printf("guest computed 10! = %d\n", result)

	// The guest believes it is in kernel mode — MOVPSL was merged from
	// VMPSL in "microcode" — even though it executed in real executive
	// mode the whole time (ring compression).
	guestPSL := repro.PSL(k.CPU.R[4])
	fmt.Printf("guest MOVPSL saw mode: %s\n", guestPSL.Cur())
	fmt.Printf("sensitive-instruction traps taken by the VMM: %d\n", vm.Stats.VMTraps)
	fmt.Printf("machine cycles: %d\n", k.CPU.Cycles)

	if result != 3628800 || guestPSL.Cur() != repro.Kernel {
		log.Fatal("unexpected result")
	}
	fmt.Println("OK")
}
