// Multi-VM demo: two complete MiniOS guests share one simulated VAX
// under the VMM. One runs a transaction-processing workload; the other
// an interactive-editing workload. The WAIT handshake and the time-
// slice scheduler interleave them, and each VM sees its own uptime
// (timer interrupts are delivered only while a VM is running —
// Section 5 of the paper).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	k := repro.NewVMM(32<<20, repro.Config{ShadowCacheSlots: 4})

	tpImage, err := repro.BuildOS(repro.OSConfig{
		Target:    repro.TargetVM,
		Processes: []repro.Process{workload.TP(15, 16), workload.TP(15, 16)},
		Preempt:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The editor VM has think time: between edits its process sleeps,
	// MiniOS's idle loop executes WAIT, and the VMM gives the processor
	// to the transaction VM (the Section 5 handshake at work).
	editImage, err := repro.BuildOS(repro.OSConfig{
		Target: repro.TargetVM,
		Processes: []repro.Process{{Source: `
	movl #30, r11
edit:	movl #46, r1
	chmk #1              ; type a character
	movl #1, r1
	chmk #9              ; think for a tick
	sobgtr r11, edit
	chmk #0
`}},
		Preempt: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	tpVM, err := repro.BootVM(k, tpImage, 64)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := repro.BootVM(k, editImage, 64); err != nil {
		log.Fatal(err)
	}
	for i := range tpVM.Disk().Image() {
		tpVM.Disk().Image()[i] = byte(i)
	}

	k.Run(100_000_000)

	fmt.Println("Two MiniOS guests shared the processor:")
	for _, vm := range k.VMs() {
		h, msg := vm.Halted()
		fmt.Printf("\n%s: halted=%t (%s)\n", vm.Name(), h, msg)
		fmt.Printf("  virtual uptime: %d ticks (real ticks: %d)\n", vm.Ticks(), k.Stats.ClockTicks)
		fmt.Printf("  console: %q\n", vm.ConsoleOutput())
		fmt.Printf("  %d sensitive-instruction traps, %d context switches, %d KCALL I/Os\n",
			vm.Stats.VMTraps, vm.Stats.ContextSwitches, vm.Stats.KCALLs)
	}
	fmt.Printf("\nVMM: %d world switches over %d clock ticks; %d cycles total\n",
		k.Stats.WorldSwitches, k.Stats.ClockTicks, k.CPU.Cycles)
	fmt.Printf("the editor's think time became WAIT handshakes: %d\n", k.VMs()[1].Stats.Waits)

	// Each VM's virtual clock ran only while it held the processor.
	for _, vm := range k.VMs() {
		if vm.Ticks() >= k.Stats.ClockTicks {
			log.Fatal("a VM saw more ticks than real time — timer virtualization broken")
		}
	}
	fmt.Println("\neach VM aged slower than real time, as Section 5 specifies — OK")
}
