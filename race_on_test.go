//go:build race

package repro

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation changes allocation counts, so exact alloc-parity
// assertions only hold without it.
const raceEnabled = true
