package repro

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/exp"
	"repro/internal/mem"
	"repro/internal/vax"
)

// One benchmark per table and figure in the paper. Each iteration
// regenerates the table/figure/measurement end to end (building guest
// images, booting machines, running workloads), so ns/op is the cost of
// reproducing that piece of the evaluation; the correctness of each
// reproduction is asserted by internal/exp's tests.

func benchExperiment(b *testing.B, id string) {
	spec, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := spec.Run()
		if err != nil {
			b.Fatal(err)
		}
		if r.PaperClaim != "" && !r.Match {
			b.Fatalf("%s: shape does not hold: %s", id, r.Measured)
		}
	}
}

// Table 1: sensitive data touched by unprivileged instructions.
func BenchmarkTable1SensitiveData(b *testing.B) { benchExperiment(b, "T1") }

// Table 2: PROBE versus PROBEVM.
func BenchmarkTable2ProbeVsProbeVM(b *testing.B) { benchExperiment(b, "T2") }

// Table 3: solutions for sensitive data.
func BenchmarkTable3Solutions(b *testing.B) { benchExperiment(b, "T3") }

// Table 4: summary of VAX architecture changes.
func BenchmarkTable4ChangeMatrix(b *testing.B) { benchExperiment(b, "T4") }

// Figure 1: the VAX virtual address space.
func BenchmarkFigure1AddressSpace(b *testing.B) { benchExperiment(b, "F1") }

// Figure 2: VM and VMM shared address space.
func BenchmarkFigure2SharedSpace(b *testing.B) { benchExperiment(b, "F2") }

// Figure 3: ring compression.
func BenchmarkFigure3RingCompression(b *testing.B) { benchExperiment(b, "F3") }

// Section 7.3: the 47-48% mixed workload result.
func BenchmarkE1MixedWorkload(b *testing.B) { benchExperiment(b, "E1") }

// Section 7.2: the ~80% shadow-fill reduction.
func BenchmarkE2ShadowCache(b *testing.B) { benchExperiment(b, "E2") }

// Section 4.3.1: fills per context switch and the prefetch ablation.
func BenchmarkE3FaultsPerSwitch(b *testing.B) { benchExperiment(b, "E3") }

// Section 7.3: MTPR-to-IPL 10-12x emulation cost.
func BenchmarkE4MtprIPL(b *testing.B) { benchExperiment(b, "E4") }

// Section 4.4.3: start-I/O versus emulated memory-mapped I/O.
func BenchmarkE5IOTraps(b *testing.B) { benchExperiment(b, "E5") }

// Section 2/5: the efficiency property.
func BenchmarkE6Efficiency(b *testing.B) { benchExperiment(b, "E6") }

// Section 7.1: ring virtualization schemes.
func BenchmarkE7RingSchemes(b *testing.B) { benchExperiment(b, "E7") }

// Section 4.4.2: the modify fault versus the rejected read-only-shadow
// design.
func BenchmarkE8ModifyFaultAblation(b *testing.B) { benchExperiment(b, "E8") }

// Methodology: conclusions are stable under cost-model perturbation.
func BenchmarkE9CostSensitivity(b *testing.B) { benchExperiment(b, "E9") }
func BenchmarkE10FaultCampaign(b *testing.B)  { benchExperiment(b, "E10") }

// Section 5 extended: recoverable deaths roll back to checkpoints.
func BenchmarkE11RecoveryCampaign(b *testing.B) { benchExperiment(b, "E11") }

// benchThroughput measures the raw execution rate of a tight guest
// compute loop, after the decoded-instruction cache (and, tier-on, the
// superblock cache) is warm. It reports guest instructions per second
// and, via ReportAllocs, holds the steady-state hot path to zero
// allocations per iteration.
func benchThroughput(b *testing.B, translate bool) {
	prog, err := asm.Assemble(`
start:	clrl r0
	movl #1000, r1
loop:	addl2 #7, r0
	sobgtr r1, loop
	halt
`, 0x400)
	if err != nil {
		b.Fatalf("assemble: %v", err)
	}
	m := mem.New(64 * 1024)
	if err := m.StoreBytes(prog.Origin, prog.Code); err != nil {
		b.Fatal(err)
	}
	c := cpu.New(m, cpu.StandardVAX)
	c.SetPSL(vax.PSL(0).WithCur(vax.Kernel))
	c.SetSP(0x8000)
	c.EnableTranslation(translate)
	start := prog.MustSymbol("start")

	// Warm-up run: populates the decode cache (and crosses the heat
	// threshold, tier-on) so the timed iterations measure the hot path.
	c.SetPC(start)
	c.Run(0)
	if !c.Halted {
		b.Fatal("warm-up run did not halt")
	}

	b.ReportAllocs()
	b.ResetTimer()
	before := c.Stats.Instructions
	for i := 0; i < b.N; i++ {
		c.ClearHalt()
		c.SetPC(start)
		c.Run(0)
	}
	b.StopTimer()
	executed := c.Stats.Instructions - before
	if c.R[0] != 7000 {
		b.Fatalf("guest computed %d, want 7000", c.R[0])
	}
	if translate && c.Stats.SBEnters == 0 {
		b.Fatal("translation tier never entered a superblock")
	}
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "instr/sec")
}

// BenchmarkInterpreterThroughput is the baseline fetch-decode-execute
// rate with the hot-trace tier off.
func BenchmarkInterpreterThroughput(b *testing.B) { benchThroughput(b, false) }

// BenchmarkTranslationThroughput is the same loop with the hot-trace
// superblock tier on; ci.sh gates on its speedup over the baseline.
func BenchmarkTranslationThroughput(b *testing.B) { benchThroughput(b, true) }

// Guest layout for the multi-VM scaling benchmark (mirrors the
// internal/core test harness: identity-mapped SPT, code at S+0x1000).
const (
	mvSCB     = 0x0000
	mvSPT     = 0x0200
	mvCode    = 0x1000
	mvSPTLen  = 64
	mvKSP     = 0x80008000
	mvMemSize = 64 * 1024
)

// multiVMImage builds a pre-mapped compute guest: ~200k instructions
// of register arithmetic, then HALT.
func multiVMImage(b *testing.B) ([]byte, uint32) {
	b.Helper()
	prog, err := asm.Assemble(`
start:	clrl r0
	movl #100000, r1
loop:	addl2 #7, r0
	sobgtr r1, loop
	halt
`, vax.SystemBase+mvCode)
	if err != nil {
		b.Fatalf("assemble: %v", err)
	}
	img := make([]byte, mvMemSize)
	for i := uint32(0); i < mvSPTLen; i++ {
		pte := vax.NewPTE(true, vax.ProtUW, true, i)
		binary.LittleEndian.PutUint32(img[mvSPT+4*i:], uint32(pte))
	}
	copy(img[mvCode:], prog.Code)
	return img, prog.MustSymbol("start")
}

// multiVMIdleImage builds a pre-mapped idle guest: three WAITs (each
// riding the VMM's WAIT timeout), then HALT — the shape of a mostly-
// idle timesharing VM, and the shape the parallel engine parks.
func multiVMIdleImage(b *testing.B) ([]byte, uint32) {
	b.Helper()
	prog, err := asm.Assemble(`
start:	movl #3, r10
loop:	wait
	sobgtr r10, loop
	halt
`, vax.SystemBase+mvCode)
	if err != nil {
		b.Fatalf("assemble: %v", err)
	}
	img := make([]byte, mvMemSize)
	for i := uint32(0); i < mvSPTLen; i++ {
		pte := vax.NewPTE(true, vax.ProtUW, true, i)
		binary.LittleEndian.PutUint32(img[mvSPT+4*i:], uint32(pte))
	}
	copy(img[mvCode:], prog.Code)
	return img, prog.MustSymbol("start")
}

// benchMultiVM boots nVMs guests — the first idlers of them WAIT-loop
// guests, the rest compute guests — and runs them to completion,
// serially (workers <= 1) or on the parallel engine. Construction (the
// monitor and the fleet boot) happens with the timer stopped, so
// instr/sec measures execution, not setup; setup cost is reported
// separately as setup_ms/op.
func benchMultiVM(b *testing.B, nVMs, idlers, workers int) {
	computeImg, computeStart := multiVMImage(b)
	idleImg, idleStart := multiVMIdleImage(b)
	// 64 KB of RAM plus a few dozen shadow pages per VM.
	memBytes := uint32(nVMs)*(128<<10) + (1 << 20)
	cfg := core.Config{Workers: workers}
	if idlers > 0 {
		cfg.WaitTimeout = 2
	}
	cache := mem.NewCache()
	var instrs uint64
	var setup time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t0 := time.Now()
		k := core.New(memBytes, cfg, core.WithMemCache(cache))
		vms := make([]*core.VM, nVMs)
		for j := range vms {
			img, startPC := computeImg, computeStart
			if j < idlers {
				img, startPC = idleImg, idleStart
			}
			vm, err := k.CreateVM(core.VMConfig{
				MemBytes: mvMemSize, Image: img, StartPC: startPC,
				PreMapped: true, SBR: mvSPT, SLR: mvSPTLen, SCBB: mvSCB,
			})
			if err != nil {
				b.Fatal(err)
			}
			vm.SPs[vax.Kernel] = mvKSP
			vms[j] = vm
		}
		setup += time.Since(t0)
		b.StartTimer()
		k.Run(0)
		b.StopTimer()
		for _, vm := range vms {
			if halted, _ := vm.Halted(); !halted {
				b.Fatal("VM did not halt")
			}
		}
		if pr := k.LastParallelRun(); pr.VMs > 0 {
			instrs += pr.Instrs
		} else {
			instrs += k.CPU.Stats.Instructions
		}
		k.Release()
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instr/sec")
	b.ReportMetric(setup.Seconds()*1000/float64(b.N), "setup_ms/op")
}

// BenchmarkMultiVMScaling compares aggregate guest throughput of the
// serial round-robin engine against the parallel engine at 1, 2, 4 and
// 8 VMs (one worker per VM), then pushes fleet density: 64, 256 and
// 1024 mostly-idle VMs (one compute guest per 32) on a fixed pool of 8
// workers, where parked VMs must cost no worker time. The instr/sec
// metric is the number the tentpole is judged by: parallel/8VM should
// deliver at least twice serial/8VM on a host with 8 or more cores.
func BenchmarkMultiVMScaling(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("serial_%dVM", n), func(b *testing.B) {
			benchMultiVM(b, n, 0, 1)
		})
		if n > 1 {
			b.Run(fmt.Sprintf("parallel_%dVM_%dw", n, n), func(b *testing.B) {
				benchMultiVM(b, n, 0, n)
			})
		}
	}
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("density_%dVM_8w", n), func(b *testing.B) {
			busy := n / 32
			benchMultiVM(b, n, n-busy, 8)
		})
	}
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("density_%dVM_8w_clone", n), func(b *testing.B) {
			busy := n / 32
			benchMultiVMClone(b, n, n-busy, 8)
		})
	}
}

// BenchmarkVMClone measures the COW spawn primitive alone: one booted
// source, b.N clones stamped from it. No clone runs, which is exactly
// the warm-spare shape the microsecond cost targets — a clone costs a
// frame-map copy and per-page refcount bumps, with shadow tables
// deferred to first dispatch and memory deferred to first write.
func BenchmarkVMClone(b *testing.B) {
	img, startPC := multiVMImage(b)
	k := core.New(8<<20, core.Config{})
	defer k.Release()
	src, err := k.CreateVM(core.VMConfig{
		MemBytes: mvMemSize, Image: img, StartPC: startPC,
		PreMapped: true, SBR: mvSPT, SLR: mvSPTLen, SCBB: mvSCB,
	})
	if err != nil {
		b.Fatal(err)
	}
	src.SPs[vax.Kernel] = mvKSP
	// The first clone materializes the source's frame map and demotes
	// its shadow mappings; steady state starts at the second.
	if _, err := k.Clone(src, "warm"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Clone(src, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMultiVMClone is benchMultiVM's clone-backed twin: the same fleet
// shape, but only two template VMs boot from images and every other VM
// is a COW clone. setup_ms/op is the number to compare against the
// boot-backed density variant (the ≥10× bring-up claim); the monitor is
// deliberately overcommitted, which the run phase must survive.
func benchMultiVMClone(b *testing.B, nVMs, idlers, workers int) {
	if nVMs < 2 || idlers < 1 || idlers >= nVMs {
		b.Fatalf("clone fleet needs both templates: n=%d idlers=%d", nVMs, idlers)
	}
	computeImg, computeStart := multiVMImage(b)
	idleImg, idleStart := multiVMIdleImage(b)
	// Well below the 128 KB/VM of the boot-backed fleet: clones only
	// occupy what they privatize.
	memBytes := uint32(nVMs)*(48<<10) + (1 << 20)
	cfg := core.Config{Workers: workers}
	if idlers > 0 {
		cfg.WaitTimeout = 2
	}
	cache := mem.NewCache()
	var instrs uint64
	var setup time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t0 := time.Now()
		k := core.New(memBytes, cfg, core.WithMemCache(cache))
		boot := func(img []byte, startPC uint32) *core.VM {
			vm, err := k.CreateVM(core.VMConfig{
				MemBytes: mvMemSize, Image: img, StartPC: startPC,
				PreMapped: true, SBR: mvSPT, SLR: mvSPTLen, SCBB: mvSCB,
			})
			if err != nil {
				b.Fatal(err)
			}
			vm.SPs[vax.Kernel] = mvKSP
			return vm
		}
		idleT := boot(idleImg, idleStart)
		computeT := boot(computeImg, computeStart)
		vms := make([]*core.VM, 0, nVMs)
		vms = append(vms, idleT, computeT)
		for j := 1; j < nVMs; j++ {
			if j == idlers {
				continue // the compute template holds this slot's role
			}
			src := computeT
			if j < idlers {
				src = idleT
			}
			vm, err := k.Clone(src, "")
			if err != nil {
				b.Fatal(err)
			}
			vms = append(vms, vm)
		}
		setup += time.Since(t0)
		b.StartTimer()
		k.Run(0)
		b.StopTimer()
		for _, vm := range vms {
			if halted, _ := vm.Halted(); !halted {
				b.Fatal("VM did not halt")
			}
		}
		if pr := k.LastParallelRun(); pr.VMs > 0 {
			instrs += pr.Instrs
		} else {
			instrs += k.CPU.Stats.Instructions
		}
		k.Release()
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instr/sec")
	b.ReportMetric(setup.Seconds()*1000/float64(b.N), "setup_ms/op")
}
