#!/bin/sh
# Repository CI gate: formatting, static analysis, build, tests, and a
# race-detector pass over the monitor (the package that mixes guest
# execution with host-side VMM state). Run from the repository root.
set -eu

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (core)"
go test -race ./internal/core/...

echo "== fault-injection campaign (fixed seeds)"
go run ./cmd/experiments -faults -seeds 8 -seedbase 1 > /dev/null

echo "CI OK"
