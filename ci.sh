#!/bin/sh
# Repository CI gate: formatting, static analysis, build, tests, and a
# race-detector pass over every package (the parallel execution engine
# makes the whole tree a concurrency surface). Run from the repository
# root.
#
#   ./ci.sh                    # the gate
#   ./ci.sh bench              # benchmarks -> BENCH_<date>.json, diffed
#                              # against the most recent committed
#                              # BENCH_*.json: >10% regression in
#                              # ns/op or allocs/op on the E-series
#                              # benchmarks fails the run
#   ./ci.sh bench --warn-only  # report regressions without failing
#   ./ci.sh soak-smoke         # fleet-API soak gate: 200+ HTTP-driven
#                              # VM lifecycles, zero leaked VMs/pages,
#                              # p99 latency per phase reported
#   ./ci.sh soak-smoke --warn-only
set -eu

if [ "${1:-}" = "soak-smoke" ]; then
    warn_only=0
    [ "${2:-}" = "--warn-only" ] && warn_only=1
    echo "== fleet-API soak smoke (two epochs x 100 lifecycles, leak gate)"
    if go run ./cmd/experiments -soak -lifecycles 100 -clients 8 -tenants 4; then
        echo "soak smoke OK"
    else
        if [ "$warn_only" = 1 ]; then
            echo "soak smoke failed (warn-only): not failing" >&2
        else
            echo "soak smoke failed; rerun with --warn-only to continue anyway" >&2
            exit 1
        fi
    fi
    exit 0
fi

if [ "${1:-}" = "bench" ]; then
    warn_only=0
    [ "${2:-}" = "--warn-only" ] && warn_only=1
    out="BENCH_$(date +%Y-%m-%d).json"
    prev=""
    for f in $(ls -r BENCH_*.json 2>/dev/null); do
        if [ "$f" != "$out" ]; then prev="$f"; break; fi
    done
    echo "== go test -bench -> $out"
    go test -run '^$' -bench . -benchmem -count=1 . |
    awk '
        BEGIN { print "[" }
        /^Benchmark/ {
            name = $1; nsop = ""; instr = ""; bop = ""; allocs = ""
            for (i = 2; i <= NF; i++) {
                if ($(i) == "ns/op")     nsop  = $(i-1)
                if ($(i) == "instr/sec") instr = $(i-1)
                if ($(i) == "B/op")      bop   = $(i-1)
                if ($(i) == "allocs/op") allocs = $(i-1)
            }
            if (n++) printf ",\n"
            printf "  {\"name\": \"%s\", \"iterations\": %s", name, $2
            if (nsop   != "") printf ", \"ns_per_op\": %s", nsop
            if (instr  != "") printf ", \"instr_per_sec\": %s", instr
            if (bop    != "") printf ", \"bytes_per_op\": %s", bop
            if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
            printf "}"
        }
        END { print "\n]" }
    ' > "$out"
    echo "wrote $out"
    if [ -n "$prev" ]; then
        echo "== bench diff vs $prev (E-series, >10% ns/op or allocs/op regression fails)"
        if awk -v prevfile="$prev" -v curfile="$out" '
            function load(file, tab,    line, name, key, val, n, i, parts) {
                while ((getline line < file) > 0) {
                    if (line !~ /"name"/) continue
                    gsub(/[{}",]/, "", line)
                    name = ""
                    n = split(line, parts, " ")
                    for (i = 1; i < n; i++) {
                        key = parts[i]; val = parts[i+1]
                        if (key == "name:") name = val
                        if (key == "ns_per_op:")     tab[name ":ns"] = val
                        if (key == "allocs_per_op:") tab[name ":allocs"] = val
                    }
                }
                close(file)
            }
            BEGIN {
                load(prevfile, old); load(curfile, cur)
                nbench = split("BenchmarkE2ShadowCache BenchmarkE3FaultsPerSwitch BenchmarkE9CostSensitivity", benches, " ")
                bad = 0
                for (i = 1; i <= nbench; i++) {
                    b = benches[i]
                    gated[b] = 1
                    nmetric = split("ns allocs", metrics, " ")
                    for (j = 1; j <= nmetric; j++) {
                        m = metrics[j]; k = b ":" m
                        # A gated benchmark absent from the current run is a
                        # coverage regression, not a skip: fail loudly.
                        if (!(k in cur)) {
                            printf "  MISSING: %s %s/op absent from current run\n", b, m
                            bad = 1
                            continue
                        }
                        # First appearance (or zero baseline): record, never gate.
                        if (!(k in old) || old[k] + 0 == 0) {
                            printf "  %-28s %-6s %14s -> %14s  (new, no baseline)\n", b, m, "-", cur[k]
                            continue
                        }
                        ratio = cur[k] / old[k]
                        printf "  %-28s %-6s %14s -> %14s  (%+.1f%%)\n", b, m, old[k], cur[k], (ratio - 1) * 100
                        if (ratio > 1.10) {
                            printf "  REGRESSION: %s %s/op grew more than 10%%\n", b, m
                            bad = 1
                        }
                    }
                }
                # Benchmarks present only in the newer file (BenchmarkVMClone,
                # clone-backed density variants, ...) are informational: they
                # gain a baseline for the NEXT diff, and must neither trip the
                # gate nor vanish silently.
                for (k in cur) {
                    if (k !~ /:ns$/ || k in old) continue
                    name = substr(k, 1, length(k) - 3)
                    if (name in gated) continue
                    printf "  NEW (no baseline): %s\n", name
                }
                exit bad
            }'
        then :; else
            if [ "$warn_only" = 1 ]; then
                echo "bench regression (warn-only): not failing" >&2
            else
                echo "bench regression vs $prev; rerun with --warn-only to record anyway" >&2
                exit 1
            fi
        fi
        echo "== parallel/serial throughput ratio at 8 VMs (>10% drop fails)"
        if awk -v prevfile="$prev" -v curfile="$out" '
            function load(file, tab,    line, name, key, val, n, i, parts) {
                while ((getline line < file) > 0) {
                    if (line !~ /"name"/) continue
                    gsub(/[{}",]/, "", line)
                    name = ""
                    n = split(line, parts, " ")
                    for (i = 1; i < n; i++) {
                        key = parts[i]; val = parts[i+1]
                        if (key == "name:") name = val
                        if (key == "instr_per_sec:") tab[name] = val
                    }
                }
                close(file)
            }
            # rate matches by substring so GOMAXPROCS name suffixes
            # (present on multi-core hosts, absent on one core) do not
            # break the lookup.
            function rate(tab, pat,    k) {
                for (k in tab) if (index(k, pat)) return tab[k] + 0
                return 0
            }
            BEGIN {
                load(prevfile, old); load(curfile, cur)
                cs = rate(cur, "MultiVMScaling/serial_8VM")
                cp = rate(cur, "MultiVMScaling/parallel_8VM_8w")
                if (cs == 0 || cp == 0) {
                    print "  8-VM scaling numbers missing from current run; skipping"
                    exit 0
                }
                printf "  current  parallel/serial = %.3f\n", cp / cs
                os = rate(old, "MultiVMScaling/serial_8VM")
                op = rate(old, "MultiVMScaling/parallel_8VM_8w")
                if (os == 0 || op == 0) {
                    print "  no previous 8-VM numbers; recording only"
                    exit 0
                }
                printf "  previous parallel/serial = %.3f\n", op / os
                if (cp / cs < op / os * 0.90) {
                    print "  REGRESSION: parallel speedup at 8 VMs dropped more than 10%"
                    exit 1
                }
                exit 0
            }'
        then :; else
            if [ "$warn_only" = 1 ]; then
                echo "parallel-ratio regression (warn-only): not failing" >&2
            else
                echo "parallel-ratio regression vs $prev; rerun with --warn-only to record anyway" >&2
                exit 1
            fi
        fi
    else
        echo "== no previous BENCH_*.json to diff against"
    fi
    exit 0
fi

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (all packages)"
go test -race ./...

echo "== trace-overhead smoke (E3: recorder off vs on, >5% ns/op delta fails)"
min_ns() {
    awk '/^BenchmarkE3/ {
        for (i = 2; i <= NF; i++)
            if ($(i) == "ns/op" && (best == 0 || $(i-1) + 0 < best)) best = $(i-1) + 0
    } END { print best + 0 }'
}
# Interleave the off/on measurements (three alternating pairs, min of
# each) so slow drift on a noisy host lands on both sides instead of
# biasing whichever block ran second.
off=0; on=0
for pass in 1 2 3; do
    o=$(go test -run '^$' -bench BenchmarkE3FaultsPerSwitch -benchtime 5x . | min_ns)
    n=$(VAX_TRACE=1024 go test -run '^$' -bench BenchmarkE3FaultsPerSwitch -benchtime 5x . | min_ns)
    if [ "$off" = 0 ] || [ "$o" -lt "$off" ]; then off=$o; fi
    if [ "$on" = 0 ] || [ "$n" -lt "$on" ]; then on=$n; fi
done
echo "  E3 ns/op (min of 3 interleaved): recorder off $off, on $on"
awk -v off="$off" -v on="$on" 'BEGIN {
    if (off + 0 == 0 || on + 0 == 0) { print "  no benchmark output"; exit 1 }
    delta = (on - off) / off * 100
    printf "  recorder-on delta %+.1f%%\n", delta
    if (delta > 5) { print "  REGRESSION: recorder-on E3 more than 5% slower"; exit 1 }
}'

echo "== translation-tier gate (superblock vs interpreter instr/sec, <2x fails)"
best_rate() {
    awk '/^Benchmark/ {
        for (i = 2; i <= NF; i++)
            if ($(i) == "instr/sec" && $(i-1) + 0 > best) best = $(i-1) + 0
    } END { print best + 0 }'
}
# Interleave baseline/tier measurements (three alternating pairs, best
# of each) so host noise lands on both sides of the ratio.
base=0; tier=0
for pass in 1 2 3; do
    b=$(go test -run '^$' -bench 'BenchmarkInterpreterThroughput$' -benchtime 5x . | best_rate)
    t=$(go test -run '^$' -bench 'BenchmarkTranslationThroughput$' -benchtime 5x . | best_rate)
    if [ "$(echo "$b $base" | awk '{print ($1 > $2)}')" = 1 ]; then base=$b; fi
    if [ "$(echo "$t $tier" | awk '{print ($1 > $2)}')" = 1 ]; then tier=$t; fi
done
echo "  instr/sec (best of 3 interleaved): interpreter $base, translation $tier"
awk -v base="$base" -v tier="$tier" 'BEGIN {
    if (base + 0 == 0 || tier + 0 == 0) { print "  no benchmark output"; exit 1 }
    printf "  translation speedup %.2fx\n", tier / base
    if (tier / base < 2) { print "  REGRESSION: translation tier under 2x the interpreter"; exit 1 }
}'

echo "== experiments output identical with translation off"
tmpmd=$(mktemp) tmpwant=$(mktemp) tmpgot=$(mktemp)
go run ./cmd/experiments -md > "$tmpmd"
grep -q '^## T1' "$tmpmd" || { echo "generated output missing '## T1' marker" >&2; exit 1; }
sed -n '/^## T1/,$p' EXPERIMENTS.md > "$tmpwant"
sed -n '/^## T1/,$p' "$tmpmd" > "$tmpgot"
if ! diff "$tmpwant" "$tmpgot"; then
    echo "EXPERIMENTS.md body diverges from tier-off output; regenerate it" >&2
    rm -f "$tmpmd" "$tmpwant" "$tmpgot"
    exit 1
fi
rm -f "$tmpmd" "$tmpwant" "$tmpgot"

echo "== clone smoke (256 clones: shared pages, completion, parity with boots)"
go test -run 'TestCloneSmokeParity$' -count=1 ./internal/core/ > /dev/null

echo "== clone fleet bring-up (wall-clock, informational)"
go run ./cmd/experiments -clone -vms 256

echo "== fleet-API soak smoke (200+ lifecycles over HTTP, leak gate)"
./ci.sh soak-smoke

echo "== fault-injection campaign (fixed seeds)"
go run ./cmd/experiments -faults -seeds 8 -seedbase 1 > /dev/null

echo "== recovery campaign (fixed seeds)"
go run ./cmd/experiments -recover -seeds 8 -seedbase 1 > /dev/null

echo "CI OK"
