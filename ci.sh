#!/bin/sh
# Repository CI gate: formatting, static analysis, build, tests, and a
# race-detector pass over every package (the parallel execution engine
# makes the whole tree a concurrency surface). Run from the repository
# root.
#
#   ./ci.sh         # the gate
#   ./ci.sh bench   # benchmarks -> BENCH_<date>.json (not part of the gate)
set -eu

if [ "${1:-}" = "bench" ]; then
    out="BENCH_$(date +%Y-%m-%d).json"
    echo "== go test -bench -> $out"
    go test -run '^$' -bench . -benchmem -count=1 . |
    awk '
        BEGIN { print "[" }
        /^Benchmark/ {
            name = $1; nsop = ""; instr = ""; bop = ""; allocs = ""
            for (i = 2; i <= NF; i++) {
                if ($(i) == "ns/op")     nsop  = $(i-1)
                if ($(i) == "instr/sec") instr = $(i-1)
                if ($(i) == "B/op")      bop   = $(i-1)
                if ($(i) == "allocs/op") allocs = $(i-1)
            }
            if (n++) printf ",\n"
            printf "  {\"name\": \"%s\", \"iterations\": %s", name, $2
            if (nsop   != "") printf ", \"ns_per_op\": %s", nsop
            if (instr  != "") printf ", \"instr_per_sec\": %s", instr
            if (bop    != "") printf ", \"bytes_per_op\": %s", bop
            if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
            printf "}"
        }
        END { print "\n]" }
    ' > "$out"
    echo "wrote $out"
    exit 0
fi

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (all packages)"
go test -race ./...

echo "== fault-injection campaign (fixed seeds)"
go run ./cmd/experiments -faults -seeds 8 -seedbase 1 > /dev/null

echo "CI OK"
