package repro

import "testing"

// TestFacade exercises the public API end to end: assemble a guest, run
// it bare and in a VM, and check the experiment registry.
func TestFacade(t *testing.T) {
	prog, err := Assemble("start:\tmovl #7, r0\n\thalt", 0x400)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMemory(64 * 1024)
	if err := m.StoreBytes(prog.Origin, prog.Code); err != nil {
		t.Fatal(err)
	}
	c := NewCPU(m, StandardVAX)
	c.SetPSL(PSL(0).WithCur(Kernel))
	c.SetPC(prog.MustSymbol("start"))
	c.Run(100)
	if !c.Halted || c.R[0] != 7 {
		t.Fatalf("bare run failed: halted=%t r0=%d", c.Halted, c.R[0])
	}

	if len(Experiments()) != 18 {
		t.Errorf("Experiments() = %d entries", len(Experiments()))
	}
	if _, ok := ExperimentByID("E1"); !ok {
		t.Error("ExperimentByID(E1) failed")
	}

	im, err := BuildOS(OSConfig{Target: TargetVM, Processes: []Process{{
		Source: "\tmovl #1, r2\n\tchmk #0",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	k := NewVMM(16<<20, Config{})
	vm, err := BootVM(k, im, 8)
	if err != nil {
		t.Fatal(err)
	}
	k.Run(10_000_000)
	if h, _ := vm.Halted(); !h {
		t.Fatal("VM did not halt")
	}
}

func TestFacadeBareOS(t *testing.T) {
	im, err := BuildOS(OSConfig{Target: TargetBare, Processes: []Process{{
		Source: "\tmovl #1, r2\n\tchmk #0",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	ma, err := BootBare(im, ModifiedVAX, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !ma.Run(10_000_000) {
		t.Fatal("bare MiniOS did not halt")
	}
	if ma.ReadCell("syscalls") != 1 {
		t.Errorf("syscalls = %d", ma.ReadCell("syscalls"))
	}
}
