// Package repro is a reproduction of "Virtualizing the VAX
// Architecture" (Hall & Robinson, ISCA 1991): a simulated VAX with the
// paper's virtualization extensions, the ring-compression virtual
// machine monitor built on them, and a miniature guest operating system
// that runs unchanged on the standard VAX, on the modified VAX, and
// inside a virtual VAX.
//
// This package is the public face of the library: it re-exports the
// pieces a user composes —
//
//   - the assembler (Assemble) for writing guest code;
//   - bare machines (NewStandardVAX / NewModifiedVAX);
//   - the VMM (NewVMM, Config, VMConfig) and its virtual machines;
//   - MiniOS (BuildOS, BootBare, BootVM) and the workload library;
//   - the experiment harness (Experiments, ExperimentByID) that
//     regenerates every table and figure in the paper.
//
// See examples/ for runnable walk-throughs and DESIGN.md for the
// system inventory.
package repro

import (
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/exp"
	"repro/internal/mem"
	"repro/internal/vax"
	"repro/internal/vmos"
)

// Architecture definitions.
type (
	// Mode is a VAX access mode (protection ring): Kernel, Executive,
	// Supervisor or User.
	Mode = vax.Mode
	// PSL is a processor status longword.
	PSL = vax.PSL
	// PTE is a page table entry.
	PTE = vax.PTE
	// Protection is a 4-bit VAX page protection code.
	Protection = vax.Protection
	// Vector is an SCB vector offset.
	Vector = vax.Vector
)

// The four access modes, most privileged first.
const (
	Kernel     = vax.Kernel
	Executive  = vax.Executive
	Supervisor = vax.Supervisor
	User       = vax.User
)

// Machine building blocks.
type (
	// CPU is a simulated VAX processor.
	CPU = cpu.CPU
	// Memory is flat physical memory.
	Memory = mem.Memory
	// Variant selects the standard or modified (virtualizable) VAX.
	Variant = cpu.Variant
)

// Processor variants.
const (
	StandardVAX = cpu.StandardVAX
	ModifiedVAX = cpu.ModifiedVAX
)

// NewMemory creates size bytes of physical memory.
func NewMemory(size uint32) *Memory { return mem.New(size) }

// NewCPU creates a processor of the given variant over m.
func NewCPU(m *Memory, v Variant) *CPU { return cpu.New(m, v) }

// Program is an assembled VAX program.
type Program = asm.Program

// Assemble translates VAX assembly source, loading it at origin.
func Assemble(src string, origin uint32) (*Program, error) {
	return asm.Assemble(src, origin)
}

// The virtual machine monitor (the paper's primary contribution).
type (
	// VMM is the ring-compression virtual machine monitor.
	VMM = core.VMM
	// VM is one virtual VAX processor under a VMM.
	VM = core.VM
	// Config tunes the VMM; the zero value is the paper's design.
	Config = core.Config
	// VMConfig describes a virtual machine to create.
	VMConfig = core.VMConfig
	// RingScheme selects the ring virtualization strategy.
	RingScheme = core.RingScheme
)

// Ring virtualization schemes (Section 7.1 of the paper).
const (
	RingCompression      = core.RingCompression
	TrapAll              = core.TrapAll
	SeparateAddressSpace = core.SeparateAddressSpace
)

// NewVMM builds a VMM over a fresh modified-VAX machine with the given
// physical memory size.
func NewVMM(memBytes uint32, cfg Config) *VMM { return core.New(memBytes, cfg) }

// MiniOS, the guest operating system.
type (
	// OSConfig describes a MiniOS instance.
	OSConfig = vmos.Config
	// OSImage is a built MiniOS memory image.
	OSImage = vmos.Image
	// OSTarget selects the device drivers MiniOS links in.
	OSTarget = vmos.Target
	// Process is one MiniOS user program.
	Process = vmos.Process
	// Machine is a bare VAX booted with MiniOS.
	Machine = vmos.Machine
)

// MiniOS targets.
const (
	TargetBare   = vmos.TargetBare
	TargetVM     = vmos.TargetVM
	TargetVMMMIO = vmos.TargetVMMMIO
)

// BuildOS assembles a MiniOS image.
func BuildOS(cfg OSConfig) (*OSImage, error) { return vmos.Build(cfg) }

// BootBare loads a MiniOS image on a bare machine of the given variant.
func BootBare(im *OSImage, v Variant, diskBlocks int) (*Machine, error) {
	return vmos.BootBare(im, v, diskBlocks)
}

// BootVM creates a virtual machine under k running the MiniOS image.
func BootVM(k *VMM, im *OSImage, diskBlocks int) (*VM, error) {
	return vmos.BootVM(k, im, diskBlocks)
}

// Experiments and results.
type (
	// Experiment is one runnable table/figure/measurement reproduction.
	Experiment = exp.Spec
	// ExperimentResult is a regenerated table, figure or measurement.
	ExperimentResult = exp.Result
)

// Experiments returns every experiment in paper order.
func Experiments() []Experiment { return exp.All() }

// ExperimentByID looks an experiment up by its ID (T1-T4, F1-F3, E1-E7).
func ExperimentByID(id string) (Experiment, bool) { return exp.ByID(id) }
