package vax

import "fmt"

// SCB vector offsets (bytes from SCBB). Each longword in the system
// control block holds the virtual address of the handler for that event;
// the low two bits select the stack (0 = stack of the new mode, 1 =
// interrupt stack). This subset follows the VAX Architecture Reference
// Manual, plus the two modified-VAX vectors of Sections 4.2 and 4.4.2.
type Vector uint32

const (
	VecMachineCheck  Vector = 0x04
	VecKernelStkInv  Vector = 0x08
	VecPowerFail     Vector = 0x0C
	VecPrivInstr     Vector = 0x10 // reserved/privileged instruction fault
	VecCustReserved  Vector = 0x14 // XFC customer reserved instruction
	VecRsvdOperand   Vector = 0x18 // reserved operand fault
	VecRsvdAddrMode  Vector = 0x1C // reserved addressing mode fault
	VecAccessViol    Vector = 0x20 // access control violation fault
	VecTransNotValid Vector = 0x24 // translation not valid (page) fault
	VecTracePending  Vector = 0x28
	VecBreakpoint    Vector = 0x2C
	VecCompatibility Vector = 0x30
	VecArithmetic    Vector = 0x34

	// Modified-VAX vectors (paper Sections 4.2, 4.4.2). VecVMEmulation
	// receives every sensitive instruction executed with PSL<VM> set;
	// VecModifyFault receives the first legal write to a page whose
	// PTE<M> is clear.
	VecVMEmulation Vector = 0x38
	VecModifyFault Vector = 0x3C

	VecCHMK Vector = 0x40
	VecCHME Vector = 0x44
	VecCHMS Vector = 0x48
	VecCHMU Vector = 0x4C

	// Software interrupt vectors: level n uses 0x80 + 4n, n = 1..15.
	VecSoftwareBase Vector = 0x80

	VecClock   Vector = 0xC0
	VecConsole Vector = 0xF8
	VecDisk    Vector = 0xA4

	// SCBSize is the number of bytes of SCB the simulator dispatches
	// through (one page, as on most VAX processors' first SCB page).
	SCBSize = 512
)

// SoftwareVector returns the SCB vector for software interrupt level n
// (1..15).
func SoftwareVector(level uint8) Vector {
	return VecSoftwareBase + Vector(level)*4
}

func (v Vector) String() string {
	switch v {
	case VecMachineCheck:
		return "machine check"
	case VecKernelStkInv:
		return "kernel stack not valid"
	case VecPowerFail:
		return "power fail"
	case VecPrivInstr:
		return "privileged instruction"
	case VecCustReserved:
		return "customer reserved instruction"
	case VecRsvdOperand:
		return "reserved operand"
	case VecRsvdAddrMode:
		return "reserved addressing mode"
	case VecAccessViol:
		return "access violation"
	case VecTransNotValid:
		return "translation not valid"
	case VecTracePending:
		return "trace pending"
	case VecBreakpoint:
		return "breakpoint"
	case VecArithmetic:
		return "arithmetic"
	case VecVMEmulation:
		return "VM emulation"
	case VecModifyFault:
		return "modify fault"
	case VecCHMK:
		return "CHMK"
	case VecCHME:
		return "CHME"
	case VecCHMS:
		return "CHMS"
	case VecCHMU:
		return "CHMU"
	case VecClock:
		return "interval clock"
	case VecConsole:
		return "console"
	case VecDisk:
		return "disk"
	}
	if v >= VecSoftwareBase && v < VecSoftwareBase+16*4 {
		return fmt.Sprintf("software level %d", (v-VecSoftwareBase)/4)
	}
	return fmt.Sprintf("vector %#x", uint32(v))
}

// CHMVector returns the SCB vector for a change-mode instruction whose
// target mode is m.
func CHMVector(m Mode) Vector {
	return VecCHMK + Vector(m)*4
}

// Access-violation / translation-fault parameter word bits. The fault
// pushes (param, va, PC, PSL); param describes the reference.
const (
	FaultParamLength uint32 = 1 << 0 // length violation (beyond xLR)
	FaultParamPTERef uint32 = 1 << 1 // fault occurred referencing a PTE
	FaultParamWrite  uint32 = 1 << 2 // reference was a write or modify intent
)
