package vax

import "fmt"

// ExcKind classifies exceptional events by their restart semantics
// (Section 3.3 of the paper treats trap and fault as synonyms; the
// simulator keeps the distinction because it decides the saved PC).
type ExcKind uint8

const (
	// Fault: the saved PC names the faulting instruction, which is
	// retried after the handler returns (page faults, access violations,
	// modify faults).
	Fault ExcKind = iota
	// Trap: the saved PC names the next instruction (CHM, breakpoint,
	// arithmetic traps, VM-emulation traps).
	Trap
	// Abort: the instruction cannot be restarted; the machine halts or
	// the VMM terminates the VM (machine check, kernel stack not valid).
	Abort
	// Interrupt: asynchronous; delivered between instructions.
	Interrupt
)

func (k ExcKind) String() string {
	switch k {
	case Fault:
		return "fault"
	case Trap:
		return "trap"
	case Abort:
		return "abort"
	case Interrupt:
		return "interrupt"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Exception describes a synchronous or asynchronous transfer of control
// through the SCB. Params are pushed on the new stack above the saved
// PC/PSL pair, first parameter at the lowest address (on top).
type Exception struct {
	Vector Vector
	Kind   ExcKind
	Params []uint32
	// FromVM is set by the processor when the event was raised while
	// PSL<VM> was set, i.e. it interrupted a virtual machine. Microcode
	// clears PSL<VM> on any exception or interrupt (Section 4.2), so the
	// VMM learns the origin from this flag rather than from the PSL.
	FromVM bool
	// VMInfo is non-nil only for VM-emulation traps on the modified VAX;
	// it carries the microcode-decoded instruction (Section 4.2).
	VMInfo *VMTrapInfo
}

// Error satisfies the error interface so memory and execution routines
// can return exceptions up to the instruction loop.
func (e *Exception) Error() string {
	return fmt.Sprintf("%s %s %v", e.Vector, e.Kind, e.Params)
}

// ExcScratch is a reusable exception cell for hot fault paths. The
// interpreter raises the common vectors (access violation, translation
// not valid, modify fault, reserved operand/addressing, privileged
// instruction) thousands of times per run; allocating an Exception and
// a Params slice for each would dominate the allocation profile. A
// scratch cell is embedded per CPU and per MMU, and each Set call
// recycles it.
//
// Convention: a *Exception obtained from a scratch cell is valid only
// until the owner's next fault — handlers must consume it (dispatch it
// or copy Params out) before executing another instruction, and must
// never retain it across instructions. See DESIGN.md, "Allocation-free
// fault path".
type ExcScratch struct {
	exc    Exception
	params [2]uint32
}

// Set recycles the scratch cell as a parameterless exception.
func (s *ExcScratch) Set(vec Vector, kind ExcKind) *Exception {
	s.exc = Exception{Vector: vec, Kind: kind}
	return &s.exc
}

// Set1 recycles the scratch cell with one parameter.
func (s *ExcScratch) Set1(vec Vector, kind ExcKind, p0 uint32) *Exception {
	s.params[0] = p0
	s.exc = Exception{Vector: vec, Kind: kind, Params: s.params[:1]}
	return &s.exc
}

// Set2 recycles the scratch cell with two parameters (the fault
// parameter / faulting VA pair of the memory-management vectors).
func (s *ExcScratch) Set2(vec Vector, kind ExcKind, p0, p1 uint32) *Exception {
	s.params[0], s.params[1] = p0, p1
	s.exc = Exception{Vector: vec, Kind: kind, Params: s.params[:2]}
	return &s.exc
}

// VMTrapScratch is the VM-emulation analogue of ExcScratch: one
// reusable cell backing the Exception, VMTrapInfo, operand package and
// write-back reference of a VM-emulation trap. The modified VAX raises
// these on every sensitive VM-kernel instruction (and, under the
// trap-all scheme, on every VM-kernel instruction), so a per-trap
// heap Exception+VMTrapInfo+Operands allocation dominates the VMM
// slow-path profile. One cell is embedded per CPU.
//
// The same convention as ExcScratch applies: the returned *Exception
// (and the VMInfo it carries) is valid only until the owner's next
// VM trap — the VMM's emulate path must consume it before the VM
// executes another sensitive instruction, and must never retain it.
// Operands are copied into the cell so callers can build them in
// stack-allocated slice literals.
type VMTrapScratch struct {
	exc  Exception
	info VMTrapInfo
	ops  [4]uint32 // PROBE carries the most operands: mode, len, base, va
	wb   OperandRef
}

// Set recycles the cell as a VM-emulation trap for the given decoded
// instruction. operands (at most 4) are copied into the cell.
func (s *VMTrapScratch) Set(kind ExcKind, opcode uint16, pc, nextPC uint32,
	guestPSL PSL, operands []uint32, wb *OperandRef) *Exception {
	n := copy(s.ops[:], operands)
	s.info = VMTrapInfo{
		Opcode:    opcode,
		PC:        pc,
		NextPC:    nextPC,
		GuestPSL:  guestPSL,
		WriteBack: wb,
	}
	if n > 0 {
		s.info.Operands = s.ops[:n]
	}
	s.exc = Exception{Vector: VecVMEmulation, Kind: kind, VMInfo: &s.info}
	return &s.exc
}

// Ref recycles the cell's write-back reference (MFPR's result
// operand), replacing a per-trap OperandRef allocation.
func (s *VMTrapScratch) Ref(isRegister bool, register int, addr uint32) *OperandRef {
	s.wb = OperandRef{IsRegister: isRegister, Register: register, Address: addr}
	return &s.wb
}

// VMTrapInfo is the information the modified microcode hands the VMM
// with every VM-emulation trap: "complete information about the
// instruction and its decoded operands, as well as the PSL of the VM
// ... at the time the sensitive instruction was executed. Thus the VMM
// need not engage in any probing of the instruction stream or parsing
// of instruction operands" (Section 4.2).
type VMTrapInfo struct {
	Opcode   uint16   // full opcode (two bytes for FD-prefixed)
	PC       uint32   // address of the sensitive instruction
	NextPC   uint32   // address of the following instruction
	GuestPSL PSL      // the VM's composite PSL at the time of the trap
	Operands []uint32 // decoded operand values (source operands)
	// WriteBack, when non-nil, tells the VMM where a result operand
	// should be stored: either a register number or a virtual address.
	WriteBack *OperandRef
}

// OperandRef names a result operand location decoded by microcode.
type OperandRef struct {
	IsRegister bool
	Register   int    // significant when IsRegister
	Address    uint32 // virtual address when !IsRegister
}

func (r OperandRef) String() string {
	if r.IsRegister {
		return fmt.Sprintf("R%d", r.Register)
	}
	return fmt.Sprintf("@%#x", r.Address)
}
