// Package vax defines the architectural constants and data layouts of the
// VAX architecture as used throughout this reproduction of "Virtualizing
// the VAX Architecture" (Hall & Robinson, ISCA 1991): the processor status
// longword, the four access modes, page table entries and their protection
// codes, internal processor registers, and the system control block.
//
// The package is purely declarative; execution semantics live in
// internal/cpu and internal/mmu.
package vax

import "fmt"

// Mode is a VAX access mode (protection ring). Numerically smaller modes
// are more privileged, matching the VAX encoding in PSL<CUR> and PSL<PRV>.
type Mode uint8

// The four VAX access modes, most privileged first.
const (
	Kernel Mode = iota
	Executive
	Supervisor
	User
	NumModes = 4
)

// String returns the conventional VAX name of the mode.
func (m Mode) String() string {
	switch m {
	case Kernel:
		return "kernel"
	case Executive:
		return "executive"
	case Supervisor:
		return "supervisor"
	case User:
		return "user"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Valid reports whether m is one of the four architectural modes.
func (m Mode) Valid() bool { return m <= User }

// MorePrivileged reports whether m is strictly more privileged than n.
func (m Mode) MorePrivileged(n Mode) bool { return m < n }

// LeastPrivileged returns the less privileged of two modes. The VAX uses
// this combination rule in CHM (target cannot increase privilege beyond
// current) and PROBE (operand mode combined with PSL<PRV>).
func LeastPrivileged(a, b Mode) Mode {
	if a > b {
		return a
	}
	return b
}

// Processor status longword (PSL) field definitions.
//
// The low word is the PSW (condition codes and trap enables); the high
// word holds the privileged fields. PSL<VM> (bit 28) is the modified-VAX
// virtual machine mode bit introduced in Section 4.2 of the paper; it is
// a reserved-zero bit on the standard VAX.
const (
	PSLC  uint32 = 1 << 0 // carry condition code
	PSLV  uint32 = 1 << 1 // overflow condition code
	PSLZ  uint32 = 1 << 2 // zero condition code
	PSLN  uint32 = 1 << 3 // negative condition code
	PSLT  uint32 = 1 << 4 // trace trap enable
	PSLIV uint32 = 1 << 5 // integer overflow enable
	PSLFU uint32 = 1 << 6 // floating underflow enable
	PSLDV uint32 = 1 << 7 // decimal overflow enable

	PSLIPLShift        = 16
	PSLIPLMask  uint32 = 0x1F << PSLIPLShift // interrupt priority level

	PSLPrvShift        = 22
	PSLPrvMask  uint32 = 3 << PSLPrvShift // previous access mode
	PSLCurShift        = 24
	PSLCurMask  uint32 = 3 << PSLCurShift // current access mode

	PSLIS  uint32 = 1 << 26 // interrupt stack in use
	PSLFPD uint32 = 1 << 27 // first part done
	PSLVM  uint32 = 1 << 28 // virtual machine mode (modified VAX only)
	PSLTP  uint32 = 1 << 30 // trace pending
	PSLCM  uint32 = 1 << 31 // compatibility mode

	// PSLCC covers the four condition code bits.
	PSLCC = PSLC | PSLV | PSLZ | PSLN

	// PSLMBZ are the bits that must be zero in any PSL image given to
	// REI on the standard architecture: bits 8-15, bit 21, and bit 29.
	// (Bit 28 — PSL<VM> on the modified architecture — is checked
	// separately so REI can name it explicitly.)
	PSLMBZ uint32 = 0x2020FF00
)

// PSL wraps a processor status longword with field accessors.
type PSL uint32

// Cur returns the current access mode field.
func (p PSL) Cur() Mode { return Mode(uint32(p) & PSLCurMask >> PSLCurShift) }

// Prv returns the previous access mode field.
func (p PSL) Prv() Mode { return Mode(uint32(p) & PSLPrvMask >> PSLPrvShift) }

// IPL returns the interrupt priority level field.
func (p PSL) IPL() uint8 { return uint8(uint32(p) & PSLIPLMask >> PSLIPLShift) }

// IS reports whether the interrupt stack bit is set.
func (p PSL) IS() bool { return uint32(p)&PSLIS != 0 }

// VM reports whether the (modified VAX) virtual machine mode bit is set.
func (p PSL) VM() bool { return uint32(p)&PSLVM != 0 }

// WithCur returns p with the current mode field replaced.
func (p PSL) WithCur(m Mode) PSL {
	return PSL(uint32(p)&^PSLCurMask | uint32(m)<<PSLCurShift)
}

// WithPrv returns p with the previous mode field replaced.
func (p PSL) WithPrv(m Mode) PSL {
	return PSL(uint32(p)&^PSLPrvMask | uint32(m)<<PSLPrvShift)
}

// WithIPL returns p with the interrupt priority level field replaced.
func (p PSL) WithIPL(ipl uint8) PSL {
	return PSL(uint32(p)&^PSLIPLMask | uint32(ipl&0x1F)<<PSLIPLShift)
}

// WithVM returns p with PSL<VM> set or cleared.
func (p PSL) WithVM(on bool) PSL {
	if on {
		return PSL(uint32(p) | PSLVM)
	}
	return PSL(uint32(p) &^ PSLVM)
}

func (p PSL) String() string {
	return fmt.Sprintf("PSL{cur=%s prv=%s ipl=%d is=%t vm=%t cc=%04b}",
		p.Cur(), p.Prv(), p.IPL(), p.IS(), p.VM(), uint32(p)&PSLCC)
}

// Virtual address space geometry. Pages are 512 bytes; the 32-bit virtual
// address divides into a 2-bit region select, a 21-bit virtual page
// number, and a 9-bit byte offset (VAX Architecture Reference Manual).
const (
	PageSize  = 512
	PageShift = 9
	PageMask  = PageSize - 1

	// Region selectors from virtual address bits <31:30>.
	RegionP0       = 0 // program region, grows up from 0
	RegionP1       = 1 // control region, grows down toward 0x40000000
	RegionSystem   = 2 // system region, shared by all processes
	RegionReserved = 3

	// Region base virtual addresses.
	P0Base     uint32 = 0x00000000
	P1Base     uint32 = 0x40000000
	SystemBase uint32 = 0x80000000

	// MaxRegionBytes is the architectural 1 GB upper limit on the size of
	// each of P0, P1 and S space (Section 5 notes the virtual VAX may be
	// configured with a smaller limit).
	MaxRegionBytes uint32 = 1 << 30
)

// Region returns the region selector (RegionP0..RegionReserved) of va.
func Region(va uint32) int { return int(va >> 30) }

// VPN returns the virtual page number within the region of va.
func VPN(va uint32) uint32 { return (va & 0x3FFFFFFF) >> PageShift }

// PageBase returns va rounded down to its page base.
func PageBase(va uint32) uint32 { return va &^ uint32(PageMask) }
