package vax

// Opcodes for the implemented VAX instruction subset, using the real VAX
// encodings. Two-byte opcodes use the FD extension prefix; the WAIT and
// PROBEVM instructions added by the modified architecture are assigned
// FD-prefixed codes in the implementation-reserved space.
const (
	OpHALT   uint16 = 0x00
	OpNOP    uint16 = 0x01
	OpREI    uint16 = 0x02
	OpBPT    uint16 = 0x03
	OpRET    uint16 = 0x04
	OpRSB    uint16 = 0x05
	OpLDPCTX uint16 = 0x06
	OpSVPCTX uint16 = 0x07

	OpINSQUE uint16 = 0x0E
	OpREMQUE uint16 = 0x0F
	OpMOVC3  uint16 = 0x28
	OpCMPC3  uint16 = 0x29

	OpPROBER uint16 = 0x0C
	OpPROBEW uint16 = 0x0D
	OpBSBB   uint16 = 0x10
	OpBRB    uint16 = 0x11
	OpBNEQ   uint16 = 0x12
	OpBEQL   uint16 = 0x13
	OpBGTR   uint16 = 0x14
	OpBLEQ   uint16 = 0x15
	OpJSB    uint16 = 0x16
	OpJMP    uint16 = 0x17
	OpBGEQ   uint16 = 0x18
	OpBLSS   uint16 = 0x19
	OpBGTRU  uint16 = 0x1A
	OpBLEQU  uint16 = 0x1B
	OpBVC    uint16 = 0x1C
	OpBVS    uint16 = 0x1D
	OpBCC    uint16 = 0x1E // also BGEQU
	OpBCS    uint16 = 0x1F // also BLSSU

	OpBSBW   uint16 = 0x30
	OpBRW    uint16 = 0x31
	OpCVTWL  uint16 = 0x32
	OpCVTWB  uint16 = 0x33
	OpMOVZWL uint16 = 0x3C

	OpASHL uint16 = 0x78

	OpMOVB   uint16 = 0x90
	OpCMPB   uint16 = 0x91
	OpMCOMB  uint16 = 0x92
	OpCLRB   uint16 = 0x94
	OpTSTB   uint16 = 0x95
	OpCVTBL  uint16 = 0x98
	OpCVTBW  uint16 = 0x99
	OpMOVZBL uint16 = 0x9A
	OpMOVAB  uint16 = 0x9E

	OpMOVW uint16 = 0xB0
	OpCMPW uint16 = 0xB1
	OpCLRW uint16 = 0xB4
	OpTSTW uint16 = 0xB5

	OpADDL2 uint16 = 0xC0
	OpADDL3 uint16 = 0xC1
	OpSUBL2 uint16 = 0xC2
	OpSUBL3 uint16 = 0xC3
	OpMULL2 uint16 = 0xC4
	OpMULL3 uint16 = 0xC5
	OpDIVL2 uint16 = 0xC6
	OpDIVL3 uint16 = 0xC7
	OpBISL2 uint16 = 0xC8
	OpBISL3 uint16 = 0xC9
	OpBICL2 uint16 = 0xCA
	OpBICL3 uint16 = 0xCB
	OpXORL2 uint16 = 0xCC
	OpXORL3 uint16 = 0xCD
	OpCASEL uint16 = 0xCF

	OpMOVL  uint16 = 0xD0
	OpCMPL  uint16 = 0xD1
	OpMNEGL uint16 = 0xD2
	OpBITL  uint16 = 0xD3
	OpCLRL  uint16 = 0xD4
	OpTSTL  uint16 = 0xD5
	OpINCL  uint16 = 0xD6
	OpDECL  uint16 = 0xD7
	OpBLBS  uint16 = 0xE8
	OpBLBC  uint16 = 0xE9

	OpBBS   uint16 = 0xE0
	OpBBC   uint16 = 0xE1
	OpCALLG uint16 = 0xFA
	OpCALLS uint16 = 0xFB

	OpMOVPSL uint16 = 0xDC
	OpPUSHL  uint16 = 0xDD
	OpMOVAL  uint16 = 0xDE
	OpMFPR   uint16 = 0xDB
	OpMTPR   uint16 = 0xDA

	OpACBL   uint16 = 0xF1
	OpCVTLB  uint16 = 0xF6
	OpCVTLW  uint16 = 0xF7
	OpAOBLSS uint16 = 0xF2
	OpAOBLEQ uint16 = 0xF3
	OpSOBGEQ uint16 = 0xF4
	OpSOBGTR uint16 = 0xF5

	OpCHMK uint16 = 0xBC
	OpCHME uint16 = 0xBD
	OpCHMS uint16 = 0xBE
	OpCHMU uint16 = 0xBF

	OpXFC uint16 = 0xFC // customer reserved

	// ExtPrefix introduces a two-byte opcode.
	ExtPrefix byte = 0xFD

	// Modified-architecture instructions (two-byte, FD-prefixed).
	OpWAIT     uint16 = 0xFD30
	OpPROBEVMR uint16 = 0xFD31
	OpPROBEVMW uint16 = 0xFD32
)

// CHMTarget returns the target mode of a CHM opcode, and whether op is a
// CHM instruction at all.
func CHMTarget(op uint16) (Mode, bool) {
	switch op {
	case OpCHMK:
		return Kernel, true
	case OpCHME:
		return Executive, true
	case OpCHMS:
		return Supervisor, true
	case OpCHMU:
		return User, true
	}
	return 0, false
}
