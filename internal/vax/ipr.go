package vax

import "fmt"

// IPR numbers the internal processor registers accessed by MTPR and MFPR.
// Numbers follow the VAX Architecture Reference Manual where a register
// exists there; the virtual-VAX registers of Section 5 of the paper
// (MEMSIZE, KCALL, IORESET) are given numbers in the implementation-
// reserved range.
type IPR uint32

const (
	IPRKSP  IPR = 0  // kernel stack pointer
	IPRESP  IPR = 1  // executive stack pointer
	IPRSSP  IPR = 2  // supervisor stack pointer
	IPRUSP  IPR = 3  // user stack pointer
	IPRISP  IPR = 4  // interrupt stack pointer
	IPRP0BR IPR = 8  // P0 base register (virtual address in S space)
	IPRP0LR IPR = 9  // P0 length register (number of PTEs)
	IPRP1BR IPR = 10 // P1 base register
	IPRP1LR IPR = 11 // P1 length register
	IPRSBR  IPR = 12 // system base register (physical address)
	IPRSLR  IPR = 13 // system length register
	IPRPCBB IPR = 16 // process control block base (physical)
	IPRSCBB IPR = 17 // system control block base (physical)
	IPRIPL  IPR = 18 // interrupt priority level
	IPRASTL IPR = 19 // AST level
	IPRSIRR IPR = 20 // software interrupt request (write only)
	IPRSISR IPR = 21 // software interrupt summary
	IPRICCS IPR = 24 // interval clock control/status
	IPRNICR IPR = 25 // next interval count
	IPRICR  IPR = 26 // interval count
	IPRTODR IPR = 27 // time of year
	IPRRXCS IPR = 32 // console receive control/status
	IPRRXDB IPR = 33 // console receive data buffer
	IPRTXCS IPR = 34 // console transmit control/status
	IPRTXDB IPR = 35 // console transmit data buffer
	IPRMPEN IPR = 56 // memory management enable (MAPEN)
	IPRTBIA IPR = 57 // translation buffer invalidate all
	IPRTBIS IPR = 58 // translation buffer invalidate single
	IPRSID  IPR = 62 // system identification

	// Virtual-VAX registers (paper Section 5). These exist only inside a
	// virtual machine; on real processors they are reserved and MTPR/MFPR
	// to them takes a reserved operand fault.
	IPRMEMSIZE IPR = 200 // total VM physical memory in bytes (read only)
	IPRKCALL   IPR = 201 // start-I/O / VMM service request (write only)
	IPRIORESET IPR = 202 // reset all virtual I/O devices (write only)
)

// VirtualOnly reports whether r exists only on the virtual VAX.
func (r IPR) VirtualOnly() bool {
	return r == IPRMEMSIZE || r == IPRKCALL || r == IPRIORESET
}

func (r IPR) String() string {
	switch r {
	case IPRKSP:
		return "KSP"
	case IPRESP:
		return "ESP"
	case IPRSSP:
		return "SSP"
	case IPRUSP:
		return "USP"
	case IPRISP:
		return "ISP"
	case IPRP0BR:
		return "P0BR"
	case IPRP0LR:
		return "P0LR"
	case IPRP1BR:
		return "P1BR"
	case IPRP1LR:
		return "P1LR"
	case IPRSBR:
		return "SBR"
	case IPRSLR:
		return "SLR"
	case IPRPCBB:
		return "PCBB"
	case IPRSCBB:
		return "SCBB"
	case IPRIPL:
		return "IPL"
	case IPRASTL:
		return "ASTLVL"
	case IPRSIRR:
		return "SIRR"
	case IPRSISR:
		return "SISR"
	case IPRICCS:
		return "ICCS"
	case IPRNICR:
		return "NICR"
	case IPRICR:
		return "ICR"
	case IPRTODR:
		return "TODR"
	case IPRRXCS:
		return "RXCS"
	case IPRRXDB:
		return "RXDB"
	case IPRTXCS:
		return "TXCS"
	case IPRTXDB:
		return "TXDB"
	case IPRMPEN:
		return "MAPEN"
	case IPRTBIA:
		return "TBIA"
	case IPRTBIS:
		return "TBIS"
	case IPRSID:
		return "SID"
	case IPRMEMSIZE:
		return "MEMSIZE"
	case IPRKCALL:
		return "KCALL"
	case IPRIORESET:
		return "IORESET"
	}
	return fmt.Sprintf("IPR(%d)", uint32(r))
}

// Interval clock control/status bits (ICCS).
const (
	ICCSRun      uint32 = 1 << 0 // clock running
	ICCSTransfer uint32 = 1 << 4 // transfer NICR to ICR
	ICCSIE       uint32 = 1 << 6 // interrupt enable
	ICCSInt      uint32 = 1 << 7 // interrupt pending / acknowledge
)

// Console control/status bits (RXCS/TXCS).
const (
	ConsoleReady uint32 = 1 << 7 // receiver done / transmitter ready
	ConsoleIE    uint32 = 1 << 6 // interrupt enable
)

// Interrupt priority levels used by the simulated hardware.
const (
	IPLSoftwareMax = 15 // software interrupt levels 1..15
	IPLConsole     = 20
	IPLDisk        = 21
	IPLClock       = 22
	IPLMax         = 31
)
