package vax

import (
	"testing"
	"testing/quick"
)

func TestModeOrdering(t *testing.T) {
	if !Kernel.MorePrivileged(Executive) {
		t.Error("kernel should be more privileged than executive")
	}
	if !Executive.MorePrivileged(Supervisor) || !Supervisor.MorePrivileged(User) {
		t.Error("privilege order must be K > E > S > U")
	}
	if User.MorePrivileged(Kernel) {
		t.Error("user must not outrank kernel")
	}
	if got := LeastPrivileged(Kernel, User); got != User {
		t.Errorf("LeastPrivileged(K,U) = %s, want user", got)
	}
	if got := LeastPrivileged(Supervisor, Executive); got != Supervisor {
		t.Errorf("LeastPrivileged(S,E) = %s, want supervisor", got)
	}
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{Kernel: "kernel", Executive: "executive", Supervisor: "supervisor", User: "user"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
		if !m.Valid() {
			t.Errorf("%s should be valid", s)
		}
	}
	if Mode(7).Valid() {
		t.Error("mode 7 should be invalid")
	}
}

func TestPSLFields(t *testing.T) {
	var p PSL
	p = p.WithCur(User).WithPrv(Supervisor).WithIPL(22)
	if p.Cur() != User || p.Prv() != Supervisor || p.IPL() != 22 {
		t.Fatalf("round trip failed: %s", p)
	}
	if p.VM() {
		t.Error("VM bit should start clear")
	}
	p = p.WithVM(true)
	if !p.VM() {
		t.Error("WithVM(true) failed")
	}
	if uint32(p)&PSLVM == 0 {
		t.Error("VM bit must be bit 28")
	}
	p = p.WithVM(false)
	if p.VM() {
		t.Error("WithVM(false) failed")
	}
}

func TestPSLFieldIndependence(t *testing.T) {
	f := func(raw uint32, cur, prv uint8, ipl uint8) bool {
		p := PSL(raw).WithCur(Mode(cur % 4)).WithPrv(Mode(prv % 4)).WithIPL(ipl % 32)
		// Setting mode fields must not disturb IPL and vice versa.
		return p.Cur() == Mode(cur%4) && p.Prv() == Mode(prv%4) && p.IPL() == ipl%32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPTERoundTrip(t *testing.T) {
	f := func(valid, modified bool, prot uint8, pfn uint32) bool {
		p := NewPTE(valid, Protection(prot%16), modified, pfn&0x1FFFFF)
		return p.Valid() == valid && p.Modified() == modified &&
			p.Prot() == Protection(prot%16) && p.PFN() == pfn&0x1FFFFF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPTEWith(t *testing.T) {
	p := NewPTE(false, ProtURKW, false, 42)
	p = p.WithValid(true)
	if !p.Valid() || p.PFN() != 42 || p.Prot() != ProtURKW {
		t.Fatalf("WithValid disturbed other fields: %s", p)
	}
	p = p.WithModify(true)
	if !p.Modified() || !p.Valid() {
		t.Fatalf("WithModify disturbed valid: %s", p)
	}
	p = p.WithProt(ProtUR)
	if p.Prot() != ProtUR || p.PFN() != 42 || !p.Modified() {
		t.Fatalf("WithProt disturbed other fields: %s", p)
	}
}

// TestProtectionTable checks the example from Section 3.2.1 of the paper:
// "Executive Mode Write, Supervisor Mode Read" (SREW) gives user no
// access, supervisor read, executive and kernel read/write.
func TestProtectionTable(t *testing.T) {
	p := ProtSREW
	cases := []struct {
		mode  Mode
		read  bool
		write bool
	}{
		{User, false, false},
		{Supervisor, true, false},
		{Executive, true, true},
		{Kernel, true, true},
	}
	for _, c := range cases {
		if p.CanRead(c.mode) != c.read {
			t.Errorf("SREW CanRead(%s) = %t, want %t", c.mode, p.CanRead(c.mode), c.read)
		}
		if p.CanWrite(c.mode) != c.write {
			t.Errorf("SREW CanWrite(%s) = %t, want %t", c.mode, p.CanWrite(c.mode), c.write)
		}
	}
}

// TestWriteImpliesRead checks the architectural rule that for any mode,
// write access implies read access, over every code and mode.
func TestWriteImpliesRead(t *testing.T) {
	for code := 0; code < 16; code++ {
		p := Protection(code)
		for m := Kernel; m <= User; m++ {
			if p.CanWrite(m) && !p.CanRead(m) {
				t.Errorf("%s: mode %s can write but not read", p, m)
			}
		}
	}
}

// TestPrivilegeMonotonic checks that access never decreases with more
// privilege: if mode m can read/write, every more privileged mode can too.
func TestPrivilegeMonotonic(t *testing.T) {
	for code := 0; code < 16; code++ {
		p := Protection(code)
		for m := Executive; m <= User; m++ {
			if p.CanRead(m) && !p.CanRead(m-1) {
				t.Errorf("%s: %s can read but %s cannot", p, m, m-1)
			}
			if p.CanWrite(m) && !p.CanWrite(m-1) {
				t.Errorf("%s: %s can write but %s cannot", p, m, m-1)
			}
		}
	}
}

func TestNoAccessAndReserved(t *testing.T) {
	for m := Kernel; m <= User; m++ {
		if ProtNA.CanRead(m) || ProtNA.CanWrite(m) {
			t.Errorf("NA grants access to %s", m)
		}
		if ProtRsvd.CanRead(m) || ProtRsvd.CanWrite(m) {
			t.Errorf("reserved code grants access to %s", m)
		}
	}
	if !ProtRsvd.Reserved() || ProtNA.Reserved() {
		t.Error("Reserved() misclassifies")
	}
}

// TestCompressMap checks the compression table of DESIGN.md §6.
func TestCompressMap(t *testing.T) {
	want := map[Protection]Protection{
		ProtKW:   ProtEW,
		ProtKR:   ProtER,
		ProtERKW: ProtEW,
		ProtSRKW: ProtSREW,
		ProtURKW: ProtUREW,
	}
	for code := 0; code < 16; code++ {
		p := Protection(code)
		got := p.Compress()
		if w, ok := want[p]; ok {
			if got != w {
				t.Errorf("Compress(%s) = %s, want %s", p, got, w)
			}
		} else if got != p {
			t.Errorf("Compress(%s) = %s, want fixed point", p, got)
		}
	}
}

// TestCompressInvariants checks the two defining properties of memory
// ring compression (Section 4.3.1): (1) executive mode gains exactly the
// access kernel mode had, and (2) supervisor and user access is
// unchanged.
func TestCompressInvariants(t *testing.T) {
	for code := 0; code < 16; code++ {
		p := Protection(code)
		if p.Reserved() {
			continue
		}
		c := p.Compress()
		if c.CanRead(Executive) != p.CanRead(Kernel) {
			t.Errorf("%s→%s: executive read %t != kernel read %t", p, c,
				c.CanRead(Executive), p.CanRead(Kernel))
		}
		if c.CanWrite(Executive) != p.CanWrite(Kernel) {
			t.Errorf("%s→%s: executive write %t != kernel write %t", p, c,
				c.CanWrite(Executive), p.CanWrite(Kernel))
		}
		for _, m := range []Mode{Supervisor, User} {
			if c.CanRead(m) != p.CanRead(m) || c.CanWrite(m) != p.CanWrite(m) {
				t.Errorf("%s→%s: %s access changed", p, c, m)
			}
		}
	}
}

func TestCompressIdempotent(t *testing.T) {
	for code := 0; code < 16; code++ {
		p := Protection(code)
		if p.Compress().Compress() != p.Compress() {
			t.Errorf("Compress not idempotent at %s", p)
		}
		if p.Compress().KernelOnly() {
			t.Errorf("Compress(%s) still kernel-only", p)
		}
	}
}

func TestKernelOnly(t *testing.T) {
	want := map[Protection]bool{
		ProtKW: true, ProtKR: true, ProtERKW: true, ProtSRKW: true, ProtURKW: true,
	}
	for code := 0; code < 16; code++ {
		p := Protection(code)
		if p.KernelOnly() != want[p] {
			t.Errorf("KernelOnly(%s) = %t", p, p.KernelOnly())
		}
	}
}

func TestRegionDecoding(t *testing.T) {
	cases := []struct {
		va     uint32
		region int
		vpn    uint32
	}{
		{0x00000000, RegionP0, 0},
		{0x00000200, RegionP0, 1},
		{0x3FFFFFFF, RegionP0, 0x1FFFFF},
		{0x40000000, RegionP1, 0},
		{0x7FFFFE00, RegionP1, 0x1FFFFF},
		{0x80000000, RegionSystem, 0},
		{0x80000400, RegionSystem, 2},
		{0xC0000000, RegionReserved, 0},
	}
	for _, c := range cases {
		if Region(c.va) != c.region {
			t.Errorf("Region(%#x) = %d, want %d", c.va, Region(c.va), c.region)
		}
		if VPN(c.va) != c.vpn {
			t.Errorf("VPN(%#x) = %#x, want %#x", c.va, VPN(c.va), c.vpn)
		}
	}
	if PageBase(0x80000473) != 0x80000400 {
		t.Errorf("PageBase wrong: %#x", PageBase(0x80000473))
	}
}

func TestCHMVectorAndTarget(t *testing.T) {
	if CHMVector(Kernel) != VecCHMK || CHMVector(User) != VecCHMU {
		t.Error("CHMVector mapping wrong")
	}
	for op, m := range map[uint16]Mode{OpCHMK: Kernel, OpCHME: Executive, OpCHMS: Supervisor, OpCHMU: User} {
		got, ok := CHMTarget(op)
		if !ok || got != m {
			t.Errorf("CHMTarget(%#x) = %s,%t", op, got, ok)
		}
	}
	if _, ok := CHMTarget(OpMOVL); ok {
		t.Error("MOVL is not a CHM")
	}
}

func TestSoftwareVector(t *testing.T) {
	if SoftwareVector(1) != 0x84 || SoftwareVector(15) != 0xBC {
		t.Error("software vectors wrong")
	}
}

func TestExceptionError(t *testing.T) {
	e := &Exception{Vector: VecAccessViol, Kind: Fault, Params: []uint32{4, 0x200}}
	if e.Error() == "" {
		t.Error("empty error string")
	}
}

func TestOperandRefString(t *testing.T) {
	r := OperandRef{IsRegister: true, Register: 3}
	if r.String() != "R3" {
		t.Errorf("got %q", r.String())
	}
	r = OperandRef{Address: 0x1234}
	if r.String() != "@0x1234" {
		t.Errorf("got %q", r.String())
	}
}

func TestVectorStrings(t *testing.T) {
	for _, v := range []Vector{VecMachineCheck, VecPrivInstr, VecAccessViol,
		VecTransNotValid, VecVMEmulation, VecModifyFault, VecCHMK, VecClock,
		SoftwareVector(3), Vector(0x1F0)} {
		if v.String() == "" {
			t.Errorf("vector %#x has empty name", uint32(v))
		}
	}
}

// TestStringers sweeps every String method over its values.
func TestStringers(t *testing.T) {
	for m := Mode(0); m < 6; m++ {
		if m.String() == "" {
			t.Error("empty mode name")
		}
	}
	for p := Protection(0); p < 17; p++ {
		if p.String() == "" {
			t.Error("empty protection name")
		}
	}
	for r := IPR(0); r < 210; r++ {
		if r.String() == "" {
			t.Errorf("empty IPR name for %d", uint32(r))
		}
	}
	for k := ExcKind(0); k < 6; k++ {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
	psl := PSL(0).WithCur(Executive).WithPrv(User).WithIPL(5).WithVM(true)
	if psl.String() == "" {
		t.Error("empty PSL string")
	}
	pte := NewPTE(true, ProtURKW, true, 99)
	if pte.String() == "" {
		t.Error("empty PTE string")
	}
}

func TestVirtualOnlyIPRs(t *testing.T) {
	for _, r := range []IPR{IPRMEMSIZE, IPRKCALL, IPRIORESET} {
		if !r.VirtualOnly() {
			t.Errorf("%s should be virtual-only", r)
		}
	}
	if IPRIPL.VirtualOnly() {
		t.Error("IPL is not virtual-only")
	}
}

func TestReadOnlyProtection(t *testing.T) {
	// ReadOnly removes exactly write access and preserves the read set.
	for code := 0; code < 16; code++ {
		p := Protection(code)
		if p.Reserved() {
			continue
		}
		ro := p.ReadOnly()
		for m := Kernel; m <= User; m++ {
			if ro.CanWrite(m) {
				t.Errorf("ReadOnly(%s)=%s still writable by %s", p, ro, m)
			}
			if ro.CanRead(m) != p.CanRead(m) {
				t.Errorf("ReadOnly(%s)=%s changed read access for %s", p, ro, m)
			}
		}
	}
}
