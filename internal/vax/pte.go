package vax

import "fmt"

// PTE is a VAX page table entry.
//
// Layout (VAX Architecture Reference Manual):
//
//	bit  31     V      valid
//	bits 30:27  PROT   protection code
//	bit  26     M      modify
//	bits 20:0   PFN    page frame number
//
// Bits 25:21 are software-available and unused here.
type PTE uint32

const (
	PTEValid  uint32 = 1 << 31
	PTEModify uint32 = 1 << 26

	pteProtShift        = 27
	pteProtMask  uint32 = 0xF << pteProtShift
	ptePFNMask   uint32 = 0x001FFFFF
)

// NewPTE assembles a page table entry.
func NewPTE(valid bool, prot Protection, modified bool, pfn uint32) PTE {
	v := uint32(prot)<<pteProtShift | pfn&ptePFNMask
	if valid {
		v |= PTEValid
	}
	if modified {
		v |= PTEModify
	}
	return PTE(v)
}

// Valid reports PTE<V>.
func (p PTE) Valid() bool { return uint32(p)&PTEValid != 0 }

// Modified reports PTE<M>.
func (p PTE) Modified() bool { return uint32(p)&PTEModify != 0 }

// Prot returns PTE<PROT>.
func (p PTE) Prot() Protection { return Protection(uint32(p) & pteProtMask >> pteProtShift) }

// PFN returns PTE<PFN>.
func (p PTE) PFN() uint32 { return uint32(p) & ptePFNMask }

// WithModify returns p with PTE<M> set or cleared.
func (p PTE) WithModify(on bool) PTE {
	if on {
		return PTE(uint32(p) | PTEModify)
	}
	return PTE(uint32(p) &^ PTEModify)
}

// WithValid returns p with PTE<V> set or cleared.
func (p PTE) WithValid(on bool) PTE {
	if on {
		return PTE(uint32(p) | PTEValid)
	}
	return PTE(uint32(p) &^ PTEValid)
}

// WithProt returns p with the protection code replaced.
func (p PTE) WithProt(prot Protection) PTE {
	return PTE(uint32(p)&^pteProtMask | uint32(prot)<<pteProtShift)
}

func (p PTE) String() string {
	return fmt.Sprintf("PTE{v=%t m=%t prot=%s pfn=%#x}", p.Valid(), p.Modified(), p.Prot(), p.PFN())
}

// Protection is a 4-bit VAX page protection code. Each code names the
// least privileged mode granted write access and the least privileged
// mode granted read access; for any mode, write access implies read
// access (Section 3.2.1 of the paper).
type Protection uint8

// The architectural protection codes.
const (
	ProtNA   Protection = 0  // no access
	ProtRsvd Protection = 1  // reserved; references fault
	ProtKW   Protection = 2  // kernel write
	ProtKR   Protection = 3  // kernel read
	ProtUW   Protection = 4  // all modes write (used by the null PTE)
	ProtEW   Protection = 5  // executive write
	ProtERKW Protection = 6  // executive read, kernel write
	ProtER   Protection = 7  // executive read
	ProtSW   Protection = 8  // supervisor write
	ProtSREW Protection = 9  // supervisor read, executive write
	ProtSRKW Protection = 10 // supervisor read, kernel write
	ProtSR   Protection = 11 // supervisor read
	ProtURSW Protection = 12 // user read, supervisor write
	ProtUREW Protection = 13 // user read, executive write
	ProtURKW Protection = 14 // user read, kernel write
	ProtUR   Protection = 15 // user read
)

// protSpec gives, for each protection code, the least privileged mode
// that may write and the least privileged mode that may read. A nil
// entry means no mode has that access.
type protSpec struct {
	write, read Mode
	hasWrite    bool
	hasRead     bool
	reserved    bool
}

var protTable = [16]protSpec{
	ProtNA:   {},
	ProtRsvd: {reserved: true},
	ProtKW:   {write: Kernel, read: Kernel, hasWrite: true, hasRead: true},
	ProtKR:   {read: Kernel, hasRead: true},
	ProtUW:   {write: User, read: User, hasWrite: true, hasRead: true},
	ProtEW:   {write: Executive, read: Executive, hasWrite: true, hasRead: true},
	ProtERKW: {write: Kernel, read: Executive, hasWrite: true, hasRead: true},
	ProtER:   {read: Executive, hasRead: true},
	ProtSW:   {write: Supervisor, read: Supervisor, hasWrite: true, hasRead: true},
	ProtSREW: {write: Executive, read: Supervisor, hasWrite: true, hasRead: true},
	ProtSRKW: {write: Kernel, read: Supervisor, hasWrite: true, hasRead: true},
	ProtSR:   {read: Supervisor, hasRead: true},
	ProtURSW: {write: Supervisor, read: User, hasWrite: true, hasRead: true},
	ProtUREW: {write: Executive, read: User, hasWrite: true, hasRead: true},
	ProtURKW: {write: Kernel, read: User, hasWrite: true, hasRead: true},
	ProtUR:   {read: User, hasRead: true},
}

var protNames = [16]string{
	"NA", "RESERVED", "KW", "KR", "UW", "EW", "ERKW", "ER",
	"SW", "SREW", "SRKW", "SR", "URSW", "UREW", "URKW", "UR",
}

func (p Protection) String() string {
	if p < 16 {
		return protNames[p]
	}
	return fmt.Sprintf("prot(%d)", uint8(p))
}

// Reserved reports whether p is the reserved protection code, references
// through which take a fault.
func (p Protection) Reserved() bool { return p == ProtRsvd }

// CanRead reports whether mode m may read a page with protection p.
func (p Protection) CanRead(m Mode) bool {
	s := protTable[p&0xF]
	if s.reserved {
		return false
	}
	// Write access implies read access.
	if s.hasWrite && m <= s.write {
		return true
	}
	return s.hasRead && m <= s.read
}

// CanWrite reports whether mode m may write a page with protection p.
func (p Protection) CanWrite(m Mode) bool {
	s := protTable[p&0xF]
	return !s.reserved && s.hasWrite && m <= s.write
}

// KernelOnly reports whether p limits all of its read or write access to
// kernel mode — exactly the codes that memory ring compression must
// rewrite (Section 4.3.1).
func (p Protection) KernelOnly() bool {
	switch p {
	case ProtKW, ProtKR, ProtERKW, ProtSRKW, ProtURKW:
		return true
	}
	return false
}

// ReadOnly returns the code granting p's read set and no write access —
// the building block of the modify-fault alternative the paper
// considered and rejected (Section 4.4.2: give writable pages a
// read-only shadow protection and upgrade on the first write fault).
func (p Protection) ReadOnly() Protection {
	switch p {
	case ProtKW:
		return ProtKR
	case ProtEW, ProtERKW:
		return ProtER
	case ProtSW, ProtSREW, ProtSRKW:
		return ProtSR
	case ProtUW, ProtURSW, ProtUREW, ProtURKW:
		return ProtUR
	}
	return p
}

// Compress returns the ring-compressed protection code: any access that
// p limits to kernel mode is extended to executive mode, so that VM
// kernel code (running in real executive mode) retains its access. All
// other codes are fixed points. This is the table in DESIGN.md §6.
func (p Protection) Compress() Protection {
	switch p {
	case ProtKW:
		return ProtEW
	case ProtKR:
		return ProtER
	case ProtERKW:
		return ProtEW
	case ProtSRKW:
		return ProtSREW
	case ProtURKW:
		return ProtUREW
	}
	return p
}
