package exp

import (
	"testing"

	"repro/internal/fault"
)

// TestFaultCampaign runs the fixed-seed fault-injection campaign (the
// same seeds CI smokes) and requires the isolation invariant to hold on
// every seed: injected faults surface as machine checks or retried I/O,
// never a Go panic or a VMM halt; the watchdog halts only the runaway;
// the bystander's console output, consumed CPU time and wall-clock
// completion stay within tolerance of the fault-free baseline.
func TestFaultCampaign(t *testing.T) {
	r, err := FaultCampaign(DefaultCampaignSeeds(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Match {
		t.Fatalf("campaign invariant violated:\n%s", r.Format())
	}
	if len(r.Rows) != 8 {
		t.Fatalf("expected 8 seed rows, got %d", len(r.Rows))
	}
}

// TestFaultCampaignDeterministic re-runs one seed and requires the
// injection counts and the bystander's completion cycle to repeat
// exactly: the whole campaign must be a pure function of the seed.
func TestFaultCampaignDeterministic(t *testing.T) {
	run := func() (fault.Stats, uint64) {
		inj, vms, violations := campaignSeedRun(3, baselineOut(t), 1<<62, 1<<62)
		if len(violations) != 0 {
			t.Fatalf("seed 3 violations: %v", violations)
		}
		return inj.Stats, vms[1].HaltCycles()
	}
	s1, c1 := run()
	s2, c2 := run()
	if s1 != s2 || c1 != c2 {
		t.Fatalf("seed 3 not reproducible: %+v@%d vs %+v@%d", s1, c1, s2, c2)
	}
	if s1.TransientFails == 0 && s1.PermanentErrors == 0 && s1.BusErrors == 0 {
		t.Fatal("seed 3 injected nothing; campaign config too weak")
	}
}

func baselineOut(t *testing.T) string {
	t.Helper()
	_, vms, err := campaignMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	return vms[1].ConsoleOutput()
}
