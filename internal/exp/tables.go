package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/vax"
)

// Table1 demonstrates each row of the paper's Table 1 on a standard
// VAX: privileged machine state reached by unprivileged instructions
// with no trap to kernel-mode software.
func Table1() (*Result, error) {
	r := &Result{
		ID:      "T1",
		Title:   "Sensitive data touched by unprivileged instructions (standard VAX)",
		Headers: []string{"Data item", "Instruction", "Observed"},
	}

	// PSL<CUR>: user-mode MOVPSL reads the mode; CHMS writes it — with
	// zero entries into kernel-mode software.
	mi, err := newMicro(cpu.StandardVAX, `
start:	movpsl r1            ; user mode reads PSL
	chms #0              ; change mode to supervisor: writes PSL<CUR>
	halt
	.align 4
chms:	movpsl r2            ; supervisor handler: proof of the switch
	movl r10, r9         ; kernel entries seen *before* the stop
	halt                 ; deliberate stop (privileged -> kern)
	.align 4
kern:	incl r10             ; counts kernel-software entries
	halt
`, map[vax.Vector]string{vax.VecCHMS: "chms", vax.VecPrivInstr: "kern"})
	if err != nil {
		return nil, err
	}
	mi.c.SetPSL(vax.PSL(0).WithCur(vax.User).WithPrv(vax.User))
	if err := mi.run(1000); err != nil {
		return nil, err
	}
	sawUser := vax.PSL(mi.c.R[1]).Cur() == vax.User
	got := vax.PSL(mi.c.R[2])
	sawSuper := got.Cur() == vax.Supervisor && got.Prv() == vax.User
	noKernel := mi.c.R[9] == 0
	r.addRow("PSL<CUR>", "MOVPSL (read)",
		check(sawUser, "user-mode MOVPSL returned cur=user without trapping"))
	r.addRow("PSL<CUR>", "CHM (read+write)",
		check(sawSuper && noKernel, "CHMS switched user->supervisor with no kernel software involved"))

	// PSL<PRV>: the same PROBE gives different answers depending only
	// on the previous-mode field.
	probeSrc := `
start:	prober #0, #4, @#0x80000a00   ; page 5: KR
	beql no
	movl #1, r3
	halt
no:	clrl r3
	halt
`
	overrides := map[uint32]vax.PTE{5: vax.NewPTE(true, vax.ProtKR, true, mmFrame+5)}
	asKernelPrv, err := newMapped(cpu.StandardVAX, probeSrc, nil, overrides)
	if err != nil {
		return nil, err
	}
	asKernelPrv.c.SetPSL(vax.PSL(0).WithCur(vax.Kernel).WithPrv(vax.Kernel))
	if err := asKernelPrv.run(1000); err != nil {
		return nil, err
	}
	asUserPrv, err := newMapped(cpu.StandardVAX, probeSrc, nil, overrides)
	if err != nil {
		return nil, err
	}
	asUserPrv.c.SetPSL(vax.PSL(0).WithCur(vax.Kernel).WithPrv(vax.User))
	if err := asUserPrv.run(1000); err != nil {
		return nil, err
	}
	prvMatters := asKernelPrv.c.R[3] == 1 && asUserPrv.c.R[3] == 0
	r.addRow("PSL<PRV>", "PROBE (read)",
		check(prvMatters, "identical PROBER accessible with prv=kernel, inaccessible with prv=user"))
	r.addNote("CHM writes PSL<PRV> and REI reads/writes both fields on the same no-trap paths.")

	// PTE<M>: an unprivileged write sets the modify bit in the page
	// table without any software intervention.
	mw, err := newMapped(cpu.StandardVAX, `
start:	pushl #0x03C00000
	pushl #ucode
	rei
	.align 4
ucode:	movl #1, @#0x80000c00 ; page 6, M initially clear
	chmk #0
	.align 4
chmk:	halt
`, map[vax.Vector]string{vax.VecCHMK: "chmk"},
		map[uint32]vax.PTE{6: vax.NewPTE(true, vax.ProtUW, false, mmFrame+6)})
	if err != nil {
		return nil, err
	}
	if err := mw.run(1000); err != nil {
		return nil, err
	}
	raw, _ := mw.m.LoadLong(mmSPT + 4*6)
	r.addRow("PTE<M>", "any write reference",
		check(vax.PTE(raw).Modified(), "user store set PTE<M> in hardware, zero faults"))

	// PTE<PROT>: PROBE's answer is the protection code.
	pr, err := newMapped(cpu.StandardVAX, `
start:	prober #3, #4, @#0x80000a00   ; KR page, probe as user
	beql denied
	clrl r4
	halt
denied:	movl #1, r4
	probew #3, #4, @#0x80000e00   ; UW page (7), probe as user
	beql bad
	movl #1, r5
bad:	halt
`, nil, map[uint32]vax.PTE{5: vax.NewPTE(true, vax.ProtKR, true, mmFrame+5)})
	if err != nil {
		return nil, err
	}
	if err := pr.run(1000); err != nil {
		return nil, err
	}
	r.addRow("PTE<PROT>", "PROBE (read)",
		check(pr.c.R[4] == 1 && pr.c.R[5] == 1, "PROBE outcome tracked each page's protection code"))
	return r, nil
}

// Table2 contrasts PROBE and PROBEVM on the modified VAX (outside any
// VM), row for row.
func Table2() (*Result, error) {
	r := &Result{
		ID:      "T2",
		Title:   "PROBE versus PROBEVM (modified VAX)",
		Headers: []string{"PROBE", "PROBEVM", "Observed"},
	}
	overrides := map[uint32]vax.PTE{
		5: vax.NewPTE(true, vax.ProtKR, true, mmFrame+5),   // kernel read only
		6: vax.NewPTE(false, vax.ProtUW, false, mmFrame+6), // invalid
		7: vax.NewPTE(true, vax.ProtUW, false, mmFrame+7),  // M clear
		9: vax.NewPTE(true, vax.ProtNA, true, mmFrame+9),   // page after 8: no access
	}
	mi, err := newMapped(cpu.ModifiedVAX, `
start:	prober #3, #4, @#0x80000400   ; UW page 2: works from anywhere
	movpsl r1
	pushl #0x03C00000
	pushl #ucode
	rei
	.align 4
ucode:	probevmr #1, @#0x80000400     ; PROBEVM from user: must fault
	halt
	.align 4
privh:	movl #1, r2          ; privileged-instruction fault observed
	pushl #0             ; rebuild a kernel PSL and continue in kernel
	pushl #kpart
	rei
	.align 4
kpart:	; --- span: structure crossing page 8 (UW) into page 9 (NA) ---
	prober #0, #512, @#0x800011fc ; last byte lands in the NA page
	beql span1
	clrl r3
	brb sp2
span1:	movl #1, r3          ; PROBE saw the inaccessible last byte
sp2:	probevmr #0, @#0x800011fc     ; PROBEVM tests only the named byte
	beql span2
	movl #1, r4          ; accessible: one-byte test
	brb sp3
span2:	clrl r4
sp3:	; --- probe mode capped at executive ---
	prober #0, #4, @#0x80000a00   ; KR page, prv=kernel: accessible
	beql pm1
	movl #1, r5
pm1:	probevmr #0, @#0x80000a00     ; mode floor executive: denied
	bneq pm2
	movl #1, r6
pm2:	; --- validity and modify reporting ---
	probevmr #0, @#0x80000c00     ; invalid page 6: V set
	bvs vset
	clrl r7
	brb vm2
vset:	movl #1, r7
vm2:	probevmw #0, @#0x80000e00     ; unmodified page 7: C set
	bcs cset
	clrl r8
	brb done
cset:	movl #1, r8
done:	halt
`, map[vax.Vector]string{vax.VecPrivInstr: "privh"}, overrides)
	if err != nil {
		return nil, err
	}
	// Give the kernel continuation REI a valid frame: the privh handler
	// pushes a fresh kernel PSL. prv must stay kernel for the probe-mode
	// row.
	if err := mi.run(10000); err != nil {
		return nil, err
	}
	c := mi.c
	r.addRow("unprivileged", "privileged",
		check(c.R[2] == 1, "user-mode PROBEVM took a privileged-instruction fault; PROBE did not"))
	r.addRow("tests first and last byte", "tests only one byte",
		check(c.R[3] == 1 && c.R[4] == 1, "512-byte span: PROBE denied (last byte NA), PROBEVM allowed"))
	r.addRow("probe mode ≤ PSL<PRV>", "probe mode ≤ executive",
		check(c.R[5] == 1 && c.R[6] == 1, "KR page accessible to PROBE at prv=kernel, denied to PROBEVM"))
	r.addRow("tests only protection", "protection, validity, modify",
		check(c.R[7] == 1 && c.R[8] == 1, "PROBEVM reported V on an invalid page, C on an unmodified page"))
	return r, nil
}

// Table3 runs each Table 1 instruction inside a virtual machine and
// reports the resolution path of Table 3.
func Table3() (*Result, error) {
	r := &Result{
		ID:      "T3",
		Title:   "Solutions for sensitive data (inside a VM)",
		Headers: []string{"Data item", "Instruction", "Solution", "Observed"},
	}
	tv, err := newTinyVM(core.Config{}, `
start:	movpsl r1            ; merged in microcode
	movl #3, @#0x80004000 ; page 32: M clear -> modify fault to the VMM
	prober #3, #4, @#0x80004200 ; page 33 shadow PTE invalid -> trap+fill
	pushl #0x03C00000
	pushl #ucode
	rei                  ; trap to the VMM
	.align 4
ucode:	chmk #9              ; trap to the VMM, forwarded to this SCB
	halt
	.align 4
chmk:	addl2 #4, sp
	movl #1, r11
	halt
	.align 4
privh:	halt
`, map[vax.Vector]string{vax.VecCHMK: "chmk", vax.VecPrivInstr: "privh"},
		map[uint32]vax.PTE{
			32: vax.NewPTE(true, vax.ProtUW, false, 32),
			33: vax.NewPTE(true, vax.ProtUW, true, 33),
		})
	if err != nil {
		return nil, err
	}
	// Make page 33's shadow start unfilled by removing it from the
	// identity prefill? It is filled on demand anyway: the guest PTE is
	// valid but the shadow starts null, so the PROBE traps.
	if err := tv.run(100000); err != nil {
		return nil, err
	}
	vm, c := tv.vm, tv.k.CPU
	r.addRow("PSL<CUR>/<PRV>", "CHM", "Trap to the VMM",
		check(vm.Stats.CHMs == 1 && c.R[11] == 1, fmt.Sprintf("%d CHM trap(s), forwarded to the VM's SCB", vm.Stats.CHMs)))
	r.addRow("PSL<CUR>/<PRV>", "REI", "Trap to the VMM",
		check(vm.Stats.REIs >= 1, fmt.Sprintf("%d REI trap(s) emulated in software", vm.Stats.REIs)))
	r.addRow("PSL<CUR>/<PRV>", "MOVPSL", "Compress in µcode",
		check(vax.PSL(c.R[1]).Cur() == vax.Kernel && c.Stats.MOVPSLs >= 1,
			"MOVPSL returned the VM's kernel mode with no VMM trap"))
	r.addRow("PTE<M>", "memory write", "Modify fault",
		check(vm.Stats.ModifyFaults == 1, fmt.Sprintf("%d modify fault(s) absorbed by the VMM", vm.Stats.ModifyFaults)))
	r.addRow("PTE<PROT>", "PROBE", "Trap to the VMM if PTE invalid",
		check(vm.Stats.ProbeFills == 1, fmt.Sprintf("%d PROBE shadow fill(s); later PROBEs complete in microcode", vm.Stats.ProbeFills)))
	return r, nil
}
