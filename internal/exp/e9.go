package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/vmos"
	"repro/internal/workload"
)

// E9CostSensitivity is a methodological check rather than a paper
// claim: the simulator substitutes a calibrated cost model for real
// VAX-8800 hardware (DESIGN.md §2), so this experiment sweeps every VMM
// emulation-path cost from half to double the calibrated value and
// verifies the *qualitative* results survive — the VM stays
// substantially slower than bare metal on the mixed workload, the
// efficiency property stays intact, and ring compression keeps beating
// the trap-all scheme.
func E9CostSensitivity() (*Result, error) {
	r := &Result{
		ID:    "E9",
		Title: "Cost-model sensitivity: conclusions vs calibration",
		Headers: []string{"VMM cost scale", "Mixed VM/bare", "Compute VM/bare",
			"Compression/trap-all cycles"},
	}
	// Cooperative scheduling keeps the trap-all x2-cost case out of a
	// preemption livelock (every instruction trapping while the clock
	// preempts every few instructions makes no forward progress).
	mix := vmos.Config{Processes: workload.Mix(10, 5, 16)}
	compute := vmos.Config{Processes: []vmos.Process{workload.Compute(20000)}, NoClock: true}

	bareMix, err := runBareOS(mix)
	if err != nil {
		return nil, err
	}
	bareCompute, err := runBareOS(compute)
	if err != nil {
		return nil, err
	}

	ok := true
	var ratios []float64
	for _, scale := range []int{50, 100, 200} {
		kMix, _, _, err := runVMOS(core.Config{ShadowCacheSlots: 4, CostScalePercent: scale}, mix)
		if err != nil {
			return nil, err
		}
		kCompute, _, _, err := runVMOS(core.Config{CostScalePercent: scale}, compute)
		if err != nil {
			return nil, err
		}
		kTrap, _, _, err := runVMOS(core.Config{Scheme: core.TrapAll,
			ShadowCacheSlots: 4, CostScalePercent: scale}, mix)
		if err != nil {
			return nil, err
		}
		mixRatio := float64(bareMix.CPU.Cycles) / float64(kMix.CPU.Cycles)
		compRatio := float64(bareCompute.CPU.Cycles) / float64(kCompute.CPU.Cycles)
		schemeRatio := float64(kTrap.CPU.Cycles) / float64(kMix.CPU.Cycles)
		kMix.Release()
		kCompute.Release()
		kTrap.Release()
		ratios = append(ratios, mixRatio)
		r.addRow(fmt.Sprintf("%d%%", scale),
			fmt.Sprintf("%.2f", mixRatio),
			fmt.Sprintf("%.3f", compRatio),
			fmt.Sprintf("trap-all takes %.1fx", schemeRatio))
		// The qualitative conclusions at every calibration:
		if mixRatio >= 0.85 { // the VM must pay a substantial tax
			ok = false
		}
		if compRatio < 0.95 { // efficiency property must not depend on costs
			ok = false
		}
		if schemeRatio < 1.5 { // ring compression must keep winning
			ok = false
		}
	}
	bareMix.Release()
	bareCompute.Release()
	// The ratio must respond monotonically to the scale (sanity that the
	// knob actually works).
	if !(ratios[0] > ratios[1] && ratios[1] > ratios[2]) {
		ok = false
		r.addNote("warning: VM/bare ratio did not fall as VMM costs rose")
	}
	r.PaperClaim = "the reproduction's ratios derive from a cost model; its qualitative findings must not (DESIGN.md §2)"
	r.Measured = fmt.Sprintf("mixed-workload ratio %.2f / %.2f / %.2f at 50/100/200%% cost scale; efficiency and scheme ordering stable",
		ratios[0], ratios[1], ratios[2])
	r.Match = ok
	return r, nil
}
