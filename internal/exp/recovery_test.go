package exp

import (
	"testing"

	"repro/internal/fault"
)

// TestRecoveryCampaign runs the fixed-seed recovery campaign (the same
// seeds CI smokes) and requires the recovery invariant to hold on every
// seed: both victims die recoverably, roll back to a valid checkpoint
// generation (CRC-rejecting the poisoned ones) and complete cleanly,
// while the bystander's output, consumed CPU time and completion stay
// within tolerance of the armed fault-free baseline.
func TestRecoveryCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 9 three-VM machines to completion (~1s)")
	}
	r, err := RecoveryCampaign(DefaultCampaignSeeds(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Match {
		t.Fatalf("recovery invariant violated:\n%s", r.Format())
	}
	if len(r.Rows) != 8 {
		t.Fatalf("expected 8 seed rows, got %d", len(r.Rows))
	}
}

// TestRecoveryCampaignDeterministic re-runs one seed and requires the
// injection counts, recovery counts and the bystander's completion
// cycle to repeat exactly: checkpoints, deaths and rollbacks are all
// keyed to virtual time, so the campaign must be a pure function of
// the seed.
func TestRecoveryCampaignDeterministic(t *testing.T) {
	run := func() (fault.Stats, uint64, uint64, uint64) {
		inj, vms, violations := recoverySeedRun(4, recoveryBaselineOut(t), 1<<62, 1<<62)
		if len(violations) != 0 {
			t.Fatalf("seed 4 violations: %v", violations)
		}
		return inj.Stats, vms[0].Stats.Recoveries, vms[1].Stats.Recoveries, vms[2].HaltCycles()
	}
	s1, w1, m1, c1 := run()
	s2, w2, m2, c2 := run()
	if s1 != s2 || w1 != w2 || m1 != m2 || c1 != c2 {
		t.Fatalf("seed 4 not reproducible: %+v w%d m%d @%d vs %+v w%d m%d @%d",
			s1, w1, m1, c1, s2, w2, m2, c2)
	}
	if s1.PermanentErrors == 0 {
		t.Fatal("seed 4 injected nothing; campaign config too weak")
	}
	if s1.CkptCorruptions == 0 {
		t.Fatal("seed 4 poisoned no generation; fallback path untested")
	}
}

func recoveryBaselineOut(t *testing.T) string {
	t.Helper()
	k, vms, err := recoveryMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Release()
	return vms[2].ConsoleOutput()
}
