package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/vax"
)

// The recovery campaign (experiment E11): E10's isolation story with
// the supervisor armed. Two victims die recoverably — one stalls into
// the watchdog, one takes handler-less machine checks from injected
// permanent disk errors — and both must be rolled back to a checkpoint
// generation and driven to clean completion, while a bystander's
// output and timing stay within the same 10% envelope E10 enforces.
// The fault plan also poisons checkpoint generations at recovery time,
// so every seed exercises the CRC-rejection + generation-fallback path
// end to end.

// Watchdog victim: warms up over ~10 ticks with a console-get KCALL
// per round — a progress event with no output side effect — so the
// ring holds several distinct pre-stall generations and a recovered
// life re-earns progress (resetting the generation fallback) before it
// retries anything dangerous. It then consults a durable flag on disk
// block 7. First life: write the flag and spin without progress until
// the watchdog kills it. The disk does not roll back, so the recovered
// life finds the flag, prints 'R' and halts — completion is the proof
// that recovery restored a useful earlier state.
const wdVictimSrc = `
start:	mtpr #31, #18        ; mask virtual IRQs (no handlers installed)
	movl #6, r8
wout:	movl #4000, r11
warm:	sobgtr r11, warm
	movl #2, r0          ; KCALL console get: progress, no output
	mtpr #0, #201
	sobgtr r8, wout
	movl #3, r0          ; KCALL disk read block 7
	movl #7, r1
	movl #0x5000, r2
	mtpr #0, #201
	movl @#0x80005000, r3
	cmpl r3, #0x1234
	beql done
	movl #0x1234, @#0x80005000
	movl #4, r0          ; KCALL disk write block 7: set the flag
	movl #7, r1
	movl #0x5000, r2
	mtpr #0, #201
spin:	incl r5              ; no progress events: trip the watchdog
	brb spin
done:	movl #1, r0          ; print 'R'
	movl #82, r1
	mtpr #0, #201
	halt
`

// Machine-check victim: the same progress-bearing warmup, then 16 disk
// reads with no machine-check vector, so every injected permanent
// error is a handler-less machine check — a fatal death without the
// supervisor. The slow inner spin spreads the reads over many ticks so
// checkpoint generations interleave with them, and the rolled-back
// guest re-runs only a bounded tail of the loop (each successful read
// is itself a progress event, so consecutive faults on one block step
// back at most a generation or two before a fresh draw succeeds).
const mcVictimSrc = `
start:	mtpr #31, #18
	movl #6, r8
wout:	movl #4000, r11
warm:	sobgtr r11, warm
	movl #2, r0          ; KCALL console get: progress, no output
	mtpr #0, #201
	sobgtr r8, wout
	clrl r9
vloop:	movl #2000, r10
slow:	sobgtr r10, slow
	movl #3, r0          ; KCALL disk read block r9
	movl r9, r1
	movl #0x5000, r2
	mtpr #0, #201
	incl r9
	cmpl r9, #16
	blss vloop
	movl #1, r0          ; print 'D'
	movl #68, r1
	mtpr #0, #201
	halt
`

// Recovery bystander: E10's bystander stretched to 2400 rounds. Every
// recovery honestly replays a rolled-back tail of a victim's work, so
// the absolute overhead per seed is bounded but not zero; the
// isolation claim is that a long-running neighbor amortizes it below
// the 10% envelope (the same reasoning E10 applies to fault-handling
// overhead).
const recoveryBystanderSrc = `
start:	movl #2400, r10
outer:	movl #600, r11
inner:	sobgtr r11, inner
	movl #1, r0          ; KCALL console put
	movl #46, r1         ; '.'
	mtpr #0, #201
	sobgtr r10, outer
	movl #1, r0
	movl #33, r1         ; '!'
	mtpr #0, #201
	halt
`

// recoveryMachine builds the three-VM armed machine — watchdog victim,
// machine-check victim, bystander — optionally with a fault plan, and
// runs it to completion.
func recoveryMachine(inj *fault.Injector) (k *core.VMM, vms []*core.VM, err error) {
	k = newVMMExact(16<<20, core.Config{
		Watchdog:        8,
		CheckpointEvery: 3, CheckpointGenerations: 6,
		Recover: true, RecoverBudget: 24,
	})
	if inj != nil {
		k.AttachFaults(inj)
	}
	guests := []struct {
		name string
		src  string
	}{
		{"wd-victim", wdVictimSrc},
		{"mc-victim", mcVictimSrc},
		{"bystander", recoveryBystanderSrc},
	}
	for _, g := range guests {
		img, start, gerr := campaignImage(g.src, nil)
		if gerr != nil {
			return nil, nil, fmt.Errorf("%s: %w", g.name, gerr)
		}
		vm, verr := k.CreateVM(core.VMConfig{
			Name: g.name, MemBytes: cgMem, Image: img, StartPC: start,
			PreMapped: true, SBR: cgSPT, SLR: cgSPTLen, SCBB: 0,
		})
		if verr != nil {
			return nil, nil, fmt.Errorf("%s: %w", g.name, verr)
		}
		vm.SPs[vax.Kernel] = vax.SystemBase + 0x8000
		vm.ISP = vax.SystemBase + 0x8800
		vms = append(vms, vm)
	}
	k.Run(60_000_000)
	return k, vms, nil
}

// recoverySeedRun runs one seed of the recovery campaign and returns
// the violated invariants (empty = the seed passed). A Go panic counts
// as a violation rather than killing the campaign.
func recoverySeedRun(seed int64, baseOut string, baseCycles, baseUsed uint64) (inj *fault.Injector, vms []*core.VM, violations []string) {
	defer func() {
		if r := recover(); r != nil {
			violations = append(violations, fmt.Sprintf("Go panic: %v", r))
		}
	}()
	inj = fault.New(seed, fault.Config{
		TargetVMs:         []int{0, 1}, // both victims, never the bystander
		PermanentDiskRate: 0.25,
		CkptCorruptions:   2,
		Horizon:           40,
	})
	k, vms, err := recoveryMachine(inj)
	if err != nil {
		return inj, vms, []string{err.Error()}
	}
	k.Release()
	wd, mc, bystander := vms[0], vms[1], vms[2]

	bad := func(format string, args ...interface{}) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}
	for _, v := range []struct {
		vm  *core.VM
		out string
	}{{wd, "R"}, {mc, "D"}} {
		if h, msg := v.vm.Halted(); !h || msg != vmHaltNormal {
			bad("%s did not complete normally: halted=%t %q", v.vm.Name(), h, msg)
		}
		if out := v.vm.ConsoleOutput(); out != v.out {
			bad("%s console %q, want %q (printed once, by the recovered life)",
				v.vm.Name(), out, v.out)
		}
		if v.vm.Stats.Recoveries == 0 {
			bad("%s was never recovered", v.vm.Name())
		}
		if v.vm.Stats.RecoveryEscalations != 0 {
			bad("%s escalated to a permanent halt", v.vm.Name())
		}
	}
	if wd.Stats.WatchdogTrips == 0 {
		bad("wd-victim never tripped the watchdog")
	}
	if mc.Stats.MachineChecks == 0 {
		bad("mc-victim saw no machine checks: the plan injected nothing")
	}
	if h, msg := bystander.Halted(); !h || msg != vmHaltNormal {
		bad("bystander did not complete normally: halted=%t %q", h, msg)
	}
	if out := bystander.ConsoleOutput(); out != baseOut {
		bad("bystander console changed: %q vs baseline %q", out, baseOut)
	}
	if c := bystander.HaltCycles(); c > baseCycles+baseCycles/10 {
		bad("bystander finished at cycle %d, beyond 110%% of fault-free %d", c, baseCycles)
	}
	if u := bystander.CyclesUsed(); u > baseUsed+baseUsed/10 {
		bad("bystander consumed %d cycles, beyond 110%% of fault-free %d", u, baseUsed)
	}
	if bystander.Stats.Recoveries != 0 || bystander.Stats.MachineChecks != 0 {
		bad("bystander was touched: %d recoveries, %d machine checks",
			bystander.Stats.Recoveries, bystander.Stats.MachineChecks)
	}
	if inj.Stats.CkptCorruptions == 0 {
		bad("no checkpoint generation was poisoned: fallback path untested")
	}
	if fb := wd.Stats.RecoveryFallbacks + mc.Stats.RecoveryFallbacks; fb < inj.Stats.CkptCorruptions {
		bad("fallbacks %d < poisoned generations %d: a corrupted image was accepted",
			fb, inj.Stats.CkptCorruptions)
	}
	return inj, vms, violations
}

// RecoveryCampaign runs the multi-seed recovery campaign and reports
// per-seed recovery counts and the verdict.
func RecoveryCampaign(seeds []int64) (*Result, error) {
	r := &Result{
		ID:    "E11",
		Title: "Recovery campaign: checkpointed VMs survive injected deaths",
		Headers: []string{"seed", "wd recov", "mc recov", "mchecks", "fallbacks",
			"poisoned", "bystander cycles", "verdict"},
		PaperClaim: "a VMM that contains guest failures (Section 5) can also undo them: every recoverable death rolls back to a valid checkpoint and the VM completes, at no cost to its neighbors",
	}

	// Fault-free baseline on the same armed machine: checkpoint overhead
	// is part of the baseline, recovery overhead is what the campaign
	// adds on top.
	kBase, base, err := recoveryMachine(nil)
	if err != nil {
		return nil, err
	}
	kBase.Release()
	if h, msg := base[2].Halted(); !h || msg != vmHaltNormal {
		return nil, fmt.Errorf("baseline bystander did not complete: %q", msg)
	}
	// The fault-free watchdog victim still dies once (the flag path is
	// its normal first life) and must recover even without a plan.
	if base[0].Stats.Recoveries == 0 {
		return nil, fmt.Errorf("baseline wd-victim was never recovered")
	}
	baseOut := base[2].ConsoleOutput()
	baseCycles := base[2].HaltCycles()
	baseUsed := base[2].CyclesUsed()
	r.addNote("baseline (armed, fault-free): bystander prints %d chars, consumes %d cycles, halts at cycle %d",
		len(baseOut), baseUsed, baseCycles)

	failed := 0
	for _, seed := range seeds {
		inj, vms, violations := recoverySeedRun(seed, baseOut, baseCycles, baseUsed)
		verdict := "pass"
		if len(violations) > 0 {
			verdict = "FAIL"
			failed++
		}
		var wdRec, mcRec, mchecks, fallbacks, cycles uint64
		if len(vms) == 3 {
			wdRec = vms[0].Stats.Recoveries
			mcRec = vms[1].Stats.Recoveries
			mchecks = vms[1].Stats.MachineChecks
			fallbacks = vms[0].Stats.RecoveryFallbacks + vms[1].Stats.RecoveryFallbacks
			cycles = vms[2].HaltCycles()
		}
		r.addRow(fmt.Sprint(seed),
			fmt.Sprint(wdRec),
			fmt.Sprint(mcRec),
			fmt.Sprint(mchecks),
			fmt.Sprint(fallbacks),
			fmt.Sprint(inj.Stats.CkptCorruptions),
			fmt.Sprint(cycles),
			verdict)
		for _, v := range violations {
			r.addNote("seed %d: %s", seed, v)
		}
	}
	r.Match = failed == 0
	r.Measured = fmt.Sprintf(
		"%d/%d seeds hold the invariant: every victim death is rolled back to a valid generation (poisoned ones rejected by CRC), both victims complete, bystander unchanged within 10%%",
		len(seeds)-failed, len(seeds))
	return r, nil
}

// E11RecoveryCampaign is the registry entry point (8 fixed seeds).
func E11RecoveryCampaign() (*Result, error) {
	return RecoveryCampaign(DefaultCampaignSeeds(8, 1))
}
