package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/vax"
	"repro/internal/vmos"
	"repro/internal/workload"
)

// Figure1 reproduces the VAX virtual address space map from a live
// MiniOS boot: the three regions, their architectural extents, and the
// booted kernel's actual mapping limits.
func Figure1() (*Result, error) {
	r := &Result{
		ID:      "F1",
		Title:   "VAX virtual address space (live standard-VAX boot)",
		Headers: []string{"Region", "Range", "Mapped by", "Live extent"},
	}
	im, err := vmos.Build(vmos.Config{Target: vmos.TargetBare,
		Processes: []vmos.Process{workload.Compute(10)}})
	if err != nil {
		return nil, err
	}
	ma, err := vmos.BootBare(im, cpu.StandardVAX, 8)
	if err != nil {
		return nil, err
	}
	if !ma.Run(1_000_000) {
		return nil, fmt.Errorf("figure 1 boot did not halt")
	}
	mmu := ma.CPU.MMU
	r.addRow("P0 (program)", "0x00000000-0x3FFFFFFF", "P0BR/P0LR per process",
		fmt.Sprintf("%d pages (%d KB) for the last process", mmu.P0LR, mmu.P0LR/2))
	r.addRow("P1 (control)", "0x40000000-0x7FFFFFFF", "P1BR/P1LR per process",
		fmt.Sprintf("%d pages", mmu.P1LR))
	r.addRow("S (system)", "0x80000000-0xBFFFFFFF", "SBR/SLR, shared",
		fmt.Sprintf("%d pages (%d KB), SPT at physical %#x", mmu.SLR, mmu.SLR/2, mmu.SBR))
	r.addRow("reserved", "0xC0000000-0xFFFFFFFF", "—", "references fault")
	r.addNote("each region is architecturally limited to 1 GB; P0 grows up, P1 down, S is common to all processes")
	return r, nil
}

// Figure2 dumps the live shared S-space layout of a running VM: the
// VM's region below the installation-defined boundary, the VMM's
// structures above it.
func Figure2() (*Result, error) {
	r := &Result{
		ID:      "F2",
		Title:   "VM and VMM shared address space (live layout)",
		Headers: []string{"S-space range", "Contents", "Access"},
	}
	tv, err := newTinyVM(core.Config{ShadowCacheSlots: 2}, "start:\tmovpsl r1\n\thalt", nil, nil)
	if err != nil {
		return nil, err
	}
	if err := tv.run(1000); err != nil {
		return nil, err
	}
	for _, reg := range tv.vm.SharedSpaceLayout() {
		r.addRow(fmt.Sprintf("%#x-%#x", reg.BaseVA, reg.BaseVA+reg.Bytes-1), reg.Name, reg.Access)
	}
	boundary := vax.SystemBase + tv.vm.SLimit()*vax.PageSize
	r.addNote("installation-defined boundary at %#x: the VM's S space lies below, the VMM above", boundary)
	r.addNote("the VMM region is protected KW — real kernel (VMM) only — so the VM cannot read or tamper with its own shadow tables")
	return r, nil
}

// Figure3 prints the live ring-compression mapping and the protection-
// code compression table.
func Figure3() (*Result, error) {
	r := &Result{
		ID:      "F3",
		Title:   "Ring compression (Figure 3) and the protection-code map",
		Headers: []string{"Virtual VAX ring", "Real VAX ring", "Demonstrated by"},
	}
	// Demonstrate each mapping on a live VM: run guest code in each
	// mode and record the real mode the processor used.
	tv, err := newTinyVM(core.Config{}, `
start:	movpsl r1            ; VM kernel
	pushl #0x01400000
	pushl #e1
	rei
	.align 4
e1:	movpsl r2            ; VM executive
	pushl #0x02800000
	pushl #s1
	rei
	.align 4
s1:	movpsl r3            ; VM supervisor
	pushl #0x03C00000
	pushl #u1
	rei
	.align 4
u1:	movpsl r4            ; VM user
	chmk #0
	.align 4
chmk:	halt
	.align 4
privh:	halt
`, map[vax.Vector]string{vax.VecCHMK: "chmk", vax.VecPrivInstr: "privh"}, nil)
	if err != nil {
		return nil, err
	}
	// Sample the real mode at each guest MOVPSL via a tracking sink is
	// intrusive; instead rely on the architecture: the real mode is
	// compressMode(vm mode), verified by the access outcomes below.
	if err := tv.run(100000); err != nil {
		return nil, err
	}
	sawModes := vax.PSL(tv.k.CPU.R[1]).Cur() == vax.Kernel &&
		vax.PSL(tv.k.CPU.R[2]).Cur() == vax.Executive &&
		vax.PSL(tv.k.CPU.R[3]).Cur() == vax.Supervisor &&
		vax.PSL(tv.k.CPU.R[4]).Cur() == vax.User
	r.addRow("kernel", "executive", check(sawModes, "VM saw all four modes via MOVPSL"))
	r.addRow("executive", "executive", "shares the real ring with VM kernel")
	r.addRow("supervisor", "supervisor", "maps to itself")
	r.addRow("user", "user", "maps to itself")
	r.addNote("protection-code compression: KW→EW, KR→ER, ERKW→EW, SRKW→SREW, URKW→UREW; all other codes unchanged")
	for _, p := range []vax.Protection{vax.ProtKW, vax.ProtKR, vax.ProtERKW, vax.ProtSRKW, vax.ProtURKW} {
		r.addNote("  %s -> %s", p, p.Compress())
	}
	if !sawModes {
		return r, fmt.Errorf("figure 3: VM did not observe all four modes")
	}
	r.PaperClaim = "four virtual rings execute on three real rings with the real ring numbers concealed"
	r.Measured = "guest observed kernel/executive/supervisor/user while real kernel mode was never entered by guest code"
	r.Match = sawModes
	return r, nil
}
