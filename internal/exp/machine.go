package exp

import (
	"encoding/binary"
	"fmt"
	"os"
	"strconv"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/vax"
)

// RecorderCap, when positive, attaches a flight recorder with rings of
// that capacity to every VMM the harness builds through newVMM. It is
// set by the experiments binary's -trace flag or the VAX_TRACE
// environment variable; zero (the default) keeps every machine on the
// recorder-free hot path.
var RecorderCap = envRecorderCap()

func envRecorderCap() int {
	n, err := strconv.Atoi(os.Getenv("VAX_TRACE"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// Translation, when true, enables the hot-trace superblock tier on
// every VMM the harness builds through newVMM. It is set by the
// experiments binary's -translate flag or the VAX_TRANSLATE
// environment variable; false (the default) keeps the experiments on
// the plain interpreter so their published output is reproducible
// byte for byte.
var Translation = envTranslation()

func envTranslation() bool {
	switch os.Getenv("VAX_TRANSLATE") {
	case "", "0", "false", "off":
		return false
	}
	return true
}

// newVMM is the single construction funnel for the harness's virtual
// machines. The experiments reproduce the paper's pure demand-fill
// design point (one shadow PTE per fault, Section 4.3.1), so FillBatch
// is pinned to 1 unless a caller overrides it; batched fill is a
// production-path optimization measured by the benchmarks, not by the
// paper's figures.
func newVMM(memBytes uint32, kcfg core.Config, opts ...core.Option) *core.VMM {
	if Translation {
		kcfg.Translation = true
	}
	return newVMMExact(memBytes, kcfg, opts...)
}

// newVMMExact is newVMM without the -translate override. The fault and
// recovery campaigns (E10/E11) use it: their injection plans, watchdog
// budgets and checkpoint cadences are keyed to step counts, and a
// tier-on step retires a whole superblock, so deterministic
// step-count-equals-instruction-count semantics are part of their
// harness contract.
func newVMMExact(memBytes uint32, kcfg core.Config, opts ...core.Option) *core.VMM {
	if kcfg.FillBatch == 0 {
		kcfg.FillBatch = 1
	}
	if RecorderCap > 0 && kcfg.Recorder == nil {
		opts = append(opts, core.WithRecorder(trace.NewRecorder(RecorderCap)))
	}
	return core.New(memBytes, kcfg, opts...)
}

// Micro-machines for the behaviour-matrix experiments (Tables 1-4):
// small bare machines with the SCB at physical 0 and code at 0x400, and
// small direct virtual machines with an identity-mapped guest.

type micro struct {
	c    *cpu.CPU
	m    *mem.Memory
	prog *asm.Program
}

func newMicro(variant cpu.Variant, src string, vectors map[vax.Vector]string) (*micro, error) {
	prog, err := asm.Assemble(src, 0x400)
	if err != nil {
		return nil, err
	}
	m := mem.New(256 * 1024)
	if err := m.StoreBytes(prog.Origin, prog.Code); err != nil {
		return nil, err
	}
	c := cpu.New(m, variant)
	c.SCBB = 0
	c.SetStackFor(vax.Kernel, 0x8000)
	c.SetStackFor(vax.Executive, 0x7000)
	c.SetStackFor(vax.Supervisor, 0x6000)
	c.SetStackFor(vax.User, 0x5000)
	c.ISP = 0x9000
	c.SetPSL(vax.PSL(0).WithCur(vax.Kernel))
	start := prog.Origin
	if s, ok := prog.Symbol("start"); ok {
		start = s
	}
	c.SetPC(start)
	for vec, label := range vectors {
		addr := prog.MustSymbol(label)
		if addr&3 != 0 {
			return nil, fmt.Errorf("handler %s at %#x not longword aligned", label, addr)
		}
		if err := m.StoreLong(uint32(vec), addr); err != nil {
			return nil, err
		}
	}
	return &micro{c: c, m: m, prog: prog}, nil
}

func (mi *micro) run(maxSteps uint64) error {
	mi.c.Run(maxSteps)
	if !mi.c.Halted {
		return fmt.Errorf("micro machine did not halt (pc=%#x)", mi.c.PC())
	}
	return nil
}

// mapped builds a modified- or standard-VAX machine with mapping on: 32
// S pages identity-mapped to frames 16.. with the given per-page
// protections (default UW, premodified). Code is assembled at S base +
// 0 and loaded at frame 16.
type mappedMicro struct {
	c    *cpu.CPU
	m    *mem.Memory
	prog *asm.Program
}

const (
	mmSPT    = 0x1000
	mmFrame  = 16
	mmSPages = 32
)

func newMapped(variant cpu.Variant, src string, vectors map[vax.Vector]string,
	pteOverride map[uint32]vax.PTE) (*mappedMicro, error) {
	prog, err := asm.Assemble(src, vax.SystemBase)
	if err != nil {
		return nil, err
	}
	m := mem.New(256 * 1024)
	if err := m.StoreBytes(mmFrame*vax.PageSize, prog.Code); err != nil {
		return nil, err
	}
	c := cpu.New(m, variant)
	for i := uint32(0); i < mmSPages; i++ {
		pte := vax.NewPTE(true, vax.ProtUW, true, mmFrame+i)
		if o, ok := pteOverride[i]; ok {
			pte = o
		}
		if err := m.StoreLong(mmSPT+4*i, uint32(pte)); err != nil {
			return nil, err
		}
	}
	c.MMU.SBR = mmSPT
	c.MMU.SLR = mmSPages
	c.MMU.Enabled = true
	c.SCBB = 0 // physical page 0, below the mapped window
	c.SetStackFor(vax.Kernel, vax.SystemBase+16*vax.PageSize)
	c.SetStackFor(vax.Executive, vax.SystemBase+15*vax.PageSize)
	c.SetStackFor(vax.Supervisor, vax.SystemBase+14*vax.PageSize)
	c.SetStackFor(vax.User, vax.SystemBase+13*vax.PageSize)
	c.ISP = vax.SystemBase + 17*vax.PageSize
	c.SetPSL(vax.PSL(0).WithCur(vax.Kernel))
	start := prog.Origin
	if s, ok := prog.Symbol("start"); ok {
		start = s
	}
	c.SetPC(start)
	for vec, label := range vectors {
		addr := prog.MustSymbol(label)
		// Handlers live in S space; the SCB holds their S addresses and
		// is itself read physically.
		if err := m.StoreLong(uint32(vec), addr); err != nil {
			return nil, err
		}
	}
	return &mappedMicro{c: c, m: m, prog: prog}, nil
}

func (mi *mappedMicro) run(maxSteps uint64) error {
	mi.c.Run(maxSteps)
	if !mi.c.Halted {
		return fmt.Errorf("mapped micro machine did not halt (pc=%#x)", mi.c.PC())
	}
	return nil
}

// tinyVM builds a VMM with one pre-mapped guest (SCB at VM-phys 0,
// identity SPT for 64 pages at 0x200, code at 0x1000), as in the core
// package's tests.
type tinyVM struct {
	k    *core.VMM
	vm   *core.VM
	prog *asm.Program
}

const (
	tgSPT    = 0x0200
	tgCode   = 0x1000
	tgSPTLen = 64
	tgMem    = 64 * 1024
)

func newTinyVM(kcfg core.Config, src string, vectors map[vax.Vector]string,
	pteOverride map[uint32]vax.PTE) (*tinyVM, error) {
	prog, err := asm.Assemble(src, vax.SystemBase+tgCode)
	if err != nil {
		return nil, err
	}
	img := make([]byte, tgMem)
	for i := uint32(0); i < tgSPTLen; i++ {
		pte := vax.NewPTE(true, vax.ProtUW, true, i)
		if o, ok := pteOverride[i]; ok {
			pte = o
		}
		binary.LittleEndian.PutUint32(img[tgSPT+4*i:], uint32(pte))
	}
	copy(img[tgCode:], prog.Code)
	for vec, label := range vectors {
		binary.LittleEndian.PutUint32(img[uint32(vec):], prog.MustSymbol(label))
	}
	k := newVMM(8<<20, kcfg) // the tables observe per-fault fills, not batches
	vm, err := k.CreateVM(core.VMConfig{
		MemBytes: tgMem, Image: img, StartPC: prog.MustSymbol("start"),
		PreMapped: true, SBR: tgSPT, SLR: tgSPTLen, SCBB: 0,
	})
	if err != nil {
		return nil, err
	}
	vm.SPs[vax.Kernel] = vax.SystemBase + 0x8000
	vm.SPs[vax.Executive] = vax.SystemBase + 0x7800
	vm.SPs[vax.Supervisor] = vax.SystemBase + 0x7400
	vm.SPs[vax.User] = vax.SystemBase + 0x7000
	vm.ISP = vax.SystemBase + 0x8800
	return &tinyVM{k: k, vm: vm, prog: prog}, nil
}

func (tv *tinyVM) run(maxSteps uint64) error {
	tv.k.Run(maxSteps)
	h, msg := tv.vm.Halted()
	if !h {
		return fmt.Errorf("VM did not halt (pc=%#x)", tv.k.CPU.PC())
	}
	if msg != "HALT executed in VM kernel mode" {
		return fmt.Errorf("VM died: %s", msg)
	}
	return nil
}

// check renders a boolean observation.
func check(ok bool, desc string) string {
	mark := "✓"
	if !ok {
		mark = "✗"
	}
	return fmt.Sprintf("%s %s", mark, desc)
}
