package exp

import (
	"strings"
	"testing"
)

// Each experiment must run cleanly and (where it asserts a quantitative
// shape) reproduce the paper's shape. These tests are the repository's
// contract that EXPERIMENTS.md can be regenerated at any time.

func runSpec(t *testing.T, id string) *Result {
	t.Helper()
	spec, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	r, err := spec.Run()
	if err != nil {
		t.Fatalf("%s failed: %v", id, err)
	}
	if r.ID != id {
		t.Errorf("result ID %q, want %q", r.ID, id)
	}
	if r.Format() == "" {
		t.Error("empty formatted output")
	}
	return r
}

func requireAllChecks(t *testing.T, r *Result) {
	t.Helper()
	for _, row := range r.Rows {
		for _, cell := range row {
			if strings.Contains(cell, "✗") {
				t.Errorf("%s: failed check in row %v", r.ID, row)
			}
		}
	}
}

func TestTable1(t *testing.T) { requireAllChecks(t, runSpec(t, "T1")) }
func TestTable2(t *testing.T) { requireAllChecks(t, runSpec(t, "T2")) }
func TestTable3(t *testing.T) { requireAllChecks(t, runSpec(t, "T3")) }
func TestTable4(t *testing.T) {
	r := runSpec(t, "T4")
	requireAllChecks(t, r)
	if len(r.Rows) < 15 {
		t.Errorf("Table 4 has %d rows, want the full matrix", len(r.Rows))
	}
}

func TestFigure1(t *testing.T) { runSpec(t, "F1") }
func TestFigure2(t *testing.T) {
	r := runSpec(t, "F2")
	if len(r.Rows) < 4 {
		t.Errorf("figure 2 layout rows = %d", len(r.Rows))
	}
}
func TestFigure3(t *testing.T) {
	r := runSpec(t, "F3")
	if !r.Match {
		t.Error("ring compression not demonstrated")
	}
}

func TestE1MixedWorkload(t *testing.T) {
	r := runSpec(t, "E1")
	if !r.Match {
		t.Errorf("E1 shape does not hold: %s", r.Measured)
	}
}

func TestE2ShadowCache(t *testing.T) {
	r := runSpec(t, "E2")
	if !r.Match {
		t.Errorf("E2 shape does not hold: %s", r.Measured)
	}
}

func TestE3FaultsPerSwitch(t *testing.T) {
	r := runSpec(t, "E3")
	if !r.Match {
		t.Errorf("E3 shape does not hold: %s", r.Measured)
	}
}

func TestE4MtprIPL(t *testing.T) {
	r := runSpec(t, "E4")
	if !r.Match {
		t.Errorf("E4 shape does not hold: %s", r.Measured)
	}
}

func TestE5IOTraps(t *testing.T) {
	r := runSpec(t, "E5")
	if !r.Match {
		t.Errorf("E5 shape does not hold: %s", r.Measured)
	}
}

func TestE6Efficiency(t *testing.T) {
	r := runSpec(t, "E6")
	if !r.Match {
		t.Errorf("E6 shape does not hold: %s", r.Measured)
	}
}

func TestE7RingSchemes(t *testing.T) {
	r := runSpec(t, "E7")
	if !r.Match {
		t.Errorf("E7 shape does not hold: %s", r.Measured)
	}
}

func TestE8ModifyFaultAblation(t *testing.T) {
	r := runSpec(t, "E8")
	if !r.Match {
		t.Errorf("E8 shape does not hold: %s", r.Measured)
	}
}

func TestE9CostSensitivity(t *testing.T) {
	r := runSpec(t, "E9")
	if !r.Match {
		t.Errorf("E9 does not hold: %s", r.Measured)
	}
}

func TestAllSpecsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		if seen[s.ID] {
			t.Errorf("duplicate experiment %s", s.ID)
		}
		seen[s.ID] = true
		if s.Title == "" || s.Run == nil {
			t.Errorf("%s incomplete", s.ID)
		}
	}
	if len(seen) != 18 {
		t.Errorf("%d experiments, want 18", len(seen))
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted an unknown id")
	}
}

func TestResultFormatting(t *testing.T) {
	r := &Result{ID: "X", Title: "t", Headers: []string{"a", "bb"},
		PaperClaim: "c", Measured: "m", Match: true}
	r.addRow("1", "2")
	r.addNote("n %d", 5)
	out := r.Format()
	for _, want := range []string{"== X: t ==", "a", "bb", "note: n 5", "HOLDS"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	r.Match = false
	if !strings.Contains(r.Format(), "DOES NOT HOLD") {
		t.Error("mismatch not rendered")
	}
}
