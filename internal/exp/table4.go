package exp

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/vax"
)

// captureSink records the first event the modified machine's kernel
// vectors receive and halts, standing in for the VMM for single-
// instruction probes of the "Modified VAX" column.
type captureSink struct {
	got *vax.Exception
}

func (s *captureSink) HandleException(c *cpu.CPU, e *vax.Exception) bool {
	if s.got == nil {
		s.got = e
	}
	c.Halt(cpu.HaltInstruction)
	return true
}

// probeModified executes one instruction on a modified VAX with
// PSL<VM> set (VM mode, VM-kernel unless vmUser) and reports the vector
// the machine delivered to the (stub) VMM.
func probeModified(src string, vmUser bool) (vax.Vector, *vax.VMTrapInfo, error) {
	prog, err := asm.Assemble(src, vax.SystemBase)
	if err != nil {
		return 0, nil, err
	}
	m := mem.New(256 * 1024)
	if err := m.StoreBytes(16*vax.PageSize, prog.Code); err != nil {
		return 0, nil, err
	}
	c := cpu.New(m, cpu.ModifiedVAX)
	for i := uint32(0); i < 32; i++ {
		pte := vax.NewPTE(true, vax.ProtUW, true, 16+i)
		if err := m.StoreLong(0x1000+4*i, uint32(pte)); err != nil {
			return 0, nil, err
		}
	}
	c.MMU.SBR = 0x1000
	c.MMU.SLR = 32
	c.MMU.Enabled = true
	sink := &captureSink{}
	c.Sink = sink
	mode := vax.Executive
	vmMode := vax.Kernel
	if vmUser {
		mode, vmMode = vax.User, vax.User
	}
	c.SetStackFor(mode, vax.SystemBase+16*vax.PageSize)
	c.SetPSL(vax.PSL(0).WithCur(mode).WithPrv(mode).WithVM(true))
	c.VMPSL = vax.PSL(0).WithCur(vmMode).WithPrv(vmMode)
	c.SetPC(vax.SystemBase)
	c.Run(50)
	if sink.got == nil {
		return 0, nil, fmt.Errorf("no event captured for %q", src)
	}
	return sink.got.Vector, sink.got.VMInfo, nil
}

// Table4 regenerates the paper's Table 4: for every modified operation,
// the behaviour on the standard VAX, the modified VAX (with PSL<VM>
// set) and inside the virtual VAX.
func Table4() (*Result, error) {
	r := &Result{
		ID:      "T4",
		Title:   "Summary of VAX architecture changes (all columns probed live)",
		Headers: []string{"Operation/Item", "Standard VAX", "Modified VAX", "Virtual VAX"},
	}

	// --- Modified VAX column: probe each sensitive instruction in VM
	// mode and record the trap taken.
	vmTrap := func(src string) (string, error) {
		vec, info, err := probeModified(src, false)
		if err != nil {
			return "", err
		}
		if vec != vax.VecVMEmulation || info == nil {
			return "", fmt.Errorf("%q: expected VM-emulation trap, got %s", src, vec)
		}
		return "VM-emulation trap ✓", nil
	}
	privTrap := func(src string, user bool) (bool, error) {
		vec, _, err := probeModified(src, user)
		if err != nil {
			return false, err
		}
		return vec == vax.VecPrivInstr, nil
	}

	privRow, err := vmTrap("mtpr r0, #18")
	if err != nil {
		return nil, err
	}
	fromUser, err := privTrap("mtpr r0, #18", true)
	if err != nil {
		return nil, err
	}
	r.addRow("LDPCTX, SVPCTX, MFPR, MTPR, HALT",
		"execute if in kernel mode",
		privRow+fmt.Sprintf(" (from VM kernel; priv-instr fault from VM user ✓=%t)", fromUser),
		"no change")

	chmRow, err := vmTrap("chmk #1")
	if err != nil {
		return nil, err
	}
	r.addRow("CHM", "trap to new mode", chmRow, "no change")

	reiRow, err := vmTrap("rei")
	if err != nil {
		return nil, err
	}
	r.addRow("REI", "execute", reiRow, "no change")

	// MOVPSL: never traps; merges VMPSL.
	vec, _, err := probeModified("movpsl r1\n\thalt", false)
	if err != nil {
		return nil, err
	}
	movpslMerged := vec == vax.VecVMEmulation // the HALT trapped, not MOVPSL
	r.addRow("MOVPSL", "return PSL",
		check(movpslMerged, "returns composite of VMPSL and PSL, no trap"),
		"no change")

	// Modify fault: demonstrated in T1 (standard sets M in hardware)
	// and T3 (modified faults to the VMM); cross-checked here by the
	// vectors those experiments observed.
	r.addRow("write to an unmodified page",
		"processor sets PTE<M> (verified in T1)",
		"modify fault (verified in T3)",
		"no change (VM's PTE<M> maintained, verified in T3)")

	r.addRow("VMPSL register", "doesn't exist", "exists (holds VM modes and IPL)", "no change")
	r.addRow("PSL<VM>", "always 0 (REI rejects it, verified in CPU tests)",
		"exists; cleared by microcode on any exception", "no change")

	// PROBEVM rows.
	probeVMStd, err := stdPrivFaultProbe("probevmr #1, (r0)")
	if err != nil {
		return nil, err
	}
	probeVMMod, err := vmTrap("probevmr #1, (r0)")
	if err != nil {
		return nil, err
	}
	r.addRow("PROBEVMx",
		check(probeVMStd, "privileged instruction trap"),
		"return accessibility (verified in T2); in a VM: "+probeVMMod,
		"no change (treated as unimplemented)")

	r.addRow("PROBEx", "return accessibility (verified in T1)",
		"VM-emulation trap if PSL<VM>=1 and shadow PTE invalid (verified in T3)",
		"executive mode can probe kernel-protected pages")

	waitStd, err := stdPrivFaultProbe("wait")
	if err != nil {
		return nil, err
	}
	waitMod, err := vmTrap("wait")
	if err != nil {
		return nil, err
	}
	r.addRow("WAIT", check(waitStd, "privileged instruction trap"),
		"no change outside a VM; in a VM: "+waitMod,
		"gives up the processor (verified in E5/vmos tests)")

	// --- Virtual VAX rows, probed on a live VM. ---
	tv, err := newTinyVM(core.Config{}, `
start:	mfpr #200, r1        ; MEMSIZE exists
	mfpr #13, r2         ; SLR reads back the clamped limit
	mtpr #31, #18        ; IPL via VMPSL
	mfpr #18, r3
	mtpr #0, #18
	pushl #0x01400000
	pushl #ecode
	rei
	.align 4
ecode:	movl @#0x80004000, r4 ; page 32 is kernel-only: executive reads it
	movl #1, r5
	chmk #0
	.align 4
chmk:	halt
	.align 4
avh:	halt
	.align 4
privh:	halt
`, map[vax.Vector]string{vax.VecCHMK: "chmk", vax.VecAccessViol: "avh", vax.VecPrivInstr: "privh"},
		map[uint32]vax.PTE{32: vax.NewPTE(true, vax.ProtKW, true, 32)})
	if err != nil {
		return nil, err
	}
	if err := tv.run(100000); err != nil {
		return nil, err
	}
	c := tv.k.CPU
	memsizeOK := c.R[1] == tgMem
	iplOK := c.R[3] == 31
	blurOK := c.R[5] == 1

	r.addRow("virtual address space", "4 gigabytes",
		"no change",
		check(true, fmt.Sprintf("limited: S space capped at %d pages by the VMM", tv.vm.SLimit())))
	r.addRow("MEMSIZE, KCALL, IORESET registers",
		"don't exist (reserved operand fault, verified in CPU tests)",
		"no change",
		check(memsizeOK, fmt.Sprintf("exist: MEMSIZE returned %d bytes", c.R[1])))
	r.addRow("memory reference (mapped)", "4 protection rings",
		"no change",
		check(blurOK, "executive mode touched a kernel-protected page"))
	r.addRow("IPL", "kernel-controlled via MTPR",
		"virtualized in VMPSL",
		check(iplOK, "MTPR/MFPR to IPL round-tripped through VMPSL"))

	// Timer: interrupts only while the VM runs — two VMs sharing one
	// real clock each see fewer ticks than the total.
	timerOK, detail, err := timerSharingProbe()
	if err != nil {
		return nil, err
	}
	r.addRow("timer", "interrupts predictably", "no change",
		check(timerOK, detail))

	r.addRow("I/O", "write device control registers (MMIO)", "no change",
		"write the KCALL register (verified in E5)")
	r.addRow("console", "full command interface", "no change",
		"EXAMINE/DEPOSIT/START/HALT/CONTINUE/INITIALIZE subset (core.ConsoleCommand, verified in core tests)")
	r.addNote("rows marked 'verified in ...' are asserted by the named experiment or test suite rather than re-probed here")
	return r, nil
}

// stdPrivFaultProbe runs one instruction in kernel mode on a standard
// VAX and reports whether it took a privileged-instruction fault.
func stdPrivFaultProbe(insn string) (bool, error) {
	mi, err := newMicro(cpu.StandardVAX, insn+`
	halt
	.align 4
privh:	movl #1, r9
	halt
`, map[vax.Vector]string{vax.VecPrivInstr: "privh"})
	if err != nil {
		return false, err
	}
	if err := mi.run(100); err != nil {
		return false, err
	}
	return mi.c.R[9] == 1, nil
}

// timerSharingProbe runs two VMs that count virtual clock ticks and
// checks that each VM's count stays below the real total: timer
// interrupts are delivered only while the VM is actually running.
func timerSharingProbe() (bool, string, error) {
	src := `
start:	mtpr #0x41, #24      ; virtual clock on
loop:	cmpl r10, #6
	blss loop
	halt
	.align 4
clkh:	incl r10
	mtpr #0xC1, #24
	rei
`
	prog, err := asm.Assemble(src, vax.SystemBase+tgCode)
	if err != nil {
		return false, "", err
	}
	img := make([]byte, tgMem)
	for i := uint32(0); i < tgSPTLen; i++ {
		putLong(img, tgSPT+4*i, uint32(vax.NewPTE(true, vax.ProtUW, true, i)))
	}
	copy(img[tgCode:], prog.Code)
	putLong(img, uint32(vax.VecClock), prog.MustSymbol("clkh"))
	k := newVMM(16<<20, core.Config{})
	var vms []*core.VM
	for i := 0; i < 2; i++ {
		vm, err := k.CreateVM(core.VMConfig{
			MemBytes: tgMem, Image: img, StartPC: prog.MustSymbol("start"),
			PreMapped: true, SBR: tgSPT, SLR: tgSPTLen, SCBB: 0,
		})
		if err != nil {
			return false, "", err
		}
		vm.SPs[vax.Kernel] = vax.SystemBase + 0x8000
		vms = append(vms, vm)
	}
	k.Run(20_000_000)
	total := k.Stats.ClockTicks
	ok := true
	for _, vm := range vms {
		if h, _ := vm.Halted(); !h {
			return false, "", fmt.Errorf("timer probe VM did not halt")
		}
		if vm.Ticks() >= total {
			ok = false
		}
	}
	detail := fmt.Sprintf("real ticks %d; per-VM ticks %d and %d — delivered only while running",
		total, vms[0].Ticks(), vms[1].Ticks())
	return ok, detail, nil
}

func putLong(b []byte, at, v uint32) {
	b[at] = byte(v)
	b[at+1] = byte(v >> 8)
	b[at+2] = byte(v >> 16)
	b[at+3] = byte(v >> 24)
}
