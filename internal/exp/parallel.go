package exp

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/vax"
)

// ParallelScaling measures aggregate guest throughput of the serial
// round-robin engine against the parallel execution engine across
// fleet sizes, on identical compute guests. It is wall-clock based and
// host-dependent, so it is deliberately NOT part of All(): the
// registered experiments stay deterministic and byte-identical from
// run to run. Invoke it with `experiments -parallel`.
func ParallelScaling(fleets []int, workers int) (*Result, error) {
	if len(fleets) == 0 {
		fleets = []int{1, 2, 4, 8}
	}
	r := &Result{
		ID:      "PX",
		Title:   "Parallel multi-VM engine: aggregate throughput vs the serial engine",
		Headers: []string{"VMs", "serial instr/sec", "parallel instr/sec", "speedup"},
	}
	const computeSrc = `
start:	clrl r0
	movl #200000, r1
loop:	addl2 #7, r0
	sobgtr r1, loop
	halt
`
	for _, n := range fleets {
		sInstr, sDur, err := runFleet(computeSrc, n, 1)
		if err != nil {
			return nil, fmt.Errorf("%d VMs serial: %w", n, err)
		}
		w := workers
		if w <= 0 {
			w = n
		}
		pInstr, pDur, err := runFleet(computeSrc, n, w)
		if err != nil {
			return nil, fmt.Errorf("%d VMs parallel: %w", n, err)
		}
		sRate := float64(sInstr) / sDur.Seconds()
		pRate := float64(pInstr) / pDur.Seconds()
		r.addRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", sRate),
			fmt.Sprintf("%.0f", pRate),
			fmt.Sprintf("%.2fx", pRate/sRate))
	}
	r.addNote("host has %d CPU core(s); speedup requires as many cores as workers", runtime.NumCPU())
	r.addNote("wall-clock measurement: not deterministic, excluded from the default experiment set")
	return r, nil
}

// runFleet boots n identical compute guests and runs them to
// completion under the given worker count (1 = serial engine).
func runFleet(src string, n, workers int) (instrs uint64, elapsed time.Duration, err error) {
	img, start, err := campaignImage(src, nil)
	if err != nil {
		return 0, 0, err
	}
	k := core.New(32<<20, core.Config{Workers: workers})
	vms := make([]*core.VM, n)
	for i := range vms {
		vm, cerr := k.CreateVM(core.VMConfig{
			Name: fmt.Sprintf("vm%d", i), MemBytes: cgMem, Image: img,
			StartPC: start, PreMapped: true, SBR: cgSPT, SLR: cgSPTLen, SCBB: 0,
		})
		if cerr != nil {
			return 0, 0, cerr
		}
		vm.SPs[vax.Kernel] = vax.SystemBase + 0x8000
		vm.ISP = vax.SystemBase + 0x8800
		vms[i] = vm
	}
	t0 := time.Now()
	k.Run(0)
	elapsed = time.Since(t0)
	for _, vm := range vms {
		if halted, msg := vm.Halted(); !halted || msg != vmHaltNormal {
			return 0, 0, fmt.Errorf("%s did not halt normally (%q)", vm.Name(), msg)
		}
	}
	if pr := k.LastParallelRun(); pr.VMs > 0 {
		instrs = pr.Instrs
	} else {
		instrs = k.CPU.Stats.Instructions
	}
	return instrs, elapsed, nil
}
