package exp

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/vax"
)

// ParallelScaling measures aggregate guest throughput of the serial
// round-robin engine against the parallel execution engine across
// fleet sizes, on identical compute guests. It is wall-clock based and
// host-dependent, so it is deliberately NOT part of All(): the
// registered experiments stay deterministic and byte-identical from
// run to run. Invoke it with `experiments -parallel`.
func ParallelScaling(fleets []int, workers int) (*Result, error) {
	if len(fleets) == 0 {
		fleets = []int{1, 2, 4, 8}
	}
	r := &Result{
		ID:      "PX",
		Title:   "Parallel multi-VM engine: aggregate throughput vs the serial engine",
		Headers: []string{"VMs", "serial instr/sec", "parallel instr/sec", "speedup"},
	}
	cache := mem.NewCache()
	defer cache.Drain()
	for _, n := range fleets {
		sRes, err := runFleet(n, 0, 1, cache)
		if err != nil {
			return nil, fmt.Errorf("%d VMs serial: %w", n, err)
		}
		w := workers
		if w <= 0 {
			w = n
		}
		pRes, err := runFleet(n, 0, w, cache)
		if err != nil {
			return nil, fmt.Errorf("%d VMs parallel: %w", n, err)
		}
		sRate := float64(sRes.instrs) / sRes.elapsed.Seconds()
		pRate := float64(pRes.instrs) / pRes.elapsed.Seconds()
		r.addRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", sRate),
			fmt.Sprintf("%.0f", pRate),
			fmt.Sprintf("%.2fx", pRate/sRate))
	}
	r.addNote("host has %d CPU core(s); speedup requires as many cores as workers", runtime.NumCPU())
	r.addNote("wall-clock measurement: not deterministic, excluded from the default experiment set")
	return r, nil
}

// ParallelDensity pushes VM count instead of throughput: fleets that
// are mostly idle guests (a WAIT loop, the shape of a logged-in but
// inactive timesharing VM from the paper's world) with one compute
// guest per 32, run on a small fixed worker pool. The interesting
// output is the scheduler's behavior — parked VMs must cost no worker
// time, so a pool of 8 should carry 1024 VMs without the wall clock
// exploding. Wall-clock based, so not part of All().
func ParallelDensity(fleets []int, workers int) (*Result, error) {
	if len(fleets) == 0 {
		fleets = []int{64, 256, 1024}
	}
	if workers <= 0 {
		workers = 8
	}
	r := &Result{
		ID:      "PD",
		Title:   "Parallel engine density: mostly-idle fleets on a small worker pool",
		Headers: []string{"VMs", "workers", "wall ms", "parks", "wakes", "steals", "max queue"},
	}
	cache := mem.NewCache()
	defer cache.Drain()
	for _, n := range fleets {
		busy := n / 32
		if busy < 1 {
			busy = 1
		}
		res, err := runFleet(n, n-busy, workers, cache)
		if err != nil {
			return nil, fmt.Errorf("%d VMs density: %w", n, err)
		}
		pr := res.sched
		r.addRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", pr.Workers),
			fmt.Sprintf("%.1f", float64(res.elapsed.Microseconds())/1000),
			fmt.Sprintf("%d", pr.Parks), fmt.Sprintf("%d", pr.Wakes),
			fmt.Sprintf("%d", pr.Steals), fmt.Sprintf("%d", pr.MaxQueueDepth))
	}
	r.addNote("each fleet is idle WAIT-loop guests plus one compute guest per 32")
	r.addNote("wall-clock measurement: not deterministic, excluded from the default experiment set")
	return r, nil
}

// parallelComputeSrc is the busy guest: a counted add loop that stores
// its result (so a cloned instance privatizes at least one page), then
// HALT.
const parallelComputeSrc = `
start:	clrl r0
	movl #200000, r1
loop:	addl2 #7, r0
	sobgtr r1, loop
	movl r0, @#0x80006000
	halt
`

// parallelIdleSrc is the idle guest: three WAITs (long enough to be
// parked and ride the fleet-wide idle wakes), then HALT.
const parallelIdleSrc = `
start:	movl #3, r10
loop:	wait
	sobgtr r10, loop
	halt
`

// fleetResult carries one fleet run's measurements.
type fleetResult struct {
	instrs  uint64
	setup   time.Duration // monitor creation + fleet bring-up (images excluded)
	elapsed time.Duration
	sched   core.ParallelRunStats
}

// runFleet boots n guests — the first `idlers` of them WAIT-loop idle
// guests, the rest compute guests — and runs them to completion under
// the given worker count (1 = serial engine). Monitor memory is sized
// to the fleet: each VM needs its 64 KB of RAM plus a few dozen shadow
// pages, so 128 KB per VM with 1 MB of slack keeps 1024 VMs around
// 129 MB instead of a fixed huge arena. The backing store is recycled
// across calls through the caller's mem.Cache.
func runFleet(n, idlers, workers int, cache *mem.Cache) (fleetResult, error) {
	compute, computeStart, err := campaignImage(parallelComputeSrc, nil)
	if err != nil {
		return fleetResult{}, err
	}
	idle, idleStart, err := campaignImage(parallelIdleSrc, nil)
	if err != nil {
		return fleetResult{}, err
	}
	memBytes := uint32(n)*(128<<10) + (1 << 20)
	cfg := core.Config{Workers: workers, MemCache: cache}
	if idlers > 0 {
		// Idle guests' WAITs time out against virtual ticks; a short
		// timeout keeps the idle portion of the run brief.
		cfg.WaitTimeout = 2
	}
	tSetup := time.Now()
	k := core.New(memBytes, cfg)
	vms := make([]*core.VM, n)
	for i := range vms {
		img, start := compute, computeStart
		if i < idlers {
			img, start = idle, idleStart
		}
		vm, cerr := k.CreateVM(core.VMConfig{
			Name: fmt.Sprintf("vm%d", i), MemBytes: cgMem, Image: img,
			StartPC: start, PreMapped: true, SBR: cgSPT, SLR: cgSPTLen, SCBB: 0,
		})
		if cerr != nil {
			return fleetResult{}, cerr
		}
		vm.SPs[vax.Kernel] = vax.SystemBase + 0x8000
		vm.ISP = vax.SystemBase + 0x8800
		vms[i] = vm
	}
	setup := time.Since(tSetup)
	t0 := time.Now()
	k.Run(0)
	res := fleetResult{setup: setup, elapsed: time.Since(t0)}
	for _, vm := range vms {
		if halted, msg := vm.Halted(); !halted || msg != vmHaltNormal {
			return fleetResult{}, fmt.Errorf("%s did not halt normally (%q)", vm.Name(), msg)
		}
	}
	res.sched = k.LastParallelRun()
	if res.sched.VMs > 0 {
		res.instrs = res.sched.Instrs
	} else {
		res.instrs = k.CPU.Stats.Instructions
	}
	k.Release()
	return res, nil
}
