package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/vmos"
	"repro/internal/workload"
)

// E8ModifyFaultAblation implements and measures the design choice of
// Section 4.4.2. The paper considered tracking modified pages by giving
// unmodified pages a read-only shadow protection code ("the access
// violation path would detect whether a reference was in fact legal by
// checking back with the original VM PTE protection code") but rejected
// it because PROBEW would be forced to trap whenever the shadow denied
// a write: "Overall we deemed it more efficient to create a new fault."
// Both designs are implemented; this experiment runs the same workload
// under each and compares the trap bills.
func E8ModifyFaultAblation() (*Result, error) {
	r := &Result{
		ID:      "E8",
		Title:   "Modify fault versus the read-only-shadow alternative (Section 4.4.2)",
		Headers: []string{"Design", "Modify/upgrade faults", "PROBE traps", "Total M-tracking traps", "Cycles"},
	}
	// A workload whose kernel PROBEs user buffers that have not been
	// written yet (disk reads into fresh pages) plus ordinary write
	// traffic: the pattern that separates the two designs.
	cfg := vmos.Config{Processes: []vmos.Process{
		workload.ReadThenDiskWrite(16),
		workload.ReadThenDiskWrite(16),
		workload.TP(10, 16),
	}}

	type outcome struct {
		faults, probes, total, cycles uint64
	}
	run := func(readOnlyShadow bool) (outcome, error) {
		k, vm, _, err := runVMOS(core.Config{ReadOnlyShadow: readOnlyShadow}, cfg)
		if err != nil {
			return outcome{}, err
		}
		o := outcome{
			faults: vm.Stats.ModifyFaults + vm.Stats.ROWriteFaults,
			probes: vm.Stats.ProbeFills,
			cycles: k.CPU.Cycles,
		}
		o.total = o.faults + o.probes
		return o, nil
	}

	mf, err := run(false)
	if err != nil {
		return nil, err
	}
	ro, err := run(true)
	if err != nil {
		return nil, err
	}
	r.addRow("modify fault (the paper's choice)",
		fmt.Sprintf("%d", mf.faults), fmt.Sprintf("%d", mf.probes),
		fmt.Sprintf("%d", mf.total), fmt.Sprintf("%d", mf.cycles))
	r.addRow("read-only shadow (rejected)",
		fmt.Sprintf("%d", ro.faults), fmt.Sprintf("%d", ro.probes),
		fmt.Sprintf("%d", ro.total), fmt.Sprintf("%d", ro.cycles))
	r.addNote("both designs pay one trap per first write; the rejected design adds a PROBEW trap whenever the shadow denies a write it cannot judge alone")
	r.PaperClaim = "giving writable pages a read-only shadow protection would make PROBEW trap more frequently; the modify fault avoids those extra steps"
	r.Measured = fmt.Sprintf("PROBE traps %d -> %d; total modify-tracking traps %d -> %d",
		mf.probes, ro.probes, mf.total, ro.total)
	r.Match = ro.probes > mf.probes && ro.total >= mf.total
	return r, nil
}
