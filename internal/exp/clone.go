package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/vax"
)

// CloneDensity compares two ways to bring up the same mostly-idle
// fleet: booting every VM from its image, and booting two template VMs
// (one compute, one idle) then stamping the rest out with COW clones.
// Both fleets run to completion and must halt identically — the clones
// are behaviorally indistinguishable from boots; only the bring-up
// cost and the memory residency differ. The clone-backed monitor is
// deliberately sized below the fleet's nominal footprint (overcommit):
// clones only occupy what they write. Wall-clock based, so not part of
// All(); invoke with `experiments -clone`.
func CloneDensity(fleets []int, workers int) (*Result, error) {
	if len(fleets) == 0 {
		fleets = []int{64, 256, 1024}
	}
	if workers <= 0 {
		workers = 8
	}
	r := &Result{
		ID:    "CD",
		Title: "COW clone fleets: bring-up cost and residency vs full boots",
		Headers: []string{"VMs", "boot ms", "clone ms", "µs/clone", "speedup",
			"cow breaks", "resident"},
	}
	cache := mem.NewCache()
	defer cache.Drain()
	for _, n := range fleets {
		if n < 2 {
			return nil, fmt.Errorf("clone fleets need at least 2 VMs, got %d", n)
		}
		busy := n / 32
		if busy < 1 {
			busy = 1
		}
		boot, err := runFleet(n, n-busy, workers, cache)
		if err != nil {
			return nil, fmt.Errorf("%d VMs booted: %w", n, err)
		}
		clone, err := runCloneFleet(n, n-busy, workers, cache)
		if err != nil {
			return nil, fmt.Errorf("%d VMs cloned: %w", n, err)
		}
		perClone := float64(clone.cloning.Microseconds()) / float64(n-2)
		r.addRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", float64(boot.setup.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(clone.setup.Microseconds())/1000),
			fmt.Sprintf("%.1f", perClone),
			fmt.Sprintf("%.1fx", float64(boot.setup)/float64(clone.setup)),
			fmt.Sprintf("%d", clone.breaks),
			fmt.Sprintf("%d%%", clone.residentPct))
	}
	r.addNote("each fleet is idle WAIT-loop guests plus one compute guest per 32")
	r.addNote("boot/clone ms is fleet bring-up; µs/clone excludes the two template boots")
	r.addNote("resident is fleet pages actually occupied vs nominal (clone monitors are overcommitted)")
	r.addNote("wall-clock measurement: not deterministic, excluded from the default experiment set")
	return r, nil
}

// cloneFleetResult extends fleetResult with the clone-specific
// measurements CloneDensity reports.
type cloneFleetResult struct {
	fleetResult
	cloning     time.Duration // the clone loop alone (setup minus template boots)
	breaks      uint64
	residentPct uint64
}

// runCloneFleet brings up the same fleet shape as runFleet but via
// Clone: two template VMs are booted from images and every other VM is
// a COW clone of one of them. Monitor memory is sized well below the
// fleet's nominal footprint — a clone occupies its shadow tables plus
// whatever it breaks, not its 64 KB — which is the overcommit half of
// the experiment: the same fleet that needs 128 KB per VM booted runs
// in a fraction of that cloned.
func runCloneFleet(n, idlers, workers int, cache *mem.Cache) (cloneFleetResult, error) {
	if n < 2 || idlers < 1 || idlers >= n {
		return cloneFleetResult{}, fmt.Errorf("clone fleet needs both templates: n=%d idlers=%d", n, idlers)
	}
	compute, computeStart, err := campaignImage(parallelComputeSrc, nil)
	if err != nil {
		return cloneFleetResult{}, err
	}
	idle, idleStart, err := campaignImage(parallelIdleSrc, nil)
	if err != nil {
		return cloneFleetResult{}, err
	}
	memBytes := uint32(n)*(48<<10) + (1 << 20)
	cfg := core.Config{Workers: workers, MemCache: cache}
	if idlers > 0 {
		cfg.WaitTimeout = 2
	}
	tSetup := time.Now()
	k := core.New(memBytes, cfg)
	boot := func(name string, img []byte, start uint32) (*core.VM, error) {
		vm, err := k.CreateVM(core.VMConfig{
			Name: name, MemBytes: cgMem, Image: img,
			StartPC: start, PreMapped: true, SBR: cgSPT, SLR: cgSPTLen, SCBB: 0,
		})
		if err != nil {
			return nil, err
		}
		vm.SPs[vax.Kernel] = vax.SystemBase + 0x8000
		vm.ISP = vax.SystemBase + 0x8800
		return vm, nil
	}
	idleT, err := boot("vm0", idle, idleStart)
	if err != nil {
		return cloneFleetResult{}, err
	}
	computeT, err := boot(fmt.Sprintf("vm%d", idlers), compute, computeStart)
	if err != nil {
		return cloneFleetResult{}, err
	}
	tClone := time.Now()
	for i := 1; i < n; i++ {
		if i == idlers {
			continue // the compute template holds this slot's role
		}
		src := computeT
		if i < idlers {
			src = idleT
		}
		if _, err := k.Clone(src, fmt.Sprintf("vm%d", i)); err != nil {
			return cloneFleetResult{}, err
		}
	}
	res := cloneFleetResult{cloning: time.Since(tClone)}
	res.setup = time.Since(tSetup)

	t0 := time.Now()
	k.Run(0)
	res.elapsed = time.Since(t0)
	// Fleet residency: the two golden images are physically present
	// once each, plus whatever every VM privatized by writing. Shared
	// pages beyond the golden copies cost nothing per clone.
	resident := uint64(2) * uint64(cgMem/vax.PageSize)
	for _, vm := range k.VMs() {
		if halted, msg := vm.Halted(); !halted || msg != vmHaltNormal {
			return cloneFleetResult{}, fmt.Errorf("%s did not halt normally (%q)", vm.Name(), msg)
		}
		res.breaks += vm.Stats.COWBreaks
		resident += vm.Stats.PrivatePages
	}
	nominal := uint64(n) * uint64(cgMem/vax.PageSize)
	res.residentPct = resident * 100 / nominal
	res.sched = k.LastParallelRun()
	if res.sched.VMs > 0 {
		res.instrs = res.sched.Instrs
	} else {
		res.instrs = k.CPU.Stats.Instructions
	}
	k.Release()
	return res, nil
}
