package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/trace"
	"repro/internal/vmos"
	"repro/internal/workload"
)

// Performance experiments: every run measures machine cycles under the
// documented cost model (internal/cpu/costs.go), comparing the direct-
// execution path against trap-and-emulate paths exactly as the paper's
// evaluation does.

const perfMaxSteps = 400_000_000

// runBareOS boots a MiniOS image on a bare standard VAX and runs it to
// completion, returning cycles and the machine.
func runBareOS(cfg vmos.Config) (*vmos.Machine, error) {
	cfg.Target = vmos.TargetBare
	im, err := vmos.Build(cfg)
	if err != nil {
		return nil, err
	}
	ma, err := vmos.BootBare(im, cpu.StandardVAX, 64)
	if err != nil {
		return nil, err
	}
	seedDisk(ma.Disk.Image())
	if !ma.Run(perfMaxSteps) {
		return nil, fmt.Errorf("bare MiniOS did not finish (pc=%#x)", ma.CPU.PC())
	}
	return ma, nil
}

// runVMOS boots the same MiniOS configuration inside a VM.
func runVMOS(kcfg core.Config, cfg vmos.Config) (*core.VMM, *core.VM, *vmos.Image, error) {
	if cfg.Target == vmos.TargetBare {
		cfg.Target = vmos.TargetVM
	}
	im, err := vmos.Build(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	k := newVMM(16<<20, kcfg)
	vm, err := vmos.BootVM(k, im, 64)
	if err != nil {
		return nil, nil, nil, err
	}
	seedDisk(vm.Disk().Image())
	k.Run(perfMaxSteps)
	if h, msg := vm.Halted(); !h {
		return nil, nil, nil, fmt.Errorf("VM MiniOS did not finish (pc=%#x)", k.CPU.PC())
	} else if msg != "HALT executed in VM kernel mode" {
		return nil, nil, nil, fmt.Errorf("VM MiniOS died: %s", msg)
	}
	return k, vm, im, nil
}

// annotateLatencies appends flight-recorder latency percentiles to an
// experiment's notes. With the recorder disabled (the default) it adds
// nothing, so the rendered experiment output stays byte-identical
// unless VAX_TRACE or the -trace flag opted tracing in.
func annotateLatencies(r *Result, k *core.VMM) {
	rec := k.Recorder()
	if rec == nil {
		return
	}
	rec.Sync()
	for _, v := range rec.VMs() {
		for l := trace.Lat(0); l < trace.NumLat; l++ {
			h := v.Hist(l)
			if h.Count == 0 {
				continue
			}
			r.addNote("%s %s latency (cycles): n=%d p50=%d p95=%d p99=%d",
				v.Label, l, h.Count, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		}
	}
}

// seedDisk fills a disk image with recognizable record data.
func seedDisk(img []byte) {
	for i := range img {
		img[i] = byte(i)
	}
}

// E1MixedWorkload reproduces the headline number of Section 7.3: a mix
// of interactive editing and transaction processing, run bare and in a
// VM with the multi-process shadow cache enabled, reporting the ratio.
func E1MixedWorkload() (*Result, error) {
	r := &Result{
		ID:      "E1",
		Title:   "Mixed editing + transaction processing: VM vs bare machine",
		Headers: []string{"Configuration", "Cycles", "Relative"},
	}
	cfg := vmos.Config{Processes: workload.Mix(25, 12, 16), Preempt: true}
	bare, err := runBareOS(cfg)
	if err != nil {
		return nil, err
	}
	k, vm, _, err := runVMOS(core.Config{ShadowCacheSlots: 4}, cfg)
	if err != nil {
		return nil, err
	}
	bc, vc := bare.CPU.Cycles, k.CPU.Cycles
	bare.Release()
	k.Release()
	ratio := float64(bc) / float64(vc)
	r.addRow("bare VAX (standard)", fmt.Sprintf("%d", bc), "1.00")
	r.addRow("virtual VAX (shadow cache on)", fmt.Sprintf("%d", vc), fmt.Sprintf("%.2f", ratio))
	r.addNote("VM trap mix: %d CHM, %d REI, %d MTPR-IPL, %d other MTPR, %d shadow fills, %d KCALLs",
		vm.Stats.CHMs, vm.Stats.REIs, vm.Stats.MTPRIPL, vm.Stats.MTPROther,
		vm.Stats.ShadowFills, vm.Stats.KCALLs)
	r.PaperClaim = "VM performance was 47-48% of the unmodified VAX 8800 (Section 7.3)"
	r.Measured = fmt.Sprintf("VM ran at %.0f%% of the bare machine", ratio*100)
	r.Match = ratio >= 0.40 && ratio <= 0.60
	return r, nil
}

// shadowWorkload is the context-switch-heavy configuration used by E2
// and E3: four processes, each touching its pages then yielding.
func shadowWorkload() vmos.Config {
	procs := make([]vmos.Process, 4)
	for i := range procs {
		procs[i] = workload.PageStress(10, false)
	}
	return vmos.Config{Processes: procs}
}

// E2ShadowCache reproduces Section 7.2: shadow-PTE fill faults with the
// multi-process shadow table cache versus without.
func E2ShadowCache() (*Result, error) {
	r := &Result{
		ID:      "E2",
		Title:   "Multi-process shadow page tables (Section 7.2)",
		Headers: []string{"Shadow tables per VM", "Context switches", "Shadow fills", "Cycles"},
	}
	cfg := shadowWorkload() // four guest processes
	fills := map[int]uint64{}
	for _, slots := range []int{1, 2, 4, 8} {
		k, vm, _, err := runVMOS(core.Config{ShadowCacheSlots: slots}, cfg)
		if err != nil {
			return nil, err
		}
		fills[slots] = vm.Stats.ShadowFills
		label := fmt.Sprintf("%d", slots)
		switch {
		case slots == 1:
			label += " (cache off)"
		case slots < 4:
			label += " (fewer than the 4 processes)"
		case slots == 4:
			label += " (processes fit)"
		}
		r.addRow(label,
			fmt.Sprintf("%d", vm.Stats.ContextSwitches),
			fmt.Sprintf("%d", vm.Stats.ShadowFills),
			fmt.Sprintf("%d", k.CPU.Cycles))
		k.Release()
	}
	if fills[2] <= fills[4] {
		r.addNote("warning: partial cache did not land between the extremes")
	}
	reduction := 1 - float64(fills[4])/float64(fills[1])
	r.PaperClaim = "fill faults dropped by approximately 80% when VM processes fit in the cached shadow tables"
	r.Measured = fmt.Sprintf("fills dropped %.0f%% (%d -> %d)", reduction*100, fills[1], fills[4])
	r.Match = reduction >= 0.70
	return r, nil
}

// E3FaultsPerSwitch reproduces the two Section 4.3.1 observations: the
// average number of shadow fills between context switches (the paper
// saw 17), and the failure of prefetching groups of PTEs per fault.
func E3FaultsPerSwitch() (*Result, error) {
	r := &Result{
		ID:      "E3",
		Title:   "Shadow fills per context switch; prefetch ablation (Section 4.3.1)",
		Headers: []string{"Prefetch group", "Demand fills", "Prefetched fills", "Used/prefetched", "Cycles"},
	}
	// The dense workload (every process touches all of its pages, then
	// yields) gives the paper's fills-per-context-switch figure.
	dense, vmDense, _, err := runVMOS(core.Config{ShadowCacheSlots: 1}, shadowWorkload())
	if err != nil {
		return nil, err
	}
	annotateLatencies(r, dense)
	dense.Release()
	perSwitch := float64(vmDense.Stats.ShadowFills) / float64(vmDense.Stats.ContextSwitches)

	// Sparse touching: each process touches every 4th page, so PTEs
	// prefetched from a fault's neighbourhood are mostly unused before
	// the next context switch clears them.
	procs := make([]vmos.Process, 4)
	for i := range procs {
		procs[i] = workload.PageSparse(10)
	}
	cfg := vmos.Config{Processes: procs}

	base, vmBase, _, err := runVMOS(core.Config{ShadowCacheSlots: 1}, cfg)
	if err != nil {
		return nil, err
	}
	baseCycles := base.CPU.Cycles
	base.Release()
	r.addRow("1 (on demand)", fmt.Sprintf("%d", vmBase.Stats.ShadowFills), "0", "—",
		fmt.Sprintf("%d", baseCycles))

	worse := true
	for _, g := range []int{4, 8, 16} {
		k, vm, _, err := runVMOS(core.Config{ShadowCacheSlots: 1, PrefetchGroup: g}, cfg)
		if err != nil {
			return nil, err
		}
		r.addRow(fmt.Sprintf("%d", g),
			fmt.Sprintf("%d", vm.Stats.ShadowFills),
			fmt.Sprintf("%d", vm.Stats.PrefetchFills),
			fmt.Sprintf("%.2f", float64(vmBase.Stats.ShadowFills-vm.Stats.ShadowFills)/
				maxf(float64(vm.Stats.PrefetchFills), 1)),
			fmt.Sprintf("%d", k.CPU.Cycles))
		if k.CPU.Cycles < baseCycles {
			worse = false
		}
		k.Release()
	}
	r.addNote("dense workload: %d fills over %d context switches = %.1f fills per switch",
		vmDense.Stats.ShadowFills, vmDense.Stats.ContextSwitches, perSwitch)
	r.PaperClaim = "an average of 17 page faults between context switches; prefetching PTE groups cost more than it saved"
	r.Measured = fmt.Sprintf("%.1f fills per switch; every prefetch group size increased total cycles: %t", perSwitch, worse)
	r.Match = perSwitch >= 8 && perSwitch <= 30 && worse
	return r, nil
}

// E4MtprIPL reproduces the MTPR-to-IPL measurement of Section 7.3: the
// VMM's cost of emulating the instruction versus the optimized bare-
// machine path.
func E4MtprIPL() (*Result, error) {
	r := &Result{
		ID:      "E4",
		Title:   "MTPR-to-IPL: emulation vs the optimized hardware path",
		Headers: []string{"Machine", "Cycles for 2000 IPL changes", "Per change", "Ratio"},
	}
	const iters = 1000 // each iteration performs two MTPR-to-IPL
	mk := func() vmos.Config {
		return vmos.Config{KernelPrelude: workload.KernelIPL(iters), NoClock: true}
	}
	calib := func() vmos.Config {
		return vmos.Config{KernelPrelude: workload.KernelNop(iters), NoClock: true}
	}
	bare, err := runBareOS(mk())
	if err != nil {
		return nil, err
	}
	bareNop, err := runBareOS(calib())
	if err != nil {
		return nil, err
	}
	k, _, _, err := runVMOS(core.Config{}, mk())
	if err != nil {
		return nil, err
	}
	kNop, _, _, err := runVMOS(core.Config{}, calib())
	if err != nil {
		return nil, err
	}
	// Subtract the loop skeleton (measured by the same loop around
	// NOPs), then add back the displaced instruction's base issue cost
	// so each side reports the full cost of one MTPR-to-IPL.
	barePer := float64(bare.CPU.Cycles-bareNop.CPU.Cycles)/(2*iters) + cpu.CostBase
	vmPer := float64(k.CPU.Cycles-kNop.CPU.Cycles)/(2*iters) + cpu.CostBase
	bare.Release()
	bareNop.Release()
	k.Release()
	kNop.Release()
	ratio := vmPer / barePer
	r.addRow("bare VAX", fmt.Sprintf("%d", bare.CPU.Cycles-bareNop.CPU.Cycles),
		fmt.Sprintf("%.1f", barePer), "1.0")
	r.addRow("virtual VAX", fmt.Sprintf("%d", k.CPU.Cycles-kNop.CPU.Cycles),
		fmt.Sprintf("%.1f", vmPer), fmt.Sprintf("%.1f", ratio))
	r.PaperClaim = "the VMM's cost of emulating MTPR-to-IPL on the VAX 8800 was ten to twelve times its cost on the bare machine"
	r.Measured = fmt.Sprintf("emulation cost %.1fx the optimized hardware path", ratio)
	r.Match = ratio >= 9 && ratio <= 13
	return r, nil
}

// E5IOTraps reproduces Section 4.4.3: traps per I/O operation with the
// KCALL start-I/O interface versus emulated memory-mapped registers.
func E5IOTraps() (*Result, error) {
	r := &Result{
		ID:      "E5",
		Title:   "Start-I/O (KCALL) versus emulated memory-mapped I/O",
		Headers: []string{"I/O interface", "Disk ops", "I/O traps", "Traps per op", "Cycles"},
	}
	const ops = 60
	procs := []vmos.Process{workload.DiskBound(ops, 16)}

	k1, vm1, im1, err := runVMOS(core.Config{}, vmos.Config{Target: vmos.TargetVM, Processes: procs})
	if err != nil {
		return nil, err
	}
	ioops1 := vmos.ReadVMCell(vm1, im1, "ioops")
	k1.Release() // after the cell read: ReadVMCell dumps VM memory
	// KCALLs include one boot-time uptime registration.
	kcallIO := vm1.Stats.KCALLs - 1
	r.addRow("KCALL start-I/O", fmt.Sprintf("%d", ioops1),
		fmt.Sprintf("%d", kcallIO), fmt.Sprintf("%.1f", float64(kcallIO)/float64(ioops1)),
		fmt.Sprintf("%d", k1.CPU.Cycles))

	k2, vm2, im2, err := runVMOS(core.Config{MMIOEmulatedIO: true},
		vmos.Config{Target: vmos.TargetVMMMIO, Processes: procs})
	if err != nil {
		return nil, err
	}
	ioops2 := vmos.ReadVMCell(vm2, im2, "ioops")
	k2.Release()
	r.addRow("emulated MMIO registers", fmt.Sprintf("%d", ioops2),
		fmt.Sprintf("%d", vm2.Stats.MMIOEmuls),
		fmt.Sprintf("%.1f", float64(vm2.Stats.MMIOEmuls)/float64(ioops2)),
		fmt.Sprintf("%d", k2.CPU.Cycles))

	factor := float64(vm2.Stats.MMIOEmuls) / maxf(float64(kcallIO), 1)
	r.PaperClaim = "an explicit start-I/O instruction significantly reduces the number of traps for I/O (Section 4.4.3)"
	r.Measured = fmt.Sprintf("MMIO emulation took %.1fx the traps of KCALL for the same work", factor)
	r.Match = factor >= 3
	return r, nil
}

// E6Efficiency demonstrates the efficiency property of Section 2: a
// purely unprivileged workload runs in the VM at essentially native
// speed.
func E6Efficiency() (*Result, error) {
	r := &Result{
		ID:      "E6",
		Title:   "Efficiency: unprivileged instructions execute directly",
		Headers: []string{"Machine", "Cycles", "Relative"},
	}
	cfg := vmos.Config{Processes: []vmos.Process{workload.Compute(30000)}, NoClock: true}
	bare, err := runBareOS(cfg)
	if err != nil {
		return nil, err
	}
	k, vm, _, err := runVMOS(core.Config{}, cfg)
	if err != nil {
		return nil, err
	}
	ratio := float64(bare.CPU.Cycles) / float64(k.CPU.Cycles)
	bare.Release()
	k.Release()
	r.addRow("bare VAX", fmt.Sprintf("%d", bare.CPU.Cycles), "1.00")
	r.addRow("virtual VAX", fmt.Sprintf("%d", k.CPU.Cycles), fmt.Sprintf("%.3f", ratio))
	r.addNote("VM-emulation traps during the run: %d (boot and exit only)", vm.Stats.VMTraps)
	if Translation {
		// Off by default: this note only appears under -translate /
		// VAX_TRANSLATE, so the published output stays byte-identical.
		r.addNote("hot-trace tier: %d superblocks built, %d entries, %d instructions retired in blocks",
			k.CPU.Stats.SBBuilds, k.CPU.Stats.SBEnters, k.CPU.Stats.SBSteps)
	}
	r.PaperClaim = "all unprivileged VAX instructions execute directly on the hardware (Section 5)"
	r.Measured = fmt.Sprintf("VM at %.1f%% of native for compute-bound code", ratio*100)
	r.Match = ratio >= 0.95
	return r, nil
}

// E7RingSchemes compares the ring virtualization alternatives of
// Section 7.1 on the mixed workload.
func E7RingSchemes() (*Result, error) {
	r := &Result{
		ID:      "E7",
		Title:   "Ring virtualization schemes (Section 7.1)",
		Headers: []string{"Scheme", "Cycles", "Relative to bare"},
	}
	cfg := vmos.Config{Processes: workload.Mix(10, 5, 16), Preempt: true}
	bare, err := runBareOS(cfg)
	if err != nil {
		return nil, err
	}
	bc := float64(bare.CPU.Cycles)
	bare.Release()
	r.addRow("bare machine", fmt.Sprintf("%d", bare.CPU.Cycles), "1.00")
	ratios := map[core.RingScheme]float64{}
	for _, scheme := range []core.RingScheme{core.RingCompression, core.SeparateAddressSpace, core.TrapAll} {
		k, _, _, err := runVMOS(core.Config{Scheme: scheme, ShadowCacheSlots: 4}, cfg)
		if err != nil {
			return nil, err
		}
		ratios[scheme] = bc / float64(k.CPU.Cycles)
		r.addRow(scheme.String(), fmt.Sprintf("%d", k.CPU.Cycles),
			fmt.Sprintf("%.2f", ratios[scheme]))
		k.Release()
	}
	r.PaperClaim = "trapping all most-privileged-mode instructions is costly (Goldberg scheme 1); a separate VMM address space adds a switch on every VMM entry (rejected alternatives)"
	r.Measured = fmt.Sprintf("compression %.2f > separate space %.2f > trap-all %.2f",
		ratios[core.RingCompression], ratios[core.SeparateAddressSpace], ratios[core.TrapAll])
	r.Match = ratios[core.RingCompression] > ratios[core.SeparateAddressSpace] &&
		ratios[core.SeparateAddressSpace] > ratios[core.TrapAll]
	return r, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
