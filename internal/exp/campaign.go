package exp

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/vax"
)

// The fault-injection campaign (experiment E10). Three VMs share one
// VMM: a victim that works the disk and takes every injected fault, a
// bystander that computes and prints, and a runaway that spins without
// ever making progress. The isolation invariant under test is the
// paper's fault-containment story (Section 5): the victim absorbs its
// faults as virtual machine checks or retried I/O, the watchdog halts
// only the runaway, and the bystander's output and completion time are
// unaffected — across every seed, with no Go panic and no VMM halt.

// Victim: 8 passes of read+write over 16 disk blocks via KCALL, with
// handlers for the machine check (count in r9 and dismiss), the clock
// (storms land here) and disk completion.
const victimSrc = `
start:	mtpr #0x41, #24      ; virtual clock: run + interrupt enable
	movl #8, r10
outer:	clrl r11
inner:	movl #3, r0          ; KCALL disk read
	movl r11, r1
	movl #0x5000, r2
	mtpr #0, #201
	movl #4, r0          ; KCALL disk write
	movl r11, r1
	movl #0x5000, r2
	mtpr #0, #201
	incl r11
	cmpl r11, #16
	blss inner
	sobgtr r10, outer
	halt
	.align 4
clkh:	mtpr #0xC1, #24      ; acknowledge, keep run+IE
	rei
	.align 4
dskh:	rei
	.align 4
mckh:	incl r9              ; count machine checks
	movl (sp)+, r7       ; parameter byte count
	addl2 r7, sp         ; discard the parameters
	rei
`

// Bystander: 160 rounds of compute, each ending in a console dot, then
// a bang. Console output, consumed CPU time and halt time are the
// isolation yardsticks; the workload is long enough that the victim's
// bounded fault-handling overhead stays under the 10% wall-clock
// tolerance.
const bystanderSrc = `
start:	movl #160, r10
outer:	movl #600, r11
inner:	sobgtr r11, inner
	movl #1, r0          ; KCALL console put
	movl #46, r1         ; '.'
	mtpr #0, #201
	sobgtr r10, outer
	movl #1, r0
	movl #33, r1         ; '!'
	mtpr #0, #201
	halt
`

// Runaway: spins forever with no progress event — watchdog bait.
const runawaySrc = `
start:	incl r5
	brb start
`

// Campaign guest layout (VM-physical), mirroring the core tests.
const (
	cgSPT    = 0x0200
	cgCode   = 0x1000
	cgSPTLen = 64
	cgMem    = 64 * 1024
)

const vmHaltNormal = "HALT executed in VM kernel mode"

// campaignImage assembles src into a pre-mapped guest image.
func campaignImage(src string, vectors map[vax.Vector]string) ([]byte, uint32, error) {
	prog, err := asm.Assemble(src, vax.SystemBase+cgCode)
	if err != nil {
		return nil, 0, err
	}
	img := make([]byte, cgMem)
	for i := uint32(0); i < cgSPTLen; i++ {
		pte := vax.NewPTE(true, vax.ProtUW, true, i)
		binary.LittleEndian.PutUint32(img[cgSPT+4*i:], uint32(pte))
	}
	copy(img[cgCode:], prog.Code)
	for vec, label := range vectors {
		binary.LittleEndian.PutUint32(img[uint32(vec):], prog.MustSymbol(label))
	}
	return img, prog.MustSymbol("start"), nil
}

// campaignMachine builds the three-VM machine, optionally armed with a
// fault plan, and runs it to completion.
func campaignMachine(inj *fault.Injector) (k *core.VMM, vms []*core.VM, err error) {
	// newVMM pins FillBatch 1, keeping the campaign on the paper's
	// demand-fill design point so its output stays byte-identical
	// across the batching knob.
	k = newVMMExact(16<<20, core.Config{Watchdog: 48, SelfCheckInterval: 8})
	if inj != nil {
		k.AttachFaults(inj)
	}
	guests := []struct {
		name    string
		src     string
		vectors map[vax.Vector]string
	}{
		{"victim", victimSrc, map[vax.Vector]string{
			vax.VecMachineCheck: "mckh",
			vax.VecClock:        "clkh",
			vax.VecDisk:         "dskh",
		}},
		{"bystander", bystanderSrc, nil},
		{"runaway", runawaySrc, nil},
	}
	for _, g := range guests {
		img, start, gerr := campaignImage(g.src, g.vectors)
		if gerr != nil {
			return nil, nil, fmt.Errorf("%s: %w", g.name, gerr)
		}
		vm, verr := k.CreateVM(core.VMConfig{
			Name: g.name, MemBytes: cgMem, Image: img, StartPC: start,
			PreMapped: true, SBR: cgSPT, SLR: cgSPTLen, SCBB: 0,
		})
		if verr != nil {
			return nil, nil, fmt.Errorf("%s: %w", g.name, verr)
		}
		vm.SPs[vax.Kernel] = vax.SystemBase + 0x8000
		vm.ISP = vax.SystemBase + 0x8800
		vms = append(vms, vm)
	}
	k.Run(8_000_000)
	return k, vms, nil
}

// campaignSeedRun runs one seed and returns the violated invariants
// (empty = the seed passed). A Go panic counts as a violation rather
// than killing the campaign.
func campaignSeedRun(seed int64, baseOut string, baseCycles, baseUsed uint64) (inj *fault.Injector, vms []*core.VM, violations []string) {
	defer func() {
		if r := recover(); r != nil {
			violations = append(violations, fmt.Sprintf("Go panic: %v", r))
		}
	}()
	inj = fault.New(seed, fault.Config{
		TargetVM:          0, // the victim
		TransientDiskRate: 0.10,
		TransientBurst:    2,
		PermanentDiskRate: 0.04,
		BusWindows:        2,
		BusWindowTicks:    3,
		BusBase:           0x4000,
		BusSpan:           0x2000,
		BusRangeBytes:     0x400,
		Storms:            1,
		StormTicks:        2,
		PTECorruptions:    3,
		Horizon:           40,
	})
	k, vms, err := campaignMachine(inj)
	if err != nil {
		return inj, vms, []string{err.Error()}
	}
	// Every check below reads Go-side state (halt reasons, console
	// transcripts, counters), so the machine's memory can go back to
	// the pool right away.
	k.Release()
	victim, bystander, runaway := vms[0], vms[1], vms[2]

	bad := func(format string, args ...interface{}) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}
	if h, msg := victim.Halted(); !h || msg != vmHaltNormal {
		bad("victim did not complete normally: halted=%t %q", h, msg)
	}
	if h, msg := bystander.Halted(); !h || msg != vmHaltNormal {
		bad("bystander did not complete normally: halted=%t %q", h, msg)
	}
	if h, msg := runaway.Halted(); !h || !strings.Contains(msg, "watchdog") {
		bad("runaway not watchdog-halted: halted=%t %q", h, msg)
	}
	if runaway.Stats.WatchdogTrips < 1 {
		bad("runaway has no watchdog trip")
	}
	if out := bystander.ConsoleOutput(); out != baseOut {
		bad("bystander console changed: %q vs baseline %q", out, baseOut)
	}
	if c := bystander.HaltCycles(); c > baseCycles+baseCycles/10 {
		bad("bystander finished at cycle %d, beyond 110%% of fault-free %d", c, baseCycles)
	}
	if u := bystander.CyclesUsed(); u > baseUsed+baseUsed/10 {
		bad("bystander consumed %d cycles, beyond 110%% of fault-free %d", u, baseUsed)
	}
	s := inj.Stats
	if victim.Stats.MachineChecks != s.PermanentErrors+s.BusErrors {
		bad("victim machine checks %d != injected permanent %d + bus %d",
			victim.Stats.MachineChecks, s.PermanentErrors, s.BusErrors)
	}
	if victim.Stats.DiskRetries != s.TransientFails {
		bad("victim disk retries %d != injected transient failures %d",
			victim.Stats.DiskRetries, s.TransientFails)
	}
	if victim.Stats.SelfCheckRepairs < s.PTECorruptions {
		bad("victim self-check repairs %d < applied corruptions %d",
			victim.Stats.SelfCheckRepairs, s.PTECorruptions)
	}
	for _, vm := range []*core.VM{bystander, runaway} {
		if vm.Stats.MachineChecks != 0 || vm.Stats.DiskRetries != 0 {
			bad("%s saw injected faults: %d machine checks, %d retries",
				vm.Name(), vm.Stats.MachineChecks, vm.Stats.DiskRetries)
		}
	}
	return inj, vms, violations
}

// DefaultCampaignSeeds is the fixed seed set the CI smoke run uses.
func DefaultCampaignSeeds(n int, base int64) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}

// FaultCampaign runs the multi-seed fault-injection campaign and
// reports per-seed injection counts and the isolation verdict.
func FaultCampaign(seeds []int64) (*Result, error) {
	r := &Result{
		ID:    "E10",
		Title: "Fault-injection campaign: isolation under injected faults",
		Headers: []string{"seed", "mchecks", "retries", "repairs", "storm",
			"bystander cycles", "verdict"},
		PaperClaim: "one misbehaving VM must never degrade its neighbors (Section 5 fault containment)",
	}

	// Fault-free baseline: what the bystander does when the victim's
	// faults never happen (the run is seed-independent).
	kBase, base, err := campaignMachine(nil)
	if err != nil {
		return nil, err
	}
	kBase.Release()
	if h, msg := base[1].Halted(); !h || msg != vmHaltNormal {
		return nil, fmt.Errorf("baseline bystander did not complete: %q", msg)
	}
	baseOut := base[1].ConsoleOutput()
	baseCycles := base[1].HaltCycles()
	baseUsed := base[1].CyclesUsed()
	r.addNote("baseline: bystander prints %d chars, consumes %d cycles, halts at cycle %d",
		len(baseOut), baseUsed, baseCycles)

	failed := 0
	for _, seed := range seeds {
		inj, vms, violations := campaignSeedRun(seed, baseOut, baseCycles, baseUsed)
		verdict := "pass"
		if len(violations) > 0 {
			verdict = "FAIL"
			failed++
		}
		s := inj.Stats
		cycles := uint64(0)
		if len(vms) == 3 {
			cycles = vms[1].HaltCycles()
		}
		r.addRow(fmt.Sprint(seed),
			fmt.Sprint(s.PermanentErrors+s.BusErrors),
			fmt.Sprint(s.TransientFails),
			fmt.Sprint(s.PTECorruptions),
			fmt.Sprint(s.StormDeliveries),
			fmt.Sprint(cycles),
			verdict)
		for _, v := range violations {
			r.addNote("seed %d: %s", seed, v)
		}
	}
	r.Match = failed == 0
	r.Measured = fmt.Sprintf(
		"%d/%d seeds hold the invariant: faults surface as machine checks or retried I/O, watchdog halts only the runaway, bystander unchanged within 10%%",
		len(seeds)-failed, len(seeds))
	return r, nil
}

// E10FaultCampaign is the registry entry point (8 fixed seeds).
func E10FaultCampaign() (*Result, error) {
	return FaultCampaign(DefaultCampaignSeeds(8, 1))
}
