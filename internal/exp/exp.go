// Package exp is the experiment harness: one function per table, figure
// and quantitative claim in the paper, each of which actually runs the
// simulated machines and reports what it observed alongside what the
// paper reports. The cmd/experiments binary and the repository's
// bench_test.go both drive this package; EXPERIMENTS.md records its
// output.
package exp

import (
	"fmt"
	"strings"
)

// Result is one regenerated table, figure or measurement.
type Result struct {
	ID      string // e.g. "T1", "F2", "E4"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string

	// PaperClaim and Measured summarize the quantitative comparison;
	// Match reports whether the measured shape holds.
	PaperClaim string
	Measured   string
	Match      bool
}

func (r *Result) addRow(cells ...string) { r.Rows = append(r.Rows, cells) }

func (r *Result) addNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Format renders the result as aligned text.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Headers) > 0 {
		widths := make([]int, len(r.Headers))
		for i, h := range r.Headers {
			widths[i] = len(h)
		}
		for _, row := range r.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		line := func(cells []string) {
			for i, c := range cells {
				if i < len(widths) {
					fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
				} else {
					b.WriteString(c)
				}
			}
			b.WriteByte('\n')
		}
		line(r.Headers)
		for i, w := range widths {
			b.WriteString(strings.Repeat("-", w))
			if i < len(widths)-1 {
				b.WriteString("  ")
			}
		}
		b.WriteByte('\n')
		for _, row := range r.Rows {
			line(row)
		}
	} else {
		for _, row := range r.Rows {
			b.WriteString(strings.Join(row, " "))
			b.WriteByte('\n')
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if r.PaperClaim != "" {
		status := "HOLDS"
		if !r.Match {
			status = "DOES NOT HOLD"
		}
		fmt.Fprintf(&b, "paper: %s\nmeasured: %s\nshape: %s\n", r.PaperClaim, r.Measured, status)
	}
	return b.String()
}

// Spec describes one runnable experiment.
type Spec struct {
	ID    string
	Title string
	Run   func() (*Result, error)
}

// All returns every experiment in paper order.
func All() []Spec {
	return []Spec{
		{"T1", "Sensitive data touched by unprivileged instructions (Table 1)", Table1},
		{"T2", "PROBE versus PROBEVM (Table 2)", Table2},
		{"T3", "Solutions for sensitive data (Table 3)", Table3},
		{"T4", "Summary of VAX architecture changes (Table 4)", Table4},
		{"F1", "VAX virtual address space (Figure 1)", Figure1},
		{"F2", "VM and VMM shared address space (Figure 2)", Figure2},
		{"F3", "Ring compression (Figure 3)", Figure3},
		{"E1", "Mixed workload: VM performance vs bare machine (Section 7.3)", E1MixedWorkload},
		{"E2", "Multi-process shadow tables cut fill faults (Section 7.2)", E2ShadowCache},
		{"E3", "Shadow fills between context switches; prefetch ablation (Section 4.3.1)", E3FaultsPerSwitch},
		{"E4", "MTPR-to-IPL emulation cost (Section 7.3)", E4MtprIPL},
		{"E5", "Start-I/O versus emulated memory-mapped I/O (Section 4.4.3)", E5IOTraps},
		{"E6", "Efficiency: unprivileged code runs at native speed (Section 2)", E6Efficiency},
		{"E7", "Ring virtualization schemes compared (Section 7.1)", E7RingSchemes},
		{"E8", "Modify fault vs read-only shadow (Section 4.4.2 ablation)", E8ModifyFaultAblation},
		{"E9", "Cost-model sensitivity (methodology check)", E9CostSensitivity},
		{"E10", "Fault-injection campaign: isolation under injected faults", E10FaultCampaign},
		{"E11", "Recovery campaign: checkpointed VMs survive injected deaths", E11RecoveryCampaign},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Spec, bool) {
	for _, s := range All() {
		if strings.EqualFold(s.ID, id) {
			return s, true
		}
	}
	return Spec{}, false
}
