package fleet

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/asm"
	"repro/internal/vax"
)

// Built-in guest workloads. Fleet guests are the tiny pre-mapped
// kernel images the experiment harness uses (identity SPT, code at a
// fixed offset, 64 KB of VM memory): big enough to exercise shadow
// tables, COW breaks and the console, small enough that thousands of
// API-driven lifecycles stay cheap.

// Guest layout (VM-physical), mirroring internal/exp's campaign guests.
const (
	guestSPT    = 0x0200
	guestCode   = 0x1000
	guestSPTLen = 64
	guestMem    = 64 * 1024

	guestKSP = vax.SystemBase + 0x8000
	guestISP = vax.SystemBase + 0x8800
)

// stampSrc is the golden-image workload: each round stores a counter
// (so every clone privatizes the data page on its first iteration —
// real COW traffic) and then WAITs. It never halts, which keeps it a
// legal Clone source for the whole life of the fleet.
const stampSrc = `
start:	clrl r0
loop:	incl r0
	movl r0, @#0x80004000
	wait
	brb loop
`

// computeSrc is a finite busy guest: a counted add loop that stores
// its result and halts on its own.
const computeSrc = `
start:	clrl r0
	movl #50000, r1
loop:	addl2 #7, r0
	sobgtr r1, loop
	movl r0, @#0x80006000
	halt
`

// helloSrc prints over the virtual console (MTPR to TXDB), then idles
// forever — the console-streaming test guest.
const helloSrc = `
start:	mtpr #104, #35
	mtpr #101, #35
	mtpr #108, #35
	mtpr #108, #35
	mtpr #111, #35
	mtpr #10, #35
loop:	wait
	brb loop
`

var guestSources = map[string]string{
	"stamp":   stampSrc,
	"compute": computeSrc,
	"hello":   helloSrc,
}

// Workloads lists the built-in guest workload names.
func Workloads() []string { return []string{"stamp", "compute", "hello"} }

// guestImage assembles a built-in workload into a pre-mapped 64 KB
// image, returning the image and the start PC. Results are memoized
// under their own lock (managers on different machines share the
// cache): the soak driver stamps thousands of guests from the same
// few images.
var (
	guestMu    sync.Mutex
	guestCache = map[string]guest{}
)

type guest struct {
	image []byte
	start uint32
}

func guestImage(workload string) (guest, error) {
	guestMu.Lock()
	defer guestMu.Unlock()
	if g, ok := guestCache[workload]; ok {
		return g, nil
	}
	src, ok := guestSources[workload]
	if !ok {
		return guest{}, BadRequest("unknown workload %q (have %v)", workload, Workloads())
	}
	prog, err := asm.Assemble(src, vax.SystemBase+guestCode)
	if err != nil {
		return guest{}, fmt.Errorf("fleet: assembling %s guest: %w", workload, err)
	}
	img := make([]byte, guestMem)
	for i := uint32(0); i < guestSPTLen; i++ {
		pte := vax.NewPTE(true, vax.ProtUW, true, i)
		binary.LittleEndian.PutUint32(img[guestSPT+4*i:], uint32(pte))
	}
	copy(img[guestCode:], prog.Code)
	g := guest{image: img, start: prog.MustSymbol("start")}
	guestCache[workload] = g
	return g, nil
}
