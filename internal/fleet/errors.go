// Package fleet is the multi-tenant control plane over one core.VMM:
// it owns VM lifecycle (create, clone-from-golden, halt, snapshot,
// restore, destroy), per-tenant quotas, console streaming cursors and
// a bounded snapshot store, and exposes it all as a programmatic API
// the monitor's command registry (and through it vaxmon's REPL and the
// HTTP surface) dispatches into. The manager holds no lock of its own:
// every entry point — REPL, HTTP handler, the drive loop — serializes
// on one machine mutex, exactly like the metrics exporter always has.
package fleet

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
)

// Error is the control plane's typed failure: a stable machine-
// readable code plus the HTTP status the API surface maps it to. Both
// surfaces show the code — the REPL prints Error() verbatim, the HTTP
// layer sends {"error": Code, "message": Msg} with Status — so a
// quota breach is recognizably the same failure everywhere.
type Error struct {
	Code   string
	Status int
	Msg    string
}

func (e *Error) Error() string { return e.Code + ": " + e.Msg }

func errf(code string, status int, format string, args ...any) *Error {
	return &Error{Code: code, Status: status, Msg: fmt.Sprintf(format, args...)}
}

// NotFound reports a missing VM, snapshot or tenant (404).
func NotFound(format string, args ...any) *Error {
	return errf("not_found", http.StatusNotFound, format, args...)
}

// Conflict reports an operation against a VM in the wrong state, such
// as halting a halted VM or snapshotting a dead one (409).
func Conflict(format string, args ...any) *Error {
	return errf("conflict", http.StatusConflict, format, args...)
}

// BadRequest reports malformed arguments (400).
func BadRequest(format string, args ...any) *Error {
	return errf("bad_request", http.StatusBadRequest, format, args...)
}

// QuotaExceeded reports a tenant (or whole-monitor) admission limit
// breach (429).
func QuotaExceeded(format string, args ...any) *Error {
	return errf("quota_exceeded", http.StatusTooManyRequests, format, args...)
}

// BudgetExhausted reports a tenant whose cycle budget ran dry: its VMs
// were halted and further admission is refused (403).
func BudgetExhausted(format string, args ...any) *Error {
	return errf("cycle_budget_exhausted", http.StatusForbidden, format, args...)
}

// wrapCore lifts core-layer admission failures into typed API errors;
// anything unrecognized passes through for the 500 path.
func wrapCore(err error) error {
	if err == nil {
		return nil
	}
	var qe *core.QuotaError
	if errors.As(err, &qe) {
		return QuotaExceeded("monitor %s", qe.Error())
	}
	return err
}

// HTTPStatus maps any error to the status and code the API surface
// reports. Unrecognized errors are internal (500).
func HTTPStatus(err error) (int, string) {
	var e *Error
	if errors.As(err, &e) {
		return e.Status, e.Code
	}
	var qe *core.QuotaError
	if errors.As(err, &qe) {
		return http.StatusTooManyRequests, "quota_exceeded"
	}
	return http.StatusInternalServerError, "internal"
}
