package fleet

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/vax"
)

func newTestManager(t *testing.T) (*Manager, *core.VMM) {
	t.Helper()
	k := core.New(32<<20, core.Config{})
	return NewManager(k, Config{}), k
}

// drive runs quanta until cond holds (or the step budget drains).
func drive(t *testing.T, m *Manager, cond func() bool) {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		if cond() {
			return
		}
		if !m.DriveOnce() {
			break
		}
	}
	if !cond() {
		t.Fatal("condition never reached while driving the fleet")
	}
}

func code(t *testing.T, err error) string {
	t.Helper()
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("error %v (%T) is not a typed fleet error", err, err)
	}
	return fe.Code
}

func TestLifecycleHappyPath(t *testing.T) {
	m, k := newTestManager(t)

	golden, err := m.Create(Spec{Name: "golden", Workload: "stamp"})
	if err != nil {
		t.Fatal(err)
	}
	if golden.State != "running" || golden.Tenant != DefaultTenant {
		t.Fatalf("golden = %+v", golden)
	}

	// Let the golden image execute a stamp round before cloning.
	drive(t, m, func() bool { return golden.ID >= 0 && m.mustStat(t, golden.ID).Cycles > 0 })

	clone, err := m.CloneVM(golden.ID, "c1", "tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	if clone.Tenant != "tenant-a" {
		t.Fatalf("clone tenant = %q", clone.Tenant)
	}
	drive(t, m, func() bool { return m.mustStat(t, clone.ID).Cycles > 0 })

	snap, err := m.Snapshot(clone.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Bytes == 0 || snap.Tenant != "tenant-a" {
		t.Fatalf("snapshot = %+v", snap)
	}

	if _, err := m.Halt(clone.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Halt(clone.ID); code(t, err) != "conflict" {
		t.Fatalf("double halt error = %v", err)
	}

	restored, err := m.Restore(snap.ID, "revived")
	if err != nil {
		t.Fatal(err)
	}
	if restored.Tenant != "tenant-a" {
		t.Fatalf("restored tenant = %q (charged to snapshot's tenant)", restored.Tenant)
	}

	for _, id := range []int{clone.ID, restored.ID} {
		info, err := m.Destroy(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != "destroyed" {
			t.Fatalf("destroy state = %q", info.State)
		}
	}
	if len(k.VMs()) != 1 {
		t.Fatalf("%d VMs left, want the golden image only", len(k.VMs()))
	}
	if _, err := m.Stat(clone.ID); code(t, err) != "not_found" {
		t.Fatalf("stat of destroyed vm = %v", err)
	}
}

func (m *Manager) mustStat(t *testing.T, id int) VMInfo {
	t.Helper()
	info, err := m.Stat(id)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestDestroyRecyclesPages(t *testing.T) {
	m, k := newTestManager(t)
	golden, err := m.Create(Spec{Workload: "stamp"})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, m, func() bool { return m.mustStat(t, golden.ID).Cycles > 0 })

	// First lifecycle carves pages (shadow runs, COW frames); repeat
	// lifecycles must then run entirely from the recycled-run pool.
	cycle := func() {
		t.Helper()
		c, err := m.CloneVM(golden.ID, "", "")
		if err != nil {
			t.Fatal(err)
		}
		drive(t, m, func() bool { return m.mustStat(t, c.ID).Cycles > 0 })
		if _, err := m.Destroy(c.ID); err != nil {
			t.Fatal(err)
		}
	}
	cycle()
	baseline := k.FreePages()
	for i := 0; i < 5; i++ {
		cycle()
	}
	if got := k.FreePages(); got != baseline {
		t.Fatalf("free pages %d after repeat lifecycles, want baseline %d (page leak)", got, baseline)
	}
}

func TestQuotaAdmission(t *testing.T) {
	m, _ := newTestManager(t)
	m.SetQuota("small", Quota{MaxVMs: 1})

	if _, err := m.Create(Spec{Workload: "stamp", Tenant: "small"}); err != nil {
		t.Fatal(err)
	}
	_, err := m.Create(Spec{Workload: "stamp", Tenant: "small"})
	if code(t, err) != "quota_exceeded" {
		t.Fatalf("over-quota create = %v", err)
	}
	// The neighbor tenant is unaffected by small's breach.
	if _, err := m.Create(Spec{Workload: "stamp", Tenant: "big"}); err != nil {
		t.Fatalf("neighbor create failed: %v", err)
	}

	// A page budget below one guest refuses immediately.
	m.SetQuota("tiny", Quota{MaxPages: guestMem/vax.PageSize - 1})
	if _, err := m.Create(Spec{Workload: "stamp", Tenant: "tiny"}); code(t, err) != "quota_exceeded" {
		t.Fatalf("page-budget create = %v", err)
	}
}

func TestCycleBudgetEnforcement(t *testing.T) {
	m, _ := newTestManager(t)
	m.SetQuota("metered", Quota{MaxCycles: 1})
	vm, err := m.Create(Spec{Workload: "stamp", Tenant: "metered"})
	if err != nil {
		t.Fatal(err)
	}
	other, err := m.Create(Spec{Workload: "stamp", Tenant: "unmetered"})
	if err != nil {
		t.Fatal(err)
	}

	drive(t, m, func() bool { return m.mustStat(t, vm.ID).State == "halted" })
	info := m.mustStat(t, vm.ID)
	if !strings.Contains(info.HaltMsg, "cycle budget") {
		t.Fatalf("halt msg = %q", info.HaltMsg)
	}
	if got := m.mustStat(t, other.ID); got.State != "running" {
		t.Fatalf("neighbor state = %q, want running", got.State)
	}

	// Admission is refused while exhausted, and re-armed by a raise.
	if _, err := m.Create(Spec{Workload: "stamp", Tenant: "metered"}); code(t, err) != "cycle_budget_exhausted" {
		t.Fatalf("exhausted create = %v", err)
	}
	m.SetQuota("metered", Quota{})
	if _, err := m.Create(Spec{Workload: "stamp", Tenant: "metered"}); err != nil {
		t.Fatalf("create after raise failed: %v", err)
	}
}

// TestConsoleResumeAfterRestore pins the observed-output boundary: a
// restored VM's console stream resumes where the API stopped
// streaming, instead of replaying bytes the client already saw.
func TestConsoleResumeAfterRestore(t *testing.T) {
	m, _ := newTestManager(t)
	vm, err := m.Create(Spec{Workload: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, m, func() bool { return m.mustStat(t, vm.ID).ConsoleLen >= 6 })

	chunk, err := m.ConsoleRead(vm.ID, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chunk.Data, "hello") {
		t.Fatalf("console = %q", chunk.Data)
	}

	snap, err := m.Snapshot(vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := m.Restore(snap.ID, "revived")
	if err != nil {
		t.Fatal(err)
	}
	if m.mustStat(t, restored.ID).ConsoleLen < 6 {
		t.Fatal("restored VM lost its console backlog")
	}
	again, err := m.ConsoleRead(restored.ID, -1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Data != "" {
		t.Fatalf("restored stream replayed %q; cursor must resume at the observed boundary", again.Data)
	}
	// An explicit offset still reaches the backlog.
	full, err := m.ConsoleRead(restored.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(full.Data, "hello") {
		t.Fatalf("explicit-offset read = %q", full.Data)
	}
}

func TestSnapshotEviction(t *testing.T) {
	m, _ := newTestManager(t)
	m.cfg.SnapshotCap = 2
	vm, err := m.Create(Spec{Workload: "stamp"})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, m, func() bool { return m.mustStat(t, vm.ID).Cycles > 0 })

	var ids []string
	for i := 0; i < 3; i++ {
		s, err := m.Snapshot(vm.ID)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	if m.SnapshotByID(ids[0]) != nil {
		t.Fatalf("snapshot %s not evicted at cap 2", ids[0])
	}
	if _, err := m.Restore(ids[0], ""); code(t, err) != "not_found" {
		t.Fatalf("restore of evicted snapshot = %v", err)
	}
	if m.SnapshotByID(ids[2]) == nil {
		t.Fatal("newest snapshot missing")
	}
}

func TestUnknownWorkload(t *testing.T) {
	m, _ := newTestManager(t)
	if _, err := m.Create(Spec{Workload: "nope"}); code(t, err) != "bad_request" {
		t.Fatalf("unknown workload = %v", err)
	}
}

func TestCloneRejectsHaltedSource(t *testing.T) {
	m, _ := newTestManager(t)
	vm, err := m.Create(Spec{Workload: "stamp"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Halt(vm.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CloneVM(vm.ID, "", ""); code(t, err) != "conflict" {
		t.Fatalf("clone of halted source = %v", err)
	}
	if _, err := m.CloneVM(99, "", ""); code(t, err) != "not_found" {
		t.Fatalf("clone of missing source = %v", err)
	}
}

func TestSummaryAndAdoption(t *testing.T) {
	m, k := newTestManager(t)
	if _, err := m.Create(Spec{Workload: "stamp", Tenant: "a"}); err != nil {
		t.Fatal(err)
	}
	// A VM created behind the manager's back is adopted at Summary time.
	g, err := guestImage("compute")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateVM(core.VMConfig{
		Name: "stray", MemBytes: guestMem, Image: g.image,
		StartPC: g.start, PreMapped: true, SBR: guestSPT, SLR: guestSPTLen,
	}); err != nil {
		t.Fatal(err)
	}
	sum := m.Summary()
	if len(sum.VMs) != 2 || sum.Live != 2 {
		t.Fatalf("summary = %d VMs / %d live, want 2/2", len(sum.VMs), sum.Live)
	}
	found := false
	for _, v := range sum.VMs {
		if v.Name == "stray" && v.Tenant == DefaultTenant {
			found = true
		}
	}
	if !found {
		t.Fatal("stray VM not adopted under the default tenant")
	}
	if sum.NominalPages != 2*guestMem/vax.PageSize {
		t.Fatalf("nominal pages = %d", sum.NominalPages)
	}
}

func TestWrapCoreQuota(t *testing.T) {
	k := core.New(32<<20, core.Config{}, core.WithQuota(core.Quota{MaxVMs: 1}))
	m := NewManager(k, Config{})
	if _, err := m.Create(Spec{Workload: "stamp"}); err != nil {
		t.Fatal(err)
	}
	// The monitor-wide backstop surfaces as the same typed 429 the
	// tenant quotas use.
	_, err := m.Create(Spec{Workload: "stamp"})
	if code(t, err) != "quota_exceeded" {
		t.Fatalf("monitor quota breach = %v", err)
	}
	if !strings.Contains(err.Error(), "monitor") {
		t.Fatalf("err = %v, want the monitor-level wording", err)
	}
}
