package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/vax"
)

// Quota is a per-tenant admission budget. Zero values disable each
// check. Pages ride the COW accounting of the monitor (nominal pages:
// what the tenant's VMs are configured with, shared or not); cycles
// ride the per-VM CyclesUsed machinery the watchdog uses.
type Quota struct {
	MaxVMs    int    `json:"max_vms,omitempty"`
	MaxPages  uint32 `json:"max_pages,omitempty"`
	MaxCycles uint64 `json:"max_cycles,omitempty"`
}

// Config tunes a Manager.
type Config struct {
	// DefaultQuota applies to tenants without an explicit SetQuota.
	DefaultQuota Quota
	// SnapshotCap bounds the in-memory snapshot store; the oldest
	// snapshot is evicted beyond it (0 selects 64). The store must be
	// bounded or a snapshot-heavy soak would read as a leak.
	SnapshotCap int
	// Quantum is the drive loop's Run budget per lock acquisition, in
	// processor steps (0 selects 50000). Smaller quanta give API calls
	// lower latency; larger ones less lock churn.
	Quantum uint64
}

// DefaultTenant is the tenant of unlabeled requests and adopted VMs.
const DefaultTenant = "default"

// Manager is the fleet control plane over one monitor. Its methods
// touch the machine and are NOT internally locked: the caller — the
// command registry under the REPL/HTTP mutex, or the drive loop —
// serializes them, the same single-writer discipline the machine has
// always had.
type Manager struct {
	k   *core.VMM
	cfg Config

	meta    map[int]*vmMeta
	tenants map[string]*tenant

	snaps   map[string]*snapshotRec
	snapIDs []string // FIFO eviction order
	snapSeq int

	stop chan struct{}
	done chan struct{}
	// waiters counts API callers queued for the drive mutex; the drive
	// loop yields instead of re-locking while any are waiting, so an
	// API call's latency is bounded by one quantum, not lock fairness
	// (a bare mutex lets the relocking drive loop barge for tens of
	// milliseconds).
	waiters atomic.Int32
}

type vmMeta struct {
	vm       *core.VM
	tenant   string
	workload string
	// consOff is the console-output byte boundary already streamed to
	// the API consumer; snapshots record it so a restored VM's stream
	// resumes here instead of replaying bytes the client already saw.
	consOff int
}

type tenant struct {
	name      string
	quota     Quota
	usedCyc   uint64 // cycles banked from destroyed VMs
	exhausted bool   // cycle budget ran dry: admission refused
}

type snapshotRec struct {
	id       string
	tenant   string
	workload string
	pages    uint32
	image    []byte
	observed int // console bytes streamed at snapshot time
}

// NewManager wraps an existing monitor. VMs already created (vaxmon's
// booted MiniOS, harness fleets) are adopted under the default tenant.
func NewManager(k *core.VMM, cfg Config) *Manager {
	if cfg.SnapshotCap <= 0 {
		cfg.SnapshotCap = 64
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 50_000
	}
	m := &Manager{
		k:       k,
		cfg:     cfg,
		meta:    make(map[int]*vmMeta),
		tenants: make(map[string]*tenant),
		snaps:   make(map[string]*snapshotRec),
	}
	for _, vm := range k.VMs() {
		m.meta[vm.ID] = &vmMeta{vm: vm, tenant: DefaultTenant}
	}
	return m
}

// Monitor returns the wrapped core.VMM.
func (m *Manager) Monitor() *core.VMM { return m.k }

// tenantFor returns (creating on first use) the tenant record.
func (m *Manager) tenantFor(name string) *tenant {
	if name == "" {
		name = DefaultTenant
	}
	t, ok := m.tenants[name]
	if !ok {
		t = &tenant{name: name, quota: m.cfg.DefaultQuota}
		m.tenants[name] = t
	}
	return t
}

// SetQuota installs a tenant's admission budget (replacing the
// default) and re-arms a tenant that was exhausted under a smaller
// cycle budget.
func (m *Manager) SetQuota(name string, q Quota) {
	t := m.tenantFor(name)
	t.quota = q
	if q.MaxCycles == 0 || m.tenantCycles(t) <= q.MaxCycles {
		t.exhausted = false
	}
}

// tenantCycles is a tenant's lifetime cycle consumption: banked cycles
// of destroyed VMs plus the live accounting of every current VM.
func (m *Manager) tenantCycles(t *tenant) uint64 {
	total := t.usedCyc
	for _, mt := range m.meta {
		if mt.tenant == t.name {
			total += mt.vm.CyclesUsed()
		}
	}
	return total
}

func (m *Manager) tenantVMs(name string) (live int, pages uint32) {
	for _, mt := range m.meta {
		if mt.tenant != name {
			continue
		}
		pages += mt.vm.MemSize / vax.PageSize
		if halted, _ := mt.vm.Halted(); !halted {
			live++
		}
	}
	return live, pages
}

// admit applies the tenant's quota to adding one VM of addPages pages.
func (m *Manager) admit(t *tenant, addPages uint32) error {
	if t.exhausted {
		return BudgetExhausted("tenant %s cycle budget %d exhausted", t.name, t.quota.MaxCycles)
	}
	live, pages := m.tenantVMs(t.name)
	if q := t.quota.MaxVMs; q > 0 && live+1 > q {
		return QuotaExceeded("tenant %s vm limit %d reached", t.name, q)
	}
	if q := t.quota.MaxPages; q > 0 && pages+addPages > q {
		return QuotaExceeded("tenant %s page budget %d exceeded (holds %d, wants %d more)",
			t.name, q, pages, addPages)
	}
	return nil
}

// Spec describes a VM to create.
type Spec struct {
	Name     string `json:"name"`
	Workload string `json:"workload"` // stamp (default), compute, hello
	Tenant   string `json:"tenant"`
}

// Create builds a new VM from a built-in guest workload.
func (m *Manager) Create(spec Spec) (VMInfo, error) {
	if spec.Workload == "" {
		spec.Workload = "stamp"
	}
	t := m.tenantFor(spec.Tenant)
	g, err := guestImage(spec.Workload)
	if err != nil {
		return VMInfo{}, err
	}
	if err := m.admit(t, guestMem/vax.PageSize); err != nil {
		return VMInfo{}, err
	}
	vm, err := m.k.CreateVM(core.VMConfig{
		Name: spec.Name, MemBytes: guestMem, Image: g.image,
		StartPC: g.start, PreMapped: true, SBR: guestSPT, SLR: guestSPTLen,
	})
	if err != nil {
		return VMInfo{}, wrapCore(err)
	}
	vm.SPs[vax.Kernel] = guestKSP
	vm.ISP = guestISP
	m.meta[vm.ID] = &vmMeta{vm: vm, tenant: t.name, workload: spec.Workload}
	return m.info(m.meta[vm.ID]), nil
}

// CloneVM stamps a COW clone of a live VM (the golden-image path).
func (m *Manager) CloneVM(srcID int, name, tenantName string) (VMInfo, error) {
	src, ok := m.meta[srcID]
	if !ok {
		return VMInfo{}, NotFound("no vm with id %d", srcID)
	}
	if tenantName == "" {
		tenantName = src.tenant
	}
	t := m.tenantFor(tenantName)
	if err := m.admit(t, src.vm.MemSize/vax.PageSize); err != nil {
		return VMInfo{}, err
	}
	if halted, msg := src.vm.Halted(); halted {
		return VMInfo{}, Conflict("vm %d is halted (%s); clone sources must be live", srcID, msg)
	}
	vm, err := m.k.Clone(src.vm, name)
	if err != nil {
		return VMInfo{}, wrapCore(err)
	}
	m.meta[vm.ID] = &vmMeta{vm: vm, tenant: t.name, workload: src.workload}
	return m.info(m.meta[vm.ID]), nil
}

// Halt powers a live VM off (fatal: no supervisor rollback).
func (m *Manager) Halt(id int) (VMInfo, error) {
	mt, ok := m.meta[id]
	if !ok {
		return VMInfo{}, NotFound("no vm with id %d", id)
	}
	if halted, msg := mt.vm.Halted(); halted {
		return VMInfo{}, Conflict("vm %d already halted (%s)", id, msg)
	}
	m.k.HaltVM(mt.vm, "halted by operator")
	return m.info(mt), nil
}

// SnapInfo describes a stored snapshot.
type SnapInfo struct {
	ID     string `json:"id"`
	VM     int    `json:"vm"`
	Tenant string `json:"tenant"`
	Bytes  int    `json:"bytes"`
}

// Snapshot captures a live VM into the bounded in-memory store (the
// checkpoint stream of internal/ckpt), recording the console bytes the
// API has already streamed so a restore resumes at that boundary.
func (m *Manager) Snapshot(id int) (SnapInfo, error) {
	mt, ok := m.meta[id]
	if !ok {
		return SnapInfo{}, NotFound("no vm with id %d", id)
	}
	if halted, msg := mt.vm.Halted(); halted {
		return SnapInfo{}, Conflict("vm %d is halted (%s); snapshot needs a live VM", id, msg)
	}
	img, err := m.k.Snapshot(mt.vm)
	if err != nil {
		return SnapInfo{}, Conflict("snapshot vm %d: %v", id, err)
	}
	observed := mt.consOff
	if n := len(mt.vm.ConsoleOutput()); observed > n {
		observed = n
	}
	rec := &snapshotRec{
		id:       fmt.Sprintf("s%d", m.snapSeq),
		tenant:   mt.tenant,
		workload: mt.workload,
		pages:    mt.vm.MemSize / vax.PageSize,
		image:    img,
		observed: observed,
	}
	m.snapSeq++
	m.snaps[rec.id] = rec
	m.snapIDs = append(m.snapIDs, rec.id)
	if len(m.snapIDs) > m.cfg.SnapshotCap {
		delete(m.snaps, m.snapIDs[0])
		m.snapIDs = m.snapIDs[1:]
	}
	return SnapInfo{ID: rec.id, VM: id, Tenant: rec.tenant, Bytes: len(img)}, nil
}

// SnapshotByID reports a stored snapshot (nil if unknown or evicted).
func (m *Manager) SnapshotByID(id string) *SnapInfo {
	rec, ok := m.snaps[id]
	if !ok {
		return nil
	}
	return &SnapInfo{ID: rec.id, Tenant: rec.tenant, VM: -1, Bytes: len(rec.image)}
}

// Restore builds a new VM from a stored snapshot, charged to the
// snapshot's tenant. The console stream cursor resumes at the
// observed-output boundary recorded by Snapshot, so the API does not
// replay bytes it already delivered.
func (m *Manager) Restore(snapID, name string) (VMInfo, error) {
	rec, ok := m.snaps[snapID]
	if !ok {
		return VMInfo{}, NotFound("no snapshot %q (evicted or never taken)", snapID)
	}
	t := m.tenantFor(rec.tenant)
	if err := m.admit(t, rec.pages); err != nil {
		return VMInfo{}, err
	}
	vm, err := m.k.Restore(name, rec.image)
	if err != nil {
		return VMInfo{}, wrapCore(err)
	}
	mt := &vmMeta{vm: vm, tenant: t.name, workload: rec.workload}
	mt.consOff = rec.observed
	if n := len(vm.ConsoleOutput()); mt.consOff > n {
		mt.consOff = n
	}
	m.meta[vm.ID] = mt
	return m.info(mt), nil
}

// Destroy unregisters a VM and recycles its pages, halting it first if
// it is still live. The tenant keeps the cycles the VM consumed — a
// destroy must not refill a cycle budget.
func (m *Manager) Destroy(id int) (VMInfo, error) {
	mt, ok := m.meta[id]
	if !ok {
		return VMInfo{}, NotFound("no vm with id %d", id)
	}
	if halted, _ := mt.vm.Halted(); !halted {
		m.k.HaltVM(mt.vm, "destroyed by operator")
	}
	info := m.info(mt)
	m.tenantFor(mt.tenant).usedCyc += mt.vm.CyclesUsed()
	if err := m.k.DestroyVM(mt.vm); err != nil {
		return VMInfo{}, Conflict("destroy vm %d: %v", id, err)
	}
	delete(m.meta, id)
	info.State = "destroyed"
	return info, nil
}

// Stat reports one VM.
func (m *Manager) Stat(id int) (VMInfo, error) {
	mt, ok := m.meta[id]
	if !ok {
		return VMInfo{}, NotFound("no vm with id %d", id)
	}
	return m.info(mt), nil
}

// ConsoleChunk is one incremental console read: Data covers [Off,
// Next) of the VM's output; pass Next back (or rely on the manager's
// cursor) to stream without replay.
type ConsoleChunk struct {
	VM   int    `json:"vm"`
	Off  int    `json:"off"`
	Next int    `json:"next"`
	Data string `json:"data"`
}

// ConsoleRead returns console output from byte offset off, or from the
// manager's streamed-output cursor when off is negative. The cursor
// only ever advances.
func (m *Manager) ConsoleRead(id, off int) (ConsoleChunk, error) {
	mt, ok := m.meta[id]
	if !ok {
		return ConsoleChunk{}, NotFound("no vm with id %d", id)
	}
	out := mt.vm.ConsoleOutput()
	if off < 0 {
		off = mt.consOff
	}
	if off > len(out) {
		off = len(out)
	}
	if len(out) > mt.consOff {
		mt.consOff = len(out)
	}
	return ConsoleChunk{VM: id, Off: off, Next: len(out), Data: out[off:]}, nil
}

// ConsoleWrite queues console input for the VM.
func (m *Manager) ConsoleWrite(id int, data string) error {
	mt, ok := m.meta[id]
	if !ok {
		return NotFound("no vm with id %d", id)
	}
	mt.vm.FeedConsole(data)
	return nil
}

// VMInfo is the JSON-facing description of one VM.
type VMInfo struct {
	ID            int    `json:"id"`
	Name          string `json:"name"`
	Tenant        string `json:"tenant"`
	Workload      string `json:"workload,omitempty"`
	State         string `json:"state"` // running | halted | destroyed
	HaltMsg       string `json:"halt_msg,omitempty"`
	MemKB         uint32 `json:"mem_kb"`
	Ticks         uint64 `json:"ticks"`
	Cycles        uint64 `json:"cycles"`
	ResidentPages uint64 `json:"resident_pages"`
	ConsoleLen    int    `json:"console_len"`
}

func (m *Manager) info(mt *vmMeta) VMInfo {
	vm := mt.vm
	info := VMInfo{
		ID: vm.ID, Name: vm.Name(), Tenant: mt.tenant, Workload: mt.workload,
		State: "running", MemKB: vm.MemSize / 1024, Ticks: vm.Ticks(),
		Cycles: vm.CyclesUsed(), ResidentPages: vm.ResidentPages(),
		ConsoleLen: len(vm.ConsoleOutput()),
	}
	if halted, msg := vm.Halted(); halted {
		info.State, info.HaltMsg = "halted", msg
	}
	return info
}

// TenantInfo is the JSON-facing description of one tenant.
type TenantInfo struct {
	Name      string `json:"name"`
	VMs       int    `json:"vms"`
	Pages     uint32 `json:"pages"`
	Cycles    uint64 `json:"cycles"`
	Quota     Quota  `json:"quota"`
	Exhausted bool   `json:"exhausted,omitempty"`
}

// FleetInfo is the GET /v1/fleet summary.
type FleetInfo struct {
	VMs          []VMInfo     `json:"vms"`
	Live         int          `json:"live"`
	FreePages    uint32       `json:"free_pages"`
	CarvedPages  uint32       `json:"carved_pages"`
	NominalPages uint32       `json:"nominal_pages"`
	Snapshots    int          `json:"snapshots"`
	Tenants      []TenantInfo `json:"tenants"`
}

// Summary reports the whole fleet.
func (m *Manager) Summary() FleetInfo {
	out := FleetInfo{
		FreePages:    m.k.FreePages(),
		CarvedPages:  m.k.CarvedPages(),
		NominalPages: m.k.NominalPages(),
		Snapshots:    len(m.snaps),
	}
	for _, vm := range m.k.VMs() {
		mt, ok := m.meta[vm.ID]
		if !ok {
			// Created behind the manager's back (harness code): adopt.
			mt = &vmMeta{vm: vm, tenant: DefaultTenant}
			m.meta[vm.ID] = mt
		}
		info := m.info(mt)
		if info.State == "running" {
			out.Live++
		}
		out.VMs = append(out.VMs, info)
	}
	for _, name := range sortedTenants(m.tenants) {
		t := m.tenants[name]
		live, pages := m.tenantVMs(t.name)
		out.Tenants = append(out.Tenants, TenantInfo{
			Name: t.name, VMs: live, Pages: pages,
			Cycles: m.tenantCycles(t), Quota: t.quota, Exhausted: t.exhausted,
		})
	}
	return out
}

func sortedTenants(ts map[string]*tenant) []string {
	names := make([]string, 0, len(ts))
	for n := range ts {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ { // insertion sort: tenant counts are tiny
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// enforce applies cycle budgets after a drive quantum: a tenant over
// its budget has every live VM halted and is marked exhausted, so its
// neighbors keep the processor — the fleet-level analogue of the
// per-VM watchdog.
func (m *Manager) enforce() {
	for _, t := range m.tenants {
		if t.quota.MaxCycles == 0 || t.exhausted {
			continue
		}
		if m.tenantCycles(t) <= t.quota.MaxCycles {
			continue
		}
		t.exhausted = true
		for _, mt := range m.meta {
			if mt.tenant != t.name {
				continue
			}
			if halted, _ := mt.vm.Halted(); !halted {
				m.k.HaltVM(mt.vm, fmt.Sprintf("tenant %s cycle budget %d exhausted",
					t.name, t.quota.MaxCycles))
			}
		}
	}
}

// DriveOnce runs one scheduling quantum if any VM is live, then
// enforces cycle budgets. Exported so tests (and a REPL without the
// background loop) can drive the fleet synchronously under their own
// lock. Reports whether the machine made progress.
func (m *Manager) DriveOnce() bool {
	live := 0
	for _, vm := range m.k.VMs() {
		if halted, _ := vm.Halted(); !halted {
			live++
		}
	}
	if live == 0 {
		return false
	}
	// The machine halts when every VM halts; a later create/clone
	// needs the processor back.
	if m.k.CPU.Halted {
		m.k.CPU.ClearHalt()
	}
	m.k.Run(m.cfg.Quantum)
	m.enforce()
	return true
}

// BeginAPI and EndAPI bracket an API caller's wait for the drive
// mutex: Begin before locking, End once the lock is held. While any
// caller is bracketed, the drive loop yields instead of re-locking.
func (m *Manager) BeginAPI() { m.waiters.Add(1) }

// EndAPI ends the bracket opened by BeginAPI.
func (m *Manager) EndAPI() { m.waiters.Add(-1) }

// Start launches the drive loop: one goroutine that repeatedly takes
// mu, runs a quantum, and releases it — the same mutex the REPL and
// HTTP handlers take around registry dispatch, so every API call
// lands between quanta. Idle fleets (no live VM) back off instead of
// spinning on the lock, and queued API callers (BeginAPI) always win
// the next quantum boundary.
func (m *Manager) Start(mu *sync.Mutex) {
	if m.stop != nil {
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for m.waiters.Load() > 0 {
				runtime.Gosched()
			}
			mu.Lock()
			ran := m.DriveOnce()
			mu.Unlock()
			if !ran {
				time.Sleep(time.Millisecond)
			} else {
				// A real sleep, not a Gosched: on a single-CPU host an
				// always-runnable drive goroutine keeps the scheduler
				// out of netpoll, and API requests sit unnoticed until
				// sysmon's ~20ms fallback poll. Parking between quanta
				// lets the network wake handlers immediately.
				time.Sleep(50 * time.Microsecond)
			}
		}
	}(m.stop, m.done)
}

// Stop halts the drive loop and waits for it to exit. Callers must not
// hold the drive mutex (the loop may be blocked on it).
func (m *Manager) Stop() {
	if m.stop == nil {
		return
	}
	close(m.stop)
	<-m.done
	m.stop, m.done = nil, nil
}
