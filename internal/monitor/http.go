package monitor

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"

	"repro/internal/fleet"
	"repro/internal/trace"
)

// The HTTP surface of the fleet control plane. Every /v1 route is a
// thin adapter: it parses the request into the same (command, args)
// shape the REPL produces and dispatches through the shared registry,
// so the two surfaces run identical code and return identical results
// — the REPL renders Result.Text, HTTP renders Result.JSON.
//
// Endpoints:
//
//	POST   /v1/vms                      create a VM {name, workload, tenant}
//	GET    /v1/vms/{id}                 one VM's state
//	POST   /v1/vms/{id}/clone           clone a live VM {name, tenant}
//	POST   /v1/vms/{id}/halt            power a VM off
//	POST   /v1/vms/{id}/snapshot        store a checkpoint stream
//	DELETE /v1/vms/{id}                 destroy a VM, recycling pages
//	GET    /v1/vms/{id}/console?off=N   incremental console read
//	POST   /v1/vms/{id}/console         queue console input {data}
//	POST   /v1/snapshots/{sid}/restore  new VM from a snapshot {name}
//	GET    /v1/tenants                  tenant quotas and usage
//	PUT    /v1/tenants/{tenant}/quota   set a tenant's budget
//	GET    /v1/fleet                    whole-fleet summary
//	GET    /metrics, /metrics.json      counter exports (as always)

// APIHandler builds the HTTP mux over one monitor. mu is the machine
// mutex every surface shares: handlers take it around dispatch exactly
// as the REPL does, so a request can never observe a step in progress.
func APIHandler(m *Monitor, mu *sync.Mutex) http.Handler {
	mux := http.NewServeMux()

	// lock takes the machine mutex with the fleet's API bracket, so
	// the background drive loop yields the next quantum boundary to
	// this request instead of barging back in.
	lock := func() {
		if m.Fleet != nil {
			m.Fleet.BeginAPI()
			defer m.Fleet.EndAPI()
		}
		mu.Lock()
	}

	dispatch := func(w http.ResponseWriter, name string, args ...string) {
		lock()
		res, err := m.Dispatch(name, args)
		mu.Unlock()
		if err != nil {
			writeError(w, err)
			return
		}
		body := res.JSON
		if body == nil {
			body = map[string]string{"text": res.Text}
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(body); err != nil {
			fmt.Fprintln(os.Stderr, "fleet api:", err)
		}
	}

	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, _ *http.Request) {
		dispatch(w, "fleet")
	})
	mux.HandleFunc("POST /v1/vms", func(w http.ResponseWriter, r *http.Request) {
		var spec fleet.Spec
		if !decodeBody(w, r, &spec) {
			return
		}
		dispatch(w, "create", spec.Name, spec.Workload, spec.Tenant)
	})
	mux.HandleFunc("GET /v1/vms/{id}", func(w http.ResponseWriter, r *http.Request) {
		dispatch(w, "stat", r.PathValue("id"))
	})
	mux.HandleFunc("POST /v1/vms/{id}/clone", func(w http.ResponseWriter, r *http.Request) {
		var spec fleet.Spec
		if !decodeBody(w, r, &spec) {
			return
		}
		dispatch(w, "clone", r.PathValue("id"), spec.Name, spec.Tenant)
	})
	mux.HandleFunc("POST /v1/vms/{id}/halt", func(w http.ResponseWriter, r *http.Request) {
		dispatch(w, "halt", r.PathValue("id"))
	})
	mux.HandleFunc("POST /v1/vms/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		dispatch(w, "snapshot", r.PathValue("id"))
	})
	mux.HandleFunc("DELETE /v1/vms/{id}", func(w http.ResponseWriter, r *http.Request) {
		dispatch(w, "destroy", r.PathValue("id"))
	})
	mux.HandleFunc("GET /v1/vms/{id}/console", func(w http.ResponseWriter, r *http.Request) {
		args := []string{r.PathValue("id")}
		if off := r.URL.Query().Get("off"); off != "" {
			if _, err := strconv.Atoi(off); err != nil {
				writeError(w, fleet.BadRequest("bad console offset %s", off))
				return
			}
			args = append(args, off)
		}
		dispatch(w, "console", args...)
	})
	mux.HandleFunc("POST /v1/vms/{id}/console", func(w http.ResponseWriter, r *http.Request) {
		var in struct {
			Data string `json:"data"`
		}
		if !decodeBody(w, r, &in) {
			return
		}
		if in.Data == "" {
			writeError(w, fleet.BadRequest("console input needs a non-empty data field"))
			return
		}
		dispatch(w, "feed", r.PathValue("id"), in.Data)
	})
	mux.HandleFunc("POST /v1/snapshots/{sid}/restore", func(w http.ResponseWriter, r *http.Request) {
		var in struct {
			Name string `json:"name"`
		}
		if !decodeBody(w, r, &in) {
			return
		}
		dispatch(w, "restore", r.PathValue("sid"), in.Name)
	})
	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, _ *http.Request) {
		dispatch(w, "quota")
	})
	mux.HandleFunc("PUT /v1/tenants/{tenant}/quota", func(w http.ResponseWriter, r *http.Request) {
		var q fleet.Quota
		if !decodeBody(w, r, &q) {
			return
		}
		dispatch(w, "quota", r.PathValue("tenant"),
			strconv.Itoa(q.MaxVMs),
			strconv.FormatUint(uint64(q.MaxPages), 10),
			strconv.FormatUint(q.MaxCycles, 10))
	})

	// The counter exporters predate the fleet API and keep their paths.
	recorder := func() *trace.Recorder {
		if m.VMM == nil {
			return nil
		}
		return m.VMM.Recorder()
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		lock()
		defer mu.Unlock()
		trace.WritePrometheus(w, trace.CaptureAll(m.Sources()...), recorder())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		lock()
		defer mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if err := trace.WriteJSON(w, trace.CaptureAll(m.Sources()...), recorder()); err != nil {
			fmt.Fprintln(os.Stderr, "metrics.json:", err)
		}
	})
	return mux
}

// decodeBody parses an optional JSON request body (an empty body is a
// zero value, not an error). Reports false after writing a 400.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Body == nil || r.ContentLength == 0 {
		return true
	}
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		writeError(w, fleet.BadRequest("bad request body: %v", err))
		return false
	}
	return true
}

// writeError renders any error with the status and stable code
// fleet.HTTPStatus assigns it.
func writeError(w http.ResponseWriter, err error) {
	status, code := fleet.HTTPStatus(err)
	msg := err.Error()
	var fe *fleet.Error
	if errors.As(err, &fe) {
		msg = fe.Msg
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": code, "message": msg}); err != nil {
		fmt.Fprintln(os.Stderr, "fleet api:", err)
	}
}
