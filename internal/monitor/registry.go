package monitor

import (
	"fmt"
	"strings"

	"repro/internal/fleet"
)

// The command registry: one table of commands shared by every surface.
// vaxmon's REPL (Execute) and the HTTP API (APIHandler) both dispatch
// through it, so a command exists exactly once — name, args schema,
// handler, and both renderers — instead of a REPL string-switch the
// HTTP layer would have to shadow.

// Result is one command's outcome, carrying both renderings: Text for
// the REPL, and JSON for the API surface (a nil JSON renders as
// {"text": Text}). quit marks the session-ending command.
type Result struct {
	Text string
	JSON any
	quit bool
}

// Quit reports whether the command ends the REPL session.
func (r Result) Quit() bool { return r.quit }

// Command is one registry entry.
type Command struct {
	Name    string
	Aliases []string
	Usage   string      // name plus args schema, e.g. "snapshot <vm>"
	Help    string      // one-line description
	Extra   [][2]string // additional usage/help lines for multi-form commands

	// NeedVMM, when non-empty, rejects the command on a bare-CPU
	// monitor, naming the subsystem in the guard message.
	NeedVMM string
	// NeedFleet rejects the command when no fleet manager is attached.
	NeedFleet bool

	Handler func(m *Monitor, args []string) (Result, error)
}

var (
	registry []*Command
	byName   = map[string]*Command{}
)

func register(c *Command) {
	registry = append(registry, c)
	byName[c.Name] = c
	for _, a := range c.Aliases {
		byName[a] = c
	}
}

// Commands returns the registered commands in help order.
func Commands() []*Command { return registry }

// Lookup resolves a command name or alias (nil if unknown).
func Lookup(name string) *Command { return byName[name] }

// Dispatch runs one registered command — the single execution path
// under every surface. Typed *fleet.Error values flow back to the
// caller: the REPL prints them, the HTTP layer maps them to statuses.
func (m *Monitor) Dispatch(name string, args []string) (Result, error) {
	c := byName[name]
	if c == nil {
		return Result{}, fleet.BadRequest("unknown command %q; try help", name)
	}
	if c.NeedVMM != "" && m.VMM == nil {
		return Result{Text: fmt.Sprintf("no VMM attached (%s needs -vm mode)", c.NeedVMM)}, nil
	}
	if c.NeedFleet && m.Fleet == nil {
		return Result{}, fleet.Conflict("no fleet manager attached (%s needs a fleet-serving vaxmon)", c.Name)
	}
	return c.Handler(m, args)
}

// Execute runs one command line and returns its output — the REPL
// rendering of Dispatch. Unknown commands and typed errors come back
// as text; the boolean reports whether the session should end.
func (m *Monitor) Execute(line string) (string, bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", false
	}
	res, err := m.Dispatch(fields[0], fields[1:])
	if err != nil {
		return err.Error(), false
	}
	return res.Text, res.quit
}

// help renders the command table.
func (m *Monitor) help() string {
	var b strings.Builder
	b.WriteString("commands:\n")
	for _, c := range registry {
		usage := c.Usage
		if usage == "" {
			usage = c.Name
		}
		fmt.Fprintf(&b, "  %-22s %s\n", usage, c.Help)
		for _, x := range c.Extra {
			fmt.Fprintf(&b, "  %-22s %s\n", x[0], x[1])
		}
	}
	b.WriteString("addresses accept 0x hex, decimal, or a symbol name")
	return b.String()
}

// text adapts a legacy string-returning handler: errors travel as
// text (the REPL contract these commands have always had) and the
// JSON rendering is the {"text": ...} wrapper.
func text(f func(m *Monitor, args []string) string) func(*Monitor, []string) (Result, error) {
	return func(m *Monitor, args []string) (Result, error) {
		return Result{Text: f(m, args)}, nil
	}
}

func init() {
	register(&Command{Name: "help", Aliases: []string{"h", "?"},
		Help: "show this command table",
		Handler: func(m *Monitor, _ []string) (Result, error) {
			names := make([]string, 0, len(registry))
			for _, c := range registry {
				names = append(names, c.Name)
			}
			return Result{Text: m.help(), JSON: map[string]any{"commands": names}}, nil
		}})
	register(&Command{Name: "step", Aliases: []string{"s"}, Usage: "step [n]",
		Help:    "execute n instructions (default 1)",
		Handler: text((*Monitor).step)})
	register(&Command{Name: "continue", Aliases: []string{"c", "run"}, Usage: "continue [max]",
		Help:    "run until a breakpoint, halt, or max steps (default 1e6)",
		Handler: text((*Monitor).cont)})
	register(&Command{Name: "regs", Aliases: []string{"r"},
		Help:    "show registers and the PSL (and VMPSL when set)",
		Handler: text(func(m *Monitor, _ []string) string { return m.regs() })})
	register(&Command{Name: "dis", Aliases: []string{"d"}, Usage: "dis [addr [n]]",
		Help:    "disassemble n instructions (default: at PC, 8)",
		Handler: text((*Monitor).dis)})
	register(&Command{Name: "mem", Aliases: []string{"x"}, Usage: "mem addr [n]",
		Help:    "dump n longwords of virtual memory (default 8)",
		Handler: text((*Monitor).mem)})
	register(&Command{Name: "break", Aliases: []string{"b"}, Usage: "break [addr]",
		Help:    "set a breakpoint, or list breakpoints",
		Handler: text((*Monitor).breakCmd)})
	register(&Command{Name: "del", Usage: "del addr",
		Help:    "delete a breakpoint",
		Handler: text((*Monitor).deleteBreak)})
	register(&Command{Name: "sym", Usage: "sym [prefix]",
		Help:    "list known symbols",
		Handler: text((*Monitor).symbols)})
	register(&Command{Name: "stat", Usage: "stat [vm]",
		Help:    "machine statistics (or one VM's, with a fleet attached)",
		Handler: statCmd})
	register(&Command{Name: "fault", Usage: "fault",
		Help: "show the armed fault plan and per-VM fault counters",
		Extra: [][2]string{
			{"fault seed n [vm]", "arm a fault-injection plan (vm -1 = all VMs)"},
			{"fault off", "disarm fault injection"},
			{"fault check", "run the shadow-table self-check pass now"}},
		NeedVMM: "fault commands",
		Handler: text((*Monitor).faultCmd)})
	register(&Command{Name: "watchdog", Usage: "watchdog [n]",
		Help:    "show or set the per-VM watchdog budget (0 = off)",
		NeedVMM: "watchdog",
		Handler: text((*Monitor).watchdogCmd)})
	register(&Command{Name: "trace", Usage: "trace [n]",
		Help:    "show the last n flight-recorder events (default 20)",
		NeedVMM: "trace",
		Handler: text((*Monitor).traceCmd)})
	register(&Command{Name: "hist",
		Help:    "show trap/shadow-fill/KCALL latency percentiles",
		NeedVMM: "hist",
		Handler: text(func(m *Monitor, _ []string) string { return m.histCmd() })})
	register(&Command{Name: "checkpoint", Usage: "checkpoint vm [file]",
		Help:    "take a checkpoint generation (and save it to file)",
		NeedVMM: "checkpoint",
		Handler: text((*Monitor).checkpointCmd)})
	register(&Command{Name: "restore", Usage: "restore src [name]",
		Help:    "create a new VM from a snapshot id or checkpoint file",
		NeedVMM: "restore",
		Handler: restoreCmd})
	register(&Command{Name: "recover", Usage: "recover",
		Help: "show supervisor status and per-VM generation rings",
		Extra: [][2]string{
			{"recover vm", "force recovery of a halted VM from its newest generation"},
			{"recover on [budget] | off", "arm or disarm automatic recovery"},
			{"recover every n [gens]", "set the periodic checkpoint policy (0 = off)"}},
		NeedVMM: "recover",
		Handler: text((*Monitor).recoverCmd)})

	// Fleet lifecycle commands: thin shims into the fleet manager, so
	// REPL and HTTP drive the same code and return the same results.
	register(&Command{Name: "fleet", Aliases: []string{"vms"},
		Help:      "fleet summary: VMs, page accounting, tenants",
		NeedFleet: true, Handler: fleetCmd})
	register(&Command{Name: "create", Usage: "create [name] [workload] [tenant]",
		Help:      "create a VM from a built-in guest workload (default stamp)",
		NeedFleet: true, Handler: createCmd})
	register(&Command{Name: "clone", Usage: "clone <vm> [name] [tenant]",
		Help:      "stamp a copy-on-write clone of a live VM",
		NeedFleet: true, Handler: cloneCmd})
	register(&Command{Name: "halt", Usage: "halt <vm>",
		Help:      "power a live VM off",
		NeedFleet: true, Handler: haltCmd})
	register(&Command{Name: "snapshot", Usage: "snapshot <vm>",
		Help:      "store a checkpoint stream of a live VM (see restore)",
		NeedFleet: true, Handler: snapshotCmd})
	register(&Command{Name: "destroy", Usage: "destroy <vm>",
		Help:      "halt (if needed) and unregister a VM, recycling its pages",
		NeedFleet: true, Handler: destroyCmd})
	register(&Command{Name: "console", Usage: "console <vm> [off]",
		Help:      "read console output from off (default: the streamed boundary)",
		NeedFleet: true, Handler: consoleCmd})
	register(&Command{Name: "feed", Usage: "feed <vm> <text>",
		Help:      "queue console input for a VM",
		NeedFleet: true, Handler: feedCmd})
	register(&Command{Name: "quota", Usage: "quota [tenant maxvms maxpages maxcycles]",
		Help:      "show tenants, or set a tenant's admission budget (0 = unlimited)",
		NeedFleet: true, Handler: quotaCmd})

	register(&Command{Name: "quit", Aliases: []string{"q", "exit"},
		Help: "leave the monitor",
		Handler: func(*Monitor, []string) (Result, error) {
			return Result{quit: true}, nil
		}})
}
