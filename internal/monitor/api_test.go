package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
)

// testServer wraps an httptest server over APIHandler with JSON
// request/response helpers.
type testServer struct {
	srv *httptest.Server
}

func newTestServer(t *testing.T, m *Monitor, mu *sync.Mutex) *testServer {
	t.Helper()
	srv := httptest.NewServer(APIHandler(m, mu))
	t.Cleanup(srv.Close)
	return &testServer{srv: srv}
}

func (s *testServer) do(t *testing.T, method, path, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, s.srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(out)
}

func (s *testServer) post(t *testing.T, path, body string) (int, string) {
	return s.do(t, "POST", path, body)
}

func (s *testServer) getJSON(t *testing.T, path string, dst any) {
	t.Helper()
	status, body := s.do(t, "GET", path, "")
	if status != http.StatusOK {
		t.Fatalf("GET %s = %d (%s)", path, status, body)
	}
	if err := json.Unmarshal([]byte(body), dst); err != nil {
		t.Fatalf("GET %s: %v in %q", path, err, body)
	}
}

func (s *testServer) postJSON(t *testing.T, path string, in any, dst any) {
	t.Helper()
	body := ""
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		body = string(buf)
	}
	status, out := s.post(t, path, body)
	if status != http.StatusOK {
		t.Fatalf("POST %s = %d (%s)", path, status, out)
	}
	if dst != nil {
		if err := json.Unmarshal([]byte(out), dst); err != nil {
			t.Fatalf("POST %s: %v in %q", path, err, out)
		}
	}
}

// TestFleet256OverHTTP is the acceptance run: a 256-VM fleet created,
// cloned, snapshotted and halted entirely over HTTP, with per-tenant
// quotas enforced mid-flight (typed error on breach, neighbors
// unaffected) while the background drive loop executes guests.
func TestFleet256OverHTTP(t *testing.T) {
	k := core.New(128<<20, core.Config{})
	mgr := fleet.NewManager(k, fleet.Config{Quantum: 5_000})
	m := New(k.CPU)
	m.VMM = k
	m.Fleet = mgr

	var mu sync.Mutex
	srv := newTestServer(t, m, &mu)
	mgr.Start(&mu)
	defer mgr.Stop()

	var golden fleet.VMInfo
	srv.postJSON(t, "/v1/vms", fleet.Spec{Name: "golden", Workload: "stamp"}, &golden)

	// Clone to 256 VMs across four tenants.
	const total = 256
	ids := []int{golden.ID}
	for i := 1; i < total; i++ {
		var v fleet.VMInfo
		srv.postJSON(t, fmt.Sprintf("/v1/vms/%d/clone", golden.ID),
			map[string]string{"tenant": fmt.Sprintf("t%d", i%4)}, &v)
		ids = append(ids, v.ID)
	}

	var sum fleet.FleetInfo
	srv.getJSON(t, "/v1/fleet", &sum)
	if len(sum.VMs) != total || sum.Live != total {
		t.Fatalf("fleet = %d VMs / %d live, want %d/%d", len(sum.VMs), sum.Live, total, total)
	}

	// Freeze tenant t0 at its current VM count; the next clone into t0
	// is a typed 429 while t1 keeps admitting.
	t0VMs := 0
	for _, tn := range sum.Tenants {
		if tn.Name == "t0" {
			t0VMs = tn.VMs
		}
	}
	if t0VMs == 0 {
		t.Fatal("tenant t0 missing from summary")
	}
	status, _ := srv.do(t, "PUT", "/v1/tenants/t0/quota", fmt.Sprintf(`{"max_vms":%d}`, t0VMs))
	if status != http.StatusOK {
		t.Fatalf("quota set = %d", status)
	}
	status, body := srv.post(t, fmt.Sprintf("/v1/vms/%d/clone", golden.ID), `{"tenant":"t0"}`)
	if status != http.StatusTooManyRequests || !strings.Contains(body, "quota_exceeded") {
		t.Fatalf("t0 breach = %d (%s)", status, body)
	}
	var extra fleet.VMInfo
	srv.postJSON(t, fmt.Sprintf("/v1/vms/%d/clone", golden.ID), map[string]string{"tenant": "t1"}, &extra)
	ids = append(ids, extra.ID)

	// Snapshot a sample of the fleet over HTTP.
	for _, id := range ids[:8] {
		var snap fleet.SnapInfo
		srv.postJSON(t, fmt.Sprintf("/v1/vms/%d/snapshot", id), nil, &snap)
		if snap.Bytes == 0 {
			t.Fatalf("vm%d: empty snapshot", id)
		}
	}

	// Halt the whole fleet over HTTP and verify nothing stays live.
	for _, id := range ids {
		srv.postJSON(t, fmt.Sprintf("/v1/vms/%d/halt", id), nil, nil)
	}
	srv.getJSON(t, "/v1/fleet", &sum)
	if sum.Live != 0 || len(sum.VMs) != total+1 {
		t.Fatalf("after halt: %d live of %d", sum.Live, len(sum.VMs))
	}
}

// TestConsoleOverHTTP streams console output incrementally and feeds
// input, and pins the snapshot/restore no-replay behavior end to end.
func TestConsoleOverHTTP(t *testing.T) {
	k := core.New(32<<20, core.Config{})
	mgr := fleet.NewManager(k, fleet.Config{Quantum: 5_000})
	m := New(k.CPU)
	m.VMM = k
	m.Fleet = mgr
	var mu sync.Mutex
	srv := newTestServer(t, m, &mu)

	var vm fleet.VMInfo
	srv.postJSON(t, "/v1/vms", fleet.Spec{Name: "greeter", Workload: "hello"}, &vm)
	for i := 0; i < 10_000; i++ {
		mu.Lock()
		mgr.DriveOnce()
		done := len(k.VMs()[0].ConsoleOutput()) >= 6
		mu.Unlock()
		if done {
			break
		}
	}

	var chunk fleet.ConsoleChunk
	srv.getJSON(t, fmt.Sprintf("/v1/vms/%d/console", vm.ID), &chunk)
	if !strings.Contains(chunk.Data, "hello") {
		t.Fatalf("console = %+v", chunk)
	}
	// The cursor advanced: a second read is empty.
	srv.getJSON(t, fmt.Sprintf("/v1/vms/%d/console", vm.ID), &chunk)
	if chunk.Data != "" {
		t.Fatalf("replayed %q", chunk.Data)
	}
	// An explicit offset rewinds.
	srv.getJSON(t, fmt.Sprintf("/v1/vms/%d/console?off=0", vm.ID), &chunk)
	if !strings.Contains(chunk.Data, "hello") {
		t.Fatalf("offset read = %+v", chunk)
	}

	// Snapshot, restore: the restored VM's stream resumes at the
	// observed boundary over HTTP too.
	var snap fleet.SnapInfo
	srv.postJSON(t, fmt.Sprintf("/v1/vms/%d/snapshot", vm.ID), nil, &snap)
	var revived fleet.VMInfo
	srv.postJSON(t, "/v1/snapshots/"+snap.ID+"/restore", map[string]string{"name": "revived"}, &revived)
	if revived.ConsoleLen < 6 {
		t.Fatalf("restored console backlog = %d", revived.ConsoleLen)
	}
	srv.getJSON(t, fmt.Sprintf("/v1/vms/%d/console", revived.ID), &chunk)
	if chunk.Data != "" {
		t.Fatalf("restored VM replayed %q over HTTP", chunk.Data)
	}

	// Console input round-trips.
	srv.postJSON(t, fmt.Sprintf("/v1/vms/%d/console", vm.ID), map[string]string{"data": "ping"}, nil)
	status, body := srv.post(t, fmt.Sprintf("/v1/vms/%d/console", vm.ID), `{}`)
	if status != http.StatusBadRequest {
		t.Fatalf("empty feed = %d (%s)", status, body)
	}
}

// TestHTTPErrors pins the status mapping for the common failures.
func TestHTTPErrors(t *testing.T) {
	m, _ := newFleetMonitor(t)
	var mu sync.Mutex
	srv := newTestServer(t, m, &mu)

	for _, tc := range []struct {
		method, path, body string
		status             int
		code               string
	}{
		{"GET", "/v1/vms/99", "", 404, "not_found"},
		{"POST", "/v1/vms/99/halt", "", 404, "not_found"},
		{"POST", "/v1/vms/0/clone", `{bad json`, 400, "bad_request"},
		{"POST", "/v1/vms", `{"workload":"nope"}`, 400, "bad_request"},
		{"POST", "/v1/snapshots/s999/restore", "", 404, "not_found"},
		{"GET", "/v1/vms/zz", "", 400, "bad_request"},
	} {
		status, body := s_do(t, srv, tc.method, tc.path, tc.body)
		if status != tc.status || !strings.Contains(body, tc.code) {
			t.Errorf("%s %s = %d (%s), want %d %s", tc.method, tc.path, status, body, tc.status, tc.code)
		}
	}

	// Metrics stay served next to the fleet API.
	status, body := srv.do(t, "GET", "/metrics", "")
	if status != 200 || !strings.Contains(body, "instructions") {
		t.Fatalf("/metrics = %d (%.80s)", status, body)
	}
}

func s_do(t *testing.T, s *testServer, method, path, body string) (int, string) {
	t.Helper()
	return s.do(t, method, path, body)
}

// TestSoakSmoke runs a miniature soak end to end as part of the suite.
func TestSoakSmoke(t *testing.T) {
	rep, err := Soak(SoakOptions{Lifecycles: 24, Clients: 3, Tenants: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 {
		t.Fatalf("%d lifecycle errors:\n%s", rep.Errors, rep)
	}
	if rep.Leaked() {
		t.Fatalf("leak: %s", rep)
	}
	if rep.Clone.Count == 0 || rep.Destroy.Count == 0 {
		t.Fatalf("histograms empty: %s", rep)
	}
}
