package monitor

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"encoding/binary"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/vax"
)

func testMachine(t *testing.T) (*Monitor, *asm.Program) {
	t.Helper()
	prog, err := asm.Assemble(`
start:	movl #5, r0
loop:	addl2 #1, r1
	sobgtr r0, loop
	movl #0xABCD, r2
	halt
data:	.long 0x11111111, 0x22222222
`, 0x400)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(64 * 1024)
	if err := m.StoreBytes(prog.Origin, prog.Code); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(m, cpu.StandardVAX)
	c.SetPSL(vax.PSL(0).WithCur(vax.Kernel))
	c.SetStackFor(vax.Kernel, 0x8000)
	c.SetPC(prog.MustSymbol("start"))
	mon := New(c)
	mon.Symbols = prog.Symbols
	return mon, prog
}

func run(t *testing.T, m *Monitor, cmd string) string {
	t.Helper()
	out, quit := m.Execute(cmd)
	if quit {
		t.Fatalf("%q ended the session", cmd)
	}
	return out
}

func TestStepAndRegs(t *testing.T) {
	m, _ := testMachine(t)
	out := run(t, m, "step")
	if !strings.Contains(out, "pc=0x403") {
		t.Errorf("step output %q", out)
	}
	if m.CPU.R[0] != 5 {
		t.Errorf("r0 = %d", m.CPU.R[0])
	}
	out = run(t, m, "regs")
	if !strings.Contains(out, "r0  00000005") {
		t.Errorf("regs output:\n%s", out)
	}
	run(t, m, "step 100") // runs to the halt
	if !m.CPU.Halted {
		t.Error("machine should have halted")
	}
}

func TestContinueAndBreakpoints(t *testing.T) {
	m, prog := testMachine(t)
	target := prog.MustSymbol("loop")
	out := run(t, m, "break loop")
	if !strings.Contains(out, "breakpoint at") {
		t.Errorf("break output %q", out)
	}
	out = run(t, m, "continue")
	if !strings.Contains(out, "breakpoint") || m.CPU.PC() != target {
		t.Errorf("continue stopped at %#x: %q", m.CPU.PC(), out)
	}
	out = run(t, m, "break")
	if !strings.Contains(out, "loop") {
		t.Errorf("break list %q", out)
	}
	out = run(t, m, "del loop")
	if out != "deleted" {
		t.Errorf("del output %q", out)
	}
	out = run(t, m, "continue")
	if !strings.Contains(out, "halted") {
		t.Errorf("final continue %q", out)
	}
	if m.CPU.R[2] != 0xABCD {
		t.Errorf("program did not complete: r2=%#x", m.CPU.R[2])
	}
}

func TestDisassembleAndMem(t *testing.T) {
	m, _ := testMachine(t)
	out := run(t, m, "dis start 3")
	for _, want := range []string{"movl #5, r0", "addl2 #1, r1", "sobgtr"} {
		if !strings.Contains(out, want) {
			t.Errorf("dis missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "<start>") {
		t.Errorf("dis missing symbol:\n%s", out)
	}
	out = run(t, m, "mem data 2")
	if !strings.Contains(out, "11111111") || !strings.Contains(out, "22222222") {
		t.Errorf("mem output:\n%s", out)
	}
}

func TestSymbolsAndStat(t *testing.T) {
	m, _ := testMachine(t)
	out := run(t, m, "sym")
	for _, want := range []string{"start", "loop", "data"} {
		if !strings.Contains(out, want) {
			t.Errorf("sym missing %q", want)
		}
	}
	out = run(t, m, "sym lo")
	if strings.Contains(out, "start") || !strings.Contains(out, "loop") {
		t.Errorf("prefix filter broken: %q", out)
	}
	run(t, m, "step 3")
	out = run(t, m, "stat")
	if !strings.Contains(out, "instructions 3") {
		t.Errorf("stat output %q", out)
	}
}

func TestErrorsAndHelp(t *testing.T) {
	m, _ := testMachine(t)
	if out := run(t, m, "bogus"); !strings.Contains(out, "unknown command") {
		t.Errorf("got %q", out)
	}
	if out := run(t, m, "help"); !strings.Contains(out, "break") {
		t.Errorf("help %q", out)
	}
	if out := run(t, m, "mem"); !strings.Contains(out, "usage") {
		t.Errorf("mem usage %q", out)
	}
	if out := run(t, m, "mem zzz"); !strings.Contains(out, "bad address") {
		t.Errorf("bad addr %q", out)
	}
	if out := run(t, m, "del 0x999"); !strings.Contains(out, "no breakpoint") {
		t.Errorf("del %q", out)
	}
	if out, _ := m.Execute(""); out != "" {
		t.Errorf("empty line produced %q", out)
	}
	if _, quit := m.Execute("quit"); !quit {
		t.Error("quit did not end session")
	}
}

// vmMonitor builds a monitor attached to a VMM with one trivial VM.
func vmMonitor(t *testing.T) (*Monitor, *core.VMM) {
	t.Helper()
	prog, err := asm.Assemble("start:\thalt\n", vax.SystemBase+0x1000)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, 64*1024)
	for i := uint32(0); i < 64; i++ {
		pte := vax.NewPTE(true, vax.ProtUW, true, i)
		binary.LittleEndian.PutUint32(img[0x200+4*i:], uint32(pte))
	}
	copy(img[0x1000:], prog.Code)
	k := core.New(8<<20, core.Config{})
	if _, err := k.CreateVM(core.VMConfig{MemBytes: 64 * 1024, Image: img,
		StartPC: prog.MustSymbol("start"), PreMapped: true, SBR: 0x200, SLR: 64}); err != nil {
		t.Fatal(err)
	}
	mon := New(k.CPU)
	mon.VMM = k
	return mon, k
}

func TestFaultCommandNeedsVMM(t *testing.T) {
	m, _ := testMachine(t)
	for _, cmd := range []string{"fault", "watchdog"} {
		if out := run(t, m, cmd); !strings.Contains(out, "no VMM attached") {
			t.Errorf("%q = %q", cmd, out)
		}
	}
}

func TestFaultCommand(t *testing.T) {
	m, k := vmMonitor(t)
	if out := run(t, m, "fault"); !strings.Contains(out, "no fault plan armed") {
		t.Errorf("fault = %q", out)
	}
	if out := run(t, m, "fault seed 5"); !strings.Contains(out, "seed 5, target vm -1") {
		t.Errorf("fault seed = %q", out)
	}
	if k.Faults() == nil {
		t.Fatal("injector not attached")
	}
	if out := run(t, m, "fault"); !strings.Contains(out, "armed:") ||
		!strings.Contains(out, "machine-checks 0") {
		t.Errorf("fault status = %q", out)
	}
	if out := run(t, m, "fault check"); !strings.Contains(out, "self-check pass") {
		t.Errorf("fault check = %q", out)
	}
	if out := run(t, m, "fault off"); !strings.Contains(out, "disarmed") {
		t.Errorf("fault off = %q", out)
	}
	if k.Faults() != nil {
		t.Error("injector still attached after fault off")
	}
	if out := run(t, m, "fault seed nope"); !strings.Contains(out, "bad seed") {
		t.Errorf("fault seed nope = %q", out)
	}
}

func TestTraceCommandNeedsVMM(t *testing.T) {
	m, _ := testMachine(t)
	for _, cmd := range []string{"trace", "hist"} {
		if out := run(t, m, cmd); !strings.Contains(out, "no VMM attached") {
			t.Errorf("%q = %q", cmd, out)
		}
	}
}

func TestTraceAndHistCommands(t *testing.T) {
	m, k := vmMonitor(t)
	if out := run(t, m, "trace"); !strings.Contains(out, "flight recorder disabled") {
		t.Errorf("trace with no recorder = %q", out)
	}
	if out := run(t, m, "hist"); !strings.Contains(out, "recorder disabled") {
		t.Errorf("hist with no recorder = %q", out)
	}
	k.EnableRecorder(1024)
	k.Run(10_000)
	if out := run(t, m, "trace"); !strings.Contains(out, "vm-trap") {
		t.Errorf("trace after run = %q", out)
	}
	if out := run(t, m, "trace nope"); !strings.Contains(out, "usage") {
		t.Errorf("trace nope = %q", out)
	}
	out := run(t, m, "hist")
	if !strings.Contains(out, "trap") || !strings.Contains(out, "p99") {
		t.Errorf("hist after run = %q", out)
	}
}

func TestWatchdogCommand(t *testing.T) {
	m, k := vmMonitor(t)
	if out := run(t, m, "watchdog"); !strings.Contains(out, "watchdog disabled") {
		t.Errorf("watchdog = %q", out)
	}
	if out := run(t, m, "watchdog 8"); !strings.Contains(out, "set to 8 ticks") {
		t.Errorf("watchdog 8 = %q", out)
	}
	if k.Config().Watchdog != 8 {
		t.Errorf("budget = %d, want 8", k.Config().Watchdog)
	}
	if out := run(t, m, "watchdog"); !strings.Contains(out, "budget 8 ticks") ||
		!strings.Contains(out, "since progress") {
		t.Errorf("watchdog status = %q", out)
	}
	if out := run(t, m, "watchdog 0"); !strings.Contains(out, "disabled") {
		t.Errorf("watchdog 0 = %q", out)
	}
}

func TestCheckpointCommandNeedsVMM(t *testing.T) {
	m, _ := testMachine(t)
	for _, cmd := range []string{"checkpoint 0", "restore x", "recover"} {
		if out := run(t, m, cmd); !strings.Contains(out, "no VMM attached") {
			t.Errorf("%q = %q", cmd, out)
		}
	}
}

func TestCheckpointAndRestoreCommands(t *testing.T) {
	m, k := vmMonitor(t)
	if out := run(t, m, "checkpoint"); !strings.Contains(out, "usage") {
		t.Errorf("checkpoint = %q", out)
	}
	if out := run(t, m, "checkpoint zz"); !strings.Contains(out, "bad vm id") {
		t.Errorf("checkpoint zz = %q", out)
	}
	if out := run(t, m, "checkpoint 9"); !strings.Contains(out, "no vm with id 9") {
		t.Errorf("checkpoint 9 = %q", out)
	}
	file := filepath.Join(t.TempDir(), "vm0.ckpt")
	out := run(t, m, "checkpoint 0 "+file)
	if !strings.Contains(out, "checkpoint taken") || !strings.Contains(out, "written to") {
		t.Fatalf("checkpoint 0 = %q", out)
	}
	if fi, err := os.Stat(file); err != nil || fi.Size() == 0 {
		t.Fatalf("checkpoint file not written: %v", err)
	}
	if out := run(t, m, "restore"); !strings.Contains(out, "usage") {
		t.Errorf("restore = %q", out)
	}
	if out := run(t, m, "restore /nonexistent.ckpt"); !strings.Contains(out, "restore failed") {
		t.Errorf("restore missing = %q", out)
	}
	out = run(t, m, "restore "+file+" clone")
	if !strings.Contains(out, "restored from") || !strings.Contains(out, "clone") {
		t.Fatalf("restore = %q", out)
	}
	vms := k.VMs()
	if len(vms) != 2 || vms[1].Name() != "clone" {
		t.Fatalf("restore did not create the clone: %d VMs", len(vms))
	}
	k.Run(0)
	for _, vm := range vms {
		if halted, msg := vm.Halted(); !halted || !strings.Contains(msg, "HALT") {
			t.Errorf("%s: halted=%v msg=%q after restore run", vm.Name(), halted, msg)
		}
	}
}

func TestRecoverCommand(t *testing.T) {
	m, k := vmMonitor(t)
	out := run(t, m, "recover")
	if !strings.Contains(out, "supervisor disarmed") ||
		!strings.Contains(out, "periodic checkpoints off") ||
		!strings.Contains(out, "vm0") {
		t.Errorf("recover status = %q", out)
	}
	if out := run(t, m, "recover on 4"); !strings.Contains(out, "armed, budget 4") {
		t.Errorf("recover on 4 = %q", out)
	}
	if !k.Config().Recover || k.Config().RecoverBudget != 4 {
		t.Errorf("supervisor not armed: %+v", k.Config())
	}
	if out := run(t, m, "recover on zz"); !strings.Contains(out, "usage") {
		t.Errorf("recover on zz = %q", out)
	}
	if out := run(t, m, "recover every 100 8"); !strings.Contains(out, "every 100 ticks") ||
		!strings.Contains(out, "8 generations") {
		t.Errorf("recover every = %q", out)
	}
	if out := run(t, m, "recover every 0"); !strings.Contains(out, "periodic checkpoints off") {
		t.Errorf("recover every 0 = %q", out)
	}
	if out := run(t, m, "recover every"); !strings.Contains(out, "usage") {
		t.Errorf("recover every = %q", out)
	}
	if out := run(t, m, "recover off"); !strings.Contains(out, "disarmed") {
		t.Errorf("recover off = %q", out)
	}
	if out := run(t, m, "recover zz"); !strings.Contains(out, "bad vm id") {
		t.Errorf("recover zz = %q", out)
	}
	if out := run(t, m, "recover 0"); !strings.Contains(out, "not halted") {
		t.Errorf("recover live vm = %q", out)
	}
	// A clean guest HALT is a fatal death: the frames are released and
	// operator recovery must refuse rather than resurrect it.
	run(t, m, "checkpoint 0")
	k.Run(0)
	if out := run(t, m, "recover 0"); !strings.Contains(out, "halted permanently") {
		t.Errorf("recover fatal vm = %q", out)
	}
}
