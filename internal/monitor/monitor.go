// Package monitor is an interactive machine monitor (debugger) for the
// simulated VAX: single-stepping, breakpoints, register and memory
// inspection, live disassembly, and VM-aware state display. Commands
// live in one registry (registry.go) shared by every surface: the
// command processor is I/O-agnostic so cmd/vaxmon can wrap it around
// stdin and an HTTP mux alike, and tests can drive it directly.
package monitor

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/trace"
	"repro/internal/vax"
)

// Monitor drives one machine interactively.
type Monitor struct {
	CPU *cpu.CPU
	// Symbols, when set, lets the monitor print symbolic locations.
	Symbols map[string]uint32
	// VMM, when set, enables the VM-level commands (fault, watchdog).
	VMM *core.VMM
	// Fleet, when set, enables the lifecycle commands (create, clone,
	// halt, snapshot, destroy, console, quota) on both surfaces.
	Fleet *fleet.Manager

	breaks map[uint32]bool
}

// New creates a monitor for the given processor.
func New(c *cpu.CPU) *Monitor {
	return &Monitor{CPU: c, breaks: make(map[uint32]bool)}
}

// Sources collects every counter source the machine exposes, for the
// metrics exporters and the stat command's JSON rendering.
func (m *Monitor) Sources() []trace.Source {
	srcs := []trace.Source{m.CPU, m.CPU.MMU}
	if m.VMM != nil {
		srcs = append(srcs, m.VMM)
		for _, vm := range m.VMM.VMs() {
			srcs = append(srcs, vm)
		}
		// The merged totals of the last parallel run carry the scheduler
		// counters (and the worker_occupancy_permille balance ratio) that
		// no per-VM or monitor source exposes.
		if pr := m.VMM.LastParallelRun(); pr.VMs > 0 {
			srcs = append(srcs, pr)
		}
	}
	return srcs
}

// resolve parses an address: symbol, hex or decimal.
func (m *Monitor) resolve(s string) (uint32, error) {
	if v, ok := m.Symbols[s]; ok {
		return v, nil
	}
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad address %q", s)
	}
	return uint32(v), nil
}

// symbolFor returns "name+off" for the closest symbol at or below addr.
func (m *Monitor) symbolFor(addr uint32) string {
	best, name := uint32(0), ""
	for n, a := range m.Symbols {
		if a <= addr && a >= best && name == "" || (a <= addr && a > best) {
			best, name = a, n
		}
	}
	if name == "" {
		return ""
	}
	if best == addr {
		return " <" + name + ">"
	}
	return fmt.Sprintf(" <%s+%#x>", name, addr-best)
}

func (m *Monitor) step(args []string) string {
	n := uint64(1)
	if len(args) > 0 {
		if v, err := strconv.ParseUint(args[0], 0, 64); err == nil {
			n = v
		}
	}
	for i := uint64(0); i < n && !m.CPU.Halted; i++ {
		m.CPU.Step()
	}
	return m.where()
}

func (m *Monitor) cont(args []string) string {
	max := uint64(1_000_000)
	if len(args) > 0 {
		if v, err := strconv.ParseUint(args[0], 0, 64); err == nil {
			max = v
		}
	}
	var steps uint64
	for !m.CPU.Halted && steps < max {
		m.CPU.Step()
		steps++
		if m.breaks[m.CPU.PC()] {
			return fmt.Sprintf("breakpoint after %d steps\n%s", steps, m.where())
		}
	}
	if m.CPU.Halted {
		return fmt.Sprintf("halted after %d steps\n%s", steps, m.where())
	}
	return fmt.Sprintf("stopped after %d steps\n%s", steps, m.where())
}

// where describes the current location with one disassembled line.
func (m *Monitor) where() string {
	pc := m.CPU.PC()
	line := "???"
	if code := m.readCode(pc, 16); code != nil {
		if text, _, err := asm.Disassemble(code, pc); err == nil {
			line = text
		}
	}
	return fmt.Sprintf("pc=%#x%s: %s", pc, m.symbolFor(pc), line)
}

// readCode fetches up to n bytes of instruction stream at va via the
// machine's own translation (nil if unmapped).
func (m *Monitor) readCode(va uint32, n int) []byte {
	out := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		b, err := m.CPU.LoadVirt(va+uint32(i), 1, vax.Kernel)
		if err != nil {
			break
		}
		out = append(out, byte(b))
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func (m *Monitor) regs() string {
	c := m.CPU
	var b strings.Builder
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("r%d", i)
		switch i {
		case cpu.RegAP:
			name = "ap"
		case cpu.RegFP:
			name = "fp"
		case cpu.RegSP:
			name = "sp"
		case cpu.RegPC:
			name = "pc"
		}
		fmt.Fprintf(&b, "%-3s %08x  ", name, c.R[i])
		if i%4 == 3 {
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "psl %08x  %s\n", uint32(c.PSL()), c.PSL())
	if c.PSL().VM() || c.VMPSL != 0 {
		fmt.Fprintf(&b, "vmpsl %08x  %s\n", uint32(c.VMPSL), c.VMPSL)
	}
	fmt.Fprintf(&b, "cycles %d  instructions %d  halted %t\n",
		c.Cycles, c.Stats.Instructions, c.Halted)
	return b.String()
}

func (m *Monitor) dis(args []string) string {
	addr := m.CPU.PC()
	count := 8
	if len(args) > 0 {
		v, err := m.resolve(args[0])
		if err != nil {
			return err.Error()
		}
		addr = v
	}
	if len(args) > 1 {
		if v, err := strconv.Atoi(args[1]); err == nil {
			count = v
		}
	}
	var b strings.Builder
	for i := 0; i < count; i++ {
		code := m.readCode(addr, 16)
		if code == nil {
			fmt.Fprintf(&b, "%08x: (unmapped)\n", addr)
			break
		}
		text, n, err := asm.Disassemble(code, addr)
		if err != nil {
			fmt.Fprintf(&b, "%08x: ??? (%v)\n", addr, err)
			break
		}
		mark := "  "
		if m.breaks[addr] {
			mark = "b "
		}
		fmt.Fprintf(&b, "%s%08x%s: %s\n", mark, addr, m.symbolFor(addr), text)
		addr += uint32(n)
	}
	return b.String()
}

func (m *Monitor) mem(args []string) string {
	if len(args) == 0 {
		return "usage: mem addr [n]"
	}
	addr, err := m.resolve(args[0])
	if err != nil {
		return err.Error()
	}
	count := 8
	if len(args) > 1 {
		if v, e := strconv.Atoi(args[1]); e == nil {
			count = v
		}
	}
	var b strings.Builder
	for i := 0; i < count; i++ {
		v, err := m.CPU.LoadVirt(addr+uint32(4*i), 4, vax.Kernel)
		if err != nil {
			fmt.Fprintf(&b, "%08x: (fault: %v)\n", addr+uint32(4*i), err)
			break
		}
		fmt.Fprintf(&b, "%08x: %08x\n", addr+uint32(4*i), v)
	}
	return b.String()
}

func (m *Monitor) breakCmd(args []string) string {
	if len(args) == 0 {
		if len(m.breaks) == 0 {
			return "no breakpoints"
		}
		addrs := make([]uint32, 0, len(m.breaks))
		for a := range m.breaks {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		var b strings.Builder
		for _, a := range addrs {
			fmt.Fprintf(&b, "%#x%s\n", a, m.symbolFor(a))
		}
		return b.String()
	}
	addr, err := m.resolve(args[0])
	if err != nil {
		return err.Error()
	}
	m.breaks[addr] = true
	return fmt.Sprintf("breakpoint at %#x%s", addr, m.symbolFor(addr))
}

func (m *Monitor) deleteBreak(args []string) string {
	if len(args) == 0 {
		return "usage: del addr"
	}
	addr, err := m.resolve(args[0])
	if err != nil {
		return err.Error()
	}
	if !m.breaks[addr] {
		return "no breakpoint there"
	}
	delete(m.breaks, addr)
	return "deleted"
}

func (m *Monitor) symbols(args []string) string {
	prefix := ""
	if len(args) > 0 {
		prefix = args[0]
	}
	type sym struct {
		name string
		addr uint32
	}
	var syms []sym
	for n, a := range m.Symbols {
		if strings.HasPrefix(n, prefix) {
			syms = append(syms, sym{n, a})
		}
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].addr < syms[j].addr })
	var b strings.Builder
	for _, s := range syms {
		fmt.Fprintf(&b, "%08x %s\n", s.addr, s.name)
	}
	if b.Len() == 0 {
		return "no symbols"
	}
	return b.String()
}

// faultCmd inspects and controls fault injection on the attached VMM.
func (m *Monitor) faultCmd(args []string) string {
	if m.VMM == nil {
		return "no VMM attached (fault commands need -vm mode)"
	}
	if len(args) == 0 {
		var b strings.Builder
		if inj := m.VMM.Faults(); inj != nil {
			fmt.Fprintf(&b, "armed: %s\n", inj.Summary())
		} else {
			b.WriteString("no fault plan armed; try: fault seed n [vm]\n")
		}
		for _, vm := range m.VMM.VMs() {
			s := vm.Stats
			fmt.Fprintf(&b, "vm%d %s: machine-checks %d  disk-retries %d  watchdog-trips %d  selfcheck-repairs %d\n",
				vm.ID, vm.Name(), s.MachineChecks, s.DiskRetries, s.WatchdogTrips, s.SelfCheckRepairs)
		}
		return strings.TrimRight(b.String(), "\n")
	}
	switch args[0] {
	case "off":
		m.VMM.AttachFaults(nil)
		return "fault injection disarmed"
	case "check":
		return fmt.Sprintf("self-check pass: %d shadow PTEs repaired", m.VMM.SelfCheck())
	case "seed":
		if len(args) < 2 {
			return "usage: fault seed n [vm]"
		}
		seed, err := strconv.ParseInt(args[1], 0, 64)
		if err != nil {
			return "bad seed " + args[1]
		}
		target := -1
		if len(args) > 2 {
			t, err := strconv.Atoi(args[2])
			if err != nil {
				return "bad vm " + args[2]
			}
			target = t
		}
		m.VMM.AttachFaults(fault.New(seed, fault.DefaultConfig(target)))
		return fmt.Sprintf("armed default fault plan, seed %d, target vm %d", seed, target)
	}
	return "usage: fault [seed n [vm] | off | check]"
}

// watchdogCmd inspects and sets the per-VM progress budget.
func (m *Monitor) watchdogCmd(args []string) string {
	if m.VMM == nil {
		return "no VMM attached (watchdog needs -vm mode)"
	}
	if len(args) > 0 {
		n, err := strconv.ParseUint(args[0], 0, 64)
		if err != nil {
			return "usage: watchdog [n]"
		}
		m.VMM.SetWatchdog(n)
		if n == 0 {
			return "watchdog disabled"
		}
		return fmt.Sprintf("watchdog budget set to %d ticks", n)
	}
	var b strings.Builder
	budget := m.VMM.Config().Watchdog
	if budget == 0 {
		b.WriteString("watchdog disabled\n")
	} else {
		fmt.Fprintf(&b, "watchdog budget %d ticks\n", budget)
	}
	for _, vm := range m.VMM.VMs() {
		if halted, msg := vm.Halted(); halted {
			fmt.Fprintf(&b, "vm%d %s: halted (%s), %d trips\n", vm.ID, vm.Name(), msg, vm.Stats.WatchdogTrips)
			continue
		}
		fmt.Fprintf(&b, "vm%d %s: %d ticks since progress, %d trips\n",
			vm.ID, vm.Name(), vm.SinceProgress(), vm.Stats.WatchdogTrips)
	}
	return strings.TrimRight(b.String(), "\n")
}

// traceCmd prints the tail of the flight-recorder event stream.
func (m *Monitor) traceCmd(args []string) string {
	if m.VMM == nil {
		return "no VMM attached (trace needs -vm mode)"
	}
	n := 20
	if len(args) > 0 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 0 {
			return "usage: trace [n]"
		}
		n = v
	}
	rec := m.VMM.Recorder()
	if rec == nil {
		return "flight recorder disabled (boot with -trace)"
	}
	return strings.TrimRight(trace.FormatEvents(rec, n), "\n")
}

// histCmd prints the latency histograms' percentile table.
func (m *Monitor) histCmd() string {
	if m.VMM == nil {
		return "no VMM attached (hist needs -vm mode)"
	}
	return strings.TrimRight(trace.HistTable(m.VMM.Recorder()), "\n")
}

// vmByID finds the attached VMM's VM with the given numeric ID.
func (m *Monitor) vmByID(arg string) (*core.VM, string) {
	id, err := strconv.Atoi(arg)
	if err != nil {
		return nil, "bad vm id " + arg
	}
	for _, vm := range m.VMM.VMs() {
		if vm.ID == id {
			return vm, ""
		}
	}
	return nil, fmt.Sprintf("no vm with id %d", id)
}

// checkpointCmd takes an immediate checkpoint generation of a VM and
// optionally externalizes the stream to a file.
func (m *Monitor) checkpointCmd(args []string) string {
	if m.VMM == nil {
		return "no VMM attached (checkpoint needs -vm mode)"
	}
	if len(args) == 0 {
		return "usage: checkpoint vm [file]"
	}
	vm, errs := m.vmByID(args[0])
	if errs != "" {
		return errs
	}
	if err := m.VMM.CheckpointNow(vm); err != nil {
		return "checkpoint failed: " + err.Error()
	}
	out := fmt.Sprintf("vm%d %s: checkpoint taken (%d generations held)",
		vm.ID, vm.Name(), vm.CheckpointGenerations())
	if len(args) > 1 {
		img, err := m.VMM.Snapshot(vm)
		if err != nil {
			return "checkpoint failed: " + err.Error()
		}
		if err := os.WriteFile(args[1], img, 0o644); err != nil {
			return "checkpoint write failed: " + err.Error()
		}
		out += fmt.Sprintf(", %d bytes written to %s", len(img), args[1])
	}
	return out
}

// restoreCmd creates a new VM from an externalized checkpoint stream.
func (m *Monitor) restoreCmd(args []string) string {
	if m.VMM == nil {
		return "no VMM attached (restore needs -vm mode)"
	}
	if len(args) == 0 {
		return "usage: restore file [name]"
	}
	img, err := os.ReadFile(args[0])
	if err != nil {
		return "restore failed: " + err.Error()
	}
	name := ""
	if len(args) > 1 {
		name = args[1]
	}
	vm, err := m.VMM.Restore(name, img)
	if err != nil {
		return "restore failed: " + err.Error()
	}
	return fmt.Sprintf("vm%d %s: restored from %s (%d bytes)",
		vm.ID, vm.Name(), args[0], len(img))
}

// recoverCmd shows and controls the recovery supervisor.
func (m *Monitor) recoverCmd(args []string) string {
	if m.VMM == nil {
		return "no VMM attached (recover needs -vm mode)"
	}
	if len(args) == 0 {
		cfg := m.VMM.Config()
		var b strings.Builder
		if cfg.Recover {
			fmt.Fprintf(&b, "supervisor armed, budget %d recoveries per VM\n", cfg.RecoverBudget)
		} else {
			b.WriteString("supervisor disarmed\n")
		}
		if cfg.CheckpointEvery > 0 {
			fmt.Fprintf(&b, "checkpoint every %d ticks, ring of %d generations\n",
				cfg.CheckpointEvery, cfg.CheckpointGenerations)
		} else {
			b.WriteString("periodic checkpoints off\n")
		}
		for _, vm := range m.VMM.VMs() {
			s := vm.Stats
			fmt.Fprintf(&b, "vm%d %s: %d generations  checkpoints %d  recoveries %d  fallbacks %d  escalations %d\n",
				vm.ID, vm.Name(), vm.CheckpointGenerations(),
				s.Checkpoints, s.Recoveries, s.RecoveryFallbacks, s.RecoveryEscalations)
		}
		return strings.TrimRight(b.String(), "\n")
	}
	switch args[0] {
	case "on":
		budget := 0
		if len(args) > 1 {
			v, err := strconv.Atoi(args[1])
			if err != nil || v < 0 {
				return "usage: recover on [budget]"
			}
			budget = v
		}
		m.VMM.SetRecovery(true, budget)
		return fmt.Sprintf("supervisor armed, budget %d recoveries per VM", m.VMM.Config().RecoverBudget)
	case "off":
		m.VMM.SetRecovery(false, 0)
		return "supervisor disarmed"
	case "every":
		if len(args) < 2 {
			return "usage: recover every n [gens]"
		}
		every, err := strconv.ParseUint(args[1], 0, 64)
		if err != nil {
			return "usage: recover every n [gens]"
		}
		gens := 0
		if len(args) > 2 {
			v, err := strconv.Atoi(args[2])
			if err != nil || v < 0 {
				return "usage: recover every n [gens]"
			}
			gens = v
		}
		m.VMM.SetCheckpointPolicy(every, gens)
		cfg := m.VMM.Config()
		if cfg.CheckpointEvery == 0 {
			return "periodic checkpoints off"
		}
		return fmt.Sprintf("checkpoint every %d ticks, ring of %d generations",
			cfg.CheckpointEvery, cfg.CheckpointGenerations)
	}
	vm, errs := m.vmByID(args[0])
	if errs != "" {
		return errs
	}
	if err := m.VMM.RecoverNow(vm); err != nil {
		return "recover failed: " + err.Error()
	}
	return fmt.Sprintf("vm%d %s: recovered (%d recoveries, %d fallbacks)",
		vm.ID, vm.Name(), vm.Stats.Recoveries, vm.Stats.RecoveryFallbacks)
}

func (m *Monitor) stat() string {
	c := m.CPU
	s := c.Stats
	u := c.MMU.Stats
	out := fmt.Sprintf(
		"instructions %d  cycles %d\nexceptions %d  interrupts %d  vm-traps %d  priv-traps %d\nchm %d  rei %d  movpsl %d  probe %d\ntlb %d/%d hit/miss  tnv %d  prot %d  modify %d  m-sets %d\ndecode %d/%d hit/miss  invalidations %d  fast-xlate %d\n",
		s.Instructions, c.Cycles, s.Exceptions, s.Interrupts, s.VMTraps, s.PrivTraps,
		s.CHMs, s.REIs, s.MOVPSLs, s.Probes,
		u.TLBHits, u.TLBMisses, u.TNVFaults, u.ProtFaults, u.ModifyFaults, u.MSets,
		s.DecodeHits, s.DecodeMisses, s.DecodeInvalidations, u.FastTranslations)
	if c.TranslationEnabled() {
		out += fmt.Sprintf("sblock: builds %d  enters %d  steps %d  early-exits %d  invalidations %d\n",
			s.SBBuilds, s.SBEnters, s.SBSteps, s.SBEarlyExits, s.SBInvalidations)
	}
	if m.VMM == nil {
		return out
	}
	ks := m.VMM.Stats
	out += fmt.Sprintf("shadow-pool %d/%d hit/miss\n", ks.ShadowPoolHits, ks.ShadowPoolMisses)
	if nominal := m.VMM.NominalPages(); nominal > 0 {
		out += fmt.Sprintf("pages: carved %d  nominal %d  backing %d\n",
			m.VMM.CarvedPages(), nominal, m.VMM.Mem.Pages())
	}
	for _, vm := range m.VMM.VMs() {
		vs := vm.Stats
		if vs.SharedPages == 0 && vs.COWBreaks == 0 && vs.PrivatePages == 0 {
			continue // never took part in cloning: fully resident
		}
		nominal := uint64(vm.MemSize / vax.PageSize)
		resident := vm.ResidentPages()
		out += fmt.Sprintf("vm%d %s: resident %d/%d pages (%d%%)  shared %d  private %d  cow-breaks %d\n",
			vm.ID, vm.Name(), resident, nominal, resident*100/nominal,
			vs.SharedPages, vs.PrivatePages, vs.COWBreaks)
	}
	for _, vm := range m.VMM.VMs() {
		vs := vm.Stats
		if vs.FillBatches == 0 && vs.BatchFills == 0 && vs.SlowPathAllocs == 0 {
			continue
		}
		width := float64(0)
		if vs.FillBatches > 0 {
			// +1 counts the demand fill that anchored each batch.
			width = float64(vs.BatchFills)/float64(vs.FillBatches) + 1
		}
		out += fmt.Sprintf("vm%d %s: fill-batches %d  batched-ptes %d  avg-width %.1f  slow-allocs %d\n",
			vm.ID, vm.Name(), vs.FillBatches, vs.BatchFills, width, vs.SlowPathAllocs)
	}
	if pr := m.VMM.LastParallelRun(); pr.VMs > 0 {
		out += fmt.Sprintf(
			"parallel: %d workers  %d vms  steps %d  instrs %d\nsched: dispatches %d  steals %d  parks %d  wakes %d  idle-wakes %d  max-queue %d\n",
			pr.Workers, pr.VMs, pr.Steps, pr.Instrs,
			pr.Dispatches, pr.Steals, pr.Parks, pr.Wakes, pr.IdleWakes, pr.MaxQueueDepth)
		out += fmt.Sprintf("parallel: worker-steps %d min / %d max  occupancy %d%%  decode %d/%d hit/miss\n",
			pr.MinWorkerSteps, pr.MaxWorkerSteps, pr.OccupancyPermille()/10,
			pr.DecodeHits, pr.DecodeMisses)
		if pr.SBBuilds > 0 || pr.SBEnters > 0 {
			out += fmt.Sprintf("parallel: sb-builds %d  sb-enters %d  sb-steps %d  sb-invalidations %d\n",
				pr.SBBuilds, pr.SBEnters, pr.SBSteps, pr.SBInvalidations)
		}
	}
	return out
}
