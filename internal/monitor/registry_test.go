package monitor

import (
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
)

// newFleetMonitor builds a fully-equipped monitor: VMM, fleet manager,
// and one live stamp VM (id 0) as the golden image.
func newFleetMonitor(t *testing.T) (*Monitor, *fleet.Manager) {
	t.Helper()
	k := core.New(64<<20, core.Config{})
	mgr := fleet.NewManager(k, fleet.Config{})
	if _, err := mgr.Create(fleet.Spec{Name: "golden", Workload: "stamp"}); err != nil {
		t.Fatal(err)
	}
	m := New(k.CPU)
	m.VMM = k
	m.Fleet = mgr
	return m, mgr
}

// TestEveryCommandRoundTrips drives each registered command through
// args→handler→JSON render: dispatch must succeed with representative
// args and the JSON rendering must marshal.
func TestEveryCommandRoundTrips(t *testing.T) {
	m, _ := newFleetMonitor(t)

	// Representative args per command. The sequence is registry order,
	// so fleet commands see the VMs earlier commands created: setup
	// made vm0 (golden), create adds vm1, clone 0 adds vm2.
	argsFor := map[string][]string{
		"step": {"2"}, "continue": {"10"}, "mem": {"0x80000000"},
		"del": {"0x1000"}, "checkpoint": {"0"},
		"create": {"rt", "compute"}, "clone": {"0"}, "halt": {"2"},
		"snapshot": {"0"}, "destroy": {"2"}, "console": {"0"}, "feed": {"0", "hi"},
		"stat": {"0"},
	}

	seen := 0
	for _, c := range Commands() {
		res, err := m.Dispatch(c.Name, argsFor[c.Name])
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		body := res.JSON
		if body == nil {
			body = map[string]string{"text": res.Text}
		}
		if _, err := json.Marshal(body); err != nil {
			t.Fatalf("%s: JSON render: %v", c.Name, err)
		}
		if res.Quit() != (c.Name == "quit") {
			t.Fatalf("%s: quit = %v", c.Name, res.Quit())
		}
		seen++
	}
	if seen < 20 {
		t.Fatalf("only %d commands registered", seen)
	}

	// Aliases resolve to the same command, and unknown names are typed
	// errors whose REPL text keeps the historical wording.
	if Lookup("vms") != Lookup("fleet") || Lookup("s") != Lookup("step") {
		t.Fatal("alias lookup broken")
	}
	if _, err := m.Dispatch("bogus", nil); err == nil {
		t.Fatal("unknown command dispatched")
	} else if !strings.Contains(err.Error(), `unknown command "bogus"`) {
		t.Fatalf("unknown command error = %v", err)
	}
}

// TestGuardsWithoutFleet pins the typed rejection of fleet commands on
// a monitor with no manager attached.
func TestGuardsWithoutFleet(t *testing.T) {
	k := core.New(16<<20, core.Config{})
	m := New(k.CPU)
	m.VMM = k
	for _, cmd := range []string{"fleet", "create", "clone 0", "halt 0", "snapshot 0", "destroy 0", "console 0", "quota"} {
		out, quit := m.Execute(cmd)
		if quit || !strings.Contains(out, "no fleet manager attached") {
			t.Errorf("%q = %q", cmd, out)
		}
	}
	// stat still works fleet-less (the classic machine dump)…
	if out, _ := m.Execute("stat"); !strings.Contains(out, "instructions") {
		t.Errorf("stat = %q", out)
	}
	// …but its per-VM form needs the manager.
	if out, _ := m.Execute("stat 0"); !strings.Contains(out, "no fleet manager attached") {
		t.Errorf("stat 0 = %q", out)
	}
}

// TestHelpListsFleetCommands keeps help in sync with the registry.
func TestHelpListsFleetCommands(t *testing.T) {
	m, _ := newFleetMonitor(t)
	out, _ := m.Execute("help")
	for _, want := range []string{"step", "break", "snapshot <vm>", "clone <vm>", "quota", "fault seed n [vm]", "recover every n [gens]"} {
		if !strings.Contains(out, want) {
			t.Errorf("help missing %q", want)
		}
	}
}

// TestReplAndHTTPParity requires the REPL and HTTP surfaces to return
// identical results for stat, snapshot and halt: both dispatch through
// the registry, so the JSON the API returns must equal the JSON the
// REPL's Result carries. Two identical clones on an undriven machine
// make the comparison exact.
func TestReplAndHTTPParity(t *testing.T) {
	m, mgr := newFleetMonitor(t)
	c1, err := mgr.CloneVM(0, "twin-a", "")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := mgr.CloneVM(0, "twin-b", "")
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	srv := newTestServer(t, m, &mu)

	stripIdentity := func(v fleet.VMInfo) fleet.VMInfo {
		v.ID, v.Name = 0, ""
		return v
	}

	// stat: REPL result for twin-a vs HTTP result for twin-b.
	res, err := m.Dispatch("stat", []string{itoa(c1.ID)})
	if err != nil {
		t.Fatal(err)
	}
	var httpInfo fleet.VMInfo
	srv.getJSON(t, "/v1/vms/"+itoa(c2.ID), &httpInfo)
	if stripIdentity(res.JSON.(fleet.VMInfo)) != stripIdentity(httpInfo) {
		t.Fatalf("stat parity: repl=%+v http=%+v", res.JSON, httpInfo)
	}

	// snapshot: same source, undriven machine — byte-identical streams.
	res, err = m.Dispatch("snapshot", []string{"0"})
	if err != nil {
		t.Fatal(err)
	}
	replSnap := res.JSON.(fleet.SnapInfo)
	var httpSnap fleet.SnapInfo
	srv.postJSON(t, "/v1/vms/0/snapshot", nil, &httpSnap)
	if replSnap.Bytes != httpSnap.Bytes || replSnap.VM != httpSnap.VM || replSnap.Tenant != httpSnap.Tenant {
		t.Fatalf("snapshot parity: repl=%+v http=%+v", replSnap, httpSnap)
	}

	// halt: one twin per surface, identical outcomes.
	res, err = m.Dispatch("halt", []string{itoa(c1.ID)})
	if err != nil {
		t.Fatal(err)
	}
	replHalt := res.JSON.(fleet.VMInfo)
	var httpHalt fleet.VMInfo
	srv.postJSON(t, "/v1/vms/"+itoa(c2.ID)+"/halt", nil, &httpHalt)
	if replHalt.State != "halted" || stripIdentity(replHalt) != stripIdentity(httpHalt) {
		t.Fatalf("halt parity: repl=%+v http=%+v", replHalt, httpHalt)
	}
}

// TestQuotaErrorsOnBothSurfaces: a quota breach is the same typed
// failure on the REPL (code in the text) and over HTTP (status + code).
func TestQuotaErrorsOnBothSurfaces(t *testing.T) {
	m, _ := newFleetMonitor(t)
	var mu sync.Mutex
	srv := newTestServer(t, m, &mu)

	if out, _ := m.Execute("quota capped 1 0 0"); !strings.Contains(out, "capped") {
		t.Fatalf("quota set = %q", out)
	}
	if out, _ := m.Execute("create first stamp capped"); !strings.Contains(out, "created") {
		t.Fatalf("create = %q", out)
	}

	// REPL: the typed code leads the error text.
	out, _ := m.Execute("create second stamp capped")
	if !strings.Contains(out, "quota_exceeded") || !strings.Contains(out, "vm limit 1") {
		t.Fatalf("REPL breach = %q", out)
	}

	// HTTP: 429 with the same stable code.
	status, body := srv.post(t, "/v1/vms", `{"workload":"stamp","tenant":"capped"}`)
	if status != 429 {
		t.Fatalf("HTTP breach status = %d (%s)", status, body)
	}
	var e struct {
		Error   string `json:"error"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatal(err)
	}
	if e.Error != "quota_exceeded" || !strings.Contains(e.Message, "vm limit 1") {
		t.Fatalf("HTTP breach body = %+v", e)
	}

	// An unrelated tenant admits fine on both surfaces.
	if out, _ := m.Execute("create ok stamp other"); !strings.Contains(out, "created") {
		t.Fatalf("neighbor create = %q", out)
	}
	if status, body := srv.post(t, "/v1/vms", `{"tenant":"other"}`); status != 200 {
		t.Fatalf("neighbor HTTP create = %d (%s)", status, body)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
