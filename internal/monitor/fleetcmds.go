package monitor

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fleet"
	"repro/internal/trace"
)

// Fleet-facing command handlers: each parses REPL-style string args,
// calls one fleet.Manager method, and renders both a text line and the
// JSON the HTTP surface returns — so the two surfaces cannot drift.

// parseVM parses a numeric VM id argument.
func parseVM(arg string) (int, error) {
	id, err := strconv.Atoi(arg)
	if err != nil {
		return 0, fleet.BadRequest("bad vm id %s", arg)
	}
	return id, nil
}

// vmLine is the one-line text rendering of a VMInfo.
func vmLine(v fleet.VMInfo) string {
	state := v.State
	if v.HaltMsg != "" {
		state += " (" + v.HaltMsg + ")"
	}
	return fmt.Sprintf("vm%d %s: tenant=%s workload=%s %s  mem=%dKB  ticks=%d  cycles=%d  resident=%d  console=%dB",
		v.ID, v.Name, v.Tenant, v.Workload, state, v.MemKB, v.Ticks, v.Cycles, v.ResidentPages, v.ConsoleLen)
}

// statCmd keeps the classic machine statistics dump, gains a per-VM
// form (stat <vm>) with a fleet attached, and renders JSON as the full
// counter snapshot the /metrics.json exporter uses.
func statCmd(m *Monitor, args []string) (Result, error) {
	if len(args) > 0 {
		if m.Fleet == nil {
			return Result{}, fleet.Conflict("no fleet manager attached (stat <vm> needs a fleet-serving vaxmon)")
		}
		id, err := parseVM(args[0])
		if err != nil {
			return Result{}, err
		}
		info, err := m.Fleet.Stat(id)
		if err != nil {
			return Result{}, err
		}
		return Result{Text: vmLine(info), JSON: info}, nil
	}
	return Result{Text: m.stat(), JSON: trace.CaptureAll(m.Sources()...)}, nil
}

// restoreCmd creates a new VM from a stored fleet snapshot id, or —
// the classic form — from an externalized checkpoint file on disk.
// Snapshot-id-shaped sources (s<seq>) resolve through the fleet store,
// so a missing one is a typed 404 rather than a file-open failure.
func restoreCmd(m *Monitor, args []string) (Result, error) {
	if len(args) == 0 {
		return Result{Text: "usage: restore src [name]"}, nil
	}
	if m.Fleet != nil && isSnapID(args[0]) {
		name := ""
		if len(args) > 1 {
			name = args[1]
		}
		info, err := m.Fleet.Restore(args[0], name)
		if err != nil {
			return Result{}, err
		}
		return Result{
			Text: fmt.Sprintf("vm%d %s: restored from snapshot %s (tenant %s)",
				info.ID, info.Name, args[0], info.Tenant),
			JSON: info,
		}, nil
	}
	return Result{Text: m.restoreCmd(args)}, nil
}

// isSnapID reports whether src has the fleet snapshot-id shape (s0,
// s17, ...), distinguishing it from a checkpoint file path.
func isSnapID(src string) bool {
	if len(src) < 2 || src[0] != 's' {
		return false
	}
	for _, r := range src[1:] {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

func fleetCmd(m *Monitor, _ []string) (Result, error) {
	sum := m.Fleet.Summary()
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d vms (%d live)  free-pages %d  carved %d  nominal %d  snapshots %d\n",
		len(sum.VMs), sum.Live, sum.FreePages, sum.CarvedPages, sum.NominalPages, sum.Snapshots)
	for _, v := range sum.VMs {
		b.WriteString(vmLine(v))
		b.WriteByte('\n')
	}
	for _, t := range sum.Tenants {
		fmt.Fprintf(&b, "tenant %s: %d live vms  %d pages  %d cycles  quota{vms %d, pages %d, cycles %d}",
			t.Name, t.VMs, t.Pages, t.Cycles, t.Quota.MaxVMs, t.Quota.MaxPages, t.Quota.MaxCycles)
		if t.Exhausted {
			b.WriteString("  EXHAUSTED")
		}
		b.WriteByte('\n')
	}
	return Result{Text: strings.TrimRight(b.String(), "\n"), JSON: sum}, nil
}

func createCmd(m *Monitor, args []string) (Result, error) {
	spec := fleet.Spec{}
	if len(args) > 0 {
		spec.Name = args[0]
	}
	if len(args) > 1 {
		spec.Workload = args[1]
	}
	if len(args) > 2 {
		spec.Tenant = args[2]
	}
	info, err := m.Fleet.Create(spec)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Text: fmt.Sprintf("vm%d %s: created (%s, tenant %s)", info.ID, info.Name, info.Workload, info.Tenant),
		JSON: info,
	}, nil
}

func cloneCmd(m *Monitor, args []string) (Result, error) {
	if len(args) == 0 {
		return Result{Text: "usage: clone <vm> [name] [tenant]"}, nil
	}
	id, err := parseVM(args[0])
	if err != nil {
		return Result{}, err
	}
	name, tenant := "", ""
	if len(args) > 1 {
		name = args[1]
	}
	if len(args) > 2 {
		tenant = args[2]
	}
	info, err := m.Fleet.CloneVM(id, name, tenant)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Text: fmt.Sprintf("vm%d %s: cloned from vm%d (tenant %s)", info.ID, info.Name, id, info.Tenant),
		JSON: info,
	}, nil
}

func haltCmd(m *Monitor, args []string) (Result, error) {
	if len(args) == 0 {
		return Result{Text: "usage: halt <vm>"}, nil
	}
	id, err := parseVM(args[0])
	if err != nil {
		return Result{}, err
	}
	info, err := m.Fleet.Halt(id)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Text: fmt.Sprintf("vm%d %s: halted (%s)", info.ID, info.Name, info.HaltMsg),
		JSON: info,
	}, nil
}

func snapshotCmd(m *Monitor, args []string) (Result, error) {
	if len(args) == 0 {
		return Result{Text: "usage: snapshot <vm>"}, nil
	}
	id, err := parseVM(args[0])
	if err != nil {
		return Result{}, err
	}
	snap, err := m.Fleet.Snapshot(id)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Text: fmt.Sprintf("%s: snapshot of vm%d (%d bytes, tenant %s)", snap.ID, snap.VM, snap.Bytes, snap.Tenant),
		JSON: snap,
	}, nil
}

func destroyCmd(m *Monitor, args []string) (Result, error) {
	if len(args) == 0 {
		return Result{Text: "usage: destroy <vm>"}, nil
	}
	id, err := parseVM(args[0])
	if err != nil {
		return Result{}, err
	}
	info, err := m.Fleet.Destroy(id)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Text: fmt.Sprintf("vm%d %s: destroyed, pages recycled", info.ID, info.Name),
		JSON: info,
	}, nil
}

func consoleCmd(m *Monitor, args []string) (Result, error) {
	if len(args) == 0 {
		return Result{Text: "usage: console <vm> [off]"}, nil
	}
	id, err := parseVM(args[0])
	if err != nil {
		return Result{}, err
	}
	off := -1
	if len(args) > 1 {
		v, err := strconv.Atoi(args[1])
		if err != nil {
			return Result{}, fleet.BadRequest("bad console offset %s", args[1])
		}
		off = v
	}
	chunk, err := m.Fleet.ConsoleRead(id, off)
	if err != nil {
		return Result{}, err
	}
	text := chunk.Data
	if text == "" {
		text = fmt.Sprintf("(no new console output; %d bytes total)", chunk.Next)
	}
	return Result{Text: text, JSON: chunk}, nil
}

func feedCmd(m *Monitor, args []string) (Result, error) {
	if len(args) < 2 {
		return Result{Text: "usage: feed <vm> <text>"}, nil
	}
	id, err := parseVM(args[0])
	if err != nil {
		return Result{}, err
	}
	data := strings.Join(args[1:], " ") + "\n"
	if err := m.Fleet.ConsoleWrite(id, data); err != nil {
		return Result{}, err
	}
	return Result{
		Text: fmt.Sprintf("%d bytes queued for vm%d", len(data), id),
		JSON: map[string]any{"vm": id, "queued": len(data)},
	}, nil
}

func quotaCmd(m *Monitor, args []string) (Result, error) {
	if len(args) == 0 {
		sum := m.Fleet.Summary()
		if len(sum.Tenants) == 0 {
			return Result{Text: "no tenants", JSON: sum.Tenants}, nil
		}
		var b strings.Builder
		for _, t := range sum.Tenants {
			fmt.Fprintf(&b, "tenant %s: quota{vms %d, pages %d, cycles %d}  holds %d vms, %d pages, %d cycles",
				t.Name, t.Quota.MaxVMs, t.Quota.MaxPages, t.Quota.MaxCycles, t.VMs, t.Pages, t.Cycles)
			if t.Exhausted {
				b.WriteString("  EXHAUSTED")
			}
			b.WriteByte('\n')
		}
		return Result{Text: strings.TrimRight(b.String(), "\n"), JSON: sum.Tenants}, nil
	}
	if len(args) != 4 {
		return Result{Text: "usage: quota [tenant maxvms maxpages maxcycles]"}, nil
	}
	maxVMs, err1 := strconv.Atoi(args[1])
	maxPages, err2 := strconv.ParseUint(args[2], 0, 32)
	maxCycles, err3 := strconv.ParseUint(args[3], 0, 64)
	if err1 != nil || err2 != nil || err3 != nil || maxVMs < 0 {
		return Result{}, fleet.BadRequest("bad quota values %v", args[1:])
	}
	q := fleet.Quota{MaxVMs: maxVMs, MaxPages: uint32(maxPages), MaxCycles: maxCycles}
	m.Fleet.SetQuota(args[0], q)
	return Result{
		Text: fmt.Sprintf("tenant %s: quota{vms %d, pages %d, cycles %d}", args[0], q.MaxVMs, q.MaxPages, q.MaxCycles),
		JSON: map[string]any{"tenant": args[0], "quota": q},
	}, nil
}
