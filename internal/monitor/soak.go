package monitor

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/trace"
)

// The soak driver: sustained API-driven VM lifecycles against a real
// in-process HTTP server, exercising the whole stack — client, mux,
// registry dispatch, fleet manager, monitor, page recycling — exactly
// as an external operator would. It reports latency histograms and
// verifies the fleet leaks neither VMs nor pages: after the run, every
// carved page is back in the free pool at the warm-up baseline.

// SoakOptions tunes a soak run.
type SoakOptions struct {
	// Lifecycles is the total clone→snapshot→halt→restore→destroy
	// cycles to run (default 200).
	Lifecycles int
	// Clients is the number of concurrent API clients (default 8).
	Clients int
	// Tenants spreads the clones across n tenants (default 4).
	Tenants int
	// MemMB sizes the monitor's physical memory (default 64).
	MemMB int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// SoakReport is the outcome of a soak run.
type SoakReport struct {
	Lifecycles int
	Restores   int
	Errors     int

	// Latency histograms in microseconds, one per lifecycle phase.
	Clone, Snapshot, Restore, Destroy trace.Hist

	// Leak accounting: free pages at the post-warm-up baseline and
	// after the run, and VMs left beyond the golden image.
	BaselineFree, FinalFree uint32
	LeakedVMs               int
}

// Leaked reports whether the run leaked VMs or pages.
func (r *SoakReport) Leaked() bool {
	return r.LeakedVMs > 0 || r.FinalFree != r.BaselineFree
}

// String renders the report's summary lines.
func (r *SoakReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "soak: %d lifecycles (%d restores), %d errors\n", r.Lifecycles, r.Restores, r.Errors)
	row := func(name string, h *trace.Hist) {
		if h.Count == 0 {
			return
		}
		fmt.Fprintf(&b, "  %-8s n=%-6d p50=%dµs  p95=%dµs  p99=%dµs\n",
			name, h.Count, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	}
	row("clone", &r.Clone)
	row("snapshot", &r.Snapshot)
	row("restore", &r.Restore)
	row("destroy", &r.Destroy)
	fmt.Fprintf(&b, "  pages: baseline-free %d  final-free %d  leaked-vms %d", r.BaselineFree, r.FinalFree, r.LeakedVMs)
	return b.String()
}

// soakClient is one API consumer's view of the server plus its
// goroutine-local latency shards (merged at the end).
type soakClient struct {
	base                              string
	hc                                *http.Client
	clone, snapshot, restore, destroy trace.Hist
	restores, errs                    int
}

func (c *soakClient) call(method, path string, body any) (map[string]any, int, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, 0, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, resp.StatusCode, err
	}
	return out, resp.StatusCode, nil
}

// lifecycle runs one full VM lifecycle over the API: clone the golden
// image, let it run, snapshot it, halt and destroy it, and (when
// withRestore) resurrect the snapshot and destroy that VM too.
func (c *soakClient) lifecycle(golden int, tenant string, withRestore bool) error {
	t0 := time.Now()
	out, status, err := c.call("POST", fmt.Sprintf("/v1/vms/%d/clone", golden),
		map[string]string{"tenant": tenant})
	c.clone.Observe(uint64(time.Since(t0) / time.Microsecond))
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("clone: %v %v", status, out["message"])
	}
	id := int(out["id"].(float64))

	t0 = time.Now()
	out, status, err = c.call("POST", fmt.Sprintf("/v1/vms/%d/snapshot", id), nil)
	c.snapshot.Observe(uint64(time.Since(t0) / time.Microsecond))
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("snapshot vm%d: %v %v", id, status, out["message"])
	}
	snapID, _ := out["id"].(string)

	if out, status, err = c.call("POST", fmt.Sprintf("/v1/vms/%d/halt", id), nil); err != nil {
		return err
	} else if status != http.StatusOK {
		return fmt.Errorf("halt vm%d: %v %v", id, status, out["message"])
	}

	t0 = time.Now()
	out, status, err = c.call("DELETE", fmt.Sprintf("/v1/vms/%d", id), nil)
	c.destroy.Observe(uint64(time.Since(t0) / time.Microsecond))
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("destroy vm%d: %v %v", id, status, out["message"])
	}

	if !withRestore || snapID == "" {
		return nil
	}
	t0 = time.Now()
	out, status, err = c.call("POST", "/v1/snapshots/"+snapID+"/restore", nil)
	c.restore.Observe(uint64(time.Since(t0) / time.Microsecond))
	if err != nil {
		return err
	}
	if status == http.StatusNotFound {
		return nil // snapshot evicted under pressure: not a failure
	}
	if status != http.StatusOK {
		return fmt.Errorf("restore %s: %v %v", snapID, status, out["message"])
	}
	c.restores++
	rid := int(out["id"].(float64))
	if out, status, err = c.call("DELETE", fmt.Sprintf("/v1/vms/%d", rid), nil); err != nil {
		return err
	} else if status != http.StatusOK {
		return fmt.Errorf("destroy restored vm%d: %v %v", rid, status, out["message"])
	}
	return nil
}

// Soak stands up a monitor + fleet + HTTP server and hammers it with
// concurrent API-driven lifecycles. The machine uses the serial engine
// so page accounting is exact; the drive loop keeps guests executing
// between API calls, so clones privatize pages and snapshots capture
// live state.
func Soak(opts SoakOptions) (*SoakReport, error) {
	if opts.Lifecycles <= 0 {
		opts.Lifecycles = 200
	}
	if opts.Clients <= 0 {
		opts.Clients = 8
	}
	if opts.Tenants <= 0 {
		opts.Tenants = 4
	}
	if opts.MemMB <= 0 {
		opts.MemMB = 64
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// Short quanta: the drive loop holds the machine mutex for one
	// quantum at a time, so the quantum bounds every API call's queueing
	// delay — soak latency measures the control plane, not lock tenure.
	k := core.New(uint32(opts.MemMB)<<20, core.Config{})
	mgr := fleet.NewManager(k, fleet.Config{Quantum: 5_000})
	mon := New(k.CPU)
	mon.VMM = k
	mon.Fleet = mgr

	var mu sync.Mutex
	srv := httptest.NewServer(APIHandler(mon, &mu))
	defer srv.Close()
	mgr.Start(&mu)
	defer mgr.Stop()

	golden, err := func() (fleet.VMInfo, error) {
		mu.Lock()
		defer mu.Unlock()
		return mgr.Create(fleet.Spec{Name: "golden", Workload: "stamp"})
	}()
	if err != nil {
		return nil, fmt.Errorf("soak: creating golden image: %w", err)
	}

	// epoch runs the full lifecycle load once: Clients concurrent API
	// consumers splitting Lifecycles cycles, every fourth with a
	// snapshot-restore leg to keep the contiguous-geometry recycling
	// path hot.
	epoch := func() []*soakClient {
		clients := make([]*soakClient, opts.Clients)
		var wg sync.WaitGroup
		perClient := opts.Lifecycles / opts.Clients
		extra := opts.Lifecycles % opts.Clients
		for i := range clients {
			c := &soakClient{base: srv.URL, hc: srv.Client()}
			clients[i] = c
			n := perClient
			if i < extra {
				n++
			}
			tenant := fmt.Sprintf("tenant%d", i%opts.Tenants)
			wg.Add(1)
			go func(c *soakClient, n int, tenant string) {
				defer wg.Done()
				for j := 0; j < n; j++ {
					if err := c.lifecycle(golden.ID, tenant, j%4 == 3); err != nil {
						c.errs++
						logf("soak: %v", err)
					}
				}
			}(c, n, tenant)
		}
		wg.Wait()
		return clients
	}

	// Two identical epochs. The first reaches steady state: the bump
	// allocator carves pages on first touch and never un-carves, so
	// FreePages legitimately drops while peak demand is discovered. The
	// second epoch must then run entirely from the recycled-run pool —
	// any further FreePages drop is a real page leak, and any VM beyond
	// the golden image is a lifecycle leak.
	warm := epoch()

	// The warm-up epoch discovers demand by timing: how many restores
	// overlap decides how many contiguous runs get carved, so a lucky
	// schedule can leave the pool short of the worst case. Carve the
	// peak deterministically — every client holding one full-geometry
	// VM at once — and hand the runs back, so the gated epoch can never
	// see a pool miss the warm-up happened to dodge.
	mu.Lock()
	held := make([]int, 0, opts.Clients)
	for i := 0; i < opts.Clients; i++ {
		info, err := mgr.Create(fleet.Spec{Workload: "stamp"})
		if err != nil {
			mu.Unlock()
			return nil, fmt.Errorf("soak: pre-warming run pool: %w", err)
		}
		held = append(held, info.ID)
	}
	for _, id := range held {
		if _, err := mgr.Destroy(id); err != nil {
			mu.Unlock()
			return nil, fmt.Errorf("soak: releasing pre-warm vm%d: %w", id, err)
		}
	}
	baseline := k.FreePages()
	baseVMs := len(k.VMs())
	mu.Unlock()
	logf("soak: warm-up epoch done (%d lifecycles), baseline free pages %d", opts.Lifecycles, baseline)
	clients := epoch()
	mgr.Stop()

	rep := &SoakReport{Lifecycles: 2 * opts.Lifecycles, BaselineFree: baseline}
	for _, c := range warm {
		rep.Restores += c.restores
		rep.Errors += c.errs
	}
	for _, c := range clients {
		rep.Clone.Add(&c.clone)
		rep.Snapshot.Add(&c.snapshot)
		rep.Restore.Add(&c.restore)
		rep.Destroy.Add(&c.destroy)
		rep.Restores += c.restores
		rep.Errors += c.errs
	}
	mu.Lock()
	rep.FinalFree = k.FreePages()
	rep.LeakedVMs = len(k.VMs()) - baseVMs
	mu.Unlock()
	return rep, nil
}
