package vmos_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/vmos"
	"repro/internal/workload"
)

func buildImage(t *testing.T, cfg vmos.Config) *vmos.Image {
	t.Helper()
	im, err := vmos.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func bootBare(t *testing.T, variant cpu.Variant, cfg vmos.Config) *vmos.Machine {
	t.Helper()
	cfg.Target = vmos.TargetBare
	ma, err := vmos.BootBare(buildImage(t, cfg), variant, 64)
	if err != nil {
		t.Fatal(err)
	}
	return ma
}

func runBare(t *testing.T, ma *vmos.Machine, maxSteps uint64) {
	t.Helper()
	if !ma.Run(maxSteps) {
		t.Fatalf("MiniOS did not halt: pc=%#x psl=%s", ma.CPU.PC(), ma.CPU.PSL())
	}
}

func bootVM(t *testing.T, kcfg core.Config, cfg vmos.Config) (*core.VMM, *core.VM, *vmos.Image) {
	t.Helper()
	if cfg.Target == vmos.TargetBare {
		cfg.Target = vmos.TargetVM
	}
	im := buildImage(t, cfg)
	k := core.New(16<<20, kcfg)
	vm, err := vmos.BootVM(k, im, 64)
	if err != nil {
		t.Fatal(err)
	}
	return k, vm, im
}

func runVM(t *testing.T, k *core.VMM, vm *core.VM, maxSteps uint64) {
	t.Helper()
	k.Run(maxSteps)
	if h, msg := vm.Halted(); !h {
		t.Fatalf("VM MiniOS did not halt: pc=%#x vmpsl=%s", k.CPU.PC(), k.CPU.VMPSL)
	} else if !strings.Contains(msg, "HALT") {
		t.Fatalf("VM MiniOS died: %s (pc=%#x)", msg, k.CPU.PC())
	}
}

func TestMiniOSBoatloadOfTargetsBuild(t *testing.T) {
	for _, target := range []vmos.Target{vmos.TargetBare, vmos.TargetVM, vmos.TargetVMMMIO} {
		im := buildImage(t, vmos.Config{Target: target, Processes: []vmos.Process{workload.Compute(10)}})
		if len(im.Bytes) != int(vmos.MemBytes) {
			t.Errorf("%s: image size %d", target, len(im.Bytes))
		}
		if im.EntryPC < vmos.KernelVA(vmos.KernelPhys) {
			t.Errorf("%s: entry %#x", target, im.EntryPC)
		}
	}
}

func TestComputeOnStandardBareVAX(t *testing.T) {
	ma := bootBare(t, cpu.StandardVAX, vmos.Config{Processes: []vmos.Process{workload.Compute(500)}})
	runBare(t, ma, 1_000_000)
	if got := ma.ReadCell("syscalls"); got != 1 { // just the exit
		t.Errorf("syscalls = %d", got)
	}
	if ma.ReadCell("ticks") == 0 {
		t.Error("clock never ticked")
	}
}

// TestSameImageRunsOnModifiedBareMachine verifies paper goal 2: a
// standard operating system runs unchanged on the modified real
// machine.
func TestSameImageRunsOnModifiedBareMachine(t *testing.T) {
	cfg := vmos.Config{Processes: []vmos.Process{workload.Compute(500), workload.Syscall(100)}}
	std := bootBare(t, cpu.StandardVAX, cfg)
	runBare(t, std, 5_000_000)
	mod := bootBare(t, cpu.ModifiedVAX, cfg)
	runBare(t, mod, 5_000_000)
	for _, cell := range []string{"syscalls", "switches", "faults"} {
		if std.ReadCell(cell) != mod.ReadCell(cell) {
			t.Errorf("%s differs: standard=%d modified=%d",
				cell, std.ReadCell(cell), mod.ReadCell(cell))
		}
	}
	// The modified machine must not take VM-emulation traps outside VMs.
	if mod.CPU.Stats.VMTraps != 0 {
		t.Errorf("VM traps on bare modified machine: %d", mod.CPU.Stats.VMTraps)
	}
}

// TestSameWorkloadRunsInVM is paper goal 3: the OS runs in the virtual
// VAX with only a driver change, producing identical computational
// results.
func TestSameWorkloadRunsInVM(t *testing.T) {
	procs := []vmos.Process{workload.Compute(500), workload.Syscall(200)}
	bare := bootBare(t, cpu.StandardVAX, vmos.Config{Processes: procs})
	runBare(t, bare, 10_000_000)

	k, vm, im := bootVM(t, core.Config{}, vmos.Config{Target: vmos.TargetVM, Processes: procs})
	runVM(t, k, vm, 50_000_000)

	if b, v := bare.ReadCell("syscalls"), vmos.ReadVMCell(vm, im, "syscalls"); b != v {
		t.Errorf("syscalls differ: bare=%d vm=%d", b, v)
	}
	// The Compute process publishes its result at UserDataVA; compare
	// through the first process's data frame.
	dataPhys := vmos.UserPhys + vmos.UserCodePages*512
	bareVal, _ := bare.CPU.Mem.LoadLong(dataPhys)
	vmVal := ReadVMCellAt(vm, dataPhys)
	if bareVal != vmVal {
		t.Errorf("compute result differs: bare=%#x vm=%#x", bareVal, vmVal)
	}
}

func ReadVMCellAt(vm *core.VM, phys uint32) uint32 {
	dump := vm.DumpMemory()
	if dump == nil || int(phys)+4 > len(dump) {
		return 0
	}
	return uint32(dump[phys]) | uint32(dump[phys+1])<<8 |
		uint32(dump[phys+2])<<16 | uint32(dump[phys+3])<<24
}

func TestConsoleOutputBareAndVM(t *testing.T) {
	procs := []vmos.Process{workload.Edit(5)}
	bare := bootBare(t, cpu.StandardVAX, vmos.Config{Processes: procs})
	runBare(t, bare, 10_000_000)
	if got := bare.Console.Output(); got != "....." {
		t.Errorf("bare console %q", got)
	}
	k, vm, _ := bootVM(t, core.Config{}, vmos.Config{Target: vmos.TargetVM, Processes: procs})
	runVM(t, k, vm, 50_000_000)
	if got := vm.ConsoleOutput(); got != "....." {
		t.Errorf("vm console %q", got)
	}
}

func TestDiskRoundTripBare(t *testing.T) {
	procs := []vmos.Process{workload.TP(4, 8)}
	ma := bootBare(t, cpu.StandardVAX, vmos.Config{Processes: procs})
	runBare(t, ma, 20_000_000)
	if got := ma.ReadCell("ioops"); got != 8 { // 4 txns x (read+write)
		t.Errorf("ioops = %d", got)
	}
	if ma.Disk.Reads != 4 || ma.Disk.Writes != 4 {
		t.Errorf("disk reads=%d writes=%d", ma.Disk.Reads, ma.Disk.Writes)
	}
	// Each transaction increments 16 longwords in its block; blocks
	// cycle 0..3 here, so block 0 longword 0 ends at 1.
	v := uint32(ma.Disk.Image()[0]) | uint32(ma.Disk.Image()[1])<<8
	if v != 1 {
		t.Errorf("block 0 field = %d", v)
	}
}

func TestDiskRoundTripVMKCALL(t *testing.T) {
	procs := []vmos.Process{workload.TP(4, 8)}
	k, vm, im := bootVM(t, core.Config{}, vmos.Config{Target: vmos.TargetVM, Processes: procs})
	runVM(t, k, vm, 50_000_000)
	if got := vmos.ReadVMCell(vm, im, "ioops"); got != 8 {
		t.Errorf("ioops = %d", got)
	}
	if vm.Disk().Reads != 4 || vm.Disk().Writes != 4 {
		t.Errorf("vdisk reads=%d writes=%d", vm.Disk().Reads, vm.Disk().Writes)
	}
	if vm.Stats.KCALLs < 8 {
		t.Errorf("KCALLs = %d", vm.Stats.KCALLs)
	}
}

func TestDiskRoundTripVMMMIO(t *testing.T) {
	procs := []vmos.Process{workload.TP(2, 4)}
	k, vm, im := bootVM(t, core.Config{MMIOEmulatedIO: true},
		vmos.Config{Target: vmos.TargetVMMMIO, Processes: procs})
	runVM(t, k, vm, 50_000_000)
	if got := vmos.ReadVMCell(vm, im, "ioops"); got != 4 {
		t.Errorf("ioops = %d", got)
	}
	if vm.Stats.MMIOEmuls == 0 {
		t.Error("no MMIO emulations counted")
	}
	// Many more traps per I/O than the KCALL interface (Section 4.4.3).
	if vm.Stats.MMIOEmuls < 4*5 {
		t.Errorf("MMIOEmuls = %d, want >= 20", vm.Stats.MMIOEmuls)
	}
}

func TestDemandPagingBareAndVM(t *testing.T) {
	procs := []vmos.Process{workload.PageStress(3, true)}
	bare := bootBare(t, cpu.StandardVAX, vmos.Config{Processes: procs})
	runBare(t, bare, 20_000_000)
	// 16 data pages, faulted once each on first touch.
	if got := bare.ReadCell("faults"); got != 16 {
		t.Errorf("bare faults = %d", got)
	}
	k, vm, im := bootVM(t, core.Config{}, vmos.Config{Target: vmos.TargetVM, Processes: procs})
	runVM(t, k, vm, 50_000_000)
	if got := vmos.ReadVMCell(vm, im, "faults"); got != 16 {
		t.Errorf("vm faults = %d", got)
	}
	if vm.Stats.ShadowFills == 0 {
		t.Error("no shadow fills recorded")
	}
}

func TestMultiprocessRoundRobin(t *testing.T) {
	procs := []vmos.Process{
		workload.PageStress(4, false),
		workload.PageStress(4, false),
		workload.PageStress(4, false),
	}
	ma := bootBare(t, cpu.StandardVAX, vmos.Config{Processes: procs})
	runBare(t, ma, 20_000_000)
	if got := ma.ReadCell("switches"); got < 12 {
		t.Errorf("switches = %d", got)
	}
	if got := ma.ReadCell("alive"); got != 0 {
		t.Errorf("alive = %d", got)
	}
}

func TestPreemptiveScheduling(t *testing.T) {
	// Two compute-bound processes with no voluntary yields still both
	// finish under preemption.
	procs := []vmos.Process{workload.Compute(20000), workload.Compute(20000)}
	ma := bootBare(t, cpu.StandardVAX, vmos.Config{Processes: procs, Preempt: true})
	runBare(t, ma, 50_000_000)
	if got := ma.ReadCell("switches"); got == 0 {
		t.Error("no preemptive switches")
	}
	// Both published results (frames differ per process).
	p0, _ := ma.CPU.Mem.LoadLong(vmos.UserPhys + vmos.UserCodePages*512)
	p1, _ := ma.CPU.Mem.LoadLong(vmos.UserPhys + vmos.UserStride + vmos.UserCodePages*512)
	if p0 == 0 || p0 != p1 {
		t.Errorf("results %#x %#x", p0, p1)
	}
}

func TestKernelPreludeIPL(t *testing.T) {
	ma := bootBare(t, cpu.StandardVAX, vmos.Config{
		KernelPrelude: workload.KernelIPL(100),
		NoClock:       true,
	})
	runBare(t, ma, 1_000_000)
	// Prelude with no processes ends in HALT.
	if ma.CPU.Reason != cpu.HaltInstruction {
		t.Errorf("reason = %d", ma.CPU.Reason)
	}
}

func TestKernelPreludeIPLInVM(t *testing.T) {
	k, vm, _ := bootVM(t, core.Config{}, vmos.Config{
		Target:        vmos.TargetVM,
		KernelPrelude: workload.KernelIPL(100),
		NoClock:       true,
	})
	runVM(t, k, vm, 10_000_000)
	if vm.Stats.MTPRIPL != 200 {
		t.Errorf("MTPRIPL = %d, want 200", vm.Stats.MTPRIPL)
	}
}

func TestUptimeSyscall(t *testing.T) {
	// A process that spins until uptime advances, on both targets.
	spin := vmos.Process{Source: `
loop:	chmk #7              ; uptime
	tstl r0
	beql loop
	chmk #0
`}
	ma := bootBare(t, cpu.StandardVAX, vmos.Config{Processes: []vmos.Process{spin}})
	runBare(t, ma, 20_000_000)
	if ma.ReadCell("ticks") == 0 {
		t.Error("bare ticks = 0")
	}
	k, vm, im := bootVM(t, core.Config{}, vmos.Config{Target: vmos.TargetVM, Processes: []vmos.Process{spin}})
	runVM(t, k, vm, 50_000_000)
	if vmos.ReadVMCell(vm, im, "vmtime") == 0 {
		t.Error("VMM did not maintain the uptime cell")
	}
}

func TestAccessViolationKillsProcess(t *testing.T) {
	// A process writing its read-only code page dies; a sibling
	// finishes normally.
	bad := vmos.Process{Source: `
	movl #1, @#0         ; code page is UR: access violation
	chmk #0
`}
	procs := []vmos.Process{bad, workload.Compute(100)}
	ma := bootBare(t, cpu.StandardVAX, vmos.Config{Processes: procs})
	runBare(t, ma, 10_000_000)
	if got := ma.ReadCell("alive"); got != 0 {
		t.Errorf("alive = %d", got)
	}
}

func TestProbeLoopWorkload(t *testing.T) {
	procs := []vmos.Process{workload.ProbeLoop(200)}
	ma := bootBare(t, cpu.StandardVAX, vmos.Config{Processes: procs})
	runBare(t, ma, 10_000_000)
	if ma.CPU.Stats.Probes < 200 {
		t.Errorf("probes = %d", ma.CPU.Stats.Probes)
	}
	k, vm, _ := bootVM(t, core.Config{}, vmos.Config{Target: vmos.TargetVM, Processes: procs})
	runVM(t, k, vm, 50_000_000)
	// PROBE completes in microcode once the shadow PTE is valid: the
	// VMM sees at most a handful of fills, not one per probe.
	if vm.Stats.ProbeFills > 5 {
		t.Errorf("ProbeFills = %d, PROBE not using microcode path", vm.Stats.ProbeFills)
	}
}

func TestMOVPSLWorkloadNeverTrapsInVM(t *testing.T) {
	procs := []vmos.Process{workload.MOVPSLLoop(500)}
	k, vm, _ := bootVM(t, core.Config{}, vmos.Config{Target: vmos.TargetVM, Processes: procs})
	before := vm.Stats.VMTraps
	runVM(t, k, vm, 50_000_000)
	if k.CPU.Stats.MOVPSLs < 500 {
		t.Errorf("MOVPSLs = %d", k.CPU.Stats.MOVPSLs)
	}
	_ = before
	// Every VM trap must be attributable to something other than
	// MOVPSL; the loop itself adds none beyond the syscall/HALT paths.
	if vm.Stats.VMTraps > 60 {
		t.Errorf("VMTraps = %d — MOVPSL appears to trap", vm.Stats.VMTraps)
	}
}

func TestMixWorkloadRunsEverywhere(t *testing.T) {
	procs := workload.Mix(3, 2, 8)
	bare := bootBare(t, cpu.StandardVAX, vmos.Config{Processes: procs, Preempt: true})
	runBare(t, bare, 100_000_000)
	k, vm, im := bootVM(t, core.Config{}, vmos.Config{Target: vmos.TargetVM, Processes: procs, Preempt: true})
	runVM(t, k, vm, 200_000_000)
	if b, v := bare.ReadCell("ioops"), vmos.ReadVMCell(vm, im, "ioops"); b != v {
		t.Errorf("ioops differ: %d vs %d", b, v)
	}
	// Preemption interleaves processes differently on the two machines;
	// the set of characters written must nonetheless match.
	count := func(s string) (dots, stars int) {
		for _, r := range s {
			switch r {
			case '.':
				dots++
			case '*':
				stars++
			}
		}
		return
	}
	bd, bs := count(bare.Console.Output())
	vd, vs := count(vm.ConsoleOutput())
	if bd != vd || bs != vs {
		t.Errorf("console output differs: %q vs %q", bare.Console.Output(), vm.ConsoleOutput())
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := vmos.Build(vmos.Config{Processes: make([]vmos.Process, 11)}); err == nil {
		t.Error("11 processes should fail")
	}
	if _, err := vmos.Build(vmos.Config{Processes: []vmos.Process{{Source: "bogus"}}}); err == nil {
		t.Error("bad user source should fail")
	}
	im := buildImage(t, vmos.Config{Target: vmos.TargetVM})
	if _, err := vmos.BootBare(im, cpu.StandardVAX, 8); err == nil {
		t.Error("VM image must not boot bare")
	}
	bareIm := buildImage(t, vmos.Config{Target: vmos.TargetBare})
	k := core.New(8<<20, core.Config{})
	if _, err := vmos.BootVM(k, bareIm, 8); err == nil {
		t.Error("bare image must not boot in a VM")
	}
}

// TestSoftwareModifyBits exercises footnote 9: the base-architecture
// modify-fault option, with MiniOS maintaining PTE<M> in software.
func TestSoftwareModifyBits(t *testing.T) {
	procs := []vmos.Process{workload.PageStress(3, false)}
	ma := bootBare(t, cpu.StandardVAX, vmos.Config{
		Processes:          procs,
		SoftwareModifyBits: true,
	})
	runBare(t, ma, 20_000_000)
	// Each of the 16 data pages starts with PTE<M> clear: one modify
	// fault per page on the first write, none after.
	if got := ma.ReadCell("mfaults"); got < 16 || got > 20 {
		t.Errorf("software modify faults = %d, want ~16", got)
	}
	if ma.CPU.MMU.Stats.ModifyFaults == 0 {
		t.Error("MMU recorded no modify faults")
	}
	if ma.CPU.MMU.Stats.MSets != 0 {
		t.Errorf("hardware still set M bits %d times", ma.CPU.MMU.Stats.MSets)
	}

	// The same image with the option off: hardware sets M, no faults.
	ma2 := bootBare(t, cpu.StandardVAX, vmos.Config{Processes: procs})
	runBare(t, ma2, 20_000_000)
	if got := ma2.ReadCell("mfaults"); got != 0 {
		t.Errorf("modify faults without opt-in: %d", got)
	}
	if ma2.CPU.MMU.Stats.MSets == 0 {
		t.Error("hardware M-setting not observed")
	}
	// Both runs compute the same result.
	p0, _ := ma.CPU.Mem.LoadLong(vmos.UserPhys + vmos.UserCodePages*512)
	p1, _ := ma2.CPU.Mem.LoadLong(vmos.UserPhys + vmos.UserCodePages*512)
	if p0 != p1 {
		t.Errorf("results differ: %#x vs %#x", p0, p1)
	}
}

// TestConsoleInput drives the getc path on both targets.
func TestConsoleInput(t *testing.T) {
	echo := vmos.Process{Source: `
loop:	chmk #2              ; getc
	tstl r0
	beql done            ; 0 = no more input
	movl r0, r1
	chmk #1              ; putc (echo)
	brb loop
done:	chmk #0
`}
	ma := bootBare(t, cpu.StandardVAX, vmos.Config{Processes: []vmos.Process{echo}})
	ma.Console.Feed("abc")
	runBare(t, ma, 10_000_000)
	if got := ma.Console.Output(); got != "abc" {
		t.Errorf("bare echo %q", got)
	}

	k, vm, _ := bootVM(t, core.Config{}, vmos.Config{Target: vmos.TargetVM, Processes: []vmos.Process{echo}})
	vm.FeedConsole("xyz")
	runVM(t, k, vm, 10_000_000)
	if got := vm.ConsoleOutput(); got != "xyz" {
		t.Errorf("vm echo %q", got)
	}
}

// TestCallHeavyUsesP1Stack runs the CALLS/RET recursion workload whose
// frames live on the P1 user stack, bare and in a VM.
func TestCallHeavyUsesP1Stack(t *testing.T) {
	procs := []vmos.Process{workload.CallHeavy(20, 10)}
	bare := bootBare(t, cpu.StandardVAX, vmos.Config{Processes: procs})
	runBare(t, bare, 20_000_000)
	dataPhys := vmos.UserPhys + vmos.UserCodePages*512
	want, _ := bare.CPU.Mem.LoadLong(dataPhys)
	if want != 3628800 { // 10!
		t.Fatalf("bare result %d, want 10!", want)
	}

	k, vm, _ := bootVM(t, core.Config{}, vmos.Config{Target: vmos.TargetVM, Processes: procs})
	runVM(t, k, vm, 100_000_000)
	if got := ReadVMCellAt(vm, dataPhys); got != want {
		t.Errorf("vm result %d, want %d", got, want)
	}
	// The frames lived in P1: its shadow took fills.
	if vm.Stats.ShadowFills == 0 {
		t.Error("no shadow fills at all")
	}
}

// TestSleepAndIdleWAIT: a sleeping guest's idle loop gives the
// processor back with the WAIT handshake on the virtual VAX (paper
// Section 5), while the same image simply spins on the bare machine.
func TestSleepAndIdleWAIT(t *testing.T) {
	sleeper := vmos.Process{Source: `
	movl #3, r1
	chmk #9              ; sleep 3 ticks
	chmk #7              ; uptime
	movl r0, @#0x800     ; publish wake time
	chmk #0
`}
	// Bare machine: sleeps via the spinning idle loop.
	ma := bootBare(t, cpu.StandardVAX, vmos.Config{Processes: []vmos.Process{sleeper}})
	runBare(t, ma, 50_000_000)
	woke, _ := ma.CPU.Mem.LoadLong(vmos.UserPhys + vmos.UserCodePages*512)
	if woke < 3 {
		t.Errorf("bare sleeper woke at tick %d", woke)
	}

	// Virtual VAX: the idle loop executes WAIT, observed by the VMM.
	k, vm, _ := bootVM(t, core.Config{WaitTimeout: 4},
		vmos.Config{Target: vmos.TargetVM, Processes: []vmos.Process{sleeper}})
	runVM(t, k, vm, 50_000_000)
	if vm.Stats.Waits == 0 {
		t.Error("guest idle loop never used the WAIT handshake")
	}
	if vmWoke := ReadVMCellAt(vm, vmos.UserPhys+vmos.UserCodePages*512); vmWoke < 3 {
		t.Errorf("vm sleeper woke at tick %d", vmWoke)
	}
}

// TestSleeperSharesWithWorker: while one process sleeps, another runs.
func TestSleeperSharesWithWorker(t *testing.T) {
	procs := []vmos.Process{
		{Source: "\tmovl #5, r1\n\tchmk #9\n\tchmk #0"}, // sleeper
		workload.Compute(2000),
	}
	k, vm, im := bootVM(t, core.Config{}, vmos.Config{Target: vmos.TargetVM, Processes: procs})
	runVM(t, k, vm, 100_000_000)
	if got := vmos.ReadVMCell(vm, im, "alive"); got != 0 {
		t.Errorf("alive = %d", got)
	}
}

// TestGoldenImagePin: the memoized Build image is the golden source
// fleets of clones copy from; mutating its shared bytes must be caught
// at the next Build rather than silently corrupting later machines.
func TestGoldenImagePin(t *testing.T) {
	cfg := vmos.Config{Target: vmos.TargetVM,
		Processes: []vmos.Process{{Source: "\tchmk #0"}}, NoClock: true}
	im := buildImage(t, cfg)
	if im.Fingerprint() == 0 {
		t.Fatal("built image carries no pin")
	}
	if err := im.VerifyPinned(); err != nil {
		t.Fatalf("pristine image fails verification: %v", err)
	}
	again := buildImage(t, cfg)
	if again != im {
		t.Fatal("second Build did not hit the memo cache")
	}
	im.Bytes[vmos.KernelPhys] ^= 0xFF
	defer func() { im.Bytes[vmos.KernelPhys] ^= 0xFF }()
	if err := im.VerifyPinned(); err == nil {
		t.Error("mutated image passes verification")
	}
	if _, err := vmos.Build(cfg); err == nil {
		t.Error("Build handed out a mutated golden image")
	}
}
