// Package vmos is MiniOS, a miniature VAX operating system in the role
// the paper gives VMS and ULTRIX-32: a guest that uses the privileged
// architecture — four access modes, CHMK system calls, REI, per-process
// P0 address spaces, demand paging, an interval clock and a disk driver
// — and runs unchanged on the standard VAX, on the modified VAX, and
// inside a virtual VAX. Only its device drivers differ between the bare
// and virtual targets, "no more changes than would be expected for any
// new VAX model" (paper Section 1, goals).
//
// The kernel is real VAX machine code assembled by internal/asm from a
// template parameterized by target and process set.
package vmos

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strings"
	"sync"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/vax"
)

// Target selects the device drivers linked into the kernel.
type Target int

const (
	// TargetBare drives the console through the console IPRs, the disk
	// through its memory-mapped CSRs at 0x20000000, and counts uptime
	// from clock interrupts. For standard or modified bare machines.
	TargetBare Target = iota
	// TargetVM uses the virtual VAX interface: KCALL start-I/O for
	// console and disk, and the VMM-maintained uptime cell (Section 5).
	TargetVM
	// TargetVMMMIO runs in a VM but drives the disk through emulated
	// memory-mapped registers — the expensive baseline of Section 4.4.3.
	TargetVMMMIO
)

func (t Target) String() string {
	switch t {
	case TargetVM:
		return "virtual VAX (KCALL I/O)"
	case TargetVMMMIO:
		return "virtual VAX (emulated MMIO)"
	}
	return "bare machine"
}

// Physical layout (identical in bare-physical and VM-physical terms).
const (
	SCBPhys    uint32 = 0x0000
	SPTPhys    uint32 = 0x0200 // 1024 PTEs -> ends 0x1200
	SPTEntries uint32 = 1024
	PTabPhys   uint32 = 0x1400 // P0 page tables, 64 PTEs (256 B) per process
	KernelPhys uint32 = 0x2000 // kernel code + data
	KBufPhys   uint32 = 0x8200 // disk bounce buffer (one block)
	PCBPhys    uint32 = 0x8400 // process control blocks
	PCBStride  uint32 = 128    // bytes reserved per PCB (96 used)
	BootKSP    uint32 = 0xA000 // boot-time kernel stack top
	KStackArea uint32 = 0xA000 // process i kernel stack top = KStackArea + (i+1)*0x400
	UserPhys   uint32 = 0x10000
	UserStride uint32 = 0x4000 // per-process user memory
	MemBytes   uint32 = 0x40000

	// Per-process user address space: code and data in P0, the user
	// stack in the P1 control region with its own per-process page
	// table, as VMS arranges things.
	UserCodePages  = 4 // P0 pages 0..3, read-only
	UserDataPage   = 4 // P0 pages 4..19, read/write
	UserDataPages  = 16
	UserP0Len      = 64
	UserDataVA     = UserDataPage * vax.PageSize
	UserStackPages = 16 // P1 pages 0..15 (8 KB stack)
	UserP1Len      = UserStackPages
	UserStackTop   = vax.P1Base + UserStackPages*vax.PageSize

	// P1TabPhys holds the per-process P1 page tables (64 bytes each).
	P1TabPhys uint32 = 0x8A00

	// DiskSPage is the S page mapped at the disk controller's frame on
	// the MMIO targets.
	DiskSPage uint32 = 1000

	// BareDiskCSR is the physical CSR window on the bare machine.
	BareDiskCSR uint32 = 0x20000000
	// VMDiskCSR is the VM-physical window of the virtual controller.
	VMDiskCSR uint32 = 0x00F00000

	// ClockPeriod is the bare-machine interval timer period in cycles.
	ClockPeriod = 5000
)

// KernelVA converts a kernel physical address to its S-space address.
func KernelVA(phys uint32) uint32 { return vax.SystemBase + phys }

// System call numbers (CHMK codes).
const (
	SysExit      = 0
	SysPutc      = 1 // r1 = character
	SysGetc      = 2 // result r0
	SysYield     = 3
	SysDiskRead  = 4 // r1 = block, r2 = user buffer va (512 bytes)
	SysDiskWrite = 5
	SysGetPid    = 6 // result r0
	SysUptime    = 7 // result r0 (ticks)
	SysFaults    = 8 // result r0: cumulative page-fault count
	SysSleep     = 9 // r1 = clock ticks to sleep
)

// Process describes one user-mode program.
type Process struct {
	// Source is a user-mode assembly program, assembled at P0 address
	// 0. It must finish with "chmk #0" (exit). Data lives at UserDataVA;
	// the stack top is UserStackTop. R6/R7 are clobbered by system
	// calls.
	Source string
	// DemandPaging leaves the data pages invalid so first touches page
	// fault into the kernel.
	DemandPaging bool
}

// Config describes a MiniOS instance.
type Config struct {
	Target    Target
	Processes []Process
	// Preempt makes the clock handler round-robin user processes.
	Preempt bool
	// KernelPrelude is assembly run once in kernel mode at boot, before
	// processes start (used for kernel-path experiments such as the
	// MTPR-to-IPL loop).
	KernelPrelude string
	// NoClock leaves the interval timer off (pure CPU experiments).
	NoClock bool
	// SoftwareModifyBits opts the bare machine into the base-architecture
	// modify fault (paper footnote 9): the kernel maintains PTE<M>
	// itself through a modify-fault handler. Bare targets only — inside
	// a VM the VMM already virtualizes PTE<M> transparently.
	SoftwareModifyBits bool
}

// Image is a built MiniOS memory image.
type Image struct {
	Config Config
	Bytes  []byte
	Kernel *asm.Program
	// EntryPC is the kernel entry point (an S-space address).
	EntryPC uint32
	// pin fingerprints Bytes at build time. The memoized image is the
	// golden source that every boot — and, through COW cloning, whole
	// fleets of VMs — copies from; a caller scribbling on the shared
	// slice would silently corrupt every machine built after it. The
	// pin makes that detectable instead.
	pin uint32
}

// Fingerprint returns the golden image's build-time content hash.
func (im *Image) Fingerprint() uint32 { return im.pin }

// VerifyPinned recomputes the image fingerprint and reports drift: a
// non-nil error means some caller mutated the shared golden bytes after
// Build memoized them.
func (im *Image) VerifyPinned() error {
	if got := crc32.Checksum(im.Bytes, crcTable); got != im.pin {
		return fmt.Errorf("vmos: golden image mutated since build (pin %#x, now %#x)",
			im.pin, got)
	}
	return nil
}

// crcTable backs the golden-image pin (Castagnoli: hardware-assisted
// on the hosts that matter, and collision behavior is irrelevant here —
// the pin detects accidental mutation, not adversaries).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Symbol returns the S-space address of a kernel symbol.
func (im *Image) Symbol(name string) uint32 { return im.Kernel.MustSymbol(name) }

// CellPhys returns the physical address of a kernel data cell.
func (im *Image) CellPhys(name string) uint32 {
	return im.Kernel.MustSymbol(name) - vax.SystemBase
}

// ReadCell reads a kernel data cell out of a memory dump of the
// instance (bare physical or VM physical).
func (im *Image) ReadCell(memory []byte, name string) uint32 {
	return binary.LittleEndian.Uint32(memory[im.CellPhys(name):])
}

// buildCache memoizes assembled images. The experiment harness builds
// the same handful of MiniOS configurations over and over (the fault
// campaign boots one three-VM machine per seed, the benchmarks one per
// iteration), and assembling the kernel dominated the harness's
// allocation profile. A cached image is safe to share: BootBare copies
// Bytes into physical memory with StoreBytes and the VMM's CreateVM
// copies them into VM memory, so no caller mutates an Image after
// Build returns.
var buildCache = struct {
	mu sync.Mutex
	m  map[string]*Image
}{m: make(map[string]*Image)}

// Build assembles a MiniOS image (memoized per Config). A cache hit
// re-verifies the golden image's pin before handing it out, so a caller
// that mutated the shared bytes is caught at the next Build instead of
// corrupting every machine booted afterward.
func Build(cfg Config) (*Image, error) {
	key := fmt.Sprintf("%+v", cfg)
	buildCache.mu.Lock()
	im := buildCache.m[key]
	buildCache.mu.Unlock()
	if im != nil {
		if err := im.VerifyPinned(); err != nil {
			return nil, err
		}
		return im, nil
	}
	im, err := build(cfg)
	if err != nil {
		return nil, err
	}
	im.pin = crc32.Checksum(im.Bytes, crcTable)
	buildCache.mu.Lock()
	buildCache.m[key] = im
	buildCache.mu.Unlock()
	return im, nil
}

func build(cfg Config) (*Image, error) {
	n := len(cfg.Processes)
	if n > 10 {
		return nil, fmt.Errorf("vmos: at most 10 processes (%d requested)", n)
	}
	src := kernelSource(cfg)
	prog, err := asm.Assemble(src, KernelVA(KernelPhys))
	if err != nil {
		return nil, fmt.Errorf("vmos kernel: %w", err)
	}
	if prog.End() >= KernelVA(KBufPhys) {
		return nil, fmt.Errorf("vmos: kernel too large (%#x)", prog.End())
	}
	img := make([]byte, MemBytes)
	putLong := func(at, v uint32) { binary.LittleEndian.PutUint32(img[at:], v) }

	// System page table: identity map every RAM page; the disk window
	// page on MMIO targets; everything else no-access.
	ramPages := MemBytes / vax.PageSize
	for i := uint32(0); i < SPTEntries; i++ {
		pte := vax.NewPTE(false, vax.ProtNA, false, 0)
		if i < ramPages {
			// Kernel-write, user-read would hide kernel data from user
			// probes; MiniOS protects S space kernel-write/kernel-read
			// except the console-visible areas. URKW lets user code
			// read (for PROBE experiments) but not write.
			pte = vax.NewPTE(true, vax.ProtURKW, true, i)
		}
		if i == DiskSPage && cfg.Target != TargetVM {
			base := BareDiskCSR
			if cfg.Target == TargetVMMMIO {
				base = VMDiskCSR
			}
			pte = vax.NewPTE(true, vax.ProtKW, true, base/vax.PageSize)
		}
		putLong(SPTPhys+4*i, uint32(pte))
	}

	// SCB vectors.
	vecs := map[vax.Vector]string{
		vax.VecModifyFault:   "mf_h",
		vax.VecCHMK:          "chmk_h",
		vax.VecTransNotValid: "pf_h",
		vax.VecAccessViol:    "av_h",
		vax.VecPrivInstr:     "bad_h",
		vax.VecRsvdOperand:   "bad_h",
		vax.VecRsvdAddrMode:  "bad_h",
		vax.VecArithmetic:    "bad_h",
		vax.VecBreakpoint:    "bad_h",
		vax.VecMachineCheck:  "bad_h",
		vax.VecClock:         "clk_h",
		vax.VecDisk:          "dsk_h",
	}
	for vec, label := range vecs {
		putLong(uint32(vec), prog.MustSymbol(label))
	}

	copy(img[KernelPhys:], prog.Code)

	// Per-process structures.
	for i, p := range cfg.Processes {
		uprog, err := asm.Assemble(p.Source, 0)
		if err != nil {
			return nil, fmt.Errorf("vmos process %d: %w", i, err)
		}
		ubase := UserPhys + uint32(i)*UserStride
		if uint32(len(uprog.Code)) > UserCodePages*vax.PageSize {
			return nil, fmt.Errorf("vmos process %d: code too large", i)
		}
		copy(img[ubase:], uprog.Code)

		// P0 page table: code and data.
		pt := PTabPhys + uint32(i)*256
		codeFrame := ubase / vax.PageSize
		dataFrame := codeFrame + UserCodePages
		stackFrame := dataFrame + UserDataPages
		for pg := 0; pg < UserP0Len; pg++ {
			pte := vax.NewPTE(false, vax.ProtNA, false, 0)
			switch {
			case pg < UserCodePages:
				pte = vax.NewPTE(true, vax.ProtUR, true, codeFrame+uint32(pg))
			case pg >= UserDataPage && pg < UserDataPage+UserDataPages:
				// Data pages start with PTE<M> clear, as a paging OS
				// would leave them: the first write is what the modify
				// fault machinery (Section 4.4.2) tracks.
				pte = vax.NewPTE(!p.DemandPaging, vax.ProtUW, false,
					dataFrame+uint32(pg-UserDataPage))
			}
			putLong(pt+uint32(4*pg), uint32(pte))
		}
		// P1 page table: the user stack.
		p1t := P1TabPhys + uint32(i)*64
		for pg := 0; pg < UserP1Len; pg++ {
			pte := vax.NewPTE(true, vax.ProtUW, false, stackFrame+uint32(pg))
			putLong(p1t+uint32(4*pg), uint32(pte))
		}

		// Initialize the process control block: empty kernel stack,
		// user stack at its top, user entry PC 0 with a user PSL, the
		// process's P0 map. LDPCTX pushes PC/PSL on the kernel stack
		// and REI enters the process.
		pcb := PCBPhys + uint32(i)*PCBStride
		kspTop := KStackArea + uint32(i+1)*0x400
		putLong(pcb+cpu.PCBKSP, KernelVA(kspTop))
		putLong(pcb+cpu.PCBESP, KernelVA(kspTop-0x80))
		putLong(pcb+cpu.PCBSSP, KernelVA(kspTop-0x100))
		putLong(pcb+cpu.PCBUSP, UserStackTop)
		putLong(pcb+cpu.PCBPC, 0)
		putLong(pcb+cpu.PCBPSL, uint32(vax.PSL(0).WithCur(vax.User).WithPrv(vax.User)))
		putLong(pcb+cpu.PCBP0BR, KernelVA(pt))
		putLong(pcb+cpu.PCBP0LR, UserP0Len)
		putLong(pcb+cpu.PCBP1BR, KernelVA(p1t))
		putLong(pcb+cpu.PCBP1LR, UserP1Len)
	}

	return &Image{
		Config:  cfg,
		Bytes:   img,
		Kernel:  prog,
		EntryPC: prog.MustSymbol("start"),
	}, nil
}

// kernelSource renders the kernel template for cfg.
func kernelSource(cfg Config) string {
	n := len(cfg.Processes)
	var b strings.Builder
	p := func(format string, args ...interface{}) {
		fmt.Fprintf(&b, format+"\n", args...)
	}

	diskCSR := KernelVA(DiskSPage * vax.PageSize)
	// The scheduler's clock: the bare machine counts its own timer
	// interrupts; a virtual VAX must read the VMM-maintained uptime
	// cell instead (Section 5, "Time": interrupts arrive only while the
	// VM runs, so counting them undercounts).
	nowCell := "ticks"
	if cfg.Target != TargetBare {
		nowCell = "vmtime"
	}

	p("; MiniOS kernel — generated for target %s, %d processes", cfg.Target, n)
	p("diskcsr = %#x", diskCSR)
	p("kbuf = %#x", KernelVA(KBufPhys))
	p("ptab0 = %#x", KernelVA(PTabPhys))

	// --- data cells ---
	p("\tbrw start")
	p("\t.align 4")
	p("ticks:\t.long 0")
	p("vmtime:\t.long 0          ; uptime cell maintained by the VMM")
	p("curproc:\t.long 0")
	p("alive:\t.long %d", n)
	p("faults:\t.long 0")
	p("switches:\t.long 0")
	p("syscalls:\t.long 0")
	p("mfaults:\t.long 0")
	p("ioops:\t.long 0")
	p("ptab_pcbb:")
	for i := 0; i < n; i++ {
		// PCBB holds the physical address of the process control block.
		p("\t.long %#x", PCBPhys+uint32(i)*PCBStride)
	}
	if n == 0 {
		p("\t.long 0")
	}
	p("ptab_alive:")
	for i := 0; i < n; i++ {
		p("\t.long 1")
	}
	if n == 0 {
		p("\t.long 0")
	}
	p("ptab_wake:")
	for i := 0; i < n; i++ {
		p("\t.long 0")
	}
	if n == 0 {
		p("\t.long 0")
	}

	// --- boot ---
	p("\t.align 4")
	p("start:")
	if cfg.Target != TargetBare {
		// Register the uptime cell with the VMM (Section 5, "Time").
		p("\tmovl #%d, r0", 6 /* KCallSetUptime */)
		p("\tmovl #vmtime-%#x, r1 ; cell's VM-physical address", vax.SystemBase)
		p("\tmtpr #0, #201")
	}
	if !cfg.NoClock {
		if cfg.Target == TargetBare {
			p("\tmtpr #%d, #25       ; NICR = -period", -ClockPeriod&0xFFFFFFFF)
			p("\tmtpr #0x51, #24     ; ICCS: run | transfer | interrupt enable")
		} else {
			p("\tmtpr #0x41, #24     ; virtual clock: run | interrupt enable")
		}
	}
	if cfg.KernelPrelude != "" {
		p("; --- kernel prelude workload ---")
		p(cfg.KernelPrelude)
		p("; --- end prelude ---")
	}
	if n == 0 {
		p("\thalt")
	} else {
		// Enter the first process: schednext advances curproc first.
		p("\tmovl #%d, @#curproc", n-1)
		p("\tjmp @#schednext")
	}

	// --- scheduler: pick the next alive process and LDPCTX into it.
	// Context switching is done with LDPCTX/SVPCTX, as VMS does; in a
	// VM this is what lets the VMM's multi-process shadow-table cache
	// (Section 7.2) preserve a suspended process's shadow PTEs.
	p("\t.align 4")
	p("schednext:")
	p("\ttstl @#alive")
	p("\tbneq sn1")
	p("\thalt                 ; all processes exited")
	p("sn1:\tmovl @#curproc, r6")
	p("\tmovl #%d, r10        ; candidates left this scan", n)
	p("sn2:\tincl r6")
	p("\tcmpl r6, #%d", n)
	p("\tblss sn3")
	p("\tclrl r6")
	p("sn3:\tashl #2, r6, r7")
	p("\tmoval @#ptab_alive, r8")
	p("\taddl2 r7, r8")
	p("\tblbc (r8), sn4       ; skip dead processes")
	p("\tmoval @#ptab_wake, r8")
	p("\taddl2 r7, r8")
	p("\tmovl @#%s, r9", nowCell)
	p("\tcmpl r9, (r8)")
	p("\tbgequ snfound        ; awake: now >= wake time")
	p("sn4:\tsobgtr r10, sn2")
	// Everyone alive is sleeping: idle. A virtual VAX gives the
	// processor back with the WAIT handshake (Section 5); the bare
	// machine spins until the interval timer advances the clock.
	if cfg.Target != TargetBare {
		p("\twait                 ; idle: let the VMM run someone else")
	} else {
		p("\tnop                  ; idle: wait for a clock interrupt")
	}
	p("\tbrb sn1")
	p("snfound:")
	p("\tmovl r6, @#curproc")
	p("\tincl @#switches")
	p("\tmoval @#ptab_pcbb, r8")
	p("\taddl2 r7, r8")
	p("\tmtpr (r8), #16       ; PCBB")
	p("\tldpctx               ; load registers, stacks, P0 map")
	p("\trei                  ; resume where the process left off")

	// --- CHMK system call dispatcher ---
	p("\t.align 4")
	p("chmk_h:")
	p("\tmtpr #2, #18         ; block rescheduling, as VMS raises IPL")
	p("\tincl @#syscalls")
	p("\tmovl (sp)+, r7       ; syscall code")
	p("\tbneq s_not0")
	p("\tjmp @#sys_exit")
	p("s_not0:")
	p("\tcmpl r7, #%d", SysPutc)
	p("\tbneq s_n1")
	p("\tjmp @#sys_putc")
	p("s_n1:\tcmpl r7, #%d", SysGetc)
	p("\tbneq s_n2")
	p("\tjmp @#sys_getc")
	p("s_n2:\tcmpl r7, #%d", SysYield)
	p("\tbneq s_n3")
	p("\tjmp @#sys_yield")
	p("s_n3:\tcmpl r7, #%d", SysDiskRead)
	p("\tbneq s_n4")
	p("\tjmp @#sys_dread")
	p("s_n4:\tcmpl r7, #%d", SysDiskWrite)
	p("\tbneq s_n5")
	p("\tjmp @#sys_dwrite")
	p("s_n5:\tcmpl r7, #%d", SysGetPid)
	p("\tbneq s_n6")
	p("\tmovl @#curproc, r0")
	p("\trei")
	p("s_n6:\tcmpl r7, #%d", SysUptime)
	p("\tbneq s_n7")
	if cfg.Target == TargetBare {
		p("\tmovl @#ticks, r0")
	} else {
		p("\tmovl @#vmtime, r0    ; the VMM-maintained cell, not counted interrupts")
	}
	p("\trei")
	p("s_n7:\tcmpl r7, #%d", SysFaults)
	p("\tbneq s_n8")
	p("\tmovl @#faults, r0")
	p("\trei")
	p("s_n8:\tcmpl r7, #%d", SysSleep)
	p("\tbneq s_bad")
	p("\tjmp @#sys_sleep")
	p("s_bad:\thalt              ; unknown system call")

	// --- exit ---
	p("\t.align 4")
	p("sys_exit:")
	p("\tdecl @#alive")
	p("\tmovl @#curproc, r6")
	p("\tashl #2, r6, r7")
	p("\tmoval @#ptab_alive, r8")
	p("\taddl2 r7, r8")
	p("\tclrl (r8)")
	p("\tjmp @#schednext")

	// --- sleep: record the wake time, then yield the processor ---
	p("\t.align 4")
	p("sys_sleep:")
	p("\tmovl @#curproc, r6")
	p("\tashl #2, r6, r7")
	p("\tmoval @#ptab_wake, r8")
	p("\taddl2 r7, r8")
	p("\taddl3 @#%s, r1, r9", nowCell)
	p("\tmovl r9, (r8)        ; wake at now + r1")
	p("\tjmp @#sys_yield")

	// --- yield: SVPCTX captures the full context into the PCB ---
	p("\t.align 4")
	p("sys_yield:")
	p("\tsvpctx               ; consumes the trap PC/PSL from the stack")
	p("\tjmp @#schednext")

	// --- console ---
	p("\t.align 4")
	p("sys_putc:")
	if cfg.Target == TargetBare {
		p("\tmtpr r1, #35         ; TXDB")
	} else {
		p("\tmovl #1, r0")
		p("\tmtpr #0, #201        ; KCALL console put")
	}
	p("\trei")
	p("\t.align 4")
	p("sys_getc:")
	if cfg.Target == TargetBare {
		p("\tmfpr #33, r0         ; RXDB")
	} else {
		p("\tmovl #2, r0")
		p("\tmtpr #0, #201")
		p("\tmovl r1, r0")
	}
	p("\trei")

	// --- disk: r1 = block, r2 = user buffer va ---
	// The kernel probes the user buffer as the caller (the classic
	// PROBE pattern of Section 3.2.2), transfers through the bounce
	// buffer, and copies in the user's address space.
	p("\t.align 4")
	p("sys_dread:")
	p("\tincl @#ioops")
	p("\tprobew #3, #512, (r2)")
	p("\tbneq drd_ok")
	p("\tmnegl #1, r0")
	p("\trei")
	p("drd_ok:")
	diskReadOp(&b, cfg.Target, false)
	// copy kbuf -> user buffer
	p("\tmoval @#kbuf, r6")
	p("\tmovl r2, r7")
	p("\tmovl #128, r8")
	p("drd_cp:\tmovl (r6)+, (r7)+")
	p("\tsobgtr r8, drd_cp")
	p("\tclrl r0")
	p("\trei")

	p("\t.align 4")
	p("sys_dwrite:")
	p("\tincl @#ioops")
	p("\tprober #3, #512, (r2)")
	p("\tbneq dwr_ok")
	p("\tmnegl #1, r0")
	p("\trei")
	p("dwr_ok:")
	// copy user buffer -> kbuf
	p("\tmovl r2, r6")
	p("\tmoval @#kbuf, r7")
	p("\tmovl #128, r8")
	p("dwr_cp:\tmovl (r6)+, (r7)+")
	p("\tsobgtr r8, dwr_cp")
	diskReadOp(&b, cfg.Target, true)
	p("\tclrl r0")
	p("\trei")

	// --- page fault: validate the preloaded PTE ---
	p("\t.align 4")
	p("pf_h:")
	p("\tincl @#faults")
	p("\tmovl (sp)+, r6       ; fault parameter")
	p("\tmovl (sp)+, r7       ; faulting va")
	p("\tcmpl r7, #0x40000000")
	p("\tbgequ pf_bad          ; only P0 demand pages expected")
	p("\tashl #-9, r7, r8     ; vpn")
	p("\tashl #2, r8, r8")
	p("\tmfpr #8, r9          ; P0BR")
	p("\taddl2 r8, r9")
	p("\tbisl2 #0x80000000, (r9) ; set PTE<V>")
	p("\tmtpr r7, #58         ; TBIS")
	p("\trei")
	p("pf_bad:\thalt")

	// --- access violation: kill the offending process ---
	p("\t.align 4")
	p("av_h:")
	p("\tmovl (sp)+, r6")
	p("\tmovl (sp)+, r7")
	p("\tmovl 4(sp), r8       ; saved PSL")
	p("\tashl #-24, r8, r8")
	p("\tbicl2 #0xFFFFFFFC, r8")
	p("\tcmpl r8, #3")
	p("\tbeql av_user")
	p("\tjmp @#bad_h          ; kernel-mode AV is a kernel bug")
	p("av_user:")
	p("\tjmp @#sys_exit       ; kill the process")

	// --- clock ---
	p("\t.align 4")
	p("clk_h:")
	p("\tincl @#ticks")
	if cfg.Target == TargetBare {
		p("\tmtpr #0xD1, #24      ; ack, keep run|transfer|IE")
	} else {
		p("\tmtpr #0xC1, #24      ; ack virtual clock")
	}
	if cfg.Preempt && n > 1 {
		// Preempt only if the interrupt arrived in user mode; an
		// interrupted kernel path must get its registers back intact.
		p("\tpushl r6")
		p("\tmovl 8(sp), r6       ; interrupted PSL")
		p("\tashl #-24, r6, r6")
		p("\tbicl2 #0xFFFFFFFC, r6")
		p("\tcmpl r6, #3")
		p("\tbneq clk_done")
		p("\taddl2 #4, sp         ; user registers r6-r10 are volatile")
		p("\tjmp @#sys_yield")
		p("clk_done:")
		p("\tmovl (sp)+, r6")
	}
	p("\trei")

	// --- disk completion interrupt (KCALL path): nothing to do ---
	p("\t.align 4")
	p("dsk_h:")
	p("\trei")

	// --- modify fault (base-architecture option, footnote 9): set
	// PTE<M> for the page and retry. Faults arrive with (param, va) on
	// the stack like other memory-management faults.
	p("\t.align 4")
	p("mf_h:")
	p("\tincl @#mfaults")
	p("\tmovl (sp)+, r6       ; fault parameter")
	p("\tmovl (sp)+, r7       ; faulting va")
	p("\tcmpl r7, #0x40000000")
	p("\tbgequ mf_s")
	p("\tashl #-9, r7, r8     ; P0 page: PTE via P0BR")
	p("\tashl #2, r8, r8")
	p("\tmfpr #8, r9")
	p("\taddl2 r8, r9")
	p("\tbisl2 #0x04000000, (r9) ; set PTE<M>")
	p("\tbrb mf_done")
	p("mf_s:\tcmpl r7, #0x80000000")
	p("\tbgequ mf_s2")
	p("\tbicl3 #0x40000000, r7, r8 ; P1: the user stack")
	p("\tashl #-9, r8, r8")
	p("\tashl #2, r8, r8")
	p("\tmfpr #10, r9         ; P1BR")
	p("\taddl2 r8, r9")
	p("\tbisl2 #0x04000000, (r9)")
	p("\tbrb mf_done")
	p("mf_s2:\tbicl3 #0x80000000, r7, r8")
	p("\tashl #-9, r8, r8     ; S page number")
	p("\tashl #2, r8, r8")
	p("\tmfpr #12, r9         ; SBR (physical)")
	p("\taddl2 r8, r9")
	p("\tbisl2 #0x80000000, r9  ; reach the SPT through the identity map")
	p("\tbisl2 #0x04000000, (r9) ; set PTE<M>")
	p("mf_done:")
	p("\tmtpr r7, #58         ; TBIS the page")
	p("\trei")

	// --- fatal ---
	p("\t.align 4")
	p("bad_h:")
	p("\thalt")

	return b.String()
}

// diskReadOp emits the driver sequence moving one block between the
// bounce buffer and the disk: the MMIO register dance on bare/MMIO
// targets, a single KCALL on the virtual VAX (Section 4.4.3).
func diskReadOp(b *strings.Builder, target Target, write bool) {
	p := func(format string, args ...interface{}) {
		fmt.Fprintf(b, format+"\n", args...)
	}
	if target == TargetVM {
		fn := 3
		if write {
			fn = 4
		}
		p("\tmovl r2, r9          ; keep the user buffer address")
		p("\tmovl #%d, r0", fn)
		p("\tmovl #%#x, r2        ; bounce buffer (VM-physical)", KBufPhys)
		p("\tmtpr #0, #201        ; KCALL start-I/O")
		p("\tmovl r9, r2")
		p("\ttstl r0")
		p("\tbeql dk_ok%d", fn)
		p("\tmnegl #2, r0         ; device error")
		p("\trei")
		p("dk_ok%d:", fn)
		return
	}
	fn := uint32(3) // GO | read
	if write {
		fn = 5 // GO | write
	}
	p("\tmovl r1, @#diskcsr+4 ; block register")
	p("\tmovl #%#x, @#diskcsr+8 ; physical buffer", KBufPhys)
	p("\tmovl #512, @#diskcsr+12")
	p("\tmovl #%d, @#diskcsr  ; CSR: go", fn)
	p("dpoll%d:\tmovl @#diskcsr, r6", fn)
	p("\tbitl #0x80, r6       ; ready?")
	p("\tbeql dpoll%d", fn)
}
