package vmos

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dev"
	"repro/internal/mem"
	"repro/internal/vax"
)

// Machine is a bare VAX (standard or modified) booted with MiniOS —
// the role of the console boot path on a real processor.
type Machine struct {
	CPU     *cpu.CPU
	Console *dev.Console
	Clock   *dev.Clock
	Disk    *dev.Disk
	Image   *Image
}

// BootBare loads a MiniOS image on a bare machine of the given variant
// and leaves it ready to Run: mapping on, kernel mode, PC at the kernel
// entry point.
func BootBare(im *Image, variant cpu.Variant, diskBlocks int) (*Machine, error) {
	if im.Config.Target != TargetBare {
		return nil, fmt.Errorf("vmos: image built for %s cannot boot bare", im.Config.Target)
	}
	if diskBlocks <= 0 {
		diskBlocks = 64
	}
	m := mem.New(MemBytes)
	if err := m.StoreBytes(0, im.Bytes); err != nil {
		return nil, err
	}
	c := cpu.New(m, variant)
	ma := &Machine{
		CPU:     c,
		Console: dev.NewConsole(),
		Clock:   dev.NewClock(),
		Disk:    dev.NewDisk(BareDiskCSR, diskBlocks),
		Image:   im,
	}
	c.AddDevice(ma.Console)
	c.AddDevice(ma.Clock)
	c.AddDevice(ma.Disk)

	c.SCBB = SCBPhys
	c.MMU.SBR = SPTPhys
	c.MMU.SLR = SPTEntries
	c.MMU.Enabled = true
	if im.Config.SoftwareModifyBits {
		// Footnote 9: the base-architecture modify-fault option; the
		// kernel's mf_h handler maintains PTE<M>.
		c.EnableModifyFault(true)
	}
	c.SetStackFor(vax.Kernel, KernelVA(BootKSP))
	c.ISP = KernelVA(BootKSP) + 0x200
	c.SetPSL(vax.PSL(0).WithCur(vax.Kernel).WithPrv(vax.Kernel))
	c.SetPC(im.EntryPC)
	return ma, nil
}

// Run executes until the machine halts or maxSteps pass; it reports
// whether the machine halted.
func (ma *Machine) Run(maxSteps uint64) bool {
	ma.CPU.Run(maxSteps)
	return ma.CPU.Halted
}

// Release returns the machine's physical memory to the backing-store
// pool. The experiment harness boots machines by the dozen; recycling
// their memory keeps its steady-state allocation rate flat. Call it
// only after the last ReadCell — afterward every memory access fails.
func (ma *Machine) Release() {
	ma.CPU.Mem.Release(ma.CPU.Mem.Size())
}

// ReadCell reads a kernel data cell from the live machine.
func (ma *Machine) ReadCell(name string) uint32 {
	v, err := ma.CPU.Mem.LoadLong(ma.Image.CellPhys(name))
	if err != nil {
		return 0
	}
	return v
}

// BootVM creates a virtual machine under the given VMM running the
// MiniOS image, pre-booted the same way.
func BootVM(k *core.VMM, im *Image, diskBlocks int) (*core.VM, error) {
	if im.Config.Target == TargetBare {
		return nil, fmt.Errorf("vmos: bare-target image cannot boot in a VM")
	}
	if diskBlocks <= 0 {
		diskBlocks = 64
	}
	vm, err := k.CreateVM(core.VMConfig{
		Name:       "minios",
		MemBytes:   MemBytes,
		Image:      im.Bytes,
		LoadAt:     0,
		StartPC:    im.EntryPC,
		DiskBlocks: diskBlocks,
		PreMapped:  true,
		SBR:        SPTPhys,
		SLR:        SPTEntries,
		SCBB:       SCBPhys,
	})
	if err != nil {
		return nil, err
	}
	vm.SPs[vax.Kernel] = KernelVA(BootKSP)
	vm.ISP = KernelVA(BootKSP) + 0x200
	return vm, nil
}

// ReadVMCell reads a kernel data cell from a running VM.
func ReadVMCell(vm *core.VM, im *Image, name string) uint32 {
	dump := vm.DumpMemory()
	if dump == nil {
		return 0
	}
	return im.ReadCell(dump, name)
}
