package ckpt

import (
	"bytes"
	"testing"
)

// decodeAll drives the full decode surface over arbitrary bytes. Any
// outcome is acceptable except a panic.
func decodeAll(data []byte) {
	secs, err := Sections(bytes.NewReader(data))
	if err != nil {
		return
	}
	// A stream that validates may still carry page payloads; exercise
	// the run-length decoder on them too.
	if pages, ok := secs[SecPages]; ok {
		dst := make([]byte, 64*512)
		_ = UnpackPages(pages, dst, 512)
	}
}

// FuzzCheckpointDecode proves the decoder never panics on arbitrary
// input: every malformation must surface as an error.
func FuzzCheckpointDecode(f *testing.F) {
	// Seed with valid images (raw + compressed) so the fuzzer starts
	// deep inside the format, plus degenerate prefixes.
	var buf bytes.Buffer
	e, _ := NewEncoder(&buf, false)
	_ = e.Section(SecCPU, []byte("cpu"))
	pk, _ := PackPages(make([]byte, 4*512), 512)
	_ = e.Section(SecPages, pk)
	_ = e.Close()
	f.Add(buf.Bytes())

	buf.Reset()
	e, _ = NewEncoder(&buf, true)
	_ = e.Section(SecDevices, bytes.Repeat([]byte("disk"), 200))
	_ = e.Close()
	f.Add(buf.Bytes())

	f.Add([]byte{})
	f.Add([]byte{0x43, 0x58, 0x41, 0x56}) // magic alone
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeAll(data)
	})
}

// TestDecoderByteFlips corrupts every single byte of a valid image in
// turn. The format's guarantee is tighter than "no panic": any
// one-byte flip anywhere must be detected, because every stored byte
// — headers included — is covered by a CRC, the manifest, or the
// magic/version words.
func TestDecoderByteFlips(t *testing.T) {
	for _, compress := range []bool{false, true} {
		img := buildStream(t, compress)
		for i := range img {
			bad := append([]byte(nil), img...)
			bad[i] ^= 0x01
			if _, err := Sections(bytes.NewReader(bad)); err == nil {
				t.Errorf("compress=%v: flip at byte %d/%d decoded without error",
					compress, i, len(img))
			}
		}
	}
}

// TestDecoderBitFlipsAllBits widens the flip test to every bit of a
// small image.
func TestDecoderBitFlipsAllBits(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Section(SecCPU, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	for i := range img {
		for b := 0; b < 8; b++ {
			bad := append([]byte(nil), img...)
			bad[i] ^= 1 << b
			if _, err := Sections(bytes.NewReader(bad)); err == nil {
				t.Fatalf("bit %d of byte %d flipped and decoded without error", b, i)
			}
		}
	}
}
