// Package ckpt implements the durable checkpoint stream format: a
// versioned, sectioned container written over any io.Writer and read
// back from any io.Reader. Each section carries one state domain
// (CPU, MMU, physical pages, devices, console, cycle accounting) with
// its own CRC; the stream ends with a manifest section that
// cross-checks every section seen. The decoder rejects truncation,
// corruption, and unknown versions with typed errors — it never
// panics on arbitrary input.
//
// Wire layout (all fields little-endian u32):
//
//	file header   magic | version
//	section       kind | flags | origLen | rawLen | crc | payload[rawLen]
//	end section   kind=SecEnd, payload = count | (kind, crc) * count
//
// The CRC is IEEE CRC-32 over the 16 leading header bytes followed by
// the stored payload, so a flip anywhere in a section — header or
// body — is detected. flags bit 0 marks a DEFLATE-compressed payload
// (rawLen stored bytes inflate to exactly origLen). After the end
// section the stream must be at EOF; trailing bytes are an error.
package ckpt

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// Magic identifies a checkpoint stream ("VAXC").
	Magic uint32 = 0x56415843
	// Version is the current format version. Decoders reject any
	// other value.
	Version uint32 = 1

	// flagDeflate marks a section payload stored DEFLATE-compressed.
	flagDeflate uint32 = 1 << 0

	// maxSectionBytes caps both the stored and the decompressed size
	// of a single section, so a corrupted length field cannot drive
	// an unbounded allocation.
	maxSectionBytes = 64 << 20

	// maxSections caps the section count so a corrupted stream cannot
	// spin the decoder forever.
	maxSections = 4096

	headerLen  = 8  // magic + version
	sectionLen = 20 // kind + flags + origLen + rawLen + crc
)

// SectionKind identifies one state domain within a checkpoint.
type SectionKind uint32

const (
	SecCPU     SectionKind = 1 // general registers, PC, PSL, stack pointers
	SecMMU     SectionKind = 2 // virtualized mapping registers
	SecPages   SectionKind = 3 // physical pages, zero-run elided
	SecDevices SectionKind = 4 // virtual disk image and controller
	SecConsole SectionKind = 5 // console buffers and interrupt enables
	SecCycles  SectionKind = 6 // cycle and tick accounting

	// SecEnd terminates the stream; its payload is the manifest.
	SecEnd SectionKind = 0xFFFFFFFF
)

func (k SectionKind) String() string {
	switch k {
	case SecCPU:
		return "cpu"
	case SecMMU:
		return "mmu"
	case SecPages:
		return "pages"
	case SecDevices:
		return "devices"
	case SecConsole:
		return "console"
	case SecCycles:
		return "cycles"
	case SecEnd:
		return "end"
	}
	return fmt.Sprintf("kind(%d)", uint32(k))
}

// Typed decode errors. Callers match with errors.Is.
var (
	ErrBadMagic  = errors.New("ckpt: bad magic")
	ErrVersion   = errors.New("ckpt: unsupported format version")
	ErrTruncated = errors.New("ckpt: truncated stream")
	ErrChecksum  = errors.New("ckpt: section checksum mismatch")
	ErrFormat    = errors.New("ckpt: malformed stream")
)

type manifestEntry struct {
	kind SectionKind
	crc  uint32
}

// Encoder writes a checkpoint stream section by section.
type Encoder struct {
	w        io.Writer
	compress bool
	manifest []manifestEntry
	closed   bool
	scratch  [sectionLen]byte
}

// NewEncoder writes the file header and returns an encoder. When
// compress is set, section payloads that shrink under DEFLATE are
// stored compressed.
func NewEncoder(w io.Writer, compress bool) (*Encoder, error) {
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Encoder{w: w, compress: compress}, nil
}

// Section writes one CRC-protected section.
func (e *Encoder) Section(kind SectionKind, payload []byte) error {
	if e.closed {
		return fmt.Errorf("%w: section after Close", ErrFormat)
	}
	if kind == SecEnd {
		return fmt.Errorf("%w: reserved section kind", ErrFormat)
	}
	if len(payload) > maxSectionBytes {
		return fmt.Errorf("%w: section %v exceeds %d bytes", ErrFormat, kind, maxSectionBytes)
	}
	if len(e.manifest) >= maxSections {
		return fmt.Errorf("%w: too many sections", ErrFormat)
	}
	stored := payload
	flags := uint32(0)
	if e.compress && len(payload) > 64 {
		var buf bytes.Buffer
		zw, err := flate.NewWriter(&buf, flate.DefaultCompression)
		if err != nil {
			return err
		}
		if _, err := zw.Write(payload); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		if buf.Len() < len(payload) {
			stored = buf.Bytes()
			flags = flagDeflate
		}
	}
	crc, err := e.emit(kind, flags, uint32(len(payload)), stored)
	if err != nil {
		return err
	}
	e.manifest = append(e.manifest, manifestEntry{kind, crc})
	return nil
}

// emit writes one raw section record and returns its CRC.
func (e *Encoder) emit(kind SectionKind, flags, origLen uint32, stored []byte) (uint32, error) {
	h := e.scratch[:]
	binary.LittleEndian.PutUint32(h[0:], uint32(kind))
	binary.LittleEndian.PutUint32(h[4:], flags)
	binary.LittleEndian.PutUint32(h[8:], origLen)
	binary.LittleEndian.PutUint32(h[12:], uint32(len(stored)))
	crc := crc32.ChecksumIEEE(h[:16])
	crc = crc32.Update(crc, crc32.IEEETable, stored)
	binary.LittleEndian.PutUint32(h[16:], crc)
	if _, err := e.w.Write(h); err != nil {
		return 0, err
	}
	if len(stored) > 0 {
		if _, err := e.w.Write(stored); err != nil {
			return 0, err
		}
	}
	return crc, nil
}

// Close writes the end section whose manifest lists the kind and CRC
// of every section written, letting the decoder prove it saw the
// whole stream intact.
func (e *Encoder) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	m := make([]byte, 4+8*len(e.manifest))
	binary.LittleEndian.PutUint32(m[0:], uint32(len(e.manifest)))
	for i, ent := range e.manifest {
		binary.LittleEndian.PutUint32(m[4+8*i:], uint32(ent.kind))
		binary.LittleEndian.PutUint32(m[8+8*i:], ent.crc)
	}
	_, err := e.emit(SecEnd, 0, uint32(len(m)), m)
	return err
}

// Section is one decoded state-domain record.
type Section struct {
	Kind    SectionKind
	Payload []byte
}

// Decoder reads a checkpoint stream. Next returns sections in order
// and io.EOF after a validated end section.
type Decoder struct {
	r    io.Reader
	seen []manifestEntry
	done bool
}

// NewDecoder validates the file header and returns a decoder.
func NewDecoder(r io.Reader) (*Decoder, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != Magic {
		return nil, fmt.Errorf("%w: %#x", ErrBadMagic, got)
	}
	if got := binary.LittleEndian.Uint32(hdr[4:]); got != Version {
		return nil, fmt.Errorf("%w: %d", ErrVersion, got)
	}
	return &Decoder{r: r}, nil
}

// Next returns the next section, or io.EOF after the end section has
// been seen and validated. Unknown section kinds are returned to the
// caller (forward compatibility); the caller decides whether to skip
// them.
func (d *Decoder) Next() (*Section, error) {
	if d.done {
		return nil, io.EOF
	}
	if len(d.seen) >= maxSections {
		return nil, fmt.Errorf("%w: too many sections", ErrFormat)
	}
	var h [sectionLen]byte
	if _, err := io.ReadFull(d.r, h[:]); err != nil {
		return nil, fmt.Errorf("%w: section header: %v", ErrTruncated, err)
	}
	kind := SectionKind(binary.LittleEndian.Uint32(h[0:]))
	flags := binary.LittleEndian.Uint32(h[4:])
	origLen := binary.LittleEndian.Uint32(h[8:])
	rawLen := binary.LittleEndian.Uint32(h[12:])
	wantCRC := binary.LittleEndian.Uint32(h[16:])
	if origLen > maxSectionBytes || rawLen > maxSectionBytes {
		return nil, fmt.Errorf("%w: section %v claims %d/%d bytes", ErrFormat, kind, rawLen, origLen)
	}
	if flags&^flagDeflate != 0 {
		return nil, fmt.Errorf("%w: section %v has unknown flags %#x", ErrFormat, kind, flags)
	}
	if flags&flagDeflate == 0 && rawLen != origLen {
		return nil, fmt.Errorf("%w: section %v uncompressed length mismatch", ErrFormat, kind)
	}
	stored := make([]byte, rawLen)
	if _, err := io.ReadFull(d.r, stored); err != nil {
		return nil, fmt.Errorf("%w: section %v payload: %v", ErrTruncated, kind, err)
	}
	crc := crc32.ChecksumIEEE(h[:16])
	crc = crc32.Update(crc, crc32.IEEETable, stored)
	if crc != wantCRC {
		return nil, fmt.Errorf("%w: section %v", ErrChecksum, kind)
	}
	if kind == SecEnd {
		if err := d.finish(stored); err != nil {
			return nil, err
		}
		d.done = true
		return nil, io.EOF
	}
	d.seen = append(d.seen, manifestEntry{kind, wantCRC})
	payload := stored
	if flags&flagDeflate != 0 {
		inflated, err := inflate(stored, origLen)
		if err != nil {
			return nil, fmt.Errorf("%w: section %v: %v", ErrFormat, kind, err)
		}
		payload = inflated
	}
	return &Section{Kind: kind, Payload: payload}, nil
}

// finish validates the manifest against the sections actually seen
// and requires the underlying stream to end exactly here.
func (d *Decoder) finish(manifest []byte) error {
	if len(manifest) < 4 {
		return fmt.Errorf("%w: short manifest", ErrFormat)
	}
	count := binary.LittleEndian.Uint32(manifest[0:])
	if uint64(len(manifest)) != 4+8*uint64(count) {
		return fmt.Errorf("%w: manifest length mismatch", ErrFormat)
	}
	if int(count) != len(d.seen) {
		return fmt.Errorf("%w: manifest lists %d sections, stream had %d",
			ErrFormat, count, len(d.seen))
	}
	for i, ent := range d.seen {
		kind := SectionKind(binary.LittleEndian.Uint32(manifest[4+8*i:]))
		crc := binary.LittleEndian.Uint32(manifest[8+8*i:])
		if kind != ent.kind || crc != ent.crc {
			return fmt.Errorf("%w: manifest entry %d disagrees with section %v",
				ErrFormat, i, ent.kind)
		}
	}
	var one [1]byte
	if n, err := d.r.Read(one[:]); n != 0 || (err != nil && err != io.EOF) {
		if n != 0 {
			return fmt.Errorf("%w: trailing data after end section", ErrFormat)
		}
		return err
	}
	return nil
}

// inflate decompresses a DEFLATE payload that must expand to exactly
// want bytes.
func inflate(stored []byte, want uint32) ([]byte, error) {
	zr := flate.NewReader(bytes.NewReader(stored))
	defer zr.Close()
	out := make([]byte, want)
	if _, err := io.ReadFull(zr, out); err != nil {
		return nil, fmt.Errorf("inflate: %v", err)
	}
	// The compressed payload must not keep going past origLen.
	var one [1]byte
	if n, _ := zr.Read(one[:]); n != 0 {
		return nil, errors.New("inflate: payload longer than declared")
	}
	return out, nil
}

// Sections reads an entire stream into a kind-keyed map — the common
// consumption pattern for state restore. Duplicate kinds are an
// error.
func Sections(r io.Reader) (map[SectionKind][]byte, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	out := make(map[SectionKind][]byte)
	for {
		s, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if _, dup := out[s.Kind]; dup {
			return nil, fmt.Errorf("%w: duplicate section %v", ErrFormat, s.Kind)
		}
		out[s.Kind] = s.Payload
	}
}

// PackPages encodes a physical-memory image with zero-page run-length
// elision: a u32 run header whose top bit marks a literal run (the
// header is followed by pages*pageSize raw bytes) and whose low 31
// bits count pages; zero runs are the header alone. len(mem) must be
// a multiple of pageSize.
func PackPages(mem []byte, pageSize int) ([]byte, error) {
	if pageSize <= 0 || len(mem)%pageSize != 0 {
		return nil, fmt.Errorf("%w: image length %d not a multiple of page size %d",
			ErrFormat, len(mem), pageSize)
	}
	pages := len(mem) / pageSize
	var out []byte
	var hdr [4]byte
	for p := 0; p < pages; {
		if pageZero(mem[p*pageSize : (p+1)*pageSize]) {
			n := 1
			for p+n < pages && pageZero(mem[(p+n)*pageSize:(p+n+1)*pageSize]) {
				n++
			}
			binary.LittleEndian.PutUint32(hdr[:], uint32(n))
			out = append(out, hdr[:]...)
			p += n
		} else {
			n := 1
			for p+n < pages && !pageZero(mem[(p+n)*pageSize:(p+n+1)*pageSize]) {
				n++
			}
			binary.LittleEndian.PutUint32(hdr[:], uint32(n)|1<<31)
			out = append(out, hdr[:]...)
			out = append(out, mem[p*pageSize:(p+n)*pageSize]...)
			p += n
		}
	}
	return out, nil
}

// UnpackPages decodes a PackPages payload into dst, which must be
// exactly covered by the encoded runs. dst is fully overwritten
// (zero runs clear their pages).
func UnpackPages(data []byte, dst []byte, pageSize int) error {
	if pageSize <= 0 || len(dst)%pageSize != 0 {
		return fmt.Errorf("%w: destination length %d not a multiple of page size %d",
			ErrFormat, len(dst), pageSize)
	}
	pages := len(dst) / pageSize
	p := 0
	for len(data) > 0 {
		if len(data) < 4 {
			return fmt.Errorf("%w: truncated page-run header", ErrFormat)
		}
		h := binary.LittleEndian.Uint32(data)
		data = data[4:]
		n := int(h &^ (1 << 31))
		if n == 0 {
			return fmt.Errorf("%w: zero-length page run", ErrFormat)
		}
		if n > pages-p {
			return fmt.Errorf("%w: page run overflows image (%d pages at %d of %d)",
				ErrFormat, n, p, pages)
		}
		if h&(1<<31) != 0 {
			need := n * pageSize
			if len(data) < need {
				return fmt.Errorf("%w: truncated literal page run", ErrFormat)
			}
			copy(dst[p*pageSize:], data[:need])
			data = data[need:]
		} else {
			zero(dst[p*pageSize : (p+n)*pageSize])
		}
		p += n
	}
	if p != pages {
		return fmt.Errorf("%w: page runs cover %d of %d pages", ErrFormat, p, pages)
	}
	return nil
}

func pageZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

func zero(p []byte) {
	for i := range p {
		p[i] = 0
	}
}
