package ckpt

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// buildStream encodes a small representative checkpoint image.
func buildStream(t testing.TB, compress bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, compress)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Section(SecCPU, []byte("cpu-registers")); err != nil {
		t.Fatal(err)
	}
	// A payload long and repetitive enough that DEFLATE shrinks it.
	pages := bytes.Repeat([]byte("page-data "), 400)
	if err := e.Section(SecPages, pages); err != nil {
		t.Fatal(err)
	}
	if err := e.Section(SecCycles, []byte{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		img := buildStream(t, compress)
		secs, err := Sections(bytes.NewReader(img))
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if got := string(secs[SecCPU]); got != "cpu-registers" {
			t.Errorf("compress=%v: SecCPU = %q", compress, got)
		}
		want := bytes.Repeat([]byte("page-data "), 400)
		if !bytes.Equal(secs[SecPages], want) {
			t.Errorf("compress=%v: SecPages mismatch (%d bytes)", compress, len(secs[SecPages]))
		}
		if sec, ok := secs[SecCycles]; !ok || len(sec) != 0 {
			t.Errorf("compress=%v: SecCycles = %v, %v", compress, sec, ok)
		}
	}
}

func TestCompressionShrinksStream(t *testing.T) {
	raw := buildStream(t, false)
	packed := buildStream(t, true)
	if len(packed) >= len(raw) {
		t.Errorf("compressed stream %d bytes, raw %d", len(packed), len(raw))
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	img := buildStream(t, false)
	bad := append([]byte(nil), img...)
	bad[0] ^= 0xFF
	if _, err := Sections(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("flipped magic: err = %v, want ErrBadMagic", err)
	}
	bad = append([]byte(nil), img...)
	bad[4] = 99
	if _, err := Sections(bytes.NewReader(bad)); !errors.Is(err, ErrVersion) {
		t.Errorf("future version: err = %v, want ErrVersion", err)
	}
}

func TestTruncationAtEveryPrefix(t *testing.T) {
	img := buildStream(t, true)
	for n := 0; n < len(img); n++ {
		_, err := Sections(bytes.NewReader(img[:n]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(img))
		}
	}
}

func TestTrailingDataRejected(t *testing.T) {
	img := append(buildStream(t, false), 0x00)
	if _, err := Sections(bytes.NewReader(img)); !errors.Is(err, ErrFormat) {
		t.Errorf("trailing byte: err = %v, want ErrFormat", err)
	}
}

func TestUnknownSectionKindTolerated(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Section(SectionKind(900), []byte("future-domain")); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	secs, err := Sections(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(secs[SectionKind(900)]); got != "future-domain" {
		t.Errorf("unknown kind payload = %q", got)
	}
}

func TestMissingEndSectionIsTruncation(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Section(SecCPU, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// No Close: the stream ends without the manifest.
	if _, err := Sections(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrTruncated) {
		t.Errorf("missing end section: err = %v, want ErrTruncated", err)
	}
}

func TestOversizeSectionRejected(t *testing.T) {
	img := buildStream(t, false)
	// Force the first section's rawLen (offset 8+12) to an absurd value.
	bad := append([]byte(nil), img...)
	bad[headerLen+12] = 0xFF
	bad[headerLen+13] = 0xFF
	bad[headerLen+14] = 0xFF
	bad[headerLen+15] = 0x7F
	if _, err := Sections(bytes.NewReader(bad)); err == nil {
		t.Error("2GB rawLen decoded without error")
	}
}

func TestPackPagesRoundTrip(t *testing.T) {
	const page = 512
	mem := make([]byte, 16*page)
	// Pages 0-2 zero, 3-4 literal, 5-12 zero, 13-15 literal.
	for i := 3 * page; i < 5*page; i++ {
		mem[i] = byte(i)
	}
	for i := 13 * page; i < 16*page; i++ {
		mem[i] = byte(i * 7)
	}
	packed, err := PackPages(mem, page)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) >= len(mem) {
		t.Errorf("packed %d bytes, raw %d: zero elision did nothing", len(packed), len(mem))
	}
	got := make([]byte, len(mem))
	for i := range got {
		got[i] = 0xAA // prove zero runs really clear their pages
	}
	if err := UnpackPages(packed, got, page); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mem) {
		t.Error("unpacked image differs from original")
	}
}

func TestUnpackPagesRejectsBadRuns(t *testing.T) {
	const page = 512
	dst := make([]byte, 4*page)
	cases := map[string][]byte{
		"truncated header":  {0x01},
		"zero-length run":   {0, 0, 0, 0},
		"overflowing run":   {200, 0, 0, 0},
		"truncated literal": {0x01, 0, 0, 0x80, 1, 2, 3},
		"short coverage":    {0x02, 0, 0, 0},
	}
	for name, data := range cases {
		if err := UnpackPages(data, dst, page); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", name, err)
		}
	}
}

func TestPackPagesRejectsRaggedImage(t *testing.T) {
	if _, err := PackPages(make([]byte, 700), 512); !errors.Is(err, ErrFormat) {
		t.Error("ragged image packed without error")
	}
}

func TestDecoderStopsAfterEOF(t *testing.T) {
	d, err := NewDecoder(bytes.NewReader(buildStream(t, false)))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := d.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Errorf("Next after EOF = %v", err)
	}
}
