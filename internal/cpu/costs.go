package cpu

// The cycle cost model.
//
// The paper reports performance as ratios (VM time / bare-machine time,
// Section 7.3), so what matters is the relative length of the direct-
// execution path versus the trap-and-emulate path, not any absolute
// clock. Bare-machine costs below are small constants in the spirit of
// the VAX 8800 (a heavily pipelined machine where simple instructions
// retire in a few cycles and the MTPR-to-IPL path was specially
// optimized); emulation costs are charged by the VMM per handler and
// derive from the number of simulated operations each handler performs
// (stack manipulation, SCB lookup, shadow-table work). Section 7.3's
// observation that emulating MTPR-to-IPL costs 10–12x the optimized
// hardware path anchors the trap-overhead constants.
const (
	// CostBase is charged for every instruction executed directly.
	CostBase = 2
	// CostMemOperand is charged per memory operand reference.
	CostMemOperand = 1
	// CostMul and CostDiv are the extra cost of multiply/divide.
	CostMul = 8
	CostDiv = 12
	// CostExceptionDispatch is the microcode cost of vectoring through
	// the SCB: PSL/PC save, stack switch, vector fetch.
	CostExceptionDispatch = 20
	// CostREI is the cost of the (complex) REI microcode path.
	CostREI = 8
	// CostCHM covers the CHM stack and vector work beyond dispatch.
	CostCHM = 4
	// CostMTPR / CostMFPR cover privileged register moves.
	CostMTPR = 3
	CostMFPR = 3
	// CostMTPRIPL is the specially optimized MTPR-to-IPL path of the
	// VAX 8800 family (Section 7.3: "much effort has gone into VAX
	// processors to optimize this path").
	CostMTPRIPL = 2
	// CostContextSwitch is the LDPCTX/SVPCTX microcode cost.
	CostContextSwitch = 25
	// CostProbe is the PROBE accessibility check.
	CostProbe = 3
	// CostCall covers the CALLS/RET frame build and unwind beyond the
	// individual stack references.
	CostCall = 6
	// CostMOVPSLMerge is the extra microcode cost of merging VMPSL into
	// the result when MOVPSL executes with PSL<VM> set (Section 4.2.1).
	CostMOVPSLMerge = 2
	// CostVMTrap is the microcode cost of a VM-emulation trap over and
	// above CostExceptionDispatch: decoding and saving the operand
	// values for the VMM (Section 4.2).
	CostVMTrap = 15
	// CostWaitIdle is charged per idle step while a WAIT is in effect.
	CostWaitIdle = 4
	// CostTranslationMiss approximates a page-table walk on a TLB miss;
	// the MMU counts misses and the harness can fold this in, but the
	// interpreter charges it inline for simplicity.
	CostTranslationMiss = 3
)

// VMM emulation-path costs (charged via CPU.AddCycles by internal/core).
// Each constant is the simulated software cost of one VMM handler —
// the memory references and register operations the handler performs,
// plus the validation and auditing a security-kernel VMM does on every
// crossing (the paper's VMM was an A1-targeted kernel; Section 7.3
// notes the 50% goal "was not achieved easily"). They are exported so
// the experiment harness can report the model alongside results.
const (
	// CostVMMDispatch is the VMM's common trap entry/exit: saving
	// state, decoding the trap code, and the REI back into the VM.
	CostVMMDispatch = 18
	// CostVMMCHM emulates a change-mode: virtual stack switch, VM SCB
	// lookup, pushing the exception frame into VM memory.
	CostVMMCHM = 90
	// CostVMMREI emulates return-from-exception: PSL validation, ring
	// compression of the new mode, stack switch, pending-interrupt scan.
	CostVMMREI = 100
	// CostVMMMTPRIPL emulates MTPR-to-IPL: update VMPSL<IPL> and scan
	// for deliverable virtual interrupts.
	CostVMMMTPRIPL = 8
	// CostVMMMTPROther covers the remaining virtualized registers.
	CostVMMMTPROther = 50
	// CostVMMShadowFill is one shadow-PTE fill from the VM's page table:
	// read the VM PTE, translate PFN and protection, store the shadow.
	CostVMMShadowFill = 55
	// CostVMMModifyFault sets PTE<M> in both shadow and VM page tables.
	CostVMMModifyFault = 30
	// CostVMMCowBreak is a copy-on-write break on a shared frame: one
	// page copy (512 bytes at the VMM's block-move rate) plus the frame
	// remap and the alias sweep of the faulting VM's shadow tables. It
	// is charged on top of CostVMMModifyFault, since a break begins life
	// as an ordinary modify fault.
	CostVMMCowBreak = 80
	// CostVMMIOStart is the KCALL start-I/O service path.
	CostVMMIOStart = 90
	// CostVMMMMIOEmul is the cost of emulating one memory-mapped device
	// register reference (decode the faulting instruction, perform the
	// device access, step over the instruction).
	CostVMMMMIOEmul = 50
	// CostVMMContextSwitch emulates LDPCTX/SVPCTX: PCB transfer plus
	// shadow table switch bookkeeping.
	CostVMMContextSwitch = 150
	// CostVMMInterrupt delivers one virtual interrupt into the VM.
	CostVMMInterrupt = 60
	// CostVMMWorldSwitch suspends one VM and resumes another.
	CostVMMWorldSwitch = 90
	// CostVMMAddrSpaceSwitch is the extra cost per VMM entry/exit when
	// the VMM runs in its own address space instead of sharing the VM's
	// (the rejected alternative of Sections 4 and 7.1: address-space
	// switch plus TLB invalidation on every VMM crossing).
	CostVMMAddrSpaceSwitch = 120
)
