package cpu

import (
	"repro/internal/mem"
	"repro/internal/vax"
)

// Exception and interrupt dispatch. Every event funnels through
// raise(): microcode clears PSL<VM>, the exception sink (the VMM, when
// one is attached) gets first claim, and otherwise the hardware vectors
// through the SCB at SCBB.

// raise delivers an exception, consulting the sink first.
func (c *CPU) raise(e *vax.Exception) {
	c.Stats.Exceptions++
	e.FromVM = c.InVMMode()
	if e.FromVM {
		// Microcode clears PSL<VM> on any exception or interrupt, so
		// software never observes it set (Section 4.2).
		c.psl = c.psl.WithVM(false)
	}
	if c.Sink != nil && c.Sink.HandleException(c, e) {
		return
	}
	if err := c.DispatchSCB(e, vax.Kernel); err != nil {
		// Exception during exception dispatch: the processor halts
		// (simplified from the VAX's console restart).
		c.Halt(HaltDoubleError)
	}
}

// DispatchSCB performs the hardware transfer of control through the
// system control block for exception e, entering newMode. The saved
// PC/PSL pair and e.Params are pushed on the new stack, first parameter
// on top.
func (c *CPU) DispatchSCB(e *vax.Exception, newMode vax.Mode) error {
	scbLong, err := c.Mem.LoadLong(c.SCBB + uint32(e.Vector))
	if err != nil {
		return err
	}
	handler := scbLong &^ 3
	useIS := scbLong&1 == 1 || c.psl.IS()
	if newMode != vax.Kernel {
		useIS = false
	}
	if handler == 0 {
		return &vax.Exception{Vector: vax.VecMachineCheck, Kind: vax.Abort}
	}

	oldPSL := c.psl
	oldPC := c.R[RegPC]

	ipl := oldPSL.IPL()
	if e.Kind == vax.Interrupt && len(e.Params) > 0 {
		ipl = uint8(e.Params[0]) // interrupt level rides in Params[0]
	}
	newPSL := vax.PSL(0).WithCur(newMode).WithPrv(oldPSL.Cur()).WithIPL(ipl)
	if useIS {
		newPSL = vax.PSL(uint32(newPSL) | vax.PSLIS)
	}
	c.SetPSL(newPSL)

	if err := c.Push(uint32(oldPSL)); err != nil {
		return err
	}
	if err := c.Push(oldPC); err != nil {
		return err
	}
	params := e.Params
	if e.Kind == vax.Interrupt {
		params = nil // the level is not pushed
	}
	for i := len(params) - 1; i >= 0; i-- {
		if err := c.Push(params[i]); err != nil {
			return err
		}
	}
	c.R[RegPC] = handler
	c.Cycles += CostExceptionDispatch
	return nil
}

// deliverInterrupt dispatches the pending interrupt at the given level.
func (c *CPU) deliverInterrupt(level uint8) {
	var vec vax.Vector
	if c.pendingIRQ[level] != 0 {
		vec = vax.Vector(c.pendingIRQ[level])
		c.pendingIRQ[level] = 0
		c.irqSummary &^= 1 << level
	} else {
		// Software interrupt: delivering clears the SISR bit.
		vec = vax.SoftwareVector(level)
		c.SISR &^= 1 << level
	}
	c.Stats.Interrupts++
	c.raise(c.scratch.Set1(vec, vax.Interrupt, uint32(level)))
}

// handleError converts an execution error into the architectural
// response: faults restore the register file (undoing operand side
// effects) and re-execute after the handler; traps leave PC at the next
// instruction; bus errors become machine checks.
func (c *CPU) handleError(err error, startPC uint32) {
	switch e := err.(type) {
	case *vax.Exception:
		if e.Kind == vax.Fault {
			c.R = c.regSnapshot
			c.R[RegPC] = startPC
		}
		c.raise(e)
	case *mem.BusError:
		c.R = c.regSnapshot
		c.R[RegPC] = startPC
		c.raise(c.scratch.Set1(vax.VecMachineCheck, vax.Abort, e.Addr))
	default:
		c.Halt(HaltBusError)
	}
}

// Step advances the machine by one instruction (or one interrupt
// delivery, or one idle WAIT cycle).
func (c *CPU) Step() {
	if c.Halted {
		return
	}
	before := c.Cycles
	if lvl := c.PendingAbove(c.psl.IPL()); lvl > 0 {
		if c.sb != nil && c.sb.building {
			// Delivery redirects PC into a handler; the trace being
			// recorded ends at the instruction before it.
			c.sbFinishBuild()
		}
		c.deliverInterrupt(lvl)
		c.tick(c.Cycles - before)
		return
	}
	if c.waiting {
		// WAIT idles until an interrupt arrives (or the VMM's timeout).
		c.Cycles += CostWaitIdle
		c.tick(c.Cycles - before)
		return
	}
	c.regSnapshot = c.R
	c.instStartPC = c.R[RegPC]
	if c.TrapAllInVM && c.InVMMode() && c.VMPSL.Cur() == vax.Kernel && !c.trapAllSkipOnce {
		// Goldberg scheme 1: every VM-kernel instruction traps for
		// emulation before it is even decoded.
		c.Stats.VMTraps++
		c.Cycles += CostVMTrap
		if c.sb != nil && c.sb.building {
			c.sbFinishBuild()
		}
		c.raise(c.vmScratch.Set(vax.Fault, 0xFFFF, c.instStartPC,
			c.instStartPC, c.GuestPSL(), nil, nil))
		c.tick(c.Cycles - before)
		return
	}
	c.trapAllSkipOnce = false
	if c.sb != nil {
		// The translation tier executes a whole superblock per Step
		// when one is valid at the PC (interrupts were polled above;
		// devices tick below on the block's accumulated cycles).
		c.stepTranslated()
		c.tick(c.Cycles - before)
		return
	}
	if err := c.execOne(); err != nil {
		c.handleError(err, c.instStartPC)
	}
	c.Stats.Instructions++
	c.tick(c.Cycles - before)
}

func (c *CPU) tick(cycles uint64) {
	for _, d := range c.devices {
		d.Tick(c, cycles)
	}
}

// Run steps the machine until it halts or maxSteps steps have been
// taken (0 = no limit). A step is an instruction, an interrupt delivery
// or an idle WAIT cycle. It returns the number of steps taken.
func (c *CPU) Run(maxSteps uint64) uint64 {
	var steps uint64
	for !c.Halted {
		c.Step()
		steps++
		if maxSteps != 0 && steps >= maxSteps {
			break
		}
	}
	return steps
}
