package cpu

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/vax"
)

// TestDecodeCacheHitsLoop checks that a tight loop replays from the
// decoded-instruction cache instead of re-parsing every iteration.
func TestDecodeCacheHitsLoop(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	clrl r0
	movl #100, r1
loop:	addl2 #3, r0
	sobgtr r1, loop
	halt
`)
	ma.run(t, 10000)
	if ma.c.R[0] != 300 {
		t.Fatalf("r0 = %d, want 300", ma.c.R[0])
	}
	s := ma.c.Stats
	if s.DecodeHits == 0 {
		t.Fatal("loop produced no decode-cache hits")
	}
	if s.DecodeHits <= s.DecodeMisses {
		t.Errorf("hits (%d) should dominate misses (%d) in a loop",
			s.DecodeHits, s.DecodeMisses)
	}
}

// TestSelfModifyingCode overwrites an instruction's literal between two
// executions: the store must invalidate the cached decode so the second
// execution sees the new bytes.
func TestSelfModifyingCode(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	clrl r2
patch:	movl #5, r1
	tstl r2
	bneq done
	incl r2
	movb #9, @#patch+1    ; rewrite the short literal 5 -> 9
	brb patch
done:	halt
`)
	ma.run(t, 10000)
	if ma.c.R[1] != 9 {
		t.Fatalf("r1 = %d, want 9 (stale decode executed)", ma.c.R[1])
	}
	if ma.c.Stats.DecodeInvalidations == 0 {
		t.Error("store to code produced no decode invalidations")
	}
}

// straddleMachine builds a mapped machine whose single instruction
// (MOVL #imm32, R0 followed by HALT) starts on the last byte of S page
// 2, so all its operand bytes live on S page 3. Frame frameB backs page
// 3 initially; frameB2 holds an alternative operand page with a
// different immediate.
const (
	strSPT     = 0x1000
	strFrameA  = 18 // backs S page 2 (the opcode byte)
	strFrameB  = 19 // backs S page 3 (immediate + HALT), initially
	strFrameB2 = 40 // alternative backing for S page 3
	strImm1    = 0x11111111
	strImm2    = 0x22222222
)

func newStraddleMachine(t *testing.T) (*CPU, *mem.Memory, uint32) {
	t.Helper()
	m := mem.New(256 * 1024)
	wr := func(pa uint32, b byte) {
		if err := m.StoreByte(pa, b); err != nil {
			t.Fatal(err)
		}
	}
	// Operand bytes at the start of a frame: 8F (immediate) imm32 50
	// (r0) 00 (HALT).
	operands := func(frame, imm uint32) {
		pa := frame * vax.PageSize
		wr(pa, 0x8F)
		for i := uint32(0); i < 4; i++ {
			wr(pa+1+i, byte(imm>>(8*i)))
		}
		wr(pa+5, 0x50)
		wr(pa+6, 0x00)
	}
	wr(strFrameA*vax.PageSize+vax.PageSize-1, 0xD0) // MOVL opcode
	operands(strFrameB, strImm1)
	operands(strFrameB2, strImm2)

	for i, frame := range []uint32{16, 17, strFrameA, strFrameB} {
		pte := vax.NewPTE(true, vax.ProtUW, true, frame)
		if err := m.StoreLong(strSPT+4*uint32(i), uint32(pte)); err != nil {
			t.Fatal(err)
		}
	}
	c := New(m, StandardVAX)
	c.MMU.SBR = strSPT
	c.MMU.SLR = 4
	c.MMU.Enabled = true
	c.SetPSL(vax.PSL(0).WithCur(vax.Kernel))
	instVA := uint32(vax.SystemBase) + 2*vax.PageSize + vax.PageSize - 1
	return c, m, instVA
}

func runStraddle(t *testing.T, c *CPU, instVA, want uint32) {
	t.Helper()
	c.ClearHalt()
	c.SetPC(instVA)
	c.Run(10)
	if !c.Halted {
		t.Fatalf("did not halt; pc=%#x", c.PC())
	}
	if c.R[0] != want {
		t.Fatalf("r0 = %#x, want %#x", c.R[0], want)
	}
}

// TestStraddleRemapTBIS remaps the second page of a page-straddling
// cached instruction: after TBIS the replay must not use the stale
// operand bytes.
func TestStraddleRemapTBIS(t *testing.T) {
	c, m, instVA := newStraddleMachine(t)
	runStraddle(t, c, instVA, strImm1)
	runStraddle(t, c, instVA, strImm1) // warm: replays the straddle entry
	if c.Stats.DecodeHits == 0 {
		t.Fatal("straddling instruction never hit the cache")
	}

	pte := vax.NewPTE(true, vax.ProtUW, true, strFrameB2)
	if err := m.StoreLong(strSPT+4*3, uint32(pte)); err != nil {
		t.Fatal(err)
	}
	c.MMU.TBIS(uint32(vax.SystemBase) + 3*vax.PageSize)
	runStraddle(t, c, instVA, strImm2)
	if c.Stats.DecodeInvalidations == 0 {
		t.Error("TBIS flushed no straddling decode entries")
	}
}

// TestStraddleRemapTBIA is the same scenario through a full TLB
// invalidate.
func TestStraddleRemapTBIA(t *testing.T) {
	c, m, instVA := newStraddleMachine(t)
	runStraddle(t, c, instVA, strImm1)
	pte := vax.NewPTE(true, vax.ProtUW, true, strFrameB2)
	if err := m.StoreLong(strSPT+4*3, uint32(pte)); err != nil {
		t.Fatal(err)
	}
	c.MMU.TBIA()
	runStraddle(t, c, instVA, strImm2)
}
