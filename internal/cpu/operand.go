package cpu

import "repro/internal/vax"

// Operand specifier decoding, following the VAX general addressing modes.
// Supported specifiers: short literal, register, register deferred,
// autodecrement, autoincrement (and immediate), autoincrement deferred
// (and absolute), byte/word/long displacement (and PC-relative) plus
// their deferred forms, and index mode prefixes.
//
// Decoding is split in two halves so the decoded-instruction cache can
// skip the parse on re-execution:
//
//   - parseSpec consumes specifier bytes from the instruction stream
//     and produces a position-independent template (dspec). It has no
//     register or memory side effects.
//   - evalSpec turns a template into an operand, performing the
//     register side effects (autoincrement/autodecrement) and deferred
//     memory reads each execution.
//
// Templates store displacements and immediates, never absolute
// addresses derived from PC, so a cached instruction replays correctly
// even when the same physical page is mapped at several virtual
// addresses: evalSpec reads the live PC, which decodeOperand positions
// at the template's recorded end offset before evaluating.

type opKind uint8

const (
	opLiteral opKind = iota // 6-bit short literal
	opRegister
	opMemory
)

// operand is one decoded operand.
type operand struct {
	kind opKind
	reg  int    // register number (opRegister)
	addr uint32 // virtual address (opMemory)
	lit  uint32 // literal value (opLiteral)
	size int    // access size in bytes
}

// Specifier template kinds.
const (
	evLiteral    uint8 = iota // imm holds the literal/immediate value
	evRegister                // reg
	evRegDef                  // addr = R[reg]
	evAutoDec                 // R[reg] -= size; addr = R[reg]
	evAutoInc                 // addr = R[reg]; R[reg] += size
	evAutoIncDef              // ptr = R[reg]; R[reg] += 4; addr = M[ptr]
	evImmAddr                 // addr of the immediate datum (PC - size)
	evAbsolute                // addr = imm
	evDisp                    // addr = R[reg] + imm (PC-relative when reg==PC)
	evDispDef                 // addr = M[R[reg] + imm]
)

// noIndex marks a template without an index-register prefix.
const noIndex = 0xFF

// dspec is a parsed operand-specifier template.
type dspec struct {
	kind   uint8
	reg    uint8
	xreg   uint8 // index register, noIndex if absent
	size   uint8 // access size in bytes
	endOff uint8 // PC offset from instruction start after this spec
	imm    uint32
}

func (c *CPU) rsvdAddrMode() *vax.Exception {
	return c.scratch.Set(vax.VecRsvdAddrMode, vax.Fault)
}

func (c *CPU) rsvdOperand() *vax.Exception {
	return c.scratch.Set(vax.VecRsvdOperand, vax.Fault)
}

// decodeOperand produces one operand of the given access size from the
// instruction stream, through the decode cursor: on replay the recorded
// template is evaluated directly (positioning PC past the specifier
// bytes); otherwise the specifier is parsed from the live stream and,
// when recording, captured for the decoded-instruction cache. wantAddr
// is true for address-context operands (MOVAx, JMP, JSB destinations),
// which forbid register and literal modes.
func (c *CPU) decodeOperand(size int, wantAddr bool) (operand, error) {
	if c.cur.mode == curReplay {
		if t, ok := c.cur.nextSpec(); ok {
			c.R[RegPC] = c.instStartPC + uint32(t.endOff)
			return c.evalSpec(t)
		}
		// Recorded items exhausted (partially recorded entry): fall back
		// to parsing the live stream, which is always correct because
		// every replayed item left PC at its recorded end offset.
	}
	t, err := c.parseSpec(size, wantAddr, true)
	if err != nil {
		return operand{}, err
	}
	c.cur.record(ditem{kind: diSpec, endOff: t.endOff, spec: t})
	return c.evalSpec(t)
}

// parseSpec consumes one operand specifier from the instruction stream
// and returns its template. allowIndex permits an index-mode prefix
// (one level, as the architecture allows).
func (c *CPU) parseSpec(size int, wantAddr, allowIndex bool) (dspec, error) {
	spec, err := c.fetchByte()
	if err != nil {
		return dspec{}, err
	}
	mode := spec >> 4
	rn := spec & 0xF

	// Index mode: the specifier is a prefix; the base operand follows.
	if mode == 4 {
		if rn == RegPC || !allowIndex {
			return dspec{}, c.rsvdAddrMode()
		}
		base, err := c.parseSpec(size, true, false)
		if err != nil {
			return dspec{}, err
		}
		base.xreg = rn
		base.size = uint8(size)
		base.endOff = uint8(c.R[RegPC] - c.instStartPC)
		return base, nil
	}

	t := dspec{reg: rn, xreg: noIndex, size: uint8(size)}
	switch {
	case mode < 4: // short literal 0..63
		if wantAddr {
			return dspec{}, c.rsvdAddrMode()
		}
		t.kind = evLiteral
		t.imm = uint32(spec & 0x3F)

	case mode == 5: // register
		if wantAddr || rn == RegPC {
			return dspec{}, c.rsvdAddrMode()
		}
		t.kind = evRegister

	case mode == 6: // register deferred (Rn)
		t.kind = evRegDef

	case mode == 7: // autodecrement -(Rn)
		if rn == RegPC {
			return dspec{}, c.rsvdAddrMode()
		}
		t.kind = evAutoDec

	case mode == 8: // autoincrement (Rn)+ / immediate #x
		if rn == RegPC {
			// Immediate: the value follows in the instruction stream.
			var v uint32
			switch size {
			case 1:
				b, err := c.fetchByte()
				if err != nil {
					return dspec{}, err
				}
				v = uint32(b)
			case 2:
				w, err := c.fetchWord()
				if err != nil {
					return dspec{}, err
				}
				v = uint32(w)
			default:
				l, err := c.fetchLong()
				if err != nil {
					return dspec{}, err
				}
				v = l
			}
			if wantAddr {
				t.kind = evImmAddr // address of the immediate datum
			} else {
				t.kind = evLiteral
				t.imm = v
			}
			break
		}
		t.kind = evAutoInc

	case mode == 9: // autoincrement deferred @(Rn)+ / absolute @#addr
		if rn == RegPC {
			a, err := c.fetchLong()
			if err != nil {
				return dspec{}, err
			}
			t.kind = evAbsolute
			t.imm = a
			break
		}
		t.kind = evAutoIncDef

	default: // 0xA..0xF displacement modes
		var disp uint32
		switch mode &^ 1 {
		case 0xA: // byte displacement
			b, err := c.fetchByte()
			if err != nil {
				return dspec{}, err
			}
			disp = uint32(int32(int8(b)))
		case 0xC: // word displacement
			w, err := c.fetchWord()
			if err != nil {
				return dspec{}, err
			}
			disp = uint32(int32(int16(w)))
		default: // 0xE long displacement
			l, err := c.fetchLong()
			if err != nil {
				return dspec{}, err
			}
			disp = l
		}
		t.imm = disp
		if mode&1 == 1 {
			t.kind = evDispDef
		} else {
			t.kind = evDisp
		}
	}
	t.endOff = uint8(c.R[RegPC] - c.instStartPC)
	return t, nil
}

// evalSpec evaluates a specifier template against the current machine
// state. PC is already positioned at the template's end offset (either
// by the live parse or by the replay cursor), which is what makes the
// PC-relative and immediate kinds position-independent.
func (c *CPU) evalSpec(t dspec) (operand, error) {
	size := int(t.size)
	var addr uint32
	switch t.kind {
	case evLiteral:
		return operand{kind: opLiteral, lit: t.imm, size: size}, nil
	case evRegister:
		return operand{kind: opRegister, reg: int(t.reg), size: size}, nil
	case evRegDef:
		addr = c.R[t.reg]
	case evAutoDec:
		c.R[t.reg] -= uint32(size)
		addr = c.R[t.reg]
	case evAutoInc:
		addr = c.R[t.reg]
		c.R[t.reg] += uint32(size)
	case evAutoIncDef:
		ptr := c.R[t.reg]
		c.R[t.reg] += 4
		a, err := c.LoadLong(ptr)
		if err != nil {
			return operand{}, err
		}
		addr = a
	case evImmAddr:
		addr = c.R[RegPC] - uint32(size)
	case evAbsolute:
		addr = t.imm
	case evDisp:
		// For PC-relative specifiers the base is PC after the
		// displacement bytes, which is where PC stands now.
		addr = c.R[t.reg] + t.imm
	case evDispDef:
		a, err := c.LoadLong(c.R[t.reg] + t.imm)
		if err != nil {
			return operand{}, err
		}
		addr = a
	}
	if t.xreg != noIndex {
		addr += c.R[t.xreg] * uint32(size)
	}
	return operand{kind: opMemory, addr: addr, size: size}, nil
}

// readOp fetches the value of a decoded operand, zero-extended to 32
// bits.
func (c *CPU) readOp(op operand) (uint32, error) {
	switch op.kind {
	case opLiteral:
		return op.lit, nil
	case opRegister:
		switch op.size {
		case 1:
			return c.R[op.reg] & 0xFF, nil
		case 2:
			return c.R[op.reg] & 0xFFFF, nil
		}
		return c.R[op.reg], nil
	default:
		c.Cycles += CostMemOperand
		return c.LoadVirt(op.addr, op.size, c.psl.Cur())
	}
}

// writeOp stores a value to a decoded operand. Byte and word writes to
// registers leave the high bits unchanged, per the architecture.
func (c *CPU) writeOp(op operand, v uint32) error {
	switch op.kind {
	case opLiteral:
		return c.rsvdOperand()
	case opRegister:
		switch op.size {
		case 1:
			c.R[op.reg] = c.R[op.reg]&^uint32(0xFF) | v&0xFF
		case 2:
			c.R[op.reg] = c.R[op.reg]&^uint32(0xFFFF) | v&0xFFFF
		default:
			c.R[op.reg] = v
		}
		return nil
	default:
		c.Cycles += CostMemOperand
		return c.StoreVirt(op.addr, op.size, v, c.psl.Cur())
	}
}

// WriteRef stores a longword to an OperandRef on behalf of the VMM,
// completing an emulated instruction's result write (Section 4.2: "The
// VMM may need to probe addresses when instruction results are written
// to memory").
func (c *CPU) WriteRef(r *vax.OperandRef, v uint32) error {
	if r.IsRegister {
		c.R[r.Register] = v
		return nil
	}
	return c.StoreVirt(r.Address, 4, v, c.psl.Cur())
}

// signExt widens an operand value of the given size to a signed int32.
func signExt(v uint32, size int) int32 {
	switch size {
	case 1:
		return int32(int8(v))
	case 2:
		return int32(int16(v))
	}
	return int32(v)
}
