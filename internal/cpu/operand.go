package cpu

import "repro/internal/vax"

// Operand specifier decoding, following the VAX general addressing modes.
// Supported specifiers: short literal, register, register deferred,
// autodecrement, autoincrement (and immediate), autoincrement deferred
// (and absolute), byte/word/long displacement (and PC-relative) plus
// their deferred forms, and index mode prefixes.

type opKind uint8

const (
	opLiteral opKind = iota // 6-bit short literal
	opRegister
	opMemory
)

// operand is one decoded operand.
type operand struct {
	kind opKind
	reg  int    // register number (opRegister)
	addr uint32 // virtual address (opMemory)
	lit  uint32 // literal value (opLiteral)
	size int    // access size in bytes
}

func rsvdAddrMode() *vax.Exception {
	return &vax.Exception{Vector: vax.VecRsvdAddrMode, Kind: vax.Fault}
}

func rsvdOperand() *vax.Exception {
	return &vax.Exception{Vector: vax.VecRsvdOperand, Kind: vax.Fault}
}

// decodeOperand parses one operand specifier of the given access size
// from the instruction stream. wantAddr is true for address-context
// operands (MOVAx, JMP, JSB destinations), which forbid register and
// literal modes.
func (c *CPU) decodeOperand(size int, wantAddr bool) (operand, error) {
	spec, err := c.fetchByte()
	if err != nil {
		return operand{}, err
	}
	mode := spec >> 4
	rn := int(spec & 0xF)

	// Index mode: the specifier is a prefix; the base operand follows.
	if mode == 4 {
		if rn == RegPC {
			return operand{}, rsvdAddrMode()
		}
		base, err := c.decodeOperand(size, true)
		if err != nil {
			return operand{}, err
		}
		base.addr += c.R[rn] * uint32(size)
		base.size = size
		return base, nil
	}

	switch {
	case mode < 4: // short literal 0..63
		if wantAddr {
			return operand{}, rsvdAddrMode()
		}
		return operand{kind: opLiteral, lit: uint32(spec & 0x3F), size: size}, nil

	case mode == 5: // register
		if wantAddr || rn == RegPC {
			return operand{}, rsvdAddrMode()
		}
		return operand{kind: opRegister, reg: rn, size: size}, nil

	case mode == 6: // register deferred (Rn)
		return operand{kind: opMemory, addr: c.R[rn], size: size}, nil

	case mode == 7: // autodecrement -(Rn)
		if rn == RegPC {
			return operand{}, rsvdAddrMode()
		}
		c.R[rn] -= uint32(size)
		return operand{kind: opMemory, addr: c.R[rn], size: size}, nil

	case mode == 8: // autoincrement (Rn)+ / immediate #x
		if rn == RegPC {
			// Immediate: the value follows in the instruction stream.
			addr := c.R[RegPC]
			var v uint32
			switch size {
			case 1:
				b, err := c.fetchByte()
				if err != nil {
					return operand{}, err
				}
				v = uint32(b)
			case 2:
				w, err := c.fetchWord()
				if err != nil {
					return operand{}, err
				}
				v = uint32(w)
			default:
				l, err := c.fetchLong()
				if err != nil {
					return operand{}, err
				}
				v = l
			}
			if wantAddr {
				// Address of the immediate datum itself.
				return operand{kind: opMemory, addr: addr, size: size}, nil
			}
			return operand{kind: opLiteral, lit: v, size: size}, nil
		}
		addr := c.R[rn]
		c.R[rn] += uint32(size)
		return operand{kind: opMemory, addr: addr, size: size}, nil

	case mode == 9: // autoincrement deferred @(Rn)+ / absolute @#addr
		if rn == RegPC {
			a, err := c.fetchLong()
			if err != nil {
				return operand{}, err
			}
			return operand{kind: opMemory, addr: a, size: size}, nil
		}
		ptr := c.R[rn]
		c.R[rn] += 4
		a, err := c.LoadLong(ptr)
		if err != nil {
			return operand{}, err
		}
		return operand{kind: opMemory, addr: a, size: size}, nil

	case mode >= 0xA: // displacement modes
		var disp uint32
		switch mode &^ 1 {
		case 0xA: // byte displacement
			b, err := c.fetchByte()
			if err != nil {
				return operand{}, err
			}
			disp = uint32(int32(int8(b)))
		case 0xC: // word displacement
			w, err := c.fetchWord()
			if err != nil {
				return operand{}, err
			}
			disp = uint32(int32(int16(w)))
		default: // 0xE long displacement
			l, err := c.fetchLong()
			if err != nil {
				return operand{}, err
			}
			disp = l
		}
		// For PC-relative modes, the base is PC after the displacement.
		a := c.R[rn] + disp
		if mode&1 == 1 { // deferred
			ptr := a
			var err error
			a, err = c.LoadLong(ptr)
			if err != nil {
				return operand{}, err
			}
		}
		return operand{kind: opMemory, addr: a, size: size}, nil
	}
	return operand{}, rsvdAddrMode()
}

// readOp fetches the value of a decoded operand, zero-extended to 32
// bits.
func (c *CPU) readOp(op operand) (uint32, error) {
	switch op.kind {
	case opLiteral:
		return op.lit, nil
	case opRegister:
		switch op.size {
		case 1:
			return c.R[op.reg] & 0xFF, nil
		case 2:
			return c.R[op.reg] & 0xFFFF, nil
		}
		return c.R[op.reg], nil
	default:
		c.Cycles += CostMemOperand
		return c.LoadVirt(op.addr, op.size, c.psl.Cur())
	}
}

// writeOp stores a value to a decoded operand. Byte and word writes to
// registers leave the high bits unchanged, per the architecture.
func (c *CPU) writeOp(op operand, v uint32) error {
	switch op.kind {
	case opLiteral:
		return rsvdOperand()
	case opRegister:
		switch op.size {
		case 1:
			c.R[op.reg] = c.R[op.reg]&^uint32(0xFF) | v&0xFF
		case 2:
			c.R[op.reg] = c.R[op.reg]&^uint32(0xFFFF) | v&0xFFFF
		default:
			c.R[op.reg] = v
		}
		return nil
	default:
		c.Cycles += CostMemOperand
		return c.StoreVirt(op.addr, op.size, v, c.psl.Cur())
	}
}

// ref converts a decoded result operand into the OperandRef the
// VM-emulation trap hands the VMM.
func (op operand) ref() *vax.OperandRef {
	if op.kind == opRegister {
		return &vax.OperandRef{IsRegister: true, Register: op.reg}
	}
	return &vax.OperandRef{Address: op.addr}
}

// WriteRef stores a longword to an OperandRef on behalf of the VMM,
// completing an emulated instruction's result write (Section 4.2: "The
// VMM may need to probe addresses when instruction results are written
// to memory").
func (c *CPU) WriteRef(r *vax.OperandRef, v uint32) error {
	if r.IsRegister {
		c.R[r.Register] = v
		return nil
	}
	return c.StoreVirt(r.Address, 4, v, c.psl.Cur())
}

// signExt widens an operand value of the given size to a signed int32.
func signExt(v uint32, size int) int32 {
	switch size {
	case 1:
		return int32(int8(v))
	case 2:
		return int32(int16(v))
	}
	return int32(v)
}
