package cpu

import (
	"testing"

	"repro/internal/vax"
)

func TestCALLSAndRET(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	movl #0x111, r2      ; clobbered by the callee, restored by RET
	movl #0x222, r3
	pushl #30
	pushl #12
	calls #2, sum        ; sum(12, 30)
	halt

	.align 4
sum:	.word 0x000C         ; entry mask: save r2, r3
	movl 4(ap), r2       ; first argument
	movl 8(ap), r3       ; second
	addl3 r2, r3, r0
	ret
`)
	ma.run(t, 1000)
	c := ma.c
	if c.R[0] != 42 {
		t.Errorf("sum = %d, want 42", c.R[0])
	}
	if c.R[2] != 0x111 || c.R[3] != 0x222 {
		t.Errorf("saved registers not restored: r2=%#x r3=%#x", c.R[2], c.R[3])
	}
	// RET removed the frame and the CALLS argument list.
	if c.SP() != testKSP {
		t.Errorf("stack imbalance: sp=%#x want %#x", c.SP(), testKSP)
	}
}

func TestCALLSNested(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	pushl #5
	calls #1, fact       ; 5!
	halt

	.align 4
fact:	.word 0x0004         ; save r2
	movl 4(ap), r2
	cmpl r2, #1
	bgtr recurse
	movl #1, r0
	ret
recurse:
	subl3 #1, r2, r0
	pushl r0
	calls #1, fact
	mull2 r2, r0         ; n * fact(n-1)
	ret
`)
	ma.run(t, 10000)
	if ma.c.R[0] != 120 {
		t.Errorf("5! = %d, want 120", ma.c.R[0])
	}
	if ma.c.SP() != testKSP {
		t.Errorf("stack imbalance after recursion: %#x", ma.c.SP())
	}
}

func TestCALLSFrameLayout(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	calls #0, probe
	halt

	.align 4
probe:	.word 0              ; entry mask: nothing saved
	movl 4(fp), r6       ; status word
	movl 16(fp), r7      ; saved PC
	movl fp, r8
	movl ap, r9
	ret
`)
	ma.run(t, 1000)
	c := ma.c
	status := c.R[6]
	if status&(1<<29) == 0 {
		t.Error("S flag not set in CALLS frame")
	}
	if mask := status >> 16 & 0xFFF; mask != 0 {
		t.Errorf("mask = %#x, want 0", mask)
	}
	// Saved PC points at the instruction after the CALLS.
	retPC := c.R[7]
	if retPC <= testOrigin || retPC >= ma.prog.End() {
		t.Errorf("saved PC %#x out of range", retPC)
	}
	// AP points at the pushed argument count (0 here).
	n, _ := ma.m.LoadLong(c.R[9])
	if n != 0 {
		t.Errorf("argument count at AP = %d", n)
	}
}

func TestCALLSBadEntryMask(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	calls #0, bad
	halt
	.align 4
bad:	.word 0xF000         ; reserved mask bits
	ret
	.align 4
rsvd:	movl #0x66, r9
	halt
`)
	ma.setVector(t, vax.VecRsvdOperand, "rsvd")
	ma.run(t, 1000)
	if ma.c.R[9] != 0x66 {
		t.Error("reserved entry mask not faulted")
	}
}

func TestBitBranches(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	movl #0b0, r10
	movl #4, r0          ; bit 2 set
	bbs #2, r0, b1
	brb fail
b1:	bbc #1, r0, b2
	brb fail
b2:	moval flags, r1
	bbs #11, (r1), b3    ; bit 11 of the field at flags: byte 1 bit 3
	brb fail
b3:	bbc #12, (r1), b4
	brb fail
b4:	movl #1, r10
	halt
fail:	halt
flags:	.byte 0x00, 0x08     ; bit 11 set (byte 1, bit 3)
`)
	ma.run(t, 1000)
	if ma.c.R[10] != 1 {
		t.Error("bit branches misbehaved")
	}
}

func TestBBSRegisterOutOfRange(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	bbs #40, r0, nope
nope:	halt
	.align 4
rsvd:	movl #0x55, r9
	halt
`)
	ma.setVector(t, vax.VecRsvdOperand, "rsvd")
	ma.run(t, 1000)
	if ma.c.R[9] != 0x55 {
		t.Error("bit position > 31 on a register must fault")
	}
}
