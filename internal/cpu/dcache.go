package cpu

import (
	"repro/internal/mmu"
	"repro/internal/vax"
)

// The decoded-instruction cache. Re-executing straight-line code and
// loop bodies used to re-parse every operand specifier byte by byte
// through the MMU; the cache keys fully decoded instructions (opcode
// row + specifier templates + length) by the physical address of the
// opcode byte, so re-execution translates the PC once and replays the
// templates.
//
// Keying by physical address makes invalidation precise: a write to a
// physical page drops the decodes from that page no matter which
// virtual mapping performed the write (guest stores, VMM stores into VM
// memory, DMA). A page-granular bitmap in front of the entry scan keeps
// the common store (to a page with no cached decodes) at one bit test.
//
// Coherence rules (see DESIGN.md):
//
//   - Guest stores through the CPU's own path invalidate inline
//     (physStoreByte/physStoreLong).
//   - Writers that bypass the CPU (VMM writes into VM physical memory,
//     device DMA) call InvalidateDecode; snapshot restore calls
//     FlushDecodeCache.
//   - Entries whose bytes span two pages additionally depend on the
//     translation of the second page, so TBIA/TBIS flush them (via the
//     MMU callbacks) and every replay revalidates the second page's
//     translation.
//   - A plain entry needs no TLB-coherence work: its tag is verified
//     against a fresh translation of the PC on every execution, so a
//     mapping change redirects or misses exactly like the TLB does.

const (
	dcSlots    = 1024 // direct-mapped entries, indexed by PA low bits
	dcItemsMax = 6    // recorded decode items per instruction
)

// Decode item kinds: one item per operand specifier or raw
// instruction-stream fetch (branch displacements), in stream order.
const (
	diSpec uint8 = iota // an operand specifier template
	diByte              // a raw byte fetched via fetchStream8
	diWord              // a raw word fetched via fetchStream16
)

type ditem struct {
	kind   uint8
	endOff uint8  // PC offset from instruction start after this item
	val    uint32 // raw value (diByte/diWord)
	spec   dspec  // template (diSpec)
}

// dcEntry is one cached decoded instruction.
type dcEntry struct {
	tag      uint32 // physical address of the opcode byte
	tag2     uint32 // physical address of the second page's first byte (straddle)
	ie       *instrEntry
	valid    bool
	straddle bool   // recorded bytes span a page boundary
	opLen    uint8  // opcode length (2 for 0xFD-prefixed)
	n        uint8  // recorded items
	heat     uint16 // replays seen by the superblock tier (sblock.go)
	items    [dcItemsMax]ditem
}

type dcache struct {
	entries   []dcEntry
	pageBits  []uint64 // physical pages holding at least one cached decode
	pageLim   uint32   // number of physical pages covered by pageBits
	straddles int      // live straddle entries, guarding flushStraddleDecodes
}

func (d *dcache) markPage(page uint32) {
	if page < d.pageLim {
		d.pageBits[page>>6] |= 1 << (page & 63)
	}
}

func (d *dcache) pageMarked(page uint32) bool {
	return page < d.pageLim && d.pageBits[page>>6]&(1<<(page&63)) != 0
}

func (d *dcache) clearPage(page uint32) {
	if page < d.pageLim {
		d.pageBits[page>>6] &^= 1 << (page & 63)
	}
}

// Cursor modes.
const (
	curOff    uint8 = iota
	curRecord       // cold decode: capture items for a new entry
	curReplay       // cache hit: feed recorded items to the handlers
)

// cursor mediates between the instruction handlers and the cache for
// the instruction currently executing.
type cursor struct {
	mode     uint8
	n        uint8 // record: items captured; replay: items consumed
	lastOff  uint8 // record: furthest PC offset any item reached
	overflow bool  // record: more items than an entry can hold
	aborted  bool  // record: the instruction stored into its own pages
	recPage  uint32
	ent      *dcEntry // replay source
	items    [dcItemsMax]ditem
}

// record captures one decode item while recording (no-op otherwise).
func (cu *cursor) record(it ditem) {
	if cu.mode != curRecord {
		return
	}
	if cu.n >= dcItemsMax {
		cu.overflow = true
		return
	}
	cu.items[cu.n] = it
	cu.n++
	if it.endOff > cu.lastOff {
		cu.lastOff = it.endOff
	}
}

// nextSpec yields the next recorded specifier template on replay. A
// kind mismatch or exhaustion returns false and the caller parses the
// live stream instead (always correct: PC tracks every replayed item).
func (cu *cursor) nextSpec() (dspec, bool) {
	e := cu.ent
	if cu.n >= e.n || e.items[cu.n].kind != diSpec {
		return dspec{}, false
	}
	t := e.items[cu.n].spec
	cu.n++
	return t, true
}

// nextRaw yields the next recorded raw fetch of the given kind.
func (cu *cursor) nextRaw(kind uint8) (uint32, uint8, bool) {
	e := cu.ent
	if cu.n >= e.n || e.items[cu.n].kind != kind {
		return 0, 0, false
	}
	it := &e.items[cu.n]
	cu.n++
	return it.val, it.endOff, true
}

// fetchStream8 reads the next instruction-stream byte through the
// decode cursor: branch displacements and specifier peeks recorded once
// and replayed on cache hits.
func (c *CPU) fetchStream8() (byte, error) {
	if c.cur.mode == curReplay {
		if v, off, ok := c.cur.nextRaw(diByte); ok {
			c.R[RegPC] = c.instStartPC + uint32(off)
			return byte(v), nil
		}
	}
	b, err := c.fetchByte()
	if err != nil {
		return 0, err
	}
	c.cur.record(ditem{kind: diByte, endOff: uint8(c.R[RegPC] - c.instStartPC), val: uint32(b)})
	return b, nil
}

// fetchStream16 is fetchStream8 for word displacements.
func (c *CPU) fetchStream16() (uint16, error) {
	if c.cur.mode == curReplay {
		if v, off, ok := c.cur.nextRaw(diWord); ok {
			c.R[RegPC] = c.instStartPC + uint32(off)
			return uint16(v), nil
		}
	}
	w, err := c.fetchWord()
	if err != nil {
		return 0, err
	}
	c.cur.record(ditem{kind: diWord, endOff: uint8(c.R[RegPC] - c.instStartPC), val: uint32(w)})
	return w, nil
}

func (c *CPU) initDecodeCache() {
	pages := c.Mem.Pages()
	c.dc.entries = make([]dcEntry, dcSlots)
	c.dc.pageBits = make([]uint64, (pages+63)/64)
	c.dc.pageLim = pages
}

// execOne fetches, decodes and executes a single instruction, replaying
// from the decoded-instruction cache when the physical PC hits a valid
// entry.
func (c *CPU) execOne() error {
	pa, paOK := c.MMU.TranslateFast(c.R[RegPC], mmu.Read, c.psl.Cur())
	return c.execOneAt(pa, paOK)
}

// execOneAt is execOne with the PC's translation already done (the
// superblock tier translates once for its block probe and passes the
// result through here on a miss).
func (c *CPU) execOneAt(pa uint32, paOK bool) error {
	if paOK {
		e := &c.dc.entries[pa&(dcSlots-1)]
		if e.valid && e.tag == pa &&
			(!e.straddle || c.straddleValid(e)) {
			return c.execReplay(e)
		}
	}
	return c.execCold(pa, paOK)
}

// straddleValid re-translates the second page of a page-straddling
// entry and checks it still maps to the recorded physical page.
func (c *CPU) straddleValid(e *dcEntry) bool {
	va2 := vax.PageBase(c.R[RegPC]) + vax.PageSize
	pa2, ok := c.MMU.TranslateFast(va2, mmu.Read, c.psl.Cur())
	return ok && pa2 == e.tag2
}

// execReplay runs a cached decoded instruction: PC skips the opcode
// byte(s), the precharged cost matches the cold path, and the handler
// consumes the recorded items through the cursor.
func (c *CPU) execReplay(e *dcEntry) error {
	c.Stats.DecodeHits++
	cu := &c.cur
	cu.mode = curReplay
	cu.n = 0
	cu.ent = e
	c.R[RegPC] += uint32(e.opLen)
	c.Cycles += uint64(e.ie.cost)
	err := e.ie.fn(c, e.ie)
	cu.mode = curOff
	return err
}

// execCold takes the full fetch-and-parse path and, when the
// instruction is cacheable, records a cache entry as a side effect.
func (c *CPU) execCold(pa uint32, paOK bool) error {
	c.Stats.DecodeMisses++
	cu := &c.cur
	cu.mode = curOff
	va := c.R[RegPC]

	b, err := c.fetchByte()
	if err != nil {
		return err
	}
	op := uint16(b)
	opLen := uint8(1)
	if b == vax.ExtPrefix {
		b2, err := c.fetchByte()
		if err != nil {
			return err
		}
		op = 0xFD00 | uint16(b2)
		opLen = 2
	}
	ie := c.lookup(op)
	if ie == nil {
		c.Cycles += CostBase
		return c.reservedInstruction()
	}

	if !paOK {
		// The PC's page was not in the TLB when execOne looked; the
		// opcode fetch above walked it in, so one retry usually makes
		// the instruction cacheable on its first execution.
		pa, paOK = c.MMU.TranslateFast(va, mmu.Read, c.psl.Cur())
	}
	if paOK && c.cacheablePA(pa) {
		cu.mode = curRecord
		cu.n = 0
		cu.lastOff = opLen
		cu.overflow = false
		cu.aborted = false
		cu.recPage = pa / vax.PageSize
	}

	c.Cycles += uint64(ie.cost)
	err = ie.fn(c, ie)
	if cu.mode == curRecord {
		cu.mode = curOff
		c.finishRecord(pa, va, opLen, ie)
	}
	return err
}

// cacheablePA reports whether an instruction whose opcode lives at pa
// may be cached: inside physical memory (the bitmap's domain) and not
// in a device window, whose reads have side effects.
func (c *CPU) cacheablePA(pa uint32) bool {
	if pa/vax.PageSize >= c.dc.pageLim {
		return false
	}
	for _, h := range c.mmio {
		base, size := h.Window()
		if pa >= vax.PageBase(base) && pa < base+size {
			return false
		}
	}
	return true
}

// finishRecord installs the just-recorded decode into its slot. Entries
// are installed even when the instruction faulted mid-decode: replay
// falls back to the live stream once the recorded items run out, so a
// partial entry is merely less effective, never wrong.
func (c *CPU) finishRecord(pa, va uint32, opLen uint8, ie *instrEntry) {
	cu := &c.cur
	if cu.overflow || cu.aborted {
		return
	}
	straddle := (va&vax.PageMask)+uint32(cu.lastOff) > vax.PageSize
	var tag2 uint32
	if straddle {
		va2 := vax.PageBase(va) + vax.PageSize
		pa2, ok := c.MMU.TranslateFast(va2, mmu.Read, c.psl.Cur())
		if !ok || pa2/vax.PageSize >= c.dc.pageLim {
			return
		}
		tag2 = pa2
		c.dc.markPage(pa2 / vax.PageSize)
	}
	e := &c.dc.entries[pa&(dcSlots-1)]
	if e.valid && e.straddle {
		c.dc.straddles--
	}
	if straddle {
		c.dc.straddles++
	}
	e.tag = pa
	e.tag2 = tag2
	e.ie = ie
	e.straddle = straddle
	e.opLen = opLen
	e.n = cu.n
	e.heat = 0
	e.items = cu.items
	e.valid = true
	c.dc.markPage(pa / vax.PageSize)
}

// invalidateDecodePA drops every cached decode whose bytes may live in
// the physical page containing pa. Called on each store; the bitmap
// keeps the no-cached-code case at one bit test.
func (c *CPU) invalidateDecodePA(pa uint32) {
	page := pa / vax.PageSize
	if cu := &c.cur; cu.mode == curRecord {
		// The executing instruction stored into its own bytes (or past
		// its page while straddling): the captured items may already be
		// stale, so do not install them.
		if page == cu.recPage ||
			(c.instStartPC&vax.PageMask)+uint32(cu.lastOff) > vax.PageSize {
			cu.aborted = true
		}
	}
	if c.sb != nil {
		c.sbInvalidatePage(page)
	}
	if !c.dc.pageMarked(page) {
		return
	}
	for i := range c.dc.entries {
		e := &c.dc.entries[i]
		if !e.valid {
			continue
		}
		if e.tag/vax.PageSize == page || (e.straddle && e.tag2/vax.PageSize == page) {
			e.valid = false
			if e.straddle {
				c.dc.straddles--
			}
			c.Stats.DecodeInvalidations++
		}
	}
	c.dc.clearPage(page)
}

// InvalidateDecode drops cached decoded instructions overlapping the
// physical range [pa, pa+n). It is the hook for writers that bypass the
// CPU's own store path: the VMM storing into a VM's physical memory and
// device DMA.
func (c *CPU) InvalidateDecode(pa, n uint32) {
	if n == 0 {
		return
	}
	first := pa / vax.PageSize
	last := (pa + n - 1) / vax.PageSize
	for p := first; p <= last; p++ {
		c.invalidateDecodePA(p * vax.PageSize)
	}
}

// FlushDecodeCache drops every cached decode (snapshot restore, where
// all of memory may have changed underneath the mappings).
func (c *CPU) FlushDecodeCache() {
	for i := range c.dc.entries {
		if c.dc.entries[i].valid {
			c.dc.entries[i].valid = false
			c.Stats.DecodeInvalidations++
		}
	}
	for i := range c.dc.pageBits {
		c.dc.pageBits[i] = 0
	}
	c.dc.straddles = 0
	c.sbFlush()
}

// flushStraddleDecodes drops the entries that depend on two
// translations. Wired to the MMU's TBIA/TBIS callbacks: a single-page
// entry revalidates its translation on every execution, but a
// straddling entry's second page was translated at record time, so a
// TLB invalidate must drop it.
func (c *CPU) flushStraddleDecodes() {
	if c.sb != nil {
		// Superblocks revalidate their code-page translations at entry,
		// so a TLB invalidate between blocks costs nothing; one issued
		// mid-block must force an exit before the next step, because the
		// entry check has already passed.
		c.sb.tlbFlush = true
	}
	if c.dc.straddles == 0 {
		return
	}
	for i := range c.dc.entries {
		e := &c.dc.entries[i]
		if e.valid && e.straddle {
			e.valid = false
			c.Stats.DecodeInvalidations++
		}
	}
	c.dc.straddles = 0
}
