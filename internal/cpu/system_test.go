package cpu

import (
	"testing"

	"repro/internal/vax"
)

// enterUser switches the machine to user mode at the given label using
// REI semantics, as an OS would.
func (ma *machine) enterMode(t *testing.T, m vax.Mode, label string) {
	t.Helper()
	ma.c.SetPSL(vax.PSL(0).WithCur(m).WithPrv(m))
	ma.c.SetPC(ma.prog.MustSymbol(label))
}

func TestCHMKFromUser(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	chmk #42
	movl #1, r6          ; resumes here after REI
	halt                 ; priv fault in user mode -> through kernel halt below
	.align 4
chmk:	movl (sp)+, r7       ; code operand
	movpsl r8
	rei
	.align 4
privh:	halt
`)
	ma.setVector(t, vax.VecCHMK, "chmk")
	ma.setVector(t, vax.VecPrivInstr, "privh")
	ma.enterMode(t, vax.User, "start")
	ma.run(t, 100)
	c := ma.c
	if c.R[7] != 42 {
		t.Errorf("CHMK code = %d, want 42", c.R[7])
	}
	psl := vax.PSL(c.R[8])
	if psl.Cur() != vax.Kernel || psl.Prv() != vax.User {
		t.Errorf("handler PSL = %s, want cur=kernel prv=user", psl)
	}
	if c.R[6] != 1 {
		t.Error("REI did not resume user code")
	}
	if c.Stats.CHMs != 1 || c.Stats.REIs == 0 {
		t.Errorf("stats: %+v", c.Stats)
	}
}

func TestCHMNeverLowersPrivilege(t *testing.T) {
	// CHMU from executive mode: vector is CHMU's, but mode stays
	// executive (CHM switches only to equal or increased privilege).
	ma := newMachine(t, StandardVAX, `
start:	chmu #7
	halt
	.align 4
chmu:	movpsl r8
	movl #1, r9
	halt
	.align 4
privh:	halt
`)
	ma.setVector(t, vax.VecCHMU, "chmu")
	ma.setVector(t, vax.VecPrivInstr, "privh")
	ma.enterMode(t, vax.Executive, "start")
	ma.run(t, 100)
	if ma.c.R[9] != 1 {
		t.Fatal("CHMU handler not reached")
	}
	psl := vax.PSL(ma.c.R[8])
	if psl.Cur() != vax.Executive {
		t.Errorf("CHMU from executive landed in %s", psl.Cur())
	}
}

func TestCHMStackSwitch(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	chme #5
	halt
	.align 4
chme:	movl sp, r3
	movl #1, r9
	halt
	.align 4
privh:	halt
`)
	ma.setVector(t, vax.VecCHME, "chme")
	ma.setVector(t, vax.VecPrivInstr, "privh")
	ma.enterMode(t, vax.User, "start")
	ma.run(t, 100)
	if ma.c.R[9] != 1 {
		t.Fatal("CHME handler not reached")
	}
	// Executive stack: ESP base minus the 3 pushed longwords.
	if ma.c.R[3] != testESP-12 {
		t.Errorf("handler sp = %#x, want %#x", ma.c.R[3], testESP-12)
	}
}

func TestREIValidation(t *testing.T) {
	// User mode attempts to REI to kernel mode: reserved operand fault.
	ma := newMachine(t, StandardVAX, `
start:	pushl #0             ; PSL image: kernel mode, all clear
	pushl #target
	rei
target:	halt
	.align 4
rsvd:	movl #0x99, r9
	halt
	.align 4
privh:	halt
`)
	ma.setVector(t, vax.VecRsvdOperand, "rsvd")
	ma.setVector(t, vax.VecPrivInstr, "privh")
	ma.enterMode(t, vax.User, "start")
	ma.run(t, 100)
	if ma.c.R[9] != 0x99 {
		t.Error("REI privilege escalation not caught")
	}
}

func TestREIRejectsVMBit(t *testing.T) {
	// Even in kernel mode, software cannot set PSL<VM> through REI.
	ma := newMachine(t, StandardVAX, `
start:	movl #0x10000000, r0 ; PSL<VM>
	pushl r0
	pushl #target
	rei
target:	halt
	.align 4
rsvd:	movl #0x77, r9
	halt
`)
	ma.setVector(t, vax.VecRsvdOperand, "rsvd")
	ma.run(t, 100)
	if ma.c.R[9] != 0x77 {
		t.Error("REI accepted PSL<VM>")
	}
}

func TestREIToLowerMode(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	movl #0x03C00000, r0 ; cur=user prv=user
	pushl r0
	pushl #ucode
	rei
	halt
ucode:	movpsl r5
	chmk #0
	.align 4
chmk:	movl #1, r9
	halt
`)
	ma.setVector(t, vax.VecCHMK, "chmk")
	ma.run(t, 100)
	if ma.c.R[9] != 1 {
		t.Fatal("did not complete round trip")
	}
	if vax.PSL(ma.c.R[5]).Cur() != vax.User {
		t.Errorf("user code PSL = %s", vax.PSL(ma.c.R[5]))
	}
}

func TestMOVPSLUnprivileged(t *testing.T) {
	// Table 1: MOVPSL reads PSL<CUR>/<PRV> without any trap, from any
	// mode — the sensitive-but-unprivileged behaviour.
	ma := newMachine(t, StandardVAX, `
start:	movpsl r0
	chmk #0
	.align 4
chmk:	halt
`)
	ma.setVector(t, vax.VecCHMK, "chmk")
	ma.enterMode(t, vax.User, "start")
	ma.run(t, 100)
	psl := vax.PSL(ma.c.R[0])
	if psl.Cur() != vax.User {
		t.Errorf("MOVPSL cur = %s", psl.Cur())
	}
	if ma.c.Stats.Exceptions != 1 { // only the CHMK
		t.Errorf("MOVPSL trapped: %d exceptions", ma.c.Stats.Exceptions)
	}
}

func TestMTPRPrivileged(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	mtpr #3, #18         ; set IPL=3 (kernel only)
	mfpr #18, r2
	halt
`)
	ma.run(t, 100)
	if ma.c.R[2] != 3 || ma.c.PSL().IPL() != 3 {
		t.Errorf("IPL = %d / r2 = %d", ma.c.PSL().IPL(), ma.c.R[2])
	}
}

func TestMTPRFromUserFaults(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	mtpr #3, #18
	halt
	.align 4
privh:	movl #0xF0, r9
	halt
`)
	ma.setVector(t, vax.VecPrivInstr, "privh")
	ma.enterMode(t, vax.User, "start")
	ma.run(t, 100)
	if ma.c.R[9] != 0xF0 {
		t.Error("MTPR from user did not fault")
	}
	if ma.c.Stats.PrivTraps != 1 {
		t.Errorf("PrivTraps = %d", ma.c.Stats.PrivTraps)
	}
}

func TestMFPRStackPointers(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	mfpr #0, r0          ; KSP: current mode's SP is live
	mfpr #3, r3          ; USP from save area
	mtpr #0x4000, #3     ; set USP
	mfpr #3, r4
	halt
`)
	ma.run(t, 100)
	// KSP read while in kernel mode returns the live SP.
	if ma.c.R[0] != testKSP {
		t.Errorf("KSP = %#x", ma.c.R[0])
	}
	if ma.c.R[3] != testUSP || ma.c.R[4] != 0x4000 {
		t.Errorf("USP handling: %#x %#x", ma.c.R[3], ma.c.R[4])
	}
}

func TestMTPRNonexistentRegister(t *testing.T) {
	// The virtual-VAX registers don't exist on a real machine (Table 4).
	ma := newMachine(t, StandardVAX, `
start:	mtpr #1, #201        ; KCALL
	halt
	.align 4
rsvd:	movl #0xE0, r9
	halt
`)
	ma.setVector(t, vax.VecRsvdOperand, "rsvd")
	ma.run(t, 100)
	if ma.c.R[9] != 0xE0 {
		t.Error("MTPR to KCALL on real machine should take reserved operand fault")
	}
}

func TestSoftwareInterrupt(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	mtpr #8, #18         ; IPL 8
	mtpr #3, #20          ; request software interrupt level 3 (SIRR)
	movl #1, r3          ; not interrupted yet (IPL 8 > 3)
	mtpr #0, #18          ; drop IPL: interrupt delivers
	halt
	.align 4
soft3:	movl #1, r9
	movpsl r10
	rei
`)
	ma.setVector(t, vax.SoftwareVector(3), "soft3")
	ma.run(t, 100)
	if ma.c.R[3] != 1 {
		t.Error("interrupt delivered while IPL masked it")
	}
	if ma.c.R[9] != 1 {
		t.Fatal("software interrupt not delivered after IPL drop")
	}
	if vax.PSL(ma.c.R[10]).IPL() != 3 {
		t.Errorf("handler IPL = %d, want 3", vax.PSL(ma.c.R[10]).IPL())
	}
	if ma.c.SISR != 0 {
		t.Errorf("SISR not cleared: %#x", ma.c.SISR)
	}
}

func TestDeviceInterruptMasking(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	mtpr #31, #18
	movl #1, r3
	mtpr #0, #18
	halt
	.align 4
devh:	movl #2, r9
	rei
`)
	ma.setVector(t, vax.Vector(0xC0), "devh")
	ma.c.RequestInterrupt(vax.IPLClock, 0xC0)
	ma.run(t, 100)
	if ma.c.R[3] != 1 || ma.c.R[9] != 2 {
		t.Errorf("device interrupt: r3=%d r9=%d", ma.c.R[3], ma.c.R[9])
	}
	if ma.c.Stats.Interrupts != 1 {
		t.Errorf("Interrupts = %d", ma.c.Stats.Interrupts)
	}
}

func TestPendingAboveOrdering(t *testing.T) {
	ma := newMachine(t, StandardVAX, "start: halt")
	c := ma.c
	c.RequestInterrupt(10, 0xC0)
	c.RequestInterrupt(20, 0xC4)
	if got := c.PendingAbove(0); got != 20 {
		t.Errorf("PendingAbove(0) = %d, want 20", got)
	}
	// Levels at or below the mask are held pending, not visible.
	if got := c.PendingAbove(20); got != 0 {
		t.Errorf("PendingAbove(20) = %d, want 0", got)
	}
	c.ClearInterrupt(20)
	if got := c.PendingAbove(15); got != 0 {
		t.Errorf("PendingAbove(15) = %d, want 0", got)
	}
	if got := c.PendingAbove(5); got != 10 {
		t.Errorf("PendingAbove(5) = %d, want 10", got)
	}
}

func TestLDPCTXSVPCTXRoundTrip(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	mtpr #pcb, #16       ; PCBB
	ldpctx
	rei                  ; resume the process described by the PCB
	.align 4
proc:	movl #0xABCD, r10
	chmk #0
	.align 4
chmk:	addl2 #4, sp         ; discard the CHMK code operand
	svpctx               ; save it back
	movl #1, r9
	halt
	.align 4
	.org 0x700
pcb:	.long 0x8000, 0x7000, 0x6000, 0x5000   ; KSP ESP SSP USP
	.long 101, 102, 103, 104, 105, 106, 107, 108, 109, 110, 111, 112
	.long 113, 114       ; AP FP
	.long proc           ; PC
	.long 0x03C00000     ; PSL: cur=user prv=user
	.long 0, 0, 0, 0     ; P0BR P0LR P1BR P1LR
`)
	ma.setVector(t, vax.VecCHMK, "chmk")
	ma.run(t, 200)
	c := ma.c
	if c.R[9] != 1 {
		t.Fatal("round trip incomplete")
	}
	pcb := ma.prog.MustSymbol("pcb")
	// After SVPCTX the PCB must hold the process's registers, including
	// the r10 the process wrote, and the PC/PSL of the CHMK trap.
	r10, _ := ma.m.LoadLong(pcb + PCBR0 + 4*10)
	if r10 != 0xABCD {
		t.Errorf("saved r10 = %#x", r10)
	}
	savedPSL, _ := ma.m.LoadLong(pcb + PCBPSL)
	if vax.PSL(savedPSL).Cur() != vax.User {
		t.Errorf("saved PSL = %s", vax.PSL(savedPSL))
	}
	r0, _ := ma.m.LoadLong(pcb + PCBR0)
	if r0 != 101 {
		t.Errorf("saved r0 = %d", r0)
	}
}

func TestHALTFromUserFaults(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	halt
	.align 4
privh:	movl #0xAB, r9
	halt
`)
	ma.setVector(t, vax.VecPrivInstr, "privh")
	ma.enterMode(t, vax.User, "start")
	ma.run(t, 100)
	if ma.c.R[9] != 0xAB {
		t.Error("HALT from user mode must fault, not halt")
	}
}

func TestWAITOnStandardVAXFaults(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	wait
	halt
	.align 4
privh:	movl #0xCD, r9
	halt
`)
	ma.setVector(t, vax.VecPrivInstr, "privh")
	ma.run(t, 100)
	if ma.c.R[9] != 0xCD {
		t.Error("WAIT on standard VAX should privileged-instruction fault")
	}
}

func TestPROBEVMOnStandardVAXFaults(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	probevmr #1, (r0)
	halt
	.align 4
privh:	movl #0xEF, r9
	halt
`)
	ma.setVector(t, vax.VecPrivInstr, "privh")
	ma.run(t, 100)
	if ma.c.R[9] != 0xEF {
		t.Error("PROBEVM on standard VAX should privileged-instruction fault")
	}
}

func TestWAITOnModifiedBareMachineFaults(t *testing.T) {
	// Table 4 row WAIT, "Modified VAX: no change": outside a VM the
	// modified machine behaves like a standard VAX.
	ma := newMachine(t, ModifiedVAX, `
start:	wait
	halt
	.align 4
privh:	movl #0xCE, r9
	halt
`)
	ma.setVector(t, vax.VecPrivInstr, "privh")
	ma.run(t, 100)
	if ma.c.R[9] != 0xCE {
		t.Error("WAIT on modified bare machine should still fault")
	}
}

func TestMOVPSLNeverShowsVMBit(t *testing.T) {
	ma := newMachine(t, ModifiedVAX, `
start:	movpsl r0
	halt
`)
	// Force the raw bit on to prove MOVPSL masks it.
	ma.c.psl = ma.c.psl.WithVM(false) // normal run first
	ma.run(t, 100)
	if vax.PSL(ma.c.R[0]).VM() {
		t.Error("MOVPSL leaked PSL<VM>")
	}
}
