package cpu

// The processor's trace.Source implementation (structural — this
// package does not import trace). Counter names are part of the
// observable surface; keep them stable.

// Name identifies the processor counter source.
func (c *CPU) Name() string { return "cpu" }

// Counters emits the processor's counters.
func (c *CPU) Counters(emit func(name string, v uint64)) {
	s := c.Stats
	emit("cycles", c.Cycles)
	emit("instructions", s.Instructions)
	emit("exceptions", s.Exceptions)
	emit("interrupts", s.Interrupts)
	emit("vm_traps", s.VMTraps)
	emit("priv_traps", s.PrivTraps)
	emit("chm", s.CHMs)
	emit("rei", s.REIs)
	emit("movpsl", s.MOVPSLs)
	emit("probe", s.Probes)
	emit("decode_hits", s.DecodeHits)
	emit("decode_misses", s.DecodeMisses)
	emit("decode_invalidations", s.DecodeInvalidations)
	emit("sb_builds", s.SBBuilds)
	emit("sb_enters", s.SBEnters)
	emit("sb_steps", s.SBSteps)
	emit("sb_early_exits", s.SBEarlyExits)
	emit("sb_invalidations", s.SBInvalidations)
}
