package cpu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/mem"
	"repro/internal/vax"
)

// machine is a small bare test machine: 256 KB physical memory, SCB at
// physical 0, code loaded at its assembly origin, kernel mode, mapping
// off.
type machine struct {
	c    *CPU
	m    *mem.Memory
	prog *asm.Program
}

const (
	testOrigin = 0x400
	testKSP    = 0x8000
	testESP    = 0x7000
	testSSP    = 0x6000
	testUSP    = 0x5000
	testISP    = 0x9000
)

func newMachine(t *testing.T, variant Variant, src string) *machine {
	t.Helper()
	prog, err := asm.Assemble(src, testOrigin)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.New(256 * 1024)
	if err := m.StoreBytes(prog.Origin, prog.Code); err != nil {
		t.Fatal(err)
	}
	c := New(m, variant)
	c.SCBB = 0
	c.SetStackFor(vax.Kernel, testKSP)
	c.SetStackFor(vax.Executive, testESP)
	c.SetStackFor(vax.Supervisor, testSSP)
	c.SetStackFor(vax.User, testUSP)
	c.ISP = testISP
	c.SetPSL(vax.PSL(0).WithCur(vax.Kernel))
	start := prog.Origin
	if s, ok := prog.Symbol("start"); ok {
		start = s
	}
	c.SetPC(start)
	return &machine{c: c, m: m, prog: prog}
}

// setVector points an SCB vector at a label.
func (ma *machine) setVector(t *testing.T, vec vax.Vector, label string) {
	t.Helper()
	addr := ma.prog.MustSymbol(label)
	if err := ma.m.StoreLong(uint32(vec), addr); err != nil {
		t.Fatal(err)
	}
}

func (ma *machine) run(t *testing.T, maxSteps uint64) {
	t.Helper()
	ma.c.Run(maxSteps)
	if !ma.c.Halted {
		t.Fatalf("machine did not halt; pc=%#x psl=%s", ma.c.PC(), ma.c.PSL())
	}
}

func TestArithmeticAndLoops(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	clrl r0
	movl #10, r1
loop:	addl2 r1, r0
	sobgtr r1, loop
	halt
`)
	ma.run(t, 1000)
	if ma.c.R[0] != 55 {
		t.Errorf("sum = %d, want 55", ma.c.R[0])
	}
}

func TestMoveAddressingModes(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	moval buf, r1
	movl #0x11223344, (r1)
	movl (r1), r2
	movl #4, r3
	movl r2, 4(r1)
	movl 4(r1), r4
	moval buf, r5
	movl (r5)+, r6
	movl (r5)+, r7
	movl #0xAA, -(sp)
	movl (sp)+, r8
	movab buf+4, r9
	movl @#buf, r10
	halt
buf:	.long 0, 0
`)
	ma.run(t, 1000)
	c := ma.c
	if c.R[2] != 0x11223344 || c.R[4] != 0x11223344 || c.R[6] != 0x11223344 ||
		c.R[7] != 0x11223344 || c.R[8] != 0xAA || c.R[10] != 0x11223344 {
		t.Errorf("registers: %#v", c.R)
	}
	if c.R[9] != ma.prog.MustSymbol("buf")+4 {
		t.Errorf("movab result %#x", c.R[9])
	}
}

func TestByteWordOps(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	movl #0xDDCCBBAA, r0
	movb #0x11, r0        ; only low byte changes
	movw #0x2222, r1
	movzbl #0xFF, r2
	movzwl #0xFFFF, r3
	mcomb #0x0F, r4
	halt
`)
	ma.run(t, 100)
	c := ma.c
	if c.R[0] != 0xDDCCBB11 {
		t.Errorf("movb to register: %#x", c.R[0])
	}
	if c.R[2] != 0xFF || c.R[3] != 0xFFFF {
		t.Errorf("movz: %#x %#x", c.R[2], c.R[3])
	}
	if c.R[4]&0xFF != 0xF0 {
		t.Errorf("mcomb: %#x", c.R[4])
	}
}

func TestConditionCodesAndBranches(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	clrl r10
	movl #5, r0
	cmpl r0, #5
	bneq fail
	cmpl r0, #6
	bgeq fail
	cmpl #0xFFFFFFFF, #1  ; -1 < 1 signed, but unsigned greater
	bgeq fail
	movl #1, r10
	halt
fail:	mnegl #1, r10
	halt
`)
	ma.run(t, 100)
	if ma.c.R[10] != 1 {
		t.Errorf("branch logic failed, r10 = %#x", ma.c.R[10])
	}
}

func TestUnsignedBranches(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	cmpl #0xFFFFFFFF, #1
	blequ fail            ; unsigned 0xFFFFFFFF > 1
	cmpl #1, #2
	bgtru fail
	movl #1, r11
	halt
fail:	clrl r11
	halt
`)
	ma.run(t, 100)
	if ma.c.R[11] != 1 {
		t.Error("unsigned branches wrong")
	}
}

func TestSubroutinesAndStack(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	movl #7, r0
	jsb double
	bsbb addone
	halt
double:	addl2 r0, r0
	rsb
addone:	incl r0
	rsb
`)
	ma.run(t, 100)
	if ma.c.R[0] != 15 {
		t.Errorf("r0 = %d, want 15", ma.c.R[0])
	}
	if ma.c.SP() != testKSP {
		t.Errorf("stack imbalance: sp=%#x", ma.c.SP())
	}
}

func TestMulDivLogic(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	mull3 #6, #7, r0
	divl3 #6, #42, r1
	bisl3 #0x0F, #0xF0, r2
	bicl3 #0x0F, #0xFF, r3
	xorl3 #0xFF, #0x0F, r4
	ashl #4, #1, r5
	ashl #-4, #0x100, r6
	halt
`)
	ma.run(t, 100)
	c := ma.c
	want := []struct {
		reg int
		v   uint32
	}{{0, 42}, {1, 7}, {2, 0xFF}, {3, 0xF0}, {4, 0xF0}, {5, 16}, {6, 16}}
	for _, w := range want {
		if c.R[w.reg] != w.v {
			t.Errorf("r%d = %#x, want %#x", w.reg, c.R[w.reg], w.v)
		}
	}
}

func TestDivideByZeroTrap(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	divl3 #0, #5, r0
	halt
	.align 4
arith:	movl #0xBAD, r9
	movl (sp)+, r8      ; trap code
	rei
`)
	ma.setVector(t, vax.VecArithmetic, "arith")
	ma.run(t, 100)
	if ma.c.R[9] != 0xBAD || ma.c.R[8] != 1 {
		t.Errorf("arithmetic trap not taken: r9=%#x code=%d", ma.c.R[9], ma.c.R[8])
	}
}

func TestLoopInstructions(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	clrl r0
	clrl r1
l1:	incl r0
	aoblss #5, r1, l1     ; r1 counts 1..5
	clrl r2
	movl #3, r3
l2:	incl r2
	sobgeq r3, l2         ; executes for r3=2,1,0 -> 4 iterations
	halt
`)
	ma.run(t, 1000)
	if ma.c.R[0] != 5 || ma.c.R[2] != 4 {
		t.Errorf("aoblss/sobgeq: r0=%d r2=%d", ma.c.R[0], ma.c.R[2])
	}
}

func TestBLBSAndBitl(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	movl #5, r0
	blbs r0, odd
	clrl r1
	halt
odd:	movl #1, r1
	bitl #4, r0
	beql fail
	movl #2, r2
	halt
fail:	clrl r2
	halt
`)
	ma.run(t, 100)
	if ma.c.R[1] != 1 || ma.c.R[2] != 2 {
		t.Error("blbs/bitl failed")
	}
}

func TestReservedInstructionFault(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	.byte 0xCF           ; CASEL: unimplemented
	halt
	.align 4
rsvd:	movl #0x111, r9
	movl (sp), r10       ; saved PC
	movl #after, (sp)    ; skip the bad instruction
	rei
after:	halt
`)
	ma.setVector(t, vax.VecPrivInstr, "rsvd")
	ma.run(t, 100)
	if ma.c.R[9] != 0x111 {
		t.Error("reserved instruction fault not taken")
	}
	if ma.c.R[10] != testOrigin {
		t.Errorf("fault PC = %#x, want %#x", ma.c.R[10], testOrigin)
	}
}

func TestXFCFault(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	xfc
	halt
	.align 4
cust:	movl #0x222, r9
	movl #done, (sp)
	rei
done:	halt
`)
	ma.setVector(t, vax.VecCustReserved, "cust")
	ma.run(t, 100)
	if ma.c.R[9] != 0x222 {
		t.Error("XFC fault not taken")
	}
}

func TestBPTTrap(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	bpt
	movl #1, r3          ; trap resumes here
	halt
	.align 4
bpt:	movl #0x333, r9
	rei
`)
	ma.setVector(t, vax.VecBreakpoint, "bpt")
	ma.run(t, 100)
	if ma.c.R[9] != 0x333 || ma.c.R[3] != 1 {
		t.Error("BPT trap misbehaved")
	}
}

func TestCyclesAdvance(t *testing.T) {
	ma := newMachine(t, StandardVAX, "start:\tnop\n\tnop\n\thalt")
	ma.run(t, 10)
	if ma.c.Cycles == 0 {
		t.Error("no cycles charged")
	}
	if ma.c.Stats.Instructions != 3 {
		t.Errorf("instructions = %d", ma.c.Stats.Instructions)
	}
}

func TestHaltReasonAndStringers(t *testing.T) {
	ma := newMachine(t, StandardVAX, "start:\thalt")
	ma.run(t, 10)
	if ma.c.Reason != HaltInstruction {
		t.Errorf("reason = %d", ma.c.Reason)
	}
	if ma.c.String() == "" || StandardVAX.String() == "" || ModifiedVAX.String() == "" {
		t.Error("empty stringer")
	}
}

func TestRegisterSnapshotOnFault(t *testing.T) {
	// A faulting instruction with an autoincrement operand must restore
	// the register before dispatching so the retry re-executes cleanly.
	ma := newMachine(t, StandardVAX, `
start:	moval buf, r1
	movl (r1)+, @#0xF0000   ; write to nonexistent memory: machine check
	halt
	.align 4
mcheck:	movl r1, r9          ; r1 must have been restored
	halt
buf:	.long 0x42
`)
	ma.setVector(t, vax.VecMachineCheck, "mcheck")
	ma.run(t, 100)
	if ma.c.R[9] != ma.prog.MustSymbol("buf") {
		t.Errorf("autoincrement not unwound: r9=%#x want %#x", ma.c.R[9], ma.prog.MustSymbol("buf"))
	}
}
