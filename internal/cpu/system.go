package cpu

import (
	"repro/internal/vax"
)

// The sensitive and privileged instructions, with the behaviour matrix
// of Table 4 of the paper: each reacts to the architecture variant and,
// on the modified VAX, to PSL<VM>.

func (c *CPU) privFault() error {
	c.Stats.PrivTraps++
	return c.scratch.Set(vax.VecPrivInstr, vax.Fault)
}

// vmTrap raises a VM-emulation trap carrying the microcode-decoded
// operand package of Section 4.2. kind is Trap for instructions the VMM
// completes (saved PC = next instruction) and Fault for instructions
// retried after the VMM intervenes (PROBE shadow fills).
func (c *CPU) vmTrap(kind vax.ExcKind, op uint16, operands []uint32, wb *vax.OperandRef) error {
	c.Stats.VMTraps++
	c.Cycles += CostVMTrap
	return c.vmScratch.Set(kind, op, c.instStartPC, c.R[RegPC], c.GuestPSL(), operands, wb)
}

// vmKernel reports whether the processor is executing the VM's kernel
// mode (the condition under which privileged sensitive instructions use
// the VM-emulation trap, Section 4.4.1).
func (c *CPU) vmKernel() bool {
	return c.InVMMode() && c.VMPSL.Cur() == vax.Kernel
}

// SetWaiting puts the processor in (or out of) the WAIT idle state; used
// by the VMM when every virtual machine is idle.
func (c *CPU) SetWaiting(on bool) { c.waiting = on }

// Waiting reports the WAIT idle state.
func (c *CPU) Waiting() bool { return c.waiting }

// --- CHM ---

func (c *CPU) execCHM(op uint16) error {
	target, _ := vax.CHMTarget(op)
	codeOp, err := c.decodeOperand(2, false)
	if err != nil {
		return err
	}
	code, err := c.readOp(codeOp)
	if err != nil {
		return err
	}
	code = uint32(signExt(code, 2))
	c.Stats.CHMs++

	if c.InVMMode() {
		// Modified VAX: CHM is sensitive (reads and writes PSL modes);
		// in VM mode it traps to the VMM with the decoded code operand.
		return c.vmTrap(vax.Trap, op, []uint32{code, uint32(target)}, nil)
	}

	if c.psl.IS() {
		// CHM on the interrupt stack is illegal.
		return c.scratch.Set(vax.VecKernelStkInv, vax.Abort)
	}
	// The new mode has privilege no lower than the current mode: CHM can
	// only hold or increase privilege, but the vector is always that of
	// the instruction's target mode.
	newMode := target
	if c.psl.Cur().MorePrivileged(target) {
		newMode = c.psl.Cur()
	}
	c.Cycles += CostCHM
	c.Stats.Exceptions++
	return c.DispatchSCB(c.scratch.Set1(vax.CHMVector(target), vax.Trap, code), newMode)
}

// --- REI ---

func (c *CPU) execREI() error {
	c.Stats.REIs++
	if c.InVMMode() {
		// "REI is one of the most complex VAX instructions;
		// virtualization makes it doubly so" — the bulk of the work is
		// done in VMM software (Section 4.2.3).
		return c.vmTrap(vax.Trap, vax.OpREI, nil, nil)
	}
	newPC, err := c.Pop()
	if err != nil {
		return err
	}
	rawPSL, err := c.Pop()
	if err != nil {
		return err
	}
	newPSL := vax.PSL(rawPSL)
	if err := c.checkREIPSL(newPSL); err != nil {
		return err
	}
	c.Cycles += CostREI
	c.SetPSL(newPSL)
	c.R[RegPC] = newPC
	return nil
}

// checkREIPSL performs the REI sanity checks: the new PSL may not
// increase privilege, raise IPL, set reserved bits (including PSL<VM> —
// software cannot enter VM mode through REI), or claim the interrupt
// stack improperly.
func (c *CPU) checkREIPSL(n vax.PSL) error {
	cur := c.psl
	switch {
	case uint32(n)&(vax.PSLMBZ|vax.PSLVM) != 0,
		n.Cur().MorePrivileged(cur.Cur()),
		n.Prv().MorePrivileged(n.Cur()),
		n.IS() && !cur.IS(),
		n.IS() && n.Cur() != vax.Kernel,
		n.IPL() > 0 && n.Cur() != vax.Kernel,
		n.IPL() > cur.IPL():
		return c.rsvdOperand()
	}
	return nil
}

// --- MOVPSL ---

func (c *CPU) execMOVPSL() error {
	dst, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	c.Stats.MOVPSLs++
	var v uint32
	if c.InVMMode() {
		// Microcode merge of VMPSL and the real PSL (Section 4.2.1):
		// never traps, always produces the VM's PSL.
		c.Cycles += CostMOVPSLMerge
		v = uint32(c.GuestPSL())
	} else {
		// PSL<VM> is never visible to software reads.
		v = uint32(c.psl) &^ vax.PSLVM
	}
	return c.writeOp(dst, v)
}

// --- PROBE ---

func (c *CPU) execPROBE(op uint16) error {
	modeOp, err := c.decodeOperand(1, false)
	if err != nil {
		return err
	}
	lenOp, err := c.decodeOperand(2, false)
	if err != nil {
		return err
	}
	baseOp, err := c.decodeOperand(1, true)
	if err != nil {
		return err
	}
	modeVal, err := c.readOp(modeOp)
	if err != nil {
		return err
	}
	lenVal, err := c.readOp(lenOp)
	if err != nil {
		return err
	}
	base := baseOp.addr
	if lenVal == 0 {
		lenVal = 1
	}
	c.Stats.Probes++
	c.Cycles += CostProbe

	write := op == vax.OpPROBEW
	// The probe mode is the less privileged of the mode operand and the
	// previous mode — the VM's previous mode when in VM mode, which is
	// why VMPSL makes unprivileged PROBE work under ring compression.
	prv := c.psl.Prv()
	if c.InVMMode() {
		prv = c.VMPSL.Prv()
	}
	probeMode := vax.LeastPrivileged(vax.Mode(modeVal&3), prv)

	// PROBE tests the first and last byte of the structure (Table 2).
	addrs := []uint32{base, base + lenVal - 1}
	if vax.PageBase(addrs[0]) == vax.PageBase(addrs[1]) {
		addrs = addrs[:1]
	}
	accessible := true
	for _, va := range addrs {
		if c.InVMMode() {
			pte, inLen, err := c.MMU.ProbePTE(va)
			if err != nil {
				return err
			}
			if !inLen {
				accessible = false
				continue
			}
			if !pte.Valid() {
				// Shadow PTE not filled: the protection code is not
				// meaningful, so trap to the VMM and retry after the
				// fill (Section 4.3.2).
				return c.vmTrap(vax.Fault, op,
					[]uint32{modeVal & 3, lenVal, base, va}, nil)
			}
			prot := pte.Prot()
			ok := prot.CanRead(probeMode)
			if write {
				ok = prot.CanWrite(probeMode)
				if !ok && c.ProbeWTrapOnDeny {
					// Under the read-only-shadow scheme a write denial
					// may just mean "not yet modified": only the VMM
					// can tell, from the VM's own page table
					// (Section 4.4.2's rejected alternative).
					return c.vmTrap(vax.Fault, op,
						[]uint32{modeVal & 3, lenVal, base, va}, nil)
				}
			}
			if !ok {
				accessible = false
			}
			continue
		}
		a := mmuAccess(write)
		ok, err := c.MMU.Probe(va, a, probeMode)
		if err != nil {
			return err
		}
		if !ok {
			accessible = false
		}
	}
	// Z set means not accessible; N and V cleared, C unchanged.
	c.setNZVC(false, !accessible, false, c.cc(vax.PSLC))
	return nil
}

// --- PROBEVM ---

// execPROBEVM is reached only on the modified VAX: the standard
// variant's dispatch row raises the privileged instruction trap of
// Table 4 without decoding.
func (c *CPU) execPROBEVM(op uint16) error {
	modeOp, err := c.decodeOperand(1, false)
	if err != nil {
		return err
	}
	baseOp, err := c.decodeOperand(1, true)
	if err != nil {
		return err
	}
	modeVal, err := c.readOp(modeOp)
	if err != nil {
		return err
	}
	base := baseOp.addr

	if c.InVMMode() {
		// PROBEVM is itself privileged and sensitive (Section 4.3.3).
		if c.vmKernel() {
			return c.vmTrap(vax.Trap, op, []uint32{modeVal & 3, base}, nil)
		}
		return c.privFault()
	}
	if c.psl.Cur() != vax.Kernel {
		return c.privFault()
	}

	// Probe mode is no more privileged than executive (Table 2).
	probeMode := vax.LeastPrivileged(vax.Mode(modeVal&3), vax.Executive)
	write := op == vax.OpPROBEVMW

	// Tests only one byte; tests protection, validity, modify in that
	// order (Table 2). Z: protection denies. V: PTE invalid. C: write
	// probe of an unmodified page.
	pte, inLen, err := c.MMU.ProbePTE(base)
	if err != nil {
		return err
	}
	c.Cycles += CostProbe
	switch {
	case !inLen:
		c.setNZVC(false, true, false, false)
	case func() bool {
		if write {
			return !pte.Prot().CanWrite(probeMode)
		}
		return !pte.Prot().CanRead(probeMode)
	}():
		c.setNZVC(false, true, false, false)
	case !pte.Valid():
		c.setNZVC(false, false, true, false)
	case write && !pte.Modified():
		c.setNZVC(false, false, false, true)
	default:
		c.setNZVC(false, false, false, false)
	}
	return nil
}

// --- WAIT ---

// execWAIT is reached only on the modified VAX (see execPROBEVM).
func (c *CPU) execWAIT() error {
	if c.InVMMode() {
		if c.vmKernel() {
			// The WAIT handshake: the VM tells the VMM it is idle
			// (Section 5); the VMM can run another VM.
			return c.vmTrap(vax.Trap, vax.OpWAIT, nil, nil)
		}
		return c.privFault()
	}
	// On the modified bare machine WAIT behaves as on a standard VAX:
	// privileged instruction trap (Table 4, "no change").
	return c.privFault()
}

// --- MTPR / MFPR ---

func (c *CPU) execMTPR() error {
	srcOp, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	regOp, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	src, err := c.readOp(srcOp)
	if err != nil {
		return err
	}
	regNum, err := c.readOp(regOp)
	if err != nil {
		return err
	}
	if c.InVMMode() {
		if c.vmKernel() {
			return c.vmTrap(vax.Trap, vax.OpMTPR, []uint32{src, regNum}, nil)
		}
		// "If the VM is not in kernel mode, these instructions cause a
		// privileged instruction trap instead" (Section 4.4.1).
		return c.privFault()
	}
	if c.psl.Cur() != vax.Kernel {
		return c.privFault()
	}
	return c.WriteIPR(vax.IPR(regNum), src)
}

func (c *CPU) execMFPR() error {
	regOp, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	dstOp, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	regNum, err := c.readOp(regOp)
	if err != nil {
		return err
	}
	if c.InVMMode() {
		if c.vmKernel() {
			return c.vmTrap(vax.Trap, vax.OpMFPR, []uint32{regNum},
				c.vmScratch.Ref(dstOp.kind == opRegister, dstOp.reg, dstOp.addr))
		}
		return c.privFault()
	}
	if c.psl.Cur() != vax.Kernel {
		return c.privFault()
	}
	v, err := c.ReadIPR(vax.IPR(regNum))
	if err != nil {
		return err
	}
	if err := c.writeOp(dstOp, v); err != nil {
		return err
	}
	c.setNZ(v, 4)
	return nil
}

// WriteIPR performs the architectural effect of MTPR to register r.
// Exported because the VMM uses it when emulating MTPR for registers it
// chooses to pass through.
func (c *CPU) WriteIPR(r vax.IPR, v uint32) error {
	for _, h := range c.iprs {
		if h.WriteIPR(c, r, v) {
			c.Cycles += CostMTPR
			return nil
		}
	}
	switch r {
	case vax.IPRKSP, vax.IPRESP, vax.IPRSSP, vax.IPRUSP:
		c.SetStackFor(vax.Mode(r), v)
	case vax.IPRISP:
		if c.onISP {
			c.R[RegSP] = v
		} else {
			c.ISP = v
		}
	case vax.IPRP0BR:
		c.MMU.P0BR = v
	case vax.IPRP0LR:
		c.MMU.P0LR = v
	case vax.IPRP1BR:
		c.MMU.P1BR = v
	case vax.IPRP1LR:
		c.MMU.P1LR = v
	case vax.IPRSBR:
		c.MMU.SBR = v
	case vax.IPRSLR:
		c.MMU.SLR = v
	case vax.IPRPCBB:
		c.PCBB = v
	case vax.IPRSCBB:
		c.SCBB = v &^ uint32(vax.PageMask)
	case vax.IPRIPL:
		c.psl = c.psl.WithIPL(uint8(v))
		c.Cycles += CostMTPRIPL
		return nil
	case vax.IPRSIRR:
		if v >= 1 && v <= vax.IPLSoftwareMax {
			c.SISR |= 1 << v
		}
	case vax.IPRSISR:
		c.SISR = v & 0xFFFE
	case vax.IPRASTL:
		c.ASTLVL = v
	case vax.IPRMPEN:
		c.MMU.Enabled = v&1 == 1
		c.MMU.TBIA()
	case vax.IPRTBIA:
		c.MMU.TBIA()
	case vax.IPRTBIS:
		c.MMU.TBIS(v)
	case vax.IPRSID, vax.IPRTODR:
		// Read-only or unimplemented writes are ignored.
	default:
		// Nonexistent register (including the virtual-VAX registers on a
		// real machine, Table 4): reserved operand fault.
		return c.rsvdOperand()
	}
	c.Cycles += CostMTPR
	return nil
}

// ReadIPR performs the architectural effect of MFPR from register r.
func (c *CPU) ReadIPR(r vax.IPR) (uint32, error) {
	for _, h := range c.iprs {
		if v, ok := h.ReadIPR(c, r); ok {
			c.Cycles += CostMFPR
			return v, nil
		}
	}
	c.Cycles += CostMFPR
	switch r {
	case vax.IPRKSP, vax.IPRESP, vax.IPRSSP, vax.IPRUSP:
		return c.StackFor(vax.Mode(r)), nil
	case vax.IPRISP:
		if c.onISP {
			return c.R[RegSP], nil
		}
		return c.ISP, nil
	case vax.IPRP0BR:
		return c.MMU.P0BR, nil
	case vax.IPRP0LR:
		return c.MMU.P0LR, nil
	case vax.IPRP1BR:
		return c.MMU.P1BR, nil
	case vax.IPRP1LR:
		return c.MMU.P1LR, nil
	case vax.IPRSBR:
		return c.MMU.SBR, nil
	case vax.IPRSLR:
		return c.MMU.SLR, nil
	case vax.IPRPCBB:
		return c.PCBB, nil
	case vax.IPRSCBB:
		return c.SCBB, nil
	case vax.IPRIPL:
		return uint32(c.psl.IPL()), nil
	case vax.IPRSISR:
		return c.SISR, nil
	case vax.IPRASTL:
		return c.ASTLVL, nil
	case vax.IPRMPEN:
		if c.MMU.Enabled {
			return 1, nil
		}
		return 0, nil
	case vax.IPRSID:
		return c.SID, nil
	}
	return 0, c.rsvdOperand()
}

// --- HALT ---

func (c *CPU) execHALT() error {
	if c.InVMMode() {
		if c.vmKernel() {
			return c.vmTrap(vax.Trap, vax.OpHALT, nil, nil)
		}
		return c.privFault()
	}
	if c.psl.Cur() != vax.Kernel {
		return c.privFault()
	}
	c.Halt(HaltInstruction)
	return nil
}

// --- LDPCTX / SVPCTX ---

// Process control block layout (longword offsets from PCBB, which is a
// physical address).
const (
	PCBKSP  = 0
	PCBESP  = 4
	PCBSSP  = 8
	PCBUSP  = 12
	PCBR0   = 16 // R0..R11 at 16..60
	PCBAP   = 64
	PCBFP   = 68
	PCBPC   = 72
	PCBPSL  = 76
	PCBP0BR = 80
	PCBP0LR = 84
	PCBP1BR = 88
	PCBP1LR = 92
	PCBSize = 96
)

func (c *CPU) execLDPCTX() error {
	if c.InVMMode() {
		if c.vmKernel() {
			return c.vmTrap(vax.Trap, vax.OpLDPCTX, nil, nil)
		}
		return c.privFault()
	}
	if c.psl.Cur() != vax.Kernel {
		return c.privFault()
	}
	c.Cycles += CostContextSwitch
	rd := func(off uint32) (uint32, error) { return c.Mem.LoadLong(c.PCBB + off) }

	for i, off := range []uint32{PCBKSP, PCBESP, PCBSSP, PCBUSP} {
		v, err := rd(off)
		if err != nil {
			return err
		}
		c.SetStackFor(vax.Mode(i), v)
	}
	for i := 0; i < 12; i++ {
		v, err := rd(PCBR0 + uint32(4*i))
		if err != nil {
			return err
		}
		c.R[i] = v
	}
	for _, p := range []struct {
		off uint32
		dst *uint32
	}{
		{PCBAP, &c.R[RegAP]}, {PCBFP, &c.R[RegFP]},
		{PCBP0BR, &c.MMU.P0BR}, {PCBP0LR, &c.MMU.P0LR},
		{PCBP1BR, &c.MMU.P1BR}, {PCBP1LR, &c.MMU.P1LR},
	} {
		v, err := rd(p.off)
		if err != nil {
			return err
		}
		*p.dst = v
	}
	// Loading a new process context invalidates the process-space
	// translations.
	c.MMU.TBIA()
	// Push the saved PC/PSL on the kernel stack so REI resumes the
	// process.
	pc, err := rd(PCBPC)
	if err != nil {
		return err
	}
	psl, err := rd(PCBPSL)
	if err != nil {
		return err
	}
	if err := c.Push(psl); err != nil {
		return err
	}
	return c.Push(pc)
}

func (c *CPU) execSVPCTX() error {
	if c.InVMMode() {
		if c.vmKernel() {
			return c.vmTrap(vax.Trap, vax.OpSVPCTX, nil, nil)
		}
		return c.privFault()
	}
	if c.psl.Cur() != vax.Kernel {
		return c.privFault()
	}
	c.Cycles += CostContextSwitch
	// Pop the resume PC/PSL pushed by the exception that suspended the
	// process.
	pc, err := c.Pop()
	if err != nil {
		return err
	}
	psl, err := c.Pop()
	if err != nil {
		return err
	}
	wr := func(off uint32, v uint32) error { return c.Mem.StoreLong(c.PCBB+off, v) }
	for i, off := range []uint32{PCBKSP, PCBESP, PCBSSP, PCBUSP} {
		if err := wr(off, c.StackFor(vax.Mode(i))); err != nil {
			return err
		}
	}
	for i := 0; i < 12; i++ {
		if err := wr(PCBR0+uint32(4*i), c.R[i]); err != nil {
			return err
		}
	}
	for _, p := range []struct {
		off uint32
		v   uint32
	}{
		{PCBAP, c.R[RegAP]}, {PCBFP, c.R[RegFP]},
		{PCBPC, pc}, {PCBPSL, psl},
		{PCBP0BR, c.MMU.P0BR}, {PCBP0LR, c.MMU.P0LR},
		{PCBP1BR, c.MMU.P1BR}, {PCBP1LR, c.MMU.P1LR},
	} {
		if err := wr(p.off, p.v); err != nil {
			return err
		}
	}
	return nil
}
