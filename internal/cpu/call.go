package cpu

import "repro/internal/vax"

// The VAX procedure call standard: CALLS builds a call frame on the
// stack (saving the registers named by the procedure's entry mask) and
// RET unwinds it. This simplified implementation keeps the
// architectural frame layout:
//
//	FP -> 0(FP)  condition handler (always 0 here)
//	      4(FP)  mask<31>=S flag, <27:16>=register save mask, <15:5>=saved PSW
//	      8(FP)  saved AP
//	     12(FP)  saved FP
//	     16(FP)  saved PC
//	     20(FP)  saved registers, lowest numbered first
//
// CALLG is the register-argument variant; only CALLS (stack arguments)
// is implemented, which is what MiniOS and the examples use.

const (
	callSFlag    = 1 << 29
	callMaskBits = 0x0FFF
)

func (c *CPU) execCALLS() error {
	nOp, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	dstOp, err := c.decodeOperand(1, true)
	if err != nil {
		return err
	}
	n, err := c.readOp(nOp)
	if err != nil {
		return err
	}
	dst := dstOp.addr

	// Push the argument count; AP will point here.
	if err := c.Push(n); err != nil {
		return err
	}
	argBase := c.SP()

	mask, err := c.LoadVirt(dst, 2, c.psl.Cur())
	if err != nil {
		return err
	}
	if mask&0xF000 != 0 {
		// Entry mask bits 12-13 are reserved; 14-15 enable traps we do
		// not model as maskable here.
		return c.rsvdOperand()
	}
	// Save registers R11..R0 named in the mask, highest first so they
	// pop back lowest-first.
	for r := 11; r >= 0; r-- {
		if mask&(1<<r) != 0 {
			if err := c.Push(c.R[r]); err != nil {
				return err
			}
		}
	}
	if err := c.Push(c.R[RegPC]); err != nil {
		return err
	}
	if err := c.Push(c.R[RegFP]); err != nil {
		return err
	}
	if err := c.Push(c.R[RegAP]); err != nil {
		return err
	}
	status := callSFlag | (mask&callMaskBits)<<16 | uint32(c.psl)&0xFFE0
	if err := c.Push(status); err != nil {
		return err
	}
	if err := c.Push(0); err != nil { // condition handler
		return err
	}
	c.R[RegFP] = c.SP()
	c.R[RegAP] = argBase
	c.R[RegPC] = dst + 2 // skip the entry mask
	// The call clears the condition codes.
	c.setNZVC(false, false, false, false)
	c.Cycles += CostCall
	return nil
}

func (c *CPU) execRET() error {
	fp := c.R[RegFP]
	rd := func(off uint32) (uint32, error) {
		return c.LoadVirt(fp+off, 4, c.psl.Cur())
	}
	status, err := rd(4)
	if err != nil {
		return err
	}
	savedAP, err := rd(8)
	if err != nil {
		return err
	}
	savedFP, err := rd(12)
	if err != nil {
		return err
	}
	savedPC, err := rd(16)
	if err != nil {
		return err
	}
	mask := status >> 16 & callMaskBits
	sp := fp + 20
	for r := 0; r <= 11; r++ {
		if mask&(1<<r) != 0 {
			v, err := c.LoadVirt(sp, 4, c.psl.Cur())
			if err != nil {
				return err
			}
			c.R[r] = v
			sp += 4
		}
	}
	if status&callSFlag != 0 {
		// CALLS frame: remove the argument list.
		n, err := c.LoadVirt(sp, 4, c.psl.Cur())
		if err != nil {
			return err
		}
		sp += 4 + 4*(n&0xFF)
	}
	c.R[RegAP] = savedAP
	c.R[RegFP] = savedFP
	c.R[RegPC] = savedPC
	c.SetSP(sp)
	// Restore the saved PSW bits (condition codes and trap enables).
	c.psl = vax.PSL(uint32(c.psl)&^uint32(0xFFE0|vax.PSLCC) | status&0xFFEF)
	c.Cycles += CostCall
	return nil
}

// execBB handles BBS/BBC: branch on bit set/clear. The base operand is
// a byte address (or register) and the position selects a bit within
// the addressed field.
func (c *CPU) execBB(set bool) error {
	posOp, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	pos, err := c.readOp(posOp)
	if err != nil {
		return err
	}
	spec, err := c.fetchStream8()
	if err != nil {
		return err
	}
	// Re-decode the base operand by hand: register or addressable.
	var bit uint32
	if spec>>4 == 5 { // register
		if pos > 31 {
			return c.rsvdOperand()
		}
		bit = c.R[spec&0xF] >> pos & 1
	} else {
		// Push the specifier back by rewinding PC and using the normal
		// decoder in address context.
		c.R[RegPC]--
		baseOp, err := c.decodeOperand(1, true)
		if err != nil {
			return err
		}
		b, err := c.LoadVirt(baseOp.addr+pos/8, 1, c.psl.Cur())
		if err != nil {
			return err
		}
		bit = b >> (pos % 8) & 1
	}
	return c.branchIf((bit == 1) == set)
}
