package cpu

import (
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/mem"
	"repro/internal/vax"
)

// Security-property tests: the invariants the paper's VMM relies on.

// TestREINeverEscalatesProperty: no PSL image handed to REI from a
// non-kernel mode may leave the processor more privileged than it was,
// nor set PSL<VM>. This is the property that keeps the VM (and any
// user) from entering the VMM's ring.
func TestREINeverEscalatesProperty(t *testing.T) {
	f := func(raw uint32, curMode uint8) bool {
		startMode := vax.Mode(curMode%3 + 1) // executive, supervisor or user
		ma, err := newMachineErr(StandardVAX, `
start:	pushl r1
	pushl #after
	rei
after:	movpsl r3            ; REI accepted the image: record the mode
	halt
	.align 4
rsvd:	movl #1, r9          ; REI rejected it
	halt
	.align 4
privh:	halt
`)
		if err != nil {
			return false
		}
		ma.setVectorRaw(vax.VecRsvdOperand, "rsvd")
		ma.setVectorRaw(vax.VecPrivInstr, "privh")
		ma.c.SetPSL(vax.PSL(0).WithCur(startMode).WithPrv(startMode))
		ma.c.SetPC(ma.prog.MustSymbol("start"))
		ma.c.R[1] = raw
		ma.c.Run(50)
		if ma.c.R[9] == 1 {
			return true // rejected: nothing to check
		}
		got := vax.PSL(ma.c.R[3])
		if got.Cur().MorePrivileged(startMode) {
			t.Logf("escalation: image %#x from %s reached %s", raw, startMode, got.Cur())
			return false
		}
		if got.VM() {
			t.Logf("image %#x set PSL<VM>", raw)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCHMNeverReachesHigherThanTarget: CHM from a random mode with a
// random target lands exactly at the more privileged of the two, never
// beyond, and always through the target's vector.
func TestCHMTargetModeProperty(t *testing.T) {
	f := func(curRaw, targetRaw uint8) bool {
		cur := vax.Mode(curRaw % 4)
		target := vax.Mode(targetRaw % 4)
		srcs := []string{"chmk #0", "chme #0", "chms #0", "chmu #0"}
		ma, err := newMachineErr(StandardVAX, `
start:	`+srcs[target]+`
	halt
	.align 4
h:	movpsl r2            ; the CHM landing mode
	halt
	.align 4
privh:	halt                 ; the deliberate stop; must not touch r2
`)
		if err != nil {
			return false
		}
		for _, vec := range []vax.Vector{vax.VecCHMK, vax.VecCHME, vax.VecCHMS, vax.VecCHMU} {
			ma.setVectorRaw(vec, "h")
		}
		ma.setVectorRaw(vax.VecPrivInstr, "privh")
		ma.c.SetPSL(vax.PSL(0).WithCur(cur).WithPrv(cur))
		ma.c.SetPC(ma.prog.MustSymbol("start"))
		ma.c.Run(50)
		got := vax.PSL(ma.c.R[2])
		want := target
		if cur.MorePrivileged(target) {
			want = cur
		}
		return got.Cur() == want && got.Prv() == cur
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestUserCannotReachPrivilegedState: from user mode, every privileged
// instruction ends in a privileged-instruction fault and no privileged
// register changes.
func TestUserCannotReachPrivilegedState(t *testing.T) {
	insns := []string{
		"mtpr #0, #12",  // SBR
		"mtpr #0, #17",  // SCBB
		"mtpr #0, #56",  // MAPEN
		"mtpr #31, #18", // IPL
		"mfpr #12, r0",
		"ldpctx",
		"svpctx",
		"halt",
		"wait",
		"probevmr #1, (r0)",
	}
	for _, insn := range insns {
		for _, variant := range []Variant{StandardVAX, ModifiedVAX} {
			ma := newMachine(t, variant, `
start:	`+insn+`
	halt
	.align 4
privh:	movl #1, r9
	halt
`)
			ma.setVector(t, vax.VecPrivInstr, "privh")
			sbrBefore := ma.c.MMU.SBR
			ma.enterMode(t, vax.User, "start")
			ma.run(t, 100)
			if ma.c.R[9] != 1 {
				t.Errorf("%s on %s: user executed it without a fault", insn, variant)
			}
			if ma.c.MMU.SBR != sbrBefore {
				t.Errorf("%s on %s: privileged state changed from user mode", insn, variant)
			}
		}
	}
}

// TestPSLVMInvisibleProperty: whatever state the machine is in, software
// reads of the PSL never expose PSL<VM>.
func TestPSLVMInvisibleProperty(t *testing.T) {
	f := func(lowBits uint8, vmMode bool) bool {
		ma, err := newMachineErr(ModifiedVAX, "start:\tmovpsl r0\n\thalt\n\t.align 4\nprivh:\thalt")
		if err != nil {
			return false
		}
		ma.setVectorRaw(vax.VecPrivInstr, "privh")
		psl := vax.PSL(uint32(lowBits)).WithCur(vax.Kernel)
		if vmMode {
			// Raw VM-mode state (as the VMM would set it); the sink is
			// absent so the trapping HALT just stops the machine via
			// the double-error path — MOVPSL runs first.
			psl = psl.WithCur(vax.Executive).WithVM(true)
			ma.c.VMPSL = vax.PSL(0).WithCur(vax.Kernel)
		}
		ma.c.SetPSL(psl)
		ma.c.SetPC(ma.prog.MustSymbol("start"))
		ma.c.Run(10)
		return !vax.PSL(ma.c.R[0]).VM()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// --- helpers for property tests (non-fatal variants of the harness) ---

func newMachineErr(variant Variant, src string) (*machine, error) {
	prog, err := asmAssemble(src)
	if err != nil {
		return nil, err
	}
	m := memNew()
	if err := m.StoreBytes(prog.Origin, prog.Code); err != nil {
		return nil, err
	}
	c := New(m, variant)
	c.SCBB = 0
	c.SetStackFor(vax.Kernel, testKSP)
	c.SetStackFor(vax.Executive, testESP)
	c.SetStackFor(vax.Supervisor, testSSP)
	c.SetStackFor(vax.User, testUSP)
	c.ISP = testISP
	c.SetPSL(vax.PSL(0).WithCur(vax.Kernel))
	c.SetPC(prog.Origin)
	return &machine{c: c, m: m, prog: prog}, nil
}

func (ma *machine) setVectorRaw(vec vax.Vector, label string) {
	_ = ma.m.StoreLong(uint32(vec), ma.prog.MustSymbol(label))
}

// tiny indirection helpers so the property harness reads cleanly.
func asmAssemble(src string) (*asm.Program, error) { return asm.Assemble(src, testOrigin) }
func memNew() *mem.Memory                          { return mem.New(256 * 1024) }
