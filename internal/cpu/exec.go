package cpu

import "repro/internal/vax"

// Instruction execution: the main dispatch switch and the unprivileged
// data-movement, arithmetic, logical and control-flow instructions.
// Sensitive and privileged instructions live in system.go.

func reservedInstruction() *vax.Exception {
	return &vax.Exception{Vector: vax.VecPrivInstr, Kind: vax.Fault}
}

// setNZVC replaces all four condition codes.
func (c *CPU) setNZVC(n, z, v, carry bool) {
	p := uint32(c.psl) &^ vax.PSLCC
	if n {
		p |= vax.PSLN
	}
	if z {
		p |= vax.PSLZ
	}
	if v {
		p |= vax.PSLV
	}
	if carry {
		p |= vax.PSLC
	}
	c.psl = vax.PSL(p)
}

// setNZ sets N and Z from a result of the given size, clears V, keeps C.
func (c *CPU) setNZ(val uint32, size int) {
	s := signExt(val, size)
	carry := uint32(c.psl)&vax.PSLC != 0
	c.setNZVC(s < 0, s == 0, false, carry)
}

func (c *CPU) cc(bit uint32) bool { return uint32(c.psl)&bit != 0 }

// branchIf fetches a byte displacement and branches when cond holds.
func (c *CPU) branchIf(cond bool) error {
	d, err := c.fetchByte()
	if err != nil {
		return err
	}
	if cond {
		c.R[RegPC] += uint32(int32(int8(d)))
	}
	return nil
}

// execOne fetches, decodes and executes a single instruction.
func (c *CPU) execOne() error {
	b, err := c.fetchByte()
	if err != nil {
		return err
	}
	op := uint16(b)
	if b == vax.ExtPrefix {
		b2, err := c.fetchByte()
		if err != nil {
			return err
		}
		op = 0xFD00 | uint16(b2)
	}
	c.Cycles += CostBase

	switch op {
	case vax.OpNOP:
		return nil
	case vax.OpCALLS:
		return c.execCALLS()
	case vax.OpRET:
		return c.execRET()
	case vax.OpBBS:
		return c.execBB(true)
	case vax.OpBBC:
		return c.execBB(false)
	case vax.OpMOVC3:
		return c.execMOVC3()
	case vax.OpCMPC3:
		return c.execCMPC3()
	case vax.OpINSQUE:
		return c.execINSQUE()
	case vax.OpREMQUE:
		return c.execREMQUE()
	case vax.OpCVTBL, vax.OpCVTBW, vax.OpCVTWL, vax.OpCVTWB, vax.OpCVTLB, vax.OpCVTLW:
		return c.execCVT(op)
	case vax.OpACBL:
		return c.execACBL()
	case vax.OpHALT:
		return c.execHALT()
	case vax.OpREI:
		return c.execREI()
	case vax.OpBPT:
		return &vax.Exception{Vector: vax.VecBreakpoint, Kind: vax.Trap}
	case vax.OpLDPCTX:
		return c.execLDPCTX()
	case vax.OpSVPCTX:
		return c.execSVPCTX()
	case vax.OpPROBER, vax.OpPROBEW:
		return c.execPROBE(op)
	case vax.OpCHMK, vax.OpCHME, vax.OpCHMS, vax.OpCHMU:
		return c.execCHM(op)
	case vax.OpMOVPSL:
		return c.execMOVPSL()
	case vax.OpMTPR:
		return c.execMTPR()
	case vax.OpMFPR:
		return c.execMFPR()
	case vax.OpWAIT:
		return c.execWAIT()
	case vax.OpPROBEVMR, vax.OpPROBEVMW:
		return c.execPROBEVM(op)
	case vax.OpXFC:
		return &vax.Exception{Vector: vax.VecCustReserved, Kind: vax.Fault}

	// --- moves and simple unary operations ---
	case vax.OpMOVL, vax.OpMOVW, vax.OpMOVB:
		size := map[uint16]int{vax.OpMOVL: 4, vax.OpMOVW: 2, vax.OpMOVB: 1}[op]
		return c.execMove(size)
	case vax.OpMOVZBL:
		return c.execMovz(1)
	case vax.OpMOVZWL:
		return c.execMovz(2)
	case vax.OpCLRL, vax.OpCLRW, vax.OpCLRB:
		size := map[uint16]int{vax.OpCLRL: 4, vax.OpCLRW: 2, vax.OpCLRB: 1}[op]
		dst, err := c.decodeOperand(size, false)
		if err != nil {
			return err
		}
		if err := c.writeOp(dst, 0); err != nil {
			return err
		}
		c.setNZ(0, size)
		return nil
	case vax.OpTSTL, vax.OpTSTW, vax.OpTSTB:
		size := map[uint16]int{vax.OpTSTL: 4, vax.OpTSTW: 2, vax.OpTSTB: 1}[op]
		src, err := c.decodeOperand(size, false)
		if err != nil {
			return err
		}
		v, err := c.readOp(src)
		if err != nil {
			return err
		}
		c.setNZ(v, size)
		return nil
	case vax.OpMNEGL:
		src, err := c.decodeOperand(4, false)
		if err != nil {
			return err
		}
		dst, err := c.decodeOperand(4, false)
		if err != nil {
			return err
		}
		v, err := c.readOp(src)
		if err != nil {
			return err
		}
		r := uint32(-int32(v))
		if err := c.writeOp(dst, r); err != nil {
			return err
		}
		c.setNZVC(int32(r) < 0, r == 0, v == 0x80000000, v != 0)
		return nil
	case vax.OpMCOMB:
		src, err := c.decodeOperand(1, false)
		if err != nil {
			return err
		}
		dst, err := c.decodeOperand(1, false)
		if err != nil {
			return err
		}
		v, err := c.readOp(src)
		if err != nil {
			return err
		}
		r := ^v & 0xFF
		if err := c.writeOp(dst, r); err != nil {
			return err
		}
		c.setNZ(r, 1)
		return nil
	case vax.OpINCL, vax.OpDECL:
		dst, err := c.decodeOperand(4, false)
		if err != nil {
			return err
		}
		v, err := c.readOp(dst)
		if err != nil {
			return err
		}
		var r uint32
		var ovf, carry bool
		if op == vax.OpINCL {
			r = v + 1
			ovf = v == 0x7FFFFFFF
			carry = v == 0xFFFFFFFF
		} else {
			r = v - 1
			ovf = v == 0x80000000
			carry = v == 0 // borrow
		}
		if err := c.writeOp(dst, r); err != nil {
			return err
		}
		c.setNZVC(int32(r) < 0, r == 0, ovf, carry)
		return nil
	case vax.OpPUSHL:
		src, err := c.decodeOperand(4, false)
		if err != nil {
			return err
		}
		v, err := c.readOp(src)
		if err != nil {
			return err
		}
		if err := c.Push(v); err != nil {
			return err
		}
		c.setNZ(v, 4)
		return nil
	case vax.OpMOVAL, vax.OpMOVAB:
		src, err := c.decodeOperand(4, true)
		if err != nil {
			return err
		}
		dst, err := c.decodeOperand(4, false)
		if err != nil {
			return err
		}
		if err := c.writeOp(dst, src.addr); err != nil {
			return err
		}
		c.setNZ(src.addr, 4)
		return nil

	// --- comparison and bit test ---
	case vax.OpCMPL, vax.OpCMPW, vax.OpCMPB:
		size := map[uint16]int{vax.OpCMPL: 4, vax.OpCMPW: 2, vax.OpCMPB: 1}[op]
		return c.execCompare(size)
	case vax.OpBITL:
		s1, err := c.decodeOperand(4, false)
		if err != nil {
			return err
		}
		s2, err := c.decodeOperand(4, false)
		if err != nil {
			return err
		}
		a, err := c.readOp(s1)
		if err != nil {
			return err
		}
		b2, err := c.readOp(s2)
		if err != nil {
			return err
		}
		r := a & b2
		c.setNZ(r, 4)
		return nil

	// --- longword arithmetic and logic ---
	case vax.OpADDL2, vax.OpADDL3:
		return c.execBinop(op == vax.OpADDL3, false, func(a, b uint32) (uint32, bool, bool) {
			r := b + a
			ovf := (a^r)&(b^r)&0x80000000 != 0
			return r, ovf, r < a
		})
	case vax.OpSUBL2, vax.OpSUBL3:
		return c.execBinop(op == vax.OpSUBL3, false, func(a, b uint32) (uint32, bool, bool) {
			// a is the subtrahend: result = b - a.
			r := b - a
			ovf := (a^b)&(b^r)&0x80000000 != 0
			return r, ovf, b < a
		})
	case vax.OpMULL2, vax.OpMULL3:
		c.Cycles += CostMul
		return c.execBinop(op == vax.OpMULL3, false, func(a, b uint32) (uint32, bool, bool) {
			full := int64(int32(a)) * int64(int32(b))
			r := uint32(full)
			return r, full != int64(int32(r)), false
		})
	case vax.OpDIVL2, vax.OpDIVL3:
		c.Cycles += CostDiv
		return c.execBinop(op == vax.OpDIVL3, true, func(a, b uint32) (uint32, bool, bool) {
			// a is the divisor: result = b / a. Zero divisor handled by
			// the caller via divide check.
			if a == 0 {
				return 0, true, false
			}
			if b == 0x80000000 && a == 0xFFFFFFFF {
				return b, true, false
			}
			return uint32(int32(b) / int32(a)), false, false
		})
	case vax.OpBISL2, vax.OpBISL3:
		return c.execBinop(op == vax.OpBISL3, false, func(a, b uint32) (uint32, bool, bool) {
			return b | a, false, false
		})
	case vax.OpBICL2, vax.OpBICL3:
		return c.execBinop(op == vax.OpBICL3, false, func(a, b uint32) (uint32, bool, bool) {
			return b &^ a, false, false
		})
	case vax.OpXORL2, vax.OpXORL3:
		return c.execBinop(op == vax.OpXORL3, false, func(a, b uint32) (uint32, bool, bool) {
			return b ^ a, false, false
		})
	case vax.OpASHL:
		cnt, err := c.decodeOperand(1, false)
		if err != nil {
			return err
		}
		src, err := c.decodeOperand(4, false)
		if err != nil {
			return err
		}
		dst, err := c.decodeOperand(4, false)
		if err != nil {
			return err
		}
		cv, err := c.readOp(cnt)
		if err != nil {
			return err
		}
		sv, err := c.readOp(src)
		if err != nil {
			return err
		}
		n := int(int8(cv))
		var r uint32
		ovf := false
		switch {
		case n >= 32:
			r = 0
			ovf = sv != 0
		case n > 0:
			r = sv << n
			if int32(r)>>n != int32(sv) {
				ovf = true
			}
		case n <= -32:
			r = uint32(int32(sv) >> 31)
		case n < 0:
			r = uint32(int32(sv) >> uint(-n))
		default:
			r = sv
		}
		if err := c.writeOp(dst, r); err != nil {
			return err
		}
		c.setNZVC(int32(r) < 0, r == 0, ovf, false)
		return nil

	// --- control flow ---
	case vax.OpBRB:
		return c.branchIf(true)
	case vax.OpBRW:
		d, err := c.fetchWord()
		if err != nil {
			return err
		}
		c.R[RegPC] += uint32(int32(int16(d)))
		return nil
	case vax.OpBNEQ:
		return c.branchIf(!c.cc(vax.PSLZ))
	case vax.OpBEQL:
		return c.branchIf(c.cc(vax.PSLZ))
	case vax.OpBGTR:
		return c.branchIf(!c.cc(vax.PSLZ) && !c.cc(vax.PSLN))
	case vax.OpBLEQ:
		return c.branchIf(c.cc(vax.PSLZ) || c.cc(vax.PSLN))
	case vax.OpBGEQ:
		return c.branchIf(!c.cc(vax.PSLN))
	case vax.OpBLSS:
		return c.branchIf(c.cc(vax.PSLN))
	case vax.OpBGTRU:
		return c.branchIf(!c.cc(vax.PSLC) && !c.cc(vax.PSLZ))
	case vax.OpBLEQU:
		return c.branchIf(c.cc(vax.PSLC) || c.cc(vax.PSLZ))
	case vax.OpBVC:
		return c.branchIf(!c.cc(vax.PSLV))
	case vax.OpBVS:
		return c.branchIf(c.cc(vax.PSLV))
	case vax.OpBCC:
		return c.branchIf(!c.cc(vax.PSLC))
	case vax.OpBCS:
		return c.branchIf(c.cc(vax.PSLC))
	case vax.OpBLBS, vax.OpBLBC:
		src, err := c.decodeOperand(4, false)
		if err != nil {
			return err
		}
		v, err := c.readOp(src)
		if err != nil {
			return err
		}
		want := op == vax.OpBLBS
		return c.branchIf(v&1 == 1 == want)
	case vax.OpJMP:
		dst, err := c.decodeOperand(4, true)
		if err != nil {
			return err
		}
		c.R[RegPC] = dst.addr
		return nil
	case vax.OpBSBB:
		d, err := c.fetchByte()
		if err != nil {
			return err
		}
		if err := c.Push(c.R[RegPC]); err != nil {
			return err
		}
		c.R[RegPC] += uint32(int32(int8(d)))
		return nil
	case vax.OpBSBW:
		d, err := c.fetchWord()
		if err != nil {
			return err
		}
		if err := c.Push(c.R[RegPC]); err != nil {
			return err
		}
		c.R[RegPC] += uint32(int32(int16(d)))
		return nil
	case vax.OpJSB:
		dst, err := c.decodeOperand(4, true)
		if err != nil {
			return err
		}
		if err := c.Push(c.R[RegPC]); err != nil {
			return err
		}
		c.R[RegPC] = dst.addr
		return nil
	case vax.OpRSB:
		pc, err := c.Pop()
		if err != nil {
			return err
		}
		c.R[RegPC] = pc
		return nil

	// --- loop instructions ---
	case vax.OpAOBLSS, vax.OpAOBLEQ:
		limit, err := c.decodeOperand(4, false)
		if err != nil {
			return err
		}
		idx, err := c.decodeOperand(4, false)
		if err != nil {
			return err
		}
		lv, err := c.readOp(limit)
		if err != nil {
			return err
		}
		iv, err := c.readOp(idx)
		if err != nil {
			return err
		}
		r := iv + 1
		if err := c.writeOp(idx, r); err != nil {
			return err
		}
		c.setNZ(r, 4)
		cond := int32(r) < int32(lv)
		if op == vax.OpAOBLEQ {
			cond = int32(r) <= int32(lv)
		}
		return c.branchIf(cond)
	case vax.OpSOBGEQ, vax.OpSOBGTR:
		idx, err := c.decodeOperand(4, false)
		if err != nil {
			return err
		}
		iv, err := c.readOp(idx)
		if err != nil {
			return err
		}
		r := iv - 1
		if err := c.writeOp(idx, r); err != nil {
			return err
		}
		c.setNZ(r, 4)
		cond := int32(r) >= 0
		if op == vax.OpSOBGTR {
			cond = int32(r) > 0
		}
		return c.branchIf(cond)
	}
	return reservedInstruction()
}

func (c *CPU) execMove(size int) error {
	src, err := c.decodeOperand(size, false)
	if err != nil {
		return err
	}
	dst, err := c.decodeOperand(size, false)
	if err != nil {
		return err
	}
	v, err := c.readOp(src)
	if err != nil {
		return err
	}
	if err := c.writeOp(dst, v); err != nil {
		return err
	}
	c.setNZ(v, size)
	return nil
}

func (c *CPU) execMovz(srcSize int) error {
	src, err := c.decodeOperand(srcSize, false)
	if err != nil {
		return err
	}
	dst, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	v, err := c.readOp(src)
	if err != nil {
		return err
	}
	if err := c.writeOp(dst, v); err != nil {
		return err
	}
	c.setNZVC(false, v == 0, false, c.cc(vax.PSLC))
	return nil
}

func (c *CPU) execCompare(size int) error {
	s1, err := c.decodeOperand(size, false)
	if err != nil {
		return err
	}
	s2, err := c.decodeOperand(size, false)
	if err != nil {
		return err
	}
	a, err := c.readOp(s1)
	if err != nil {
		return err
	}
	b, err := c.readOp(s2)
	if err != nil {
		return err
	}
	sa, sb := signExt(a, size), signExt(b, size)
	c.setNZVC(sa < sb, sa == sb, false, a < b)
	return nil
}

// execBinop handles the two- and three-operand longword forms: for the
// two-operand form the second operand is both source and destination.
// f(a, b) computes the result where a is the first operand.
func (c *CPU) execBinop(three, divide bool, f func(a, b uint32) (uint32, bool, bool)) error {
	o1, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	o2, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	dst := o2
	if three {
		dst, err = c.decodeOperand(4, false)
		if err != nil {
			return err
		}
	}
	a, err := c.readOp(o1)
	if err != nil {
		return err
	}
	b, err := c.readOp(o2)
	if err != nil {
		return err
	}
	if divide && a == 0 {
		// Divide by zero: arithmetic trap, destination unchanged.
		return &vax.Exception{Vector: vax.VecArithmetic, Kind: vax.Trap, Params: []uint32{1}}
	}
	r, ovf, carry := f(a, b)
	if err := c.writeOp(dst, r); err != nil {
		return err
	}
	c.setNZVC(int32(r) < 0, r == 0, ovf, carry)
	return nil
}
