package cpu

import "repro/internal/vax"

// Instruction execution: the unprivileged data-movement, arithmetic,
// logical and control-flow handlers reached through the dispatch tables
// of dispatch.go. Sensitive and privileged instructions live in
// system.go; the fetch/decode front end (decoded-instruction cache)
// lives in dcache.go.

// reservedInstruction raises the fault taken for a reserved or
// unimplemented opcode.
func (c *CPU) reservedInstruction() *vax.Exception {
	return c.scratch.Set(vax.VecPrivInstr, vax.Fault)
}

// setNZVC replaces all four condition codes.
func (c *CPU) setNZVC(n, z, v, carry bool) {
	p := uint32(c.psl) &^ vax.PSLCC
	if n {
		p |= vax.PSLN
	}
	if z {
		p |= vax.PSLZ
	}
	if v {
		p |= vax.PSLV
	}
	if carry {
		p |= vax.PSLC
	}
	c.psl = vax.PSL(p)
}

// setNZ sets N and Z from a result of the given size, clears V, keeps C.
func (c *CPU) setNZ(val uint32, size int) {
	s := signExt(val, size)
	carry := uint32(c.psl)&vax.PSLC != 0
	c.setNZVC(s < 0, s == 0, false, carry)
}

func (c *CPU) cc(bit uint32) bool { return uint32(c.psl)&bit != 0 }

// branchIf fetches a byte displacement and branches when cond holds.
func (c *CPU) branchIf(cond bool) error {
	d, err := c.fetchStream8()
	if err != nil {
		return err
	}
	if cond {
		c.R[RegPC] += uint32(int32(int8(d)))
	}
	return nil
}

func (c *CPU) execMove(size int) error {
	src, err := c.decodeOperand(size, false)
	if err != nil {
		return err
	}
	dst, err := c.decodeOperand(size, false)
	if err != nil {
		return err
	}
	v, err := c.readOp(src)
	if err != nil {
		return err
	}
	if err := c.writeOp(dst, v); err != nil {
		return err
	}
	c.setNZ(v, size)
	return nil
}

func (c *CPU) execMovz(srcSize int) error {
	src, err := c.decodeOperand(srcSize, false)
	if err != nil {
		return err
	}
	dst, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	v, err := c.readOp(src)
	if err != nil {
		return err
	}
	if err := c.writeOp(dst, v); err != nil {
		return err
	}
	c.setNZVC(false, v == 0, false, c.cc(vax.PSLC))
	return nil
}

func (c *CPU) execClr(size int) error {
	dst, err := c.decodeOperand(size, false)
	if err != nil {
		return err
	}
	if err := c.writeOp(dst, 0); err != nil {
		return err
	}
	c.setNZ(0, size)
	return nil
}

func (c *CPU) execTst(size int) error {
	src, err := c.decodeOperand(size, false)
	if err != nil {
		return err
	}
	v, err := c.readOp(src)
	if err != nil {
		return err
	}
	c.setNZ(v, size)
	return nil
}

func (c *CPU) execMNEGL() error {
	src, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	dst, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	v, err := c.readOp(src)
	if err != nil {
		return err
	}
	r := uint32(-int32(v))
	if err := c.writeOp(dst, r); err != nil {
		return err
	}
	c.setNZVC(int32(r) < 0, r == 0, v == 0x80000000, v != 0)
	return nil
}

func (c *CPU) execMCOMB() error {
	src, err := c.decodeOperand(1, false)
	if err != nil {
		return err
	}
	dst, err := c.decodeOperand(1, false)
	if err != nil {
		return err
	}
	v, err := c.readOp(src)
	if err != nil {
		return err
	}
	r := ^v & 0xFF
	if err := c.writeOp(dst, r); err != nil {
		return err
	}
	c.setNZ(r, 1)
	return nil
}

func (c *CPU) execIncDec(inc bool) error {
	dst, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	v, err := c.readOp(dst)
	if err != nil {
		return err
	}
	var r uint32
	var ovf, carry bool
	if inc {
		r = v + 1
		ovf = v == 0x7FFFFFFF
		carry = v == 0xFFFFFFFF
	} else {
		r = v - 1
		ovf = v == 0x80000000
		carry = v == 0 // borrow
	}
	if err := c.writeOp(dst, r); err != nil {
		return err
	}
	c.setNZVC(int32(r) < 0, r == 0, ovf, carry)
	return nil
}

func (c *CPU) execPUSHL() error {
	src, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	v, err := c.readOp(src)
	if err != nil {
		return err
	}
	if err := c.Push(v); err != nil {
		return err
	}
	c.setNZ(v, 4)
	return nil
}

// execMoveAddr handles MOVAL and MOVAB. Both decode the source in
// longword address context (a simplification the assembler matches: the
// byte variant only changes the index-mode scale, which this subset's
// code never combines with MOVAB).
func (c *CPU) execMoveAddr() error {
	src, err := c.decodeOperand(4, true)
	if err != nil {
		return err
	}
	dst, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	if err := c.writeOp(dst, src.addr); err != nil {
		return err
	}
	c.setNZ(src.addr, 4)
	return nil
}

func (c *CPU) execCompare(size int) error {
	s1, err := c.decodeOperand(size, false)
	if err != nil {
		return err
	}
	s2, err := c.decodeOperand(size, false)
	if err != nil {
		return err
	}
	a, err := c.readOp(s1)
	if err != nil {
		return err
	}
	b, err := c.readOp(s2)
	if err != nil {
		return err
	}
	sa, sb := signExt(a, size), signExt(b, size)
	c.setNZVC(sa < sb, sa == sb, false, a < b)
	return nil
}

func (c *CPU) execBITL() error {
	s1, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	s2, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	a, err := c.readOp(s1)
	if err != nil {
		return err
	}
	b, err := c.readOp(s2)
	if err != nil {
		return err
	}
	r := a & b
	c.setNZ(r, 4)
	return nil
}

// execBinop handles the two- and three-operand longword forms: for the
// two-operand form the second operand is both source and destination.
// f(a, b) computes the result where a is the first operand.
func (c *CPU) execBinop(three, divide bool, f func(a, b uint32) (uint32, bool, bool)) error {
	o1, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	o2, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	dst := o2
	if three {
		dst, err = c.decodeOperand(4, false)
		if err != nil {
			return err
		}
	}
	a, err := c.readOp(o1)
	if err != nil {
		return err
	}
	b, err := c.readOp(o2)
	if err != nil {
		return err
	}
	if divide && a == 0 {
		// Divide by zero: arithmetic trap, destination unchanged.
		return c.scratch.Set1(vax.VecArithmetic, vax.Trap, 1)
	}
	r, ovf, carry := f(a, b)
	if err := c.writeOp(dst, r); err != nil {
		return err
	}
	c.setNZVC(int32(r) < 0, r == 0, ovf, carry)
	return nil
}

func (c *CPU) execASHL() error {
	cnt, err := c.decodeOperand(1, false)
	if err != nil {
		return err
	}
	src, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	dst, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	cv, err := c.readOp(cnt)
	if err != nil {
		return err
	}
	sv, err := c.readOp(src)
	if err != nil {
		return err
	}
	n := int(int8(cv))
	var r uint32
	ovf := false
	switch {
	case n >= 32:
		r = 0
		ovf = sv != 0
	case n > 0:
		r = sv << n
		if int32(r)>>n != int32(sv) {
			ovf = true
		}
	case n <= -32:
		r = uint32(int32(sv) >> 31)
	case n < 0:
		r = uint32(int32(sv) >> uint(-n))
	default:
		r = sv
	}
	if err := c.writeOp(dst, r); err != nil {
		return err
	}
	c.setNZVC(int32(r) < 0, r == 0, ovf, false)
	return nil
}

// --- control flow ---

func (c *CPU) execBRW() error {
	d, err := c.fetchStream16()
	if err != nil {
		return err
	}
	c.R[RegPC] += uint32(int32(int16(d)))
	return nil
}

func (c *CPU) execBLB(set bool) error {
	src, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	v, err := c.readOp(src)
	if err != nil {
		return err
	}
	return c.branchIf(v&1 == 1 == set)
}

func (c *CPU) execJMP() error {
	dst, err := c.decodeOperand(4, true)
	if err != nil {
		return err
	}
	c.R[RegPC] = dst.addr
	return nil
}

func (c *CPU) execBSBB() error {
	d, err := c.fetchStream8()
	if err != nil {
		return err
	}
	if err := c.Push(c.R[RegPC]); err != nil {
		return err
	}
	c.R[RegPC] += uint32(int32(int8(d)))
	return nil
}

func (c *CPU) execBSBW() error {
	d, err := c.fetchStream16()
	if err != nil {
		return err
	}
	if err := c.Push(c.R[RegPC]); err != nil {
		return err
	}
	c.R[RegPC] += uint32(int32(int16(d)))
	return nil
}

func (c *CPU) execJSB() error {
	dst, err := c.decodeOperand(4, true)
	if err != nil {
		return err
	}
	if err := c.Push(c.R[RegPC]); err != nil {
		return err
	}
	c.R[RegPC] = dst.addr
	return nil
}

func (c *CPU) execRSB() error {
	pc, err := c.Pop()
	if err != nil {
		return err
	}
	c.R[RegPC] = pc
	return nil
}

// --- loop instructions ---

func (c *CPU) execAOB(leq bool) error {
	limit, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	idx, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	lv, err := c.readOp(limit)
	if err != nil {
		return err
	}
	iv, err := c.readOp(idx)
	if err != nil {
		return err
	}
	r := iv + 1
	if err := c.writeOp(idx, r); err != nil {
		return err
	}
	c.setNZ(r, 4)
	cond := int32(r) < int32(lv)
	if leq {
		cond = int32(r) <= int32(lv)
	}
	return c.branchIf(cond)
}

func (c *CPU) execSOB(gtr bool) error {
	idx, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	iv, err := c.readOp(idx)
	if err != nil {
		return err
	}
	r := iv - 1
	if err := c.writeOp(idx, r); err != nil {
		return err
	}
	c.setNZ(r, 4)
	cond := int32(r) >= 0
	if gtr {
		cond = int32(r) > 0
	}
	return c.branchIf(cond)
}
