package cpu

import (
	"repro/internal/mmu"
	"repro/internal/vax"
)

// mmuAccess converts a write flag to an MMU access kind.
func mmuAccess(write bool) mmu.Access {
	if write {
		return mmu.Write
	}
	return mmu.Read
}

// Virtual memory access helpers. All accesses translate through the MMU
// at the processor's current mode (or an explicit mode for the few
// instructions that reference another mode's context) and then hit
// either a memory-mapped device window or physical memory. Multi-byte
// accesses that straddle a page boundary translate each page separately,
// as the hardware does.

func (c *CPU) physLoadByte(pa uint32) (byte, error) {
	for _, h := range c.mmio {
		base, size := h.Window()
		if pa >= base && pa < base+size {
			v, err := h.LoadReg(c, pa-base)
			return byte(v), err
		}
	}
	return c.Mem.LoadByte(pa)
}

func (c *CPU) physStoreByte(pa uint32, v byte) error {
	for _, h := range c.mmio {
		base, size := h.Window()
		if pa >= base && pa < base+size {
			return h.StoreReg(c, pa-base, uint32(v))
		}
	}
	c.invalidateDecodePA(pa)
	return c.Mem.StoreByte(pa, v)
}

// physLoadLong reads a longword, routing device windows through the
// device handler as a single register access.
func (c *CPU) physLoadLong(pa uint32) (uint32, error) {
	for _, h := range c.mmio {
		base, size := h.Window()
		if pa >= base && pa < base+size {
			return h.LoadReg(c, pa-base)
		}
	}
	return c.Mem.LoadLong(pa)
}

func (c *CPU) physStoreLong(pa uint32, v uint32) error {
	for _, h := range c.mmio {
		base, size := h.Window()
		if pa >= base && pa < base+size {
			return h.StoreReg(c, pa-base, v)
		}
	}
	// A longword store stays within one page (callers split straddling
	// accesses), so one page invalidation covers it.
	c.invalidateDecodePA(pa)
	return c.Mem.StoreLong(pa, v)
}

// LoadVirt reads size bytes (1, 2 or 4) at va as mode, little-endian.
func (c *CPU) LoadVirt(va uint32, size int, mode vax.Mode) (uint32, error) {
	// Fast path: within one page and aligned enough for a direct load.
	if int(va&vax.PageMask)+size <= vax.PageSize {
		pa, ok := c.MMU.TranslateFast(va, mmu.Read, mode)
		if !ok {
			var err error
			pa, err = c.MMU.Translate(va, mmu.Read, mode)
			if err != nil {
				return 0, err
			}
		}
		switch size {
		case 1:
			b, err := c.physLoadByte(pa)
			return uint32(b), err
		case 4:
			if pa&3 == 0 {
				return c.physLoadLong(pa)
			}
		}
		var out uint32
		for i := 0; i < size; i++ {
			b, err := c.physLoadByte(pa + uint32(i))
			if err != nil {
				return 0, err
			}
			out |= uint32(b) << (8 * i)
		}
		return out, nil
	}
	// Page-straddling: byte by byte.
	var out uint32
	for i := 0; i < size; i++ {
		pa, err := c.MMU.Translate(va+uint32(i), mmu.Read, mode)
		if err != nil {
			return 0, err
		}
		b, err := c.physLoadByte(pa)
		if err != nil {
			return 0, err
		}
		out |= uint32(b) << (8 * i)
	}
	return out, nil
}

// StoreVirt writes size bytes (1, 2 or 4) at va as mode.
func (c *CPU) StoreVirt(va uint32, size int, v uint32, mode vax.Mode) error {
	if int(va&vax.PageMask)+size <= vax.PageSize {
		pa, ok := c.MMU.TranslateFast(va, mmu.Write, mode)
		if !ok {
			var err error
			pa, err = c.MMU.Translate(va, mmu.Write, mode)
			if err != nil {
				return err
			}
		}
		switch size {
		case 1:
			return c.physStoreByte(pa, byte(v))
		case 4:
			if pa&3 == 0 {
				return c.physStoreLong(pa, v)
			}
		}
		for i := 0; i < size; i++ {
			if err := c.physStoreByte(pa+uint32(i), byte(v>>(8*i))); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < size; i++ {
		pa, err := c.MMU.Translate(va+uint32(i), mmu.Write, mode)
		if err != nil {
			return err
		}
		if err := c.physStoreByte(pa, byte(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

// LoadLong is LoadVirt at the current mode, 4 bytes.
func (c *CPU) LoadLong(va uint32) (uint32, error) {
	return c.LoadVirt(va, 4, c.psl.Cur())
}

// StoreLong is StoreVirt at the current mode, 4 bytes.
func (c *CPU) StoreLong(va uint32, v uint32) error {
	return c.StoreVirt(va, 4, v, c.psl.Cur())
}

// Push pushes a longword on the active stack.
func (c *CPU) Push(v uint32) error {
	sp := c.R[RegSP] - 4
	if err := c.StoreVirt(sp, 4, v, c.psl.Cur()); err != nil {
		return err
	}
	c.R[RegSP] = sp
	return nil
}

// Pop pops a longword from the active stack.
func (c *CPU) Pop() (uint32, error) {
	v, err := c.LoadVirt(c.R[RegSP], 4, c.psl.Cur())
	if err != nil {
		return 0, err
	}
	c.R[RegSP] += 4
	return v, nil
}

// fetchByte reads the next instruction-stream byte and advances PC.
func (c *CPU) fetchByte() (byte, error) {
	v, err := c.LoadVirt(c.R[RegPC], 1, c.psl.Cur())
	if err != nil {
		return 0, err
	}
	c.R[RegPC]++
	return byte(v), nil
}

func (c *CPU) fetchWord() (uint16, error) {
	v, err := c.LoadVirt(c.R[RegPC], 2, c.psl.Cur())
	if err != nil {
		return 0, err
	}
	c.R[RegPC] += 2
	return uint16(v), nil
}

func (c *CPU) fetchLong() (uint32, error) {
	v, err := c.LoadVirt(c.R[RegPC], 4, c.psl.Cur())
	if err != nil {
		return 0, err
	}
	c.R[RegPC] += 4
	return v, nil
}
