package cpu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/mem"
	"repro/internal/vax"
)

// recordSink is a minimal stand-in for the VMM: it records every event
// delivered to the real machine's kernel vectors and (by default) halts
// the machine so the test can inspect state.
type recordSink struct {
	got    []*vax.Exception
	onTrap func(c *CPU, e *vax.Exception) bool
}

func (s *recordSink) HandleException(c *CPU, e *vax.Exception) bool {
	s.got = append(s.got, e)
	if s.onTrap != nil {
		return s.onTrap(c, e)
	}
	c.Halt(HaltInstruction)
	return true
}

func (s *recordSink) last() *vax.Exception {
	if len(s.got) == 0 {
		return nil
	}
	return s.got[len(s.got)-1]
}

// vmMachine builds a modified-VAX machine executing src inside a virtual
// machine: mapping on (32 S pages, UW protection, identity frames 16+),
// PSL<VM> set, real mode executive (compressed VM kernel), VMPSL
// kernel/kernel.
type vmMachine struct {
	c    *CPU
	m    *mem.Memory
	prog *asm.Program
	sink *recordSink
}

const (
	vmSPTBase   = 0x1000 // physical address of the (shadow) SPT
	vmFrameBase = 16     // S page i -> frame 16+i
	vmSPages    = 32
)

func newVMMachine(t *testing.T, src string) *vmMachine {
	t.Helper()
	prog, err := asm.Assemble(src, vax.SystemBase)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.New(256 * 1024)
	if err := m.StoreBytes(vmFrameBase*vax.PageSize, prog.Code); err != nil {
		t.Fatal(err)
	}
	c := New(m, ModifiedVAX)
	for i := uint32(0); i < vmSPages; i++ {
		pte := vax.NewPTE(true, vax.ProtUW, true, vmFrameBase+i)
		if err := m.StoreLong(vmSPTBase+4*i, uint32(pte)); err != nil {
			t.Fatal(err)
		}
	}
	c.MMU.SBR = vmSPTBase
	c.MMU.SLR = vmSPages
	c.MMU.Enabled = true
	sink := &recordSink{}
	c.Sink = sink
	// Enter the VM: real executive mode with PSL<VM> set; the VM
	// believes it is in kernel mode.
	c.SetStackFor(vax.Executive, vax.SystemBase+16*vax.PageSize)
	c.SetPSL(vax.PSL(0).WithCur(vax.Executive).WithPrv(vax.Executive).WithVM(true))
	c.VMPSL = vax.PSL(0).WithCur(vax.Kernel).WithPrv(vax.Kernel)
	start := prog.Origin
	if s, ok := prog.Symbol("start"); ok {
		start = s
	}
	c.SetPC(start)
	return &vmMachine{c: c, m: m, prog: prog, sink: sink}
}

func (vm *vmMachine) run(t *testing.T, maxSteps uint64) {
	t.Helper()
	vm.c.Run(maxSteps)
	if !vm.c.Halted {
		t.Fatalf("did not halt: pc=%#x", vm.c.PC())
	}
}

func vmInfoOf(t *testing.T, e *vax.Exception) *vax.VMTrapInfo {
	t.Helper()
	if e == nil {
		t.Fatal("no exception recorded")
	}
	if e.Vector != vax.VecVMEmulation || e.VMInfo == nil {
		t.Fatalf("want VM-emulation trap, got %v", e)
	}
	return e.VMInfo
}

func TestVMTrapCHMK(t *testing.T) {
	vm := newVMMachine(t, "start:\tchmk #42")
	vm.run(t, 10)
	info := vmInfoOf(t, vm.sink.last())
	if info.Opcode != vax.OpCHMK {
		t.Errorf("opcode = %#x", info.Opcode)
	}
	if len(info.Operands) != 2 || info.Operands[0] != 42 {
		t.Errorf("operands = %v", info.Operands)
	}
	if info.GuestPSL.Cur() != vax.Kernel {
		t.Errorf("guest PSL cur = %s", info.GuestPSL.Cur())
	}
	if !vm.sink.last().FromVM {
		t.Error("FromVM not set")
	}
	if vm.c.PSL().VM() {
		t.Error("microcode must clear PSL<VM> before the VMM runs")
	}
	if vm.c.Stats.VMTraps != 1 {
		t.Errorf("VMTraps = %d", vm.c.Stats.VMTraps)
	}
}

func TestVMTrapCHMFromVMUserMode(t *testing.T) {
	// CHM is sensitive regardless of mode: even VM-user CHMK must reach
	// the VMM (which forwards it to the VM's SCB).
	vm := newVMMachine(t, "start:\tchmk #7")
	vm.c.VMPSL = vax.PSL(0).WithCur(vax.User).WithPrv(vax.User)
	vm.c.SetPSL(vax.PSL(0).WithCur(vax.User).WithPrv(vax.User).WithVM(true))
	vm.run(t, 10)
	info := vmInfoOf(t, vm.sink.last())
	if info.GuestPSL.Cur() != vax.User {
		t.Errorf("guest PSL cur = %s", info.GuestPSL.Cur())
	}
}

func TestVMTrapREI(t *testing.T) {
	vm := newVMMachine(t, "start:\trei")
	vm.run(t, 10)
	info := vmInfoOf(t, vm.sink.last())
	if info.Opcode != vax.OpREI {
		t.Errorf("opcode = %#x", info.Opcode)
	}
	// Trap semantics: NextPC points past the REI.
	if info.NextPC != info.PC+1 {
		t.Errorf("PC=%#x NextPC=%#x", info.PC, info.NextPC)
	}
}

func TestVMMOVPSLMergesWithoutTrap(t *testing.T) {
	vm := newVMMachine(t, `
start:	movpsl r0
	chmk #0              ; deliver state to the test
`)
	vm.c.VMPSL = vax.PSL(0).WithCur(vax.Kernel).WithPrv(vax.User).WithIPL(11)
	vm.run(t, 10)
	// Exactly one trap (the CHMK) — MOVPSL itself never traps.
	if len(vm.sink.got) != 1 {
		t.Fatalf("got %d traps", len(vm.sink.got))
	}
	psl := vax.PSL(vm.c.R[0])
	if psl.Cur() != vax.Kernel || psl.Prv() != vax.User || psl.IPL() != 11 {
		t.Errorf("merged PSL = %s", psl)
	}
	if psl.VM() {
		t.Error("PSL<VM> visible through MOVPSL")
	}
	if vm.c.Stats.MOVPSLs != 1 {
		t.Errorf("MOVPSLs = %d", vm.c.Stats.MOVPSLs)
	}
}

func TestVMPrivilegedInstructionsTrapByVMMode(t *testing.T) {
	// Section 4.4.1: in VM-kernel mode the privileged sensitive
	// instructions take the VM-emulation trap; in other VM modes they
	// take the ordinary privileged-instruction fault.
	for _, tc := range []struct {
		src    string
		opcode uint16
	}{
		{"start:\tmtpr r0, #18", vax.OpMTPR},
		{"start:\tmfpr #18, r1", vax.OpMFPR},
		{"start:\thalt", vax.OpHALT},
		{"start:\tldpctx", vax.OpLDPCTX},
		{"start:\tsvpctx", vax.OpSVPCTX},
		{"start:\twait", vax.OpWAIT},
		{"start:\tprobevmr #1, (r0)", vax.OpPROBEVMR},
	} {
		vm := newVMMachine(t, tc.src)
		vm.run(t, 10)
		info := vmInfoOf(t, vm.sink.last())
		if info.Opcode != tc.opcode {
			t.Errorf("%q: opcode %#x, want %#x", tc.src, info.Opcode, tc.opcode)
		}

		// Same instruction from VM-user mode: privileged instruction
		// fault, still delivered to the VMM (FromVM).
		vm2 := newVMMachine(t, tc.src)
		vm2.c.VMPSL = vax.PSL(0).WithCur(vax.User).WithPrv(vax.User)
		vm2.c.SetPSL(vax.PSL(0).WithCur(vax.User).WithPrv(vax.User).WithVM(true))
		vm2.run(t, 10)
		e := vm2.sink.last()
		if e == nil || e.Vector != vax.VecPrivInstr {
			t.Errorf("%q from VM user: got %v, want privileged instruction fault", tc.src, e)
		}
		if e != nil && !e.FromVM {
			t.Errorf("%q: FromVM not set on priv fault", tc.src)
		}
	}
}

func TestVMMTPROperandsDecoded(t *testing.T) {
	vm := newVMMachine(t, `
start:	movl #0x1234, r3
	mtpr r3, #18
`)
	vm.run(t, 10)
	info := vmInfoOf(t, vm.sink.last())
	if len(info.Operands) != 2 || info.Operands[0] != 0x1234 || info.Operands[1] != 18 {
		t.Errorf("operands = %v", info.Operands)
	}
}

func TestVMMFPRWriteBackRef(t *testing.T) {
	vm := newVMMachine(t, "start:\tmfpr #8, r5")
	vm.run(t, 10)
	info := vmInfoOf(t, vm.sink.last())
	if info.WriteBack == nil || !info.WriteBack.IsRegister || info.WriteBack.Register != 5 {
		t.Errorf("writeback = %v", info.WriteBack)
	}
	// The VMM completes the instruction via WriteRef.
	if err := vm.c.WriteRef(info.WriteBack, 0xCAFE); err != nil {
		t.Fatal(err)
	}
	if vm.c.R[5] != 0xCAFE {
		t.Error("WriteRef to register failed")
	}
}

func TestVMModifyFault(t *testing.T) {
	// Clear PTE<M> on S page 8 and write to it from the VM: the
	// modified VAX raises a modify fault to the VMM instead of setting
	// the bit in hardware (Section 4.4.2).
	vm := newVMMachine(t, `
start:	movl #1, @#0x80001000   ; S page 8
	chmk #0
`)
	pte := vax.NewPTE(true, vax.ProtUW, false, vmFrameBase+8)
	if err := vm.m.StoreLong(vmSPTBase+4*8, uint32(pte)); err != nil {
		t.Fatal(err)
	}
	vm.run(t, 10)
	e := vm.sink.last()
	if e == nil || e.Vector != vax.VecModifyFault {
		t.Fatalf("want modify fault, got %v", e)
	}
	if e.Params[1] != 0x80001000 {
		t.Errorf("faulting va = %#x", e.Params[1])
	}
	// The PTE must be untouched (software sets M).
	raw, _ := vm.m.LoadLong(vmSPTBase + 4*8)
	if vax.PTE(raw).Modified() {
		t.Error("hardware set M despite modify-fault mode")
	}
}

func TestVMWriteWithModifySetDoesNotFault(t *testing.T) {
	vm := newVMMachine(t, `
start:	movl #1, @#0x80001000
	chmk #0
`)
	vm.run(t, 10)
	e := vm.sink.last()
	if e == nil || e.Vector != vax.VecVMEmulation {
		t.Fatalf("want only the CHMK trap, got %v", e)
	}
	if len(vm.sink.got) != 1 {
		t.Errorf("extra traps: %v", vm.sink.got)
	}
}

func TestVMPROBEValidPTENoTrap(t *testing.T) {
	vm := newVMMachine(t, `
start:	prober #3, #4, @#0x80001000
	beql notacc
	movl #1, r9
	chmk #0
notacc:	movl #2, r9
	chmk #1
`)
	vm.run(t, 20)
	if len(vm.sink.got) != 1 {
		t.Fatalf("PROBE trapped despite valid PTE: %v", vm.sink.got)
	}
	if vm.c.R[9] != 1 {
		t.Error("UW page should probe accessible for user")
	}
}

func TestVMPROBEInvalidPTETraps(t *testing.T) {
	vm := newVMMachine(t, "start:\tprober #3, #4, @#0x80001000")
	// Null-PTE style: invalid, UW.
	pte := vax.NewPTE(false, vax.ProtUW, false, 0)
	if err := vm.m.StoreLong(vmSPTBase+4*8, uint32(pte)); err != nil {
		t.Fatal(err)
	}
	vm.run(t, 10)
	info := vmInfoOf(t, vm.sink.last())
	if info.Opcode != vax.OpPROBER {
		t.Errorf("opcode = %#x", info.Opcode)
	}
	// Fault semantics: after the VMM fills the shadow PTE the PROBE
	// re-executes. Simulate the fill and resume.
	if vm.sink.last().Kind != vax.Fault {
		t.Error("PROBE shadow-fill trap must be a fault (retry)")
	}
	if info.Operands[3] != 0x80001000 {
		t.Errorf("faulting probe va = %#x", info.Operands[3])
	}
}

func TestVMPROBEUsesVMPreviousMode(t *testing.T) {
	// Page protected ER (executive read). VMPSL<PRV>=user: probe #0
	// combines to user -> inaccessible. VMPSL<PRV>=kernel: probe mode
	// kernel... compressed page grants executive, so kernel probe of
	// mode-argument kernel is limited by operand mode only.
	src := `
start:	prober #0, #4, @#0x80001000
	beql notacc
	movl #1, r9
	chmk #0
notacc:	movl #2, r9
	chmk #1
`
	vm := newVMMachine(t, src)
	pte := vax.NewPTE(true, vax.ProtER, true, vmFrameBase+8)
	if err := vm.m.StoreLong(vmSPTBase+4*8, uint32(pte)); err != nil {
		t.Fatal(err)
	}
	vm.c.VMPSL = vax.PSL(0).WithCur(vax.Kernel).WithPrv(vax.User)
	vm.run(t, 20)
	if vm.c.R[9] != 2 {
		t.Error("probe with VM previous mode user should be inaccessible")
	}

	vm2 := newVMMachine(t, src)
	if err := vm2.m.StoreLong(vmSPTBase+4*8, uint32(pte)); err != nil {
		t.Fatal(err)
	}
	vm2.c.VMPSL = vax.PSL(0).WithCur(vax.Kernel).WithPrv(vax.Kernel)
	vm2.run(t, 20)
	if vm2.c.R[9] != 1 {
		t.Error("probe with VM previous mode kernel should be accessible")
	}
}

func TestPROBEVMOnModifiedBareMachine(t *testing.T) {
	// PROBEVM tests protection, validity, modify in that order
	// (Table 2), reporting through Z, V, C.
	prog := `
start:	probevmw #0, @#0x80001000
	movpsl r3            ; capture condition codes
	probevmw #0, @#0x80001200  ; page 9: invalid
	movpsl r4
	probevmw #0, @#0x80001400  ; page 10: M clear
	movpsl r5
	probevmr #0, @#0x80001400  ; read probe ignores M
	movpsl r6
	probevmw #0, @#0x80001600  ; page 11: ER -> write denied
	movpsl r7
	halt
`
	p, err := asm.Assemble(prog, vax.SystemBase)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(256 * 1024)
	if err := m.StoreBytes(vmFrameBase*vax.PageSize, p.Code); err != nil {
		t.Fatal(err)
	}
	c := New(m, ModifiedVAX)
	for i := uint32(0); i < vmSPages; i++ {
		pte := vax.NewPTE(true, vax.ProtUW, true, vmFrameBase+i)
		switch i {
		case 9:
			pte = vax.NewPTE(false, vax.ProtUW, false, vmFrameBase+i)
		case 10:
			pte = vax.NewPTE(true, vax.ProtUW, false, vmFrameBase+i)
		case 11:
			pte = vax.NewPTE(true, vax.ProtER, true, vmFrameBase+i)
		}
		if err := m.StoreLong(vmSPTBase+4*i, uint32(pte)); err != nil {
			t.Fatal(err)
		}
	}
	c.MMU.SBR = vmSPTBase
	c.MMU.SLR = vmSPages
	c.MMU.Enabled = true
	c.SetStackFor(vax.Kernel, vax.SystemBase+16*vax.PageSize)
	c.SetPSL(vax.PSL(0).WithCur(vax.Kernel))
	c.SetPC(p.MustSymbol("start"))
	c.Run(100)
	if !c.Halted {
		t.Fatalf("did not halt, pc=%#x", c.PC())
	}
	ccOf := func(r int) (z, v, carry bool) {
		p := vax.PSL(c.R[r])
		return uint32(p)&vax.PSLZ != 0, uint32(p)&vax.PSLV != 0, uint32(p)&vax.PSLC != 0
	}
	if z, v, cy := ccOf(3); z || v || cy {
		t.Errorf("valid modified UW page: z=%t v=%t c=%t", z, v, cy)
	}
	if z, v, cy := ccOf(4); z || !v || cy {
		t.Errorf("invalid page must set V: z=%t v=%t c=%t", z, v, cy)
	}
	if z, v, cy := ccOf(5); z || v || !cy {
		t.Errorf("unmodified page on write probe must set C: z=%t v=%t c=%t", z, v, cy)
	}
	if z, v, cy := ccOf(6); z || v || cy {
		t.Errorf("read probe must ignore M: z=%t v=%t c=%t", z, v, cy)
	}
	if z, _, _ := ccOf(7); !z {
		t.Error("write probe of ER page must set Z")
	}
}

func TestVMGuestPageFaultReachesSink(t *testing.T) {
	vm := newVMMachine(t, "start:\tmovl @#0x80001000, r0")
	pte := vax.NewPTE(false, vax.ProtUW, false, 0) // null PTE
	if err := vm.m.StoreLong(vmSPTBase+4*8, uint32(pte)); err != nil {
		t.Fatal(err)
	}
	vm.run(t, 10)
	e := vm.sink.last()
	if e == nil || e.Vector != vax.VecTransNotValid || !e.FromVM {
		t.Fatalf("want TNV from VM, got %v", e)
	}
}

func TestVMEfficiencyNoTrapsOnPlainCode(t *testing.T) {
	// The efficiency property (Section 2): unprivileged instructions
	// execute directly with no VMM involvement.
	vm := newVMMachine(t, `
start:	clrl r0
	movl #100, r1
loop:	addl2 r1, r0
	sobgtr r1, loop
	chmk #0
`)
	vm.run(t, 1000)
	if len(vm.sink.got) != 1 {
		t.Errorf("plain code trapped %d times", len(vm.sink.got))
	}
	if vm.c.R[0] != 5050 {
		t.Errorf("sum = %d", vm.c.R[0])
	}
}

func TestSinkResumeExecution(t *testing.T) {
	// A sink that emulates MTPR-to-IPL by updating VMPSL and resuming,
	// like the real VMM.
	vm := newVMMachine(t, `
start:	mtpr #5, #18
	movpsl r2
	chmk #0
`)
	vm.sink.onTrap = func(c *CPU, e *vax.Exception) bool {
		if e.VMInfo != nil && e.VMInfo.Opcode == vax.OpMTPR {
			c.VMPSL = c.VMPSL.WithIPL(uint8(e.VMInfo.Operands[0]))
			c.SetPSL(c.PSL().WithVM(true)) // resume VM mode
			c.SetPC(e.VMInfo.NextPC)
			return true
		}
		c.Halt(HaltInstruction)
		return true
	}
	vm.run(t, 20)
	if vax.PSL(vm.c.R[2]).IPL() != 5 {
		t.Errorf("emulated IPL = %d, want 5", vax.PSL(vm.c.R[2]).IPL())
	}
}
