package cpu

import (
	"repro/internal/mmu"
	"repro/internal/vax"
)

// The hot-trace superblock tier. The decoded-instruction cache (see
// dcache.go) removes the per-instruction parse; this tier removes the
// per-instruction dispatch around it. Once a cached instruction proves
// hot, the instructions executed after it — across fallthrough and
// taken edges alike — are chained into a superblock: a flat array of
// pre-bound steps, each carrying the virtual address it must execute
// at and a private copy of its decoded entry. Executing a superblock
// replays the steps back to back with no fetch, no decode-cache probe,
// no interrupt poll and no device tick between them; those costs are
// paid once per block instead of once per instruction.
//
// Correctness rests on three mechanisms:
//
//   - Entry guards. A block is entered only when its start PA and VA
//     both match and every code page it was recorded from still
//     translates (under the current mode) to the same physical page.
//     Translation is re-done fresh at every entry, so a block needs no
//     TLB-coherence work of its own: TBIA/TBIS between blocks simply
//     make the next entry revalidate, exactly like the single-page
//     decode entries.
//   - Per-step exits. Between steps the executor checks, in order: the
//     step error (faults leave the block and take the architectural
//     path through handleError, with the same register restore the
//     interpreter performs), halt and WAIT, invalidation of the block
//     itself (a store into its pages mid-block, including by its own
//     instructions), a TLB invalidate issued mid-block (entry
//     revalidation cannot catch a remap that happens inside the
//     block), a change of the PSL's privileged fields (mode, IPL, IS,
//     VM — anything that alters translation or interrupt
//     deliverability), and finally the edge check: the next step runs
//     only if PC actually arrived at its recorded address.
//   - Invalidation through the existing page hooks. Stores, DMA and
//     VMM writes funnel through invalidateDecodePA, snapshot restore
//     through FlushDecodeCache; both now drop superblocks alongside
//     decode entries, keyed by the same physical-page bitmap trick.
//
// Interrupts are polled at block boundaries only: a device interrupt
// (or a guest-raised software interrupt) arriving mid-block is
// delivered at most sbMaxSteps instructions late, the documented
// trade of this tier.
//
// The tier is strictly opt-in (EnableTranslation): a CPU that never
// opts in allocates nothing and pays one nil test per Step.

const (
	// sbSlots is the direct-mapped block cache size, indexed by the
	// low bits of the start instruction's physical address.
	sbSlots = 256
	// sbMaxSteps bounds a block's length. Steps may revisit the same
	// instruction (a two-instruction loop unrolls sixteen times), so
	// short hot loops amortize the block-entry costs across many
	// iterations.
	sbMaxSteps = 32
	// sbMinSteps is the shortest block worth installing; anything
	// shorter replays just as fast from the decode cache.
	sbMinSteps = 4
	// sbMaxPages bounds the distinct code-page translations one block
	// may depend on; a trace that wanders further ends the block.
	sbMaxPages = 4
	// sbDefaultHeat is how many decode-cache executions an instruction
	// accumulates before a build starts at it (see SetTraceThreshold).
	sbDefaultHeat = 64
)

// sbPSLGuard selects the PSL fields whose change ends a superblock:
// access modes, IPL, the interrupt-stack and first-part-done bits, and
// PSL<VM> — everything that affects translation or interrupt
// deliverability. Condition codes and trap enables change freely.
const sbPSLGuard = vax.PSLIPLMask | vax.PSLPrvMask | vax.PSLCurMask |
	vax.PSLIS | vax.PSLFPD | vax.PSLVM

// sbStep is one pre-bound instruction of a superblock.
type sbStep struct {
	va    uint32  // virtual address this step must execute at
	bound sbBound // fully pre-bound form (fbNone: use the generic path)
	ent   dcEntry // private copy of the decoded entry (survives eviction)
}

// sbPage is one code-page translation a block depends on.
type sbPage struct {
	va uint32 // page base, virtual
	pa uint32 // page base, physical, as recorded at build time
}

// sblock is one superblock.
type sblock struct {
	valid   bool
	nSteps  uint8
	nPages  uint8
	startVA uint32
	startPA uint32
	pages   [sbMaxPages]sbPage
	steps   [sbMaxSteps]sbStep
}

// dependsOnPage reports whether the block recorded code from the given
// physical page.
func (b *sblock) dependsOnPage(page uint32) bool {
	for i := uint8(0); i < b.nPages; i++ {
		if b.pages[i].pa/vax.PageSize == page {
			return true
		}
	}
	return false
}

// addPage records a code-page dependency, deduplicating; false means
// the block is out of page slots and must end.
func (b *sblock) addPage(vaBase, paBase uint32) bool {
	for i := uint8(0); i < b.nPages; i++ {
		if b.pages[i].va == vaBase && b.pages[i].pa == paBase {
			return true
		}
	}
	if b.nPages >= sbMaxPages {
		return false
	}
	b.pages[b.nPages] = sbPage{va: vaBase, pa: paBase}
	b.nPages++
	return true
}

// sbCache is the superblock tier's state, allocated only when a CPU
// opts in via EnableTranslation (about 1.2 MB; a tier-off CPU carries
// a nil pointer).
type sbCache struct {
	blocks   []sblock
	pageBits []uint64 // physical pages holding at least one block's code
	pageLim  uint32

	threshold uint16 // heat needed to start a build

	building bool
	bld      *sblock // slot being filled in place (valid=false until done)
	tlbFlush bool    // a TBIA/TBIS happened; set mid-block forces an exit
}

func (sb *sbCache) markPage(page uint32) {
	if page < sb.pageLim {
		sb.pageBits[page>>6] |= 1 << (page & 63)
	}
}

func (sb *sbCache) pageMarked(page uint32) bool {
	return page < sb.pageLim && sb.pageBits[page>>6]&(1<<(page&63)) != 0
}

// EnableTranslation switches the hot-trace superblock tier on or off.
// Storage is allocated on the first enable, so a machine that never
// opts in pays nothing; disabling drops every block.
func (c *CPU) EnableTranslation(on bool) {
	if !on {
		c.sb = nil
		return
	}
	if c.sb == nil {
		pages := c.Mem.Pages()
		c.sb = &sbCache{
			blocks:    make([]sblock, sbSlots),
			pageBits:  make([]uint64, (pages+63)/64),
			pageLim:   pages,
			threshold: sbDefaultHeat,
		}
	}
}

// TranslationEnabled reports whether the superblock tier is on.
func (c *CPU) TranslationEnabled() bool { return c.sb != nil }

// SetTraceThreshold sets how many decode-cache executions make an
// instruction hot enough to head a superblock (tests and tuning; the
// default is sbDefaultHeat).
func (c *CPU) SetTraceThreshold(n int) {
	if c.sb != nil && n > 0 && n < 1<<16 {
		c.sb.threshold = uint16(n)
	}
}

// stepTranslated executes one Step's worth of work with the tier on:
// enter a superblock when one is valid at the PC, otherwise interpret
// one instruction (heating its decode entry and extending any build in
// progress). The caller has already handled halts, interrupts, WAIT
// and the trap-all check; it ticks the devices with whatever cycles
// this consumed.
func (c *CPU) stepTranslated() {
	sb := c.sb
	pa, paOK := c.MMU.TranslateFast(c.R[RegPC], mmu.Read, c.psl.Cur())
	if paOK && !sb.building {
		b := &sb.blocks[pa&(sbSlots-1)]
		if b.valid && b.startPA == pa && b.startVA == c.R[RegPC] && c.sbPagesValid(b) {
			c.execBlock(b)
			return
		}
		// No block here: heat the decoded entry under this PA and start
		// a build when it crosses the threshold (the build then feeds
		// off the interpretation below).
		if e := &c.dc.entries[pa&(dcSlots-1)]; e.valid && e.tag == pa {
			e.heat++
			if e.heat >= sb.threshold {
				e.heat = 0
				c.sbStartBuild(pa, c.R[RegPC])
			}
		}
	}
	err := c.execOneAt(pa, paOK)
	if sb.building {
		c.sbBuildAppend(err)
	}
	if err != nil {
		c.handleError(err, c.instStartPC)
	}
	c.Stats.Instructions++
}

// sbPagesValid re-translates every code page the block depends on and
// checks each still maps where the build recorded it.
func (c *CPU) sbPagesValid(b *sblock) bool {
	mode := c.psl.Cur()
	for i := uint8(0); i < b.nPages; i++ {
		pa, ok := c.MMU.TranslateFast(b.pages[i].va, mmu.Read, mode)
		if !ok || pa != b.pages[i].pa {
			return false
		}
	}
	return true
}

// execBlock replays a superblock step by step. Each step performs
// exactly what one interpreted instruction would — register snapshot,
// PC advance, cost charge, handler call through the replay cursor,
// fault handling — so a block is observationally an unrolled run of
// Steps with the interrupt poll and device tick hoisted to the
// boundary.
func (c *CPU) execBlock(b *sblock) {
	sb := c.sb
	sb.tlbFlush = false
	c.Stats.SBEnters++
	entryPSL := uint32(c.psl) & sbPSLGuard
	n := int(b.nSteps)
	var done uint64
	for i := 0; i < n; i++ {
		st := &b.steps[i]
		if c.R[RegPC] != st.va {
			// The previous step branched off the recorded edge.
			c.Stats.SBEarlyExits++
			break
		}
		if st.bound.kind != fbNone {
			// Pre-bound step: register/literal operands only, so it
			// cannot fault, store, halt, wait or touch guarded PSL
			// fields — no snapshot, no cursor, no exit checks.
			c.execBound(&st.bound)
			done++
			continue
		}
		c.regSnapshot = c.R
		c.instStartPC = st.va
		e := &st.ent
		cu := &c.cur
		cu.mode = curReplay
		cu.n = 0
		cu.ent = e
		c.R[RegPC] += uint32(e.opLen)
		c.Cycles += uint64(e.ie.cost)
		err := e.ie.fn(c, e.ie)
		cu.mode = curOff
		done++
		if err != nil {
			c.handleError(err, st.va)
			c.Stats.SBEarlyExits++
			break
		}
		if c.Halted || c.waiting || !b.valid || sb.tlbFlush ||
			uint32(c.psl)&sbPSLGuard != entryPSL {
			if i+1 < n {
				c.Stats.SBEarlyExits++
			}
			break
		}
	}
	c.Stats.SBSteps += done
	c.Stats.Instructions += done
}

// sbStartBuild claims the block slot for the trace about to be
// recorded. The build fills the slot in place with valid still false,
// so a conflict eviction is implicit and an aborted build leaves a
// dead slot, never a wrong one.
func (c *CPU) sbStartBuild(pa, va uint32) {
	sb := c.sb
	b := &sb.blocks[pa&(sbSlots-1)]
	b.valid = false
	b.nSteps = 0
	b.nPages = 0
	b.startVA = va
	b.startPA = pa
	sb.building = true
	sb.bld = b
}

// sbBuildAppend extends the build with the instruction the interpreter
// just executed, or ends the build when the trace can no longer be
// extended (a fault, a halt or WAIT, an uncacheable or evicted decode,
// or page-slot exhaustion).
func (c *CPU) sbBuildAppend(err error) {
	sb := c.sb
	b := sb.bld
	if err != nil || c.Halted || c.waiting {
		c.sbFinishBuild()
		return
	}
	// Re-probe the decode entry for the executed instruction: the cold
	// path installed one as a side effect, so even a compulsory miss
	// extends the trace. A failed translation or a missing entry means
	// the instruction is uncacheable (or a store just invalidated it);
	// the block ends before it.
	pa, ok := c.MMU.TranslateFast(c.instStartPC, mmu.Read, c.psl.Cur())
	if !ok {
		c.sbFinishBuild()
		return
	}
	e := &c.dc.entries[pa&(dcSlots-1)]
	if !e.valid || e.tag != pa {
		c.sbFinishBuild()
		return
	}
	if !b.addPage(vax.PageBase(c.instStartPC), vax.PageBase(pa)) {
		c.sbFinishBuild()
		return
	}
	if e.straddle {
		// The entry's bytes continue onto the next page; the block then
		// depends on that translation too, and revalidates it at entry.
		if !b.addPage(vax.PageBase(c.instStartPC)+vax.PageSize, e.tag2) {
			c.sbFinishBuild()
			return
		}
	}
	b.steps[b.nSteps] = sbStep{va: c.instStartPC, ent: *e}
	b.nSteps++
	if b.nSteps >= sbMaxSteps {
		c.sbFinishBuild()
	}
}

// sbFinishBuild installs the recorded trace (if long enough to be
// worth entering) and leaves building mode. Installation is also when
// each step gets its pre-bound form: templates whose operands are all
// registers and literals compile to an sbBound the executor runs
// without the cursor or the generic handler.
func (c *CPU) sbFinishBuild() {
	sb := c.sb
	b := sb.bld
	sb.building = false
	sb.bld = nil
	if b == nil || b.nSteps < sbMinSteps {
		return
	}
	for i := uint8(0); i < b.nPages; i++ {
		sb.markPage(b.pages[i].pa / vax.PageSize)
	}
	for i := uint8(0); i < b.nSteps; i++ {
		st := &b.steps[i]
		st.bound = sbBind(st.va, &st.ent)
	}
	b.valid = true
	c.Stats.SBBuilds++
	if c.OnTraceCompile != nil {
		c.OnTraceCompile(b.startVA, int(b.nSteps))
	}
}

// Pre-bound step kinds. Each mirrors its interpreter handler exactly
// (exec.go / dispatch.go), restricted to register and literal operands
// — the shapes that cannot fault, touch memory, or change guarded PSL
// fields. Everything else stays fbNone and takes the generic replay
// path through the handler.
const (
	fbNone   uint8 = iota
	fbMovl         // R[rb] = a; N,Z; V=0, C kept
	fbClrl         // R[rb] = 0
	fbTstl         // CC from a
	fbAddl2        // R[rb] += a
	fbSubl2        // R[rb] -= a
	fbBisl2        // R[rb] |= a
	fbBicl2        // R[rb] &^= a
	fbXorl2        // R[rb] ^= a
	fbMull2        // R[rb] *= a (signed, V on 32-bit overflow)
	fbIncl         // R[rb]++
	fbDecl         // R[rb]--
	fbCmpl         // CC from a vs R[rb]
	fbBr           // PC = taken (BRB/BRW)
	fbBcond        // PC = taken when the ra-coded predicate holds
	fbSobgtr       // R[ra]--; PC = taken while > 0
	fbSobgeq       // R[ra]--; PC = taken while >= 0
)

// Condition-branch predicate codes (sbBound.ra for fbBcond), in the
// order of dispatch.go's regBranch table.
const (
	fbcNEQ uint8 = iota
	fbcEQL
	fbcGTR
	fbcLEQ
	fbcGEQ
	fbcLSS
	fbcGTRU
	fbcLEQU
	fbcVC
	fbcVS
	fbcCC
	fbcCS
)

// sbBound is a fully pre-bound step: operation kind, operand a (the
// literal imm when aLit, else R[ra]), register operand b, and the
// precomputed successor PCs. cost is the instruction's up-front cycle
// charge (register shapes never pay CostMemOperand).
type sbBound struct {
	kind  uint8
	aLit  bool
	ra    uint8
	rb    uint8
	imm   uint32
	next  uint32 // PC after the instruction (fallthrough)
	taken uint32 // branch target (branch kinds)
	cost  uint16
}

// sbBind compiles one decoded entry into its pre-bound form, or fbNone
// when any operand is outside the register/literal subset. The entry's
// recorded items must cover the whole instruction (partial entries
// replay generically).
func sbBind(va uint32, e *dcEntry) sbBound {
	// Specifier accessors over the recorded items; every bound shape
	// consumes all items, so the last one's end offset is the
	// instruction length.
	spec := func(i uint8) (dspec, bool) {
		if i < e.n && e.items[i].kind == diSpec {
			t := e.items[i].spec
			if t.xreg == noIndex && (t.kind == evLiteral || t.kind == evRegister) {
				return t, true
			}
		}
		return dspec{}, false
	}
	raw := func(i uint8, kind uint8) (uint32, uint8, bool) {
		if i < e.n && e.items[i].kind == kind {
			return e.items[i].val, e.items[i].endOff, true
		}
		return 0, 0, false
	}
	// bindA fills operand a from a literal-or-register template.
	bindA := func(fb *sbBound, t dspec) {
		if t.kind == evLiteral {
			fb.aLit = true
			fb.imm = t.imm
		} else {
			fb.ra = t.reg
		}
	}
	fb := sbBound{cost: e.ie.cost}
	switch e.ie.op {
	case vax.OpMOVL, vax.OpTSTL, vax.OpCMPL,
		vax.OpADDL2, vax.OpSUBL2, vax.OpBISL2, vax.OpBICL2,
		vax.OpXORL2, vax.OpMULL2:
		a, ok := spec(0)
		if !ok || a.size != 4 {
			return sbBound{}
		}
		bindA(&fb, a)
		if e.ie.op == vax.OpTSTL {
			if e.n != 1 {
				return sbBound{}
			}
			fb.kind = fbTstl
			fb.next = va + uint32(a.endOff)
			return fb
		}
		b, ok := spec(1)
		if !ok || b.kind != evRegister || b.size != 4 || e.n != 2 {
			return sbBound{}
		}
		fb.rb = b.reg
		fb.next = va + uint32(b.endOff)
		switch e.ie.op {
		case vax.OpMOVL:
			fb.kind = fbMovl
		case vax.OpCMPL:
			fb.kind = fbCmpl
		case vax.OpADDL2:
			fb.kind = fbAddl2
		case vax.OpSUBL2:
			fb.kind = fbSubl2
		case vax.OpBISL2:
			fb.kind = fbBisl2
		case vax.OpBICL2:
			fb.kind = fbBicl2
		case vax.OpXORL2:
			fb.kind = fbXorl2
		case vax.OpMULL2:
			fb.kind = fbMull2
		}
		return fb
	case vax.OpCLRL, vax.OpINCL, vax.OpDECL:
		t, ok := spec(0)
		if !ok || t.kind != evRegister || t.size != 4 || e.n != 1 {
			return sbBound{}
		}
		fb.rb = t.reg
		fb.next = va + uint32(t.endOff)
		switch e.ie.op {
		case vax.OpCLRL:
			fb.kind = fbClrl
		case vax.OpINCL:
			fb.kind = fbIncl
		default:
			fb.kind = fbDecl
		}
		return fb
	case vax.OpSOBGTR, vax.OpSOBGEQ:
		t, ok := spec(0)
		if !ok || t.kind != evRegister || t.size != 4 {
			return sbBound{}
		}
		d, off, ok := raw(1, diByte)
		if !ok || e.n != 2 {
			return sbBound{}
		}
		fb.ra = t.reg
		fb.kind = fbSobgeq
		if e.ie.op == vax.OpSOBGTR {
			fb.kind = fbSobgtr
		}
		fb.next = va + uint32(off)
		fb.taken = fb.next + uint32(int32(int8(d)))
		return fb
	case vax.OpBRB:
		d, off, ok := raw(0, diByte)
		if !ok || e.n != 1 {
			return sbBound{}
		}
		fb.kind = fbBr
		fb.next = va + uint32(off)
		fb.taken = fb.next + uint32(int32(int8(d)))
		return fb
	case vax.OpBRW:
		d, off, ok := raw(0, diWord)
		if !ok || e.n != 1 {
			return sbBound{}
		}
		fb.kind = fbBr
		fb.next = va + uint32(off)
		fb.taken = fb.next + uint32(int32(int16(d)))
		return fb
	case vax.OpBNEQ, vax.OpBEQL, vax.OpBGTR, vax.OpBLEQ,
		vax.OpBGEQ, vax.OpBLSS, vax.OpBGTRU, vax.OpBLEQU,
		vax.OpBVC, vax.OpBVS, vax.OpBCC, vax.OpBCS:
		d, off, ok := raw(0, diByte)
		if !ok || e.n != 1 {
			return sbBound{}
		}
		fb.kind = fbBcond
		switch e.ie.op {
		case vax.OpBNEQ:
			fb.ra = fbcNEQ
		case vax.OpBEQL:
			fb.ra = fbcEQL
		case vax.OpBGTR:
			fb.ra = fbcGTR
		case vax.OpBLEQ:
			fb.ra = fbcLEQ
		case vax.OpBGEQ:
			fb.ra = fbcGEQ
		case vax.OpBLSS:
			fb.ra = fbcLSS
		case vax.OpBGTRU:
			fb.ra = fbcGTRU
		case vax.OpBLEQU:
			fb.ra = fbcLEQU
		case vax.OpBVC:
			fb.ra = fbcVC
		case vax.OpBVS:
			fb.ra = fbcVS
		case vax.OpBCC:
			fb.ra = fbcCC
		default:
			fb.ra = fbcCS
		}
		fb.next = va + uint32(off)
		fb.taken = fb.next + uint32(int32(int8(d)))
		return fb
	}
	return sbBound{}
}

// execBound runs one pre-bound step. Condition-code updates replicate
// setNZ/setNZVC and the handlers' f callbacks bit for bit; cycle
// charges match the interpreter (no memory operands, so never
// CostMemOperand).
func (c *CPU) execBound(fb *sbBound) {
	c.Cycles += uint64(fb.cost)
	c.R[RegPC] = fb.next
	a := fb.imm
	if !fb.aLit {
		a = c.R[fb.ra]
	}
	switch fb.kind {
	case fbMovl:
		c.R[fb.rb] = a
		c.setNZ(a, 4)
	case fbClrl:
		c.R[fb.rb] = 0
		c.setNZ(0, 4)
	case fbTstl:
		c.setNZ(a, 4)
	case fbAddl2:
		b := c.R[fb.rb]
		r := b + a
		c.R[fb.rb] = r
		c.setNZVC(int32(r) < 0, r == 0, (a^r)&(b^r)&0x80000000 != 0, r < a)
	case fbSubl2:
		b := c.R[fb.rb]
		r := b - a
		c.R[fb.rb] = r
		c.setNZVC(int32(r) < 0, r == 0, (a^b)&(b^r)&0x80000000 != 0, b < a)
	case fbBisl2:
		r := c.R[fb.rb] | a
		c.R[fb.rb] = r
		c.setNZVC(int32(r) < 0, r == 0, false, false)
	case fbBicl2:
		r := c.R[fb.rb] &^ a
		c.R[fb.rb] = r
		c.setNZVC(int32(r) < 0, r == 0, false, false)
	case fbXorl2:
		r := c.R[fb.rb] ^ a
		c.R[fb.rb] = r
		c.setNZVC(int32(r) < 0, r == 0, false, false)
	case fbMull2:
		full := int64(int32(a)) * int64(int32(c.R[fb.rb]))
		r := uint32(full)
		c.R[fb.rb] = r
		c.setNZVC(int32(r) < 0, r == 0, full != int64(int32(r)), false)
	case fbIncl:
		v := c.R[fb.rb]
		r := v + 1
		c.R[fb.rb] = r
		c.setNZVC(int32(r) < 0, r == 0, v == 0x7FFFFFFF, v == 0xFFFFFFFF)
	case fbDecl:
		v := c.R[fb.rb]
		r := v - 1
		c.R[fb.rb] = r
		c.setNZVC(int32(r) < 0, r == 0, v == 0x80000000, v == 0)
	case fbCmpl:
		b := c.R[fb.rb]
		c.setNZVC(int32(a) < int32(b), a == b, false, a < b)
	case fbBr:
		c.R[RegPC] = fb.taken
	case fbBcond:
		p := uint32(c.psl)
		var cond bool
		switch fb.ra {
		case fbcNEQ:
			cond = p&vax.PSLZ == 0
		case fbcEQL:
			cond = p&vax.PSLZ != 0
		case fbcGTR:
			cond = p&(vax.PSLZ|vax.PSLN) == 0
		case fbcLEQ:
			cond = p&(vax.PSLZ|vax.PSLN) != 0
		case fbcGEQ:
			cond = p&vax.PSLN == 0
		case fbcLSS:
			cond = p&vax.PSLN != 0
		case fbcGTRU:
			cond = p&(vax.PSLC|vax.PSLZ) == 0
		case fbcLEQU:
			cond = p&(vax.PSLC|vax.PSLZ) != 0
		case fbcVC:
			cond = p&vax.PSLV == 0
		case fbcVS:
			cond = p&vax.PSLV != 0
		case fbcCC:
			cond = p&vax.PSLC == 0
		default:
			cond = p&vax.PSLC != 0
		}
		if cond {
			c.R[RegPC] = fb.taken
		}
	case fbSobgtr, fbSobgeq:
		r := c.R[fb.ra] - 1
		c.R[fb.ra] = r
		c.setNZ(r, 4)
		if fb.kind == fbSobgtr && int32(r) > 0 ||
			fb.kind == fbSobgeq && int32(r) >= 0 {
			c.R[RegPC] = fb.taken
		}
	}
}

// sbInvalidatePage drops every superblock depending on the given
// physical page, and aborts a build recording from it. Called from
// invalidateDecodePA under the page bitmap, so the common store costs
// one extra bit test.
func (c *CPU) sbInvalidatePage(page uint32) {
	sb := c.sb
	if sb.building && sb.bld.dependsOnPage(page) {
		// Steps already recorded may be stale; drop the whole build.
		sb.building = false
		sb.bld = nil
	}
	if !sb.pageMarked(page) {
		return
	}
	for i := range sb.blocks {
		b := &sb.blocks[i]
		if b.valid && b.dependsOnPage(page) {
			b.valid = false
			c.Stats.SBInvalidations++
		}
	}
	if page < sb.pageLim {
		sb.pageBits[page>>6] &^= 1 << (page & 63)
	}
}

// sbFlush drops every superblock (snapshot restore, shard reset).
func (c *CPU) sbFlush() {
	sb := c.sb
	if sb == nil {
		return
	}
	for i := range sb.blocks {
		if sb.blocks[i].valid {
			sb.blocks[i].valid = false
			c.Stats.SBInvalidations++
		}
	}
	for i := range sb.pageBits {
		sb.pageBits[i] = 0
	}
	sb.building = false
	sb.bld = nil
}
