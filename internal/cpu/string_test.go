package cpu

import "testing"

func TestMOVC3(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	movc3 #13, src, dst
	movpsl r8            ; capture condition codes before they change
	movl r1, r6          ; src end
	movl r3, r7          ; dst end
	halt
src:	.ascii "hello, world!"
dst:	.space 16
`)
	ma.run(t, 1000)
	dst := ma.prog.MustSymbol("dst")
	got, _ := ma.m.LoadBytes(dst, 13)
	if string(got) != "hello, world!" {
		t.Errorf("copied %q", got)
	}
	c := ma.c
	if c.R[0] != 0 || c.R[6] != ma.prog.MustSymbol("src")+13 || c.R[7] != dst+13 {
		t.Errorf("register results: r0=%d r1=%#x r3=%#x", c.R[0], c.R[6], c.R[7])
	}
	if c.R[8]&(1<<2) == 0 { // Z
		t.Error("MOVC3 must set Z")
	}
}

func TestMOVC3OverlapForward(t *testing.T) {
	// dst inside src (dst > src): must behave like memmove.
	ma := newMachine(t, StandardVAX, `
start:	movc3 #6, buf, buf+2
	halt
buf:	.ascii "ABCDEF"
	.space 8
`)
	ma.run(t, 1000)
	got, _ := ma.m.LoadBytes(ma.prog.MustSymbol("buf"), 8)
	if string(got) != "ABABCDEF" {
		t.Errorf("overlap copy = %q", got)
	}
}

func TestCMPC3(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	cmpc3 #5, s1, s2     ; equal
	movpsl r6
	cmpc3 #5, s1, s3     ; differ at byte 3
	movl r0, r7          ; remaining count
	movpsl r8
	halt
s1:	.ascii "abcde"
s2:	.ascii "abcde"
s3:	.ascii "abcXe"
`)
	ma.run(t, 1000)
	c := ma.c
	if c.R[6]&(1<<2) == 0 {
		t.Error("equal strings must set Z")
	}
	if c.R[7] != 2 {
		t.Errorf("remaining = %d, want 2", c.R[7])
	}
	if c.R[8]&(1<<2) != 0 {
		t.Error("unequal strings must clear Z")
	}
	// 'c' < 'X' is false signed ('c'=0x63 > 'X'=0x58): N clear.
	if c.R[8]&(1<<3) != 0 {
		t.Error("N should be clear ('c' > 'X')")
	}
}

func TestQueueInstructions(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	moval hdr, r1
	movl r1, (r1)        ; empty queue: header points at itself
	movl r1, 4(r1)
	insque e1, hdr       ; first insert: Z set (queue was empty)
	movpsl r6
	insque e2, hdr       ; insert at head again
	movpsl r7
	remque @hdr, r8      ; remove from head -> e2
	movpsl r9
	remque @hdr, r10     ; remove -> e1, queue now empty: Z
	movpsl r11
	halt
	.align 4
hdr:	.long 0, 0
e1:	.long 0, 0
e2:	.long 0, 0
`)
	ma.run(t, 1000)
	c := ma.c
	if c.R[6]&(1<<2) == 0 {
		t.Error("first INSQUE should set Z (was empty)")
	}
	if c.R[7]&(1<<2) != 0 {
		t.Error("second INSQUE should clear Z")
	}
	if c.R[8] != ma.prog.MustSymbol("e2") {
		t.Errorf("first REMQUE returned %#x, want e2", c.R[8])
	}
	if c.R[10] != ma.prog.MustSymbol("e1") {
		t.Errorf("second REMQUE returned %#x, want e1", c.R[10])
	}
	if c.R[11]&(1<<2) == 0 {
		t.Error("final REMQUE should set Z (now empty)")
	}
	// Header is self-linked again.
	hdr := ma.prog.MustSymbol("hdr")
	f, _ := ma.m.LoadLong(hdr)
	b, _ := ma.m.LoadLong(hdr + 4)
	if f != hdr || b != hdr {
		t.Errorf("queue not empty after removals: %#x %#x", f, b)
	}
}

func TestREMQUEEmptySetsV(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	moval hdr, r1
	movl r1, (r1)
	movl r1, 4(r1)
	remque @hdr, r2
	movpsl r6
	halt
	.align 4
hdr:	.long 0, 0
`)
	ma.run(t, 1000)
	if ma.c.R[6]&(1<<1) == 0 { // V
		t.Error("REMQUE on an empty queue must set V")
	}
}

func TestMOVC3InVMRunsDirectly(t *testing.T) {
	// String instructions are unprivileged: zero VMM involvement.
	vm := newVMMachine(t, `
start:	movc3 #8, @#0x80000100, @#0x80004000
	chmk #0
`)
	if err := vm.m.StoreBytes(16*512+0x100, []byte("VAXDATA!")); err != nil {
		t.Fatal(err)
	}
	vm.run(t, 1000)
	if len(vm.sink.got) != 1 {
		t.Errorf("MOVC3 trapped: %d events", len(vm.sink.got))
	}
	got, _ := vm.m.LoadBytes(16*512+0x4000-0x2000, 8)
	_ = got // location depends on identity map; verified via CPU regs below
	if vm.c.R[0] != 0 || vm.c.R[2] != 0 {
		t.Error("MOVC3 register results wrong in VM")
	}
}

func TestConvertInstructions(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	movb #0x80, r0       ; -128 as a byte
	cvtbl r0, r1         ; sign-extends
	movw #0x8000, r2
	cvtwl r2, r3
	movl #300, r4
	cvtlb r4, r5         ; overflows a byte
	movpsl r6
	movl #100, r7
	cvtlb r7, r8         ; fits
	movpsl r9
	cvtlw #0x12345, r10  ; overflows a word
	halt
`)
	ma.run(t, 100)
	c := ma.c
	if c.R[1] != 0xFFFFFF80 {
		t.Errorf("cvtbl = %#x", c.R[1])
	}
	if c.R[3] != 0xFFFF8000 {
		t.Errorf("cvtwl = %#x", c.R[3])
	}
	if c.R[6]&(1<<1) == 0 { // V
		t.Error("cvtlb overflow must set V")
	}
	if c.R[8]&0xFF != 100 || c.R[9]&(1<<1) != 0 {
		t.Error("in-range cvtlb misbehaved")
	}
}

func TestACBL(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	clrl r2
	movl #1, r1          ; index
up:	incl r2
	acbl #5, #2, r1, up  ; 1,3,5 -> 3 iterations (branch while <= 5)
	movl #10, r3
	clrl r4
down:	incl r4
	acbl #4, #-2, r3, down ; 10,8,6,4 -> branch while >= 4
	halt
`)
	ma.run(t, 1000)
	if ma.c.R[2] != 3 {
		t.Errorf("up count = %d, want 3", ma.c.R[2])
	}
	if ma.c.R[4] != 4 {
		t.Errorf("down count = %d, want 4", ma.c.R[4])
	}
}
