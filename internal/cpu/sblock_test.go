package cpu

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/vax"
)

// Tests for the hot-trace superblock tier (sblock.go). Each mirrors a
// coherence scenario the decoded-instruction cache already covers
// (dcache_test.go) and proves the tier preserves it: self-modifying
// code, TBIS/TBIA remaps under a straddling instruction, DMA, and the
// wholesale flush a snapshot restore performs.

// hotLoop is a compute loop long enough to cross the (lowered) heat
// threshold, build a superblock, and spend most of its run inside it.
const hotLoop = `
start:	clrl r0
	movl #500, r1
loop:	addl2 #3, r0
	sobgtr r1, loop
	halt
`

// enableHot opts a test machine into the tier with a low threshold so
// short test loops get hot.
func enableHot(c *CPU) {
	c.EnableTranslation(true)
	c.SetTraceThreshold(8)
}

// TestSuperblockLoop checks that a hot loop is promoted into a
// superblock and retires most of its instructions inside it.
func TestSuperblockLoop(t *testing.T) {
	ma := newMachine(t, StandardVAX, hotLoop)
	enableHot(ma.c)
	ma.run(t, 100000)
	if ma.c.R[0] != 1500 {
		t.Fatalf("r0 = %d, want 1500", ma.c.R[0])
	}
	s := ma.c.Stats
	if s.SBBuilds == 0 {
		t.Fatal("hot loop built no superblock")
	}
	if s.SBEnters == 0 {
		t.Fatal("superblock was never entered")
	}
	if s.SBSteps < s.Instructions/2 {
		t.Errorf("only %d of %d instructions retired in superblocks",
			s.SBSteps, s.Instructions)
	}
}

// TestSuperblockMatchesInterpreter runs the same self-patching program
// with the tier on and off: registers, instruction count and the cycle
// account must be identical — the tier changes speed, not semantics.
func TestSuperblockMatchesInterpreter(t *testing.T) {
	src := `
start:	clrl r0
	movl #2, r3
outer:	movl #200, r1
loop:	addl2 #3, r0
	sobgtr r1, loop
	movb #9, @#loop+1
	sobgtr r3, outer
	halt
`
	off := newMachine(t, StandardVAX, src)
	off.run(t, 100000)
	on := newMachine(t, StandardVAX, src)
	enableHot(on.c)
	on.run(t, 100000)

	if on.c.R != off.c.R {
		t.Errorf("registers diverge:\n tier on  %v\n tier off %v", on.c.R, off.c.R)
	}
	if on.c.Stats.Instructions != off.c.Stats.Instructions {
		t.Errorf("instructions: tier on %d, tier off %d",
			on.c.Stats.Instructions, off.c.Stats.Instructions)
	}
	if on.c.Cycles != off.c.Cycles {
		t.Errorf("cycles: tier on %d, tier off %d", on.c.Cycles, off.c.Cycles)
	}
	if on.c.Stats.SBEnters == 0 {
		t.Error("tier-on run never entered a superblock")
	}
}

// TestSuperblockSelfModifying patches a hot loop's literal between two
// passes: the store must invalidate the superblock (and any build in
// flight) so the second pass executes the new bytes.
func TestSuperblockSelfModifying(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	clrl r0
	movl #2, r3
outer:	movl #200, r1
loop:	addl2 #3, r0
	sobgtr r1, loop
	movb #9, @#loop+1
	sobgtr r3, outer
	halt
`)
	enableHot(ma.c)
	ma.run(t, 100000)
	// Pass 1 adds 3 two hundred times, pass 2 adds 9 two hundred times.
	if want := uint32(200*3 + 200*9); ma.c.R[0] != want {
		t.Fatalf("r0 = %d, want %d (stale superblock executed)", ma.c.R[0], want)
	}
	if ma.c.Stats.SBInvalidations == 0 {
		t.Error("store to hot code dropped no superblocks")
	}
}

// Straddling hot loop: hand-assembled so the ADDL2's immediate crosses
// the S page 2/3 boundary. Page 3 is backed by frame strFrameB first
// and remapped to strFrameB2, whose copy of the code carries a
// different immediate in the bytes past the boundary (the low
// immediate byte lives on page 2 and cannot change, so the two values
// share it).
const (
	slImm1 = 0x11111111
	slImm2 = 0x22222211 // same low byte: it lives on the first page
	slLaps = 200
)

// newStraddleLoopMachine maps S pages 0-3 to frames 16, 17, strFrameA,
// strFrameB and lays out:
//
//	S+0x400: CLRL R0; MOVL #laps, R1; BRW loop
//	S+0x5FD: loop: ADDL2 #imm32, R0   (immediate crosses S+0x600)
//	S+0x604: SOBGTR R1, loop
//	S+0x607: HALT
func newStraddleLoopMachine(t *testing.T) (*CPU, *mem.Memory) {
	t.Helper()
	m := mem.New(256 * 1024)
	wr := func(pa uint32, bs ...byte) {
		for i, b := range bs {
			if err := m.StoreByte(pa+uint32(i), b); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Page 2 (frame strFrameA): prologue at offset 0, loop head at the
	// page's last three bytes (opcode C0, specifier 8F, imm byte 0).
	p2 := uint32(strFrameA * vax.PageSize)
	wr(p2,
		0xD4, 0x50, // CLRL R0
		0xD0, 0x8F, byte(slLaps), 0x00, 0x00, 0x00, 0x51, // MOVL #laps, R1
		0x31, 0xF1, 0x01) // BRW loop (disp 0x1F1 from S+0x40C)
	wr(p2+vax.PageSize-3, 0xC0, 0x8F, slImm1&0xFF) // ADDL2 #imm, ...
	// Page 3 (frames strFrameB and strFrameB2): the immediate's high
	// three bytes, the R0 specifier, SOBGTR back to loop, HALT.
	tail := func(frame, imm uint32) {
		pa := frame * vax.PageSize
		wr(pa, byte(imm>>8), byte(imm>>16), byte(imm>>24), 0x50, // ... #imm, R0
			0xF5, 0x51, 0xF6, // SOBGTR R1, loop (disp -0x0A)
			0x00) // HALT
	}
	tail(strFrameB, slImm1)
	tail(strFrameB2, slImm2)

	for i, frame := range []uint32{16, 17, strFrameA, strFrameB} {
		pte := vax.NewPTE(true, vax.ProtUW, true, frame)
		if err := m.StoreLong(strSPT+4*uint32(i), uint32(pte)); err != nil {
			t.Fatal(err)
		}
	}
	c := New(m, StandardVAX)
	c.MMU.SBR = strSPT
	c.MMU.SLR = 4
	c.MMU.Enabled = true
	c.SetPSL(vax.PSL(0).WithCur(vax.Kernel))
	enableHot(c)
	return c, m
}

func runStraddleLoop(t *testing.T, c *CPU, wantImm uint32) {
	t.Helper()
	c.ClearHalt()
	c.SetPC(uint32(vax.SystemBase) + 2*vax.PageSize)
	c.SetSP(0x8000)
	c.Run(100000)
	if !c.Halted {
		t.Fatalf("did not halt; pc=%#x", c.PC())
	}
	if want := wantImm * slLaps; c.R[0] != want {
		t.Fatalf("r0 = %#x, want %#x (stale straddle bytes executed)", c.R[0], want)
	}
}

// TestSuperblockStraddleTBIS remaps the second page of a hot,
// page-straddling loop body: after TBIS the superblock's entry guard
// must notice the translation change and the rebuilt trace must use
// the new immediate bytes.
func TestSuperblockStraddleTBIS(t *testing.T) {
	c, m := newStraddleLoopMachine(t)
	runStraddleLoop(t, c, slImm1)
	if c.Stats.SBEnters == 0 {
		t.Fatal("straddling loop never entered a superblock")
	}
	entered := c.Stats.SBEnters

	pte := vax.NewPTE(true, vax.ProtUW, true, strFrameB2)
	if err := m.StoreLong(strSPT+4*3, uint32(pte)); err != nil {
		t.Fatal(err)
	}
	c.MMU.TBIS(uint32(vax.SystemBase) + 3*vax.PageSize)
	runStraddleLoop(t, c, slImm2)
	if c.Stats.SBEnters == entered {
		t.Error("loop did not get hot again after the remap")
	}
}

// TestSuperblockStraddleTBIA is the same scenario through a full TLB
// invalidate.
func TestSuperblockStraddleTBIA(t *testing.T) {
	c, m := newStraddleLoopMachine(t)
	runStraddleLoop(t, c, slImm1)
	pte := vax.NewPTE(true, vax.ProtUW, true, strFrameB2)
	if err := m.StoreLong(strSPT+4*3, uint32(pte)); err != nil {
		t.Fatal(err)
	}
	c.MMU.TBIA()
	runStraddleLoop(t, c, slImm2)
}

// TestSuperblockDMAInvalidate patches hot code the way a device would
// — a direct store to physical memory plus InvalidateDecode — and
// checks the rerun executes the new bytes.
func TestSuperblockDMAInvalidate(t *testing.T) {
	ma := newMachine(t, StandardVAX, hotLoop)
	enableHot(ma.c)
	ma.run(t, 100000)
	if ma.c.R[0] != 1500 {
		t.Fatalf("r0 = %d, want 1500", ma.c.R[0])
	}

	// "DMA" the ADDL2 literal from 3 to 5 (opcode byte C0, then the
	// short-literal specifier).
	patch := ma.prog.MustSymbol("loop") + 1
	if err := ma.m.StoreByte(patch, 5); err != nil {
		t.Fatal(err)
	}
	ma.c.InvalidateDecode(patch, 1)
	if ma.c.Stats.SBInvalidations == 0 {
		t.Fatal("DMA invalidation dropped no superblocks")
	}

	ma.c.ClearHalt()
	ma.c.SetPC(ma.prog.MustSymbol("start"))
	ma.run(t, 100000)
	if ma.c.R[0] != 2500 {
		t.Fatalf("r0 = %d after DMA patch, want 2500", ma.c.R[0])
	}
}

// TestSuperblockFlushRestore rewrites code under the machine wholesale
// (what a snapshot restore does) and relies on FlushDecodeCache — the
// restore path's hook — to drop every superblock.
func TestSuperblockFlushRestore(t *testing.T) {
	ma := newMachine(t, StandardVAX, hotLoop)
	enableHot(ma.c)
	ma.run(t, 100000)

	// "Restore" an image whose loop adds 7 instead of 3.
	patch := ma.prog.MustSymbol("loop") + 1
	if err := ma.m.StoreByte(patch, 7); err != nil {
		t.Fatal(err)
	}
	ma.c.FlushDecodeCache()

	ma.c.ClearHalt()
	ma.c.SetPC(ma.prog.MustSymbol("start"))
	ma.run(t, 100000)
	if ma.c.R[0] != 3500 {
		t.Fatalf("r0 = %d after restore, want 3500", ma.c.R[0])
	}
}

// TestSuperblockInterruptDelivery posts a device interrupt while a
// superblock is hot: delivery may slip to a block boundary but must
// happen, and the loop must finish correctly afterwards.
func TestSuperblockInterruptDelivery(t *testing.T) {
	ma := newMachine(t, StandardVAX, `
start:	clrl r0
	clrl r5
	movl #5000, r1
loop:	addl2 #3, r0
	sobgtr r1, loop
	halt
	.align 4
isr:	movl #1, r5
	rei
`)
	ma.setVector(t, 0xC4, "isr")
	enableHot(ma.c)
	ma.c.Run(100) // get the loop hot and inside superblocks
	if ma.c.Halted {
		t.Fatal("halted before the interrupt was posted")
	}
	if ma.c.Stats.SBEnters == 0 {
		t.Fatal("loop not yet hot when the interrupt was posted")
	}
	ma.c.RequestInterrupt(20, 0xC4)
	ma.run(t, 100000)
	if ma.c.R[5] != 1 {
		t.Error("interrupt was never delivered during superblock execution")
	}
	if ma.c.R[0] != 15000 {
		t.Fatalf("r0 = %d, want 15000", ma.c.R[0])
	}
	if ma.c.Stats.Interrupts == 0 {
		t.Error("no interrupt recorded")
	}
}

// TestTranslationAllocParity pins the steady-state tier at zero
// allocations per run: once hot, entering and replaying superblocks
// must allocate nothing.
func TestTranslationAllocParity(t *testing.T) {
	ma := newMachine(t, StandardVAX, hotLoop)
	enableHot(ma.c)
	ma.run(t, 100000) // warm: decode cache filled, superblock built
	start := ma.prog.MustSymbol("start")
	got := testing.AllocsPerRun(10, func() {
		ma.c.ClearHalt()
		ma.c.SetPC(start)
		ma.c.Run(100000)
	})
	if got != 0 {
		t.Fatalf("steady-state superblock execution allocates %.1f/run, want 0", got)
	}
	if ma.c.Stats.SBEnters == 0 {
		t.Fatal("alloc-parity runs never entered a superblock")
	}
}
