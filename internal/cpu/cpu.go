// Package cpu implements a cycle-accounted interpreter for the subset of
// the VAX architecture needed by the reproduction: the general registers,
// PSL, per-mode stack pointers, operand-specifier decoding, exception and
// interrupt dispatch through the SCB, and — selectable by Variant — the
// modified-architecture features of Sections 4 and 5 of the paper
// (PSL<VM>, VMPSL, the VM-emulation trap, the modify fault, PROBEVM and
// WAIT).
package cpu

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/vax"
)

// Variant selects between the standard VAX architecture and the modified
// architecture of the paper.
type Variant int

const (
	// StandardVAX has no virtualization support: PSL<VM> is a reserved
	// bit, PTE<M> is set by hardware, and WAIT/PROBEVM are privileged-
	// instruction faults.
	StandardVAX Variant = iota
	// ModifiedVAX implements the Section 4 changes.
	ModifiedVAX
)

func (v Variant) String() string {
	if v == ModifiedVAX {
		return "modified VAX"
	}
	return "standard VAX"
}

// Register aliases.
const (
	RegAP = 12
	RegFP = 13
	RegSP = 14
	RegPC = 15
)

// ExceptionSink intercepts events that the hardware would dispatch
// through the real SCB. The VMM of internal/core registers itself here,
// exactly where the paper's VMM owns the real machine's kernel-mode
// vectors. Returning true consumes the event; returning false lets the
// hardware dispatch through the SCB as usual.
type ExceptionSink interface {
	HandleException(c *CPU, e *vax.Exception) bool
}

// Device is a hardware model that advances with the processor and may
// request interrupts or service IPR and memory-mapped register accesses.
type Device interface {
	// Tick is called after every instruction with the cycles it consumed.
	Tick(c *CPU, cycles uint64)
}

// IPRHandler lets a device claim internal processor registers.
type IPRHandler interface {
	ReadIPR(c *CPU, r vax.IPR) (uint32, bool)
	WriteIPR(c *CPU, r vax.IPR, v uint32) bool
}

// MMIOHandler lets a device claim a physical address window (the typical
// VAX I/O mechanism of Section 4.4.3: device registers in a reserved
// area of physical memory).
type MMIOHandler interface {
	// Window returns the physical base and length of the register file.
	Window() (base, size uint32)
	LoadReg(c *CPU, offset uint32) (uint32, error)
	StoreReg(c *CPU, offset uint32, v uint32) error
}

// Stats counts processor events for the experiment harness.
type Stats struct {
	Instructions uint64
	Exceptions   uint64
	Interrupts   uint64
	VMTraps      uint64 // VM-emulation traps taken
	PrivTraps    uint64 // privileged instruction faults
	CHMs         uint64
	REIs         uint64
	MOVPSLs      uint64
	Probes       uint64

	// Decoded-instruction cache counters (see dcache.go).
	DecodeHits          uint64
	DecodeMisses        uint64
	DecodeInvalidations uint64

	// Superblock translation-tier counters (see sblock.go): blocks
	// built, block entries, instructions retired inside blocks, exits
	// before a block's last step, and blocks dropped by invalidation.
	SBBuilds        uint64
	SBEnters        uint64
	SBSteps         uint64
	SBEarlyExits    uint64
	SBInvalidations uint64
}

// HaltReason explains why the processor stopped.
type HaltReason int

const (
	NotHalted HaltReason = iota
	HaltInstruction
	HaltDoubleError // exception while dispatching an exception
	HaltBusError    // machine check with no handler
)

// CPU is one simulated VAX processor.
type CPU struct {
	Mem *mem.Memory
	MMU *mmu.MMU

	R   [16]uint32
	psl vax.PSL

	// Per-mode stack pointer save area; the active mode's SP lives in
	// R[RegSP]. ISP is the interrupt stack pointer.
	spSave [vax.NumModes]uint32
	ISP    uint32
	onISP  bool

	// VMPSL holds the fields of the VM's PSL that differ from the real
	// machine's (current mode, previous mode, IPL) — modified VAX only
	// (Section 4.2).
	VMPSL vax.PSL

	// Internal processor registers kept in the CPU proper.
	SCBB   uint32
	PCBB   uint32
	SISR   uint32
	ASTLVL uint32
	SID    uint32

	Variant Variant

	Sink    ExceptionSink
	devices []Device
	iprs    []IPRHandler
	mmio    []MMIOHandler

	pendingIRQ [32]uint32 // vector per device IPL; 0 = none
	irqSummary uint32     // bit per IPL with a pending device interrupt
	waiting    bool       // inside a WAIT (bare modified machine never waits)

	// TrapAllInVM models Goldberg's first ring-mapping scheme (paper
	// Section 7.1): while the VM is in its most privileged mode, every
	// instruction traps to the VMM for emulation. The VMM grants a
	// one-instruction window with StepVMInstruction to "emulate" by
	// direct execution.
	TrapAllInVM     bool
	trapAllSkipOnce bool

	// ProbeWTrapOnDeny supports the read-only-shadow alternative to the
	// modify fault (paper Section 4.4.2): when the VMM encodes "not yet
	// modified" as a write-denying shadow protection, a PROBEW that the
	// shadow would fail cannot be trusted — microcode must trap to the
	// VMM, which consults the VM's own page table.
	ProbeWTrapOnDeny bool

	// modifyFaultOptIn enables the modify fault outside VM mode:
	// footnote 9 of the paper records that the fault "has since been
	// adopted into the base VAX architecture as an optional alternative
	// to hardware's setting PTE<M>". Operating systems opt in at boot.
	modifyFaultOptIn bool

	Cycles uint64
	Stats  Stats

	Halted bool
	Reason HaltReason

	// regSnapshot holds the register file at the start of the current
	// instruction so faults can restore operand side effects;
	// instStartPC is the address of the instruction being executed.
	regSnapshot [16]uint32
	instStartPC uint32

	// scratch backs the preallocated exceptions of the common fault
	// paths (see DESIGN.md, "Allocation-free fault path"): a scratch
	// *Exception is valid only until this CPU's next fault and must
	// never be retained across instructions.
	scratch vax.ExcScratch

	// vmScratch backs the VM-emulation traps the same way (see
	// vax.VMTrapScratch): the Exception/VMTrapInfo/operand package of a
	// sensitive-instruction trap is recycled per CPU instead of
	// allocated per trap. Valid only until this CPU's next VM trap.
	vmScratch vax.VMTrapScratch

	// dc is the decoded-instruction cache; cur is the record/replay
	// cursor of the instruction currently executing (dcache.go). sb is
	// the hot-trace superblock tier, nil unless EnableTranslation
	// opted this processor in (sblock.go).
	dc  dcache
	cur cursor
	sb  *sbCache

	// OnTraceCompile, when non-nil, is invoked after each superblock
	// install with the block's start VA and step count (the flight
	// recorder's EvTraceCompile rides on it). Wired by the VMM only
	// when the translation tier is enabled, so the default path keeps
	// no closure.
	OnTraceCompile func(startVA uint32, steps int)
}

// New creates a processor over the given memory with mapping disabled,
// in kernel mode on the interrupt stack at IPL 31, as after power-up.
func New(m *mem.Memory, variant Variant) *CPU {
	c := &CPU{
		Mem:     m,
		MMU:     mmu.New(m),
		Variant: variant,
	}
	c.MMU.ModifyFaultEnabled = func() bool {
		return (c.Variant == ModifiedVAX && c.psl.VM()) || c.modifyFaultOptIn
	}
	c.initDecodeCache()
	// Straddling decode entries cache a second translation, so TLB
	// invalidates must drop them (single-page entries revalidate their
	// translation on every execution and need no hook).
	c.MMU.OnTBIA = c.flushStraddleDecodes
	c.MMU.OnTBIS = func(uint32) { c.flushStraddleDecodes() }
	c.psl = vax.PSL(0).WithCur(vax.Kernel).WithIPL(31)
	c.onISP = true
	c.psl = vax.PSL(uint32(c.psl) | vax.PSLIS)
	return c
}

// PSL returns the current processor status longword.
func (c *CPU) PSL() vax.PSL { return c.psl }

// SetPSL replaces the PSL wholesale, handling any stack switch implied
// by a change of current mode or interrupt-stack bit.
func (c *CPU) SetPSL(p vax.PSL) {
	c.switchStack(p.Cur(), p.IS())
	c.psl = p
}

// Mode returns the current access mode.
func (c *CPU) Mode() vax.Mode { return c.psl.Cur() }

// PC returns the program counter.
func (c *CPU) PC() uint32 { return c.R[RegPC] }

// SetPC sets the program counter.
func (c *CPU) SetPC(pc uint32) { c.R[RegPC] = pc }

// SP returns the active stack pointer.
func (c *CPU) SP() uint32 { return c.R[RegSP] }

// SetSP sets the active stack pointer.
func (c *CPU) SetSP(sp uint32) { c.R[RegSP] = sp }

// StackFor returns the saved stack pointer of the given mode (the live
// value if that mode is current).
func (c *CPU) StackFor(m vax.Mode) uint32 {
	if !c.onISP && c.psl.Cur() == m {
		return c.R[RegSP]
	}
	return c.spSave[m]
}

// SetStackFor stores a stack pointer for the given mode.
func (c *CPU) SetStackFor(m vax.Mode, sp uint32) {
	if !c.onISP && c.psl.Cur() == m {
		c.R[RegSP] = sp
		return
	}
	c.spSave[m] = sp
}

// switchStack saves the live SP and loads the one for (mode, is).
func (c *CPU) switchStack(newMode vax.Mode, toISP bool) {
	if c.onISP {
		c.ISP = c.R[RegSP]
	} else {
		c.spSave[c.psl.Cur()] = c.R[RegSP]
	}
	if toISP {
		c.R[RegSP] = c.ISP
	} else {
		c.R[RegSP] = c.spSave[newMode]
	}
	c.onISP = toISP
}

// AddDevice attaches a device, registering any IPR or MMIO interfaces it
// implements.
func (c *CPU) AddDevice(d Device) {
	c.devices = append(c.devices, d)
	if h, ok := d.(IPRHandler); ok {
		c.iprs = append(c.iprs, h)
	}
	if h, ok := d.(MMIOHandler); ok {
		c.mmio = append(c.mmio, h)
	}
}

// RequestInterrupt posts an interrupt at the given device IPL with the
// given SCB vector. It stays pending until delivered or cleared.
func (c *CPU) RequestInterrupt(ipl uint8, vec vax.Vector) {
	if ipl < 32 {
		c.pendingIRQ[ipl] = uint32(vec)
		c.irqSummary |= 1 << ipl
		c.waiting = false
	}
}

// ClearInterrupt withdraws a pending interrupt at the given IPL.
func (c *CPU) ClearInterrupt(ipl uint8) {
	if ipl < 32 {
		c.pendingIRQ[ipl] = 0
		c.irqSummary &^= 1 << ipl
	}
}

// PendingAbove returns the highest pending interrupt level above ipl,
// considering both device interrupts and software interrupt requests,
// or 0 if none. The per-level vectors are summarized into one bitmask
// (irqSummary; SISR already is one), so the poll every Step performs is
// a mask and a leading-zero count instead of a 31-level scan.
func (c *CPU) PendingAbove(ipl uint8) uint8 {
	m := c.irqSummary | c.SISR&sisrMask
	m &^= (uint32(2) << ipl) - 1 // keep bits strictly above ipl
	if m == 0 {
		return 0
	}
	return uint8(31 - bits.LeadingZeros32(m))
}

// sisrMask bounds software interrupt requests to levels 1..15.
const sisrMask = (uint32(1)<<(vax.IPLSoftwareMax+1) - 1) &^ 1

// AddCycles charges extra cycles to the machine (used by the VMM for its
// emulation-path costs; see costs.go).
func (c *CPU) AddCycles(n uint64) { c.Cycles += n }

// Halt stops the processor.
func (c *CPU) Halt(r HaltReason) {
	c.Halted = true
	c.Reason = r
}

// ClearHalt makes a halted processor runnable again (console restart).
func (c *CPU) ClearHalt() {
	c.Halted = false
	c.Reason = NotHalted
}

// InVMMode reports whether the processor is executing a virtual machine
// (modified VAX with PSL<VM> set).
func (c *CPU) InVMMode() bool {
	return c.Variant == ModifiedVAX && c.psl.VM()
}

// StepVMInstruction lets the next VM instruction execute directly even
// under TrapAllInVM — the trap-all VMM's stand-in for emulating the
// trapped instruction.
func (c *CPU) StepVMInstruction() { c.trapAllSkipOnce = true }

// EnableModifyFault opts the machine into the base-architecture modify
// fault (paper footnote 9): legal writes to pages with PTE<M> clear
// fault through the SCB instead of setting the bit in hardware. The
// operating system must then maintain PTE<M> itself.
func (c *CPU) EnableModifyFault(on bool) { c.modifyFaultOptIn = on }

// ModifyFaultOptIn reports whether the base-architecture modify fault
// option is enabled.
func (c *CPU) ModifyFaultOptIn() bool { return c.modifyFaultOptIn }

// GuestPSL composes the VM's full PSL from the real PSL and VMPSL, the
// merge MOVPSL performs in microcode (Section 4.2.1): mode, IPL and
// interrupt-stack fields come from VMPSL, everything else (condition
// codes, trap enables) from the real PSL, and PSL<VM> is never visible.
func (c *CPU) GuestPSL() vax.PSL {
	merged := c.psl.WithCur(c.VMPSL.Cur()).WithPrv(c.VMPSL.Prv()).WithIPL(c.VMPSL.IPL())
	m := uint32(merged) &^ vax.PSLIS
	if c.VMPSL.IS() {
		m |= vax.PSLIS
	}
	return vax.PSL(m).WithVM(false)
}

func (c *CPU) String() string {
	return fmt.Sprintf("CPU{pc=%#x %s cycles=%d}", c.PC(), c.psl, c.Cycles)
}
