package cpu

// VAX character-string and queue instructions: MOVC3, CMPC3, INSQUE and
// REMQUE — the workhorses of VMS system code. The string instructions
// are executed atomically here (the real VAX makes them interruptible
// via PSL<FPD>; with the simulator's instruction-grained interrupts the
// distinction is unobservable to guests).

func (c *CPU) execMOVC3() error {
	lenOp, err := c.decodeOperand(2, false)
	if err != nil {
		return err
	}
	srcOp, err := c.decodeOperand(1, true)
	if err != nil {
		return err
	}
	dstOp, err := c.decodeOperand(1, true)
	if err != nil {
		return err
	}
	n, err := c.readOp(lenOp)
	if err != nil {
		return err
	}
	n &= 0xFFFF
	src, dst := srcOp.addr, dstOp.addr
	mode := c.psl.Cur()

	// Choose direction so overlapping moves behave like a memmove, as
	// the architecture requires.
	if dst <= src || dst >= src+n {
		for i := uint32(0); i < n; i++ {
			b, err := c.LoadVirt(src+i, 1, mode)
			if err != nil {
				return err
			}
			if err := c.StoreVirt(dst+i, 1, b, mode); err != nil {
				return err
			}
		}
	} else {
		for i := n; i > 0; i-- {
			b, err := c.LoadVirt(src+i-1, 1, mode)
			if err != nil {
				return err
			}
			if err := c.StoreVirt(dst+i-1, 1, b, mode); err != nil {
				return err
			}
		}
	}
	c.Cycles += uint64(n) / 4 // string move microcode cost
	// Architectural register results.
	c.R[0] = 0
	c.R[1] = src + n
	c.R[2] = 0
	c.R[3] = dst + n
	c.R[4] = 0
	c.R[5] = 0
	c.setNZVC(false, true, false, false)
	return nil
}

func (c *CPU) execCMPC3() error {
	lenOp, err := c.decodeOperand(2, false)
	if err != nil {
		return err
	}
	s1Op, err := c.decodeOperand(1, true)
	if err != nil {
		return err
	}
	s2Op, err := c.decodeOperand(1, true)
	if err != nil {
		return err
	}
	n, err := c.readOp(lenOp)
	if err != nil {
		return err
	}
	n &= 0xFFFF
	a1, a2 := s1Op.addr, s2Op.addr
	mode := c.psl.Cur()

	i := uint32(0)
	var b1, b2 uint32
	for ; i < n; i++ {
		if b1, err = c.LoadVirt(a1+i, 1, mode); err != nil {
			return err
		}
		if b2, err = c.LoadVirt(a2+i, 1, mode); err != nil {
			return err
		}
		if b1 != b2 {
			break
		}
	}
	c.Cycles += uint64(i) / 4
	c.R[0] = n - i
	c.R[1] = a1 + i
	c.R[2] = n - i
	c.R[3] = a2 + i
	if i == n {
		c.setNZVC(false, true, false, false)
	} else {
		s1, s2 := int32(int8(b1)), int32(int8(b2))
		c.setNZVC(s1 < s2, false, false, b1 < b2)
	}
	return nil
}

// Queue entries are pairs of longwords: forward link at offset 0,
// backward link at offset 4; links hold absolute addresses.

func (c *CPU) execINSQUE() error {
	entryOp, err := c.decodeOperand(1, true)
	if err != nil {
		return err
	}
	predOp, err := c.decodeOperand(1, true)
	if err != nil {
		return err
	}
	entry, pred := entryOp.addr, predOp.addr
	succ, err := c.LoadLong(pred)
	if err != nil {
		return err
	}
	// entry.flink = succ; entry.blink = pred
	if err := c.StoreLong(entry, succ); err != nil {
		return err
	}
	if err := c.StoreLong(entry+4, pred); err != nil {
		return err
	}
	// succ.blink = entry; pred.flink = entry
	if err := c.StoreLong(succ+4, entry); err != nil {
		return err
	}
	if err := c.StoreLong(pred, entry); err != nil {
		return err
	}
	// Z set when the entry is now the only one (its links are equal):
	// the queue was empty before the insertion.
	c.setNZVC(false, succ == pred, false, false)
	return nil
}

func (c *CPU) execREMQUE() error {
	entryOp, err := c.decodeOperand(1, true)
	if err != nil {
		return err
	}
	addrOp, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	entry := entryOp.addr
	flink, err := c.LoadLong(entry)
	if err != nil {
		return err
	}
	blink, err := c.LoadLong(entry + 4)
	if err != nil {
		return err
	}
	// V set when the queue was empty (nothing to remove).
	if flink == entry {
		c.setNZVC(false, false, true, true)
		return c.writeOp(addrOp, entry)
	}
	if err := c.StoreLong(blink, flink); err != nil {
		return err
	}
	if err := c.StoreLong(flink+4, blink); err != nil {
		return err
	}
	if err := c.writeOp(addrOp, entry); err != nil {
		return err
	}
	// Z set when the queue is now empty.
	c.setNZVC(false, flink == blink, false, false)
	return nil
}
