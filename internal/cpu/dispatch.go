package cpu

import "repro/internal/vax"

// The precomputed dispatch tables. Instruction dispatch used to be a
// ~70-case switch evaluated per execution; it is now a table lookup on
// the opcode byte(s), with each row carrying the handler, the operand
// metadata the shared handlers parameterize on, and the base cycle cost
// charged up front (so cold-decode and cached-replay execution charge
// identically).

// instrEntry is one row of a dispatch table. Rows are built once in
// init() and are read-only afterwards, so they are safe to share
// between processors and goroutines.
type instrEntry struct {
	fn      func(*CPU, *instrEntry) error
	op      uint16 // full opcode (0xFDxx for extended)
	cost    uint16 // cycles charged up front: CostBase plus op extras
	nOps    uint8  // operand-specifier count
	opSize  uint8  // primary operand access size in bytes
	opSize2 uint8  // secondary operand size (CVT destination)
}

// The one-byte opcode page is variant-independent: the sensitive
// instructions that behave differently on the modified VAX (Table 4 of
// the paper) test PSL<VM> at execution time, and the standard variant
// can never set that bit. The 0xFD extended page differs by variant:
// WAIT and PROBEVM are real instructions on the modified VAX and
// privileged-instruction faults on the standard one, so Variant selects
// between table rows instead of the handlers re-checking per execution.
var (
	dispatchOne   [256]*instrEntry
	dispatchStdFD [256]*instrEntry
	dispatchModFD [256]*instrEntry
)

// lookup returns the dispatch row for a (possibly extended) opcode, or
// nil for a reserved opcode.
func (c *CPU) lookup(op uint16) *instrEntry {
	if op < 0x100 {
		return dispatchOne[op]
	}
	if c.Variant == ModifiedVAX {
		return dispatchModFD[op&0xFF]
	}
	return dispatchStdFD[op&0xFF]
}

// reg installs a row for op in the variant-shared tables and returns it
// for further decoration.
func reg(op uint16, nOps, opSize int, cost uint16, fn func(*CPU, *instrEntry) error) *instrEntry {
	e := &instrEntry{fn: fn, op: op, cost: cost, nOps: uint8(nOps), opSize: uint8(opSize)}
	if op >= 0xFD00 {
		dispatchStdFD[op&0xFF] = e
		dispatchModFD[op&0xFF] = e
	} else {
		dispatchOne[op&0xFF] = e
	}
	return e
}

// regVariantFD installs an extended opcode that exists only on the
// modified VAX; the standard-VAX row takes the privileged-instruction
// fault (Table 4), preserving the PrivTraps count.
func regVariantFD(op uint16, nOps, opSize int, modFn func(*CPU, *instrEntry) error) {
	dispatchModFD[op&0xFF] = &instrEntry{
		fn: modFn, op: op, cost: CostBase, nOps: uint8(nOps), opSize: uint8(opSize),
	}
	dispatchStdFD[op&0xFF] = &instrEntry{
		fn:   func(c *CPU, _ *instrEntry) error { return c.privFault() },
		op:   op,
		cost: CostBase,
	}
}

func regBranch(op uint16, cond func(*CPU) bool) {
	reg(op, 0, 1, CostBase, func(c *CPU, _ *instrEntry) error {
		return c.branchIf(cond(c))
	})
}

func regBinop(op2, op3 uint16, extra uint16, divide bool, f func(a, b uint32) (uint32, bool, bool)) {
	h := func(c *CPU, e *instrEntry) error {
		return c.execBinop(e.nOps == 3, divide, f)
	}
	reg(op2, 2, 4, CostBase+extra, h)
	reg(op3, 3, 4, CostBase+extra, h)
}

func regCVT(op uint16, srcSize, dstSize int) {
	e := reg(op, 2, srcSize, CostBase, func(c *CPU, e *instrEntry) error {
		return c.execCVT(e)
	})
	e.opSize2 = uint8(dstSize)
}

func init() {
	// --- system control, call and specialized instructions ---
	reg(vax.OpNOP, 0, 0, CostBase, func(*CPU, *instrEntry) error { return nil })
	reg(vax.OpHALT, 0, 0, CostBase, func(c *CPU, _ *instrEntry) error { return c.execHALT() })
	reg(vax.OpREI, 0, 0, CostBase, func(c *CPU, _ *instrEntry) error { return c.execREI() })
	reg(vax.OpBPT, 0, 0, CostBase, func(c *CPU, _ *instrEntry) error {
		return c.scratch.Set(vax.VecBreakpoint, vax.Trap)
	})
	reg(vax.OpXFC, 0, 0, CostBase, func(c *CPU, _ *instrEntry) error {
		return c.scratch.Set(vax.VecCustReserved, vax.Fault)
	})
	reg(vax.OpLDPCTX, 0, 0, CostBase, func(c *CPU, _ *instrEntry) error { return c.execLDPCTX() })
	reg(vax.OpSVPCTX, 0, 0, CostBase, func(c *CPU, _ *instrEntry) error { return c.execSVPCTX() })
	reg(vax.OpCALLS, 2, 4, CostBase, func(c *CPU, _ *instrEntry) error { return c.execCALLS() })
	reg(vax.OpRET, 0, 0, CostBase, func(c *CPU, _ *instrEntry) error { return c.execRET() })
	reg(vax.OpMOVC3, 3, 2, CostBase, func(c *CPU, _ *instrEntry) error { return c.execMOVC3() })
	reg(vax.OpCMPC3, 3, 2, CostBase, func(c *CPU, _ *instrEntry) error { return c.execCMPC3() })
	reg(vax.OpINSQUE, 2, 1, CostBase, func(c *CPU, _ *instrEntry) error { return c.execINSQUE() })
	reg(vax.OpREMQUE, 2, 4, CostBase, func(c *CPU, _ *instrEntry) error { return c.execREMQUE() })
	reg(vax.OpMOVPSL, 1, 4, CostBase, func(c *CPU, _ *instrEntry) error { return c.execMOVPSL() })
	reg(vax.OpMTPR, 2, 4, CostBase, func(c *CPU, _ *instrEntry) error { return c.execMTPR() })
	reg(vax.OpMFPR, 2, 4, CostBase, func(c *CPU, _ *instrEntry) error { return c.execMFPR() })
	for _, op := range []uint16{vax.OpPROBER, vax.OpPROBEW} {
		reg(op, 3, 1, CostBase, func(c *CPU, e *instrEntry) error { return c.execPROBE(e.op) })
	}
	for _, op := range []uint16{vax.OpCHMK, vax.OpCHME, vax.OpCHMS, vax.OpCHMU} {
		reg(op, 1, 2, CostBase, func(c *CPU, e *instrEntry) error { return c.execCHM(e.op) })
	}

	// Extended (0xFD-prefixed) page: modified-VAX-only instructions.
	regVariantFD(vax.OpWAIT, 0, 0, func(c *CPU, _ *instrEntry) error { return c.execWAIT() })
	for _, op := range []uint16{vax.OpPROBEVMR, vax.OpPROBEVMW} {
		regVariantFD(op, 2, 1, func(c *CPU, e *instrEntry) error { return c.execPROBEVM(e.op) })
	}

	// --- moves and simple unary operations ---
	for _, m := range []struct {
		op   uint16
		size int
	}{{vax.OpMOVL, 4}, {vax.OpMOVW, 2}, {vax.OpMOVB, 1}} {
		reg(m.op, 2, m.size, CostBase, func(c *CPU, e *instrEntry) error {
			return c.execMove(int(e.opSize))
		})
	}
	reg(vax.OpMOVZBL, 2, 1, CostBase, func(c *CPU, e *instrEntry) error {
		return c.execMovz(int(e.opSize))
	})
	reg(vax.OpMOVZWL, 2, 2, CostBase, func(c *CPU, e *instrEntry) error {
		return c.execMovz(int(e.opSize))
	})
	for _, m := range []struct {
		op   uint16
		size int
	}{{vax.OpCLRL, 4}, {vax.OpCLRW, 2}, {vax.OpCLRB, 1}} {
		reg(m.op, 1, m.size, CostBase, func(c *CPU, e *instrEntry) error {
			return c.execClr(int(e.opSize))
		})
	}
	for _, m := range []struct {
		op   uint16
		size int
	}{{vax.OpTSTL, 4}, {vax.OpTSTW, 2}, {vax.OpTSTB, 1}} {
		reg(m.op, 1, m.size, CostBase, func(c *CPU, e *instrEntry) error {
			return c.execTst(int(e.opSize))
		})
	}
	reg(vax.OpMNEGL, 2, 4, CostBase, func(c *CPU, _ *instrEntry) error { return c.execMNEGL() })
	reg(vax.OpMCOMB, 2, 1, CostBase, func(c *CPU, _ *instrEntry) error { return c.execMCOMB() })
	reg(vax.OpINCL, 1, 4, CostBase, func(c *CPU, e *instrEntry) error {
		return c.execIncDec(e.op == vax.OpINCL)
	})
	reg(vax.OpDECL, 1, 4, CostBase, func(c *CPU, e *instrEntry) error {
		return c.execIncDec(e.op == vax.OpINCL)
	})
	reg(vax.OpPUSHL, 1, 4, CostBase, func(c *CPU, _ *instrEntry) error { return c.execPUSHL() })
	// MOVAB shares MOVAL's longword address context (see execMoveAddr).
	reg(vax.OpMOVAL, 2, 4, CostBase, func(c *CPU, _ *instrEntry) error { return c.execMoveAddr() })
	reg(vax.OpMOVAB, 2, 4, CostBase, func(c *CPU, _ *instrEntry) error { return c.execMoveAddr() })

	// --- comparison and bit test ---
	for _, m := range []struct {
		op   uint16
		size int
	}{{vax.OpCMPL, 4}, {vax.OpCMPW, 2}, {vax.OpCMPB, 1}} {
		reg(m.op, 2, m.size, CostBase, func(c *CPU, e *instrEntry) error {
			return c.execCompare(int(e.opSize))
		})
	}
	reg(vax.OpBITL, 2, 4, CostBase, func(c *CPU, _ *instrEntry) error { return c.execBITL() })

	// --- longword arithmetic and logic ---
	regBinop(vax.OpADDL2, vax.OpADDL3, 0, false, func(a, b uint32) (uint32, bool, bool) {
		r := b + a
		ovf := (a^r)&(b^r)&0x80000000 != 0
		return r, ovf, r < a
	})
	regBinop(vax.OpSUBL2, vax.OpSUBL3, 0, false, func(a, b uint32) (uint32, bool, bool) {
		// a is the subtrahend: result = b - a.
		r := b - a
		ovf := (a^b)&(b^r)&0x80000000 != 0
		return r, ovf, b < a
	})
	regBinop(vax.OpMULL2, vax.OpMULL3, CostMul, false, func(a, b uint32) (uint32, bool, bool) {
		full := int64(int32(a)) * int64(int32(b))
		r := uint32(full)
		return r, full != int64(int32(r)), false
	})
	regBinop(vax.OpDIVL2, vax.OpDIVL3, CostDiv, true, func(a, b uint32) (uint32, bool, bool) {
		// a is the divisor: result = b / a. Zero divisor handled by the
		// caller via divide check.
		if a == 0 {
			return 0, true, false
		}
		if b == 0x80000000 && a == 0xFFFFFFFF {
			return b, true, false
		}
		return uint32(int32(b) / int32(a)), false, false
	})
	regBinop(vax.OpBISL2, vax.OpBISL3, 0, false, func(a, b uint32) (uint32, bool, bool) {
		return b | a, false, false
	})
	regBinop(vax.OpBICL2, vax.OpBICL3, 0, false, func(a, b uint32) (uint32, bool, bool) {
		return b &^ a, false, false
	})
	regBinop(vax.OpXORL2, vax.OpXORL3, 0, false, func(a, b uint32) (uint32, bool, bool) {
		return b ^ a, false, false
	})
	reg(vax.OpASHL, 3, 4, CostBase, func(c *CPU, _ *instrEntry) error { return c.execASHL() })

	// --- integer convert ---
	regCVT(vax.OpCVTBL, 1, 4)
	regCVT(vax.OpCVTBW, 1, 2)
	regCVT(vax.OpCVTWL, 2, 4)
	regCVT(vax.OpCVTWB, 2, 1)
	regCVT(vax.OpCVTLB, 4, 1)
	regCVT(vax.OpCVTLW, 4, 2)

	// --- control flow ---
	regBranch(vax.OpBRB, func(*CPU) bool { return true })
	regBranch(vax.OpBNEQ, func(c *CPU) bool { return !c.cc(vax.PSLZ) })
	regBranch(vax.OpBEQL, func(c *CPU) bool { return c.cc(vax.PSLZ) })
	regBranch(vax.OpBGTR, func(c *CPU) bool { return !c.cc(vax.PSLZ) && !c.cc(vax.PSLN) })
	regBranch(vax.OpBLEQ, func(c *CPU) bool { return c.cc(vax.PSLZ) || c.cc(vax.PSLN) })
	regBranch(vax.OpBGEQ, func(c *CPU) bool { return !c.cc(vax.PSLN) })
	regBranch(vax.OpBLSS, func(c *CPU) bool { return c.cc(vax.PSLN) })
	regBranch(vax.OpBGTRU, func(c *CPU) bool { return !c.cc(vax.PSLC) && !c.cc(vax.PSLZ) })
	regBranch(vax.OpBLEQU, func(c *CPU) bool { return c.cc(vax.PSLC) || c.cc(vax.PSLZ) })
	regBranch(vax.OpBVC, func(c *CPU) bool { return !c.cc(vax.PSLV) })
	regBranch(vax.OpBVS, func(c *CPU) bool { return c.cc(vax.PSLV) })
	regBranch(vax.OpBCC, func(c *CPU) bool { return !c.cc(vax.PSLC) })
	regBranch(vax.OpBCS, func(c *CPU) bool { return c.cc(vax.PSLC) })
	reg(vax.OpBRW, 0, 2, CostBase, func(c *CPU, _ *instrEntry) error { return c.execBRW() })
	reg(vax.OpBLBS, 1, 4, CostBase, func(c *CPU, e *instrEntry) error {
		return c.execBLB(e.op == vax.OpBLBS)
	})
	reg(vax.OpBLBC, 1, 4, CostBase, func(c *CPU, e *instrEntry) error {
		return c.execBLB(e.op == vax.OpBLBS)
	})
	reg(vax.OpBBS, 2, 4, CostBase, func(c *CPU, e *instrEntry) error {
		return c.execBB(e.op == vax.OpBBS)
	})
	reg(vax.OpBBC, 2, 4, CostBase, func(c *CPU, e *instrEntry) error {
		return c.execBB(e.op == vax.OpBBS)
	})
	reg(vax.OpJMP, 1, 4, CostBase, func(c *CPU, _ *instrEntry) error { return c.execJMP() })
	reg(vax.OpBSBB, 0, 1, CostBase, func(c *CPU, _ *instrEntry) error { return c.execBSBB() })
	reg(vax.OpBSBW, 0, 2, CostBase, func(c *CPU, _ *instrEntry) error { return c.execBSBW() })
	reg(vax.OpJSB, 1, 4, CostBase, func(c *CPU, _ *instrEntry) error { return c.execJSB() })
	reg(vax.OpRSB, 0, 0, CostBase, func(c *CPU, _ *instrEntry) error { return c.execRSB() })
	reg(vax.OpACBL, 3, 4, CostBase, func(c *CPU, _ *instrEntry) error { return c.execACBL() })
	reg(vax.OpAOBLSS, 2, 4, CostBase, func(c *CPU, e *instrEntry) error {
		return c.execAOB(e.op == vax.OpAOBLEQ)
	})
	reg(vax.OpAOBLEQ, 2, 4, CostBase, func(c *CPU, e *instrEntry) error {
		return c.execAOB(e.op == vax.OpAOBLEQ)
	})
	reg(vax.OpSOBGEQ, 1, 4, CostBase, func(c *CPU, e *instrEntry) error {
		return c.execSOB(e.op == vax.OpSOBGTR)
	})
	reg(vax.OpSOBGTR, 1, 4, CostBase, func(c *CPU, e *instrEntry) error {
		return c.execSOB(e.op == vax.OpSOBGTR)
	})
}
