package cpu

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
	"repro/internal/vax"
)

// Robustness: no byte stream, executed in any mode on either variant,
// may panic the interpreter or corrupt the machine invariants. Random
// programs mostly fault immediately; the point is that every path ends
// in an architectural response (fault, halt, or progress), never a Go
// panic or a privilege violation.

func TestRandomCodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	const trials = 300

	for trial := 0; trial < trials; trial++ {
		code := make([]byte, 64)
		rng.Read(code)

		for _, variant := range []Variant{StandardVAX, ModifiedVAX} {
			m := mem.New(64 * 1024)
			if err := m.StoreBytes(0x400, code); err != nil {
				t.Fatal(err)
			}
			c := New(m, variant)
			c.SCBB = 0 // SCB page is all zeros: any dispatch double-faults
			startMode := vax.Mode(rng.Intn(4))
			c.SetStackFor(startMode, 0x8000)
			c.SetPSL(vax.PSL(0).WithCur(startMode).WithPrv(startMode))
			c.SetPC(0x400)

			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("trial %d variant %s mode %s: panic %v on code %x",
							trial, variant, startMode, r, code)
					}
				}()
				c.Run(200)
			}()

			// Machine invariants survive arbitrary code.
			if c.PSL().Cur() == vax.Kernel && startMode != vax.Kernel && !c.Halted {
				// Reaching kernel mode is only legal through the SCB,
				// whose vectors are zero here — so the machine must have
				// halted (double error) if it ever dispatched.
				t.Fatalf("trial %d: random %s-mode code reached kernel mode, code %x",
					trial, startMode, code)
			}
			if c.PSL().VM() && variant == StandardVAX {
				t.Fatalf("trial %d: standard VAX set PSL<VM>", trial)
			}
		}
	}
}

func TestRandomCodeInVMNeverEscapes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const trials = 200

	for trial := 0; trial < trials; trial++ {
		code := make([]byte, 48)
		rng.Read(code)
		m := mem.New(256 * 1024)
		if err := m.StoreBytes(16*vax.PageSize, code); err != nil {
			t.Fatal(err)
		}
		c := New(m, ModifiedVAX)
		for i := uint32(0); i < 32; i++ {
			pte := vax.NewPTE(true, vax.ProtUW, true, 16+i)
			if err := m.StoreLong(0x1000+4*i, uint32(pte)); err != nil {
				t.Fatal(err)
			}
		}
		c.MMU.SBR = 0x1000
		c.MMU.SLR = 32
		c.MMU.Enabled = true
		sink := &recordSink{onTrap: func(c *CPU, e *vax.Exception) bool {
			// Stand-in VMM: consume everything and halt, like a VMM
			// terminating a misbehaving VM.
			c.Halt(HaltInstruction)
			return true
		}}
		c.Sink = sink
		c.SetStackFor(vax.Executive, vax.SystemBase+16*vax.PageSize)
		c.SetPSL(vax.PSL(0).WithCur(vax.Executive).WithPrv(vax.Executive).WithVM(true))
		c.VMPSL = vax.PSL(0).WithCur(vax.Kernel).WithPrv(vax.Kernel)
		c.SetPC(vax.SystemBase)

		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic %v on code %x", trial, r, code)
				}
			}()
			c.Run(200)
		}()

		// The VM must never reach real kernel mode on its own: every
		// event lands in the sink, never past it.
		if c.PSL().Cur() == vax.Kernel && !c.Halted {
			t.Fatalf("trial %d: VM code reached real kernel mode, code %x", trial, code)
		}
	}
}
