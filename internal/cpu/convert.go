package cpu

import "repro/internal/vax"

// Integer convert and add-compare-branch instructions.

// execCVT implements the integer convert family: sign-extend on
// widening, truncate with overflow detection on narrowing. The source
// and destination sizes come from the dispatch entry (opSize/opSize2).
func (c *CPU) execCVT(e *instrEntry) error {
	srcSize, dstSize := int(e.opSize), int(e.opSize2)
	src, err := c.decodeOperand(srcSize, false)
	if err != nil {
		return err
	}
	dst, err := c.decodeOperand(dstSize, false)
	if err != nil {
		return err
	}
	v, err := c.readOp(src)
	if err != nil {
		return err
	}
	s := signExt(v, srcSize)
	r := uint32(s)
	ovf := false
	switch dstSize {
	case 1:
		ovf = s < -128 || s > 127
	case 2:
		ovf = s < -32768 || s > 32767
	}
	if err := c.writeOp(dst, r); err != nil {
		return err
	}
	c.setNZVC(signExt(r, dstSize) < 0, signExt(r, dstSize) == 0, ovf, false)
	return nil
}

// execACBL implements add-compare-branch: index += add; branch (word
// displacement) while the index has not passed limit, in the direction
// of add's sign.
func (c *CPU) execACBL() error {
	limitOp, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	addOp, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	idxOp, err := c.decodeOperand(4, false)
	if err != nil {
		return err
	}
	limit, err := c.readOp(limitOp)
	if err != nil {
		return err
	}
	add, err := c.readOp(addOp)
	if err != nil {
		return err
	}
	idx, err := c.readOp(idxOp)
	if err != nil {
		return err
	}
	r := idx + add
	if err := c.writeOp(idxOp, r); err != nil {
		return err
	}
	ovf := (add^r)&(idx^r)&0x80000000 != 0
	c.setNZVC(int32(r) < 0, r == 0, ovf, c.cc(vax.PSLC))
	d, err := c.fetchStream16()
	if err != nil {
		return err
	}
	taken := int32(r) <= int32(limit)
	if int32(add) < 0 {
		taken = int32(r) >= int32(limit)
	}
	if taken {
		c.R[RegPC] += uint32(int32(int16(d)))
	}
	return nil
}
