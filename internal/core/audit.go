package core

import (
	"fmt"
	"sort"

	"repro/internal/trace"
	"repro/internal/vax"
)

// The audit facility. The paper's VMM was a security kernel whose
// auditing subsystem is described in the companion paper it cites
// (Seiden & Melanson, "The auditing facility for a VMM security
// kernel", 1990). This implementation records security-relevant VMM
// events — VM lifecycle, privilege transitions into the VMM, reflected
// faults and VM halts — in a bounded ring buffer. The rings themselves
// are the generic trace.Last (retain the most recent N, overwrite the
// oldest) and trace.SPSC (per-VM lock-free producer ring for parallel
// runs), shared with the flight recorder.

// AuditKind classifies audit events.
type AuditKind uint8

const (
	AuditVMCreated AuditKind = iota
	AuditVMHalted
	AuditVMTrap        // sensitive instruction emulated
	AuditPrivFault     // privilege violation inside a VM
	AuditReflected     // exception forwarded to a VMOS
	AuditWorldSwitch   // processor moved between VMs
	AuditNonexistentVM // reference to nonexistent VM-physical memory

	AuditMachineCheck    // virtual machine check delivered to a VM
	AuditDiskRetry       // transient disk error retried by the VMM
	AuditWatchdogTrip    // per-VM watchdog halted a VM
	AuditSelfCheckRepair // shadow PTE repaired by the self-check pass
	AuditFaultInjected   // fault injector applied a scheduled event
	AuditUnknownKCALL    // KCALL with an unrecognized function code

	AuditCheckpoint        // checkpoint generation taken
	AuditVMRecovered       // supervisor restored a VM from a checkpoint
	AuditRecoveryFallback  // a generation failed validation; older one tried
	AuditRecoveryEscalated // recovery abandoned: VM halted permanently

	AuditVMDestroyed // halted VM unregistered, pages recycled
)

func (k AuditKind) String() string {
	switch k {
	case AuditVMCreated:
		return "vm-created"
	case AuditVMHalted:
		return "vm-halted"
	case AuditVMTrap:
		return "vm-trap"
	case AuditPrivFault:
		return "priv-fault"
	case AuditReflected:
		return "reflected"
	case AuditWorldSwitch:
		return "world-switch"
	case AuditNonexistentVM:
		return "nonexistent-memory"
	case AuditMachineCheck:
		return "machine-check"
	case AuditDiskRetry:
		return "disk-retry"
	case AuditWatchdogTrip:
		return "watchdog-trip"
	case AuditSelfCheckRepair:
		return "selfcheck-repair"
	case AuditFaultInjected:
		return "fault-injected"
	case AuditUnknownKCALL:
		return "unknown-kcall"
	case AuditCheckpoint:
		return "checkpoint"
	case AuditVMRecovered:
		return "vm-recovered"
	case AuditRecoveryFallback:
		return "recovery-fallback"
	case AuditRecoveryEscalated:
		return "recovery-escalated"
	case AuditVMDestroyed:
		return "vm-destroyed"
	}
	return fmt.Sprintf("audit(%d)", uint8(k))
}

// AuditEvent is one recorded event.
type AuditEvent struct {
	// Seq is the global order. Root-recorded events get it at record
	// time (the root is single-threaded); events recorded on parallel
	// shards carry Seq 0 in their per-VM rings and are sequenced at the
	// merge, ordered by cycle stamp — no shard touches a shared counter
	// per event.
	Seq    uint64
	Cycle  uint64
	VM     int // VM ID, -1 for machine-level events
	Kind   AuditKind
	Detail string
	PC     uint32 // guest PC at the time of the event
}

func (e AuditEvent) String() string {
	return fmt.Sprintf("[%d] vm%d %s pc=%#x %s", e.Cycle, e.VM, e.Kind, e.PC, e.Detail)
}

// EnableAudit turns on auditing with a ring buffer of n events.
func (k *VMM) EnableAudit(n int) {
	if n <= 0 {
		n = 256
	}
	k.audit = trace.NewLast[AuditEvent](n)
}

// AuditTrail returns the recorded events, oldest first in global
// (sequence) order. It first drains every VM's parallel-run ring into
// the main log — shard events carry no sequence of their own, so the
// drain reconstructs the global order from their cycle stamps (VM ID
// breaking ties) and assigns sequence numbers where the root's serial
// counter left off. Call it from the root monitor while no parallel
// run is mutating the main log (the per-VM rings themselves tolerate a
// concurrent producer).
func (k *VMM) AuditTrail() []AuditEvent {
	if k.audit == nil {
		return nil
	}
	var drained []AuditEvent
	for _, vm := range k.vms {
		if vm.ring != nil {
			vm.ring.Drain(func(e AuditEvent) {
				drained = append(drained, e)
			})
		}
	}
	if len(drained) > 0 {
		sort.SliceStable(drained, func(i, j int) bool {
			if drained[i].Cycle != drained[j].Cycle {
				return drained[i].Cycle < drained[j].Cycle
			}
			return drained[i].VM < drained[j].VM
		})
		for i := range drained {
			k.auditNext++
			drained[i].Seq = k.auditNext
			k.audit.Append(drained[i])
		}
	}
	out := k.audit.Snapshot()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// AuditDropped reports how many events were dropped by full per-VM
// rings during parallel runs (audit loss is accounted, never silent).
func (k *VMM) AuditDropped() uint64 {
	var n uint64
	for _, vm := range k.vms {
		if vm.ring != nil {
			n += vm.ring.Dropped()
		}
	}
	return n
}

// record appends an event if auditing is enabled. On a parallel-run
// shard the event goes to the VM's own lock-free ring stamped with the
// shard's cycle count only (sequencing happens at the merge, so the
// per-event path shares nothing); the root logs directly into the
// shared ring (single-threaded by construction) and sequences as it
// goes.
func (k *VMM) record(vm *VM, kind AuditKind, detail string) {
	if k.audit == nil {
		return
	}
	id := -1
	if vm != nil {
		id = vm.ID
	}
	e := AuditEvent{Cycle: k.CPU.Cycles,
		VM: id, Kind: kind, Detail: detail, PC: k.CPU.PC()}
	if k.parent != nil {
		if vm != nil && vm.ring != nil {
			vm.ring.Push(e)
		}
		return
	}
	k.auditNext++
	e.Seq = k.auditNext
	k.audit.Append(e)
}

// auditVMTrap records a sensitive-instruction emulation.
func (k *VMM) auditVMTrap(vm *VM, info *vax.VMTrapInfo) {
	if k.audit == nil || info == nil {
		return
	}
	k.record(vm, AuditVMTrap, fmt.Sprintf("opcode %#x", info.Opcode))
}
