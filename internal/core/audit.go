package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/vax"
)

// The audit facility. The paper's VMM was a security kernel whose
// auditing subsystem is described in the companion paper it cites
// (Seiden & Melanson, "The auditing facility for a VMM security
// kernel", 1990). This implementation records security-relevant VMM
// events — VM lifecycle, privilege transitions into the VMM, reflected
// faults and VM halts — in a bounded ring buffer.

// AuditKind classifies audit events.
type AuditKind uint8

const (
	AuditVMCreated AuditKind = iota
	AuditVMHalted
	AuditVMTrap        // sensitive instruction emulated
	AuditPrivFault     // privilege violation inside a VM
	AuditReflected     // exception forwarded to a VMOS
	AuditWorldSwitch   // processor moved between VMs
	AuditNonexistentVM // reference to nonexistent VM-physical memory

	AuditMachineCheck    // virtual machine check delivered to a VM
	AuditDiskRetry       // transient disk error retried by the VMM
	AuditWatchdogTrip    // per-VM watchdog halted a VM
	AuditSelfCheckRepair // shadow PTE repaired by the self-check pass
	AuditFaultInjected   // fault injector applied a scheduled event
	AuditUnknownKCALL    // KCALL with an unrecognized function code
)

func (k AuditKind) String() string {
	switch k {
	case AuditVMCreated:
		return "vm-created"
	case AuditVMHalted:
		return "vm-halted"
	case AuditVMTrap:
		return "vm-trap"
	case AuditPrivFault:
		return "priv-fault"
	case AuditReflected:
		return "reflected"
	case AuditWorldSwitch:
		return "world-switch"
	case AuditNonexistentVM:
		return "nonexistent-memory"
	case AuditMachineCheck:
		return "machine-check"
	case AuditDiskRetry:
		return "disk-retry"
	case AuditWatchdogTrip:
		return "watchdog-trip"
	case AuditSelfCheckRepair:
		return "selfcheck-repair"
	case AuditFaultInjected:
		return "fault-injected"
	case AuditUnknownKCALL:
		return "unknown-kcall"
	}
	return fmt.Sprintf("audit(%d)", uint8(k))
}

// AuditEvent is one recorded event.
type AuditEvent struct {
	Seq    uint64 // global order across engines (atomic sequence)
	Cycle  uint64
	VM     int // VM ID, -1 for machine-level events
	Kind   AuditKind
	Detail string
	PC     uint32 // guest PC at the time of the event
}

func (e AuditEvent) String() string {
	return fmt.Sprintf("[%d] vm%d %s pc=%#x %s", e.Cycle, e.VM, e.Kind, e.PC, e.Detail)
}

type auditLog struct {
	events []AuditEvent
	next   int
	filled bool
}

func (a *auditLog) append(e AuditEvent) {
	a.events[a.next] = e
	a.next++
	if a.next == len(a.events) {
		a.next = 0
		a.filled = true
	}
}

func (a *auditLog) snapshot() []AuditEvent {
	if !a.filled {
		out := make([]AuditEvent, a.next)
		copy(out, a.events[:a.next])
		return out
	}
	out := make([]AuditEvent, 0, len(a.events))
	out = append(out, a.events[a.next:]...)
	out = append(out, a.events[:a.next]...)
	return out
}

// auditRing is a bounded lock-free single-producer ring: the goroutine
// executing a VM pushes, and the root monitor drains. The producer
// drops (and counts) events rather than overwrite a slot the drainer
// has not consumed, so push and drain never touch the same entry.
type auditRing struct {
	buf     []AuditEvent
	head    atomic.Uint64 // next write, producer-owned
	tail    atomic.Uint64 // next read, drainer-owned
	dropped atomic.Uint64
}

func newAuditRing(n int) *auditRing { return &auditRing{buf: make([]AuditEvent, n)} }

func (r *auditRing) push(e AuditEvent) {
	h, t := r.head.Load(), r.tail.Load()
	if h-t == uint64(len(r.buf)) {
		r.dropped.Add(1)
		return
	}
	r.buf[h%uint64(len(r.buf))] = e
	r.head.Store(h + 1)
}

func (r *auditRing) drain(f func(AuditEvent)) {
	t, h := r.tail.Load(), r.head.Load()
	for ; t < h; t++ {
		f(r.buf[t%uint64(len(r.buf))])
	}
	r.tail.Store(t)
}

// EnableAudit turns on auditing with a ring buffer of n events.
func (k *VMM) EnableAudit(n int) {
	if n <= 0 {
		n = 256
	}
	k.audit = &auditLog{events: make([]AuditEvent, n)}
}

// AuditTrail returns the recorded events, oldest first in global
// (sequence) order. It first drains every VM's parallel-run ring into
// the main log, so events recorded by shards appear alongside serial
// ones. Call it from the root monitor while no parallel run is
// mutating the main log (the per-VM rings themselves tolerate a
// concurrent producer).
func (k *VMM) AuditTrail() []AuditEvent {
	if k.audit == nil {
		return nil
	}
	for _, vm := range k.vms {
		if vm.ring != nil {
			vm.ring.drain(k.audit.append)
		}
	}
	out := k.audit.snapshot()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// AuditDropped reports how many events were dropped by full per-VM
// rings during parallel runs (audit loss is accounted, never silent).
func (k *VMM) AuditDropped() uint64 {
	var n uint64
	for _, vm := range k.vms {
		if vm.ring != nil {
			n += vm.ring.dropped.Load()
		}
	}
	return n
}

// record appends an event if auditing is enabled. On a parallel-run
// shard the event goes to the VM's own lock-free ring; the root logs
// directly into the shared ring (single-threaded by construction).
func (k *VMM) record(vm *VM, kind AuditKind, detail string) {
	if k.audit == nil {
		return
	}
	id := -1
	if vm != nil {
		id = vm.ID
	}
	e := AuditEvent{Seq: k.shared.auditSeq.Add(1), Cycle: k.CPU.Cycles,
		VM: id, Kind: kind, Detail: detail, PC: k.CPU.PC()}
	if k.parent != nil {
		if vm != nil && vm.ring != nil {
			vm.ring.push(e)
		}
		return
	}
	k.audit.append(e)
}

// auditVMTrap records a sensitive-instruction emulation.
func (k *VMM) auditVMTrap(vm *VM, info *vax.VMTrapInfo) {
	if k.audit == nil || info == nil {
		return
	}
	k.record(vm, AuditVMTrap, fmt.Sprintf("opcode %#x", info.Opcode))
}
