package core

import (
	"fmt"

	"repro/internal/vax"
)

// The audit facility. The paper's VMM was a security kernel whose
// auditing subsystem is described in the companion paper it cites
// (Seiden & Melanson, "The auditing facility for a VMM security
// kernel", 1990). This implementation records security-relevant VMM
// events — VM lifecycle, privilege transitions into the VMM, reflected
// faults and VM halts — in a bounded ring buffer.

// AuditKind classifies audit events.
type AuditKind uint8

const (
	AuditVMCreated AuditKind = iota
	AuditVMHalted
	AuditVMTrap        // sensitive instruction emulated
	AuditPrivFault     // privilege violation inside a VM
	AuditReflected     // exception forwarded to a VMOS
	AuditWorldSwitch   // processor moved between VMs
	AuditNonexistentVM // reference to nonexistent VM-physical memory

	AuditMachineCheck    // virtual machine check delivered to a VM
	AuditDiskRetry       // transient disk error retried by the VMM
	AuditWatchdogTrip    // per-VM watchdog halted a VM
	AuditSelfCheckRepair // shadow PTE repaired by the self-check pass
	AuditFaultInjected   // fault injector applied a scheduled event
	AuditUnknownKCALL    // KCALL with an unrecognized function code
)

func (k AuditKind) String() string {
	switch k {
	case AuditVMCreated:
		return "vm-created"
	case AuditVMHalted:
		return "vm-halted"
	case AuditVMTrap:
		return "vm-trap"
	case AuditPrivFault:
		return "priv-fault"
	case AuditReflected:
		return "reflected"
	case AuditWorldSwitch:
		return "world-switch"
	case AuditNonexistentVM:
		return "nonexistent-memory"
	case AuditMachineCheck:
		return "machine-check"
	case AuditDiskRetry:
		return "disk-retry"
	case AuditWatchdogTrip:
		return "watchdog-trip"
	case AuditSelfCheckRepair:
		return "selfcheck-repair"
	case AuditFaultInjected:
		return "fault-injected"
	case AuditUnknownKCALL:
		return "unknown-kcall"
	}
	return fmt.Sprintf("audit(%d)", uint8(k))
}

// AuditEvent is one recorded event.
type AuditEvent struct {
	Cycle  uint64
	VM     int // VM ID, -1 for machine-level events
	Kind   AuditKind
	Detail string
	PC     uint32 // guest PC at the time of the event
}

func (e AuditEvent) String() string {
	return fmt.Sprintf("[%d] vm%d %s pc=%#x %s", e.Cycle, e.VM, e.Kind, e.PC, e.Detail)
}

type auditLog struct {
	events []AuditEvent
	next   int
	filled bool
}

// EnableAudit turns on auditing with a ring buffer of n events.
func (k *VMM) EnableAudit(n int) {
	if n <= 0 {
		n = 256
	}
	k.audit = &auditLog{events: make([]AuditEvent, n)}
}

// AuditTrail returns the recorded events, oldest first.
func (k *VMM) AuditTrail() []AuditEvent {
	if k.audit == nil {
		return nil
	}
	a := k.audit
	if !a.filled {
		out := make([]AuditEvent, a.next)
		copy(out, a.events[:a.next])
		return out
	}
	out := make([]AuditEvent, 0, len(a.events))
	out = append(out, a.events[a.next:]...)
	out = append(out, a.events[:a.next]...)
	return out
}

// record appends an event if auditing is enabled.
func (k *VMM) record(vm *VM, kind AuditKind, detail string) {
	if k.audit == nil {
		return
	}
	id := -1
	if vm != nil {
		id = vm.ID
	}
	e := AuditEvent{Cycle: k.CPU.Cycles, VM: id, Kind: kind, Detail: detail, PC: k.CPU.PC()}
	a := k.audit
	a.events[a.next] = e
	a.next++
	if a.next == len(a.events) {
		a.next = 0
		a.filled = true
	}
}

// auditVMTrap records a sensitive-instruction emulation.
func (k *VMM) auditVMTrap(vm *VM, info *vax.VMTrapInfo) {
	if k.audit == nil || info == nil {
		return
	}
	k.record(vm, AuditVMTrap, fmt.Sprintf("opcode %#x", info.Opcode))
}
