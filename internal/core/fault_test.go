package core

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/vax"
)

// auditHas reports whether the audit trail contains an event of kind.
func auditHas(k *VMM, kind AuditKind) bool {
	for _, e := range k.AuditTrail() {
		if e.Kind == kind {
			return true
		}
	}
	return false
}

func TestKCALLDiskTransientRetriedOK(t *testing.T) {
	// Every disk operation starts a one-attempt transient burst: the
	// VMM's retry loop must absorb it and return success to the guest.
	k, vm, _ := bootVM(t, Config{}, `
start:	mtpr #31, #18        ; mask the completion interrupt
	movl #3, r0          ; KCALL disk read
	movl #2, r1
	movl #0x5000, r2
	mtpr #0, #201
	movl r0, @#0x80006000
	movl @#0x80005000, r4
	halt
`, nil)
	k.EnableAudit(32)
	inj := fault.New(7, fault.Config{TargetVM: 0, TransientDiskRate: 1, TransientBurst: 1})
	k.AttachFaults(inj)
	copy(vm.Disk().Image()[2*vax.PageSize:], []byte{0xEF, 0xBE, 0xAD, 0xDE})
	runVM(t, k, vm, 100000)
	if got := guestLong(t, vm, 0x6000); got != KCallStatusOK {
		t.Errorf("KCALL status = %d, want OK", got)
	}
	if k.CPU.R[4] != 0xDEADBEEF {
		t.Errorf("disk data after retry = %#x", k.CPU.R[4])
	}
	if vm.Stats.DiskRetries != 1 {
		t.Errorf("DiskRetries = %d, want 1", vm.Stats.DiskRetries)
	}
	if vm.Stats.MachineChecks != 0 {
		t.Errorf("MachineChecks = %d, want 0", vm.Stats.MachineChecks)
	}
	if inj.Stats.TransientFails != 1 {
		t.Errorf("injected transient fails = %d, want 1", inj.Stats.TransientFails)
	}
	if !auditHas(k, AuditDiskRetry) {
		t.Error("no disk-retry audit event")
	}
}

func TestKCALLDiskPermanentDeliversMachineCheck(t *testing.T) {
	// A permanent device error must surface as a virtual machine check
	// through the VM's own SCB, with {byte count, cause, info}
	// parameters the handler can pop, and an error status in R0.
	k, vm, _ := bootVM(t, Config{}, `
start:	clrl r9
	movl #3, r0          ; KCALL disk read
	movl #2, r1
	movl #0x5000, r2
	mtpr #0, #201
	movl r0, @#0x80006000
	movl r9, @#0x80006004
	movl r7, @#0x80006008
	movl r8, @#0x8000600C
	movl r11, @#0x80006010
	halt
	.align 4
mckh:	incl r9
	movl (sp)+, r7       ; parameter byte count
	movl (sp)+, r8       ; cause code
	movl (sp)+, r11      ; cause info
	rei
`, map[vax.Vector]string{vax.VecMachineCheck: "mckh"})
	k.EnableAudit(32)
	k.AttachFaults(fault.New(7, fault.Config{TargetVM: 0, PermanentDiskRate: 1}))
	runVM(t, k, vm, 100000)
	if got := guestLong(t, vm, 0x6000); got != KCallStatusError {
		t.Errorf("KCALL status = %d, want error", got)
	}
	if got := guestLong(t, vm, 0x6004); got != 1 {
		t.Errorf("guest saw %d machine checks, want 1", got)
	}
	if got := guestLong(t, vm, 0x6008); got != 8 {
		t.Errorf("parameter byte count = %d, want 8", got)
	}
	if got := guestLong(t, vm, 0x600C); got != MCheckDiskError {
		t.Errorf("cause code = %d, want MCheckDiskError", got)
	}
	if got := guestLong(t, vm, 0x6010); got != 2 {
		t.Errorf("cause info = %d, want failing block 2", got)
	}
	if vm.Stats.MachineChecks != 1 {
		t.Errorf("MachineChecks = %d, want 1", vm.Stats.MachineChecks)
	}
	if vm.Stats.DiskRetries != 0 {
		t.Errorf("DiskRetries = %d, want 0 (permanent errors are not retried)", vm.Stats.DiskRetries)
	}
	if !auditHas(k, AuditMachineCheck) {
		t.Error("no machine-check audit event")
	}
}

func TestMachineCheckNoHandlerHaltsVM(t *testing.T) {
	// A VM with no machine-check vector cannot absorb the error: the
	// VMM halts that VM (and only that VM) rather than corrupting it.
	k, vm, _ := bootVM(t, Config{}, `
start:	movl #3, r0
	movl #2, r1
	movl #0x5000, r2
	mtpr #0, #201
	halt
`, nil)
	k.AttachFaults(fault.New(7, fault.Config{TargetVM: 0, PermanentDiskRate: 1}))
	runVM(t, k, vm, 100000)
	if _, msg := vm.Halted(); !strings.Contains(msg, "no handler") {
		t.Errorf("halt reason %q, want missing-handler halt", msg)
	}
	if vm.Stats.MachineChecks != 1 {
		t.Errorf("MachineChecks = %d, want 1", vm.Stats.MachineChecks)
	}
}

func TestUnknownKCALLCountedAndAudited(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, `
start:	movl #99, r0         ; no such KCALL function
	mtpr #0, #201
	movl r0, @#0x80006000
	halt
`, nil)
	k.EnableAudit(16)
	runVM(t, k, vm, 100000)
	if got := guestLong(t, vm, 0x6000); got != KCallStatusError {
		t.Errorf("KCALL status = %d, want error", got)
	}
	if vm.Stats.UnknownKCALLs != 1 {
		t.Errorf("UnknownKCALLs = %d, want 1", vm.Stats.UnknownKCALLs)
	}
	if !auditHas(k, AuditUnknownKCALL) {
		t.Error("no unknown-kcall audit event")
	}
}

func TestKCALLDiskTransferNoAlloc(t *testing.T) {
	// Satellite of the scratch-buffer fix: a disk transfer must not
	// allocate per call in either direction.
	k, vm, _ := bootVM(t, Config{}, `
start:	halt
`, nil)
	host, ok := vm.hostAddr(0x5000, vax.PageSize)
	if !ok {
		t.Fatal("hostAddr failed")
	}
	read := testing.AllocsPerRun(200, func() {
		if err := k.diskTransfer(vm, false, 1, host, 0); err != nil {
			t.Fatal(err)
		}
	})
	write := testing.AllocsPerRun(200, func() {
		if err := k.diskTransfer(vm, true, 1, host, 0); err != nil {
			t.Fatal(err)
		}
	})
	if read != 0 || write != 0 {
		t.Errorf("allocs per transfer: read %.1f write %.1f, want 0", read, write)
	}
}

func TestWatchdogHaltsOnlyRunaway(t *testing.T) {
	// A VM that spins without a progress event exhausts its watchdog
	// budget and is halted; a working neighbor is untouched.
	worker := `
start:	movl #20, r10
outer:	movl #200, r11
inner:	sobgtr r11, inner
	movl #1, r0          ; KCALL console put (a progress event)
	movl #46, r1
	mtpr #0, #201
	sobgtr r10, outer
	halt
`
	runaway := `
start:	incl r5
	brb start
`
	k, vmW, _ := bootVM(t, Config{Watchdog: 4}, worker, nil)
	k.EnableAudit(64)
	imgR, progR := guestImage(t, runaway, nil)
	vmR, err := k.CreateVM(VMConfig{MemBytes: gMemSize, Image: imgR,
		StartPC: progR.MustSymbol("start"), PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB})
	if err != nil {
		t.Fatal(err)
	}
	vmR.SPs[vax.Kernel] = gKSP
	k.Run(10_000_000)
	if _, msg := vmW.Halted(); !strings.Contains(msg, "HALT") {
		t.Errorf("worker halt reason %q, want normal HALT", msg)
	}
	if _, msg := vmR.Halted(); !strings.Contains(msg, "watchdog") {
		t.Errorf("runaway halt reason %q, want watchdog", msg)
	}
	if vmR.Stats.WatchdogTrips != 1 {
		t.Errorf("runaway WatchdogTrips = %d, want 1", vmR.Stats.WatchdogTrips)
	}
	if vmW.Stats.WatchdogTrips != 0 {
		t.Errorf("worker WatchdogTrips = %d, want 0", vmW.Stats.WatchdogTrips)
	}
	if vmW.ConsoleOutput() != strings.Repeat(".", 20) {
		t.Errorf("worker console = %q", vmW.ConsoleOutput())
	}
	if !auditHas(k, AuditWatchdogTrip) {
		t.Error("no watchdog-trip audit event")
	}
}

func TestShadowSelfCheckRepairsCorruption(t *testing.T) {
	// Corrupt a live shadow PTE by hand; the self-check pass must spot
	// the divergence from the guest's tables, clear it to the null PTE,
	// and the guest's next reference must demand-refill correctly.
	k, vm, _ := bootVM(t, Config{}, `
start:	movl #0x5A5A, @#0x80004600   ; S page 35: fill shadow, write data
	movl #4000, r11
spin:	sobgtr r11, spin
	movl @#0x80004600, r3        ; reread through the repaired shadow
	halt
`, nil)
	k.EnableAudit(32)
	k.Run(60) // past the store, inside the spin
	if h, _ := vm.Halted(); h {
		t.Fatal("guest finished before the corruption window")
	}

	// Repoint the shadow PTE for S VPN 35 at the wrong frame.
	slot := vm.shadow.sptPhys + 4*35
	v, err := k.Mem.LoadLong(slot)
	if err != nil || !vax.PTE(v).Valid() {
		t.Fatalf("shadow PTE for VPN 35 not live: %#x %v", v, err)
	}
	pte := vax.PTE(v)
	if serr := k.Mem.StoreLong(slot, uint32(vax.NewPTE(true, pte.Prot(), pte.Modified(), pte.PFN()^1))); serr != nil {
		t.Fatal(serr)
	}
	k.CPU.MMU.TBIS(vax.SystemBase + 35*vax.PageSize)

	if repairs := k.SelfCheck(); repairs != 1 {
		t.Errorf("SelfCheck repaired %d PTEs, want 1", repairs)
	}
	if vm.Stats.SelfCheckRepairs != 1 {
		t.Errorf("SelfCheckRepairs = %d, want 1", vm.Stats.SelfCheckRepairs)
	}
	if repairs := k.SelfCheck(); repairs != 0 {
		t.Errorf("second pass repaired %d PTEs, want 0", repairs)
	}
	if !auditHas(k, AuditSelfCheckRepair) {
		t.Error("no selfcheck-repair audit event")
	}

	runVM(t, k, vm, 1_000_000)
	if k.CPU.R[3] != 0x5A5A {
		t.Errorf("guest reread %#x through repaired shadow, want 0x5A5A", k.CPU.R[3])
	}
}

// twoVMIsolationRun boots a disk-working victim and a printing
// bystander, optionally injecting a certain permanent disk error into
// the victim, and returns the pair after the machine halts.
func twoVMIsolationRun(t *testing.T, inject bool) (*VMM, *VM, *VM) {
	t.Helper()
	victim := `
start:	clrl r11
vloop:	movl #3, r0          ; KCALL disk read
	movl r11, r1
	movl #0x5000, r2
	mtpr #0, #201
	incl r11
	cmpl r11, #8
	blss vloop
	halt
	.align 4
dskh:	rei
	.align 4
mckh:	halt                 ; guest gives up on its first machine check
`
	bystander := `
start:	movl #20, r10
outer:	movl #300, r11
inner:	sobgtr r11, inner
	movl #1, r0
	movl #98, r1         ; 'b'
	mtpr #0, #201
	sobgtr r10, outer
	halt
`
	k, vmV, _ := bootVM(t, Config{}, victim, map[vax.Vector]string{
		vax.VecMachineCheck: "mckh",
		vax.VecDisk:         "dskh",
	})
	imgB, progB := guestImage(t, bystander, nil)
	vmB, err := k.CreateVM(VMConfig{MemBytes: gMemSize, Image: imgB,
		StartPC: progB.MustSymbol("start"), PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB})
	if err != nil {
		t.Fatal(err)
	}
	vmB.SPs[vax.Kernel] = gKSP
	if inject {
		k.AttachFaults(fault.New(11, fault.Config{TargetVM: 0, PermanentDiskRate: 1}))
	}
	k.Run(10_000_000)
	return k, vmV, vmB
}

func TestFaultIsolationTwoVMs(t *testing.T) {
	// Baseline: the victim reads 8 blocks and halts normally.
	_, baseV, baseB := twoVMIsolationRun(t, false)
	if _, msg := baseV.Halted(); !strings.Contains(msg, "HALT") {
		t.Fatalf("baseline victim halt %q", msg)
	}
	baseOut := baseB.ConsoleOutput()
	baseCycles := baseB.HaltCycles()
	if baseOut != strings.Repeat("b", 20) {
		t.Fatalf("baseline bystander console %q", baseOut)
	}

	// Injected: the victim machine-checks on its first disk read and
	// its handler gives up. The bystander must not notice.
	_, vmV, vmB := twoVMIsolationRun(t, true)
	if vmV.Stats.MachineChecks != 1 {
		t.Errorf("victim MachineChecks = %d, want 1", vmV.Stats.MachineChecks)
	}
	if h, _ := vmV.Halted(); !h {
		t.Error("victim did not halt")
	}
	if out := vmB.ConsoleOutput(); out != baseOut {
		t.Errorf("bystander console changed: %q vs %q", out, baseOut)
	}
	if vmB.Stats.MachineChecks != 0 || vmB.Stats.DiskRetries != 0 {
		t.Errorf("bystander saw injected faults: %+v", vmB.Stats)
	}
	c := vmB.HaltCycles()
	lo, hi := baseCycles-baseCycles/10, baseCycles+baseCycles/10
	if c < lo || c > hi {
		t.Errorf("bystander halted at cycle %d, outside ±10%% of baseline %d", c, baseCycles)
	}
}

func TestScheduleNextAllWaitingIdleWake(t *testing.T) {
	// Both VMs WAIT: the machine must idle in real WAIT and the next
	// expiring deadline must wake the right VM — A, which waited first.
	waiterA := `
start:	wait
	halt
`
	waiterB := `
start:	movl #6000, r11
spin:	sobgtr r11, spin
	wait
	halt
`
	k, vmA, _ := bootVM(t, Config{WaitTimeout: 4}, waiterA, nil)
	imgB, progB := guestImage(t, waiterB, nil)
	vmB, err := k.CreateVM(VMConfig{MemBytes: gMemSize, Image: imgB,
		StartPC: progB.MustSymbol("start"), PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB})
	if err != nil {
		t.Fatal(err)
	}
	vmB.SPs[vax.Kernel] = gKSP
	k.Run(10_000_000)
	if h, _ := vmA.Halted(); !h {
		t.Fatal("waiter A never woke")
	}
	if h, _ := vmB.Halted(); !h {
		t.Fatal("waiter B never woke")
	}
	period := uint64(k.Config().ClockPeriod)
	if vmA.HaltCycles() < 4*period {
		t.Errorf("A halted at cycle %d, before its WAIT deadline (tick 4)", vmA.HaltCycles())
	}
	if vmA.HaltCycles() >= vmB.HaltCycles() {
		t.Errorf("wake order wrong: A at %d, B at %d", vmA.HaltCycles(), vmB.HaltCycles())
	}
	if vmA.Stats.Waits != 1 || vmB.Stats.Waits != 1 {
		t.Errorf("Waits = %d/%d, want 1/1", vmA.Stats.Waits, vmB.Stats.Waits)
	}
}
