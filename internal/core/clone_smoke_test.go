package core

import (
	"testing"

	"repro/internal/vax"
)

// cloneIdleSrc is the mostly-idle fleet guest for the clone smoke:
// three WAITs (riding the VMM's WAIT timeout), a marker store so
// parity has something to compare, then HALT.
const cloneIdleSrc = `
start:	movl #3, r10
loop:	wait
	sobgtr r10, loop
	movl #0x1D1E, @#0x80006000
	halt
`

// TestCloneSmokeParity is the ci.sh clone smoke: a 256-VM fleet brought
// up by cloning two booted templates must actually share pages before
// it runs, run to completion, and produce per-VM output identical to
// the same fleet booted VM-by-VM from images. The clone-backed monitor
// is overcommitted (48 KB backing per nominal 64 KB VM), so completion
// also exercises the COW break path under overcommit.
func TestCloneSmokeParity(t *testing.T) {
	const (
		fleet   = 256
		idlers  = fleet - fleet/32 // one compute guest per 32
		workers = 8
	)
	computeImg, computeProg := guestImage(t, cloneComputeSrc, nil)
	idleImg, idleProg := guestImage(t, cloneIdleSrc, nil)
	type outcome struct {
		val uint32
		msg string
	}
	boot := func(k *VMM, img []byte, startPC uint32) *VM {
		t.Helper()
		vm, err := k.CreateVM(VMConfig{
			MemBytes: gMemSize, Image: img, LoadAt: 0, StartPC: startPC,
			PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB,
		})
		if err != nil {
			t.Fatal(err)
		}
		vm.SPs[vax.Kernel] = gKSP
		vm.ISP = gISP
		return vm
	}
	run := func(cloneBacked bool) [fleet]outcome {
		t.Helper()
		memBytes := uint32(fleet)*(128<<10) + (1 << 20)
		if cloneBacked {
			memBytes = uint32(fleet)*(48<<10) + (1 << 20)
		}
		k := New(memBytes, Config{Workers: workers, WaitTimeout: 2})
		var vms [fleet]*VM
		if cloneBacked {
			idleT := boot(k, idleImg, idleProg.MustSymbol("start"))
			computeT := boot(k, computeImg, computeProg.MustSymbol("start"))
			vms[0], vms[idlers] = idleT, computeT
			for i := 1; i < fleet; i++ {
				if i == idlers {
					continue
				}
				src := computeT
				if i < idlers {
					src = idleT
				}
				vm, err := k.Clone(src, "")
				if err != nil {
					t.Fatal(err)
				}
				vms[i] = vm
			}
			var shared uint64
			for _, vm := range vms {
				shared += vm.Stats.SharedPages
			}
			if shared == 0 {
				t.Fatal("clone fleet shares no pages before running")
			}
		} else {
			for i := range vms {
				img, start := computeImg, computeProg.MustSymbol("start")
				if i < idlers {
					img, start = idleImg, idleProg.MustSymbol("start")
				}
				vms[i] = boot(k, img, start)
			}
		}
		k.Run(0)
		var out [fleet]outcome
		for i, vm := range vms {
			halted, msg := vm.Halted()
			if !halted {
				t.Fatalf("fleet(clone=%v): vm index %d did not halt", cloneBacked, i)
			}
			out[i] = outcome{val: guestLong(t, vm, 0x6000), msg: msg}
		}
		return out
	}
	booted := run(false)
	cloned := run(true)
	for i := range booted {
		if booted[i] != cloned[i] {
			t.Errorf("vm index %d diverges: booted %+v, cloned %+v", i, booted[i], cloned[i])
		}
	}
}
