//go:build !race

package core

import (
	"runtime/debug"
	"testing"

	"repro/internal/vax"
)

// TestCloneAllocParity pins the allocation counts of the cloning fast
// paths. Clone itself is the microsecond-scale fleet bring-up primitive
// (a handful of fixed allocations: frame map, gauge masks, the VM,
// the audit line); cowBreak is the steady-state
// hot path and must not allocate at all — the page copy reuses carved
// memory and the alias sweep walks windows into the backing array.
// Exact pins only hold without race instrumentation, matching the
// raceEnabled guard the root-package parity tests use.
func TestCloneAllocParity(t *testing.T) {
	// GC between runs would spill the allocator caches and perturb the
	// counts; hold it off for the measurement.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	k, src, _ := bootVM(t, Config{}, cloneComputeSrc, nil)
	// First clone materializes src.frames and pays the shadow demotion;
	// the steady state starts at the second.
	if _, err := k.Clone(src, "warm"); err != nil {
		t.Fatal(err)
	}
	clone := testing.AllocsPerRun(10, func() {
		if _, err := k.Clone(src, "c"); err != nil {
			t.Fatal(err)
		}
	})
	// Frame map, two gauge masks, the VM struct, the disk clone, the VM
	// table append, and the audit record's formatted detail. The shadow
	// space is deliberately absent: its construction is deferred to the
	// clone's first dispatch. Fixed-size work: the count must not drift.
	const wantClone = 7
	if clone != wantClone {
		t.Errorf("Clone allocates %.0f times, want exactly %d", clone, wantClone)
	}

	c, err := k.Clone(src, "breaker")
	if err != nil {
		t.Fatal(err)
	}
	pfn := uint32(1)
	breaks := testing.AllocsPerRun(8, func() {
		if !c.writePhys(pfn*vax.PageSize, 0x5EED) {
			t.Fatal("COW break failed")
		}
		pfn++
	})
	if breaks != 0 {
		t.Errorf("cowBreak allocates %.0f times per break, want 0", breaks)
	}
}
