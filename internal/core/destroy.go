package core

import (
	"fmt"

	"repro/internal/vax"
)

// DestroyVM unregisters a halted VM and recycles its physical pages,
// the missing half of the VM lifecycle: haltVM already parks shadow-
// table runs for reuse, but the VM's memory stayed carved forever. The
// fleet control plane churns through thousands of create/halt cycles,
// so destroyed memory goes back to the run pool — a contiguous VM as
// one run of its full geometry (the next CreateVM of the same size
// reuses it), a frames-backed VM page by page as the COW refcounts
// reach zero (the same 1-page size class cowBreak allocates from).
//
// Call on the root monitor while no run is in flight. The VM must be
// halted first (HaltVM); a destroyed VM is gone from VMs() and its
// *VM handle must not be used again.
func (k *VMM) DestroyVM(vm *VM) error {
	if k.parent != nil {
		return fmt.Errorf("vmm: DestroyVM must be called on the root monitor")
	}
	if vm == nil || vm.k != k {
		return fmt.Errorf("vmm: destroy target belongs to another monitor")
	}
	if !vm.halted {
		return fmt.Errorf("vmm: cannot destroy a live VM (halt it first)")
	}
	idx := k.vmIndex(vm)
	if idx < 0 {
		return fmt.Errorf("vmm: vm %d already destroyed", vm.ID)
	}
	// Shadow runs are normally released at the halt; a recoverable
	// death under an armed supervisor keeps them, so release here too
	// (idempotent).
	if vm.shadow != nil {
		vm.shadow.releaseRuns(k)
	}
	if vm.frames != nil {
		refs := k.shared.refs
		for _, f := range vm.frames {
			if refs == nil || refs.Drop(f) {
				// Last holder: the frame may carry cached decodes (or
				// superblocks) that would go stale on reuse.
				k.CPU.InvalidateDecode(f*vax.PageSize, vax.PageSize)
				k.freeRun(f, 1)
			}
		}
		vm.frames = nil
	} else {
		k.CPU.InvalidateDecode(vm.MemBase, vm.MemSize)
		k.freeRun(vm.MemBase/vax.PageSize, vm.MemSize/vax.PageSize)
	}
	k.vms = append(k.vms[:idx], k.vms[idx+1:]...)
	switch {
	case k.cur == idx:
		k.cur = -1
	case k.cur > idx:
		k.cur--
	}
	k.record(vm, AuditVMDestroyed, fmt.Sprintf("%d KB recycled", vm.MemSize/1024))
	return nil
}

// VMByID returns the VM with the given ID, or nil. IDs are monotonic
// per monitor and never reused, so a stale ID after DestroyVM misses
// instead of aliasing a newer VM.
func (k *VMM) VMByID(id int) *VM {
	for _, vm := range k.vms {
		if vm.ID == id {
			return vm
		}
	}
	return nil
}
