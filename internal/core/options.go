package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/vax"
)

// Functional options for New. Config literals remain fine for simple
// callers; options are the composable path the harness and commands
// use, so the handful of knobs they actually vary reads at the call
// site instead of in a struct sprinkled across packages.

// Option adjusts a Config before validation.
type Option func(*Config)

// WithWorkers selects the parallel engine with n worker goroutines
// (n <= 1 keeps the deterministic serial scheduler).
func WithWorkers(n int) Option {
	return func(cfg *Config) { cfg.Workers = n }
}

// WithFillBatch sets the shadow-fill cluster size (1 disables batching
// — the paper's pure demand-fill design point; 0 selects the default).
func WithFillBatch(n int) Option {
	return func(cfg *Config) { cfg.FillBatch = n }
}

// WithRecorder attaches a flight recorder (nil leaves recording off).
func WithRecorder(rec *trace.Recorder) Option {
	return func(cfg *Config) { cfg.Recorder = rec }
}

// WithCheckpoints enables periodic checkpointing: one generation every
// `every` ticks of each VM's virtual clock, kept in a ring of `gens`
// generations (0 selects the default depth).
func WithCheckpoints(every uint64, gens int) Option {
	return func(cfg *Config) {
		cfg.CheckpointEvery = every
		cfg.CheckpointGenerations = gens
	}
}

// WithRecovery arms the supervisor with the given per-VM recovery
// budget (0 selects the default).
func WithRecovery(budget int) Option {
	return func(cfg *Config) {
		cfg.Recover = true
		cfg.RecoverBudget = budget
	}
}

// WithTranslation toggles the hot-trace superblock execution tier on
// every processor the monitor drives (the serial machine and, under
// the parallel engine, each worker shard).
func WithTranslation(on bool) Option {
	return func(cfg *Config) { cfg.Translation = on }
}

// WithMemCache routes the monitor's physical-memory allocation and
// release through a goroutine-confined backing-store cache instead of
// the global pool, so concurrent harness workers booting and
// discarding machines don't contend on the pool mutex. The cache must
// only be used from one goroutine at a time (nil keeps the global
// pool).
func WithMemCache(c *mem.Cache) Option {
	return func(cfg *Config) { cfg.MemCache = c }
}

// WithScheme selects the ring virtualization strategy (Section 7.1).
func WithScheme(s RingScheme) Option {
	return func(cfg *Config) { cfg.Scheme = s }
}

// WithShadowCacheSlots sets the number of per-process shadow page
// tables cached per VM (Section 7.2; 0 or 1 means no caching).
func WithShadowCacheSlots(n int) Option {
	return func(cfg *Config) { cfg.ShadowCacheSlots = n }
}

// WithPrefetchGroup sets the number of consecutive shadow PTEs filled
// per fault (Section 4.3.1's rejected experiment; 0 or 1 means pure
// on-demand fill).
func WithPrefetchGroup(n int) Option {
	return func(cfg *Config) { cfg.PrefetchGroup = n }
}

// WithMMIO selects emulated memory-mapped I/O instead of the KCALL
// start-I/O interface (Section 4.4.3).
func WithMMIO(on bool) Option {
	return func(cfg *Config) { cfg.MMIOEmulatedIO = on }
}

// WithQuota bounds what the monitor will admit: CreateVM and Clone
// fail with a *QuotaError once the limit would be breached. The fleet
// manager layers per-tenant budgets above this whole-machine backstop.
func WithQuota(q Quota) Option {
	return func(cfg *Config) { cfg.Quota = q }
}

// Validate rejects configurations that clamping cannot repair. The
// withDefaults pass already absorbs zero values and mild negatives;
// what remains invalid here is a magnitude that would make the machine
// pathological rather than merely slow.
func (cfg Config) Validate() error {
	if cfg.Scheme < RingCompression || cfg.Scheme > SeparateAddressSpace {
		return fmt.Errorf("unknown ring scheme %d", cfg.Scheme)
	}
	if cfg.FillBatch > vax.PageSize/4 {
		return fmt.Errorf("FillBatch %d exceeds one guest PTE page (%d)", cfg.FillBatch, vax.PageSize/4)
	}
	if cfg.PrefetchGroup > vax.PageSize/4 {
		return fmt.Errorf("PrefetchGroup %d exceeds one guest PTE page (%d)", cfg.PrefetchGroup, vax.PageSize/4)
	}
	if cfg.Workers > 4096 {
		return fmt.Errorf("Workers %d is beyond any plausible host", cfg.Workers)
	}
	if cfg.CostScalePercent < 0 {
		return fmt.Errorf("CostScalePercent must be non-negative, got %d", cfg.CostScalePercent)
	}
	if cfg.CheckpointGenerations < 0 || cfg.CheckpointGenerations > 64 {
		return fmt.Errorf("CheckpointGenerations must be in [0, 64], got %d", cfg.CheckpointGenerations)
	}
	if cfg.RecoverBudget < 0 {
		return fmt.Errorf("RecoverBudget must be non-negative, got %d", cfg.RecoverBudget)
	}
	return nil
}
