package core

import (
	"strings"
	"testing"

	"repro/internal/vax"
)

// TestGuestIPRRoundTrips drives MTPR/MFPR through the VMM for every
// virtualized register a guest kernel touches.
func TestGuestIPRRoundTrips(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, `
start:	mtpr #0x4000, #0     ; KSP (current mode: live SP is NOT this)
	mtpr #0x80007000, #1 ; ESP
	mtpr #0x80006800, #2 ; SSP
	mtpr #0x80006400, #3 ; USP
	mtpr #0x80006000, #4 ; ISP
	mtpr #0x600, #16     ; PCBB
	mtpr #0x7, #21       ; SISR (bit 0 masked off)
	mtpr #2, #19         ; ASTLVL
	mtpr #24, #11        ; P1LR
	mfpr #1, r1          ; ESP
	mfpr #3, r2          ; USP
	mfpr #4, r3          ; ISP
	mfpr #16, r4         ; PCBB
	mfpr #21, r5         ; SISR
	mfpr #19, r6         ; ASTLVL
	mfpr #11, r7         ; P1LR
	mfpr #9, r8          ; P0LR
	mfpr #10, r9         ; P1BR
	mfpr #24, r10        ; ICCS
	mfpr #27, r11        ; TODR (virtual ticks)
	halt
`, nil)
	runVM(t, k, vm, 100000)
	c := k.CPU
	checks := []struct {
		reg  int
		want uint32
		name string
	}{
		{1, 0x80007000, "ESP"}, {2, 0x80006400, "USP"}, {3, 0x80006000, "ISP"},
		{4, 0x600, "PCBB"}, {5, 0x6, "SISR"}, {6, 2, "ASTLVL"}, {7, 24, "P1LR"},
	}
	for _, ck := range checks {
		if c.R[ck.reg] != ck.want {
			t.Errorf("%s = %#x, want %#x", ck.name, c.R[ck.reg], ck.want)
		}
	}
	// MTPR to the current-mode stack pointer changed the live SP before
	// the guest pushed anything; the VM must still be in kernel mode
	// with the replaced SP lineage (hard to observe after HALT; the
	// stats confirm the paths ran).
	if vm.Stats.MTPROther != 9 {
		t.Errorf("MTPROther = %d", vm.Stats.MTPROther)
	}
	if vm.Stats.MFPRs != 11 {
		t.Errorf("MFPRs = %d", vm.Stats.MFPRs)
	}
}

// TestGuestUnknownIPRReflected: MTPR/MFPR to a nonexistent register in a
// VM reflects a reserved operand fault to the VMOS.
func TestGuestUnknownIPRReflected(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, `
start:	mtpr #1, #150        ; no such register
	halt
	.align 4
rsvd:	movl #0x5A, r9
	halt
`, map[vax.Vector]string{vax.VecRsvdOperand: "rsvd"})
	runVM(t, k, vm, 100000)
	if k.CPU.R[9] != 0x5A {
		t.Error("reserved operand fault not reflected")
	}
	_ = vm
}

// TestGuestIOReset clears the virtual devices.
func TestGuestIOReset(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, `
start:	movl #1, r0
	movl #65, r1
	mtpr #0, #201        ; console 'A'
	mtpr #0, #202        ; IORESET
	movl #1, r0
	movl #66, r1
	mtpr #0, #201        ; console 'B' after reset
	halt
`, nil)
	runVM(t, k, vm, 100000)
	if got := vm.ConsoleOutput(); got != "B" {
		t.Errorf("console after IORESET = %q", got)
	}
}

// TestKCALLErrors: bad function codes and out-of-range buffers.
func TestKCALLErrors(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, `
start:	movl #99, r0         ; unknown KCALL function
	mtpr #0, #201
	movl r0, r5          ; expect error status
	movl #3, r0          ; disk read with out-of-range block
	movl #9999, r1
	movl #0x5000, r2
	mtpr #0, #201
	movl r0, r6
	halt
`, nil)
	runVM(t, k, vm, 100000)
	if k.CPU.R[5] != KCallStatusError || k.CPU.R[6] != KCallStatusError {
		t.Errorf("error statuses: %d %d", k.CPU.R[5], k.CPU.R[6])
	}
	_ = vm
}

// TestKCALLBufferOutsideMemoryHaltsVM: the VMM refuses to DMA outside
// the VM (resource control).
func TestKCALLBufferOutsideMemoryHaltsVM(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, `
start:	movl #3, r0
	movl #0, r1
	movl #0x00FFFF00, r2 ; buffer far beyond VM memory
	mtpr #0, #201
	halt
`, nil)
	k.Run(100000)
	if h, msg := vm.Halted(); !h || !strings.Contains(msg, "outside VM memory") {
		t.Errorf("halted=%t msg=%q", h, msg)
	}
}

// TestBadPCBHaltsVM: LDPCTX with a PCB outside VM memory halts the VM.
func TestBadPCBHaltsVM(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, `
start:	mtpr #0x00FFFF00, #16
	ldpctx
	halt
`, nil)
	k.Run(100000)
	if h, msg := vm.Halted(); !h || !strings.Contains(msg, "PCB") {
		t.Errorf("halted=%t msg=%q", h, msg)
	}
}

// TestConfigAccessors covers the trivial accessors.
func TestConfigAccessors(t *testing.T) {
	k := New(8<<20, Config{ShadowCacheSlots: 3})
	if k.Config().ShadowCacheSlots != 3 {
		t.Error("Config not preserved")
	}
	if k.FreePages() == 0 {
		t.Error("no free pages on a fresh monitor")
	}
	for _, s := range []RingScheme{RingCompression, TrapAll, SeparateAddressSpace} {
		if s.String() == "" {
			t.Error("empty scheme name")
		}
	}
	vm, err := k.CreateVM(VMConfig{MemBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if vm.Monitor() != k {
		t.Error("Monitor() mismatch")
	}
	if vm.SLimit() == 0 || len(vm.SharedSpaceLayout()) == 0 {
		t.Error("layout accessors broken")
	}
}
