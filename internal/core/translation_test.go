package core

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// End-to-end coverage of the hot-trace translation tier behind
// WithTranslation: same-answer parity against the plain interpreter,
// operation on the parallel engine, invalidation across
// snapshot/restore, and the EvTraceCompile feed into the recorder.

// trHotLoopSrc runs a 20000-iteration register loop (hot enough to
// cross the superblock heat threshold many times over), then stores
// the result where the test can read it back.
const trHotLoopSrc = `
start:	clrl r2
	movl #20000, r11
loop:	addl2 r11, r2
	sobgtr r11, loop
	movl r2, @#0x80006000
	halt
`

const trHotLoopResult = uint32(20000) * 20001 / 2

// TestWithTranslationMatchesBaseline runs the same guest tier-on and
// tier-off to completion: the architectural outcome (guest memory,
// retired instructions, cycle count) must be identical, and the
// tier-on run must actually have executed out of superblocks.
func TestWithTranslationMatchesBaseline(t *testing.T) {
	run := func(translate bool) (*VMM, *VM) {
		k, vm, _ := bootVM(t, Config{Translation: translate}, trHotLoopSrc, nil)
		runVM(t, k, vm, 50_000_000)
		if got := guestLong(t, vm, 0x6000); got != trHotLoopResult {
			t.Fatalf("translate=%t: result %#x, want %#x", translate, got, trHotLoopResult)
		}
		return k, vm
	}
	kOff, _ := run(false)
	kOn, _ := run(true)

	if kOn.CPU.Stats.Instructions != kOff.CPU.Stats.Instructions {
		t.Errorf("instructions diverge: tier-on %d, tier-off %d",
			kOn.CPU.Stats.Instructions, kOff.CPU.Stats.Instructions)
	}
	if kOn.CPU.Cycles != kOff.CPU.Cycles {
		t.Errorf("cycles diverge: tier-on %d, tier-off %d",
			kOn.CPU.Cycles, kOff.CPU.Cycles)
	}
	if kOn.CPU.Stats.SBEnters == 0 {
		t.Error("tier-on run never entered a superblock")
	}
	if kOff.CPU.Stats.SBBuilds != 0 {
		t.Error("tier-off run built superblocks")
	}
}

// TestWithTranslationParallelEngine runs a small fleet on the M:N
// engine with the tier enabled on every worker shard: all guests must
// reach the right answer and the merged run stats must show superblock
// activity.
func TestWithTranslationParallelEngine(t *testing.T) {
	k := New(16<<20, Config{Workers: 4, Translation: true})
	var vms []*VM
	for i := 0; i < 4; i++ {
		vms = append(vms, addTestVM(t, k, "", trHotLoopSrc, nil))
	}
	k.Run(50_000_000)
	for i, vm := range vms {
		if halted, msg := vm.Halted(); !halted || !strings.Contains(msg, "HALT") {
			t.Fatalf("vm%d did not finish: %t %q", i, halted, msg)
		}
		if got := guestLong(t, vm, 0x6000); got != trHotLoopResult {
			t.Errorf("vm%d result %#x, want %#x", i, got, trHotLoopResult)
		}
	}
	pr := k.LastParallelRun()
	if pr.VMs != 4 {
		t.Fatalf("parallel run saw %d VMs, want 4", pr.VMs)
	}
	if pr.SBBuilds == 0 || pr.SBEnters == 0 || pr.SBSteps == 0 {
		t.Errorf("merged stats show no superblock activity: builds=%d enters=%d steps=%d",
			pr.SBBuilds, pr.SBEnters, pr.SBSteps)
	}
	if pr.MaxWorkerSteps == 0 || pr.MinWorkerSteps > pr.MaxWorkerSteps {
		t.Errorf("worker occupancy counters inconsistent: min=%d max=%d",
			pr.MinWorkerSteps, pr.MaxWorkerSteps)
	}
}

// TestWithTranslationSnapshotRestore snapshots a tier-on VM
// mid-computation and restores it into the same warm monitor: the
// restore must invalidate the installed superblocks (the code pages
// just changed under them) and the revived VM must still finish with
// the right answer.
func TestWithTranslationSnapshotRestore(t *testing.T) {
	k, vm, _ := bootVM(t, Config{Translation: true}, trHotLoopSrc, nil)
	// A tier-on step can retire a whole superblock, so 500 steps is
	// already deep inside the loop with blocks installed and hot.
	k.Run(500)
	if k.CPU.Stats.SBEnters == 0 {
		t.Fatal("warm-up never entered a superblock")
	}
	snap, err := k.Snapshot(vm)
	if err != nil {
		t.Fatal(err)
	}
	invBefore := k.CPU.Stats.SBInvalidations
	vm2, err := k.Restore("revived", snap)
	if err != nil {
		t.Fatal(err)
	}
	if k.CPU.Stats.SBInvalidations == invBefore {
		t.Error("restore into a warm monitor invalidated no superblocks")
	}
	k.Run(50_000_000)
	if h, msg := vm2.Halted(); !h || !strings.Contains(msg, "HALT") {
		t.Fatalf("restored VM did not finish: %t %q", h, msg)
	}
	if got := guestLong(t, vm2, 0x6000); got != trHotLoopResult {
		t.Errorf("restored result %#x, want %#x", got, trHotLoopResult)
	}
}

// TestWithTranslationTraceCompileEvents checks that superblock
// installs reach an attached flight recorder as EvTraceCompile events.
func TestWithTranslationTraceCompileEvents(t *testing.T) {
	rec := trace.NewRecorder(1 << 12)
	k, vm, _ := bootVM(t, Config{Translation: true, Recorder: rec}, trHotLoopSrc, nil)
	runVM(t, k, vm, 50_000_000)
	rec.Sync()
	compiles := 0
	for _, v := range rec.VMs() {
		for _, ev := range v.Events(0) {
			if ev.Kind == trace.EvTraceCompile {
				compiles++
			}
		}
	}
	if compiles == 0 {
		t.Error("no EvTraceCompile events recorded")
	}
	if got := uint64(compiles); got != k.CPU.Stats.SBBuilds {
		t.Errorf("recorded %d trace-compile events, CPU built %d superblocks",
			compiles, k.CPU.Stats.SBBuilds)
	}
}
