package core

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/trace"
	"repro/internal/vax"
)

// Shadow page tables (Section 4.3.1). For each VM the VMM owns a real
// system page table laid out as:
//
//	S VPN 0 .. VMSLimitPTEs-1      shadow of the VM's system page table
//	                               (null PTEs until demand-filled)
//	S VPN VMSLimitPTEs ..          the VMM's private region "above an
//	                               installation-defined boundary"
//	                               (Figure 2): the cached shadow P0
//	                               tables, the shadow P1 table, and the
//	                               identity map used while the VM runs
//	                               with memory management disabled.
//
// The private region is protected KW, so only real kernel mode — the
// VMM itself — can touch it; the VM, running at executive mode or
// below, cannot (footnote 4 of the paper: the VMM's shadow process
// page tables must live in the shared virtual address space).
type shadowSpace struct {
	vm *VM

	sptPhys uint32 // real physical address of the real SPT
	realSLR uint32 // total length of the real SPT in PTEs

	// Shadow P0 table slots (the multi-process cache of Section 7.2).
	slotPhys  []uint32 // physical base of each slot's table
	slotVA    []uint32 // S-space virtual address of each slot
	slotOwner []uint32 // VM P0BR value cached in the slot; 0 = free
	slotLRU   []uint64 // last-use stamp
	active    int      // slot currently wired into real P0BR
	lruClock  uint64

	p1Phys, p1VA       uint32 // single shadow P1 table
	identPhys, identVA uint32 // identity P0 table for MAPEN=0
	identPTEs          uint32

	// runs records every page run backing these tables {page, pages},
	// so releaseRuns can park them in the shared pool when the VM
	// halts; released guards double release.
	runs     [][2]uint32
	released bool
}

// newShadowSpace allocates and wires a VM's shadow tables.
func (k *VMM) newShadowSpace(vm *VM) (*shadowSpace, error) {
	s := &shadowSpace{vm: vm, active: 0}
	slots := k.cfg.ShadowCacheSlots

	vmPages := vm.MemSize / vax.PageSize
	s.identPTEs = vmPages
	identPages := (s.identPTEs*4 + vax.PageSize - 1) / vax.PageSize

	vmmRegionPages := uint32(slots)*procSlotPages + p1TablePages + identPages
	s.realSLR = VMSLimitPTEs + vmmRegionPages
	sptPages := (s.realSLR*4 + vax.PageSize - 1) / vax.PageSize

	sptPage, err := k.allocRun(sptPages)
	if err != nil {
		return nil, err
	}
	s.runs = append(s.runs, [2]uint32{sptPage, sptPages})
	s.sptPhys = sptPage * vax.PageSize

	// Null-initialize the whole SPT run (clear-on-reuse: a pooled run
	// carries the previous owner's PTEs). The private-region PTEs are
	// written over the tail below.
	if err := k.Mem.FillLong(s.sptPhys, sptPages*vax.PageSize/4, uint32(nullPTE)); err != nil {
		return nil, err
	}

	// Allocate the private-region structures and map them KW in the
	// real SPT.
	vpn := uint32(VMSLimitPTEs)
	mapRegion := func(pages uint32) (phys uint32, va uint32, err error) {
		page, err := k.allocRun(pages)
		if err != nil {
			return 0, 0, err
		}
		s.runs = append(s.runs, [2]uint32{page, pages})
		// Clear-on-reuse: restore the null-PTE default over the run
		// before it is wired anywhere.
		if err := k.Mem.FillLong(page*vax.PageSize, pages*vax.PageSize/4, uint32(nullPTE)); err != nil {
			return 0, 0, err
		}
		va = vax.SystemBase + vpn*vax.PageSize
		for i := uint32(0); i < pages; i++ {
			pte := vax.NewPTE(true, vax.ProtKW, true, page+i)
			if err := k.Mem.StoreLong(s.sptPhys+4*vpn, uint32(pte)); err != nil {
				return 0, 0, err
			}
			vpn++
		}
		return page * vax.PageSize, va, nil
	}

	// mapRegion already null-filled the slot and P1 runs; clearing them
	// again here would double the host-side table-initialization cost
	// that dominates VM creation and cloning. The *simulated* cost and
	// the ShadowClears count stay exactly what clearSlot would have
	// charged per slot, so guest-visible cycle totals are unchanged.
	for i := 0; i < slots; i++ {
		phys, va, err := mapRegion(procSlotPages)
		if err != nil {
			return nil, err
		}
		s.slotPhys = append(s.slotPhys, phys)
		s.slotVA = append(s.slotVA, va)
		s.slotOwner = append(s.slotOwner, 0)
		s.slotLRU = append(s.slotLRU, 0)
		vm.Stats.ShadowClears++
		k.CPU.AddCycles(uint64(ProcTablePTEs) / 8)
	}
	if s.p1Phys, s.p1VA, err = mapRegion(p1TablePages); err != nil {
		return nil, err
	}
	if s.identPhys, s.identVA, err = mapRegion(identPages); err != nil {
		return nil, err
	}
	if err := s.buildIdentity(k); err != nil {
		return nil, err
	}
	return s, nil
}

// buildIdentity (re)writes the identity P0 table for MAPEN=0: VM-
// physical page j at its real frame, all modes. On a contiguous VM the
// entries are premodified (no M-bit tracking while the VM runs
// unmapped); on a frames-backed VM a shared frame is mapped with M
// clear so the first unmapped store takes a modify fault and COW-breaks
// (clone.go rewrites the entry when the frame privatizes).
func (s *shadowSpace) buildIdentity(k *VMM) error {
	vm := s.vm
	for j := uint32(0); j < s.identPTEs; j++ {
		f := vm.frame(j)
		m := vm.frames == nil || !k.cowShared(f)
		pte := vax.NewPTE(true, vax.ProtUW, m, f)
		if err := k.Mem.StoreLong(s.identPhys+4*j, uint32(pte)); err != nil {
			return err
		}
	}
	return nil
}

// clearSlot resets a shadow P0 table to null PTEs. The host-side bulk
// fill replaces a 2048-iteration store loop; the simulated cost charged
// is unchanged.
func (s *shadowSpace) clearSlot(k *VMM, slot int) error {
	if err := k.Mem.FillLong(s.slotPhys[slot], ProcTablePTEs, uint32(nullPTE)); err != nil {
		return err
	}
	s.vm.Stats.ShadowClears++
	k.CPU.AddCycles(uint64(ProcTablePTEs) / 8) // bulk clear cost
	return nil
}

func (s *shadowSpace) clearP1(k *VMM) error {
	return k.Mem.FillLong(s.p1Phys, P1TablePTEs, uint32(nullPTE))
}

// clearSRegion resets the VM S shadow to null PTEs (SBR/SLR change or
// guest TBIA).
func (s *shadowSpace) clearSRegion(k *VMM) error {
	if err := k.Mem.FillLong(s.sptPhys, VMSLimitPTEs, uint32(nullPTE)); err != nil {
		return err
	}
	s.vm.Stats.ShadowClears++
	k.CPU.AddCycles(uint64(VMSLimitPTEs) / 8)
	return nil
}

// releaseRuns parks every page run backing these tables in the shared
// pool. Called when the VM halts for good; idempotent.
func (s *shadowSpace) releaseRuns(k *VMM) {
	if s.released {
		return
	}
	s.released = true
	for _, r := range s.runs {
		k.freeRun(r[0], r[1])
	}
}

// activate wires this VM's shadow tables into the real mapping
// registers.
func (s *shadowSpace) activate(c *cpu.CPU) {
	c.MMU.SBR = s.sptPhys
	c.MMU.SLR = s.realSLR
	c.MMU.Enabled = true
	vm := s.vm
	if !vm.mapen {
		// MAPEN off in the VM: identity-map VM-physical space through
		// the prebuilt P0 table; no P1 or VM-S translations exist.
		c.MMU.P0BR = s.identVA
		c.MMU.P0LR = s.identPTEs
		c.MMU.P1BR = s.p1VA
		c.MMU.P1LR = 0
		return
	}
	c.MMU.P0BR = s.slotVA[s.active]
	c.MMU.P0LR = min32(vm.p0lr, ProcTablePTEs)
	c.MMU.P1BR = s.p1VA
	c.MMU.P1LR = min32(vm.p1lr, P1TablePTEs)
}

// switchProcess points the shadow machinery at the guest address space
// whose P0 base is p0br, using the multi-process cache when enabled
// (Section 7.2): if a cached shadow table already holds this process's
// translations, its previously valid shadow PTEs survive and the VM
// takes no refill faults for them.
func (s *shadowSpace) switchProcess(k *VMM, p0br uint32) error {
	vm := s.vm
	vm.Stats.ContextSwitches++
	k.noteProgress(vm)
	s.lruClock++
	// Cache lookup.
	for i, owner := range s.slotOwner {
		if owner == p0br && owner != 0 && len(s.slotOwner) > 1 {
			vm.Stats.CacheHits++
			s.active = i
			s.slotLRU[i] = s.lruClock
			s.activate(k.CPU)
			k.CPU.MMU.TBIA()
			return nil
		}
	}
	vm.Stats.CacheMisses++
	// Evict the least recently used slot.
	victim := 0
	for i := range s.slotLRU {
		if s.slotLRU[i] < s.slotLRU[victim] {
			victim = i
		}
	}
	if err := s.clearSlot(k, victim); err != nil {
		return err
	}
	s.slotOwner[victim] = p0br
	s.slotLRU[victim] = s.lruClock
	s.active = victim
	s.activate(k.CPU)
	k.CPU.MMU.TBIA()
	return nil
}

// shadowSlot returns the physical address of the shadow PTE covering
// va, or false if va is outside the shadowed ranges.
func (s *shadowSpace) shadowSlot(va uint32) (uint32, bool) {
	vpn := vax.VPN(va)
	switch vax.Region(va) {
	case vax.RegionSystem:
		if vpn >= VMSLimitPTEs {
			return 0, false
		}
		return s.sptPhys + 4*vpn, true
	case vax.RegionP0:
		if vpn >= ProcTablePTEs {
			return 0, false
		}
		return s.slotPhys[s.active] + 4*vpn, true
	case vax.RegionP1:
		if vpn >= P1TablePTEs {
			return 0, false
		}
		return s.p1Phys + 4*vpn, true
	}
	return 0, false
}

// invalidate restores the null PTE for the page containing va (guest
// TBIS, or a guest PTE change the VMM observes).
func (s *shadowSpace) invalidate(k *VMM, va uint32) {
	if slot, ok := s.shadowSlot(va); ok {
		_ = k.Mem.StoreLong(slot, uint32(nullPTE))
	}
	k.CPU.MMU.TBIS(va)
}

// fill translates the VM's PTE for va into the shadow PTE: real frame
// from the VM-physical frame, protection ring-compressed (Section
// 4.3.1). It returns the guest fault to reflect when the VM's own
// tables make the reference invalid, or nil on success.
func (k *VMM) fillShadow(vm *VM, va uint32, wantWrite bool) *guestFault {
	var fillStart uint64
	if vm.rec != nil {
		fillStart = k.CPU.Cycles
	}
	slot, ok := vm.shadow.shadowSlot(va)
	if !ok {
		// Outside the VM's maximum table sizes: length violation.
		return vm.avFault(va, wantWrite, true)
	}
	gpte, gf := k.guestPTE(vm, va, wantWrite)
	if gf != nil {
		return gf
	}
	if gpte.Prot().Reserved() {
		return vm.avFault(va, wantWrite, false)
	}
	if !gpte.Valid() {
		// The VM's page really is invalid: its own operating system
		// must service the page fault.
		return vm.tnvFaultG(va, wantWrite)
	}
	vmPFN := gpte.PFN()
	if k.cfg.MMIOEmulatedIO && isDeviceFrame(vmPFN) {
		// Device frames stay unmapped so every register reference
		// traps for emulation (Section 4.4.3's expensive alternative).
		return nil
	}
	if vmPFN*vax.PageSize >= vm.MemSize {
		k.haltVM(vm, fmt.Sprintf("reference to nonexistent VM-physical page %#x", vmPFN))
		return nil
	}
	spte := shadowPTEFor(vm, gpte, k.cfg.ReadOnlyShadow)
	_ = k.Mem.StoreLong(slot, uint32(spte))
	vm.Stats.ShadowFills++
	k.charge(cpu.CostVMMShadowFill)
	k.CPU.MMU.TBIS(va)

	// Optional prefetch of the following PTEs (Section 4.3.1's rejected
	// experiment): each extra fill costs the same work whether or not
	// the VM ever touches the page.
	for g := 1; g < k.cfg.PrefetchGroup; g++ {
		nva := va + uint32(g)*vax.PageSize
		if vax.Region(nva) != vax.Region(va) {
			break
		}
		nslot, ok := vm.shadow.shadowSlot(nva)
		if !ok {
			break
		}
		npte, gf := k.guestPTE(vm, nva, false)
		if gf != nil || !npte.Valid() || npte.Prot().Reserved() {
			continue
		}
		nPFN := npte.PFN()
		if nPFN*vax.PageSize >= vm.MemSize || (k.cfg.MMIOEmulatedIO && isDeviceFrame(nPFN)) {
			continue
		}
		nf := vm.frame(nPFN)
		nm := npte.Modified()
		if vm.frames != nil {
			if k.cowShared(nf) {
				nm = false
			} else if nm {
				vm.cowClean = false
			}
		}
		ns := vax.NewPTE(true, npte.Prot().Compress(), nm, nf)
		_ = k.Mem.StoreLong(nslot, uint32(ns))
		vm.Stats.PrefetchFills++
		k.charge(cpu.CostVMMShadowFill)
	}

	if k.cfg.FillBatch > 1 {
		k.batchFill(vm, va, k.cfg.FillBatch)
	}
	if vm.rec != nil {
		vm.rec.Record(trace.EvShadowFill, fillStart, va)
		vm.rec.Observe(trace.LatShadowFill, k.CPU.Cycles-fillStart)
	}
	return nil
}

// batchFill extends a demand fill with up to batch-1 following shadow
// PTEs read from the same guest page-table page in one walk
// (Config.FillBatch). Where PrefetchGroup — the paper's rejected
// experiment — re-walks the guest tables and pays the full fill cost
// per extra PTE, the batch resolves the guest PTE page once and reads
// neighbors raw within it, so the whole cluster costs one extra
// guest-table read. Two rules keep it invisible to the guest: only
// null shadow slots are filled (a non-null slot may carry shadow
// M-bit state the guest's tables do not), and a neighbor whose guest
// PTE is invalid, reserved, device-mapped or out of range is skipped
// silently — a speculative fill must never become a guest-visible
// fault. Neighbors are filled as reads (shadow M from the guest PTE),
// so the first write to a prefilled clean page still takes its modify
// fault.
func (k *VMM) batchFill(vm *VM, va uint32, batch int) {
	ptePhys, avail, ok := k.guestPTEWindow(vm, va)
	if !ok {
		return
	}
	n := uint32(batch - 1)
	if n > avail {
		n = avail
	}
	filled := uint64(0)
	for g := uint32(1); g <= n; g++ {
		nva := va + g*vax.PageSize
		if vax.Region(nva) != vax.Region(va) {
			break
		}
		nslot, ok := vm.shadow.shadowSlot(nva)
		if !ok {
			break
		}
		cur, err := k.Mem.LoadLong(nslot)
		if err != nil || vax.PTE(cur) != nullPTE {
			continue
		}
		gv, ok := vm.readPhys(ptePhys + 4*g)
		if !ok {
			break
		}
		gpte := vax.PTE(gv)
		if !gpte.Valid() || gpte.Prot().Reserved() {
			continue
		}
		nPFN := gpte.PFN()
		if nPFN*vax.PageSize >= vm.MemSize ||
			(k.cfg.MMIOEmulatedIO && isDeviceFrame(nPFN)) {
			continue
		}
		_ = k.Mem.StoreLong(nslot, uint32(shadowPTEFor(vm, gpte, k.cfg.ReadOnlyShadow)))
		filled++
	}
	if filled > 0 {
		vm.Stats.FillBatches++
		vm.Stats.BatchFills += filled
		if vm.rec != nil {
			vm.rec.Record(trace.EvBatchFill, k.CPU.Cycles, uint32(filled))
		}
		// One amortized walk for the cluster, not a full fill per PTE.
		k.charge(cpu.CostVMMShadowFill / 2)
		k.CPU.MMU.TBISRange(va+vax.PageSize, n)
	}
}

// guestPTEWindow resolves, in one walk of the VM's tables, the
// VM-physical address of the guest PTE for va together with the number
// of following PTEs readable from the same guest page-table page
// within the region's length register.
func (k *VMM) guestPTEWindow(vm *VM, va uint32) (ptePhys, avail uint32, ok bool) {
	vpn := vax.VPN(va)
	switch vax.Region(va) {
	case vax.RegionSystem:
		if vpn >= vm.slr {
			return 0, 0, false
		}
		addr := vm.sbr + 4*vpn
		return addr, min32((vax.PageSize-(addr&vax.PageMask))/4-1, vm.slr-vpn-1), true
	case vax.RegionP0, vax.RegionP1:
		br, lr := vm.p0br, vm.p0lr
		if vax.Region(va) == vax.RegionP1 {
			br, lr = vm.p1br, vm.p1lr
		}
		if vpn >= lr {
			return 0, 0, false
		}
		pteVA := br + 4*vpn
		if vax.Region(pteVA) != vax.RegionSystem {
			return 0, 0, false
		}
		svpn := vax.VPN(pteVA)
		if svpn >= vm.slr {
			return 0, 0, false
		}
		sv, sok := vm.readPhys(vm.sbr + 4*svpn)
		if !sok {
			return 0, 0, false
		}
		spte := vax.PTE(sv)
		if spte.Prot().Reserved() || !spte.Valid() {
			return 0, 0, false
		}
		ptePhys = spte.PFN()*vax.PageSize + (pteVA & vax.PageMask)
		return ptePhys, min32((vax.PageSize-(pteVA&vax.PageMask))/4-1, lr-vpn-1), true
	}
	return 0, 0, false
}

// shadowPTEFor translates a valid guest PTE into its shadow form: real
// frame from the VM-physical frame, protection ring-compressed, or —
// under the rejected Section 4.4.2 alternative — "unmodified" encoded
// as a write-denying protection with the shadow M bit held set so the
// modify fault never fires.
//
// On a frames-backed VM a shared frame must never be mapped writable
// without a fault between the guest and the store: under the default
// scheme the shadow M bit is held clear so the first write takes a
// modify fault, and under the read-only scheme the protection is
// demoted so the write takes the upgrade path — both land in cowBreak.
func shadowPTEFor(vm *VM, gpte vax.PTE, roScheme bool) vax.PTE {
	prot := gpte.Prot().Compress()
	modified := gpte.Modified()
	if roScheme {
		if !modified {
			prot = prot.ReadOnly()
		}
		modified = true
	}
	frame := vm.frame(gpte.PFN())
	if vm.frames != nil {
		if vm.k.cowShared(frame) {
			if roScheme {
				prot = prot.ReadOnly()
			} else {
				modified = false
			}
		} else if modified {
			// Writable mapping of a private frame: a future Clone must
			// demote it before the frame can be re-shared.
			vm.cowClean = false
		}
	}
	return vax.NewPTE(true, prot, modified, frame)
}

// guestPTE performs the software walk of the VM's own page tables for
// va (in VM terms: VM-physical frames, uncompressed protections).
func (k *VMM) guestPTE(vm *VM, va uint32, wantWrite bool) (vax.PTE, *guestFault) {
	vpn := vax.VPN(va)
	switch vax.Region(va) {
	case vax.RegionSystem:
		if vpn >= vm.slr {
			return 0, vm.avFault(va, wantWrite, true)
		}
		v, ok := vm.readPhys(vm.sbr + 4*vpn)
		if !ok {
			k.haltVM(vm, "system page table outside VM memory")
			return 0, nil
		}
		return vax.PTE(v), nil
	case vax.RegionP0, vax.RegionP1:
		br, lr := vm.p0br, vm.p0lr
		if vax.Region(va) == vax.RegionP1 {
			br, lr = vm.p1br, vm.p1lr
		}
		if vpn >= lr {
			return 0, vm.avFault(va, wantWrite, true)
		}
		// The process PTE lives in the VM's S space.
		pteVA := br + 4*vpn
		if vax.Region(pteVA) != vax.RegionSystem {
			return 0, vm.avFaultPTE(va, wantWrite)
		}
		svpn := vax.VPN(pteVA)
		if svpn >= vm.slr {
			return 0, vm.avFaultPTE(va, wantWrite)
		}
		sv, ok := vm.readPhys(vm.sbr + 4*svpn)
		if !ok {
			k.haltVM(vm, "page table page outside VM memory")
			return 0, nil
		}
		spte := vax.PTE(sv)
		if spte.Prot().Reserved() {
			return 0, vm.avFaultPTE(va, wantWrite)
		}
		if !spte.Valid() {
			return 0, vm.tnvFaultPTE(va, wantWrite)
		}
		pv, ok := vm.readPhys(spte.PFN()*vax.PageSize + (pteVA & vax.PageMask))
		if !ok {
			k.haltVM(vm, "page table page outside VM memory")
			return 0, nil
		}
		return vax.PTE(pv), nil
	}
	return 0, vm.avFault(va, wantWrite, true)
}

// setGuestPTEModify sets PTE<M> in the VM's own page table for va — the
// second half of the modify-fault handler ("the VMM sets PTE<M> in the
// shadow page table, and also sets the corresponding bit in the VM's
// page table", Section 4.4.2).
func (k *VMM) setGuestPTEModify(vm *VM, va uint32) bool {
	vpn := vax.VPN(va)
	switch vax.Region(va) {
	case vax.RegionSystem:
		addr := vm.sbr + 4*vpn
		v, ok := vm.readPhys(addr)
		if !ok {
			return false
		}
		return vm.writePhys(addr, uint32(vax.PTE(v).WithModify(true)))
	case vax.RegionP0, vax.RegionP1:
		br := vm.p0br
		if vax.Region(va) == vax.RegionP1 {
			br = vm.p1br
		}
		pteVA := br + 4*vpn
		svpn := vax.VPN(pteVA)
		sv, ok := vm.readPhys(vm.sbr + 4*svpn)
		if !ok || !vax.PTE(sv).Valid() {
			return false
		}
		addr := vax.PTE(sv).PFN()*vax.PageSize + (pteVA & vax.PageMask)
		v, ok := vm.readPhys(addr)
		if !ok {
			return false
		}
		return vm.writePhys(addr, uint32(vax.PTE(v).WithModify(true)))
	}
	return false
}

// LayoutRegion describes one range of the real S address space a VM and
// its VMM share (Figure 2 of the paper).
type LayoutRegion struct {
	Name   string
	BaseVA uint32
	Bytes  uint32
	Access string
}

// SharedSpaceLayout reports the live S-space layout for this VM: the
// VM's region below the installation-defined boundary and the VMM's
// private structures above it.
func (vm *VM) SharedSpaceLayout() []LayoutRegion {
	s := vm.shadow
	out := []LayoutRegion{{
		Name:   "VM system space (shadow of the VM's SPT)",
		BaseVA: vax.SystemBase,
		Bytes:  VMSLimitPTEs * vax.PageSize,
		Access: "VM protection codes, ring-compressed",
	}}
	for i, va := range s.slotVA {
		out = append(out, LayoutRegion{
			Name:   fmt.Sprintf("VMM: shadow P0 page table, slot %d", i),
			BaseVA: va,
			Bytes:  procSlotPages * vax.PageSize,
			Access: "KW (VMM only)",
		})
	}
	out = append(out,
		LayoutRegion{
			Name:   "VMM: shadow P1 page table",
			BaseVA: s.p1VA,
			Bytes:  p1TablePages * vax.PageSize,
			Access: "KW (VMM only)",
		},
		LayoutRegion{
			Name:   "VMM: identity map for MAPEN=0 execution",
			BaseVA: s.identVA,
			Bytes:  (s.identPTEs*4 + vax.PageSize - 1) / vax.PageSize * vax.PageSize,
			Access: "KW (VMM only)",
		})
	return out
}

// SLimit returns the VM's S-space limit in pages (the "installation-
// defined boundary" of Figure 2).
func (vm *VM) SLimit() uint32 { return VMSLimitPTEs }

// isDeviceFrame reports whether a VM-physical frame belongs to the
// virtual disk controller window.
func isDeviceFrame(pfn uint32) bool {
	base := VMDiskBase / vax.PageSize
	return pfn >= base && pfn < base+1
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
