package core

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/trace"
	"repro/internal/vax"
)

// HandleException implements cpu.ExceptionSink: the VMM owns every
// event the real machine's kernel vectors would receive. Returning true
// consumes the event; the CPU continues from whatever state the VMM
// established.
func (k *VMM) HandleException(c *cpu.CPU, e *vax.Exception) bool {
	k.Stats.VMMEntries++
	start := c.Cycles
	k.enterVMM()
	defer k.exitVMM()

	if e.Kind == vax.Interrupt {
		k.handleRealInterrupt(e, start)
		return true
	}
	vm := k.Current()
	if !e.FromVM || vm == nil {
		// A synchronous exception with no VM on the processor: the VMM
		// itself is host code and takes none, so this is a machine
		// error.
		c.Halt(cpu.HaltDoubleError)
		return true
	}

	switch e.Vector {
	case vax.VecVMEmulation:
		vm.Stats.VMTraps++
		k.auditVMTrap(vm, e.VMInfo)
		if vm.rec != nil {
			arg := uint32(0)
			if e.VMInfo != nil {
				arg = uint32(e.VMInfo.Opcode)
			}
			vm.rec.Record(trace.EvVMTrap, start, arg)
			k.emulate(vm, e.VMInfo)
			vm.rec.Observe(trace.LatTrap, c.Cycles-start)
		} else {
			k.emulate(vm, e.VMInfo)
		}
	case vax.VecTransNotValid:
		k.handleTNV(vm, e)
	case vax.VecAccessViol:
		if k.cfg.ReadOnlyShadow && e.Params[0]&vax.FaultParamWrite != 0 &&
			k.tryROShadowUpgrade(vm, e.Params[1]) {
			k.resumeVM(vm)
			return true
		}
		k.resumeVM(vm)
		// Copy the parameters: e may be backed by the MMU's scratch
		// exception, whose storage is reused at the next fault.
		k.reflect(vm, vm.gfCopy(vax.VecAccessViol, e.Params))
	case vax.VecModifyFault:
		k.handleModifyFault(vm, e)
	case vax.VecMachineCheck:
		// Section 5, "Hardware errors": the only error visible to the
		// VMOS is a reference to nonexistent memory; the VMM responds
		// by halting the VM.
		k.haltVM(vm, fmt.Sprintf("machine check at pc=%#x", c.PC()))
	case vax.VecKernelStkInv:
		k.haltVM(vm, "kernel stack not valid")
	default:
		// Everything else (privileged instruction, reserved operand,
		// reserved addressing, arithmetic, breakpoint, CHM-less traps)
		// belongs to the VM's own operating system.
		if e.Vector == vax.VecPrivInstr {
			k.record(vm, AuditPrivFault, "")
		}
		k.resumeVM(vm)
		// As above: copy out of the scratch exception's storage.
		k.reflect(vm, vm.gfCopy(e.Vector, e.Params))
	}
	return true
}

// enterVMM charges the VMM entry cost; under the separate-address-space
// scheme every crossing also pays an address-space switch and TLB flush
// (Section 7.1).
func (k *VMM) enterVMM() {
	k.charge(cpu.CostVMMDispatch)
	if k.cfg.Scheme == SeparateAddressSpace {
		k.charge(cpu.CostVMMAddrSpaceSwitch)
		k.CPU.MMU.TBIA()
	}
}

func (k *VMM) exitVMM() {
	if k.cfg.Scheme == SeparateAddressSpace {
		k.charge(cpu.CostVMMAddrSpaceSwitch)
		k.CPU.MMU.TBIA()
	}
}

// resumeVM re-enters VM mode on the current PSL (used after handlers
// that didn't change the guest context themselves).
func (k *VMM) resumeVM(vm *VM) {
	if vm.halted || k.Current() != vm {
		return
	}
	k.CPU.SetPSL(k.CPU.PSL().WithVM(true))
}

// handleTNV services a translation-not-valid fault taken while a VM was
// executing: a shadow PTE is still the null PTE. Either the VM's page
// is valid — fill the shadow and retry — or the fault belongs to the
// VM's operating system.
func (k *VMM) handleTNV(vm *VM, e *vax.Exception) {
	va := e.Params[1]
	write := e.Params[0]&vax.FaultParamWrite != 0

	if k.cfg.MMIOEmulatedIO && vm.mapen {
		if gpte, gf := k.guestPTE(vm, va, write); gf == nil && !vm.halted &&
			gpte.Valid() && isDeviceFrame(gpte.PFN()) {
			k.emulateMMIO(vm, va, gpte)
			return
		}
	}
	if !vm.mapen {
		// With guest mapping off the identity map covers all of the
		// VM's memory; a miss is a nonexistent-memory reference.
		k.haltVM(vm, fmt.Sprintf("unmapped reference to %#x with memory management off", va))
		return
	}
	gf := k.fillShadow(vm, va, write)
	if vm.halted {
		return
	}
	if gf != nil {
		k.resumeVM(vm)
		k.reflect(vm, gf)
		return
	}
	// Shadow filled: resume the VM; the faulting instruction retries.
	k.resumeVM(vm)
}

// tryROShadowUpgrade resolves a write access violation under the
// read-only-shadow scheme: if the VM's own page table permits the
// write, mark the page modified there and refill the shadow with its
// full (writable) protection. Returns false when the violation is
// genuine and belongs to the VMOS.
func (k *VMM) tryROShadowUpgrade(vm *VM, va uint32) bool {
	if !vm.mapen {
		return false
	}
	gpte, gf := k.guestPTE(vm, va, true)
	if gf != nil || vm.halted {
		return false
	}
	if !gpte.Valid() || gpte.Prot().Reserved() {
		return false
	}
	if !gpte.Prot().Compress().CanWrite(compressMode(k.CPU.VMPSL.Cur())) {
		return false
	}
	vm.Stats.ROWriteFaults++
	k.charge(cpu.CostVMMModifyFault + cpu.CostVMMShadowFill)
	if vm.frames != nil {
		// The denied write may target a COW-shared frame (the read-only
		// scheme encodes both "unmodified" and "shared" as write-denying
		// protection): privatize before granting write access.
		if !k.cowBreak(vm, gpte.PFN()) {
			return true
		}
		vm.cowClean = false
	}
	k.setGuestPTEModify(vm, va)
	if slot, ok := vm.shadow.shadowSlot(va); ok {
		spte := vax.NewPTE(true, gpte.Prot().Compress(), true,
			vm.frame(gpte.PFN()))
		_ = k.Mem.StoreLong(slot, uint32(spte))
	}
	k.CPU.MMU.TBIS(va)
	return true
}

// handleModifyFault services the modify fault of Section 4.4.2: set
// PTE<M> in the shadow page table and in the VM's page table, then
// retry the write.
func (k *VMM) handleModifyFault(vm *VM, e *vax.Exception) {
	va := e.Params[1]
	vm.Stats.ModifyFaults++
	if vm.rec != nil {
		vm.rec.Record(trace.EvModifyFault, k.CPU.Cycles, va)
	}
	k.charge(cpu.CostVMMModifyFault)
	if vm.frames != nil {
		k.cowModifyFault(vm, va)
		return
	}
	if slot, ok := vm.shadow.shadowSlot(va); ok {
		if v, err := k.Mem.LoadLong(slot); err == nil {
			_ = k.Mem.StoreLong(slot, uint32(vax.PTE(v).WithModify(true)))
		}
	}
	if vm.mapen {
		k.setGuestPTEModify(vm, va)
	}
	k.CPU.MMU.TBIS(va)
	k.resumeVM(vm)
}

// handleRealInterrupt services interrupts on the real machine — in this
// system only the interval clock, which drives virtual timer delivery,
// uptime maintenance, WAIT timeouts and time slicing. start is the
// CPU cycle count at VMM entry, so tick-wide housekeeping can be
// re-attributed to the VMM bucket instead of the interrupted VM.
func (k *VMM) handleRealInterrupt(e *vax.Exception, start uint64) {
	c := k.CPU
	if e.Vector != vax.VecClock {
		return // no other real devices interrupt in this configuration
	}
	// Acknowledge the interval timer.
	_ = c.WriteIPR(vax.IPRICCS, vax.ICCSInt|vax.ICCSRun|vax.ICCSIE)
	k.Stats.ClockTicks++

	entry := k.Current()
	cur := entry
	if cur != nil && !cur.halted {
		// Timer interrupts are delivered only while the VM is actually
		// running (Section 5, "Time") ...
		cur.ticks++
		if cur.clockOn && cur.clockIE {
			cur.postIRQ(vax.IPLClock, vax.VecClock)
		}
	}
	// ... which is precisely why counting them is not a clock: "the VMM
	// maintains system up time and stores it into the VMOS's memory.
	// Therefore the VMOS code should read this time rather than
	// computing it." The cell carries real uptime for every VM,
	// running, waiting or preempted.
	// tickBias rebases the cell into the VM's own clock domain: worker
	// shards advance their clocks independently, so a VM migrating
	// between them would otherwise see uptime jump or run backwards.
	// On the serial engine the bias is zero and this is the identity.
	for _, vm := range k.vms {
		if !vm.halted && vm.uptime != 0 {
			vm.writePhys(vm.uptime, uint32(k.Stats.ClockTicks-vm.tickBias))
		}
	}
	// Wake WAITing VMs whose timeout expired or that have work. Bare
	// timeouts with nothing pending feed the idle-wait streak the
	// parallel engine uses as its parking heuristic.
	for _, vm := range k.vms {
		vm.drainExternalIRQs()
		if vm.waiting {
			switch {
			case vm.pendingAbove(0) > 0:
				vm.idleWaits = 0
				vm.waiting = false
			case k.Stats.ClockTicks >= vm.waitDeadline:
				vm.idleWaits++
				vm.waiting = false
			}
		}
	}

	// VMM hardening hooks: scheduled fault injection, the periodic
	// shadow-table scrub, and the per-VM watchdog. Injection or the
	// watchdog may halt the current VM (and reschedule), so refresh it.
	if k.faults != nil {
		k.injectTick()
	}
	if k.cfg.SelfCheckInterval > 0 && k.Stats.ClockTicks%k.cfg.SelfCheckInterval == 0 {
		k.SelfCheck()
	}
	// Supervisor hooks, still inside the reattribution window below so
	// recovery and checkpoint work lands in the VMM bucket: bring back
	// VMs that died recoverably since the last tick, then take any due
	// periodic checkpoint of the running VM.
	if k.cfg.Recover {
		k.recoverPending()
	}
	cur = k.Current()
	if k.cfg.CheckpointEvery > 0 {
		k.maybeCheckpoint(cur)
	}
	if k.checkWatchdog(cur) {
		return // haltVM already scheduled a neighbor
	}

	// Everything from VMM entry to here — timer ack, uptime cells, wake
	// scans, injection, self-check, the watchdog — served the whole
	// machine. Move its cost off the interrupted VM's account into the
	// VMM bucket before deciding what runs next, so per-VM CyclesUsed
	// reflects only work done for that VM. (cur == entry implies no
	// world switch happened above, so resumeCycles is still the value
	// it had when start was captured and the adjustment cannot push it
	// past the current cycle count.)
	if cur != nil && cur == entry {
		delta := c.Cycles - start
		cur.resumeCycles += delta
		k.vmmCycles += delta
	}

	switch {
	case cur == nil || cur.halted:
		k.scheduleNext()
	case k.cfg.TimeSlice > 0 && k.Stats.ClockTicks%k.cfg.TimeSlice == 0:
		k.scheduleNext()
	default:
		k.resumeVM(cur)
		k.deliverPendingIRQs(cur)
	}
}
