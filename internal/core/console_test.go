package core

import (
	"strings"
	"testing"
)

// TestConsoleBootAndDebug drives the virtual console subset end to end:
// deposit a program into a fresh VM, start it, halt it from the
// console, examine its memory, and continue.
func TestConsoleBootAndDebug(t *testing.T) {
	k := New(8<<20, Config{})
	vm, err := k.CreateVM(VMConfig{MemBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	run := func(cmd string) string {
		t.Helper()
		out, err := k.ConsoleCommand(vm, cmd)
		if err != nil {
			t.Fatalf("%q: %v", cmd, err)
		}
		return out
	}

	// Deposit a tiny program at VM-physical 0x1000 (mapping off, so the
	// identity map runs it): increment 0x2000 forever.
	//   incl @#0x2000 = D6 9F 00 20 00 00 ; brb -8 = 11 F8
	run("DEPOSIT 0x1000 0x20009FD6")
	run("DEPOSIT 0x1004 0xF8110000")
	if out := run("EXAMINE 0x1000"); !strings.Contains(out, "20009FD6") {
		t.Errorf("examine after deposit: %q", out)
	}
	run("START 0x1000")
	k.Run(5000)
	if h, _ := vm.Halted(); h {
		t.Fatal("VM halted unexpectedly")
	}
	if out := run("HALT"); !strings.Contains(out, "halted") {
		t.Errorf("halt reply %q", out)
	}
	v1, _ := vm.readPhys(0x2000)
	if v1 == 0 {
		t.Fatal("deposited program never ran")
	}
	// Halted: no progress.
	k.Run(2000)
	v2, _ := vm.readPhys(0x2000)
	if v2 != v1 {
		t.Error("console HALT did not stop the VM")
	}
	// Continue: progress resumes.
	run("CONTINUE")
	k.Run(5000)
	v3, _ := vm.readPhys(0x2000)
	if v3 <= v2 {
		t.Error("console CONTINUE did not resume the VM")
	}
}

func TestConsoleInitialize(t *testing.T) {
	k := New(8<<20, Config{})
	vm, err := k.CreateVM(VMConfig{MemBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	vm.regs[3] = 99
	vm.pendingIRQ[22] = 0xC0
	out, err := k.ConsoleCommand(vm, "INITIALIZE")
	if err != nil || out != "initialized" {
		t.Fatalf("%q %v", out, err)
	}
	if vm.regs[3] != 0 || vm.pendingIRQ[22] != 0 {
		t.Error("INITIALIZE did not reset state")
	}
	if vm.vmpsl.IPL() != 31 {
		t.Errorf("power-up IPL = %d", vm.vmpsl.IPL())
	}
}

func TestConsoleErrors(t *testing.T) {
	k := New(8<<20, Config{})
	vm, err := k.CreateVM(VMConfig{MemBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	for _, cmd := range []string{
		"EXAMINE",              // missing arg
		"EXAMINE zzz",          // bad value
		"EXAMINE 0xFFFFFF00",   // outside VM memory
		"DEPOSIT 0x0",          // missing value
		"DEPOSIT 0xFFFFFF00 1", // outside
		"START",                // missing addr
		"FROB 1",               // unknown
	} {
		if _, err := k.ConsoleCommand(vm, cmd); err == nil {
			t.Errorf("%q should error", cmd)
		}
	}
	if out, err := k.ConsoleCommand(vm, "   "); err != nil || out != "" {
		t.Error("blank line should be a no-op")
	}
	// Abbreviations work (real consoles accept E/D).
	if _, err := k.ConsoleCommand(vm, "D 0x3000 42"); err != nil {
		t.Error(err)
	}
	out, err := k.ConsoleCommand(vm, "E 0x3000")
	if err != nil || !strings.Contains(out, "0000002A") {
		t.Errorf("abbreviated examine: %q %v", out, err)
	}
}
