package core

import (
	"encoding/binary"
	"math/rand"
	"testing"

	asmPkg "repro/internal/asm"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/vax"
)

type progT = asmPkg.Program

// TestGuestWalkMatchesHardwareWalk is the equivalence property behind
// shadow paging: the VMM's software walk of a guest's page tables
// (guestTranslate) must agree, access for access, with what real VAX
// memory-management hardware would decide given the same tables.
//
// For each trial, random guest system page tables are generated; every
// (page, mode, access) combination is then checked against a real
// standard-VAX MMU walking the identical tables.
func TestGuestWalkMatchesHardwareWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const trials = 30

	for trial := 0; trial < trials; trial++ {
		// Random guest SPT over 24 pages.
		img := make([]byte, gMemSize)
		for i := uint32(0); i < 24; i++ {
			pte := vax.NewPTE(rng.Intn(4) > 0, vax.Protection(rng.Intn(16)),
				rng.Intn(2) == 0, uint32(rng.Intn(64)))
			binary.LittleEndian.PutUint32(img[gSPT+4*i:], uint32(pte))
		}

		// The VMM side.
		k := New(8<<20, Config{})
		vm, err := k.CreateVM(VMConfig{
			MemBytes: gMemSize, Image: img,
			PreMapped: true, SBR: gSPT, SLR: 24, SCBB: gSCB,
		})
		if err != nil {
			t.Fatal(err)
		}

		// The hardware side: a plain MMU over a copy of the same image.
		hwMem := mem.New(gMemSize)
		if err := hwMem.StoreBytes(0, img); err != nil {
			t.Fatal(err)
		}
		hw := mmu.New(hwMem)
		hw.Enabled = true
		hw.SBR = gSPT
		hw.SLR = 24

		for page := uint32(0); page < 26; page++ { // includes out-of-length pages
			for mode := vax.Kernel; mode <= vax.User; mode++ {
				for _, write := range []bool{false, true} {
					va := vax.SystemBase + page*vax.PageSize + uint32(rng.Intn(vax.PageSize))
					acc := mmu.Read
					if write {
						acc = mmu.Write
					}
					hwPA, hwErr := hw.Translate(va, acc, mode)
					swPA, gf := k.guestTranslate(vm, va, write, mode)
					if vm.halted {
						t.Fatalf("trial %d: VM halted during walk", trial)
					}

					switch {
					case hwErr == nil && gf == nil:
						if hwPA != swPA {
							t.Fatalf("trial %d va=%#x mode=%s write=%t: pa %#x vs %#x",
								trial, va, mode, write, hwPA, swPA)
						}
					case hwErr != nil && gf != nil:
						hwExc, ok := hwErr.(*vax.Exception)
						if !ok {
							t.Fatalf("trial %d: hardware bus error: %v", trial, hwErr)
						}
						if hwExc.Vector != gf.vec {
							t.Fatalf("trial %d va=%#x mode=%s write=%t: fault %s vs %s",
								trial, va, mode, write, hwExc.Vector, gf.vec)
						}
					default:
						t.Fatalf("trial %d va=%#x mode=%s write=%t: hw=%v sw=%v",
							trial, va, mode, write, hwErr, gf)
					}
					// Hardware M-bit setting and the VMM's guest-PTE
					// update must leave the two copies of the tables
					// identical.
					hwPTE, _ := hwMem.LoadLong(gSPT + 4*page)
					swPTE, _ := vm.readPhys(gSPT + 4*page)
					if page < 24 && hwPTE != swPTE {
						t.Fatalf("trial %d page %d: PTE diverged %#x vs %#x",
							trial, page, hwPTE, swPTE)
					}
				}
			}
		}
	}
}

// TestVMCannotTouchOutsideItsMemory: whatever page tables a guest
// builds, no reference it makes can reach real memory outside its
// allocation — the VMM halts it instead (resource control, Section 2).
func TestVMCannotTouchOutsideItsMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		img := make([]byte, gMemSize)
		// SPT whose PFNs point far beyond the VM's memory.
		for i := uint32(0); i < gSPTLen; i++ {
			pfn := uint32(rng.Intn(1 << 20))
			binary.LittleEndian.PutUint32(img[gSPT+4*i:],
				uint32(vax.NewPTE(true, vax.ProtUW, true, pfn)))
		}
		// Keep the code page mapped correctly so the guest can start.
		for i := uint32(0); i < 16; i++ {
			binary.LittleEndian.PutUint32(img[gSPT+4*(8+i):],
				uint32(vax.NewPTE(true, vax.ProtUW, true, 8+i)))
		}
		prog := `
start:	movl #0x80000000, r1
loop:	movl (r1), r2        ; scan S space
	addl2 #512, r1
	brb loop
`
		k := New(8<<20, Config{})
		// A sentinel VM after the target so out-of-range writes would land
		// in its memory if containment failed.
		vm, err := k.CreateVM(VMConfig{MemBytes: gMemSize, Image: img,
			StartPC: 0x80001000, PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB})
		if err != nil {
			t.Fatal(err)
		}
		victim, err := k.CreateVM(VMConfig{MemBytes: gMemSize})
		if err != nil {
			t.Fatal(err)
		}
		// Fill the victim's memory with a sentinel pattern.
		sentinel := make([]byte, victim.MemSize)
		for i := range sentinel {
			sentinel[i] = 0xA5
		}
		if err := k.Mem.StoreBytes(victim.MemBase, sentinel); err != nil {
			t.Fatal(err)
		}
		// Assemble the scanning guest into the image the VM already has.
		p, err := asmAssembleAt(prog, vax.SystemBase+gCode)
		if err != nil {
			t.Fatal(err)
		}
		host, _ := vm.hostAddr(gCode, uint32(len(p.Code)))
		if err := k.Mem.StoreBytes(host, p.Code); err != nil {
			t.Fatal(err)
		}

		k.Run(1_000_000)
		if h, _ := vm.Halted(); !h {
			t.Fatalf("trial %d: scanner still running", trial)
		}
		dump := victim.DumpMemory()
		for i, b := range dump {
			if b != 0xA5 {
				t.Fatalf("trial %d: victim memory modified at %#x", trial, i)
			}
		}
	}
}

func asmAssembleAt(src string, origin uint32) (*progT, error) {
	return asmPkg.Assemble(src, origin)
}

// TestAuditTrail exercises the audit facility end to end.
func TestAuditTrail(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, `
start:	mtpr #5, #18
	pushl #0x03C00000
	pushl #ucode
	rei
	.align 4
ucode:	mtpr #1, #18         ; privilege violation from VM user
	halt
	.align 4
privh:	halt
`, map[vax.Vector]string{vax.VecPrivInstr: "privh"})
	k.EnableAudit(64)
	// Re-create events after enabling (creation happened before).
	runVM(t, k, vm, 100000)
	trail := k.AuditTrail()
	if len(trail) == 0 {
		t.Fatal("empty audit trail")
	}
	var kinds = map[AuditKind]int{}
	for _, e := range trail {
		kinds[e.Kind]++
		if e.String() == "" {
			t.Error("empty event string")
		}
	}
	if kinds[AuditVMTrap] == 0 {
		t.Error("no VM traps audited")
	}
	if kinds[AuditPrivFault] == 0 {
		t.Error("privilege fault not audited")
	}
	if kinds[AuditReflected] == 0 {
		t.Error("reflected fault not audited")
	}
	if kinds[AuditVMHalted] == 0 {
		t.Error("VM halt not audited")
	}
}

func TestAuditRingBufferWraps(t *testing.T) {
	k := New(8<<20, Config{})
	k.EnableAudit(4)
	for i := 0; i < 10; i++ {
		k.record(nil, AuditWorldSwitch, "")
	}
	trail := k.AuditTrail()
	if len(trail) != 4 {
		t.Fatalf("trail length %d, want 4", len(trail))
	}
	if k.AuditTrail()[0].VM != -1 {
		t.Error("machine-level event should have VM -1")
	}
	// Disabled by default.
	k2 := New(8<<20, Config{})
	if k2.AuditTrail() != nil {
		t.Error("audit trail without EnableAudit")
	}
}
