package core

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/vax"
)

// Virtual machine geometry. The VM's S space is limited to
// VMSLimitPTEs pages (Section 5, "Virtual memory limits": the VMM may
// set a smaller limit than the architectural 1 GB); process P0 spaces
// are limited to ProcTablePTEs pages.
const (
	VMSLimitPTEs  = 4096 // 2 MB of VM S space
	ProcTablePTEs = 2048 // 1 MB of P0 space per process
	P1TablePTEs   = 512  // 256 KB of P1 space

	procSlotPages = ProcTablePTEs * 4 / vax.PageSize // pages per shadow P0 table
	p1TablePages  = P1TablePTEs * 4 / vax.PageSize
)

// VMDiskBase is the VM-physical address of the virtual disk controller
// window under MMIO-emulated I/O (beyond any VM's RAM).
const VMDiskBase uint32 = 0x00F00000

// nullPTE is the default shadow PTE of Section 4.3.1: invalid, but with
// a protection code permitting read and write from all modes, so the
// hardware protection check passes and the reference faults to the VMM
// as translation-not-valid.
var nullPTE = vax.NewPTE(false, vax.ProtUW, false, 0)

// VMStats counts per-VM events used throughout the evaluation.
type VMStats struct {
	VMTraps          uint64 // VM-emulation traps
	CHMs             uint64
	REIs             uint64
	MTPRIPL          uint64
	MTPROther        uint64
	MFPRs            uint64
	ContextSwitches  uint64 // guest address-space changes (LDPCTX / MTPR P0BR)
	ShadowFills      uint64 // demand shadow PTE fills
	PrefetchFills    uint64 // additional PTEs filled by prefetch groups
	ShadowClears     uint64 // shadow tables reset to null PTEs
	CacheHits        uint64 // process shadow table found in cache
	CacheMisses      uint64
	ModifyFaults     uint64
	ROWriteFaults    uint64 // write upgrades under the read-only-shadow scheme
	ReflectedFaults  uint64 // faults forwarded to the VMOS
	VirtualIRQs      uint64
	KCALLs           uint64
	MMIOEmuls        uint64 // emulated memory-mapped register references
	Waits            uint64
	ProbeFills       uint64 // PROBE instructions completed by the VMM
	TrapAllSteps     uint64 // instructions emulated under the trap-all scheme
	MachineChecks    uint64 // virtual machine checks delivered to the VM
	DiskRetries      uint64 // transient disk errors retried by the VMM
	WatchdogTrips    uint64 // watchdog halts of this VM
	SelfCheckRepairs uint64 // shadow PTEs repaired by the self-check pass
	UnknownKCALLs    uint64 // KCALLs with an unrecognized function code

	FillBatches    uint64 // demand fills that batched at least one neighbor PTE
	BatchFills     uint64 // neighbor shadow PTEs filled by batching
	SlowPathAllocs uint64 // slow-path events that fell back to heap allocation

	Checkpoints         uint64 // checkpoint generations taken
	Recoveries          uint64 // supervisor restores from a checkpoint
	RecoveryFallbacks   uint64 // generations rejected (bad CRC etc.) during recovery
	RecoveryEscalations uint64 // recoveries abandoned: VM permanently halted

	// COW cloning (clone.go). COWBreaks counts privatizations over the
	// VM's lifetime; SharedPages/PrivatePages are gauges over the VM's
	// current frame map (shared = refcount above one at the last
	// transition; they sum to the VM's page count once frames exist).
	COWBreaks    uint64
	SharedPages  uint64
	PrivatePages uint64
}

// VMConfig describes a virtual machine to create.
type VMConfig struct {
	Name     string
	MemBytes uint32 // VM-physical memory, contiguous from 0
	// Image is loaded at VM-physical address LoadAt; StartPC is the
	// initial guest PC (mapping off).
	Image   []byte
	LoadAt  uint32
	StartPC uint32
	// DiskBlocks sizes the VM's virtual disk (512-byte blocks).
	DiskBlocks int

	// PreMapped starts the VM with memory management already enabled —
	// the state a boot loader would leave — using the given VM-physical
	// system page table and SCB.
	PreMapped bool
	SBR, SLR  uint32
	SCBB      uint32
}

// VM is one virtual VAX processor plus its memory and devices.
type VM struct {
	ID   int
	name string // label; read it through Name()

	MemBase uint32 // real physical base of the VM's memory
	MemSize uint32 // bytes

	// frames maps VM-physical page number to real page frame, the COW
	// indirection of clone.go. It is nil for a normal VM, whose memory
	// is one contiguous carve at MemBase — the fast path everywhere —
	// and non-nil for clones and cloned-from sources, whose frames
	// scatter as breaks privatize pages. A clone's MemBase is a sentinel
	// outside physical memory so any path that forgot the indirection
	// fails as a bus error instead of corrupting a neighbor.
	frames []uint32
	// cowClean marks a frames-backed VM whose shadow tables hold no
	// writable mapping of any frame: every mapping of a shared frame
	// faults on write, and no private frame is mapped modified. Clone
	// may then skip the shadow demotion pass. Cleared by every path that
	// installs a writable mapping or privatizes a frame.
	cowClean bool
	// cowMask has one bit per VM-physical page, set while the page is
	// counted in Stats.SharedPages; cowNotePrivate moves a page to
	// PrivatePages exactly once per transition, keeping the two gauges
	// summing to the page count.
	cowMask []uint64

	// Virtual processor state (live in the CPU while running).
	regs   [14]uint32 // R0..R13 when suspended
	pc     uint32
	pslLow uint32  // condition codes / trap enables when suspended
	vmpsl  vax.PSL // VM modes/IPL when suspended
	SPs    [4]uint32
	ISP    uint32

	// Virtualized processor registers (all in VM terms).
	scbb, pcbb             uint32
	p0br, p0lr, p1br, p1lr uint32
	sbr, slr               uint32
	mapen                  bool
	sisr                   uint32
	astlvl                 uint32

	// Virtual interval clock.
	clockOn bool
	clockIE bool
	ticks   uint64 // virtual uptime in ticks (advances only while running)
	uptime  uint32 // VM-physical address of the uptime cell, 0 = unset

	// CPU accounting: real cycles consumed while this VM owned the
	// processor (including VMM emulation work done on its behalf).
	cyclesUsed   uint64
	resumeCycles uint64 // k.CPU.Cycles at the last resume

	pendingIRQ [32]vax.Vector // virtual device interrupts by level

	// Cross-goroutine interrupt mailbox and scheduler state, padded on
	// both sides so concurrent posts against one VM never bounce cache
	// lines holding a neighbor VM's (or this VM's owner-confined) hot
	// fields. pendingIRQ above is owned by the goroutine executing the
	// VM; any other goroutine (tests, the parallel engine, cross-VM
	// wiring) posts through PostIRQ, which stores the vector in extIRQ,
	// sets the level's bit in extMask and unparks the VM if its engine
	// parked it. The owner folds the mailbox into pendingIRQ with
	// drainExternalIRQs at every delivery opportunity.
	_       [64]byte
	extIRQ  [32]atomic.Uint32
	extMask atomic.Uint32
	// sched is the parallel engine's per-VM state machine (schedIdle /
	// schedQueued / schedRunning / schedParked / schedDone). Cold
	// transitions (park, unpark, finish) happen under the engine mutex;
	// hot ones (queued<->running) are owner-only stores.
	sched atomic.Uint32
	// eng points at the engine of the parallel run in flight (nil
	// outside one); PostIRQ goes through it to unpark the VM.
	eng atomic.Pointer[engine]
	_   [64]byte

	// idleWaits counts consecutive WAIT timeouts with no intervening
	// progress or interrupt; the parallel engine parks a worker whose VM
	// keeps idling instead of letting it spin (owner-goroutine only,
	// except that unpark resets it before requeueing — the queue
	// handoff orders that write before the next owner's reads).
	idleWaits uint32

	// M:N migration state, owner-confined (the work-queue handoff
	// sequences owners): which worker shard ran the VM last (so a
	// dispatch elsewhere invalidates stale cached decodes), the WAIT
	// deadline expressed as ticks remaining (shard clocks advance
	// independently, so absolute deadlines do not survive migration),
	// the uptime-cell rebasing pair, and the remaining step budget.
	lastShard     *VMM
	waitRemaining uint64
	uptimeSeen    uint64 // last uptime value observed by this VM, in ticks
	tickBias      uint64 // clock-domain bias: cell value = ClockTicks - tickBias
	stepsLeft     uint64 // per-run step budget remaining (parallel engine)

	waiting      bool
	waitDeadline uint64 // real tick count at which WAIT times out
	halted       bool
	haltMsg      string
	haltCycles   uint64 // real cycle count at the moment of the halt

	lastProgress uint64 // vm.ticks at the last progress event (watchdog)

	// Checkpoint ring and supervisor state, owner-confined like Stats.
	// Everything here is lazily initialized by the first checkpoint so
	// a VM on a monitor with checkpointing disabled carries only zero
	// values (CreateVM stays allocation-neutral).
	ckptGens     [][]byte // generation ring; nil until the first checkpoint
	ckptHead     int      // ring index of the newest generation
	ckptSeq      uint64   // checkpoints taken over the VM's lifetime
	ckptLastTick uint64   // vm.ticks at the last periodic checkpoint
	ckptMark     uint64   // progressSeq at the last periodic checkpoint
	ckptFallback int      // generations to step back at the next recovery
	progressSeq  uint64   // monotonic progress-event counter
	// pendingRecover marks a recoverable death (watchdog trip,
	// handler-less machine check) awaiting the supervisor. The VM halts
	// normally first — callers unwind through the vm.halted guards —
	// and a safe point (the tick handler, the Run halt loop, or the
	// parallel drive loop) performs the actual rollback.
	pendingRecover bool

	shadow *shadowSpace
	disk   *vDisk
	cons   vConsole
	ring   *trace.SPSC[AuditEvent] // per-VM audit ring for parallel runs (nil until used)
	rec    *trace.VMRecorder       // flight recorder, nil = disabled
	// Traced disk KCALL awaiting its completion IRQ (recorder only):
	// the KCALL-to-completion latency span closes at delivery.
	kcallStart   uint64
	kcallPending bool

	// Slow-path scratch: the guest-fault cell the deliver.go
	// constructors recycle (one fault is alive at a time; see the
	// convention there) and the PCB staging array for LDPCTX. Owned by
	// the goroutine running the VM, like Stats.
	gf       guestFault
	gfParams [2]uint32
	pcb      [cpu.PCBSize / 4]uint32

	Stats VMStats

	k *VMM
}

// CreateVM allocates and initializes a virtual machine.
func (k *VMM) CreateVM(cfg VMConfig) (*VM, error) {
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 1 << 20
	}
	pages := (cfg.MemBytes + vax.PageSize - 1) / vax.PageSize
	if err := k.checkQuota(pages); err != nil {
		return nil, err
	}
	// Prefer a recycled run of this exact geometry (DestroyVM parks
	// them) over carving fresh pages; recycled runs carry the previous
	// owner's bytes and possibly cached decodes, so restore the
	// allocPages contract by hand.
	base, recycled := k.takeRun(pages)
	if recycled {
		k.CPU.InvalidateDecode(base*vax.PageSize, pages*vax.PageSize)
		if err := k.zeroPages(base, pages); err != nil {
			return nil, err
		}
	} else {
		var err error
		if base, err = k.allocPages(pages); err != nil {
			return nil, err
		}
	}
	vm := &VM{
		ID:      k.nextID,
		name:    cfg.Name,
		MemBase: base * vax.PageSize,
		MemSize: pages * vax.PageSize,
		k:       k,
	}
	k.nextID++
	if vm.name == "" {
		vm.name = defaultVMName(vm.ID)
	}
	if k.rec != nil {
		vm.rec = k.rec.VM(vm.ID, vm.name)
	}
	shadow, err := k.newShadowSpace(vm)
	if err != nil {
		return nil, err
	}
	vm.shadow = shadow
	if len(cfg.Image) > 0 {
		host, ok := vm.hostAddr(cfg.LoadAt, uint32(len(cfg.Image)))
		if !ok {
			return nil, fmt.Errorf("vmm: image does not fit in VM memory")
		}
		k.CPU.InvalidateDecode(host, uint32(len(cfg.Image)))
		if err := k.Mem.StoreBytes(host, cfg.Image); err != nil {
			return nil, err
		}
	}
	blocks := cfg.DiskBlocks
	if blocks == 0 {
		blocks = 64
	}
	vm.disk = newVDisk(blocks)
	// Power-up state: VM kernel mode, mapping off, PC at the image start.
	vm.vmpsl = vax.PSL(0).WithCur(vax.Kernel).WithPrv(vax.Kernel)
	vm.pc = cfg.StartPC
	if cfg.PreMapped {
		vm.mapen = true
		vm.sbr = cfg.SBR
		vm.slr = min32(cfg.SLR, VMSLimitPTEs)
		vm.scbb = cfg.SCBB
	}
	k.vms = append(k.vms, vm)
	k.record(vm, AuditVMCreated, fmt.Sprintf("%d KB at real base %#x", vm.MemSize/1024, vm.MemBase))
	return vm, nil
}

// frame returns the real page frame backing VM-physical page pfn. The
// caller guarantees pfn is in range (MemSize pages).
func (vm *VM) frame(pfn uint32) uint32 {
	if vm.frames == nil {
		return vm.MemBase/vax.PageSize + pfn
	}
	return vm.frames[pfn]
}

// hostAddr bounds-checks a VM-physical range and returns its real
// physical address. On a frames-backed VM the range must also be
// physically contiguous (frames scatter after COW breaks); callers
// moving bulk data across page boundaries use dmaRead/dmaWrite, which
// walk page by page.
func (vm *VM) hostAddr(vmPhys, n uint32) (uint32, bool) {
	if vmPhys > vm.MemSize || n > vm.MemSize-vmPhys {
		return 0, false
	}
	if vm.frames == nil {
		return vm.MemBase + vmPhys, true
	}
	span := n
	if span > 0 {
		span--
	}
	first, last := vmPhys/vax.PageSize, (vmPhys+span)/vax.PageSize
	if first == uint32(len(vm.frames)) {
		// Zero-length range starting exactly at MemSize: legal per the
		// bounds check but one past the frame map.
		first, last = first-1, first-1
	}
	for p := first; p < last; p++ {
		if vm.frames[p+1] != vm.frames[p]+1 {
			return 0, false
		}
	}
	return vm.frames[first]*vax.PageSize + vmPhys&vax.PageMask, true
}

// readPhys reads a longword of VM-physical memory.
func (vm *VM) readPhys(vmPhys uint32) (uint32, bool) {
	host, ok := vm.hostAddr(vmPhys, 4)
	if !ok {
		return 0, false
	}
	v, err := vm.k.Mem.LoadLong(host)
	return v, err == nil
}

// writePhys writes a longword of VM-physical memory. The write bypasses
// the CPU's store path, so it must drop any cached decoded instructions
// on the host page itself — and, on a frames-backed VM, break sharing
// first: a VMM-side store must never land in a frame another VM reads.
func (vm *VM) writePhys(vmPhys, v uint32) bool {
	if vm.frames != nil {
		if vmPhys > vm.MemSize || 4 > vm.MemSize-vmPhys {
			return false
		}
		if !vm.k.cowBreak(vm, vmPhys/vax.PageSize) ||
			!vm.k.cowBreak(vm, (vmPhys+3)/vax.PageSize) {
			return false
		}
	}
	host, ok := vm.hostAddr(vmPhys, 4)
	if !ok {
		return false
	}
	vm.k.CPU.InvalidateDecode(host, 4)
	return vm.k.Mem.StoreLong(host, v) == nil
}

// dmaRead copies len(b) bytes of VM-physical memory starting at vmPhys
// into b, walking the frame map page by page when the range is not
// physically contiguous.
func (vm *VM) dmaRead(vmPhys uint32, b []byte) error {
	n := uint32(len(b))
	if host, ok := vm.hostAddr(vmPhys, n); ok {
		return vm.k.Mem.LoadBytesInto(host, b)
	}
	if vm.frames == nil || vmPhys > vm.MemSize || n > vm.MemSize-vmPhys {
		return &mem.BusError{Addr: vmPhys}
	}
	for off := uint32(0); off < n; {
		p := vmPhys + off
		chunk := vax.PageSize - p&vax.PageMask
		if chunk > n-off {
			chunk = n - off
		}
		host := vm.frames[p/vax.PageSize]*vax.PageSize + p&vax.PageMask
		if err := vm.k.Mem.LoadBytesInto(host, b[off:off+chunk]); err != nil {
			return err
		}
		off += chunk
	}
	return nil
}

// dmaWrite copies b into VM-physical memory starting at vmPhys — the
// device-DMA store path. On a frames-backed VM every touched page is
// COW-broken first (DMA must never land in a frame another VM
// references) and cached decodes are dropped chunk by chunk; a normal
// VM takes the historical single-invalidate, single-copy path.
func (vm *VM) dmaWrite(vmPhys uint32, b []byte) error {
	n := uint32(len(b))
	if vmPhys > vm.MemSize || n > vm.MemSize-vmPhys {
		return &mem.BusError{Addr: vmPhys, Write: true}
	}
	if vm.frames == nil {
		host := vm.MemBase + vmPhys
		vm.k.CPU.InvalidateDecode(host, n)
		return vm.k.Mem.StoreBytes(host, b)
	}
	for off := uint32(0); off < n; {
		p := vmPhys + off
		chunk := vax.PageSize - p&vax.PageMask
		if chunk > n-off {
			chunk = n - off
		}
		if !vm.k.cowBreak(vm, p/vax.PageSize) {
			return &mem.BusError{Addr: p, Write: true}
		}
		host := vm.frames[p/vax.PageSize]*vax.PageSize + p&vax.PageMask
		vm.k.CPU.InvalidateDecode(host, chunk)
		if err := vm.k.Mem.StoreBytes(host, b[off:off+chunk]); err != nil {
			return err
		}
		off += chunk
	}
	return nil
}

// ResidentPages reports the physical pages this VM exclusively
// occupies: its full footprint for a contiguous VM, only the privatized
// pages for a frames-backed one (shared pages are charged to no single
// holder — that deduplication is the point of cloning).
func (vm *VM) ResidentPages() uint64 {
	if vm.frames == nil {
		return uint64(vm.MemSize / vax.PageSize)
	}
	return vm.Stats.PrivatePages
}

// Halted reports whether the VM has stopped, with the reason.
func (vm *VM) Halted() (bool, string) { return vm.halted, vm.haltMsg }

// DumpMemory copies out the VM's physical memory (for post-run
// inspection by tests and the experiment harness).
func (vm *VM) DumpMemory() []byte {
	if vm.frames != nil {
		out := make([]byte, vm.MemSize)
		for i, f := range vm.frames {
			p := uint32(i) * vax.PageSize
			if vm.k.Mem.LoadBytesInto(f*vax.PageSize, out[p:p+vax.PageSize]) != nil {
				return nil
			}
		}
		return out
	}
	b, err := vm.k.Mem.LoadBytes(vm.MemBase, vm.MemSize)
	if err != nil {
		return nil
	}
	return b
}

// Stats of the VMM that owns this VM (convenience for harness code).
func (vm *VM) Monitor() *VMM { return vm.k }

// ConsoleOutput returns everything the VM wrote to its console.
func (vm *VM) ConsoleOutput() string { return vm.cons.Output() }

// FeedConsole queues console input for the VM.
func (vm *VM) FeedConsole(s string) { vm.cons.Feed(s) }

// Disk returns the VM's virtual disk.
func (vm *VM) Disk() *vDisk { return vm.disk }

// Ticks returns the VM's virtual uptime in clock ticks.
func (vm *VM) Ticks() uint64 { return vm.ticks }

// HaltCycles returns the real cycle count at which the VM halted (0
// while it is still live).
func (vm *VM) HaltCycles() uint64 { return vm.haltCycles }

// CyclesUsed returns the real cycles consumed while this VM owned the
// processor, including VMM emulation work done on its behalf.
func (vm *VM) CyclesUsed() uint64 {
	if vm.k.Current() == vm {
		return vm.cyclesUsed + vm.k.CPU.Cycles - vm.resumeCycles
	}
	return vm.cyclesUsed
}

// SinceProgress returns how many ticks of its own CPU time the VM has
// run since its last progress event (what the watchdog budgets).
func (vm *VM) SinceProgress() uint64 { return vm.ticks - vm.lastProgress }

// runnable reports whether the VM can use the processor now.
func (vm *VM) runnable() bool {
	if vm.halted {
		return false
	}
	if vm.waiting {
		return vm.pendingAbove(0) > 0
	}
	return true
}

// pendingAbove returns the highest pending virtual interrupt level
// above ipl (including virtual software interrupts), or 0.
func (vm *VM) pendingAbove(ipl uint8) uint8 {
	for l := uint8(31); l > ipl; l-- {
		if vm.pendingIRQ[l] != 0 {
			return l
		}
		if l <= vax.IPLSoftwareMax && vm.sisr&(1<<l) != 0 {
			return l
		}
	}
	return 0
}

// postIRQ records a pending virtual interrupt for the VM. Owner-
// goroutine only; other goroutines must go through PostIRQ.
func (vm *VM) postIRQ(level uint8, vec vax.Vector) {
	if level < 32 {
		vm.pendingIRQ[level] = vec
	}
}

// PostIRQ posts a virtual device interrupt to the VM from outside its
// execution goroutine. Safe to call concurrently with a running
// engine; the interrupt is folded into the VM's pending set at its
// next delivery opportunity, and a VM parked by the parallel engine is
// put back on the run queue. The mailbox store strictly precedes the
// unpark attempt: park (under the engine mutex) re-checks the mailbox
// after publishing the parked state, so whichever side loses the
// interleaving still observes the other — no lost wakeups.
func (vm *VM) PostIRQ(level uint8, vec vax.Vector) {
	if level >= 32 || vec == 0 {
		return
	}
	vm.extIRQ[level].Store(uint32(vec))
	for {
		old := vm.extMask.Load()
		if vm.extMask.CompareAndSwap(old, old|1<<level) {
			break
		}
	}
	if e := vm.eng.Load(); e != nil {
		e.unpark(vm)
	}
}

// drainExternalIRQs folds mailbox posts into the owner-confined pending
// table. Called only by the goroutine executing the VM; a no-op (one
// atomic load) when nothing was posted.
func (vm *VM) drainExternalIRQs() {
	if vm.extMask.Load() == 0 {
		return
	}
	m := vm.extMask.Swap(0)
	for m != 0 {
		l := uint8(bits.TrailingZeros32(m))
		m &^= 1 << l
		if vec := vax.Vector(vm.extIRQ[l].Swap(0)); vec != 0 {
			vm.postIRQ(l, vec)
		}
	}
}

// --- suspend / resume (world switch) ---

// suspend captures the running VM's processor state from the CPU.
// The caller guarantees vm is the current VM and the CPU is stopped at
// a resumable guest PC.
func (k *VMM) suspend(vm *VM) {
	c := k.CPU
	vm.cyclesUsed += c.Cycles - vm.resumeCycles
	copy(vm.regs[:], c.R[:14])
	vm.pc = c.PC()
	vm.pslLow = uint32(c.PSL()) & 0xFF
	vm.vmpsl = c.VMPSL
	k.saveGuestSP(vm)
	k.cur = -1
	// Open the between-VMs window: cycles charged from here until the
	// next resume (world-switch cost, halt bookkeeping) belong to the
	// VMM bucket, not to any guest.
	k.switchStart = c.Cycles
}

// vmIndex locates vm in this monitor's VM table (-1 if absent). The
// table is small and the call sits on the cold world-switch path.
func (k *VMM) vmIndex(vm *VM) int {
	for i, v := range k.vms {
		if v == vm {
			return i
		}
	}
	return -1
}

// resume loads a VM's state into the CPU and continues guest execution.
func (k *VMM) resume(vm *VM) {
	c := k.CPU
	k.cur = k.vmIndex(vm)
	if k.switchStart != 0 {
		k.vmmCycles += c.Cycles - k.switchStart
		k.switchStart = 0
	}
	vm.resumeCycles = c.Cycles
	copy(c.R[:14], vm.regs[:])
	c.VMPSL = vm.vmpsl
	real := vax.PSL(vm.pslLow).
		WithCur(compressMode(vm.vmpsl.Cur())).
		WithPrv(compressMode(vm.vmpsl.Prv())).
		WithVM(true)
	c.SetPSL(real)
	c.SetSP(k.guestSP(vm))
	c.SetPC(vm.pc)
	vm.shadow.activate(c)
	c.MMU.TBIA()
}

// saveGuestSP stores the live stack pointer into the slot for the VM's
// current mode (or its interrupt stack). The authoritative mode is the
// processor's live VMPSL — vm.vmpsl is only a snapshot taken at
// suspend time (suspend refreshes it before calling here).
func (k *VMM) saveGuestSP(vm *VM) {
	sp := k.CPU.SP()
	if k.CPU.VMPSL.IS() {
		vm.ISP = sp
		return
	}
	vm.SPs[k.CPU.VMPSL.Cur()] = sp
}

// guestSP returns the stack pointer for the VM's current mode (per the
// live VMPSL; resume loads VMPSL before calling here).
func (k *VMM) guestSP(vm *VM) uint32 {
	if k.CPU.VMPSL.IS() {
		return vm.ISP
	}
	return vm.SPs[k.CPU.VMPSL.Cur()]
}

// haltCause classifies why a VM is being halted, which decides whether
// the supervisor may bring it back.
type haltCause int

const (
	// haltFatal deaths (guest HALT, nonexistent-memory references,
	// unrecoverable VMM state) are final even with the supervisor armed.
	haltFatal haltCause = iota
	// haltWatchdog and haltNoHandler deaths are external to the
	// checkpointed state — a stall, or a device error the guest has no
	// handler for — so rolling back to a checkpoint is meaningful.
	haltWatchdog
	haltNoHandler
)

// HaltVM stops a VM from outside the machine — the operator/API
// "power off" the fleet control plane issues. The halt is fatal (no
// supervisor rollback) and releases the VM's shadow-table runs; the
// memory itself is recycled by DestroyVM. Call on the root monitor
// while no run is in flight; a no-op on an already-halted VM.
func (k *VMM) HaltVM(vm *VM, msg string) {
	if k.parent != nil || vm == nil || vm.k != k || vm.halted {
		return
	}
	k.haltVM(vm, msg)
}

// haltVM stops a VM permanently — the response to HALT in VM-kernel
// mode and to references to nonexistent memory ("we respond by halting
// the VM, because touching non-existent memory can be a symptom of a
// security attack", Section 5).
func (k *VMM) haltVM(vm *VM, msg string) {
	k.haltVMCause(vm, msg, haltFatal)
}

// haltVMCause is haltVM with a death classification. A recoverable
// death under an armed supervisor halts the VM exactly like a fatal one
// — every unwinding caller checks vm.halted, and recovery in their
// midst would hand another VM's state to code still unwinding this
// one's — but keeps the shadow frames and marks the VM for deferred
// recovery at the next safe point.
func (k *VMM) haltVMCause(vm *VM, msg string, cause haltCause) {
	vm.halted = true
	vm.haltMsg = msg
	vm.haltCycles = k.CPU.Cycles
	k.record(vm, AuditVMHalted, msg)
	if k.Current() == vm {
		k.suspend(vm)
		vm.halted = true // suspend does not clear it; keep explicit
	}
	if cause != haltFatal && k.cfg.Recover {
		vm.pendingRecover = true
		k.scheduleNext()
		return
	}
	// A halted VM never resumes: its shadow-table frames are dead, and
	// the bump allocator cannot reclaim them on its own. Park the runs
	// in the shared pool so the next VM's shadow space recycles them
	// (the self-check and snapshot paths both skip halted VMs). A clone
	// halted before its first dispatch has no tables yet.
	if vm.shadow != nil {
		vm.shadow.releaseRuns(k)
	}
	k.scheduleNext()
}

// scheduleNext picks the next runnable VM (round robin from the current
// position) and resumes it; with none runnable the machine idles in
// WAIT until a clock tick, or halts when every VM has halted.
func (k *VMM) scheduleNext() {
	if cur := k.Current(); cur != nil {
		k.suspend(cur)
	}
	n := len(k.vms)
	if n == 0 {
		k.CPU.Halt(cpu.HaltInstruction)
		return
	}
	start := k.cur
	if start < 0 {
		start = n - 1
	}
	allHalted := true
	for i := 1; i <= n; i++ {
		vm := k.vms[(start+i)%n]
		if vm.halted {
			continue
		}
		allHalted = false
		vm.drainExternalIRQs()
		if vm.runnable() {
			if vm.shadow == nil && !k.ensureShadow(vm) {
				// Out of memory building the clone's deferred shadow
				// tables: the VM just halted; rescan with it excluded.
				k.scheduleNext()
				return
			}
			if vm.waiting {
				vm.waiting = false
			}
			k.Stats.WorldSwitches++
			k.charge(cpu.CostVMMWorldSwitch)
			k.record(vm, AuditWorldSwitch, "")
			if vm.rec != nil {
				vm.rec.Record(trace.EvSchedRun, k.CPU.Cycles, vm.pc)
			}
			k.resume(vm)
			k.deliverPendingIRQs(vm)
			return
		}
	}
	if allHalted {
		k.CPU.Halt(cpu.HaltInstruction)
		return
	}
	// Everything is waiting: idle until the next real clock tick.
	k.CPU.SetPSL(k.CPU.PSL().WithVM(false))
	k.CPU.SetWaiting(true)
}
