package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/ckpt"
	"repro/internal/vax"
)

// VM checkpoint and restore over the internal/ckpt stream format: a
// versioned, sectioned, CRC-validated archive with one section per
// state domain — virtual processor, virtualized mapping registers,
// physical pages (zero runs elided), devices, console, and cycle
// accounting. A VM can be written to any io.Writer mid-run and
// revived from any io.Reader, in this monitor or another; the
// supervisor (supervisor.go) restores the same sections in place to
// bring a failed VM back to its last checkpoint. Shadow tables are
// not saved: they are caches, rebuilt on demand after restore exactly
// as after a context switch. Console input is host-side transient and
// is not part of a checkpoint.

// maxRestoreMem caps the memory size a checkpoint may claim, so a
// corrupted stream cannot drive an absurd allocation before CreateVM
// gets a chance to refuse it.
const maxRestoreMem = 1 << 28

// leBuf builds little-endian section payloads.
type leBuf struct{ b []byte }

func (w *leBuf) u32(v uint32) {
	w.b = binary.LittleEndian.AppendUint32(w.b, v)
}

func (w *leBuf) u64(v uint64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, v)
}

func (w *leBuf) flag(v bool) {
	if v {
		w.u32(1)
	} else {
		w.u32(0)
	}
}

// leReader consumes little-endian section payloads without ever
// panicking: reads past the end set short and return zero.
type leReader struct {
	b     []byte
	short bool
}

func (r *leReader) u32() uint32 {
	if len(r.b) < 4 {
		r.short = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *leReader) u64() uint64 {
	if len(r.b) < 8 {
		r.short = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *leReader) flag() bool { return r.u32() != 0 }

// captureLive refreshes a current VM's suspended-state fields from the
// live processor without suspending it: the VM keeps the processor,
// but its regs/pc/PSL snapshot is now checkpoint-accurate. The caller
// guarantees the CPU sits at an instruction boundary (the VMM only
// runs between guest instructions, so it always does).
func (k *VMM) captureLive(vm *VM) {
	if k.Current() != vm {
		return
	}
	c := k.CPU
	copy(vm.regs[:], c.R[:14])
	vm.pc = c.PC()
	vm.pslLow = uint32(c.PSL()) & 0xFF
	vm.vmpsl = c.VMPSL
	k.saveGuestSP(vm)
}

// WriteCheckpoint streams the VM's complete state. The VM may be
// current (its live processor state is captured in place) but must
// not be halted.
func (k *VMM) WriteCheckpoint(vm *VM, w io.Writer, compress bool) error {
	if vm.halted {
		return fmt.Errorf("vmm: cannot checkpoint a halted VM (%s)", vm.haltMsg)
	}
	k.captureLive(vm)
	e, err := ckpt.NewEncoder(w, compress)
	if err != nil {
		return err
	}

	var cpuSec leBuf
	for _, r := range vm.regs {
		cpuSec.u32(r)
	}
	cpuSec.u32(vm.pc)
	cpuSec.u32(vm.pslLow)
	cpuSec.u32(uint32(vm.vmpsl))
	for _, sp := range vm.SPs {
		cpuSec.u32(sp)
	}
	cpuSec.u32(vm.ISP)
	cpuSec.u32(vm.scbb)
	cpuSec.u32(vm.pcbb)
	cpuSec.u32(vm.sisr)
	cpuSec.u32(vm.astlvl)
	for _, v := range vm.pendingIRQ {
		cpuSec.u32(uint32(v))
	}
	cpuSec.flag(vm.waiting)
	// The WAIT deadline travels as ticks-remaining: absolute tick counts
	// do not survive a move between machines (or a rollback in time).
	var remain uint64
	if vm.waiting && vm.waitDeadline > k.Stats.ClockTicks {
		remain = vm.waitDeadline - k.Stats.ClockTicks
	}
	cpuSec.u64(remain)
	if err := e.Section(ckpt.SecCPU, cpuSec.b); err != nil {
		return err
	}

	var mmu leBuf
	mmu.u32(vm.p0br)
	mmu.u32(vm.p0lr)
	mmu.u32(vm.p1br)
	mmu.u32(vm.p1lr)
	mmu.u32(vm.sbr)
	mmu.u32(vm.slr)
	mmu.flag(vm.mapen)
	if err := e.Section(ckpt.SecMMU, mmu.b); err != nil {
		return err
	}

	mem := vm.DumpMemory()
	if mem == nil {
		return fmt.Errorf("vmm: memory dump failed")
	}
	packed, err := ckpt.PackPages(mem, vax.PageSize)
	if err != nil {
		return err
	}
	var pages leBuf
	pages.u32(vm.MemSize)
	pages.b = append(pages.b, packed...)
	if err := e.Section(ckpt.SecPages, pages.b); err != nil {
		return err
	}

	var dev leBuf
	d := vm.disk
	dev.u32(uint32(len(d.data())))
	diskPacked, err := ckpt.PackPages(d.data(), vax.PageSize)
	if err != nil {
		return err
	}
	dev.b = append(dev.b, diskPacked...)
	dev.u32(d.csr)
	dev.u32(d.block)
	dev.u32(d.addr)
	dev.u32(d.count)
	dev.u32(d.stat)
	if err := e.Section(ckpt.SecDevices, dev.b); err != nil {
		return err
	}

	var cons leBuf
	vm.cons.mu.Lock()
	cons.flag(vm.cons.rxIE)
	cons.flag(vm.cons.txIE)
	cons.b = append(cons.b, vm.cons.out.Bytes()...)
	vm.cons.mu.Unlock()
	if err := e.Section(ckpt.SecConsole, cons.b); err != nil {
		return err
	}

	var cyc leBuf
	cyc.u64(vm.ticks)
	cyc.u32(vm.uptime)
	cyc.flag(vm.clockOn)
	cyc.flag(vm.clockIE)
	if err := e.Section(ckpt.SecCycles, cyc.b); err != nil {
		return err
	}
	return e.Close()
}

// Snapshot serializes the VM into a checkpoint image (compressed when
// the monitor's checkpoint policy says so).
func (k *VMM) Snapshot(vm *VM) ([]byte, error) {
	var buf bytes.Buffer
	if err := k.WriteCheckpoint(vm, &buf, k.cfg.CheckpointCompress); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ckptState is the decoded, validated content of a checkpoint stream,
// ready to apply to a VM.
type ckptState struct {
	regs       [14]uint32
	pc         uint32
	pslLow     uint32
	vmpsl      vax.PSL
	SPs        [4]uint32
	ISP        uint32
	scbb, pcbb uint32
	sisr       uint32
	astlvl     uint32
	pendingIRQ [32]vax.Vector
	waiting    bool
	waitRemain uint64

	p0br, p0lr, p1br, p1lr uint32
	sbr, slr               uint32
	mapen                  bool

	memSize uint32
	pages   []byte // still packed; unpacked once the target size is known

	hasDisk                       bool
	diskLen                       uint32
	diskPages                     []byte
	csr, dblock, addr, count, dst uint32

	hasConsole bool
	rxIE, txIE bool
	consoleOut []byte
	ticks      uint64
	uptime     uint32
	clockOn    bool
	clockIE    bool
}

// decodeCheckpoint validates a checkpoint stream and parses every
// section the monitor understands. All errors are returned, never
// panicked, whatever the input.
func decodeCheckpoint(r io.Reader) (*ckptState, error) {
	secs, err := ckpt.Sections(r)
	if err != nil {
		return nil, fmt.Errorf("vmm: bad checkpoint: %w", err)
	}
	for _, kind := range []ckpt.SectionKind{ckpt.SecCPU, ckpt.SecMMU, ckpt.SecPages, ckpt.SecCycles} {
		if _, ok := secs[kind]; !ok {
			return nil, fmt.Errorf("vmm: bad checkpoint: missing %v section", kind)
		}
	}
	st := &ckptState{}

	cr := leReader{b: secs[ckpt.SecCPU]}
	for i := range st.regs {
		st.regs[i] = cr.u32()
	}
	st.pc = cr.u32()
	st.pslLow = cr.u32()
	st.vmpsl = vax.PSL(cr.u32())
	for i := range st.SPs {
		st.SPs[i] = cr.u32()
	}
	st.ISP = cr.u32()
	st.scbb = cr.u32()
	st.pcbb = cr.u32()
	st.sisr = cr.u32()
	st.astlvl = cr.u32()
	for i := range st.pendingIRQ {
		st.pendingIRQ[i] = vax.Vector(cr.u32())
	}
	st.waiting = cr.flag()
	st.waitRemain = cr.u64()
	if cr.short {
		return nil, fmt.Errorf("vmm: bad checkpoint: short cpu section")
	}

	mr := leReader{b: secs[ckpt.SecMMU]}
	st.p0br, st.p0lr = mr.u32(), mr.u32()
	st.p1br, st.p1lr = mr.u32(), mr.u32()
	st.sbr, st.slr = mr.u32(), mr.u32()
	st.mapen = mr.flag()
	if mr.short {
		return nil, fmt.Errorf("vmm: bad checkpoint: short mmu section")
	}

	pr := leReader{b: secs[ckpt.SecPages]}
	st.memSize = pr.u32()
	if pr.short || st.memSize == 0 || st.memSize > maxRestoreMem ||
		st.memSize%vax.PageSize != 0 {
		return nil, fmt.Errorf("vmm: bad checkpoint: memory size %#x", st.memSize)
	}
	st.pages = pr.b

	yr := leReader{b: secs[ckpt.SecCycles]}
	st.ticks = yr.u64()
	st.uptime = yr.u32()
	st.clockOn = yr.flag()
	st.clockIE = yr.flag()
	if yr.short {
		return nil, fmt.Errorf("vmm: bad checkpoint: short cycles section")
	}

	if sec, ok := secs[ckpt.SecDevices]; ok {
		dr := leReader{b: sec}
		st.diskLen = dr.u32()
		if dr.short || st.diskLen > maxRestoreMem || st.diskLen%vax.PageSize != 0 {
			return nil, fmt.Errorf("vmm: bad checkpoint: disk size %#x", st.diskLen)
		}
		// The five controller registers trail the packed image.
		if len(dr.b) < 20 {
			return nil, fmt.Errorf("vmm: bad checkpoint: short devices section")
		}
		st.diskPages = dr.b[:len(dr.b)-20]
		tr := leReader{b: dr.b[len(dr.b)-20:]}
		st.csr, st.dblock, st.addr, st.count, st.dst =
			tr.u32(), tr.u32(), tr.u32(), tr.u32(), tr.u32()
		st.hasDisk = true
	}
	if sec, ok := secs[ckpt.SecConsole]; ok {
		sr := leReader{b: sec}
		st.rxIE = sr.flag()
		st.txIE = sr.flag()
		if sr.short {
			return nil, fmt.Errorf("vmm: bad checkpoint: short console section")
		}
		st.consoleOut = sr.b
		st.hasConsole = true
	}
	return st, nil
}

// applyVirtState installs the decoded virtual-processor, mapping and
// clock state into a VM (shared by ReadCheckpoint and the in-place
// recovery path).
func (k *VMM) applyVirtState(vm *VM, st *ckptState) {
	vm.regs = st.regs
	vm.pc = st.pc
	vm.pslLow = st.pslLow
	vm.vmpsl = st.vmpsl
	vm.SPs = st.SPs
	vm.ISP = st.ISP
	vm.scbb, vm.pcbb = st.scbb, st.pcbb
	vm.sisr, vm.astlvl = st.sisr, st.astlvl
	vm.pendingIRQ = st.pendingIRQ
	vm.waiting = st.waiting
	vm.waitDeadline = k.Stats.ClockTicks + st.waitRemain
	vm.p0br, vm.p0lr, vm.p1br, vm.p1lr = st.p0br, st.p0lr, st.p1br, st.p1lr
	vm.sbr, vm.slr = st.sbr, st.slr
	vm.mapen = st.mapen
	vm.ticks = st.ticks
	vm.uptime = st.uptime
	vm.clockOn, vm.clockIE = st.clockOn, st.clockIE
}

// ReadCheckpoint creates a new VM in this monitor from a checkpoint
// stream.
func (k *VMM) ReadCheckpoint(name string, r io.Reader) (*VM, error) {
	st, err := decodeCheckpoint(r)
	if err != nil {
		return nil, err
	}
	memory := make([]byte, st.memSize)
	if err := ckpt.UnpackPages(st.pages, memory, vax.PageSize); err != nil {
		return nil, fmt.Errorf("vmm: bad checkpoint: %w", err)
	}
	diskBlocks := 0
	var diskImg []byte
	if st.hasDisk {
		diskImg = make([]byte, st.diskLen)
		if err := ckpt.UnpackPages(st.diskPages, diskImg, vax.PageSize); err != nil {
			return nil, fmt.Errorf("vmm: bad checkpoint: %w", err)
		}
		diskBlocks = int(st.diskLen) / vax.PageSize
	}

	vm, err := k.CreateVM(VMConfig{
		Name:       name,
		MemBytes:   st.memSize,
		Image:      memory,
		DiskBlocks: diskBlocks,
	})
	if err != nil {
		return nil, err
	}
	// All of the restored VM's memory just changed underneath any
	// existing mappings: no cached decode can be trusted.
	k.CPU.FlushDecodeCache()
	copy(vm.disk.image, diskImg)
	vm.disk.csr, vm.disk.block = st.csr, st.dblock
	vm.disk.addr, vm.disk.count, vm.disk.stat = st.addr, st.count, st.dst
	k.applyVirtState(vm, st)
	if st.hasConsole {
		vm.cons.mu.Lock()
		vm.cons.out.Write(st.consoleOut)
		vm.cons.rxIE, vm.cons.txIE = st.rxIE, st.txIE
		vm.cons.mu.Unlock()
	}
	// Seed the (fresh, null-filled) shadow cache with the restored
	// process: slot 0 claims the VM's current P0 base and demand fills
	// repopulate it, exactly as after a context switch.
	if vm.mapen && vm.p0br != 0 {
		vm.shadow.slotOwner[0] = vm.p0br
	}
	k.record(vm, AuditVMCreated, "restored from checkpoint")
	return vm, nil
}

// Restore creates a new VM in this monitor from a checkpoint image.
func (k *VMM) Restore(name string, image []byte) (*VM, error) {
	return k.ReadCheckpoint(name, bytes.NewReader(image))
}

// restoreInPlace rolls an existing (suspended, usually halted) VM back
// to a checkpoint image without creating a new VM: the supervisor's
// recovery primitive. Memory, processor and mapping state return to
// the checkpoint; the disk (durable storage) and console output
// (already observed by the host) deliberately do not roll back. The
// image must validate and must describe this VM's geometry.
func (k *VMM) restoreInPlace(vm *VM, image []byte) error {
	st, err := decodeCheckpoint(bytes.NewReader(image))
	if err != nil {
		return err
	}
	if st.memSize != vm.MemSize {
		return fmt.Errorf("vmm: checkpoint is for a %d KB VM, this VM has %d KB",
			st.memSize/1024, vm.MemSize/1024)
	}
	// A clone restored before its first dispatch has no shadow tables
	// yet (s == nil below); ensureShadow builds them fresh at the next
	// dispatch, over the privatized frames, so every rebuild step here
	// is skipped rather than performed on nothing.
	s := vm.shadow
	if s != nil && s.released {
		return fmt.Errorf("vmm: shadow frames already released")
	}
	memory := make([]byte, st.memSize)
	if err := ckpt.UnpackPages(st.pages, memory, vax.PageSize); err != nil {
		return err
	}
	if vm.frames != nil {
		// Full overwrite: every shared frame gets a fresh private page
		// (no copy — the image lands on top) and the scattered frames
		// take the page-walking write path.
		if err := k.cowPrivatize(vm); err != nil {
			return err
		}
		if err := vm.dmaWrite(0, memory); err != nil {
			return err
		}
	} else {
		k.CPU.InvalidateDecode(vm.MemBase, vm.MemSize)
		if err := k.Mem.StoreBytes(vm.MemBase, memory); err != nil {
			return err
		}
	}
	k.applyVirtState(vm, st)

	// Rebuild the shadow caches for the restored mapping from scratch:
	// every slot back to null PTEs, slot 0 claiming the restored P0
	// base. switchProcess is not used here — it activates the shadow on
	// the live processor, which may be running another VM.
	if s != nil {
		for i := range s.slotOwner {
			if err := s.clearSlot(k, i); err != nil {
				return err
			}
			s.slotOwner[i] = 0
			s.slotLRU[i] = 0
		}
		if err := s.clearP1(k); err != nil {
			return err
		}
		if err := s.clearSRegion(k); err != nil {
			return err
		}
		s.active = 0
		if vm.mapen && vm.p0br != 0 {
			s.slotOwner[0] = vm.p0br
		}
		if vm.frames != nil {
			// The identity table still points at pre-restore frames;
			// rebuild it over the privatized map (all frames now
			// exclusive, so every entry comes back premodified).
			if err := s.buildIdentity(k); err != nil {
				return err
			}
		}
	}
	k.CPU.MMU.TBIA()

	// The rolled-back guest restarts its watchdog budget and idle
	// accounting; external interrupt mailboxes survive untouched (posts
	// that raced the failure still deliver).
	vm.lastProgress = vm.ticks
	vm.idleWaits = 0
	return nil
}
