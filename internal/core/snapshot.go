package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/vax"
)

// VM snapshot and restore. A suspended VM's complete state — virtual
// processor, virtualized registers, pending interrupts, memory and disk
// — round-trips through an opaque byte image, so a VM can be moved
// between monitors or checkpointed mid-run. Shadow tables are not
// saved: they are caches, rebuilt on demand after restore exactly as
// after a context switch.

const snapshotMagic = 0x56415853 // "VAXS"

type snapshotHeader struct {
	Magic   uint32
	Version uint32
	MemSize uint32
	DiskLen uint32

	Regs   [14]uint32
	PC     uint32
	PSLLow uint32
	VMPSL  uint32
	SPs    [4]uint32
	ISP    uint32

	SCBB, PCBB             uint32
	P0BR, P0LR, P1BR, P1LR uint32
	SBR, SLR               uint32
	MapEn                  uint32
	SISR                   uint32
	ASTLvl                 uint32

	ClockOn, ClockIE uint32
	Ticks            uint64
	Uptime           uint32

	PendingIRQ [32]uint32

	Waiting      uint32
	WaitDeadline uint64
}

// Snapshot serializes the VM. The VM must not be running on the
// processor (it is suspended first if it is current).
func (k *VMM) Snapshot(vm *VM) ([]byte, error) {
	if vm.halted {
		return nil, fmt.Errorf("vmm: cannot snapshot a halted VM (%s)", vm.haltMsg)
	}
	if k.Current() == vm {
		k.suspend(vm)
	}
	h := snapshotHeader{
		Magic:   snapshotMagic,
		Version: 1,
		MemSize: vm.MemSize,
		DiskLen: uint32(len(vm.disk.image)),
		Regs:    vm.regs,
		PC:      vm.pc,
		PSLLow:  vm.pslLow,
		VMPSL:   uint32(vm.vmpsl),
		SPs:     vm.SPs,
		ISP:     vm.ISP,
		SCBB:    vm.scbb, PCBB: vm.pcbb,
		P0BR: vm.p0br, P0LR: vm.p0lr, P1BR: vm.p1br, P1LR: vm.p1lr,
		SBR: vm.sbr, SLR: vm.slr,
		SISR: vm.sisr, ASTLvl: vm.astlvl,
		Ticks: vm.ticks, Uptime: vm.uptime,
		WaitDeadline: vm.waitDeadline,
	}
	if vm.mapen {
		h.MapEn = 1
	}
	if vm.clockOn {
		h.ClockOn = 1
	}
	if vm.clockIE {
		h.ClockIE = 1
	}
	if vm.waiting {
		h.Waiting = 1
	}
	for i, v := range vm.pendingIRQ {
		h.PendingIRQ[i] = uint32(v)
	}

	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, &h); err != nil {
		return nil, err
	}
	mem := vm.DumpMemory()
	if mem == nil {
		return nil, fmt.Errorf("vmm: memory dump failed")
	}
	buf.Write(mem)
	buf.Write(vm.disk.image)
	return buf.Bytes(), nil
}

// Restore creates a new VM in this monitor from a snapshot image.
func (k *VMM) Restore(name string, image []byte) (*VM, error) {
	r := bytes.NewReader(image)
	var h snapshotHeader
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return nil, fmt.Errorf("vmm: bad snapshot: %w", err)
	}
	if h.Magic != snapshotMagic || h.Version != 1 {
		return nil, fmt.Errorf("vmm: not a version-1 VM snapshot")
	}
	memory := make([]byte, h.MemSize)
	if _, err := io.ReadFull(r, memory); err != nil {
		return nil, fmt.Errorf("vmm: truncated snapshot memory: %w", err)
	}
	diskImg := make([]byte, h.DiskLen)
	if h.DiskLen > 0 {
		if _, err := io.ReadFull(r, diskImg); err != nil {
			return nil, fmt.Errorf("vmm: truncated snapshot disk: %w", err)
		}
	}

	vm, err := k.CreateVM(VMConfig{
		Name:       name,
		MemBytes:   h.MemSize,
		Image:      memory,
		DiskBlocks: int(h.DiskLen) / vax.PageSize,
	})
	if err != nil {
		return nil, err
	}
	// All of the restored VM's memory just changed underneath any
	// existing mappings: no cached decode can be trusted.
	k.CPU.FlushDecodeCache()
	copy(vm.disk.image, diskImg)

	vm.regs = h.Regs
	vm.pc = h.PC
	vm.pslLow = h.PSLLow
	vm.vmpsl = vax.PSL(h.VMPSL)
	vm.SPs = h.SPs
	vm.ISP = h.ISP
	vm.scbb, vm.pcbb = h.SCBB, h.PCBB
	vm.p0br, vm.p0lr, vm.p1br, vm.p1lr = h.P0BR, h.P0LR, h.P1BR, h.P1LR
	vm.sbr, vm.slr = h.SBR, h.SLR
	vm.mapen = h.MapEn == 1
	vm.sisr = h.SISR
	vm.astlvl = h.ASTLvl
	vm.clockOn, vm.clockIE = h.ClockOn == 1, h.ClockIE == 1
	vm.ticks = h.Ticks
	vm.uptime = h.Uptime
	for i := range vm.pendingIRQ {
		vm.pendingIRQ[i] = vax.Vector(h.PendingIRQ[i])
	}
	vm.waiting = h.Waiting == 1
	vm.waitDeadline = h.WaitDeadline

	// Rebuild the derived shadow state for the restored mapping: the
	// process slot for the VM's current P0 base, plus the TLB flush a
	// world switch performs anyway.
	if vm.mapen && vm.p0br != 0 {
		if err := vm.shadow.switchProcess(k, vm.p0br); err != nil {
			return nil, err
		}
		// switchProcess counts as a context switch; a restore is not.
		vm.Stats.ContextSwitches--
		vm.Stats.CacheMisses--
	}
	k.record(vm, AuditVMCreated, "restored from snapshot")
	return vm, nil
}
