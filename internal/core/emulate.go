package core

import (
	"repro/internal/cpu"
	"repro/internal/trace"
	"repro/internal/vax"
)

// emulate services a VM-emulation trap: the single path by which every
// sensitive instruction reaches the VMM, with operands already decoded
// by microcode (Section 4.4.1).
func (k *VMM) emulate(vm *VM, info *vax.VMTrapInfo) {
	if info == nil {
		k.haltVM(vm, "VM-emulation trap without decode information")
		return
	}
	switch info.Opcode {
	case vax.OpCHMK, vax.OpCHME, vax.OpCHMS, vax.OpCHMU:
		k.emulateCHM(vm, info)
	case vax.OpREI:
		k.emulateREI(vm, info)
	case vax.OpMTPR:
		k.emulateMTPR(vm, info)
	case vax.OpMFPR:
		k.emulateMFPR(vm, info)
	case vax.OpLDPCTX:
		k.emulateLDPCTX(vm, info)
	case vax.OpSVPCTX:
		k.emulateSVPCTX(vm, info)
	case vax.OpHALT:
		k.haltVM(vm, "HALT executed in VM kernel mode")
	case vax.OpWAIT:
		k.emulateWAIT(vm, info)
	case vax.OpPROBER, vax.OpPROBEW:
		k.emulatePROBE(vm, info)
	case vax.OpPROBEVMR, vax.OpPROBEVMW:
		// The VAX security kernel does not support self-virtualization;
		// PROBEVM inside a VM is an unimplemented instruction
		// (Section 4.3.3).
		k.resumeVM(vm)
		k.reflect(vm, vm.gfSet(vax.VecPrivInstr))
	case 0xFFFF:
		// Trap-all scheme: "emulate" the instruction by granting one
		// direct step, charging the per-instruction emulation cost.
		vm.Stats.TrapAllSteps++
		k.charge(cpu.CostVMMDispatch)
		k.CPU.StepVMInstruction()
		k.resumeVM(vm)
	default:
		k.haltVM(vm, "VM-emulation trap for unexpected opcode")
	}
}

// emulateCHM forwards a change-mode instruction to the VM: "the VMM can
// then do the proper stack pointer and stack manipulation, examine the
// VM's SCB, and forward the CHM exception to the VM" (Section 4.2.2).
func (k *VMM) emulateCHM(vm *VM, info *vax.VMTrapInfo) {
	vm.Stats.CHMs++
	if vm.rec != nil {
		vm.rec.Record(trace.EvCHM, k.CPU.Cycles, info.Operands[0])
	}
	k.charge(cpu.CostVMMCHM)
	k.noteProgress(vm)
	code := info.Operands[0]
	target := vax.Mode(info.Operands[1])
	newMode := target
	if info.GuestPSL.Cur().MorePrivileged(target) {
		newMode = info.GuestPSL.Cur()
	}
	k.deliverToVM(vm, vax.CHMVector(target), []uint32{code}, info.NextPC, newMode, -1)
}

// emulateREI performs the software bulk of REI for the VM
// (Section 4.2.3): pop and validate the new PSL, compress its modes,
// switch stacks, and deliver any virtual interrupt that became
// deliverable.
func (k *VMM) emulateREI(vm *VM, info *vax.VMTrapInfo) {
	vm.Stats.REIs++
	c := k.CPU
	if vm.rec != nil {
		vm.rec.Record(trace.EvREI, c.Cycles, info.NextPC)
	}
	k.charge(cpu.CostVMMREI)
	cur := info.GuestPSL.Cur()

	sp := c.SP()
	newPC, gf := k.guestRead(vm, sp, cur)
	if gf == nil && !vm.halted {
		var raw uint32
		raw, gf = k.guestRead(vm, sp+4, cur)
		if gf == nil && !vm.halted {
			newPSL := vax.PSL(raw)
			if bad := checkGuestREI(vm, info.GuestPSL, newPSL); bad != nil {
				k.resumeVM(vm)
				k.reflect(vm, bad)
				return
			}
			// Commit: consume the two longwords and switch contexts.
			c.SetSP(sp + 8)
			k.saveGuestSP(vm)
			c.VMPSL = vax.PSL(0).WithCur(newPSL.Cur()).WithPrv(newPSL.Prv()).WithIPL(newPSL.IPL())
			if newPSL.IS() {
				c.VMPSL = vax.PSL(uint32(c.VMPSL) | vax.PSLIS)
			}
			real := vax.PSL(uint32(newPSL) & 0xFF).
				WithCur(compressMode(newPSL.Cur())).
				WithPrv(compressMode(newPSL.Prv())).
				WithVM(true)
			c.SetPSL(real)
			c.SetSP(k.guestSP(vm))
			c.SetPC(newPC)
			// Dropping IPL may make a virtual interrupt deliverable.
			k.deliverPendingIRQs(vm)
			return
		}
	}
	if vm.halted {
		return
	}
	k.resumeVM(vm)
	k.reflect(vm, gf)
}

// checkGuestREI applies the REI sanity rules to the VM's own PSL image.
func checkGuestREI(vm *VM, cur, n vax.PSL) *guestFault {
	switch {
	case uint32(n)&(vax.PSLMBZ|vax.PSLVM) != 0,
		n.Cur().MorePrivileged(cur.Cur()),
		n.Prv().MorePrivileged(n.Cur()),
		n.IS() && !cur.IS(),
		n.IS() && n.Cur() != vax.Kernel,
		n.IPL() > 0 && n.Cur() != vax.Kernel,
		n.IPL() > cur.IPL():
		return vm.rsvdOperandFault()
	}
	return nil
}

// emulateWAIT implements the idle handshake (Section 5): the VM gives
// up the processor until a virtual interrupt is pending or the timeout
// elapses.
func (k *VMM) emulateWAIT(vm *VM, info *vax.VMTrapInfo) {
	vm.Stats.Waits++
	if vm.rec != nil {
		vm.rec.Record(trace.EvSchedPark, k.CPU.Cycles, info.NextPC)
	}
	k.noteProgress(vm)
	vm.waiting = true
	vm.waitDeadline = k.Stats.ClockTicks + k.cfg.WaitTimeout
	vm.pc = info.NextPC
	k.CPU.SetPC(info.NextPC)
	k.scheduleNext()
}

// emulatePROBE completes a PROBE whose shadow PTE was invalid
// (Section 4.3.2): the VMM updates the shadow page table from the VM's
// page table and computes the accessibility result itself.
func (k *VMM) emulatePROBE(vm *VM, info *vax.VMTrapInfo) {
	vm.Stats.ProbeFills++
	c := k.CPU
	modeOp := vax.Mode(info.Operands[0] & 3)
	length := info.Operands[1]
	base := info.Operands[2]
	if length == 0 {
		length = 1
	}
	write := info.Opcode == vax.OpPROBEW
	probeMode := vax.LeastPrivileged(modeOp, info.GuestPSL.Prv())

	accessible := true
	for _, va := range []uint32{base, base + length - 1} {
		// Fill the shadow as a side effect so the next PROBE or access
		// of this page goes through without a trap.
		gpte, gf := k.guestPTE(vm, va, false)
		if vm.halted {
			return
		}
		if gf != nil {
			accessible = false
			continue
		}
		if gpte.Valid() && !gpte.Prot().Reserved() {
			_ = k.fillShadow(vm, va, false)
			if vm.halted {
				return
			}
		}
		// The VM's view: its own (uncompressed) protection code.
		prot := gpte.Prot()
		ok := prot.CanRead(probeMode)
		if write {
			ok = prot.CanWrite(probeMode)
		}
		if !ok {
			accessible = false
		}
	}
	// Complete the instruction: set Z (not accessible), clear N and V,
	// and continue past the PROBE.
	p := uint32(c.PSL()) &^ (vax.PSLN | vax.PSLZ | vax.PSLV)
	if !accessible {
		p |= vax.PSLZ
	}
	c.SetPSL(vax.PSL(p).WithVM(true))
	c.SetPC(info.NextPC)
}

// emulateLDPCTX loads a guest process context from the VM's PCB,
// including the address-space switch through the shadow machinery.
func (k *VMM) emulateLDPCTX(vm *VM, info *vax.VMTrapInfo) {
	c := k.CPU
	k.charge(cpu.CostVMMContextSwitch)
	rd := func(off uint32) (uint32, bool) { return vm.readPhys(vm.pcbb + off) }

	// The PCB image is staged in a per-VM scratch array: LDPCTX runs on
	// every guest context switch and must not allocate.
	vals := vm.pcb[:]
	for i := range vals {
		v, ok := rd(uint32(4 * i))
		if !ok {
			k.haltVM(vm, "PCB outside VM memory")
			return
		}
		vals[i] = v
	}
	vm.SPs[vax.Kernel] = vals[cpu.PCBKSP/4]
	vm.SPs[vax.Executive] = vals[cpu.PCBESP/4]
	vm.SPs[vax.Supervisor] = vals[cpu.PCBSSP/4]
	vm.SPs[vax.User] = vals[cpu.PCBUSP/4]
	for i := 0; i < 12; i++ {
		c.R[i] = vals[cpu.PCBR0/4+i]
	}
	c.R[cpu.RegAP] = vals[cpu.PCBAP/4]
	c.R[cpu.RegFP] = vals[cpu.PCBFP/4]
	newP1BR := vals[cpu.PCBP1BR/4]
	if newP1BR != vm.p1br {
		// Per-process P1 space: the single shadow P1 table must drop
		// the previous process's translations.
		vm.p1br = newP1BR
		if err := vm.shadow.clearP1(k); err != nil {
			k.haltVM(vm, err.Error())
			return
		}
	}
	vm.p1lr = vals[cpu.PCBP1LR/4]
	vm.p0lr = vals[cpu.PCBP0LR/4]
	newP0BR := vals[cpu.PCBP0BR/4]
	if newP0BR != vm.p0br {
		vm.p0br = newP0BR
		if err := vm.shadow.switchProcess(k, newP0BR); err != nil {
			k.haltVM(vm, "shadow switch failed: "+err.Error())
			return
		}
	} else {
		vm.shadow.activate(c)
	}

	// Push the PCB's PC/PSL on the guest kernel stack for the REI.
	sp := vm.SPs[vax.Kernel]
	pushPSL, pushPC := vals[cpu.PCBPSL/4], vals[cpu.PCBPC/4]
	for _, v := range []uint32{pushPSL, pushPC} {
		sp -= 4
		if gf := k.guestWrite(vm, sp, v, vax.Kernel); gf != nil || vm.halted {
			k.haltVM(vm, "kernel stack not valid in LDPCTX")
			return
		}
	}
	vm.SPs[vax.Kernel] = sp
	if c.VMPSL.Cur() == vax.Kernel && !c.VMPSL.IS() {
		c.SetSP(sp)
	}
	c.SetPC(info.NextPC)
	k.resumeVM(vm)
}

// emulateSVPCTX saves the guest process context into the VM's PCB.
func (k *VMM) emulateSVPCTX(vm *VM, info *vax.VMTrapInfo) {
	c := k.CPU
	k.charge(cpu.CostVMMContextSwitch)
	// Pop the resume PC/PSL from the guest kernel stack.
	k.saveGuestSP(vm)
	sp := vm.SPs[vax.Kernel]
	pc, gf := k.guestRead(vm, sp, vax.Kernel)
	if gf != nil || vm.halted {
		k.haltVM(vm, "kernel stack not valid in SVPCTX")
		return
	}
	psl, gf := k.guestRead(vm, sp+4, vax.Kernel)
	if gf != nil || vm.halted {
		k.haltVM(vm, "kernel stack not valid in SVPCTX")
		return
	}
	vm.SPs[vax.Kernel] = sp + 8

	wr := func(off uint32, v uint32) bool { return vm.writePhys(vm.pcbb+off, v) }
	ok := wr(cpu.PCBKSP, vm.SPs[vax.Kernel]) &&
		wr(cpu.PCBESP, vm.SPs[vax.Executive]) &&
		wr(cpu.PCBSSP, vm.SPs[vax.Supervisor]) &&
		wr(cpu.PCBUSP, vm.SPs[vax.User]) &&
		wr(cpu.PCBPC, pc) && wr(cpu.PCBPSL, psl) &&
		wr(cpu.PCBP0BR, vm.p0br) && wr(cpu.PCBP0LR, vm.p0lr) &&
		wr(cpu.PCBP1BR, vm.p1br) && wr(cpu.PCBP1LR, vm.p1lr) &&
		wr(cpu.PCBAP, c.R[cpu.RegAP]) && wr(cpu.PCBFP, c.R[cpu.RegFP])
	for i := 0; ok && i < 12; i++ {
		ok = wr(cpu.PCBR0+uint32(4*i), c.R[i])
	}
	if !ok {
		k.haltVM(vm, "PCB outside VM memory")
		return
	}
	if c.VMPSL.Cur() == vax.Kernel && !c.VMPSL.IS() {
		c.SetSP(vm.SPs[vax.Kernel])
	}
	k.noteProgress(vm)
	c.SetPC(info.NextPC)
	k.resumeVM(vm)
}
