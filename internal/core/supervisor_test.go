package core

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/vax"
)

// flagGuest is the recovery workhorse: it burns a few ticks (so a
// checkpoint generation exists before anything interesting happens),
// reads its durable flag from disk block 7, and — first life — writes
// the flag and spins without progress events until the watchdog kills
// it. The disk does not roll back with the VM, so the recovered guest
// finds the flag, prints 'R' and halts cleanly: completion is the
// proof that recovery restored it to a useful earlier state.
const flagGuest = `
start:	mtpr #31, #18        ; mask virtual IRQs (no disk handler)
	movl #8000, r11
warm:	sobgtr r11, warm     ; burn ticks: the pre-flag generation
	movl #3, r0          ; KCALL disk read block 7
	movl #7, r1
	movl #0x5000, r2
	mtpr #0, #201
	movl @#0x80005000, r3
	cmpl r3, #0x1234
	beql done
	movl #0x1234, @#0x80005000
	movl #4, r0          ; KCALL disk write block 7: set the flag
	movl #7, r1
	movl #0x5000, r2
	mtpr #0, #201
spin:	incl r5              ; no progress events: trip the watchdog
	brb spin
done:	movl #1, r0          ; print 'R'
	movl #82, r1
	mtpr #0, #201
	halt
`

func TestWatchdogRecovery(t *testing.T) {
	k, vm, _ := bootVM(t, Config{
		Watchdog:        16,
		CheckpointEvery: 3, CheckpointGenerations: 4,
		Recover: true, RecoverBudget: 8,
		Recorder: trace.NewRecorder(256),
	}, flagGuest, nil)
	k.EnableAudit(64)
	runVM(t, k, vm, 50_000_000)
	if _, msg := vm.Halted(); !strings.Contains(msg, "HALT") {
		t.Fatalf("halt reason %q, want normal HALT after recovery", msg)
	}
	if out := vm.ConsoleOutput(); out != "R" {
		t.Errorf("console %q, want %q", out, "R")
	}
	if vm.Stats.WatchdogTrips == 0 {
		t.Error("watchdog never tripped: the test exercised nothing")
	}
	if vm.Stats.Recoveries == 0 {
		t.Error("Recoveries = 0, want at least one")
	}
	if vm.Stats.Checkpoints < 2 {
		t.Errorf("Checkpoints = %d, want at least 2", vm.Stats.Checkpoints)
	}
	if vm.Stats.RecoveryEscalations != 0 {
		t.Errorf("RecoveryEscalations = %d, want 0", vm.Stats.RecoveryEscalations)
	}
	if !auditHas(k, AuditVMRecovered) {
		t.Error("no vm-recovered audit event")
	}
	if !auditHas(k, AuditCheckpoint) {
		t.Error("no checkpoint audit event")
	}
	rec := k.Recorder()
	rec.Sync()
	var sawCkpt, sawRecover bool
	for _, v := range rec.VMs() {
		for _, e := range v.Events(0) {
			switch e.Kind {
			case trace.EvCheckpoint:
				sawCkpt = true
			case trace.EvRecover:
				sawRecover = true
			}
		}
	}
	if !sawCkpt || !sawRecover {
		t.Errorf("trace events checkpoint=%v recover=%v, want both", sawCkpt, sawRecover)
	}
}

func TestHandlerlessMCheckRecovery(t *testing.T) {
	// A victim with no machine-check vector reads 8 blocks while a fault
	// plan injects permanent disk errors. Each error is a handler-less
	// machine check — fatal without the supervisor (see
	// TestMachineCheckNoHandlerHaltsVM) — but with recovery armed the VM
	// rolls back to a mid-loop checkpoint and finishes all 8 reads. The
	// seed is fixed; the injection sequence depends only on operation
	// count, so the run is deterministic.
	victim := `
start:	mtpr #31, #18
	clrl r9
vloop:	movl #2000, r10
slow:	sobgtr r10, slow     ; ~1 tick per iteration: checkpoints interleave
	movl #3, r0
	movl r9, r1
	movl #0x5000, r2
	mtpr #0, #201
	incl r9
	cmpl r9, #8
	blss vloop
	movl #1, r0          ; print 'D'
	movl #68, r1
	mtpr #0, #201
	halt
`
	k, vm, _ := bootVM(t, Config{
		CheckpointEvery: 2, CheckpointGenerations: 4,
		Recover: true, RecoverBudget: 16,
	}, victim, nil)
	k.EnableAudit(64)
	k.AttachFaults(fault.New(3, fault.Config{TargetVM: 0, PermanentDiskRate: 0.25}))
	runVM(t, k, vm, 50_000_000)
	if _, msg := vm.Halted(); !strings.Contains(msg, "HALT") {
		t.Fatalf("halt reason %q, want normal HALT after recovery", msg)
	}
	if out := vm.ConsoleOutput(); out != "D" {
		t.Errorf("console %q, want %q (printed once, after the loop)", out, "D")
	}
	if vm.Stats.MachineChecks == 0 {
		t.Error("no machine checks: the fault plan injected nothing")
	}
	if vm.Stats.Recoveries == 0 {
		t.Error("Recoveries = 0, want at least one")
	}
	if vm.Stats.RecoveryEscalations != 0 {
		t.Errorf("RecoveryEscalations = %d, want 0", vm.Stats.RecoveryEscalations)
	}
	if !auditHas(k, AuditVMRecovered) {
		t.Error("no vm-recovered audit event")
	}
}

func TestRecoveryFallbackOnCorruptGeneration(t *testing.T) {
	// The fault plan poisons the newest generation at recovery time: the
	// supervisor must reject it (CRC) without panicking, fall back to
	// the older generation, and still bring the guest to completion.
	k, vm, _ := bootVM(t, Config{
		Watchdog:        16,
		CheckpointEvery: 3, CheckpointGenerations: 4,
		Recover: true, RecoverBudget: 8,
	}, flagGuest, nil)
	k.EnableAudit(64)
	inj := fault.New(5, fault.Config{TargetVM: 0, CkptCorruptions: 1})
	k.AttachFaults(inj)
	runVM(t, k, vm, 50_000_000)
	if _, msg := vm.Halted(); !strings.Contains(msg, "HALT") {
		t.Fatalf("halt reason %q, want normal HALT after fallback recovery", msg)
	}
	if out := vm.ConsoleOutput(); out != "R" {
		t.Errorf("console %q, want %q", out, "R")
	}
	if vm.Stats.RecoveryFallbacks == 0 {
		t.Error("RecoveryFallbacks = 0: the corrupted generation was not rejected")
	}
	if inj.Stats.CkptCorruptions != 1 {
		t.Errorf("injected ckpt corruptions = %d, want 1", inj.Stats.CkptCorruptions)
	}
	if !auditHas(k, AuditRecoveryFallback) {
		t.Error("no recovery-fallback audit event")
	}
	if !auditHas(k, AuditFaultInjected) {
		t.Error("no fault-injected audit event")
	}
	if !auditHas(k, AuditVMRecovered) {
		t.Error("no vm-recovered audit event")
	}
}

func TestRecoveryEscalation(t *testing.T) {
	// A pure runaway never earns progress, so every restored generation
	// spins straight back into the watchdog. With a budget of 1 the
	// second death must escalate to a permanent halt — and the machine
	// must return from Run rather than retry forever. A healthy
	// neighbor's completion shows the machine moved on.
	runaway := `
start:	incl r5
	brb start
`
	worker := `
start:	movl #10, r10
outer:	movl #300, r11
inner:	sobgtr r11, inner
	movl #1, r0
	movl #119, r1        ; 'w'
	mtpr #0, #201
	sobgtr r10, outer
	halt
`
	k, vmR, _ := bootVM(t, Config{
		Watchdog:        4,
		CheckpointEvery: 2, CheckpointGenerations: 2,
		Recover: true, RecoverBudget: 1,
	}, runaway, nil)
	k.EnableAudit(64)
	imgW, progW := guestImage(t, worker, nil)
	vmW, err := k.CreateVM(VMConfig{MemBytes: gMemSize, Image: imgW,
		StartPC: progW.MustSymbol("start"), PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB})
	if err != nil {
		t.Fatal(err)
	}
	vmW.SPs[vax.Kernel] = gKSP
	k.Run(50_000_000)
	if _, msg := vmR.Halted(); !strings.Contains(msg, "watchdog") {
		t.Errorf("runaway halt reason %q, want watchdog", msg)
	}
	if vmR.Stats.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want exactly the budget (1)", vmR.Stats.Recoveries)
	}
	if vmR.Stats.RecoveryEscalations != 1 {
		t.Errorf("RecoveryEscalations = %d, want 1", vmR.Stats.RecoveryEscalations)
	}
	if !auditHas(k, AuditRecoveryEscalated) {
		t.Error("no recovery-escalated audit event")
	}
	// Escalation released the shadow frames: further recovery must refuse.
	if err := k.RecoverNow(vmR); err == nil {
		t.Error("RecoverNow after escalation succeeded, want permanent-halt error")
	}
	if _, msg := vmW.Halted(); !strings.Contains(msg, "HALT") {
		t.Errorf("worker halt reason %q, want normal HALT", msg)
	}
	if out := vmW.ConsoleOutput(); out != strings.Repeat("w", 10) {
		t.Errorf("worker console %q", out)
	}
}

func TestRecoverUnderParallel(t *testing.T) {
	// Three flag-guests die by watchdog and recover on their shards
	// while a fourth healthy worker runs; the M:N engine must restore
	// them in place (ClearHalt on the shard CPU, WAIT/decode state
	// rebuilt) and every VM must complete. Watchdog, checkpoints and
	// recovery all key off each VM's own virtual clock, so per-VM
	// behavior is deterministic whatever the interleaving.
	worker := `
start:	movl #10, r10
outer:	movl #300, r11
inner:	sobgtr r11, inner
	movl #1, r0
	movl #119, r1        ; 'w'
	mtpr #0, #201
	sobgtr r10, outer
	halt
`
	k, vm0, _ := bootVM(t, Config{
		Workers:         2,
		Watchdog:        16,
		CheckpointEvery: 3, CheckpointGenerations: 4,
		Recover: true, RecoverBudget: 8,
	}, flagGuest, nil)
	k.EnableAudit(256)
	victims := []*VM{vm0}
	imgV, progV := guestImage(t, flagGuest, nil)
	for i := 0; i < 2; i++ {
		vm, err := k.CreateVM(VMConfig{MemBytes: gMemSize, Image: imgV,
			StartPC: progV.MustSymbol("start"), PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB})
		if err != nil {
			t.Fatal(err)
		}
		vm.SPs[vax.Kernel] = gKSP
		victims = append(victims, vm)
	}
	imgW, progW := guestImage(t, worker, nil)
	vmW, err := k.CreateVM(VMConfig{MemBytes: gMemSize, Image: imgW,
		StartPC: progW.MustSymbol("start"), PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB})
	if err != nil {
		t.Fatal(err)
	}
	vmW.SPs[vax.Kernel] = gKSP

	k.Run(100_000_000)

	for i, vm := range victims {
		if h, msg := vm.Halted(); !h || !strings.Contains(msg, "HALT") {
			t.Errorf("victim %d: halted=%v reason %q, want normal HALT", i, h, msg)
		}
		if out := vm.ConsoleOutput(); out != "R" {
			t.Errorf("victim %d console %q, want %q", i, out, "R")
		}
		if vm.Stats.Recoveries == 0 {
			t.Errorf("victim %d: Recoveries = 0", i)
		}
	}
	if _, msg := vmW.Halted(); !strings.Contains(msg, "HALT") {
		t.Errorf("worker halt reason %q, want normal HALT", msg)
	}
	if out := vmW.ConsoleOutput(); out != strings.Repeat("w", 10) {
		t.Errorf("worker console %q", out)
	}
	pr := k.LastParallelRun()
	if pr.Recoveries < 3 {
		t.Errorf("parallel-run Recoveries = %d, want >= 3", pr.Recoveries)
	}
	if pr.Checkpoints == 0 {
		t.Error("parallel-run Checkpoints = 0")
	}
}

func TestRestoreRebasesWaitDeadline(t *testing.T) {
	// Checkpoint a VM mid-WAIT; long after the original absolute
	// deadline has passed, recovery restores that generation. The
	// restored deadline must be remaining-ticks from the restore point —
	// an un-rebased (absolute) deadline would be in the past and wake
	// the guest immediately.
	waiter := `
start:	wait
spin:	incl r5              ; after the wake: die by watchdog
	brb spin
`
	spinner := `
start:	movl #60000, r11
spin:	sobgtr r11, spin
	halt
`
	k, vmWait, _ := bootVM(t, Config{
		WaitTimeout: 40, Watchdog: 8,
		Recover: true, RecoverBudget: 1,
	}, waiter, nil)
	k.EnableAudit(64)
	imgS, progS := guestImage(t, spinner, nil)
	vmS, err := k.CreateVM(VMConfig{MemBytes: gMemSize, Image: imgS,
		StartPC: progS.MustSymbol("start"), PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB})
	if err != nil {
		t.Fatal(err)
	}
	vmS.SPs[vax.Kernel] = gKSP

	// Run until the waiter is parked in WAIT but far from its deadline
	// (the spinner keeps the machine busy), then put the mid-WAIT state
	// into the checkpoint ring.
	k.Run(2000)
	if !vmWait.waiting {
		t.Fatal("waiter is not in WAIT at checkpoint time")
	}
	if err := k.CheckpointNow(vmWait); err != nil {
		t.Fatal(err)
	}
	remain := vmWait.waitDeadline - k.Stats.ClockTicks
	if remain < 20 {
		t.Fatalf("only %d ticks remain at checkpoint; test assumes a distant deadline", remain)
	}

	// The waiter wakes at its deadline, spins, trips the watchdog, and
	// recovery restores the mid-WAIT generation; the second wake must
	// come ~remain ticks later, after which the second trip exhausts
	// the budget and the run ends.
	k.Run(100_000_000)
	if _, msg := vmWait.Halted(); !strings.Contains(msg, "watchdog") {
		t.Fatalf("waiter halt reason %q, want watchdog", msg)
	}
	if vmWait.Stats.Recoveries != 1 || vmWait.Stats.RecoveryEscalations != 1 {
		t.Fatalf("Recoveries=%d Escalations=%d, want 1/1",
			vmWait.Stats.Recoveries, vmWait.Stats.RecoveryEscalations)
	}
	var recoverCycle uint64
	for _, e := range k.AuditTrail() {
		if e.Kind == AuditVMRecovered {
			recoverCycle = e.Cycle
		}
	}
	if recoverCycle == 0 {
		t.Fatal("no vm-recovered audit event")
	}
	period := uint64(k.Config().ClockPeriod)
	wokeTicks := (vmWait.HaltCycles() - recoverCycle) / period
	if wokeTicks < remain {
		t.Errorf("restored waiter died %d ticks after recovery, want >= the %d remaining at checkpoint (deadline not rebased?)",
			wokeTicks, remain)
	}
	if wokeTicks > remain+16 {
		t.Errorf("restored waiter died %d ticks after recovery, want about %d remaining + the 8-tick watchdog", wokeTicks, remain)
	}
}

func TestRestoreInvalidatesDecodeCache(t *testing.T) {
	// The checkpoint holds `movl #1, r6`; after the checkpoint the host
	// patches the literal to 2 and the guest executes the patched
	// instruction (populating the decode cache with it). Rolling back
	// must restore the old bytes AND drop the cached decode — a stale
	// cache would execute the patched instruction from pre-rollback.
	// The guest prints the digit it computed ('1' unpatched, '2'
	// patched) — console output survives the rollback, so it records
	// which bytes each life executed. The patched life spins into the
	// watchdog; the restored life halts cleanly.
	k, vm, prog := bootVM(t, Config{
		Watchdog: 8, Recover: true, RecoverBudget: 4,
	}, `
start:	mtpr #31, #18
	movl #6000, r11
warm:	sobgtr r11, warm
patch:	movl #1, r6
	cmpl r6, #2
	beql two
	movl #49, r1         ; '1'
	brb put
two:	movl #50, r1         ; '2'
put:	movl #1, r0
	mtpr #0, #201
	cmpl r6, #2
	beql spin
	halt
spin:	incl r5              ; patched path: die by watchdog
	brb spin
`, nil)
	k.Run(50) // inside the warmup spin, before the patch site executes
	if h, _ := vm.Halted(); h {
		t.Fatal("guest finished before the checkpoint")
	}
	if err := k.CheckpointNow(vm); err != nil {
		t.Fatal(err)
	}

	// Patch the short literal at patch+1 from 1 to 2.
	patchPhys := prog.MustSymbol("patch") - vax.SystemBase
	host, ok := vm.hostAddr(patchPhys, 4)
	if !ok {
		t.Fatal("hostAddr failed")
	}
	old, err := k.Mem.LoadLong(host)
	if err != nil {
		t.Fatal(err)
	}
	if byte(old>>8) != 0x01 {
		t.Fatalf("unexpected encoding %#x at patch site, want literal 0x01 in byte 1", old)
	}
	if err := k.Mem.StoreLong(host, old&^uint32(0xFF00)|0x0200); err != nil {
		t.Fatal(err)
	}
	runVM(t, k, vm, 50_000_000)
	if _, msg := vm.Halted(); !strings.Contains(msg, "HALT") {
		t.Fatalf("halt reason %q, want clean HALT from the restored life", msg)
	}
	if out := vm.ConsoleOutput(); out != "21" {
		t.Errorf("console %q, want %q (patched life then restored life)", out, "21")
	}
	if k.CPU.R[6] != 1 {
		t.Errorf("restored guest set R6=%d, want 1 (stale decode cache?)", k.CPU.R[6])
	}
	if vm.Stats.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", vm.Stats.Recoveries)
	}
}

func TestCheckpointStreamRoundTripNewVM(t *testing.T) {
	// WriteCheckpoint → ReadCheckpoint builds a second, equivalent VM in
	// the same monitor: the externalized stream is complete.
	k, vm, _ := bootVM(t, Config{}, `
start:	movl #1, r0          ; print 'a'
	movl #97, r1
	mtpr #0, #201
	movl #0x77, @#0x80005800
	movl #9000, r11
spin:	sobgtr r11, spin
	movl #1, r0          ; print 'b' (only after the spin)
	movl #98, r1
	mtpr #0, #201
	halt
`, nil)
	k.Run(200) // past the store and first print, inside the spin
	if h, _ := vm.Halted(); h {
		t.Fatal("guest finished before the checkpoint")
	}
	img, err := k.Snapshot(vm)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := k.Restore("clone", img)
	if err != nil {
		t.Fatal(err)
	}
	k.Run(0)
	for i, v := range []*VM{vm, clone} {
		if _, msg := v.Halted(); !strings.Contains(msg, "HALT") {
			t.Errorf("vm %d halt reason %q", i, msg)
		}
		if got := guestLong(t, v, 0x5800); got != 0x77 {
			t.Errorf("vm %d data word %#x, want 0x77", i, got)
		}
		if out := v.ConsoleOutput(); out != "ab" {
			t.Errorf("vm %d console %q, want %q", i, out, "ab")
		}
	}
}
