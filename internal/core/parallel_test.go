package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/vax"
)

// Guest programs for the engine tests: pure compute, KCALL disk I/O
// with a completion handler, virtual-timer interrupts, and an idle
// WAIT loop — the workload mix the scheduler must keep live under both
// engines.

const parComputeSrc = `
start:	incl r6
	cmpl r6, #20000
	blss start
	halt
`

const parIOSrc = `
start:	movl #4, r10
outer:	clrl r11
inner:	movl #3, r0          ; KCALL disk read
	movl r11, r1
	movl #0x5000, r2
	mtpr #0, #201
	movl #4, r0          ; KCALL disk write
	movl r11, r1
	movl #0x5000, r2
	mtpr #0, #201
	incl r11
	cmpl r11, #8
	blss inner
	sobgtr r10, outer
	halt
	.align 4
dskh:	rei
`

const parTimerSrc = `
start:	mtpr #0x41, #24      ; virtual clock: run + interrupt enable
loop:	cmpl r9, #3
	blss loop
	halt
	.align 4
clkh:	mtpr #0xC1, #24      ; acknowledge, keep run+IE
	incl r9
	rei
`

const parWaitSrc = `
start:	movl #3, r10
loop:	wait
	sobgtr r10, loop
	halt
`

// parIdleUntilIRQSrc waits until an externally posted disk interrupt
// flips r7, then halts — the park/unpark handshake under test.
const parIdleUntilIRQSrc = `
start:	tstl r7
	bneq done
	wait
	brb start
done:	halt
	.align 4
dskh:	incl r7
	rei
`

// addTestVM creates one pre-mapped VM running src on k.
func addTestVM(t *testing.T, k *VMM, name, src string, vectors map[vax.Vector]string) *VM {
	t.Helper()
	img, prog := guestImage(t, src, vectors)
	vm, err := k.CreateVM(VMConfig{
		Name: name, MemBytes: gMemSize, Image: img,
		StartPC:   prog.MustSymbol("start"),
		PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm.SPs[vax.Kernel] = gKSP
	vm.ISP = gISP
	return vm
}

// mixedFleet builds the standard 4-VM mixed workload on a fresh VMM.
func mixedFleet(t *testing.T, cfg Config) (*VMM, []*VM) {
	t.Helper()
	k := New(16<<20, cfg)
	vms := []*VM{
		addTestVM(t, k, "compute", parComputeSrc, nil),
		addTestVM(t, k, "io", parIOSrc, map[vax.Vector]string{vax.VecDisk: "dskh"}),
		addTestVM(t, k, "timer", parTimerSrc, map[vax.Vector]string{vax.VecClock: "clkh"}),
		addTestVM(t, k, "waiter", parWaitSrc, nil),
	}
	return k, vms
}

func assertAllHaltedNormally(t *testing.T, vms []*VM) {
	t.Helper()
	for _, vm := range vms {
		if h, msg := vm.Halted(); !h {
			t.Errorf("%s did not halt", vm.Name())
		} else if !strings.Contains(msg, "HALT") {
			t.Errorf("%s halted abnormally: %s", vm.Name(), msg)
		}
	}
}

// TestSerialFairnessMixedWorkloads is the serial-engine liveness half:
// compute, I/O, timer and WAIT guests all finish under round robin.
func TestSerialFairnessMixedWorkloads(t *testing.T) {
	k, vms := mixedFleet(t, Config{WaitTimeout: 2})
	k.Run(10_000_000)
	assertAllHaltedNormally(t, vms)
	if vms[3].Stats.Waits != 3 {
		t.Errorf("waiter Waits = %d, want 3", vms[3].Stats.Waits)
	}
}

// TestParallelMixedWorkloadConcurrent runs 4 VMs concurrently through
// compute, disk I/O, virtual-timer interrupts and WAIT, with host-side
// console and mailbox traffic in flight — the race-detector workout
// for the sharded engine.
func TestParallelMixedWorkloadConcurrent(t *testing.T) {
	k, vms := mixedFleet(t, Config{WaitTimeout: 2, Workers: 4})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Host-side traffic against running VMs: console feeds and
		// reads, plus external interrupt posts into the mailbox.
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, vm := range vms {
				vm.FeedConsole("x")
				_ = vm.ConsoleOutput()
			}
			vms[1].PostIRQ(vax.IPLDisk, vax.VecDisk) // io VM has a disk handler
			time.Sleep(100 * time.Microsecond)
		}
	}()

	steps := k.Run(10_000_000) // dispatches to the parallel engine
	close(stop)
	wg.Wait()

	assertAllHaltedNormally(t, vms)
	if steps == 0 {
		t.Error("parallel run reported no steps")
	}
	pr := k.LastParallelRun()
	if pr.VMs != 4 || pr.Workers != 4 {
		t.Errorf("LastParallelRun = %+v, want 4 VMs on 4 workers", pr)
	}
	if pr.Instrs == 0 {
		t.Error("no guest instructions accounted")
	}
}

// TestParallelFairnessFewerWorkers runs 6 VMs on 2 workers: the
// semaphore quantum rotation must let every VM finish.
func TestParallelFairnessFewerWorkers(t *testing.T) {
	k := New(24<<20, Config{WaitTimeout: 2, Workers: 2})
	var vms []*VM
	for i := 0; i < 3; i++ {
		vms = append(vms, addTestVM(t, k, "", parComputeSrc, nil))
		vms = append(vms, addTestVM(t, k, "", parWaitSrc, nil))
	}
	k.Run(10_000_000)
	assertAllHaltedNormally(t, vms)
	if pr := k.LastParallelRun(); pr.Workers != 2 || pr.VMs != 6 {
		t.Errorf("LastParallelRun = %+v, want 6 VMs on 2 workers", pr)
	}
}

// TestAllWaitingIdleWakeSerial: every VM WAITs with nothing pending;
// the serial machine idles to the timeout and all of them finish.
func TestAllWaitingIdleWakeSerial(t *testing.T) {
	k := New(16<<20, Config{WaitTimeout: 2})
	vms := []*VM{
		addTestVM(t, k, "", parWaitSrc, nil),
		addTestVM(t, k, "", parWaitSrc, nil),
		addTestVM(t, k, "", parWaitSrc, nil),
	}
	k.Run(10_000_000)
	assertAllHaltedNormally(t, vms)
}

// TestAllWaitingIdleWakeParallel: the same all-idle fleet under the
// parallel engine. Workers park; the last one awake must wake the
// fleet so WAIT timeouts keep advancing (no deadlock, no lost wakeup).
func TestAllWaitingIdleWakeParallel(t *testing.T) {
	k := New(16<<20, Config{WaitTimeout: 2, Workers: 3})
	vms := []*VM{
		addTestVM(t, k, "", parWaitSrc, nil),
		addTestVM(t, k, "", parWaitSrc, nil),
		addTestVM(t, k, "", parWaitSrc, nil),
	}
	k.Run(10_000_000)
	assertAllHaltedNormally(t, vms)
}

// TestExternalPostIRQWakesParkedWorker: a guest that WAITs until an
// interrupt arrives parks its worker; a host-side PostIRQ must unpark
// it and get the interrupt delivered.
func TestExternalPostIRQWakesParkedWorker(t *testing.T) {
	k := New(16<<20, Config{Workers: 2})
	idle := addTestVM(t, k, "idle", parIdleUntilIRQSrc,
		map[vax.Vector]string{vax.VecDisk: "dskh"})
	compute := addTestVM(t, k, "compute", parComputeSrc, nil)

	done := make(chan struct{})
	go func() {
		defer close(done)
		k.Run(50_000_000)
	}()
	// Let the idle guest reach its parked WAIT, then post the interrupt.
	time.Sleep(20 * time.Millisecond)
	idle.PostIRQ(vax.IPLDisk, vax.VecDisk)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("parallel run did not finish after external post")
	}
	assertAllHaltedNormally(t, []*VM{idle, compute})
	if idle.Stats.VirtualIRQs == 0 {
		t.Error("idle VM never saw the posted interrupt")
	}
}

// TestParallelMatchesSerialResults: the same compute images produce
// the same guest-visible results under both engines.
func TestParallelMatchesSerialResults(t *testing.T) {
	src := `
start:	clrl r6
	movl #1000, r7
loop:	addl2 #7, r6
	sobgtr r7, loop
	movl r6, @#0x80006000
	halt
`
	run := func(workers int) uint32 {
		k := New(16<<20, Config{Workers: workers})
		vms := []*VM{
			addTestVM(t, k, "", src, nil),
			addTestVM(t, k, "", src, nil),
			addTestVM(t, k, "", src, nil),
			addTestVM(t, k, "", src, nil),
		}
		k.Run(5_000_000)
		assertAllHaltedNormally(t, vms)
		v := guestLong(t, vms[0], 0x6000)
		for _, vm := range vms[1:] {
			if got := guestLong(t, vm, 0x6000); got != v {
				t.Errorf("workers=%d: VM result %d != %d", workers, got, v)
			}
		}
		return v
	}
	serial := run(1)
	parallel := run(4)
	if serial != parallel {
		t.Errorf("serial result %d != parallel result %d", serial, parallel)
	}
	if serial != 7000 {
		t.Errorf("guest computed %d, want 7000", serial)
	}
}

// TestVMMCyclesBucket: with the attribution fix, tick housekeeping and
// world-switch overhead land in the VMM bucket, and the per-VM
// accounts plus the bucket never exceed machine time.
func TestVMMCyclesBucket(t *testing.T) {
	k, vms := mixedFleet(t, Config{WaitTimeout: 2})
	k.Run(10_000_000)
	assertAllHaltedNormally(t, vms)
	if k.VMMCycles() == 0 {
		t.Error("VMMCycles = 0; switch and tick overhead went unattributed")
	}
	var used uint64
	for _, vm := range vms {
		used += vm.CyclesUsed()
	}
	if total := used + k.VMMCycles(); total > k.CPU.Cycles {
		t.Errorf("per-VM cycles %d + VMM bucket %d = %d exceed machine cycles %d",
			used, k.VMMCycles(), total, k.CPU.Cycles)
	}
}

// TestAuditTrailParallel: events recorded by concurrent shards surface
// in the merged trail, ordered by the global sequence.
func TestAuditTrailParallel(t *testing.T) {
	k := New(16<<20, Config{Workers: 4})
	k.EnableAudit(1024)
	vms := []*VM{
		addTestVM(t, k, "", parComputeSrc, nil),
		addTestVM(t, k, "", parComputeSrc, nil),
		addTestVM(t, k, "", parWaitSrc, nil),
		addTestVM(t, k, "", parWaitSrc, nil),
	}
	k.Run(10_000_000)
	assertAllHaltedNormally(t, vms)
	trail := k.AuditTrail()
	if len(trail) == 0 {
		t.Fatal("no audit events recorded")
	}
	seen := map[int]bool{}
	for i, e := range trail {
		seen[e.VM] = true
		if i > 0 && trail[i-1].Seq > e.Seq {
			t.Fatalf("trail out of sequence at %d: %d after %d", i, e.Seq, trail[i-1].Seq)
		}
	}
	for _, vm := range vms {
		if !seen[vm.ID] {
			t.Errorf("no audit events from vm%d", vm.ID)
		}
	}
}

// TestSerialEngineStaysDefault: without Workers the engine never goes
// parallel, even with many VMs (the determinism guarantee).
func TestSerialEngineStaysDefault(t *testing.T) {
	k, vms := mixedFleet(t, Config{WaitTimeout: 2})
	k.Run(10_000_000)
	assertAllHaltedNormally(t, vms)
	if pr := k.LastParallelRun(); pr.VMs != 0 {
		t.Errorf("serial config used the parallel engine: %+v", pr)
	}
}

// parChurnSrc needs four separately delivered disk interrupts before
// it halts, parking between each — the repeated park/post/wake cycle
// the churn test hammers.
const parChurnSrc = `
start:	cmpl r7, #4
	bgeq done
	wait
	brb start
done:	halt
	.align 4
dskh:	incl r7
	rei
`

// TestParkPostWakeChurn is the lost-wakeup stress: 64 VMs that each
// need four externally posted interrupts, on 4 workers, with host
// goroutines hammering PostIRQ the whole time. Every park/post
// interleaving must either see the post before parking or be unparked
// by it; a single lost wakeup leaves a VM parked with a non-empty
// mailbox forever and the run never finishes (caught by the timeout).
// Run under -race this also exercises the engine's handoff ordering.
func TestParkPostWakeChurn(t *testing.T) {
	const nVMs = 64
	k := New(16<<20, Config{Workers: 4, WaitTimeout: 4})
	vms := make([]*VM, nVMs)
	for i := range vms {
		vms[i] = addTestVM(t, k, fmt.Sprintf("churn%d", i), parChurnSrc,
			map[vax.Vector]string{vax.VecDisk: "dskh"})
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		k.Run(0)
	}()
	// Four hammers, one per stripe of the fleet, posting until the run
	// completes. Posting to an already-halted VM is a harmless no-op,
	// so the hammers need no per-VM completion tracking.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for i := g; i < nVMs; i += 4 {
					vms[i].PostIRQ(vax.IPLDisk, vax.VecDisk)
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(g)
	}
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("fleet did not finish: a VM stayed parked with a non-empty mailbox")
	}
	wg.Wait()
	assertAllHaltedNormally(t, vms)
	pr := k.LastParallelRun()
	if pr.VMs != nVMs || pr.Workers != 4 {
		t.Errorf("LastParallelRun = %d VMs on %d workers, want %d on 4", pr.VMs, pr.Workers, nVMs)
	}
	if pr.Parks == 0 {
		t.Error("no VM ever parked: the churn never exercised the park path")
	}
	if pr.Wakes == 0 {
		t.Error("no parked VM was ever woken by a post")
	}
}
