package core

import (
	"testing"

	"repro/internal/vax"
)

// White-box tests for the decomposed page allocator: the root stays
// exact (serial semantics, FreePages and OOM reporting unchanged),
// worker shards batch — spans from the bump allocator, run batches
// from the recycle pool — and everything a shard caches becomes
// visible to the root again at the merge.

// TestShardAllocSpanBatching: a shard's first small allocation carves
// a whole span from the global bump allocator; subsequent allocations
// are served from the span without touching shared state.
func TestShardAllocSpanBatching(t *testing.T) {
	k := New(16<<20, Config{})
	s := k.newWorkerShard()
	before := k.shared.nextPage
	p1, err := s.allocPages(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.shared.nextPage - before; got != allocSpanPages {
		t.Errorf("shard carved %d pages globally, want a %d-page span", got, allocSpanPages)
	}
	if s.alloc.spanLeft != allocSpanPages-2 {
		t.Errorf("spanLeft = %d, want %d", s.alloc.spanLeft, allocSpanPages-2)
	}
	p2, err := s.allocPages(2)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1+2 {
		t.Errorf("second allocation at %d, want span-contiguous %d", p2, p1+2)
	}
	if k.shared.nextPage != before+allocSpanPages {
		t.Error("span-served allocation touched the global allocator")
	}
}

// TestShardAllocSpanExhaustion: when the global free store is smaller
// than a span, the shard falls back to the exact request; a request
// larger than the free store is a precise out-of-memory error.
func TestShardAllocSpanExhaustion(t *testing.T) {
	k := New(64*1024, Config{}) // 128 pages total, page 0 reserved
	s := k.newWorkerShard()
	if _, err := k.allocPages(100); err != nil {
		t.Fatal(err)
	}
	before := k.shared.nextPage // 27 pages free, less than a span
	if _, err := s.allocPages(4); err != nil {
		t.Fatal(err)
	}
	if got := k.shared.nextPage - before; got != 4 {
		t.Errorf("exhaustion fallback carved %d pages, want exactly 4", got)
	}
	if _, err := s.allocPages(1000); err == nil {
		t.Error("over-free-store allocation did not report out of memory")
	}
	if _, err := k.allocPages(1000); err == nil {
		t.Error("root over-free-store allocation did not report out of memory")
	}
}

// TestRootAllocStaysExact: the root takes exactly what is asked, never
// grows a private cache (its allocation counts are part of the serial
// benchmarks' alloc-parity contract), and its freed runs go straight
// to the global pool where the next allocRun finds them.
func TestRootAllocStaysExact(t *testing.T) {
	k := New(16<<20, Config{})
	before := k.shared.nextPage
	p, err := k.allocPages(3)
	if err != nil {
		t.Fatal(err)
	}
	if k.shared.nextPage != before+3 {
		t.Errorf("root carved %d pages, want exactly 3", k.shared.nextPage-before)
	}
	if k.alloc.spanLeft != 0 || len(k.alloc.runs) != 0 {
		t.Error("root grew a private allocator cache")
	}
	k.freeRun(p, 3)
	if len(k.shared.pageRuns[3]) != 1 {
		t.Fatalf("root freeRun kept the run local: global pool has %d runs of 3",
			len(k.shared.pageRuns[3]))
	}
	hits := k.Stats.ShadowPoolHits
	got, err := k.allocRun(3)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("allocRun returned %d, want recycled run %d", got, p)
	}
	if k.Stats.ShadowPoolHits != hits+1 {
		t.Error("recycled run not counted as a pool hit")
	}
	if len(k.alloc.runs) != 0 {
		t.Error("root allocRun grew a private cache")
	}
}

// TestShardRunCacheSpillAndRefill: an overfull shard run cache spills
// half to the global pool; a different shard's allocRun then pulls a
// batch under one lock; and spillAllocCache (the merge barrier's call)
// makes every cached run visible to the root again.
func TestShardRunCacheSpillAndRefill(t *testing.T) {
	k := New(16<<20, Config{})
	s := k.newWorkerShard()
	var pages []uint32
	for i := 0; i < runCacheMax+4; i++ {
		p, err := k.allocPages(2)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
	}
	for _, p := range pages {
		s.freeRun(p, 2)
	}
	if n := len(s.alloc.runs[2]); n > runCacheMax {
		t.Errorf("shard cache holds %d runs, bound is %d", n, runCacheMax)
	}
	if len(k.shared.pageRuns[2]) == 0 {
		t.Error("overfull shard cache never spilled to the global pool")
	}

	s2 := k.newWorkerShard()
	globalBefore := len(k.shared.pageRuns[2])
	if _, err := s2.allocRun(2); err != nil {
		t.Fatal(err)
	}
	wantTake := min(globalBefore, runRefillBatch)
	if got := globalBefore - len(k.shared.pageRuns[2]); got != wantTake {
		t.Errorf("shard refill took %d runs from the pool, want %d", got, wantTake)
	}
	if got := len(s2.alloc.runs[2]); got != wantTake-1 {
		t.Errorf("shard stashed %d runs locally, want %d", got, wantTake-1)
	}

	cached := len(s.alloc.runs[2]) + len(s2.alloc.runs[2])
	global := len(k.shared.pageRuns[2])
	s.spillAllocCache()
	s2.spillAllocCache()
	if len(s.alloc.runs) != 0 || len(s2.alloc.runs) != 0 {
		t.Error("spillAllocCache left runs in the shard caches")
	}
	if got := len(k.shared.pageRuns[2]); got != global+cached {
		t.Errorf("global pool has %d runs after spill, want %d", got, global+cached)
	}
}

// TestHaltedVMRunsRecycledAfterParallelRun: shadow-table runs released
// by VMs halting on worker shards must reach the global pool by the
// merge barrier, so the root's next CreateVM recycles them instead of
// growing physical memory.
func TestHaltedVMRunsRecycledAfterParallelRun(t *testing.T) {
	k := New(16<<20, Config{Workers: 2, WaitTimeout: 2})
	var vms []*VM
	for i := 0; i < 4; i++ {
		vms = append(vms, addTestVM(t, k, "", parComputeSrc, nil))
	}
	k.Run(10_000_000)
	assertAllHaltedNormally(t, vms)
	if pr := k.LastParallelRun(); pr.VMs != 4 {
		t.Fatalf("parallel engine did not run: %+v", pr)
	}

	hits := k.Stats.ShadowPoolHits
	pagesBefore := k.shared.nextPage
	vm, err := k.CreateVM(VMConfig{
		Name: "recycled", MemBytes: gMemSize,
		PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if k.Stats.ShadowPoolHits == hits {
		t.Error("new VM recycled none of the halted VMs' shadow runs")
	}
	// The new VM's RAM is fresh, but its shadow tables should all come
	// from recycled runs: the bump allocator must only have grown by
	// the RAM extent.
	ramPages := uint32(gMemSize) / vax.PageSize
	if got := k.shared.nextPage - pagesBefore; got != ramPages {
		t.Errorf("CreateVM grew the bump allocator by %d pages, want %d (RAM only)",
			got, ramPages)
	}
	_ = vm
}
