package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/vax"
)

// cloneComputeSrc runs a short arithmetic loop and stores the sum: a
// deterministic guest whose final memory image is identical on every
// run, so a clone's run can be compared byte-for-byte against its
// source's.
const cloneComputeSrc = `
start:	clrl r2
	movl #2000, r11
loop:	addl2 r11, r2
	sobgtr r11, loop
	movl r2, @#0x80006000
	halt
`

// gaugeInvariant checks SharedPages + PrivatePages == page count for a
// frames-backed VM.
func gaugeInvariant(t *testing.T, vm *VM) {
	t.Helper()
	if vm.frames == nil {
		return
	}
	pages := uint64(vm.MemSize / vax.PageSize)
	if got := vm.Stats.SharedPages + vm.Stats.PrivatePages; got != pages {
		t.Errorf("%s: SharedPages(%d) + PrivatePages(%d) = %d, want %d",
			vm.Name(), vm.Stats.SharedPages, vm.Stats.PrivatePages, got, pages)
	}
}

// TestCloneRunsIdentically boots a template, clones it (and clones the
// clone), runs everything, and requires every VM to halt with an
// identical memory image — the clones shared every page at birth and
// privatized only what they wrote.
func TestCloneRunsIdentically(t *testing.T) {
	kRef, vmRef, _ := bootVM(t, Config{}, cloneComputeSrc, nil)
	runVM(t, kRef, vmRef, 10_000_000)
	refDump := vmRef.DumpMemory()

	k, src, _ := bootVM(t, Config{}, cloneComputeSrc, nil)
	c1, err := k.Clone(src, "c1")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := k.Clone(c1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	pages := uint64(gMemSize / vax.PageSize)
	if c1.Stats.SharedPages != pages || c1.Stats.PrivatePages != 0 {
		t.Fatalf("fresh clone gauges: shared=%d private=%d, want %d/0",
			c1.Stats.SharedPages, c1.Stats.PrivatePages, pages)
	}
	if c2.MemBase != cloneBaseSentinel {
		t.Fatalf("clone MemBase = %#x, want sentinel %#x", c2.MemBase, cloneBaseSentinel)
	}

	k.Run(10_000_000)
	for _, vm := range []*VM{src, c1, c2} {
		if h, msg := vm.Halted(); !h || !strings.Contains(msg, "HALT") {
			t.Fatalf("%s did not halt cleanly: %t %q", vm.Name(), h, msg)
		}
		if !bytes.Equal(vm.DumpMemory(), refDump) {
			t.Errorf("%s memory diverged from the uncloned reference run", vm.Name())
		}
		gaugeInvariant(t, vm)
	}
	if c1.Stats.COWBreaks == 0 {
		t.Error("clone ran to completion without a single COW break")
	}
	if c1.Stats.PrivatePages == 0 || c1.Stats.SharedPages == 0 {
		t.Errorf("clone should end partially private: shared=%d private=%d",
			c1.Stats.SharedPages, c1.Stats.PrivatePages)
	}
}

// TestCloneWriteIsolation seeds the source, clones it, perturbs the
// clone's seed through the VMM-side store path (writePhys → cowBreak),
// and requires the two guests to compute different results from what is
// physically the same page at clone time.
func TestCloneWriteIsolation(t *testing.T) {
	k, src, _ := bootVM(t, Config{}, `
start:	movl @#0x80006100, r2
	movl r2, r3
	addl2 r3, r2
	addl2 r3, r2
	movl r2, @#0x80006000
	halt
`, nil)
	if !src.writePhys(0x6100, 7) {
		t.Fatal("seed store failed")
	}
	c, err := k.Clone(src, "c")
	if err != nil {
		t.Fatal(err)
	}
	pfn := uint32(0x6100) / vax.PageSize
	oldFrame := c.frames[pfn]
	if !c.writePhys(0x6100, 11) {
		t.Fatal("clone seed store failed")
	}
	if c.Stats.COWBreaks != 1 {
		t.Fatalf("COWBreaks = %d, want 1", c.Stats.COWBreaks)
	}
	if c.frames[pfn] == oldFrame {
		t.Fatal("break did not rebind the frame")
	}
	if src.frames[pfn] != oldFrame {
		t.Fatal("break disturbed the source's frame")
	}
	// The refcount dropped to one: neither side's frame is shared now.
	if k.cowShared(c.frames[pfn]) || k.cowShared(src.frames[pfn]) {
		t.Error("page still marked shared after the break")
	}
	if got := guestLong(t, src, 0x6100); got != 7 {
		t.Fatalf("source seed = %d, want 7", got)
	}
	if got := guestLong(t, c, 0x6100); got != 11 {
		t.Fatalf("clone seed = %d, want 11", got)
	}

	k.Run(10_000_000)
	if got := guestLong(t, src, 0x6000); got != 21 {
		t.Errorf("source result = %d, want 21", got)
	}
	if got := guestLong(t, c, 0x6000); got != 33 {
		t.Errorf("clone result = %d, want 33", got)
	}
	gaugeInvariant(t, src)
	gaugeInvariant(t, c)
}

// TestCloneDMAIntoSharedPage drives the virtual disk's DMA engine at a
// clone: a block read lands in a shared page and must break the sharing
// instead of writing through the common frame; a block write must land
// in the clone's private disk image, not the frozen base it shares with
// the source.
func TestCloneDMAIntoSharedPage(t *testing.T) {
	k, src, _ := bootVM(t, Config{}, `start: halt`, nil)
	pattern := bytes.Repeat([]byte{0xA5, 0x5A, 0x3C}, vax.PageSize/3+1)[:vax.PageSize]
	copy(src.Disk().Image()[5*vax.PageSize:], pattern)

	c, err := k.Clone(src, "c")
	if err != nil {
		t.Fatal(err)
	}
	// DMA read from disk into a shared memory page.
	if err := k.diskTransfer(c, false, 5, 0x5E00, 0); err != nil {
		t.Fatal(err)
	}
	if c.Stats.COWBreaks != 1 {
		t.Fatalf("disk DMA into shared page: COWBreaks = %d, want 1", c.Stats.COWBreaks)
	}
	got := make([]byte, vax.PageSize)
	if err := c.dmaRead(0x5E00, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern) {
		t.Error("DMA read did not land in the clone's memory")
	}
	if v := guestLong(t, src, 0x5E00); v != 0 {
		t.Errorf("DMA into clone leaked into source memory: %#x", v)
	}
	gaugeInvariant(t, c)

	// DMA write from the clone's memory to its disk: the source's disk
	// (sharing the frozen base image) must not see it.
	if err := k.diskTransfer(c, true, 9, 0x5E00, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Disk().Image()[9*vax.PageSize:10*vax.PageSize], pattern) {
		t.Error("disk write did not reach the clone's image")
	}
	if src.Disk().Image()[9*vax.PageSize] != 0 {
		t.Error("clone's disk write leaked into the source's disk")
	}
}

// TestCloneCheckpointRestore checkpoints a running clone, restores it
// in place (the supervisor's recovery path), and requires the restore
// to leave the VM fully private — a restored image overwrites every
// page, so no frame may stay shared. The same stream restored into a
// fresh monitor must produce a plain contiguous VM.
func TestCloneCheckpointRestore(t *testing.T) {
	src20k := `
start:	clrl r2
	movl #20000, r11
loop:	addl2 r11, r2
	sobgtr r11, loop
	movl r2, @#0x80006000
	halt
`
	kRef, vmRef, _ := bootVM(t, Config{}, src20k, nil)
	runVM(t, kRef, vmRef, 10_000_000)
	want := guestLong(t, vmRef, 0x6000)

	k, src, _ := bootVM(t, Config{}, src20k, nil)
	c, err := k.Clone(src, "c")
	if err != nil {
		t.Fatal(err)
	}
	k.Run(5000)
	if h, _ := c.Halted(); h {
		t.Fatal("clone finished before the checkpoint; shorten the prefix")
	}
	snap, err := k.Snapshot(c)
	if err != nil {
		t.Fatal(err)
	}

	// In-place restore of the clone onto itself.
	if err := k.restoreInPlace(c, snap); err != nil {
		t.Fatal(err)
	}
	for i, f := range c.frames {
		if k.cowShared(f) {
			t.Fatalf("restored clone still shares page %d (frame %#x)", i, f)
		}
	}
	pages := uint64(gMemSize / vax.PageSize)
	if c.Stats.SharedPages != 0 || c.Stats.PrivatePages != pages {
		t.Errorf("restored clone gauges: shared=%d private=%d, want 0/%d",
			c.Stats.SharedPages, c.Stats.PrivatePages, pages)
	}
	k.Run(10_000_000)
	for _, vm := range []*VM{src, c} {
		if h, msg := vm.Halted(); !h || !strings.Contains(msg, "HALT") {
			t.Fatalf("%s did not finish: %t %q", vm.Name(), h, msg)
		}
		if got := guestLong(t, vm, 0x6000); got != want {
			t.Errorf("%s result %#x, want %#x", vm.Name(), got, want)
		}
	}

	// The same stream restored into a brand-new monitor: a plain VM.
	k2 := New(8<<20, Config{})
	vm2, err := k2.Restore("revived", snap)
	if err != nil {
		t.Fatal(err)
	}
	if vm2.frames != nil {
		t.Error("cross-monitor restore produced a frames-backed VM")
	}
	k2.Run(10_000_000)
	if got := guestLong(t, vm2, 0x6000); got != want {
		t.Errorf("cross-monitor restore result %#x, want %#x", got, want)
	}
}

// TestCloneStraddleStoreAndTBI runs a guest whose first stores after
// cloning are an unaligned longword straddling two shared pages plus
// explicit TBIS/TBIA flushes between touches — the break path must
// privatize both halves and survive the guest invalidating the very
// translations the break just installed. Exercised under both
// modify-fault schemes (Section 4.4.2).
func TestCloneStraddleStoreAndTBI(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"modify-bit", Config{}},
		{"read-only-shadow", Config{ReadOnlyShadow: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			k, src, _ := bootVM(t, tc.cfg, `
start:	movl #0x11223344, @#0x80005FFE   ; straddles pages 0x2F/0x30
	mtpr #0x80005FFE, #58            ; TBIS one half
	mtpr #0, #57                     ; TBIA everything
	movl #0x55667788, @#0x80004000   ; fresh shared page after the flush
	halt
`, nil)
			c, err := k.Clone(src, "c")
			if err != nil {
				t.Fatal(err)
			}
			k.Run(10_000_000)
			for _, vm := range []*VM{src, c} {
				if h, msg := vm.Halted(); !h || !strings.Contains(msg, "HALT") {
					t.Fatalf("%s did not halt: %t %q", vm.Name(), h, msg)
				}
			}
			// The scheduler may run either holder first; whoever stores
			// first pays the break and leaves the frame exclusive for the
			// other. The breaks happen exactly once per page either way.
			if n := src.Stats.COWBreaks + c.Stats.COWBreaks; n < 2 {
				t.Errorf("straddling store broke %d pages, want >= 2", n)
			}
			// The straddle pages are now distinct private frames; read the
			// unaligned value back through the page-walking DMA path.
			buf := make([]byte, 8)
			if err := c.dmaRead(0x5FFC, buf); err != nil {
				t.Fatal(err)
			}
			if got := le32(buf[2:]); got != 0x11223344 {
				t.Errorf("straddled store read back %#x, want 0x11223344", got)
			}
			if got := guestLong(t, c, 0x4000); got != 0x55667788 {
				t.Errorf("post-TBIA store = %#x, want 0x55667788", got)
			}
			if src.frames[0x2F] == c.frames[0x2F] || src.frames[0x30] == c.frames[0x30] {
				t.Error("straddle pages still share frames after the break")
			}
			gaugeInvariant(t, src)
			gaugeInvariant(t, c)
		})
	}
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// TestCloneOvercommit admits a fleet whose nominal footprint exceeds
// the monitor's physical memory — legal precisely because clones only
// occupy what they write — and runs every VM to completion.
func TestCloneOvercommit(t *testing.T) {
	img, prog := guestImage(t, cloneComputeSrc, nil)
	k := New(2<<20, Config{}) // 4096 real pages
	src, err := k.CreateVM(VMConfig{
		MemBytes:  gMemSize,
		Image:     img,
		LoadAt:    0,
		StartPC:   prog.MustSymbol("start"),
		PreMapped: true,
		SBR:       gSPT,
		SLR:       gSPTLen,
		SCBB:      gSCB,
	})
	if err != nil {
		t.Fatal(err)
	}
	src.SPs[vax.Kernel] = gKSP
	src.ISP = gISP

	const clones = 40
	for i := 0; i < clones; i++ {
		if _, err := k.Clone(src, ""); err != nil {
			t.Fatalf("clone %d: %v", i, err)
		}
	}
	if nominal, real := k.NominalPages(), k.Mem.Pages(); nominal <= real {
		t.Fatalf("fleet is not overcommitted: nominal %d <= physical %d", nominal, real)
	}
	k.Run(50_000_000)
	for _, vm := range k.VMs() {
		if h, msg := vm.Halted(); !h || !strings.Contains(msg, "HALT") {
			t.Fatalf("%s did not halt: %t %q", vm.Name(), h, msg)
		}
		gaugeInvariant(t, vm)
		if vm != src && vm.ResidentPages() > 16 {
			t.Errorf("%s resident %d pages, want a small fraction of %d",
				vm.Name(), vm.ResidentPages(), gMemSize/vax.PageSize)
		}
	}
	if carved := k.CarvedPages(); carved > k.Mem.Pages() {
		t.Errorf("carved %d pages out of %d physical", carved, k.Mem.Pages())
	}
}

// TestCloneRejections: the error paths.
func TestCloneRejections(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, `start: halt`, nil)
	k2, vm2, _ := bootVM(t, Config{}, `start: halt`, nil)
	if _, err := k.Clone(nil, "x"); err == nil {
		t.Error("cloning nil succeeded")
	}
	if _, err := k.Clone(vm2, "x"); err == nil {
		t.Error("cloning another monitor's VM succeeded")
	}
	runVM(t, k, vm, 1000)
	if _, err := k.Clone(vm, "x"); err == nil {
		t.Error("cloning a halted VM succeeded")
	}
	runVM(t, k2, vm2, 1000)
}
