package core

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/vax"
)

// Batched shadow-fill edge cases. The tests drive fillShadow directly
// (the same entry the TNV handler uses) so they can assert exactly
// which shadow slots a batch touched; setupP0 stands in for the MTPR
// P0BR/P0LR emulation by writing the VM fields the IPR path writes.

// setupP0 points the VM's P0 region at a guest page table located at
// VM-physical tablePhys (guest S va 0x80000000+tablePhys under the
// identity SPT the test image builds), mapping P0 page i to VM frame
// frame0+i.
func setupP0(t *testing.T, vm *VM, tablePhys, pages, frame0 uint32, modified bool) {
	t.Helper()
	for i := uint32(0); i < pages; i++ {
		if !vm.writePhys(tablePhys+4*i, uint32(vax.NewPTE(true, vax.ProtUW, modified, frame0+i))) {
			t.Fatal("P0 table write failed")
		}
	}
	vm.p0br = vax.SystemBase + tablePhys
	vm.p0lr = pages
}

// shadowPTE reads the live shadow PTE for va.
func shadowPTE(t *testing.T, k *VMM, vm *VM, va uint32) vax.PTE {
	t.Helper()
	slot, ok := vm.shadow.shadowSlot(va)
	if !ok {
		t.Fatalf("no shadow slot for %#x", va)
	}
	v, err := k.Mem.LoadLong(slot)
	if err != nil {
		t.Fatal(err)
	}
	return vax.PTE(v)
}

func TestBatchFillClipsAtGuestPTEPage(t *testing.T) {
	// The guest P0 table starts 16 bytes before a page boundary, so
	// only 3 PTEs follow the first one within its guest page. A batch
	// of 8 must clip there: the whole point is one guest-table walk,
	// and PTE 4 lives on a different guest page.
	k, vm, _ := bootVM(t, Config{}, "start:\thalt\n", nil)
	setupP0(t, vm, 0x5F0, 8, 40, true)

	if gf := k.fillShadow(vm, 0, false); gf != nil {
		t.Fatalf("fill faulted: %+v", gf)
	}
	if vm.Stats.ShadowFills != 1 || vm.Stats.FillBatches != 1 || vm.Stats.BatchFills != 3 {
		t.Errorf("fills=%d batches=%d batched=%d, want 1/1/3",
			vm.Stats.ShadowFills, vm.Stats.FillBatches, vm.Stats.BatchFills)
	}
	for p := uint32(1); p <= 3; p++ {
		spte := shadowPTE(t, k, vm, p*vax.PageSize)
		if !spte.Valid() || spte.PFN() != vm.MemBase/vax.PageSize+40+p {
			t.Errorf("page %d shadow = %#x, want valid frame %d",
				p, uint32(spte), vm.MemBase/vax.PageSize+40+p)
		}
	}
	if spte := shadowPTE(t, k, vm, 4*vax.PageSize); spte != nullPTE {
		t.Errorf("page 4 shadow = %#x, want null (beyond the guest PTE page)", uint32(spte))
	}
}

func TestBatchFillStopsAtLengthRegister(t *testing.T) {
	// P0LR = 2: the batch may prefill page 1 but never page 2, and a
	// later reference beyond the length register still faults to the
	// guest.
	k, vm, _ := bootVM(t, Config{}, "start:\thalt\n", nil)
	setupP0(t, vm, 0x300, 8, 40, true)
	vm.p0lr = 2

	if gf := k.fillShadow(vm, 0, false); gf != nil {
		t.Fatalf("fill faulted: %+v", gf)
	}
	if vm.Stats.BatchFills != 1 {
		t.Errorf("BatchFills = %d, want 1 (length register caps the cluster)", vm.Stats.BatchFills)
	}
	if spte := shadowPTE(t, k, vm, 2*vax.PageSize); spte != nullPTE {
		t.Errorf("page 2 shadow = %#x, want null (beyond P0LR)", uint32(spte))
	}
	if gf := k.fillShadow(vm, 2*vax.PageSize, false); gf == nil || gf.vec != vax.VecAccessViol {
		t.Errorf("length violation not reflected: %+v", gf)
	}
}

func TestBatchFillPreservesModifyFault(t *testing.T) {
	// Neighbors are prefilled as reads: a clean guest PTE (M=0) must
	// yield a clean shadow PTE, so the guest's first write to the
	// prefetched page still takes its modify fault end to end.
	k, vm, _ := bootVM(t, Config{}, `
start:	mtpr #0x80000300, #8 ; P0BR (guest S va of the table)
	mtpr #8, #9          ; P0LR
	movl @#0, r2         ; read page 0: demand fill + batched neighbors
	movl #0x1234, @#0x200 ; first write to prefilled clean page 1
	halt
`, nil)
	for i := uint32(0); i < 8; i++ {
		if !vm.writePhys(0x300+4*i, uint32(vax.NewPTE(true, vax.ProtUW, false, 40+i))) {
			t.Fatal("P0 table write failed")
		}
	}
	runVM(t, k, vm, 100000)
	if vm.Stats.FillBatches == 0 {
		t.Error("no fill batches recorded")
	}
	if vm.Stats.ModifyFaults == 0 {
		t.Error("write to prefilled clean page took no modify fault")
	}
	if g := guestLong(t, vm, 41*vax.PageSize); g != 0x1234 {
		t.Errorf("write landed as %#x, want 0x1234 in frame 41", g)
	}
	gpte := vax.PTE(guestLong(t, vm, 0x300+4))
	if !gpte.Modified() {
		t.Error("guest PTE<M> for page 1 not set after the write")
	}
}

func TestTBISInvalidatesOnePTEOfCluster(t *testing.T) {
	// Guest TBIS (MTPR #58) on one page of a filled cluster nulls just
	// that slot; the refill batches nothing (its neighbors are still
	// valid, and a non-null slot must never be clobbered).
	k, vm, _ := bootVM(t, Config{}, "start:\thalt\n", nil)
	setupP0(t, vm, 0x300, 8, 40, true)

	if gf := k.fillShadow(vm, 0, false); gf != nil {
		t.Fatalf("fill faulted: %+v", gf)
	}
	if vm.Stats.BatchFills != 7 {
		t.Fatalf("BatchFills = %d, want 7", vm.Stats.BatchFills)
	}
	vm.shadow.invalidate(k, vax.PageSize) // the MTPR TBIS emulation path
	if spte := shadowPTE(t, k, vm, vax.PageSize); spte != nullPTE {
		t.Fatalf("TBIS left page 1 shadow = %#x, want null", uint32(spte))
	}
	if spte := shadowPTE(t, k, vm, 2*vax.PageSize); spte == nullPTE {
		t.Error("TBIS of page 1 disturbed page 2")
	}
	if gf := k.fillShadow(vm, vax.PageSize, false); gf != nil {
		t.Fatalf("refill faulted: %+v", gf)
	}
	if vm.Stats.ShadowFills != 2 || vm.Stats.FillBatches != 1 {
		t.Errorf("after refill: fills=%d batches=%d, want 2/1 (no new batch)",
			vm.Stats.ShadowFills, vm.Stats.FillBatches)
	}
}

func TestShadowRunPoolRecyclesHaltedVM(t *testing.T) {
	// A halted VM's shadow-table runs go back to the pool; the next
	// CreateVM must recycle them and run correctly on the recycled
	// frames (clear-on-reuse restores the null-PTE default).
	k, vm1, _ := bootVM(t, Config{}, "start:\tmovl #7, @#0x80006000\n\thalt\n", nil)
	runVM(t, k, vm1, 100000)
	if k.Stats.ShadowPoolHits != 0 {
		t.Fatalf("first VM hit the pool (%d hits)", k.Stats.ShadowPoolHits)
	}

	img, prog := guestImage(t, "start:\tmovl #9, @#0x80006000\n\thalt\n", nil)
	vm2, err := k.CreateVM(VMConfig{MemBytes: gMemSize, Image: img,
		StartPC: prog.MustSymbol("start"), PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB})
	if err != nil {
		t.Fatal(err)
	}
	vm2.SPs[vax.Kernel] = gKSP
	vm2.ISP = gISP
	if k.Stats.ShadowPoolHits == 0 {
		t.Fatal("second VM's shadow space did not recycle the halted VM's runs")
	}
	k.CPU.ClearHalt() // console restart: every VM had halted
	runVM(t, k, vm2, 100000)
	if got := guestLong(t, vm2, 0x6000); got != 9 {
		t.Errorf("second VM store = %d, want 9", got)
	}
}

func TestLDPCTXSVPCTXNoAlloc(t *testing.T) {
	// Tentpole regression: guest context switches ride the VMM slow
	// path constantly, so neither LDPCTX nor SVPCTX may allocate in
	// steady state (the PCB image stages through per-VM scratch).
	k, vm, _ := bootVM(t, Config{}, "start:\thalt\n", nil)
	const pcbPhys = 0x5000
	vm.pcbb = pcbPhys
	put := func(off, v uint32) {
		if !vm.writePhys(pcbPhys+off, v) {
			t.Fatal("PCB write failed")
		}
	}
	// A PCB that reloads the current mapping state: same P0/P1 bases,
	// so the shadow tables stay put and the calls are pure register
	// and stack traffic.
	put(cpu.PCBKSP, gKSP)
	put(cpu.PCBESP, gESP)
	put(cpu.PCBSSP, gSSP)
	put(cpu.PCBUSP, gUSP)
	put(cpu.PCBP0BR, vm.p0br)
	put(cpu.PCBP0LR, vm.p0lr)
	put(cpu.PCBP1BR, vm.p1br)
	put(cpu.PCBP1LR, vm.p1lr)
	put(cpu.PCBPC, vax.SystemBase+gCode)
	put(cpu.PCBPSL, 0)
	info := &vax.VMTrapInfo{NextPC: vax.SystemBase + gCode}

	ld := testing.AllocsPerRun(200, func() {
		vm.SPs[vax.Kernel] = gKSP // LDPCTX pushes 8 bytes; stop the drift
		k.emulateLDPCTX(vm, info)
		if h, msg := vm.Halted(); h {
			t.Fatalf("VM halted in LDPCTX: %s", msg)
		}
	})
	sv := testing.AllocsPerRun(200, func() {
		// SVPCTX saves the live SP first; resume PC/PSL sit at the
		// stack top it pops from.
		k.CPU.SetSP(gKSP - 8)
		k.emulateSVPCTX(vm, info)
		if h, msg := vm.Halted(); h {
			t.Fatalf("VM halted in SVPCTX: %s", msg)
		}
	})
	if ld != 0 || sv != 0 {
		t.Errorf("allocs per op: LDPCTX %.1f SVPCTX %.1f, want 0/0", ld, sv)
	}
	if vm.Stats.SlowPathAllocs != 0 {
		t.Errorf("SlowPathAllocs = %d, want 0", vm.Stats.SlowPathAllocs)
	}
}
