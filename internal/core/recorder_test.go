package core

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/vax"
)

// Flight-recorder integration. The serial engine is deterministic, so
// two runs of the same workload record identical event streams — the
// drop-accounting test leans on that to check the counter exactly.

// recordedEvents runs the standard mixed fleet serially with a
// recorder of the given ring capacity and returns the recorder plus
// the total events retained across VMs after the final sync.
func recordedMixedRun(t *testing.T, ringCap, workers int) (*trace.Recorder, int) {
	t.Helper()
	rec := trace.NewRecorder(ringCap)
	k, vms := mixedFleet(t, Config{WaitTimeout: 2, Workers: workers, Recorder: rec})
	k.Run(10_000_000)
	assertAllHaltedNormally(t, vms)
	rec.Sync()
	total := 0
	for _, v := range rec.VMs() {
		total += len(v.Events(0))
	}
	return rec, total
}

// TestRecorderParallelAllShards runs the mixed fleet on the parallel
// engine with the recorder on: every shard's VM must contribute
// events, the rings must lose nothing at this capacity, and the trap
// histograms must have samples. Run under -race this also proves the
// producer/merge-barrier contract.
func TestRecorderParallelAllShards(t *testing.T) {
	rec := trace.NewRecorder(1 << 16)
	k, vms := mixedFleet(t, Config{WaitTimeout: 2, Workers: 4, Recorder: rec})
	k.Run(10_000_000)
	assertAllHaltedNormally(t, vms)
	if rec.Dropped() != 0 {
		t.Errorf("dropped %d events with a %d-slot ring", rec.Dropped(), 1<<16)
	}
	vrs := rec.VMs()
	if len(vrs) != len(vms) {
		t.Fatalf("recorder has %d VMs, fleet has %d", len(vrs), len(vms))
	}
	for _, v := range vrs {
		evs := v.Events(0)
		if len(evs) == 0 {
			t.Errorf("%s recorded no events", v.Label)
			continue
		}
		sawTrap := false
		for _, e := range evs {
			if int(e.VM) != v.ID {
				t.Errorf("%s holds an event for vm%d", v.Label, e.VM)
			}
			if e.Kind == trace.EvVMTrap {
				sawTrap = true
			}
		}
		// Every guest in the fleet ends with HALT, which arrives via a
		// VM-emulation trap.
		if !sawTrap {
			t.Errorf("%s has no vm-trap event", v.Label)
		}
		if v.Hist(trace.LatTrap).Count == 0 {
			t.Errorf("%s has no trap latency samples", v.Label)
		}
	}
}

// TestRecorderDropCounterExact forces overflow with a tiny ring and
// checks the drop counter against a lossless run of the identical
// serial workload: retained + dropped must equal the lossless total.
func TestRecorderDropCounterExact(t *testing.T) {
	big, total := recordedMixedRun(t, 1<<16, 0)
	if d := big.Dropped(); d != 0 {
		t.Fatalf("reference run dropped %d events", d)
	}
	if total == 0 {
		t.Fatal("reference run recorded nothing")
	}
	small, _ := recordedMixedRun(t, 4, 0)
	var retained, dropped int
	for _, v := range small.VMs() {
		retained += len(v.Events(0))
		dropped += int(v.Dropped())
	}
	if dropped == 0 {
		t.Fatal("4-slot rings did not overflow")
	}
	// The serial engine only drains rings at the end of the run, so
	// everything pushed past each ring's 4 slots was dropped.
	if retained+dropped != total {
		t.Errorf("retained %d + dropped %d != lossless total %d", retained, dropped, total)
	}
}

// TestDisabledRecorderNoAllocs proves the disabled-recorder hot paths
// stay allocation-free: the shadow-fill and emulation-trap slow paths
// must not allocate whether the recorder is nil or attached.
func TestRecorderHotPathNoAllocs(t *testing.T) {
	run := func(rec *trace.Recorder) (fill, chm float64) {
		cfg := Config{}
		cfg.Recorder = rec
		k, vm, _ := bootVM(t, cfg, "start:\thalt\nchmh:\thalt\n",
			map[vax.Vector]string{vax.CHMVector(vax.Kernel): "chmh"})
		setupP0(t, vm, 0x5F0, 8, 40, true)
		fill = testing.AllocsPerRun(200, func() {
			if gf := k.fillShadow(vm, 0, false); gf != nil {
				t.Fatalf("fill faulted: %+v", gf)
			}
		})
		info := &vax.VMTrapInfo{Opcode: vax.OpCHMK,
			Operands: []uint32{0, uint32(vax.Kernel)},
			GuestPSL: vax.PSL(0).WithCur(vax.User), NextPC: k.CPU.PC()}
		chm = testing.AllocsPerRun(200, func() {
			vm.SPs[vax.Kernel] = gKSP
			k.emulateCHM(vm, info)
			if h, msg := vm.Halted(); h {
				t.Fatalf("VM halted in CHM: %s", msg)
			}
		})
		return fill, chm
	}
	if fill, chm := run(nil); fill != 0 || chm != 0 {
		t.Errorf("recorder off: allocs per op fill %.1f chm %.1f, want 0/0", fill, chm)
	}
	if fill, chm := run(trace.NewRecorder(1 << 12)); fill != 0 || chm != 0 {
		t.Errorf("recorder on: allocs per op fill %.1f chm %.1f, want 0/0", fill, chm)
	}
}

// TestAuditBehaviorUnchanged locks in the audit facility's observable
// behavior across the move onto the generic rings: ordering,
// overwrite-oldest retention, and parallel-run drop accounting.
func TestAuditBehaviorUnchanged(t *testing.T) {
	k, vms := mixedFleet(t, Config{WaitTimeout: 2})
	k.EnableAudit(8)
	k.Run(10_000_000)
	assertAllHaltedNormally(t, vms)
	trail := k.AuditTrail()
	if len(trail) != 8 {
		t.Fatalf("audit trail kept %d events, want the most recent 8", len(trail))
	}
	for i := 1; i < len(trail); i++ {
		if trail[i].Seq <= trail[i-1].Seq {
			t.Fatalf("audit trail out of order at %d: %+v", i, trail)
		}
	}
	// The run generates far more than 8 events; the log keeps the tail,
	// so the last event must be a vm-halted record from the end of the
	// run and the first retained Seq must be well past the start.
	if trail[0].Seq <= 1 {
		t.Error("overwrite-oldest retention kept the first event")
	}
	if k.AuditDropped() != 0 {
		t.Errorf("serial run reported %d ring drops", k.AuditDropped())
	}
}
