package core

import (
	"fmt"

	"repro/internal/vax"
)

// trace.Source implementations: the VMM, each VM, and the merged
// parallel-run totals expose their counters through the one interface
// the trace package snapshots and exports. Counter names are part of
// the observable surface (EXPERIMENTS.md tables, Prometheus series);
// keep them stable.

// Name identifies the monitor-level counter source.
func (k *VMM) Name() string { return "vmm" }

// Counters emits the monitor-level counters.
func (k *VMM) Counters(emit func(name string, v uint64)) {
	s := k.Stats
	emit("entries", s.VMMEntries)
	emit("world_switches", s.WorldSwitches)
	emit("virtual_irqs", s.VirtualIRQs)
	emit("clock_ticks", s.ClockTicks)
	emit("deliveries", s.ReflectedTraps)
	emit("shadow_pool_hits", s.ShadowPoolHits)
	emit("shadow_pool_miss", s.ShadowPoolMisses)
	// Overcommit accounting: real pages ever carved (resident high
	// water) against the fleet's nominal footprint.
	emit("carved_pages", uint64(k.CarvedPages()))
	emit("nominal_pages", uint64(k.NominalPages()))
}

// Name returns the VM's label (configured, or "vm<ID>").
func (vm *VM) Name() string { return vm.name }

// defaultVMName labels an unnamed VM. Small fleet IDs come from a
// static table so CreateVM stays allocation-neutral in benchmarks.
var smallVMNames = [...]string{
	"vm0", "vm1", "vm2", "vm3", "vm4", "vm5", "vm6", "vm7",
	"vm8", "vm9", "vm10", "vm11", "vm12", "vm13", "vm14", "vm15",
}

func defaultVMName(id int) string {
	if id >= 0 && id < len(smallVMNames) {
		return smallVMNames[id]
	}
	return fmt.Sprintf("vm%d", id)
}

// Counters emits the VM's per-guest counters. Same confinement rules
// as Stats: read only while the VM's engine is not running.
func (vm *VM) Counters(emit func(name string, v uint64)) {
	s := vm.Stats
	emit("vm_traps", s.VMTraps)
	emit("chm", s.CHMs)
	emit("rei", s.REIs)
	emit("mtpr_ipl", s.MTPRIPL)
	emit("mtpr_other", s.MTPROther)
	emit("mfpr", s.MFPRs)
	emit("context_switches", s.ContextSwitches)
	emit("shadow_fills", s.ShadowFills)
	emit("prefetch_fills", s.PrefetchFills)
	emit("fill_batches", s.FillBatches)
	emit("batch_fills", s.BatchFills)
	emit("slow_path_allocs", s.SlowPathAllocs)
	emit("shadow_clears", s.ShadowClears)
	emit("cache_hits", s.CacheHits)
	emit("cache_misses", s.CacheMisses)
	emit("modify_faults", s.ModifyFaults)
	emit("reflected", s.ReflectedFaults)
	emit("virtual_irqs", s.VirtualIRQs)
	emit("kcalls", s.KCALLs)
	emit("mmio_emuls", s.MMIOEmuls)
	emit("waits", s.Waits)
	emit("probe_fills", s.ProbeFills)
	emit("machine_checks", s.MachineChecks)
	emit("disk_retries", s.DiskRetries)
	emit("watchdog_trips", s.WatchdogTrips)
	emit("selfcheck_repairs", s.SelfCheckRepairs)
	emit("unknown_kcalls", s.UnknownKCALLs)
	emit("checkpoints", s.Checkpoints)
	emit("recoveries", s.Recoveries)
	emit("recovery_fallbacks", s.RecoveryFallbacks)
	emit("recovery_escalations", s.RecoveryEscalations)
	emit("cow_breaks", s.COWBreaks)
	emit("shared_pages", s.SharedPages)
	emit("private_pages", s.PrivatePages)
	// Resident vs nominal: what the VM actually occupies against what
	// it is configured with. A never-cloned VM is fully resident.
	emit("resident_pages", vm.ResidentPages())
	emit("nominal_pages", uint64(vm.MemSize/vax.PageSize))
}

// Name identifies the parallel-run counter source.
func (pr ParallelRunStats) Name() string { return "parallel" }

// Counters emits the merged totals of the last parallel run.
func (pr ParallelRunStats) Counters(emit func(name string, v uint64)) {
	emit("workers", uint64(pr.Workers))
	emit("vms", uint64(pr.VMs))
	emit("steps", pr.Steps)
	emit("instructions", pr.Instrs)
	emit("cycles", pr.Cycles)
	emit("dispatches", pr.Dispatches)
	emit("steals", pr.Steals)
	emit("parks", pr.Parks)
	emit("wakes", pr.Wakes)
	emit("idle_wakes", pr.IdleWakes)
	emit("max_queue_depth", uint64(pr.MaxQueueDepth))
	emit("min_worker_steps", pr.MinWorkerSteps)
	emit("max_worker_steps", pr.MaxWorkerSteps)
	emit("decode_hits", pr.DecodeHits)
	emit("decode_misses", pr.DecodeMisses)
	emit("decode_invalidations", pr.DecodeInvalidations)
	emit("sb_builds", pr.SBBuilds)
	emit("sb_enters", pr.SBEnters)
	emit("sb_steps", pr.SBSteps)
	emit("sb_invalidations", pr.SBInvalidations)
	emit("fill_batches", pr.FillBatches)
	emit("batch_fills", pr.BatchFills)
	emit("slow_path_allocs", pr.SlowPathAllocs)
	emit("shadow_pool_hits", pr.ShadowPoolHits)
	emit("shadow_pool_miss", pr.ShadowPoolMisses)
	emit("checkpoints", pr.Checkpoints)
	emit("recoveries", pr.Recoveries)
	emit("cow_breaks", pr.CowBreaks)
	emit("shared_pages", pr.SharedPages)
	emit("private_pages", pr.PrivatePages)
	// Occupancy balance in parts per thousand: 1000 = perfectly even,
	// 0 = at least one worker never ran a step.
	emit("worker_occupancy_permille", pr.OccupancyPermille())
}
