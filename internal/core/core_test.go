package core

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/vax"
)

// Guest layout used throughout the tests (VM-physical addresses):
//
//	0x0000  guest SCB
//	0x0200  guest system page table (identity: S page i -> VM frame i)
//	0x1000  guest code (assembled at 0x80001000)
//	0x7E00  guest kernel stack top 0x8000, user stack top 0x7000, etc.
const (
	gSCB     = 0x0000
	gSPT     = 0x0200
	gCode    = 0x1000
	gSPTLen  = 64 // identity-map 64 S pages = 32 KB
	gKSP     = 0x80008000
	gESP     = 0x80007800
	gSSP     = 0x80007400
	gUSP     = 0x80007000
	gISP     = 0x80006E00 // within the 64 mapped S pages
	gMemSize = 64 * 1024
)

// guestImage assembles src at S address 0x80001000 and builds a VM
// memory image with an identity system page table and the SCB vectors
// named in vectors (label -> vector).
func guestImage(t *testing.T, src string, vectors map[vax.Vector]string) ([]byte, *asm.Program) {
	t.Helper()
	prog, err := asm.Assemble(src, vax.SystemBase+gCode)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	img := make([]byte, gMemSize)
	// Identity SPT, all pages UW, premodified.
	for i := uint32(0); i < gSPTLen; i++ {
		pte := vax.NewPTE(true, vax.ProtUW, true, i)
		binary.LittleEndian.PutUint32(img[gSPT+4*i:], uint32(pte))
	}
	copy(img[gCode:], prog.Code)
	for vec, label := range vectors {
		binary.LittleEndian.PutUint32(img[gSCB+uint32(vec):], prog.MustSymbol(label))
	}
	return img, prog
}

// bootVM creates a VMM with one pre-mapped VM running src.
func bootVM(t *testing.T, cfg Config, src string, vectors map[vax.Vector]string) (*VMM, *VM, *asm.Program) {
	t.Helper()
	img, prog := guestImage(t, src, vectors)
	k := New(8<<20, cfg)
	vm, err := k.CreateVM(VMConfig{
		MemBytes:  gMemSize,
		Image:     img,
		LoadAt:    0,
		StartPC:   prog.MustSymbol("start"),
		PreMapped: true,
		SBR:       gSPT,
		SLR:       gSPTLen,
		SCBB:      gSCB,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm.SPs[vax.Kernel] = gKSP
	vm.SPs[vax.Executive] = gESP
	vm.SPs[vax.Supervisor] = gSSP
	vm.SPs[vax.User] = gUSP
	vm.ISP = gISP
	return k, vm, prog
}

// runVM runs until the VM halts or maxSteps pass.
func runVM(t *testing.T, k *VMM, vm *VM, maxSteps uint64) {
	t.Helper()
	k.Run(maxSteps)
	if halted, _ := vm.Halted(); !halted {
		t.Fatalf("VM did not halt: pc=%#x vmpsl=%s real=%s",
			k.CPU.PC(), k.CPU.VMPSL, k.CPU.PSL())
	}
}

// guestLong reads a guest-physical longword.
func guestLong(t *testing.T, vm *VM, vmPhys uint32) uint32 {
	t.Helper()
	v, ok := vm.readPhys(vmPhys)
	if !ok {
		t.Fatalf("guest phys read %#x failed", vmPhys)
	}
	return v
}

const privHandler = `
	.align 4
privh:	halt                 ; guest gives up on privilege violations
`

func TestGuestKernelRunsAndHalts(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, `
start:	movl #0x1234, @#0x80006000
	halt
`, nil)
	runVM(t, k, vm, 100000)
	if got := guestLong(t, vm, 0x6000); got != 0x1234 {
		t.Errorf("guest store = %#x", got)
	}
	if _, msg := vm.Halted(); !strings.Contains(msg, "HALT") {
		t.Errorf("halt reason %q", msg)
	}
}

func TestGuestREIAndCHMRoundTrip(t *testing.T) {
	// Guest kernel drops to user mode with REI; user issues CHMK; the
	// kernel handler stores the code and halts.
	k, vm, _ := bootVM(t, Config{}, `
start:	pushl #0x03C00000    ; PSL: cur=user prv=user
	pushl #ucode
	rei
	.align 4
ucode:	movpsl r6
	chmk #99
	halt                 ; unreachable if CHMK works (halts via privh otherwise)
	.align 4
chmk:	movl (sp)+, r7       ; code
	movpsl r8
	halt
`+privHandler, map[vax.Vector]string{
		vax.VecCHMK:      "chmk",
		vax.VecPrivInstr: "privh",
	})
	runVM(t, k, vm, 100000)
	c := k.CPU
	if c.R[7] != 99 {
		t.Errorf("CHMK code = %d", c.R[7])
	}
	// The user-mode MOVPSL saw the VM in user mode.
	if got := vax.PSL(c.R[6]); got.Cur() != vax.User {
		t.Errorf("user MOVPSL cur = %s", got.Cur())
	}
	// The handler's MOVPSL: VM kernel, previous mode user.
	got := vax.PSL(c.R[8])
	if got.Cur() != vax.Kernel || got.Prv() != vax.User {
		t.Errorf("handler PSL = %s", got)
	}
	if vm.Stats.CHMs != 1 || vm.Stats.REIs != 1 {
		t.Errorf("stats: %+v", vm.Stats)
	}
}

func TestGuestRingCompressionInvisible(t *testing.T) {
	// The VM's kernel runs in real executive mode, but MOVPSL and CHM
	// behave as if it were real kernel mode — the real ring numbers are
	// concealed (Section 4.1).
	k, vm, _ := bootVM(t, Config{}, `
start:	movpsl r5
	halt
`, nil)
	runVM(t, k, vm, 1000)
	guest := vax.PSL(k.CPU.R[5])
	if guest.Cur() != vax.Kernel {
		t.Errorf("VM sees mode %s, want kernel", guest.Cur())
	}
	if vm.Stats.VMTraps != 1 { // only the final HALT
		t.Errorf("MOVPSL should not trap: %+v", vm.Stats)
	}
}

func TestGuestPrivFaultFromVMUserReflected(t *testing.T) {
	// VM-user MTPR: privileged instruction fault forwarded to the VM's
	// own handler (Section 4.4.1).
	k, vm, _ := bootVM(t, Config{}, `
start:	pushl #0x03C00000
	pushl #ucode
	rei
	.align 4
ucode:	mtpr #1, #18         ; user mode: privilege violation
	halt
	.align 4
privh:	movl #0xBEEF, r9
	halt
`, map[vax.Vector]string{vax.VecPrivInstr: "privh"})
	runVM(t, k, vm, 100000)
	if k.CPU.R[9] != 0xBEEF {
		t.Error("privileged instruction fault not reflected to VM")
	}
	if vm.Stats.ReflectedFaults == 0 {
		t.Error("ReflectedFaults not counted")
	}
}

func TestGuestMFPRMemsizeAndSID(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, `
start:	mfpr #200, r3        ; MEMSIZE
	mfpr #62, r4         ; SID
	halt
`, nil)
	runVM(t, k, vm, 1000)
	if k.CPU.R[3] != gMemSize {
		t.Errorf("MEMSIZE = %#x, want %#x", k.CPU.R[3], gMemSize)
	}
	if k.CPU.R[4] != virtualSID {
		t.Errorf("SID = %#x", k.CPU.R[4])
	}
}

func TestGuestModifyFaultTransparent(t *testing.T) {
	// One S page starts with PTE<M> clear. The guest writes it; the VMM
	// absorbs the modify fault, sets M in the shadow AND in the guest's
	// own PTE (Section 4.4.2), and the guest observes its PTE changed —
	// standard-VAX semantics, "no change" (Table 4).
	k, vm, _ := bootVM(t, Config{}, `
start:	movl #7, @#0x80004000      ; S page 32: M clear
	movl @#0x80000280, r5        ; guest reads its own PTE for page 32
	halt
`, nil)
	// SPT entry 32 at VM-phys 0x200 + 4*32 = 0x280: clear M.
	pte := vax.NewPTE(true, vax.ProtUW, false, 32)
	if !vm.writePhys(gSPT+4*32, uint32(pte)) {
		t.Fatal("setup write failed")
	}
	runVM(t, k, vm, 10000)
	if vm.Stats.ModifyFaults != 1 {
		t.Errorf("ModifyFaults = %d", vm.Stats.ModifyFaults)
	}
	if got := guestLong(t, vm, 0x4000); got != 7 {
		t.Errorf("write lost: %#x", got)
	}
	if !vax.PTE(k.CPU.R[5]).Modified() {
		t.Error("guest PTE<M> not set in the VM's page table")
	}
}

func TestGuestDemandPagingLoop(t *testing.T) {
	// Guest PTE invalid -> VMM reflects TNV to the guest, whose handler
	// validates the PTE and REIs; the faulting MOVL retries.
	k, vm, _ := bootVM(t, Config{}, `
start:	movl #0xFEED, @#0x80004200  ; S page 33: guest PTE invalid
	movl @#0x80004200, r4
	halt
	.align 4
pfh:	movl (sp)+, r7       ; fault parameter
	movl (sp)+, r8       ; faulting va
	movl @#0x80000284, r9      ; the PTE for page 33
	bisl2 #0x80000000, r9      ; set valid
	movl r9, @#0x80000284
	mtpr r8, #58         ; TBIS the faulting address
	incl r10             ; count faults
	rei
`, map[vax.Vector]string{vax.VecTransNotValid: "pfh"})
	pte := vax.NewPTE(false, vax.ProtUW, true, 33)
	if !vm.writePhys(gSPT+4*33, uint32(pte)) {
		t.Fatal("setup failed")
	}
	runVM(t, k, vm, 100000)
	c := k.CPU
	if c.R[10] != 1 {
		t.Errorf("fault count = %d, want 1", c.R[10])
	}
	if c.R[4] != 0xFEED {
		t.Errorf("paged write lost: %#x", c.R[4])
	}
	if c.R[8] != 0x80004200 {
		t.Errorf("handler saw va %#x", c.R[8])
	}
	if vm.Stats.ReflectedFaults == 0 {
		t.Error("no reflected fault counted")
	}
}

func TestRingCompressionBlursKernelExecutiveMemory(t *testing.T) {
	// Section 4.3.1 / Table 4: a page the VM protects kernel-write-only
	// is accessible from VM-executive mode — the documented
	// imperfection of memory ring compression. Supervisor access still
	// faults.
	k, vm, _ := bootVM(t, Config{}, `
start:	pushl #0x01400000    ; PSL: cur=executive prv=executive
	pushl #ecode
	rei
	.align 4
ecode:	movl @#0x80004400, r5 ; KW page: REAL executive may read it
	movl #1, r6
	chme #0
	.align 4
chmeh:	pushl #0x02800000    ; PSL: cur=supervisor prv=supervisor
	pushl #score
	rei
	.align 4
score:	movl @#0x80004400, r7 ; supervisor: must fault
	movl #2, r6
	halt
	.align 4
avh:	movl #0xACC, r11
	halt
`+privHandler, map[vax.Vector]string{
		vax.VecAccessViol: "avh",
		vax.VecCHME:       "chmeh",
		vax.VecPrivInstr:  "privh",
	})
	pte := vax.NewPTE(true, vax.ProtKW, true, 34) // page 34 kernel-only
	if !vm.writePhys(gSPT+4*34, uint32(pte)) {
		t.Fatal(err1(t))
	}
	runVM(t, k, vm, 100000)
	c := k.CPU
	if c.R[6] != 1 {
		t.Fatalf("flow error: r6=%d", c.R[6])
	}
	if c.R[11] != 0xACC {
		t.Error("supervisor access to KW page should still fault")
	}
}

func err1(t *testing.T) string { t.Helper(); return "setup failed" }

func TestGuestKCALLConsoleAndDisk(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, `
start:	movl #1, r0          ; console put
	movl #72, r1         ; 'H'
	mtpr #0, #201        ; KCALL
	movl #1, r0
	movl #105, r1        ; 'i'
	mtpr #0, #201
	movl #3, r0          ; disk read
	movl #2, r1          ; block 2
	movl #0x5000, r2     ; VM-phys buffer
	mtpr #0, #201
	tstl r0
	bneq bad
	movl @#0x80005000, r4
	halt
bad:	movl #0xBAD, r4
	halt
`, nil)
	copy(vm.Disk().Image()[2*vax.PageSize:], []byte{0xEF, 0xBE, 0xAD, 0xDE})
	runVM(t, k, vm, 100000)
	if vm.ConsoleOutput() != "Hi" {
		t.Errorf("console = %q", vm.ConsoleOutput())
	}
	if k.CPU.R[4] != 0xDEADBEEF {
		t.Errorf("disk data = %#x", k.CPU.R[4])
	}
	if vm.Stats.KCALLs != 3 {
		t.Errorf("KCALLs = %d", vm.Stats.KCALLs)
	}
	if vm.Disk().Reads != 1 {
		t.Errorf("disk reads = %d", vm.Disk().Reads)
	}
}

func TestGuestDiskCompletionInterrupt(t *testing.T) {
	// The KCALL disk read posts a virtual completion interrupt,
	// delivered when the VM's IPL drops.
	k, vm, _ := bootVM(t, Config{}, `
start:	mtpr #31, #18        ; virtual IPL 31: mask everything
	movl #3, r0
	movl #1, r1
	movl #0x5000, r2
	mtpr #0, #201        ; KCALL disk read
	movl #1, r3          ; no interrupt yet
	mtpr #0, #18         ; drop IPL: completion delivers
	halt
	.align 4
diskh:	movl #0xD15C, r9
	rei
`, map[vax.Vector]string{vax.VecDisk: "diskh"})
	runVM(t, k, vm, 100000)
	c := k.CPU
	if c.R[3] != 1 {
		t.Error("interrupt delivered while IPL masked")
	}
	if c.R[9] != 0xD15C {
		t.Error("disk completion interrupt not delivered")
	}
	if vm.Stats.MTPRIPL != 2 {
		t.Errorf("MTPRIPL = %d", vm.Stats.MTPRIPL)
	}
	if vm.Stats.VirtualIRQs != 1 {
		t.Errorf("VirtualIRQs = %d", vm.Stats.VirtualIRQs)
	}
}

func TestGuestVirtualClock(t *testing.T) {
	// Guest enables its virtual interval clock and counts ticks until 3.
	k, vm, _ := bootVM(t, Config{}, `
start:	mtpr #0x41, #24      ; ICCS: run + interrupt enable
loop:	cmpl r10, #3
	blss loop
	halt
	.align 4
clkh:	incl r10
	mtpr #0xC1, #24      ; acknowledge, keep run+IE
	rei
`, map[vax.Vector]string{vax.VecClock: "clkh"})
	runVM(t, k, vm, 2_000_000)
	if k.CPU.R[10] < 3 {
		t.Errorf("ticks = %d", k.CPU.R[10])
	}
	if vm.Ticks() == 0 {
		t.Error("VM uptime did not advance")
	}
}

func TestUptimeCell(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, `
start:	movl #6, r0          ; set uptime cell
	movl #0x6100, r1
	mtpr #0, #201
	mtpr #0x41, #24      ; enable clock so ticks arrive
loop:	movl @#0x80006100, r5
	cmpl r5, #2
	blss loop
	halt
	.align 4
clkh:	mtpr #0xC1, #24
	rei
`, map[vax.Vector]string{vax.VecClock: "clkh"})
	runVM(t, k, vm, 2_000_000)
	if guestLong(t, vm, 0x6100) < 2 {
		t.Error("uptime cell not maintained by VMM")
	}
}

func TestTwoVMsShareProcessor(t *testing.T) {
	src := `
start:	incl r6
	cmpl r6, #40000
	blss start
	halt
`
	img, prog := guestImage(t, src, nil)
	k := New(16<<20, Config{})
	for i := 0; i < 2; i++ {
		vm, err := k.CreateVM(VMConfig{
			MemBytes: gMemSize, Image: img, StartPC: prog.MustSymbol("start"),
			PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB,
		})
		if err != nil {
			t.Fatal(err)
		}
		vm.SPs[vax.Kernel] = gKSP
	}
	k.Run(5_000_000)
	for _, vm := range k.VMs() {
		if h, msg := vm.Halted(); !h {
			t.Errorf("%s did not finish", vm.Name())
		} else if !strings.Contains(msg, "HALT") {
			t.Errorf("%s: %s", vm.Name(), msg)
		}
	}
	if k.Stats.WorldSwitches < 2 {
		t.Errorf("WorldSwitches = %d", k.Stats.WorldSwitches)
	}
}

func TestWAITYieldsProcessor(t *testing.T) {
	// VM 0 waits for a console interrupt that never comes (timeout);
	// VM 1 runs meanwhile. VM 0's WAIT must let VM 1 finish quickly.
	waiter := `
start:	wait
	incl r6
	wait
	incl r6
	halt
`
	worker := `
start:	incl r6
	cmpl r6, #5000
	blss start
	halt
`
	imgW, progW := guestImage(t, waiter, nil)
	imgR, progR := guestImage(t, worker, nil)
	k := New(16<<20, Config{WaitTimeout: 2})
	vmW, err := k.CreateVM(VMConfig{MemBytes: gMemSize, Image: imgW,
		StartPC: progW.MustSymbol("start"), PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB})
	if err != nil {
		t.Fatal(err)
	}
	vmR, err := k.CreateVM(VMConfig{MemBytes: gMemSize, Image: imgR,
		StartPC: progR.MustSymbol("start"), PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB})
	if err != nil {
		t.Fatal(err)
	}
	vmW.SPs[vax.Kernel] = gKSP
	vmR.SPs[vax.Kernel] = gKSP
	k.Run(10_000_000)
	if h, _ := vmR.Halted(); !h {
		t.Error("worker starved")
	}
	if h, _ := vmW.Halted(); !h {
		t.Error("waiter never timed out")
	}
	if vmW.Stats.Waits != 2 {
		t.Errorf("Waits = %d", vmW.Stats.Waits)
	}
}

func TestNonexistentMemoryHaltsVM(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, `
start:	movl @#0x80005000, r0
	halt
`, nil)
	// Point S page 40 (va 0x80005000) at a VM-physical frame beyond the
	// VM's memory.
	pte := vax.NewPTE(true, vax.ProtUW, true, 4000)
	if !vm.writePhys(gSPT+4*40, uint32(pte)) {
		t.Fatal("setup failed")
	}
	runVM(t, k, vm, 10000)
	if _, msg := vm.Halted(); !strings.Contains(msg, "nonexistent") {
		t.Errorf("halt reason %q", msg)
	}
}

func TestGuestTBISCoherence(t *testing.T) {
	// Guest changes a *valid* PTE and issues TBIS; the shadow must be
	// refilled from the new PTE.
	k, vm, _ := bootVM(t, Config{}, `
start:	movl #0x11, @#0x80004600     ; touch page 35 (fills shadow)
	movl #0x22, @#0x80004800     ; touch page 36
	movl @#0x8000028C, r0        ; guest PTE for page 35
	movl @#0x80000290, r1        ; guest PTE for page 36
	movl r1, @#0x8000028C        ; repoint page 35 at frame 36
	mtpr #0x80004600, #58        ; TBIS
	movl @#0x80004600, r5        ; now reads frame 36's data
	halt
`, nil)
	runVM(t, k, vm, 10000)
	if k.CPU.R[5] != 0x22 {
		t.Errorf("after TBIS read %#x, want 0x22", k.CPU.R[5])
	}
}

func TestShadowCacheReducesFills(t *testing.T) {
	// Two guest "processes" (two P0 tables in guest S space) touching 8
	// pages each, alternated repeatedly. Without the multi-process
	// cache every switch clears the single shadow table and every touch
	// refaults; with 2 slots only the first round faults (Section 7.2).
	src := `
start:	movl #8, r11         ; rounds
outer:	mtpr #0x80000300, #8 ; P0BR = process A's table (guest S va)
	mtpr #8, #9          ; P0LR = 8 pages
	clrl r2
	clrl r3              ; base va 0
touchA:	movl (r3), r4
	addl2 #512, r3
	aobleq #7, r2, touchA
	mtpr #0x80000340, #8 ; process B
	mtpr #8, #9
	clrl r2
	clrl r3
touchB:	movl (r3), r4
	addl2 #512, r3
	aobleq #7, r2, touchB
	sobgtr r11, outer
	halt
`
	run := func(slots int) uint64 {
		k, vm, _ := bootVM(t, Config{ShadowCacheSlots: slots}, src, nil)
		// Two guest P0 tables at VM-phys 0x300 and 0x340, both mapping
		// P0 pages 0..7 to VM frames 48.. and 56...
		for i := uint32(0); i < 8; i++ {
			vm.writePhys(0x300+4*i, uint32(vax.NewPTE(true, vax.ProtUW, true, 48+i)))
			vm.writePhys(0x340+4*i, uint32(vax.NewPTE(true, vax.ProtUW, true, 56+i)))
		}
		runVM(t, k, vm, 10_000_000)
		return vm.Stats.ShadowFills
	}
	without := run(1)
	with := run(4)
	if with >= without {
		t.Fatalf("cache did not help: with=%d without=%d", with, without)
	}
	reduction := 1 - float64(with)/float64(without)
	if reduction < 0.5 {
		t.Errorf("reduction only %.0f%% (with=%d without=%d)", reduction*100, with, without)
	}
}

func TestTrapAllSchemeRunsSlower(t *testing.T) {
	src := `
start:	movl #2000, r1
loop:	addl2 #1, r0
	sobgtr r1, loop
	halt
`
	run := func(scheme RingScheme) uint64 {
		k, vm, _ := bootVM(t, Config{Scheme: scheme}, src, nil)
		runVM(t, k, vm, 10_000_000)
		if k.CPU.R[0] != 2000 {
			t.Fatalf("wrong result under %s: %d", scheme, k.CPU.R[0])
		}
		return k.CPU.Cycles
	}
	compression := run(RingCompression)
	trapAll := run(TrapAll)
	if trapAll < compression*5 {
		t.Errorf("trap-all should be much slower: %d vs %d", trapAll, compression)
	}
}

func TestSeparateAddressSpaceCostsMore(t *testing.T) {
	// A syscall-heavy guest pays extra under the separate-address-space
	// scheme (two address-space switches per VMM crossing).
	src := `
start:	movl #300, r10
loop:	chmk #1
	sobgtr r10, loop
	halt
	.align 4
chmk:	addl2 #4, sp
	rei
`
	vectors := map[vax.Vector]string{vax.VecCHMK: "chmk"}
	run := func(scheme RingScheme) uint64 {
		k, vm, _ := bootVM(t, Config{Scheme: scheme}, src, vectors)
		runVM(t, k, vm, 10_000_000)
		return k.CPU.Cycles
	}
	shared := run(RingCompression)
	separate := run(SeparateAddressSpace)
	if separate <= shared {
		t.Errorf("separate address space not costlier: %d vs %d", separate, shared)
	}
}

func TestMMIOEmulatedDiskBaseline(t *testing.T) {
	// The guest drives the disk through memory-mapped registers; the
	// VMM emulates each reference. S page 60 maps the device frame.
	src := `
devpage = 0x80007800
start:	movl #1, @#devpage+4        ; block register
	movl #0x5000, @#devpage+8   ; VM-phys address
	movl #512, @#devpage+12     ; count
	movl #3, @#devpage          ; CSR: GO | read
	movl @#devpage+16, r5       ; status
	movl @#0x80005000, r6       ; transferred data
	halt
`
	img, prog := guestImage(t, src, nil)
	// Map S page 60 at the device frame.
	devPFN := VMDiskBase / vax.PageSize
	binary.LittleEndian.PutUint32(img[gSPT+4*60:], uint32(vax.NewPTE(true, vax.ProtKW, true, devPFN)))
	k := New(8<<20, Config{MMIOEmulatedIO: true})
	vm, err := k.CreateVM(VMConfig{MemBytes: gMemSize, Image: img,
		StartPC: prog.MustSymbol("start"), PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB})
	if err != nil {
		t.Fatal(err)
	}
	vm.SPs[vax.Kernel] = gKSP
	copy(vm.Disk().Image()[vax.PageSize:], []byte{0x78, 0x56, 0x34, 0x12})
	k.Run(1_000_000)
	if h, msg := vm.Halted(); !h || !strings.Contains(msg, "HALT") {
		t.Fatalf("vm state: halted=%t %q pc=%#x", h, msg, k.CPU.PC())
	}
	if k.CPU.R[5] != KCallStatusOK {
		t.Errorf("device status = %d", k.CPU.R[5])
	}
	if k.CPU.R[6] != 0x12345678 {
		t.Errorf("transferred data = %#x", k.CPU.R[6])
	}
	// Every register reference trapped: 4 writes + 1 status read = 5
	// emulations versus 1 KCALL for the same operation (Section 4.4.3).
	if vm.Stats.MMIOEmuls != 5 {
		t.Errorf("MMIOEmuls = %d, want 5", vm.Stats.MMIOEmuls)
	}
}

func TestBootMapenTransition(t *testing.T) {
	// A guest that boots with memory management off and turns it on,
	// using a P0 table that identity-maps its boot pages — the real
	// VMS boot sequence shape. Table 4: MTPR (LDPCTX et al.) traps from
	// VM kernel mode; MAPEN emulation switches the shadow machinery.
	src := `
	.org 0x1000
start:	mtpr #0x200, #12     ; SBR = VM-phys SPT
	mtpr #64, #13        ; SLR
	mtpr #0, #17         ; SCBB
	mtpr #0x300, #8      ; P0BR: guest P0 table (VM-PHYSICAL while off? no - S va)
	nop
	halt
`
	// The simple path: this test drives MTPR MAPEN with a P0 table that
	// identity-maps low memory, then jumps to an S-space address.
	boot := `
	.org 0x1000
start:	mtpr #0x200, #12     ; SBR
	mtpr #64, #13        ; SLR
	mtpr #0, #17         ; SCBB
	mtpr #0x80000300, #8 ; P0BR = S va of the P0 table
	mtpr #16, #9         ; P0LR = 16 pages identity
	mtpr #1, #56         ; MAPEN on; next fetch is P0 va 0x10xx
	jmp @#mapped
	.org 0x1100
mapped = 0x80001100 + 0
	movl #1, r9
	halt
`
	_ = src
	prog, err := asm.Assemble(boot, 0)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, gMemSize)
	copy(img[0:], prog.Code)
	// Guest SPT at 0x200: identity for 64 pages.
	for i := uint32(0); i < 64; i++ {
		binary.LittleEndian.PutUint32(img[gSPT+4*i:], uint32(vax.NewPTE(true, vax.ProtUW, true, i)))
	}
	// Guest P0 table at 0x300: identity for 16 pages.
	for i := uint32(0); i < 16; i++ {
		binary.LittleEndian.PutUint32(img[0x300+4*i:], uint32(vax.NewPTE(true, vax.ProtUW, true, i)))
	}
	k := New(8<<20, Config{})
	vm, err2 := k.CreateVM(VMConfig{MemBytes: gMemSize, Image: img, StartPC: 0x1000})
	if err2 != nil {
		t.Fatal(err2)
	}
	k.Run(100000)
	if h, msg := vm.Halted(); !h || !strings.Contains(msg, "HALT") {
		t.Fatalf("boot failed: halted=%t %q pc=%#x", h, msg, k.CPU.PC())
	}
	if k.CPU.R[9] != 1 {
		t.Error("mapped code did not run")
	}
	if !vm.mapen {
		t.Error("MAPEN emulation failed")
	}
}

// TestGuestInterruptStack: an SCB entry with bit 0 set runs its handler
// on the VM's interrupt stack; REI returns to the interrupted context
// and the normal stack (Section 3.3 semantics inside a VM).
func TestGuestInterruptStack(t *testing.T) {
	k, vm, prog := bootVM(t, Config{}, `
start:	mtpr #0x41, #24      ; virtual clock on
loop:	tstl r10
	beql loop
	movpsl r9            ; back on the kernel stack, IS clear
	halt
	.align 4
clkh:	movpsl r7            ; captured on the interrupt stack
	movl sp, r8
	incl r10
	mtpr #0xC1, #24
	rei
`, nil)
	// Clock vector with the interrupt-stack bit.
	if !vm.writePhys(uint32(vax.VecClock), prog.MustSymbol("clkh")|1) {
		t.Fatal("setup failed")
	}
	runVM(t, k, vm, 2_000_000)
	c := k.CPU
	handlerPSL := vax.PSL(c.R[7])
	if !handlerPSL.IS() {
		t.Error("handler PSL does not show the interrupt stack")
	}
	if handlerPSL.IPL() != vax.IPLClock {
		t.Errorf("handler IPL = %d", handlerPSL.IPL())
	}
	// Handler SP within the guest ISP area (gISP = base + frame).
	if c.R[8] > gISP || c.R[8] < gISP-64 {
		t.Errorf("handler sp = %#x, not on the interrupt stack (%#x)", c.R[8], gISP)
	}
	after := vax.PSL(c.R[9])
	if after.IS() || after.IPL() != 0 {
		t.Errorf("after REI: %s", after)
	}
}
