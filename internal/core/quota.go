package core

import "fmt"

// Quota bounds what one monitor will host — the whole-machine backstop
// behind the fleet manager's per-tenant budgets (internal/fleet). Zero
// values disable each check, so existing callers see no change.
type Quota struct {
	// MaxVMs bounds live (non-halted) VMs.
	MaxVMs int
	// MaxPages bounds NominalPages: the sum of every VM's configured
	// memory in pages, whether COW-shared or not. Halted VMs count
	// until destroyed — their pages are still carved.
	MaxPages uint32
}

// QuotaError reports a CreateVM/Clone rejected by the monitor quota,
// with the limit that would have been breached. The fleet layer
// surfaces it as a typed 429; programmatic callers unwrap it with
// errors.As.
type QuotaError struct {
	Resource string // "vms" or "pages"
	Limit    uint64
	Want     uint64 // value admission would have reached
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("vmm: quota exceeded: %s limit %d, admission would reach %d",
		e.Resource, e.Limit, e.Want)
}

// checkQuota admits or rejects adding one VM of addPages pages.
func (k *VMM) checkQuota(addPages uint32) error {
	q := k.cfg.Quota
	if q.MaxVMs > 0 {
		if n := k.liveVMs() + 1; n > q.MaxVMs {
			return &QuotaError{Resource: "vms", Limit: uint64(q.MaxVMs), Want: uint64(n)}
		}
	}
	if q.MaxPages > 0 {
		if n := uint64(k.NominalPages()) + uint64(addPages); n > uint64(q.MaxPages) {
			return &QuotaError{Resource: "pages", Limit: uint64(q.MaxPages), Want: n}
		}
	}
	return nil
}
