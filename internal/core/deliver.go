package core

import (
	"repro/internal/cpu"
	"repro/internal/trace"
	"repro/internal/vax"
)

// guestFault describes an exception the VMM reflects into the VM
// through the VM's own SCB.
type guestFault struct {
	vec    vax.Vector
	params []uint32
}

// The guest-fault constructors recycle a per-VM scratch cell (vm.gf /
// vm.gfParams) instead of allocating: reflecting a fault is the VMM's
// hottest slow path, and every fault carries at most two parameter
// longwords. The same convention as the CPU's exception scratch
// applies — a *guestFault is consumed synchronously (reflect or
// deliverToVM) before the next fault can be constructed, and is never
// retained. deliverToVM's failure path returns without re-reading the
// parameters, so a nested fault taken while pushing them is safe.

// gfSet recycles the VM's guest-fault cell with no parameters.
func (vm *VM) gfSet(vec vax.Vector) *guestFault {
	vm.gf = guestFault{vec: vec}
	return &vm.gf
}

// gfSet2 recycles the VM's guest-fault cell with the fault parameter /
// faulting VA pair of the memory-management vectors.
func (vm *VM) gfSet2(vec vax.Vector, p0, p1 uint32) *guestFault {
	vm.gfParams[0], vm.gfParams[1] = p0, p1
	vm.gf = guestFault{vec: vec, params: vm.gfParams[:2]}
	return &vm.gf
}

// gfCopy recycles the cell with a copy of an exception's parameters
// (which may be backed by the MMU's own scratch storage). Parameter
// lists beyond the scratch capacity fall back to the heap and are
// counted, documenting the zero-alloc invariant.
func (vm *VM) gfCopy(vec vax.Vector, params []uint32) *guestFault {
	if len(params) > len(vm.gfParams) {
		vm.Stats.SlowPathAllocs++
		return &guestFault{vec: vec, params: append([]uint32(nil), params...)}
	}
	n := copy(vm.gfParams[:], params)
	vm.gf = guestFault{vec: vec, params: vm.gfParams[:n]}
	return &vm.gf
}

func (vm *VM) avFault(va uint32, write, length bool) *guestFault {
	p := uint32(0)
	if write {
		p |= vax.FaultParamWrite
	}
	if length {
		p |= vax.FaultParamLength
	}
	return vm.gfSet2(vax.VecAccessViol, p, va)
}

func (vm *VM) avFaultPTE(va uint32, write bool) *guestFault {
	p := vax.FaultParamPTERef | vax.FaultParamLength
	if write {
		p |= vax.FaultParamWrite
	}
	return vm.gfSet2(vax.VecAccessViol, p, va)
}

func (vm *VM) tnvFaultG(va uint32, write bool) *guestFault {
	p := uint32(0)
	if write {
		p |= vax.FaultParamWrite
	}
	return vm.gfSet2(vax.VecTransNotValid, p, va)
}

func (vm *VM) tnvFaultPTE(va uint32, write bool) *guestFault {
	p := vax.FaultParamPTERef
	if write {
		p |= vax.FaultParamWrite
	}
	return vm.gfSet2(vax.VecTransNotValid, p, va)
}

func (vm *VM) rsvdOperandFault() *guestFault {
	return vm.gfSet(vax.VecRsvdOperand)
}

// guestTranslate resolves a guest virtual address to a VM-physical
// address by walking the VM's own tables, checking the (uncompressed)
// guest protection for mode.
func (k *VMM) guestTranslate(vm *VM, va uint32, write bool, mode vax.Mode) (uint32, *guestFault) {
	if !vm.mapen {
		return va, nil
	}
	gpte, gf := k.guestPTE(vm, va, write)
	if gf != nil {
		return 0, gf
	}
	if vm.halted {
		return 0, nil
	}
	prot := gpte.Prot()
	if prot.Reserved() {
		return 0, vm.avFault(va, write, false)
	}
	allowed := prot.CanRead(mode)
	if write {
		allowed = prot.CanWrite(mode)
	}
	if !allowed {
		return 0, vm.avFault(va, write, false)
	}
	if !gpte.Valid() {
		return 0, vm.tnvFaultG(va, write)
	}
	if write && !gpte.Modified() {
		// A VMM write on the guest's behalf sets PTE<M>, as hardware
		// would from the guest's point of view.
		k.setGuestPTEModify(vm, va)
	}
	return gpte.PFN()*vax.PageSize + (va & vax.PageMask), nil
}

// guestRead reads a guest-virtual longword as the given guest mode.
func (k *VMM) guestRead(vm *VM, va uint32, mode vax.Mode) (uint32, *guestFault) {
	pa, gf := k.guestTranslate(vm, va, false, mode)
	if gf != nil || vm.halted {
		return 0, gf
	}
	v, ok := vm.readPhys(pa)
	if !ok {
		k.haltVM(vm, "guest read of nonexistent memory")
		return 0, nil
	}
	return v, nil
}

// guestWrite writes a guest-virtual longword as the given guest mode.
func (k *VMM) guestWrite(vm *VM, va uint32, v uint32, mode vax.Mode) *guestFault {
	pa, gf := k.guestTranslate(vm, va, true, mode)
	if gf != nil || vm.halted {
		return gf
	}
	if !vm.writePhys(pa, v) {
		k.haltVM(vm, "guest write of nonexistent memory")
	}
	return nil
}

// deliverToVM transfers control to the VM's handler for vec, pushing
// params, pc and the VM's composite PSL on the stack the VM's SCB entry
// selects — the software half of forwarding CHM exceptions, reflected
// faults and virtual interrupts (Sections 4.2.2, 4.2.3, 5).
//
// newMode is the guest mode the handler runs in (kernel for everything
// but CHM); newIPL, when non-negative, raises the guest IPL (interrupt
// delivery).
func (k *VMM) deliverToVM(vm *VM, vec vax.Vector, params []uint32, pc uint32,
	newMode vax.Mode, newIPL int) {
	c := k.CPU
	scbLong, ok := vm.readPhys(vm.scbb + uint32(vec))
	if !ok {
		k.haltVM(vm, "VM SCB outside VM memory")
		return
	}
	handler := scbLong &^ 3
	useIS := scbLong&1 == 1 && newMode == vax.Kernel
	if handler == 0 {
		// A machine check the guest never wired a handler for is a
		// recoverable death: the error is external to the checkpointed
		// state, so the supervisor may roll the VM back. Every other
		// missing handler is the guest's own structural bug.
		cause := haltFatal
		if vec == vax.VecMachineCheck {
			cause = haltNoHandler
		}
		k.haltVMCause(vm, "VM has no handler for "+vec.String(), cause)
		return
	}

	oldPSL := c.GuestPSL()
	k.saveGuestSP(vm)

	newPSL := vax.PSL(0).WithCur(newMode).WithPrv(oldPSL.Cur()).WithIPL(oldPSL.IPL())
	if newIPL >= 0 {
		newPSL = newPSL.WithIPL(uint8(newIPL))
	}
	sp := vm.SPs[newMode]
	if useIS {
		sp = vm.ISP
		newPSL = vax.PSL(uint32(newPSL) | vax.PSLIS)
	}

	push := func(v uint32) bool {
		sp -= 4
		if gf := k.guestWrite(vm, sp, v, newMode); gf != nil {
			k.haltVM(vm, "VM stack not valid during exception delivery")
			return false
		}
		return !vm.halted
	}
	if !push(uint32(oldPSL)) || !push(pc) {
		return
	}
	for i := len(params) - 1; i >= 0; i-- {
		if !push(params[i]) {
			return
		}
	}

	// Install the new guest context.
	c.VMPSL = newPSL
	real := vax.PSL(0).
		WithCur(compressMode(newPSL.Cur())).
		WithPrv(compressMode(newPSL.Prv())).
		WithVM(true)
	c.SetPSL(real)
	c.SetSP(sp)
	c.SetPC(handler)
	k.Stats.ReflectedTraps++
	k.charge(cpu.CostVMMInterrupt)
}

// reflect forwards a guest fault into the VM at the current PC.
func (k *VMM) reflect(vm *VM, gf *guestFault) {
	if gf == nil || vm.halted {
		return
	}
	vm.Stats.ReflectedFaults++
	k.record(vm, AuditReflected, gf.vec.String())
	k.deliverToVM(vm, gf.vec, gf.params, k.CPU.PC(), vax.Kernel, -1)
}

// deliverPendingIRQs delivers the highest pending virtual interrupt to
// the (current) VM if its IPL admits it. One delivery is enough: the
// guest's REI path re-enters the VMM, which scans again.
func (k *VMM) deliverPendingIRQs(vm *VM) {
	if vm.halted || k.Current() != vm {
		return
	}
	vm.drainExternalIRQs()
	// Injected clock-interrupt storm: the timer line "sticks" and the
	// VM sees a clock interrupt at every delivery opportunity while the
	// storm window is open. Bounded: handling the interrupts advances
	// real time past the window.
	if k.faults != nil && k.faults.StormHit(vm.ID, k.Stats.ClockTicks) {
		vm.postIRQ(vax.IPLClock, vax.VecClock)
	}
	level := vm.pendingAbove(k.CPU.VMPSL.IPL())
	if level == 0 {
		return
	}
	var vec vax.Vector
	if vm.pendingIRQ[level] != 0 {
		vec = vm.pendingIRQ[level]
		vm.pendingIRQ[level] = 0
	} else {
		vec = vax.SoftwareVector(level)
		vm.sisr &^= 1 << level
	}
	vm.Stats.VirtualIRQs++
	k.Stats.VirtualIRQs++
	if vm.rec != nil {
		vm.rec.Record(trace.EvVirtualIRQ, k.CPU.Cycles, uint32(vec))
		if vm.kcallPending && vec == vax.VecDisk {
			vm.kcallPending = false
			vm.rec.Observe(trace.LatKCall, k.CPU.Cycles-vm.kcallStart)
		}
	}
	vm.idleWaits = 0 // a real delivery breaks any idle-WAIT streak
	k.deliverToVM(vm, vec, nil, k.CPU.PC(), vax.Kernel, int(level))
}
