package core

import (
	"repro/internal/cpu"
	"repro/internal/trace"
	"repro/internal/vax"
)

// emulateMTPR services MTPR from VM kernel mode. Registers that shape
// the virtual processor update VMM-side state; the mapping registers
// feed the shadow machinery; TBIA/TBIS keep shadows coherent with the
// VM's page tables; KCALL is the start-I/O handshake.
func (k *VMM) emulateMTPR(vm *VM, info *vax.VMTrapInfo) {
	c := k.CPU
	v := info.Operands[0]
	reg := vax.IPR(info.Operands[1])

	if reg == vax.IPRIPL {
		// The hot path of Section 7.3: emulating MTPR-to-IPL costs the
		// VMM ten to twelve times the optimized hardware path.
		vm.Stats.MTPRIPL++
		k.charge(cpu.CostVMMMTPRIPL)
		c.VMPSL = c.VMPSL.WithIPL(uint8(v))
		c.SetPC(info.NextPC)
		k.resumeVM(vm)
		k.deliverPendingIRQs(vm)
		return
	}

	vm.Stats.MTPROther++
	k.charge(cpu.CostVMMMTPROther)
	done := func() {
		if vm.halted || k.Current() != vm {
			return
		}
		c.SetPC(info.NextPC)
		k.resumeVM(vm)
	}

	switch reg {
	case vax.IPRKSP, vax.IPRESP, vax.IPRSSP, vax.IPRUSP:
		m := vax.Mode(reg)
		if !c.VMPSL.IS() && c.VMPSL.Cur() == m {
			c.SetSP(v)
		} else {
			vm.SPs[m] = v
		}
	case vax.IPRISP:
		if c.VMPSL.IS() {
			c.SetSP(v)
		} else {
			vm.ISP = v
		}
	case vax.IPRSCBB:
		vm.scbb = v &^ uint32(vax.PageMask)
	case vax.IPRPCBB:
		vm.pcbb = v
	case vax.IPRSIRR:
		if v >= 1 && v <= vax.IPLSoftwareMax {
			vm.sisr |= 1 << v
		}
		c.SetPC(info.NextPC)
		k.resumeVM(vm)
		k.deliverPendingIRQs(vm)
		return
	case vax.IPRSISR:
		vm.sisr = v & 0xFFFE
	case vax.IPRASTL:
		vm.astlvl = v
	case vax.IPRP0BR:
		if v != vm.p0br {
			vm.p0br = v
			if err := vm.shadow.switchProcess(k, v); err != nil {
				k.haltVM(vm, "shadow switch failed: "+err.Error())
				return
			}
		}
	case vax.IPRP0LR:
		vm.p0lr = v
		vm.shadow.activate(c)
	case vax.IPRP1BR:
		vm.p1br = v
		_ = vm.shadow.clearP1(k)
		c.MMU.TBIA()
	case vax.IPRP1LR:
		vm.p1lr = v
		vm.shadow.activate(c)
	case vax.IPRSBR:
		vm.sbr = v
		_ = vm.shadow.clearSRegion(k)
		c.MMU.TBIA()
	case vax.IPRSLR:
		vm.slr = min32(v, VMSLimitPTEs)
		_ = vm.shadow.clearSRegion(k)
		c.MMU.TBIA()
	case vax.IPRMPEN:
		vm.mapen = v&1 == 1
		vm.shadow.activate(c)
		c.MMU.TBIA()
	case vax.IPRTBIA:
		// The VM invalidated all translations: its PTEs may have
		// changed arbitrarily, so drop every shadow translation.
		_ = vm.shadow.clearSRegion(k)
		if err := vm.shadow.clearSlot(k, vm.shadow.active); err != nil {
			k.haltVM(vm, err.Error())
			return
		}
		vm.shadow.slotOwner[vm.shadow.active] = vm.p0br
		_ = vm.shadow.clearP1(k)
		c.MMU.TBIA()
	case vax.IPRTBIS:
		vm.shadow.invalidate(k, v)
	case vax.IPRICCS:
		vm.clockOn = v&vax.ICCSRun != 0
		vm.clockIE = v&vax.ICCSIE != 0
		if v&vax.ICCSInt != 0 {
			vm.pendingIRQ[vax.IPLClock] = 0
		}
	case vax.IPRNICR, vax.IPRICR, vax.IPRTODR:
		// The virtual clock period is the VMM's tick; reload values are
		// accepted and ignored.
	case vax.IPRTXCS, vax.IPRRXCS:
		vm.cons.SetCSR(reg, v)
	case vax.IPRTXDB:
		vm.cons.Put(byte(v))
	case vax.IPRKCALL:
		vm.Stats.KCALLs++
		k.charge(cpu.CostVMMIOStart)
		// Complete the MTPR before servicing: the KCALL may deliver a
		// virtual machine check, and the handler PC it establishes must
		// not be clobbered by done()'s advance past the instruction.
		c.SetPC(info.NextPC)
		k.resumeVM(vm)
		if vm.rec != nil {
			kcStart, fn := c.Cycles, c.R[0]
			vm.rec.Record(trace.EvKCallStart, kcStart, fn)
			k.kcall(vm, v)
			vm.rec.Record(trace.EvKCallDone, c.Cycles, c.R[0])
			if (fn == KCallDiskRead || fn == KCallDiskWrite) && c.R[0] == KCallStatusOK {
				// A disk KCALL completes when its virtual IRQ is
				// delivered; the latency span closes there.
				vm.kcallStart, vm.kcallPending = kcStart, true
			} else {
				vm.rec.Observe(trace.LatKCall, c.Cycles-kcStart)
			}
		} else {
			k.kcall(vm, v)
		}
		return
	case vax.IPRIORESET:
		vm.disk.reset()
		vm.cons = vConsole{}
	default:
		k.resumeVM(vm)
		k.reflect(vm, vm.rsvdOperandFault())
		return
	}
	done()
}

// emulateMFPR services MFPR from VM kernel mode, completing the
// instruction's result write through the microcode-provided operand
// reference.
func (k *VMM) emulateMFPR(vm *VM, info *vax.VMTrapInfo) {
	c := k.CPU
	vm.Stats.MFPRs++
	k.charge(cpu.CostVMMMTPROther)
	reg := vax.IPR(info.Operands[0])

	var v uint32
	switch reg {
	case vax.IPRKSP, vax.IPRESP, vax.IPRSSP, vax.IPRUSP:
		m := vax.Mode(reg)
		if !c.VMPSL.IS() && c.VMPSL.Cur() == m {
			v = c.SP()
		} else {
			v = vm.SPs[m]
		}
	case vax.IPRISP:
		if c.VMPSL.IS() {
			v = c.SP()
		} else {
			v = vm.ISP
		}
	case vax.IPRSCBB:
		v = vm.scbb
	case vax.IPRPCBB:
		v = vm.pcbb
	case vax.IPRIPL:
		v = uint32(c.VMPSL.IPL())
	case vax.IPRSISR:
		v = vm.sisr
	case vax.IPRASTL:
		v = vm.astlvl
	case vax.IPRP0BR:
		v = vm.p0br
	case vax.IPRP0LR:
		v = vm.p0lr
	case vax.IPRP1BR:
		v = vm.p1br
	case vax.IPRP1LR:
		v = vm.p1lr
	case vax.IPRSBR:
		v = vm.sbr
	case vax.IPRSLR:
		v = vm.slr
	case vax.IPRMPEN:
		if vm.mapen {
			v = 1
		}
	case vax.IPRICCS:
		if vm.clockOn {
			v |= vax.ICCSRun
		}
		if vm.clockIE {
			v |= vax.ICCSIE
		}
	case vax.IPRTODR:
		v = uint32(vm.ticks)
	case vax.IPRSID:
		// A distinct processor-type code identifies the virtual VAX.
		v = virtualSID
	case vax.IPRTXCS:
		v = vax.ConsoleReady
	case vax.IPRRXCS:
		v = vm.cons.RXCS()
	case vax.IPRRXDB:
		v = vm.cons.Get()
	case vax.IPRMEMSIZE:
		// Section 5: "The VMOS must read a processor-specific register
		// (MEMSIZE) to determine the total amount of memory available."
		v = vm.MemSize
	default:
		k.resumeVM(vm)
		k.reflect(vm, vm.rsvdOperandFault())
		return
	}
	// Complete the result write in the VM's context.
	k.resumeVM(vm)
	if info.WriteBack != nil {
		if err := c.WriteRef(info.WriteBack, v); err != nil {
			k.reflect(vm, vm.gfSet2(vax.VecAccessViol, 0, 0))
			return
		}
	}
	c.SetPC(info.NextPC)
}

// virtualSID is the system identification of the virtual VAX processor
// — "a unique or specific member of a family of processors" (Section 8).
const virtualSID uint32 = 0x56560001
