package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/dev"
	"repro/internal/trace"
	"repro/internal/vax"
)

// The parallel execution engine. The paper's VMM multiplexes many
// guests on one physical VAX; this engine lets the reproduction use
// many host cores instead, in the shape of Disco-style sharded monitor
// state: each runnable VM gets a *shard* — a private VMM instance with
// its own virtual processor (CPU, MMU, TLB, decoded-instruction
// cache), interval clock, I/O scratch buffer and statistics — while
// physical memory, the page allocator and the audit sequence stay
// shared behind the structures in vmmShared. Because every VM occupies
// a disjoint range of physical memory (its RAM and its shadow-table
// pages are both carved out at CreateVM time), shards never write each
// other's bytes, and all of the serial emulation machinery runs on a
// shard unchanged.
//
// The engine is intentionally NOT deterministic: interleaving depends
// on the host scheduler. Experiments and the fault campaign therefore
// keep the serial engine (the default, and the forced fallback when a
// fault injector is attached, since injection schedules key off the
// single machine-wide tick stream).

// ParallelRunStats summarizes the last RunParallel invocation.
type ParallelRunStats struct {
	Workers int
	VMs     int
	Steps   uint64 // total processor steps across all shards
	Instrs  uint64 // guest instructions executed across all shards
	Cycles  uint64 // machine cycle count at the end (furthest shard)
	// Slow-path totals at the end of the run, summed over the VMs that
	// took part (captured after the merge barrier, so reading them is
	// race-free even though per-VM counters are goroutine-confined
	// while the run is in flight).
	FillBatches      uint64
	BatchFills       uint64
	SlowPathAllocs   uint64
	ShadowPoolHits   uint64
	ShadowPoolMisses uint64
}

// LastParallelRun returns statistics for the most recent RunParallel.
func (k *VMM) LastParallelRun() ParallelRunStats { return k.lastParallel }

const (
	// workerQuantum is how many processor steps a worker runs before
	// releasing its semaphore slot, so N VMs share M < N workers fairly.
	workerQuantum = 1 << 16
	// parkCheckChunk is the sub-quantum granularity at which a worker
	// checks for halt and parking conditions while inside a quantum.
	parkCheckChunk = 1 << 11
	// parkAfterIdleWaits is how many consecutive WAIT timeouts (with
	// nothing delivered in between) a VM accumulates before its worker
	// parks on the mailbox instead of idling virtual time forward.
	parkAfterIdleWaits = 2
)

// engine coordinates the worker goroutines of one RunParallel call.
type engine struct {
	vms    []*VM
	sem    chan struct{} // worker slots: at most cap(sem) VMs run at once
	live   atomic.Int32  // workers that have not finished
	parked atomic.Int32  // workers blocked in park
}

func (e *engine) acquire() { e.sem <- struct{}{} }
func (e *engine) release() { <-e.sem }

// wakeAll nudges every VM's wake channel (buffered, capacity 1, so a
// signal sent before the receiver blocks is not lost).
func (e *engine) wakeAll() {
	for _, vm := range e.vms {
		select {
		case vm.wake <- struct{}{}:
		default:
		}
	}
}

// park blocks the worker until an external post (or a fleet-wide wake)
// arrives. If this worker is the last one awake, parking would freeze
// virtual time on every shard with no one left to generate a wake — so
// it wakes the fleet instead, letting all idle VMs advance their WAIT
// timeouts in step.
func (e *engine) park(vm *VM) {
	if e.parked.Add(1) >= e.live.Load() {
		e.parked.Add(-1)
		vm.idleWaits = 0
		e.wakeAll()
		return
	}
	<-vm.wake
	e.parked.Add(-1)
	vm.idleWaits = 0
}

// newShard builds the per-VM monitor a worker drives. It mirrors New,
// but over the shared physical memory and shared allocator/audit
// state, and with exactly one VM in its table. The shard's CPU cycle
// counter and tick count continue from the root's so uptime cells,
// WAIT deadlines and halt stamps stay on one monotonic timeline.
func (k *VMM) newShard(vm *VM) *VMM {
	c := cpu.New(k.Mem, k.CPU.Variant)
	s := &VMM{
		CPU:    c,
		Mem:    k.Mem,
		Clock:  dev.NewClock(),
		cfg:    k.cfg,
		vms:    []*VM{vm},
		cur:    -1,
		shared: k.shared,
		parent: k,
		audit:  k.audit,
		rec:    k.rec,
		ioBuf:  make([]byte, vax.PageSize),
	}
	c.Sink = s
	c.AddDevice(s.Clock)
	c.TrapAllInVM = s.cfg.Scheme == TrapAll
	c.ProbeWTrapOnDeny = s.cfg.ReadOnlyShadow
	s.Clock.Interval(s.cfg.ClockPeriod)
	c.SetPSL(vax.PSL(0).WithCur(vax.Kernel))
	c.Cycles = k.CPU.Cycles
	s.Stats.ClockTicks = k.Stats.ClockTicks
	if k.audit != nil && vm.ring == nil {
		vm.ring = trace.NewSPSC[AuditEvent](k.audit.Cap())
	}
	// A deadline minted by another clock domain would make the VM
	// oversleep or wake instantly; re-arm it against this shard's ticks.
	if vm.waiting {
		vm.waitDeadline = s.Stats.ClockTicks + s.cfg.WaitTimeout
	}
	return s
}

// mergeShard folds a finished shard's statistics back into the root.
// Monotonic machine-wide clocks (cycles, ticks) take the furthest
// shard; event counters sum.
func (k *VMM) mergeShard(s *VMM) {
	k.Stats.VMMEntries += s.Stats.VMMEntries
	k.Stats.WorldSwitches += s.Stats.WorldSwitches
	k.Stats.VirtualIRQs += s.Stats.VirtualIRQs
	k.Stats.ReflectedTraps += s.Stats.ReflectedTraps
	k.Stats.ShadowPoolHits += s.Stats.ShadowPoolHits
	k.Stats.ShadowPoolMisses += s.Stats.ShadowPoolMisses
	if s.Stats.ClockTicks > k.Stats.ClockTicks {
		k.Stats.ClockTicks = s.Stats.ClockTicks
	}
	if s.CPU.Cycles > k.CPU.Cycles {
		k.CPU.Cycles = s.CPU.Cycles
	}
	k.vmmCycles += s.vmmCycles
}

// RunParallel executes every live VM on its own goroutine, with at
// most workers of them stepping at once, until each VM halts or has
// consumed maxStepsPerVM processor steps (0 = no bound: run until all
// halt — beware VMs that idle forever). It returns the total steps
// executed across all shards. The root VMM must not itself be a shard
// and must have no fault injector attached.
func (k *VMM) RunParallel(workers int, maxStepsPerVM uint64) uint64 {
	if k.parent != nil || k.faults != nil {
		return k.CPU.Run(maxStepsPerVM)
	}
	if cur := k.Current(); cur != nil {
		k.suspend(cur)
	}
	var live []*VM
	for _, vm := range k.vms {
		if !vm.halted {
			live = append(live, vm)
		}
	}
	if len(live) == 0 {
		return 0
	}
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > len(live) {
		workers = len(live)
	}

	eng := &engine{vms: live, sem: make(chan struct{}, workers)}
	eng.live.Store(int32(len(live)))

	shards := make([]*VMM, len(live))
	for i, vm := range live {
		shards[i] = k.newShard(vm)
		vm.k = shards[i]
	}

	var wg sync.WaitGroup
	var total, instrs atomic.Uint64
	for i := range live {
		wg.Add(1)
		go func(vm *VM, s *VMM) {
			defer wg.Done()
			// A finished worker broadcasts so a parked sibling can
			// re-evaluate whether it is now the last one awake.
			defer func() {
				eng.live.Add(-1)
				eng.wakeAll()
			}()
			total.Add(s.runWorker(eng, vm, maxStepsPerVM))
			instrs.Add(s.CPU.Stats.Instructions)
		}(live[i], shards[i])
	}
	wg.Wait()

	for i, vm := range live {
		vm.k = k
		k.mergeShard(shards[i])
	}
	// The wg.Wait above is the merge barrier: every shard's producer
	// goroutine is done, so draining the per-VM event rings here is
	// race-free.
	if k.rec != nil {
		k.rec.Sync()
	}
	k.lastParallel = ParallelRunStats{
		Workers:          workers,
		VMs:              len(live),
		Steps:            total.Load(),
		Instrs:           instrs.Load(),
		Cycles:           k.CPU.Cycles,
		ShadowPoolHits:   k.Stats.ShadowPoolHits,
		ShadowPoolMisses: k.Stats.ShadowPoolMisses,
	}
	for _, vm := range live {
		k.lastParallel.FillBatches += vm.Stats.FillBatches
		k.lastParallel.BatchFills += vm.Stats.BatchFills
		k.lastParallel.SlowPathAllocs += vm.Stats.SlowPathAllocs
	}
	return total.Load()
}

// runWorker drives one VM on its shard: acquire a worker slot, run a
// quantum, release, and either loop, park (idle VM) or finish (halted
// or out of budget). The VM is left suspended so the root monitor can
// resume it serially afterwards.
func (s *VMM) runWorker(eng *engine, vm *VM, budget uint64) uint64 {
	var total uint64
	for !vm.halted && !s.CPU.Halted {
		if budget > 0 && total >= budget {
			break
		}
		q := uint64(workerQuantum)
		if budget > 0 && budget-total < q {
			q = budget - total
		}
		eng.acquire()
		ran := s.runQuantum(vm, q)
		eng.release()
		total += ran
		if s.shouldPark(vm) {
			if vm.rec != nil {
				vm.rec.Record(trace.EvSchedPark, s.CPU.Cycles, 0)
			}
			eng.park(vm)
		}
	}
	if s.Current() == vm {
		s.suspend(vm)
	}
	return total
}

// runQuantum steps the shard for up to q processor steps, in chunks so
// halts and parking conditions are noticed promptly.
func (s *VMM) runQuantum(vm *VM, q uint64) uint64 {
	var done uint64
	for done < q {
		chunk := uint64(parkCheckChunk)
		if q-done < chunk {
			chunk = q - done
		}
		ran := s.Run(chunk)
		done += ran
		if vm.halted || s.CPU.Halted || ran == 0 || s.shouldPark(vm) {
			break
		}
	}
	return done
}

// shouldPark reports whether the VM is only burning idle cycles: it
// has timed out of WAIT repeatedly with nothing pending and nothing in
// the mailbox. Owner-goroutine only.
func (s *VMM) shouldPark(vm *VM) bool {
	return vm.waiting && vm.idleWaits >= parkAfterIdleWaits &&
		vm.pendingAbove(0) == 0 && vm.extMask.Load() == 0
}
