package core

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/dev"
	"repro/internal/trace"
	"repro/internal/vax"
)

// The parallel execution engine. The paper's VMM multiplexes many
// guests on one physical VAX; this engine lets the reproduction use
// many host cores instead, with M:N scheduling: a fixed pool of M
// worker goroutines, each owning a *shard* — a private VMM instance
// with its own virtual processor (CPU, MMU, TLB, decoded-instruction
// cache), interval clock, I/O scratch buffer, statistics and allocator
// cache — pulls N runnable VMs from a work queue. Physical memory and
// the global page pool stay shared behind vmmShared, but nothing
// touches them per step: workers refill and spill their allocator
// caches in batches, and audit events carry cycle stamps instead of
// taking a shared sequence. Because every VM occupies a disjoint range
// of physical memory (its RAM and its shadow-table pages are both
// carved out at CreateVM time), shards never write each other's bytes,
// and all of the serial emulation machinery runs on a shard unchanged.
//
// A VM is dispatched onto whichever worker dequeues it. Dispatching is
// a world switch on that worker's shard, so the architectural state
// moves cleanly; three pieces of shard-local derived state need care
// on migration and get it at attach/detach time: stale cached decodes
// of the VM's pages are invalidated when the VM arrives on a different
// worker than last time (a "steal"), the WAIT deadline is carried as
// ticks-remaining because shard clocks advance independently, and the
// uptime cell is rebased so the VM's view of time stays monotonic.
// Parked VMs — idle in WAIT with nothing pending — leave the queue
// entirely and cost zero worker time until a post or a fleet-wide idle
// advance requeues them, which is what lets a small pool carry
// thousands of mostly-idle VMs.
//
// The engine is intentionally NOT deterministic: interleaving depends
// on the host scheduler. Experiments and the fault campaign therefore
// keep the serial engine (the default, and the forced fallback when a
// fault injector is attached, since injection schedules key off the
// single machine-wide tick stream).

// ParallelRunStats summarizes the last RunParallel invocation.
type ParallelRunStats struct {
	Workers int
	VMs     int
	Steps   uint64 // total processor steps across all shards
	Instrs  uint64 // guest instructions executed across all shards
	Cycles  uint64 // machine cycle count at the end (furthest shard)

	// Scheduler counters: queue dispatches, dispatches that moved a VM
	// to a different worker than its last one (migrations, which pay a
	// decode-cache invalidation), parks of idle VMs, external posts
	// that requeued a parked VM, fleet-wide wakes when everything still
	// live was parked, and the deepest the run queue ever got.
	Dispatches    uint64
	Steals        uint64
	Parks         uint64
	Wakes         uint64
	IdleWakes     uint64
	MaxQueueDepth int

	// Worker occupancy: the fewest and most processor steps any single
	// worker ran this run. A wide spread means the queue kept some
	// workers starved while others carried the fleet.
	MinWorkerSteps uint64
	MaxWorkerSteps uint64

	// Processor-tier totals summed over the worker shards: decoded-
	// instruction cache hits, misses and invalidations, and — when the
	// translation tier is on — superblock builds, entries, steps
	// retired in blocks, and invalidations.
	DecodeHits          uint64
	DecodeMisses        uint64
	DecodeInvalidations uint64
	SBBuilds            uint64
	SBEnters            uint64
	SBSteps             uint64
	SBInvalidations     uint64

	// Slow-path totals at the end of the run, summed over the VMs that
	// took part (captured after the merge barrier, so reading them is
	// race-free even though per-VM counters are goroutine-confined
	// while the run is in flight).
	FillBatches      uint64
	BatchFills       uint64
	SlowPathAllocs   uint64
	ShadowPoolHits   uint64
	ShadowPoolMisses uint64

	// Supervisor totals over the participating VMs: checkpoint
	// generations taken and recoveries performed on worker shards.
	Checkpoints uint64
	Recoveries  uint64

	// COW cloning totals over the participating VMs: breaks serviced
	// during the run, and the fleet's shared/private page gauges at the
	// end of it (resident footprint = PrivatePages; the gap between
	// SharedPages and its deduplicated backing is the overcommit win).
	CowBreaks    uint64
	SharedPages  uint64
	PrivatePages uint64
}

// OccupancyPermille expresses worker occupancy balance as
// MinWorkerSteps/MaxWorkerSteps in parts per thousand: 1000 means every
// worker ran the same number of steps, 0 means at least one worker
// never ran any (or no run has happened).
func (pr ParallelRunStats) OccupancyPermille() uint64 {
	if pr.MaxWorkerSteps == 0 {
		return 0
	}
	return pr.MinWorkerSteps * 1000 / pr.MaxWorkerSteps
}

// LastParallelRun returns statistics for the most recent RunParallel.
func (k *VMM) LastParallelRun() ParallelRunStats { return k.lastParallel }

const (
	// workerQuantum is how many processor steps a worker runs one VM
	// before considering rotation, so N VMs share M < N workers fairly.
	workerQuantum = 1 << 16
	// parkCheckChunk is the sub-quantum granularity at which a worker
	// checks for halt and parking conditions while inside a quantum.
	parkCheckChunk = 1 << 11
	// parkAfterIdleWaits is how many consecutive WAIT timeouts (with
	// nothing delivered in between) a VM accumulates before its worker
	// parks it off the queue instead of idling virtual time forward.
	parkAfterIdleWaits = 2
)

// Per-VM scheduler states (VM.sched).
const (
	schedIdle    uint32 = iota // not part of a parallel run
	schedQueued                // on the run queue
	schedRunning               // attached to a worker shard
	schedParked                // off the queue, waiting for a post
	schedDone                  // halted or out of budget this run
)

// engine coordinates one RunParallel call: the run queue the workers
// pull from, and the park/finish accounting. The queue is a buffered
// channel with capacity for every live VM; the state machine ensures a
// VM is enqueued at most once, so sends never block (including under
// the mutex). All cold transitions — park, unpark, finish, fleet wake
// — happen under mu, which is what makes the park/post race benign:
// park publishes schedParked and re-checks the mailbox inside the same
// critical section that unpark uses to test for schedParked, so one of
// the two always sees the other.
type engine struct {
	root *VMM
	vms  []*VM
	runq chan *VM

	budget uint64 // per-VM step budget (0 = unbounded)

	qlen     atomic.Int32 // current queue depth
	maxDepth atomic.Int32 // high-water mark of qlen

	mu        sync.Mutex
	remaining int // live VMs not yet done
	parked    int // VMs in schedParked
	wakes     uint64
	idleWakes uint64
}

// push puts a VM on the run queue. Never blocks: capacity covers every
// live VM and the state machine enqueues each at most once.
func (e *engine) push(vm *VM) {
	vm.sched.Store(schedQueued)
	d := e.qlen.Add(1)
	for {
		m := e.maxDepth.Load()
		if d <= m || e.maxDepth.CompareAndSwap(m, d) {
			break
		}
	}
	e.runq <- vm
}

// park moves a running VM off the queue. Returns false if a concurrent
// post already filled the mailbox, in which case the VM went straight
// back on the queue instead (the lost-wakeup window this closes is the
// reason parking is a mutex transition and not an atomic counter
// dance). If this VM was the last one not parked, parking it would
// freeze virtual time on every shard with no one left to generate a
// wake — so the whole fleet is requeued instead, letting all idle VMs
// advance their WAIT timeouts in step.
func (e *engine) park(vm *VM) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	vm.sched.Store(schedParked)
	e.parked++
	if vm.extMask.Load() != 0 {
		e.parked--
		vm.idleWaits = 0
		e.push(vm)
		return false
	}
	if e.parked == e.remaining {
		e.idleWakes++
		e.wakeAllLocked()
	}
	return true
}

// unpark requeues a parked VM after an external post. Called (via
// VM.PostIRQ) from any goroutine.
func (e *engine) unpark(vm *VM) {
	if vm.sched.Load() != schedParked {
		return // cheap pre-check; the decisive one is under the mutex
	}
	e.mu.Lock()
	if vm.sched.Load() == schedParked {
		e.parked--
		e.wakes++
		vm.idleWaits = 0
		e.push(vm)
	}
	e.mu.Unlock()
}

// wakeAllLocked requeues every parked VM (mu held).
func (e *engine) wakeAllLocked() {
	for _, vm := range e.vms {
		if vm.sched.Load() == schedParked {
			e.parked--
			vm.idleWaits = 0
			e.push(vm)
		}
	}
}

// finish retires a VM from the run (halted, or out of budget). The
// last retirement closes the queue, which is what ends the run; and a
// retirement that leaves only parked VMs triggers the fleet-wide idle
// advance just as the last park does.
func (e *engine) finish(vm *VM) {
	e.mu.Lock()
	vm.sched.Store(schedDone)
	e.remaining--
	done := e.remaining == 0
	if !done && e.parked > 0 && e.parked == e.remaining {
		e.idleWakes++
		e.wakeAllLocked()
	}
	e.mu.Unlock()
	if done {
		close(e.runq)
	}
}

// worker is one goroutine of the pool with its shard and its owner-
// confined counters, padded so adjacent workers' counter updates never
// share a cache line.
type worker struct {
	id        int
	shard     *VMM
	ctx       context.Context // pprof label context ("worker" set)
	statsBase cpu.Stats       // shard processor stats at run start (for deltas)

	steps      uint64
	dispatches uint64
	steals     uint64
	parks      uint64
	_          [64]byte
}

// newWorkerShard builds a per-worker monitor. It mirrors New, but over
// the shared physical memory and global page pool, with a one-slot VM
// table that attach fills per dispatch. Shards live on the root's
// workerShards pool and are reused across runs.
func (k *VMM) newWorkerShard() *VMM {
	c := cpu.New(k.Mem, k.CPU.Variant)
	s := &VMM{
		CPU:    c,
		Mem:    k.Mem,
		Clock:  dev.NewClock(),
		cfg:    k.cfg,
		vms:    make([]*VM, 1),
		cur:    -1,
		shared: k.shared,
		parent: k,
		audit:  k.audit,
		rec:    k.rec,
		ioBuf:  make([]byte, vax.PageSize),
	}
	c.Sink = s
	c.AddDevice(s.Clock)
	c.TrapAllInVM = s.cfg.Scheme == TrapAll
	c.ProbeWTrapOnDeny = s.cfg.ReadOnlyShadow
	s.Clock.Interval(s.cfg.ClockPeriod)
	c.SetPSL(vax.PSL(0).WithCur(vax.Kernel))
	if s.cfg.Translation {
		s.enableTranslation(c)
	}
	return s
}

// resetShard prepares a (possibly reused) worker shard for a run: the
// processor restarts from the root's cycle and tick counts so machine
// time stays monotonic, per-run statistics restart from zero so the
// merge sums deltas, and the decode cache is flushed — between runs
// the root may have run these VMs serially or recycled their pages, so
// nothing cached from a previous run can be trusted.
func (k *VMM) resetShard(s *VMM) {
	c := s.CPU
	if c.Halted {
		c.ClearHalt()
	}
	c.SetWaiting(false)
	c.FlushDecodeCache()
	c.SetPSL(vax.PSL(0).WithCur(vax.Kernel))
	c.Cycles = k.CPU.Cycles
	s.Stats = Stats{ClockTicks: k.Stats.ClockTicks}
	s.vmmCycles = 0
	s.switchStart = 0
	s.cur = -1
	s.vms[0] = nil
	s.audit = k.audit
	s.rec = k.rec
	// The root's config may have moved since the shard was built
	// (SetCheckpointPolicy, SetRecovery, SetWatchdog); shards carry a
	// copy, so refresh it per run.
	s.cfg = k.cfg
}

// mergeShard folds a finished shard's statistics back into the root.
// Monotonic machine-wide clocks (cycles, ticks) take the furthest
// shard; event counters sum (resetShard zeroed them, so these are this
// run's deltas); cached free runs spill to the global pool so the
// root's next CreateVM can recycle what halted VMs released here.
func (k *VMM) mergeShard(s *VMM) {
	k.Stats.VMMEntries += s.Stats.VMMEntries
	k.Stats.WorldSwitches += s.Stats.WorldSwitches
	k.Stats.VirtualIRQs += s.Stats.VirtualIRQs
	k.Stats.ReflectedTraps += s.Stats.ReflectedTraps
	k.Stats.ShadowPoolHits += s.Stats.ShadowPoolHits
	k.Stats.ShadowPoolMisses += s.Stats.ShadowPoolMisses
	if s.Stats.ClockTicks > k.Stats.ClockTicks {
		k.Stats.ClockTicks = s.Stats.ClockTicks
	}
	if s.CPU.Cycles > k.CPU.Cycles {
		k.CPU.Cycles = s.CPU.Cycles
	}
	k.vmmCycles += s.vmmCycles
	s.spillAllocCache()
}

// attach dispatches a VM onto a worker's shard. The previous owner
// detached before the VM could be requeued, and queue/mutex handoffs
// order its writes before this read, so the VM's owner-confined state
// arrives consistent.
func (e *engine) attach(w *worker, vm *VM) {
	s := w.shard
	w.dispatches++
	if vm.lastShard != nil && vm.lastShard != s {
		// Migration: this shard may hold decodes of the VM's pages from
		// an earlier tenancy, gone stale through the VM's own writes
		// elsewhere. (A VM's pages change only while it runs — its own
		// stores and DMA both go through its current shard — so a VM
		// that stayed put needs no invalidation.)
		w.steals++
		if vm.frames != nil {
			// A clone's frames scatter; a base+size range cannot cover
			// them, so drop the shard's whole decode cache.
			s.CPU.FlushDecodeCache()
		} else {
			s.CPU.InvalidateDecode(vm.MemBase, vm.MemSize)
		}
		if vm.rec != nil {
			vm.rec.Record(trace.EvSchedSteal, s.CPU.Cycles, uint32(w.id))
		}
	}
	vm.sched.Store(schedRunning)
	vm.k = s
	s.vms[0] = vm
	s.cur = -1
	if s.CPU.Halted {
		// The previous tenant halted, which halted the single-VM shard.
		s.CPU.ClearHalt()
	}
	s.CPU.SetWaiting(false)
	// Rebase clock-domain state into this shard's timeline.
	if vm.waiting {
		vm.waitDeadline = s.Stats.ClockTicks + vm.waitRemaining
	}
	vm.tickBias = s.Stats.ClockTicks - vm.uptimeSeen
	pprof.SetGoroutineLabels(pprof.WithLabels(w.ctx, pprof.Labels("vm", vm.name)))
}

// detach suspends a VM off a worker's shard and captures the clock-
// domain state (WAIT ticks remaining, uptime seen) that attach rebases
// on the next shard. After detach the worker must not touch the VM
// outside the engine mutex.
func (e *engine) detach(w *worker, vm *VM) {
	s := w.shard
	if s.Current() == vm {
		s.suspend(vm)
	}
	if vm.waiting {
		vm.waitRemaining = vm.waitDeadline - s.Stats.ClockTicks
	}
	vm.uptimeSeen = s.Stats.ClockTicks - vm.tickBias
	vm.lastShard = s
	pprof.SetGoroutineLabels(w.ctx)
}

// runWorker is one pool goroutine: pull a VM, drive it, repeat until
// the queue closes.
func (e *engine) runWorker(w *worker) {
	w.ctx = pprof.WithLabels(context.Background(), pprof.Labels("worker", strconv.Itoa(w.id)))
	pprof.SetGoroutineLabels(w.ctx)
	defer pprof.SetGoroutineLabels(context.Background())
	for vm := range e.runq {
		e.qlen.Add(-1)
		e.drive(w, vm)
	}
}

// drive runs one dispatched VM in quanta until it halts, runs out of
// budget, parks, or yields to a VM waiting for a worker. When the
// queue is empty the worker keeps its VM (affinity: no world switch,
// no decode-cache migration cost); rotation happens exactly when
// someone is waiting.
func (e *engine) drive(w *worker, vm *VM) {
	s := w.shard
	e.attach(w, vm)
	for {
		q := uint64(workerQuantum)
		if e.budget > 0 && vm.stepsLeft < q {
			q = vm.stepsLeft
		}
		ran := s.runQuantum(vm, q)
		w.steps += ran
		if e.budget > 0 {
			vm.stepsLeft -= ran
		}
		switch {
		case vm.pendingRecover:
			// The VM died recoverably on this shard. The worker is its
			// owner and sits at an instruction boundary — a safe point —
			// so recover on-shard and keep driving; decode invalidation
			// and WAIT rebasing happen against this shard's CPU and
			// clock, which is exactly where the VM resumes.
			if s.tryRecover(vm) {
				if s.CPU.Halted {
					s.CPU.ClearHalt()
				}
				continue
			}
			e.detach(w, vm)
			e.finish(vm)
			return
		case vm.halted || s.CPU.Halted || ran == 0 ||
			(e.budget > 0 && vm.stepsLeft == 0):
			e.detach(w, vm)
			e.finish(vm)
			return
		case s.shouldPark(vm):
			if vm.rec != nil {
				vm.rec.Record(trace.EvSchedPark, s.CPU.Cycles, 0)
			}
			e.detach(w, vm)
			if e.park(vm) {
				w.parks++
			}
			return
		case e.qlen.Load() > 0:
			e.detach(w, vm)
			e.push(vm)
			return
		}
	}
}

// RunParallel executes every live VM on a fixed pool of workers, until
// each VM halts or has consumed maxStepsPerVM processor steps (0 = no
// bound: run until all halt — beware VMs that idle forever). It
// returns the total steps executed across all shards. The root VMM
// must not itself be a shard and must have no fault injector attached.
func (k *VMM) RunParallel(workers int, maxStepsPerVM uint64) uint64 {
	if k.parent != nil || k.faults != nil {
		return k.CPU.Run(maxStepsPerVM)
	}
	if cur := k.Current(); cur != nil {
		k.suspend(cur)
	}
	var live []*VM
	for _, vm := range k.vms {
		if !vm.halted {
			live = append(live, vm)
		}
	}
	if len(live) == 0 {
		return 0
	}
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > len(live) {
		workers = len(live)
	}

	eng := &engine{
		root:      k,
		vms:       live,
		runq:      make(chan *VM, len(live)),
		budget:    maxStepsPerVM,
		remaining: len(live),
	}
	for len(k.workerShards) < workers {
		k.workerShards = append(k.workerShards, k.newWorkerShard())
	}
	ws := make([]*worker, workers)
	for i := range ws {
		s := k.workerShards[i]
		k.resetShard(s)
		ws[i] = &worker{id: i, shard: s, statsBase: s.CPU.Stats}
	}
	for _, vm := range live {
		vm.lastShard = nil
		vm.stepsLeft = maxStepsPerVM
		vm.uptimeSeen = k.Stats.ClockTicks - vm.tickBias
		if vm.waiting {
			if vm.waitDeadline > k.Stats.ClockTicks {
				vm.waitRemaining = vm.waitDeadline - k.Stats.ClockTicks
			} else {
				vm.waitRemaining = 0
			}
		}
		if k.audit != nil && vm.ring == nil {
			vm.ring = trace.NewSPSC[AuditEvent](k.audit.Cap())
		}
		vm.eng.Store(eng)
	}
	for _, vm := range live {
		eng.push(vm)
	}

	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			eng.runWorker(w)
		}(w)
	}
	wg.Wait()

	// The wg.Wait above is the merge barrier: every worker goroutine is
	// done, so shard statistics, per-VM state and the event rings are
	// all quiescent.
	pr := ParallelRunStats{
		Workers:       workers,
		VMs:           len(live),
		Wakes:         eng.wakes,
		IdleWakes:     eng.idleWakes,
		MaxQueueDepth: int(eng.maxDepth.Load()),
	}
	pr.MinWorkerSteps = ws[0].steps
	for _, w := range ws {
		pr.Steps += w.steps
		if w.steps < pr.MinWorkerSteps {
			pr.MinWorkerSteps = w.steps
		}
		if w.steps > pr.MaxWorkerSteps {
			pr.MaxWorkerSteps = w.steps
		}
		cs := &w.shard.CPU.Stats
		pr.Instrs += cs.Instructions - w.statsBase.Instructions
		pr.DecodeHits += cs.DecodeHits - w.statsBase.DecodeHits
		pr.DecodeMisses += cs.DecodeMisses - w.statsBase.DecodeMisses
		pr.DecodeInvalidations += cs.DecodeInvalidations - w.statsBase.DecodeInvalidations
		pr.SBBuilds += cs.SBBuilds - w.statsBase.SBBuilds
		pr.SBEnters += cs.SBEnters - w.statsBase.SBEnters
		pr.SBSteps += cs.SBSteps - w.statsBase.SBSteps
		pr.SBInvalidations += cs.SBInvalidations - w.statsBase.SBInvalidations
		pr.Dispatches += w.dispatches
		pr.Steals += w.steals
		pr.Parks += w.parks
		k.mergeShard(w.shard)
	}
	for _, vm := range live {
		vm.k = k
		vm.eng.Store(nil)
		vm.sched.Store(schedIdle)
		// Rebase clock-domain state back onto the merged root timeline.
		if vm.waiting {
			vm.waitDeadline = k.Stats.ClockTicks + vm.waitRemaining
		}
		vm.tickBias = k.Stats.ClockTicks - vm.uptimeSeen
		pr.FillBatches += vm.Stats.FillBatches
		pr.BatchFills += vm.Stats.BatchFills
		pr.SlowPathAllocs += vm.Stats.SlowPathAllocs
		pr.Checkpoints += vm.Stats.Checkpoints
		pr.Recoveries += vm.Stats.Recoveries
		pr.CowBreaks += vm.Stats.COWBreaks
		pr.SharedPages += vm.Stats.SharedPages
		pr.PrivatePages += vm.Stats.PrivatePages
	}
	if k.rec != nil {
		k.rec.Sync()
	}
	pr.Cycles = k.CPU.Cycles
	pr.ShadowPoolHits = k.Stats.ShadowPoolHits
	pr.ShadowPoolMisses = k.Stats.ShadowPoolMisses
	k.lastParallel = pr
	return pr.Steps
}

// runQuantum steps the shard for up to q processor steps, in chunks so
// halts and parking conditions are noticed promptly.
func (s *VMM) runQuantum(vm *VM, q uint64) uint64 {
	var done uint64
	for done < q {
		chunk := uint64(parkCheckChunk)
		if q-done < chunk {
			chunk = q - done
		}
		ran := s.Run(chunk)
		done += ran
		if vm.halted || s.CPU.Halted || ran == 0 || s.shouldPark(vm) {
			break
		}
	}
	return done
}

// shouldPark reports whether the VM is only burning idle cycles: it
// has timed out of WAIT repeatedly with nothing pending and nothing in
// the mailbox. Owner-goroutine only.
func (s *VMM) shouldPark(vm *VM) bool {
	return vm.waiting && vm.idleWaits >= parkAfterIdleWaits &&
		vm.pendingAbove(0) == 0 && vm.extMask.Load() == 0
}
