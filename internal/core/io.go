package core

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/vax"
)

// Virtual I/O. The production design is the explicit start-I/O
// interface of Section 4.4.3: the VMOS writes the KCALL register with a
// function code in R0 and arguments in R1..R3; the VMM performs the
// whole operation in one trap and posts a virtual completion interrupt.
// The baseline alternative — emulating a memory-mapped controller
// register by register — is implemented in emulateMMIO below.

// KCALL function codes (the VM/VMM communication protocol; Section 5
// footnote 11: the same mechanism serves other system-management
// purposes, here uptime registration).
const (
	KCallConsolePut  = 1 // R1 = character
	KCallConsoleGet  = 2 // result: R1 = character (0 if none)
	KCallDiskRead    = 3 // R1 = block, R2 = VM-physical buffer
	KCallDiskWrite   = 4 // R1 = block, R2 = VM-physical buffer
	KCallUptime      = 5 // result: R1 = ticks
	KCallSetUptime   = 6 // R1 = VM-physical uptime cell (0 disables)
	KCallStatusOK    = 0
	KCallStatusError = 1
)

// kcall services one start-I/O request. Results return in the VM's R0
// (status) and R1.
func (k *VMM) kcall(vm *VM, _ uint32) {
	c := k.CPU
	fn := c.R[0]
	status := uint32(KCallStatusOK)
	switch fn {
	case KCallConsolePut:
		vm.cons.Put(byte(c.R[1]))
		k.noteProgress(vm)
	case KCallConsoleGet:
		c.R[1] = vm.cons.Get()
		k.noteProgress(vm)
	case KCallDiskRead, KCallDiskWrite:
		status = k.kcallDisk(vm, fn == KCallDiskWrite)
		if vm.halted {
			return
		}
	case KCallUptime:
		c.R[1] = uint32(vm.ticks)
	case KCallSetUptime:
		vm.uptime = c.R[1]
	default:
		vm.Stats.UnknownKCALLs++
		k.record(vm, AuditUnknownKCALL, fmt.Sprintf("function code %d", fn))
		status = KCallStatusError
	}
	c.R[0] = status
}

// kcallDisk services a KCALL disk transfer with the recovery ladder of
// the paper's hardware-error policy: transient device errors are
// retried with exponential backoff up to maxDiskRetries attempts;
// errors that survive — and bus errors on the DMA range — surface to
// the VM as virtual machine checks; a guest software error (block out
// of range) is just a status error.
func (k *VMM) kcallDisk(vm *VM, write bool) uint32 {
	c := k.CPU
	block, buf := c.R[1], c.R[2]
	if buf > vm.MemSize || vax.PageSize > vm.MemSize-buf {
		k.haltVM(vm, "KCALL disk buffer outside VM memory")
		return KCallStatusError
	}
	if k.faults != nil && k.faults.BusErrorHit(vm.ID, k.Stats.ClockTicks, buf, vax.PageSize) {
		k.machineCheck(vm, MCheckBusError, buf)
		return KCallStatusError
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = k.diskTransfer(vm, write, block, buf, attempt)
		if err == nil || err == errOutOfRange || err == errDiskPermanent {
			break
		}
		if vm.halted { // COW break ran out of physical memory mid-DMA
			return KCallStatusError
		}
		if attempt+1 >= maxDiskRetries {
			break
		}
		vm.Stats.DiskRetries++
		k.record(vm, AuditDiskRetry, fmt.Sprintf("block %d attempt %d: %v", block, attempt+1, err))
		if vm.rec != nil {
			vm.rec.Record(trace.EvKCallRetry, k.CPU.Cycles, uint32(attempt+1))
		}
		k.charge(diskRetryCost << uint(attempt))
	}
	switch err {
	case nil:
		k.noteProgress(vm)
		vm.postIRQ(vax.IPLDisk, vax.VecDisk)
		return KCallStatusOK
	case errOutOfRange:
		// The guest asked for a block that does not exist: its own
		// software error, not a hardware condition.
		return KCallStatusError
	default:
		k.machineCheck(vm, MCheckDiskError, block)
		return KCallStatusError
	}
}

// diskTransfer performs one attempt of a KCALL disk transfer through
// the VMM's scratch page (no per-call allocation). buf is the VM-
// physical DMA address; dmaRead/dmaWrite handle the frame walk (and
// COW breaks) for cloned VMs.
func (k *VMM) diskTransfer(vm *VM, write bool, block, buf uint32, attempt int) error {
	if k.faults != nil {
		switch k.faults.DiskAttempt(vm.ID, attempt, write) {
		case fault.DiskTransient:
			return errDiskTransient
		case fault.DiskPermanent:
			return errDiskPermanent
		}
	}
	if write {
		if err := vm.dmaRead(buf, k.ioBuf); err != nil {
			return err
		}
		return vm.disk.writeBlock(block, k.ioBuf)
	}
	if err := vm.disk.readBlock(block, k.ioBuf); err != nil {
		return err
	}
	// DMA into guest memory: dmaWrite drops the cached decodes it
	// overlaps and breaks COW sharing page by page.
	return vm.dmaWrite(buf, k.ioBuf)
}

// --- virtual disk ---

// vDisk is a per-VM virtual disk. Under KCALL I/O only the block
// methods are used; under MMIO emulation the VMM also models its
// controller registers (same layout as dev.Disk). Like VM memory, the
// image is copy-on-write under cloning — at clone time the image
// freezes into an immutable shared base, and the first write (by the
// source or any clone) materializes a private copy — so a thousand
// clones of one golden image share one disk's worth of bytes.
type vDisk struct {
	image []byte // private, mutable image; nil while frozen
	base  []byte // immutable backing shared with clones; never written

	// Controller registers for the MMIO-emulation baseline.
	csr, block, addr, count, stat uint32

	Reads, Writes uint64
}

func newVDisk(blocks int) *vDisk {
	return &vDisk{image: make([]byte, blocks*vax.PageSize), csr: devCSRReady}
}

// data returns the current image bytes for reading only.
func (d *vDisk) data() []byte {
	if d.image != nil {
		return d.image
	}
	return d.base
}

// freeze demotes the private image (if any) to the shared immutable
// base and returns it, so a clone can reference the same bytes.
func (d *vDisk) freeze() []byte {
	if d.image != nil {
		d.base = d.image
		d.image = nil
	}
	return d.base
}

// materialize ensures the disk has a private mutable image, copying the
// shared base on the first write after a freeze.
func (d *vDisk) materialize() []byte {
	if d.image == nil {
		d.image = append([]byte(nil), d.base...)
		d.base = nil
	}
	return d.image
}

// clone builds a new disk sharing this one's (frozen) image bytes, with
// the controller registers copied and the transfer counters fresh.
func (d *vDisk) clone() *vDisk {
	return &vDisk{base: d.freeze(), csr: d.csr, block: d.block,
		addr: d.addr, count: d.count, stat: d.stat}
}

// Image exposes the disk image for loading test data. The caller may
// mutate it, so a frozen disk materializes its private copy first.
func (d *vDisk) Image() []byte { return d.materialize() }

func (d *vDisk) reset() {
	d.csr, d.block, d.addr, d.count, d.stat = devCSRReady, 0, 0, 0, 0
}

func (d *vDisk) readBlock(block uint32, buf []byte) error {
	data := d.data()
	off := int(block) * vax.PageSize
	if off < 0 || off+len(buf) > len(data) {
		return errOutOfRange
	}
	d.Reads++
	copy(buf, data[off:])
	return nil
}

func (d *vDisk) writeBlock(block uint32, buf []byte) error {
	if off := int(block) * vax.PageSize; off < 0 || off+len(buf) > len(d.data()) {
		return errOutOfRange
	}
	image := d.materialize()
	off := int(block) * vax.PageSize
	d.Writes++
	copy(image[off:], buf)
	return nil
}

type rangeErr struct{}

func (rangeErr) Error() string { return "vdisk: block out of range" }

var errOutOfRange = rangeErr{}

// devErr is an injected device error (comparable, like errOutOfRange).
type devErr string

func (e devErr) Error() string { return string(e) }

const (
	errDiskTransient devErr = "vdisk: transient device error"
	errDiskPermanent devErr = "vdisk: permanent device error"
)

// Virtual controller register offsets mirror dev.Disk.
const (
	devRegCSR   = 0x00
	devRegBlock = 0x04
	devRegAddr  = 0x08
	devRegCount = 0x0C
	devRegStat  = 0x10

	devCSRGo    uint32 = 1 << 0
	devCSRFunc  uint32 = 3 << 1
	devCSRIE    uint32 = 1 << 6
	devCSRReady uint32 = 1 << 7

	devFuncRead  uint32 = 1 << 1
	devFuncWrite uint32 = 2 << 1
)

// regRead/regWrite model the controller for the MMIO baseline. GO
// performs the transfer immediately (the trap itself already models
// the latency) and posts a completion interrupt.
func (k *VMM) diskRegRead(vm *VM, off uint32) uint32 {
	d := vm.disk
	switch off &^ 3 {
	case devRegCSR:
		return d.csr
	case devRegBlock:
		return d.block
	case devRegAddr:
		return d.addr
	case devRegCount:
		return d.count
	case devRegStat:
		return d.stat
	}
	return 0
}

func (k *VMM) diskRegWrite(vm *VM, off, v uint32) {
	d := vm.disk
	switch off &^ 3 {
	case devRegCSR:
		d.csr = d.csr&^devCSRIE | v&devCSRIE
		if v&devCSRGo == 0 {
			return
		}
		d.stat = KCallStatusError
		// The MMIO baseline has no retry ladder: an injected device or
		// bus error simply leaves the error status for the driver.
		injected := k.faults != nil &&
			(k.faults.DiskAttempt(vm.ID, 0, v&devCSRFunc == devFuncWrite) != fault.DiskOK ||
				k.faults.BusErrorHit(vm.ID, k.Stats.ClockTicks, d.addr, d.count))
		inRange := d.addr <= vm.MemSize && d.count <= vm.MemSize-d.addr
		if inRange && !injected && d.count <= vax.PageSize {
			buf := make([]byte, d.count)
			switch v & devCSRFunc {
			case devFuncRead:
				if d.readBlock(d.block, buf[:min32len(buf, d)]) == nil {
					if vm.dmaWrite(d.addr, buf) == nil {
						d.stat = KCallStatusOK
					}
				}
			case devFuncWrite:
				if vm.dmaRead(d.addr, buf) == nil {
					if d.writeBlock(d.block, buf) == nil {
						d.stat = KCallStatusOK
					}
				}
			}
		}
		if d.csr&devCSRIE != 0 {
			vm.postIRQ(vax.IPLDisk, vax.VecDisk)
		}
	case devRegBlock:
		d.block = v
	case devRegAddr:
		d.addr = v
	case devRegCount:
		d.count = v
	}
}

func min32len(buf []byte, d *vDisk) int {
	if data := d.data(); len(buf) > len(data) {
		return len(data)
	}
	return len(buf)
}

// --- MMIO instruction emulation ---

// emulateMMIO emulates one guest instruction that references the
// virtual disk controller's register window. This is the expensive
// path the paper measured against (Section 4.4.3): the VMM must parse
// the instruction stream itself — precisely the work the VM-emulation
// trap was designed to avoid — so only the MOVL forms a device driver
// uses are recognized.
func (k *VMM) emulateMMIO(vm *VM, faultVA uint32, gpte vax.PTE) {
	c := k.CPU
	vm.Stats.MMIOEmuls++
	k.charge(cpu.CostVMMMMIOEmul)
	pc := c.PC()
	mode := c.VMPSL.Cur()

	readByte := func(at uint32) (byte, bool) {
		pa, gf := k.guestTranslate(vm, at, false, mode)
		if gf != nil || vm.halted {
			return 0, false
		}
		host, ok := vm.hostAddr(pa, 1)
		if !ok {
			return 0, false
		}
		b, err := k.Mem.LoadByte(host)
		return b, err == nil
	}
	readLong := func(at uint32) (uint32, bool) {
		var v uint32
		for i := uint32(0); i < 4; i++ {
			b, ok := readByte(at + i)
			if !ok {
				return 0, false
			}
			v |= uint32(b) << (8 * i)
		}
		return v, true
	}

	fail := func(msg string) { k.haltVM(vm, "MMIO emulation: "+msg) }

	op, ok := readByte(pc)
	if !ok || op != byte(vax.OpMOVL) {
		fail("unsupported instruction")
		return
	}
	// Decode two operand specifiers, supporting registers, short
	// literals, and absolute (@#) addresses.
	type opnd struct {
		isReg bool
		reg   int
		isLit bool
		lit   uint32
		isAbs bool
		abs   uint32
	}
	at := pc + 1
	decode := func() (opnd, bool) {
		spec, ok := readByte(at)
		if !ok {
			return opnd{}, false
		}
		at++
		switch {
		case spec < 0x40:
			return opnd{isLit: true, lit: uint32(spec)}, true
		case spec>>4 == 5:
			return opnd{isReg: true, reg: int(spec & 0xF)}, true
		case spec == 0x8F:
			v, ok := readLong(at)
			at += 4
			return opnd{isLit: true, lit: v}, ok
		case spec == 0x9F:
			v, ok := readLong(at)
			at += 4
			return opnd{isAbs: true, abs: v}, ok
		}
		return opnd{}, false
	}
	src, ok1 := decode()
	dst, ok2 := decode()
	if !ok1 || !ok2 {
		fail("unsupported operand")
		return
	}

	devOff := func(va uint32) (uint32, bool) {
		pa, gf := k.guestTranslate(vm, va, false, mode)
		if gf != nil || vm.halted {
			return 0, false
		}
		if pa >= VMDiskBase && pa < VMDiskBase+vax.PageSize {
			return pa - VMDiskBase, true
		}
		return 0, false
	}

	var val uint32
	switch {
	case src.isLit:
		val = src.lit
	case src.isReg:
		val = c.R[src.reg]
	case src.isAbs:
		if off, isDev := devOff(src.abs); isDev {
			val = k.diskRegRead(vm, off)
		} else {
			fail("source not a device register")
			return
		}
	}
	switch {
	case dst.isReg:
		c.R[dst.reg] = val
	case dst.isAbs:
		if off, isDev := devOff(dst.abs); isDev {
			k.diskRegWrite(vm, off, val)
		} else {
			fail("destination not a device register")
			return
		}
	default:
		fail("unsupported destination")
		return
	}
	if vm.halted {
		return
	}
	c.SetPC(at)
	k.resumeVM(vm)
	k.deliverPendingIRQs(vm)
}

// --- virtual console ---

// vConsole is the per-VM console, reached through the console IPRs or
// the KCALL console functions. It is the one VM-side surface that host
// code legitimately touches from another goroutine (feeding input or
// reading output while an engine runs), so it carries its own mutex —
// contention-free in practice: the owning VM and the host rarely meet.
type vConsole struct {
	mu   sync.Mutex
	out  bytes.Buffer
	in   []byte
	rxIE bool
	txIE bool
}

func (t *vConsole) Output() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.out.String()
}

func (t *vConsole) Feed(s string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.in = append(t.in, s...)
}

func (t *vConsole) Put(b byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.out.WriteByte(b)
}

func (t *vConsole) Get() uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.in) == 0 {
		return 0
	}
	b := t.in[0]
	t.in = t.in[1:]
	return uint32(b)
}

func (t *vConsole) RXCS() uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var v uint32
	if len(t.in) > 0 {
		v |= vax.ConsoleReady
	}
	if t.rxIE {
		v |= vax.ConsoleIE
	}
	return v
}

func (t *vConsole) SetCSR(reg vax.IPR, v uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ie := v&vax.ConsoleIE != 0
	if reg == vax.IPRRXCS {
		t.rxIE = ie
	} else {
		t.txIE = ie
	}
}
