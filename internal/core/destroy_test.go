package core

import (
	"errors"
	"strings"
	"testing"
)

func TestDestroyRequiresHalted(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, cloneComputeSrc, nil)
	if err := k.DestroyVM(vm); err == nil || !strings.Contains(err.Error(), "live") {
		t.Fatalf("destroy of live VM = %v, want a live-VM refusal", err)
	}
	runVM(t, k, vm, 10_000_000)
	if err := k.DestroyVM(vm); err != nil {
		t.Fatal(err)
	}
	if len(k.VMs()) != 0 {
		t.Fatalf("%d VMs after destroy", len(k.VMs()))
	}
	if err := k.DestroyVM(vm); err == nil {
		t.Fatal("double destroy succeeded")
	}
}

// TestDestroyRecyclesContiguousRun pins the takeRun/freeRun pairing: a
// destroyed full-geometry VM's pages satisfy the next same-geometry
// CreateVM without carving fresh memory.
func TestDestroyRecyclesContiguousRun(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, cloneComputeSrc, nil)
	runVM(t, k, vm, 10_000_000)
	if err := k.DestroyVM(vm); err != nil {
		t.Fatal(err)
	}
	free := k.FreePages()

	img, prog := guestImage(t, cloneComputeSrc, nil)
	vm2, err := k.CreateVM(VMConfig{
		MemBytes: gMemSize, Image: img, StartPC: prog.MustSymbol("start"),
		PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := k.FreePages(); got != free {
		t.Fatalf("free pages %d after recycled create, want %d (carved fresh)", got, free)
	}
	// The recycled VM must start from zeroed, decode-invalidated pages:
	// it runs to the same halt as its predecessor.
	vm2.SPs[0] = gKSP
	k.CPU.ClearHalt()
	runVM(t, k, vm2, 10_000_000)
}

// TestDestroyCloneDropsRefs destroys a clone and checks the shared
// frames survive for the source while privatized frames recycle.
func TestDestroyCloneDropsRefs(t *testing.T) {
	k, src, _ := bootVM(t, Config{}, cloneComputeSrc, nil)
	c1, err := k.Clone(src, "c1")
	if err != nil {
		t.Fatal(err)
	}
	k.HaltVM(c1, "test teardown")
	if err := k.DestroyVM(c1); err != nil {
		t.Fatal(err)
	}
	// The source still runs to completion on its shared frames.
	runVM(t, k, src, 10_000_000)
	if len(k.VMs()) != 1 {
		t.Fatalf("%d VMs, want just the source", len(k.VMs()))
	}
}

func TestDestroyKeepsIDsUnique(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, cloneComputeSrc, nil)
	first := vm.ID
	runVM(t, k, vm, 10_000_000)
	if err := k.DestroyVM(vm); err != nil {
		t.Fatal(err)
	}
	img, prog := guestImage(t, cloneComputeSrc, nil)
	vm2, err := k.CreateVM(VMConfig{
		MemBytes: gMemSize, Image: img, StartPC: prog.MustSymbol("start"),
		PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vm2.ID == first {
		t.Fatalf("new VM reused id %d of a destroyed VM", first)
	}
	if got := k.VMByID(vm2.ID); got != vm2 {
		t.Fatalf("VMByID(%d) = %v", vm2.ID, got)
	}
	if got := k.VMByID(first); got != nil {
		t.Fatalf("VMByID(%d) = %v for a destroyed VM", first, got)
	}
}

func TestHaltVMExported(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, cloneComputeSrc, nil)
	k.HaltVM(vm, "operator says stop")
	halted, msg := vm.Halted()
	if !halted || msg != "operator says stop" {
		t.Fatalf("halted=%v msg=%q", halted, msg)
	}
	k.HaltVM(vm, "again") // idempotent: must not clobber the message
	if _, msg := vm.Halted(); msg != "operator says stop" {
		t.Fatalf("msg = %q after double halt", msg)
	}
}

func TestQuotaBackstop(t *testing.T) {
	img, prog := guestImage(t, cloneComputeSrc, nil)
	cfg := VMConfig{
		MemBytes: gMemSize, Image: img, StartPC: prog.MustSymbol("start"),
		PreMapped: true, SBR: gSPT, SLR: gSPTLen, SCBB: gSCB,
	}

	k := New(8<<20, Config{}, WithQuota(Quota{MaxVMs: 1}))
	if _, err := k.CreateVM(cfg); err != nil {
		t.Fatal(err)
	}
	_, err := k.CreateVM(cfg)
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Resource != "vms" {
		t.Fatalf("over-quota create = %v", err)
	}

	kp := New(8<<20, Config{}, WithQuota(Quota{MaxPages: gMemSize / 512}))
	if _, err := kp.CreateVM(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := kp.CreateVM(cfg); err == nil {
		t.Fatal("page-quota breach admitted")
	}

	// A halted VM still counts against pages but frees a VM slot.
	vm := k.VMs()[0]
	k.HaltVM(vm, "stop")
	if _, err := k.CreateVM(cfg); err != nil {
		t.Fatalf("create after halt = %v (MaxVMs counts live VMs)", err)
	}
}
