package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/vax"
)

// COW cloning: boot one source VM, then stamp out clones in microseconds
// by sharing every physical page of the source instead of copying its
// memory image. The mechanics ride the existing modify-fault machinery
// (Section 4.4.2): a shared frame is never mapped writable — the shadow
// M bit is held clear (or, under the read-only-shadow scheme, the
// protection is demoted) — so the first guest store takes a fault, and
// cowBreak privatizes the page: allocate, copy, remap, resume. The
// per-frame refcounts live in mem.PageRefs on vmmShared; the frame
// indirection is VM.frames (nil for normal VMs, which keep their
// contiguous MemBase fast path everywhere).
//
// Invariants:
//   - A frame with refcount > 1 is never written through any path: the
//     shadow tables fault guest stores, and every VMM-side writer
//     (writePhys, device DMA, restore) breaks sharing first.
//   - A page is copied before its reference is dropped, so a frame's
//     count reaches zero only after every holder has stopped reading it
//     (the atomics order the copy before the last drop).
//   - SharedPages + PrivatePages == the VM's page count once frames
//     exist; cowMask moves each page between the gauges exactly once
//     per transition.

// cloneBaseSentinel is the MemBase of a clone: page-aligned and outside
// any real memory, so a path that forgot the frames indirection fails
// as a bus error instead of corrupting a neighbor VM.
const cloneBaseSentinel = ^uint32(0) &^ uint32(vax.PageMask)

// cowMaskAll returns a mask with one bit set per page: every page
// counted shared.
func cowMaskAll(pages uint32) []uint64 {
	mask := make([]uint64, (pages+63)/64)
	for i := range mask {
		mask[i] = ^uint64(0)
	}
	if r := pages % 64; r != 0 {
		mask[len(mask)-1] = (uint64(1) << r) - 1
	}
	return mask
}

// cowNotePrivate moves page pfn from the SharedPages gauge to
// PrivatePages, once.
func (vm *VM) cowNotePrivate(pfn uint32) {
	w, b := pfn/64, uint64(1)<<(pfn%64)
	if int(w) < len(vm.cowMask) && vm.cowMask[w]&b != 0 {
		vm.cowMask[w] &^= b
		vm.Stats.SharedPages--
		vm.Stats.PrivatePages++
	}
}

// Clone creates a new VM sharing every physical page of src — memory,
// disk and machine state are the source's exact current state, captured
// without suspending it. The cost is the clone's own shadow tables plus
// a refcount bump per page; the ~64 KB–8 MB memory copy of a full boot
// is deferred to cowBreak, page by page, and never happens for pages
// the clone only reads. Call on the root monitor while no run is in
// flight. src may itself be a clone.
func (k *VMM) Clone(src *VM, name string) (*VM, error) {
	if k.parent != nil {
		return nil, fmt.Errorf("vmm: Clone must be called on the root monitor")
	}
	if src == nil || src.k != k {
		return nil, fmt.Errorf("vmm: clone source belongs to another monitor")
	}
	if src.halted {
		return nil, fmt.Errorf("vmm: cannot clone a halted VM (%s)", src.haltMsg)
	}
	pages := src.MemSize / vax.PageSize
	if err := k.checkQuota(pages); err != nil {
		return nil, err
	}
	k.captureLive(src)

	k.shared.mu.Lock()
	if k.shared.refs == nil {
		k.shared.refs = mem.NewPageRefs(k.Mem.Pages())
	}
	refs := k.shared.refs
	k.shared.mu.Unlock()

	if src.frames == nil {
		// First clone of a contiguous VM: materialize its frame map.
		// The shadow tables still map frames premodified, so the
		// demotion pass below must run.
		src.frames = make([]uint32, pages)
		for j := range src.frames {
			src.frames[j] = src.MemBase/vax.PageSize + uint32(j)
		}
		src.cowClean = false
	}
	frames := make([]uint32, pages)
	copy(frames, src.frames)
	for _, f := range frames {
		refs.Share(f)
	}
	src.cowMask = cowMaskAll(pages)
	src.Stats.SharedPages = uint64(pages)
	src.Stats.PrivatePages = 0
	if !src.cowClean {
		if err := k.cowDemote(src); err != nil {
			return nil, err
		}
	}

	vm := &VM{
		ID:       k.nextID,
		name:     name,
		MemBase:  cloneBaseSentinel,
		MemSize:  src.MemSize,
		frames:   frames,
		cowMask:  cowMaskAll(pages),
		cowClean: true,
		k:        k,
	}
	if vm.name == "" {
		vm.name = defaultVMName(vm.ID)
	}
	if k.rec != nil {
		vm.rec = k.rec.VM(vm.ID, vm.name)
	}
	// Shadow tables are deliberately NOT built here: they are a cache,
	// and ensureShadow builds them at the clone's first dispatch. A
	// clone that never runs costs no table pages, and under the parallel
	// engine the ~30 KB table build lands on whichever worker shard
	// first dispatches the clone instead of serializing the clone loop.

	// Virtual processor state: the clone resumes from the source's
	// exact machine state (captureLive refreshed it above).
	vm.regs = src.regs
	vm.pc = src.pc
	vm.pslLow = src.pslLow
	vm.vmpsl = src.vmpsl
	vm.SPs = src.SPs
	vm.ISP = src.ISP
	vm.scbb = src.scbb
	vm.pcbb = src.pcbb
	vm.p0br, vm.p0lr = src.p0br, src.p0lr
	vm.p1br, vm.p1lr = src.p1br, src.p1lr
	vm.sbr, vm.slr = src.sbr, src.slr
	vm.mapen = src.mapen
	vm.sisr = src.sisr
	vm.astlvl = src.astlvl
	vm.clockOn = src.clockOn
	vm.clockIE = src.clockIE
	vm.ticks = src.ticks
	vm.uptime = src.uptime
	vm.uptimeSeen = src.uptimeSeen
	vm.tickBias = src.tickBias
	vm.pendingIRQ = src.pendingIRQ
	vm.waiting = src.waiting
	vm.waitDeadline = src.waitDeadline
	vm.waitRemaining = src.waitRemaining
	vm.lastProgress = vm.ticks
	vm.disk = src.disk.clone()
	vm.Stats.SharedPages = uint64(pages)

	k.nextID++
	k.vms = append(k.vms, vm)
	k.record(vm, AuditVMCreated,
		fmt.Sprintf("cloned from %s (%d shared pages)", src.name, pages))
	return vm, nil
}

// ensureShadow builds a VM's shadow tables on first dispatch; Clone
// defers them (see the comment there). Reports false when the monitor
// is out of physical memory, in which case the VM is halted and must
// not be resumed.
func (k *VMM) ensureShadow(vm *VM) bool {
	if vm.shadow != nil {
		return true
	}
	s, err := k.newShadowSpace(vm)
	if err != nil {
		vm.halted = true
		vm.haltMsg = "out of physical memory building shadow tables"
		vm.haltCycles = k.CPU.Cycles
		k.record(vm, AuditVMHalted, vm.haltMsg)
		return false
	}
	vm.shadow = s
	if vm.mapen && vm.p0br != 0 {
		// Seed the fresh cache with the current process, exactly as a
		// checkpoint restore does: slot 0 claims the P0 base and demand
		// fills repopulate it.
		s.slotOwner[0] = vm.p0br
	}
	return true
}

// cowDemote strips every writable mapping from a frames-backed VM's
// shadow tables so newly shared frames cannot be stored to without a
// fault: the process slots, P1 and S shadows reset to null PTEs (they
// refill on demand, and shadowPTEFor holds M clear on shared frames),
// and the identity table is rebuilt the same way. Runs once per
// clone-burst: the first Clone after the VM installed a writable
// mapping pays it, subsequent Clones see cowClean and skip it.
func (k *VMM) cowDemote(vm *VM) error {
	s := vm.shadow
	if s == nil {
		// Never dispatched: no shadow tables exist, so no writable
		// mapping exists either — the demotion is trivially complete.
		vm.cowClean = true
		return nil
	}
	for i := range s.slotPhys {
		if err := s.clearSlot(k, i); err != nil {
			return err
		}
		s.slotOwner[i] = 0
		s.slotLRU[i] = 0
	}
	if err := s.clearP1(k); err != nil {
		return err
	}
	if err := s.clearSRegion(k); err != nil {
		return err
	}
	s.active = 0
	if vm.mapen {
		s.slotOwner[0] = vm.p0br
	}
	if err := s.buildIdentity(k); err != nil {
		return err
	}
	vm.cowClean = true
	if k.Current() == vm {
		s.activate(k.CPU)
	}
	k.CPU.MMU.TBIA()
	return nil
}

// cowBreak privatizes VM-physical page pfn of a frames-backed VM:
// allocate a fresh page, copy the shared frame, drop our reference
// (recycling the frame if we were the last holder — a concurrent break
// on another shard may have released the other reference first), remap,
// and sweep every stale mapping of the old frame out of this VM's
// shadow tables. Reports false when the VM halted (out of physical
// memory). A frame that is not (or no longer) shared only has its
// gauges settled: the caller still owns installing a writable mapping.
func (k *VMM) cowBreak(vm *VM, pfn uint32) bool {
	if vm.frames == nil {
		return true
	}
	old := vm.frames[pfn]
	if !k.cowShared(old) {
		vm.cowNotePrivate(pfn)
		return true
	}
	start := k.CPU.Cycles
	page, err := k.allocRun(1)
	if err != nil {
		k.haltVM(vm, "out of physical memory during copy-on-write break")
		return false
	}
	// Copy before dropping the reference: the frame's count must reach
	// zero only after every holder's copy is complete.
	if err := k.Mem.CopyPage(page, old); err != nil {
		k.haltVM(vm, err.Error())
		return false
	}
	if k.shared.refs.Drop(old) {
		k.freeRun(old, 1)
	}
	vm.frames[pfn] = page
	vm.cowClean = false
	vm.cowNotePrivate(pfn)
	vm.Stats.COWBreaks++
	// The new page may carry stale cached decodes from a recycled run;
	// the old frame's decodes stay valid for its remaining holders (the
	// decode cache and superblock tier are keyed by physical page, and
	// this VM can no longer fetch from the old frame).
	k.CPU.InvalidateDecode(page*vax.PageSize, vax.PageSize)
	k.cowSweep(vm, old)
	if vm.shadow != nil {
		_ = k.Mem.StoreLong(vm.shadow.identPhys+4*pfn,
			uint32(vax.NewPTE(true, vax.ProtUW, true, page)))
	}
	k.CPU.MMU.TBIA()
	k.charge(cpu.CostVMMCowBreak)
	if vm.rec != nil {
		vm.rec.Record(trace.EvCowBreak, start, pfn)
		vm.rec.Observe(trace.LatCowBreak, k.CPU.Cycles-start)
	}
	return true
}

// cowSweep nulls every shadow PTE of vm that still maps the given real
// frame. The breaking VA's own slot is rewritten by the caller, but a
// guest may map one VM-physical page at several virtual addresses (and
// cached process slots keep translations for processes not currently
// running); a stale alias would keep reading the old frame, which may
// later be recycled. The identity table needs no sweep: frames are
// distinct within one VM, so only the entry the caller rewrites maps
// the frame.
func (k *VMM) cowSweep(vm *VM, frame uint32) {
	s := vm.shadow
	if s == nil {
		// A VMM-side write (DMA, writePhys) broke the page before the
		// clone ever ran: no shadow tables, so no stale mapping to sweep.
		return
	}
	sweep := func(phys, ptes uint32) {
		win, err := k.Mem.Window(phys, ptes*4)
		if err != nil {
			return
		}
		for off := 0; off < len(win); off += 4 {
			pte := vax.PTE(binary.LittleEndian.Uint32(win[off:]))
			if pte.Valid() && pte.PFN() == frame {
				binary.LittleEndian.PutUint32(win[off:], uint32(nullPTE))
			}
		}
	}
	sweep(s.sptPhys, VMSLimitPTEs)
	for _, slot := range s.slotPhys {
		sweep(slot, ProcTablePTEs)
	}
	sweep(s.p1Phys, P1TablePTEs)
}

// cowModifyFault services a modify fault on a frames-backed VM: beyond
// the M-bit bookkeeping of handleModifyFault, the faulting page may be
// a shared frame taking its first store, so it is COW-broken before the
// write is allowed through. The alias sweep nulled the faulting slot,
// so a fresh fully-writable PTE is installed rather than upgrading in
// place.
func (k *VMM) cowModifyFault(vm *VM, va uint32) {
	vm.cowClean = false
	if !vm.mapen {
		// MAPEN off: the reference went through the identity table, so
		// the shadow entry lives there — shadowSlot would mis-target the
		// process slot for a P0 address.
		pfn := vax.VPN(va)
		if pfn >= uint32(len(vm.frames)) {
			k.haltVM(vm, fmt.Sprintf("reference to nonexistent VM-physical page %#x", pfn))
			return
		}
		if !k.cowBreak(vm, pfn) {
			return
		}
		_ = k.Mem.StoreLong(vm.shadow.identPhys+4*pfn,
			uint32(vax.NewPTE(true, vax.ProtUW, true, vm.frames[pfn])))
		k.CPU.MMU.TBIS(va)
		k.resumeVM(vm)
		return
	}
	gpte, gf := k.guestPTE(vm, va, true)
	if gf != nil || vm.halted || !gpte.Valid() || gpte.Prot().Reserved() {
		// The guest PTE changed since the fault was raised; the retry
		// resolves whatever state it finds through the normal paths.
		k.resumeVM(vm)
		return
	}
	pfn := gpte.PFN()
	if pfn*vax.PageSize >= vm.MemSize {
		k.haltVM(vm, fmt.Sprintf("reference to nonexistent VM-physical page %#x", pfn))
		return
	}
	if !k.cowBreak(vm, pfn) {
		return
	}
	if slot, ok := vm.shadow.shadowSlot(va); ok {
		spte := vax.NewPTE(true, gpte.Prot().Compress(), true, vm.frames[pfn])
		_ = k.Mem.StoreLong(slot, uint32(spte))
	}
	k.setGuestPTEModify(vm, va)
	k.CPU.MMU.TBIS(va)
	k.resumeVM(vm)
}

// cowPrivatize rebinds every still-shared frame of vm to a fresh
// private page without copying: the caller (checkpoint restore) is
// about to overwrite the VM's entire memory image, so only the frame
// identity matters, not the contents.
func (k *VMM) cowPrivatize(vm *VM) error {
	refs := k.shared.refs
	for i := range vm.frames {
		old := vm.frames[i]
		if refs == nil || !refs.Shared(old) {
			vm.cowNotePrivate(uint32(i))
			continue
		}
		page, err := k.allocRun(1)
		if err != nil {
			return err
		}
		if refs.Drop(old) {
			k.freeRun(old, 1)
		}
		vm.frames[i] = page
		vm.cowNotePrivate(uint32(i))
	}
	vm.cowClean = false
	return nil
}
