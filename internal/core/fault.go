package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/vax"
)

// VMM hardening: virtual machine checks, the per-VM watchdog and the
// shadow-table self-check scrub, plus the hooks that let an attached
// fault.Injector exercise them. The paper's VMM hides device errors
// from the VMOS entirely (Section 5, "Hardware errors"); the recovery
// ladder here is the one it implies for errors that cannot be hidden:
// retry what is transient, report what is not as a virtual machine
// check through the VM's own SCB, and halt only the VM that stops
// making progress.

// Machine-check cause codes, passed as the second parameter longword of
// a virtual machine check (after the byte count).
const (
	MCheckDiskError uint32 = 1 // device error that survived the retry loop
	MCheckBusError  uint32 = 2 // bus error on a DMA range
)

// mcheckIPL is the guest IPL a virtual machine check is delivered at
// (the architectural machine-check IPL).
const mcheckIPL = 31

const (
	// maxDiskRetries bounds the KCALL retry loop: attempts 2..4 each
	// pay an exponentially growing backoff charge before giving up.
	maxDiskRetries = 4
	diskRetryCost  = 120
)

// AttachFaults arms (or, with nil, disarms) a fault-injection plan.
func (k *VMM) AttachFaults(inj *fault.Injector) { k.faults = inj }

// Faults returns the armed fault plan, or nil.
func (k *VMM) Faults() *fault.Injector { return k.faults }

// SetWatchdog sets the per-VM progress budget in ticks (0 disables).
func (k *VMM) SetWatchdog(ticks uint64) { k.cfg.Watchdog = ticks }

// noteProgress stamps a progress event — WAIT, CHM, completed I/O or a
// context switch — against the VM's own CPU time. Progress also resets
// the supervisor's generation fallback: a VM that recovers and then
// demonstrably moves forward has earned a fresh newest-generation
// restore at its next death.
func (k *VMM) noteProgress(vm *VM) {
	vm.lastProgress = vm.ticks
	vm.progressSeq++
	vm.ckptFallback = 0
}

// machineCheck delivers a virtual machine check to the current VM: the
// parameter longwords are {byte count, cause code, cause info}, so the
// guest handler can pop the count and discard the parameters the way a
// real machine-check handler does.
func (k *VMM) machineCheck(vm *VM, code, info uint32) {
	vm.Stats.MachineChecks++
	if vm.rec != nil {
		vm.rec.Record(trace.EvMachineCheck, k.CPU.Cycles, code)
	}
	k.record(vm, AuditMachineCheck, fmt.Sprintf("code %d info %#x", code, info))
	k.deliverToVM(vm, vax.VecMachineCheck, []uint32{8, code, info},
		k.CPU.PC(), vax.Kernel, mcheckIPL)
}

// checkWatchdog halts the current VM when it has run Watchdog ticks of
// its own CPU time without a progress event, and reports whether it
// tripped — in which case haltVM has already scheduled a neighbor and
// the caller must not reschedule.
func (k *VMM) checkWatchdog(vm *VM) bool {
	if k.cfg.Watchdog == 0 || vm == nil || vm.halted || vm.waiting {
		return false
	}
	idle := vm.ticks - vm.lastProgress
	if idle <= k.cfg.Watchdog {
		return false
	}
	vm.Stats.WatchdogTrips++
	if vm.rec != nil {
		vm.rec.Record(trace.EvWatchdogTrip, k.CPU.Cycles, uint32(idle))
	}
	k.record(vm, AuditWatchdogTrip, fmt.Sprintf("no progress event in %d ticks", idle))
	k.haltVMCause(vm, fmt.Sprintf("watchdog: no progress event in %d ticks", idle),
		haltWatchdog)
	return true
}

// injectTick applies the scheduled tick-granularity faults: shadow-PTE
// corruption events, each immediately followed by a self-check pass on
// the corrupted VM (the plan models zero detection latency, so the
// guest never runs on a corrupted translation).
func (k *VMM) injectTick() {
	tick := k.Stats.ClockTicks
	for _, vm := range k.vms {
		if vm.halted {
			continue
		}
		for k.faults.TakeCorruption(vm.ID, tick) {
			k.corruptShadowPTE(vm)
			k.selfCheckVM(vm)
		}
	}
}

// corruptShadowPTE flips the frame number of one live shadow S-space
// PTE of the VM — the injected divergence the self-check repairs.
func (k *VMM) corruptShadowPTE(vm *VM) {
	s := vm.shadow
	var live []uint32
	for vpn := uint32(0); vpn < VMSLimitPTEs; vpn++ {
		if v, err := k.Mem.LoadLong(s.sptPhys + 4*vpn); err == nil && vax.PTE(v).Valid() {
			live = append(live, vpn)
		}
	}
	if len(live) == 0 {
		return
	}
	vpn := live[k.faults.Pick(len(live))]
	slot := s.sptPhys + 4*vpn
	v, err := k.Mem.LoadLong(slot)
	if err != nil {
		return
	}
	pte := vax.PTE(v)
	badPFN := (pte.PFN() ^ uint32(1+k.faults.Pick(7))) % k.Mem.Pages()
	if badPFN == pte.PFN() {
		badPFN = (badPFN + 1) % k.Mem.Pages()
	}
	va := vax.SystemBase + vpn*vax.PageSize
	_ = k.Mem.StoreLong(slot, uint32(vax.NewPTE(true, pte.Prot(), pte.Modified(), badPFN)))
	k.CPU.MMU.TBIS(va)
	k.faults.NoteCorruption()
	k.record(vm, AuditFaultInjected, fmt.Sprintf("shadow PTE for %#x repointed to frame %#x", va, badPFN))
}

// SelfCheck runs one shadow-table self-check pass over every live VM
// and returns the number of repaired PTEs.
func (k *VMM) SelfCheck() int {
	repairs := 0
	for _, vm := range k.vms {
		repairs += k.selfCheckVM(vm)
	}
	return repairs
}

// selfCheckVM revalidates every valid shadow PTE of one VM against the
// VM's own page tables. A shadow entry that no longer matches what the
// demand fill would compute is cleared to the null PTE — the next
// reference refills it from the guest's tables — and audited.
func (k *VMM) selfCheckVM(vm *VM) int {
	if vm.halted || !vm.mapen {
		return 0
	}
	s := vm.shadow
	repairs := 0
	scanned := uint32(0)
	scan := func(base, count uint32, vaOf func(vpn uint32) uint32) {
		for vpn := uint32(0); vpn < count && !vm.halted; vpn++ {
			scanned++
			v, err := k.Mem.LoadLong(base + 4*vpn)
			if err != nil || !vax.PTE(v).Valid() {
				continue // null and invalid entries refill on demand
			}
			va := vaOf(vpn)
			if want, ok := k.expectedShadow(vm, va); ok && want == vax.PTE(v) {
				continue
			}
			if vm.halted {
				return
			}
			_ = k.Mem.StoreLong(base+4*vpn, uint32(nullPTE))
			k.CPU.MMU.TBIS(va)
			repairs++
			vm.Stats.SelfCheckRepairs++
			k.record(vm, AuditSelfCheckRepair, fmt.Sprintf("shadow PTE %#x for %#x cleared", v, va))
		}
	}
	scan(s.sptPhys, VMSLimitPTEs, func(vpn uint32) uint32 {
		return vax.SystemBase + vpn*vax.PageSize
	})
	scan(s.slotPhys[s.active], ProcTablePTEs, func(vpn uint32) uint32 {
		return vpn * vax.PageSize
	})
	scan(s.p1Phys, P1TablePTEs, func(vpn uint32) uint32 {
		return vax.P1Base + vpn*vax.PageSize
	})
	k.charge(uint64(scanned) / 16) // the scrub is VMM work, not free
	return repairs
}

// expectedShadow recomputes the shadow PTE the demand fill would
// install for va right now, or ok=false when the guest's tables no
// longer justify any valid shadow entry there.
func (k *VMM) expectedShadow(vm *VM, va uint32) (vax.PTE, bool) {
	gpte, gf := k.guestPTE(vm, va, false)
	if gf != nil || vm.halted {
		return 0, false
	}
	if gpte.Prot().Reserved() || !gpte.Valid() {
		return 0, false
	}
	vmPFN := gpte.PFN()
	if k.cfg.MMIOEmulatedIO && isDeviceFrame(vmPFN) {
		return 0, false
	}
	if vmPFN*vax.PageSize >= vm.MemSize {
		return 0, false
	}
	return shadowPTEFor(vm, gpte, k.cfg.ReadOnlyShadow), true
}
