package core

import (
	"bytes"
	"fmt"

	"repro/internal/trace"
)

// The supervisor: periodic checkpointing into a per-VM generation ring,
// and automatic recovery of VMs that die recoverably (watchdog trips,
// handler-less machine checks). The paper's VMM contains guest failures
// but never undoes them; this layer adds the rollback the
// high-assurance deployments it describes would need — a dead VM comes
// back at its last checkpoint instead of staying a hole in the fleet.
//
// The state machine per VM:
//
//	running ──death──▶ halted+pendingRecover ──safe point──▶ tryRecover
//	   ▲                                                        │
//	   │   restore newest-valid generation (ckptFallback back,  │
//	   └── stepping older per validation failure); progress ◀───┤
//	       resets the fallback                                  │
//	                                                            ▼
//	                  no valid generation, or RecoverBudget spent:
//	                  escalate — permanent halt, frames released
//
// Recovery is deliberately deferred: a death unwinds through the normal
// vm.halted guards first (a KCALL emulation path half-way through its
// unwind must not find a revived VM's registers under it), and the
// rollback happens at one of three safe points — the clock-tick
// handler, the serial Run halt loop, or the parallel engine's drive
// loop, each at an instruction boundary with no VM mid-emulation.

// maybeCheckpoint takes the periodic checkpoint of the running VM when
// its policy interval has matured. Guarded by the progress mark: a VM
// that has made no progress event since its previous checkpoint gets no
// new generation (its newest would just snapshot the stall), except the
// very first, so even a guest that never progresses has one restore
// point.
func (k *VMM) maybeCheckpoint(vm *VM) {
	if vm == nil || vm.halted {
		return
	}
	if vm.ticks-vm.ckptLastTick < k.cfg.CheckpointEvery {
		return
	}
	if vm.ckptSeq > 0 && vm.progressSeq == vm.ckptMark {
		return
	}
	k.checkpointVM(vm)
}

// checkpointVM writes one generation of the VM into its ring,
// advancing the head. Cold path by construction (policy intervals are
// thousands of ticks); allocates the image buffer freely.
func (k *VMM) checkpointVM(vm *VM) error {
	gens := k.cfg.CheckpointGenerations
	if gens <= 0 {
		gens = 1
	}
	start := k.CPU.Cycles
	var buf bytes.Buffer
	if err := k.WriteCheckpoint(vm, &buf, k.cfg.CheckpointCompress); err != nil {
		k.record(vm, AuditCheckpoint, "failed: "+err.Error())
		return err
	}
	if vm.ckptGens == nil {
		vm.ckptGens = make([][]byte, gens)
		vm.ckptHead = gens - 1 // first advance lands on index 0
	}
	vm.ckptHead = (vm.ckptHead + 1) % len(vm.ckptGens)
	vm.ckptGens[vm.ckptHead] = buf.Bytes()
	vm.ckptSeq++
	vm.ckptLastTick = vm.ticks
	vm.ckptMark = vm.progressSeq
	vm.Stats.Checkpoints++
	// The serialization work is real VMM time: charge a cycle per 64
	// bytes of image, scaled like every other emulation path.
	k.charge(uint64(buf.Len()) / 64)
	if vm.rec != nil {
		vm.rec.Record(trace.EvCheckpoint, start, uint32(vm.ckptSeq))
	}
	k.record(vm, AuditCheckpoint,
		fmt.Sprintf("generation %d, %d bytes", vm.ckptSeq, buf.Len()))
	return nil
}

// checkpointGen returns the generation back steps behind the newest
// (0 = newest), or nil when the ring holds no such generation.
func (vm *VM) checkpointGen(back int) []byte {
	n := len(vm.ckptGens)
	if n == 0 || back < 0 {
		return nil
	}
	avail := n
	if vm.ckptSeq < uint64(n) {
		avail = int(vm.ckptSeq)
	}
	if back >= avail {
		return nil
	}
	return vm.ckptGens[((vm.ckptHead-back)%n+n)%n]
}

// CheckpointGenerations reports how many restorable generations the
// VM's ring currently holds.
func (vm *VM) CheckpointGenerations() int {
	n := len(vm.ckptGens)
	if n == 0 {
		return 0
	}
	if vm.ckptSeq < uint64(n) {
		return int(vm.ckptSeq)
	}
	return n
}

// recoverPending recovers every VM marked for deferred recovery,
// reporting whether at least one came back runnable. Safe-point only.
func (k *VMM) recoverPending() bool {
	any := false
	for _, vm := range k.vms {
		if vm != nil && vm.pendingRecover && k.tryRecover(vm) {
			any = true
		}
	}
	return any
}

// tryRecover rolls one dead VM back to its newest valid checkpoint
// generation, stepping older generations past validation failures, and
// escalates to a permanent halt when the budget or the ring runs out.
// Returns whether the VM is runnable again.
func (k *VMM) tryRecover(vm *VM) bool {
	vm.pendingRecover = false
	if !vm.halted {
		return true // already live (double-marked death); nothing to do
	}
	cause := vm.haltMsg
	start := k.CPU.Cycles
	// A zero budget means unlimited: the armed default is always set by
	// withDefaults, so zero only happens on operator-driven RecoverNow
	// against an unarmed machine.
	if b := k.cfg.RecoverBudget; b > 0 && int(vm.Stats.Recoveries) >= b {
		k.escalate(vm, fmt.Sprintf("recovery budget (%d) exhausted", b))
		return false
	}
	// The fault plan may poison the newest generation before the
	// supervisor reads it — the campaign's way of proving the CRC
	// rejection + generation-fallback path end to end.
	if k.faults != nil && k.faults.TakeCkptCorruption(vm.ID) {
		if img := vm.checkpointGen(0); len(img) > 0 {
			img[k.faults.Pick(len(img))] ^= byte(1 + k.faults.Pick(255))
			k.faults.NoteCkptCorruption()
			k.record(vm, AuditFaultInjected, "newest checkpoint generation corrupted")
		}
	}
	for {
		img := vm.checkpointGen(vm.ckptFallback)
		if img == nil {
			k.escalate(vm, "no valid checkpoint generation left")
			return false
		}
		err := k.restoreInPlace(vm, img)
		if err == nil {
			break
		}
		vm.Stats.RecoveryFallbacks++
		k.record(vm, AuditRecoveryFallback,
			fmt.Sprintf("generation -%d rejected: %v", vm.ckptFallback, err))
		vm.ckptFallback++
	}
	gen := vm.ckptFallback
	// The next death without intervening progress restores one
	// generation further back — the backoff that walks a stall whose
	// cause was checkpointed out of reach of the newest generation.
	vm.ckptFallback++
	vm.halted = false
	vm.haltMsg = ""
	vm.haltCycles = 0
	vm.Stats.Recoveries++
	if vm.rec != nil {
		vm.rec.Record(trace.EvRecover, start, uint32(gen))
		vm.rec.Observe(trace.LatRecover, k.CPU.Cycles-start)
	}
	k.record(vm, AuditVMRecovered,
		fmt.Sprintf("restored from generation -%d after %q", gen, cause))
	return true
}

// escalate gives up on a VM: the halt becomes permanent and the shadow
// frames — kept across the recoverable halt — go back to the pool.
func (k *VMM) escalate(vm *VM, why string) {
	vm.Stats.RecoveryEscalations++
	k.record(vm, AuditRecoveryEscalated, why)
	if vm.shadow != nil {
		vm.shadow.releaseRuns(k)
	}
}

// --- public control surface (vaxmon, harness) ---

// CheckpointNow takes an immediate checkpoint generation of the VM,
// outside any periodic policy.
func (k *VMM) CheckpointNow(vm *VM) error {
	return k.checkpointVM(vm)
}

// RecoverNow forces a recovery attempt on a halted VM, as if it had
// died recoverably. Returns an error when the VM is live or when
// recovery escalates.
func (k *VMM) RecoverNow(vm *VM) error {
	if !vm.halted {
		return fmt.Errorf("vmm: %s is not halted", vm.Name())
	}
	if vm.shadow != nil && vm.shadow.released {
		return fmt.Errorf("vmm: %s halted permanently (shadow frames released)", vm.Name())
	}
	vm.pendingRecover = true
	if !k.tryRecover(vm) {
		return fmt.Errorf("vmm: recovery of %s escalated: %s", vm.Name(), vm.haltMsg)
	}
	// Called between runs (the monitor path): the machine may have
	// halted with every VM dead, so make the revived VM schedulable
	// before the next Run.
	if k.CPU.Halted {
		k.CPU.ClearHalt()
	}
	if k.Current() == nil {
		k.scheduleNext()
	}
	return nil
}

// SetCheckpointPolicy sets (or, with every = 0, disables) periodic
// checkpointing at run time. Existing rings are kept; a deeper ring
// takes effect at each VM's next checkpoint.
func (k *VMM) SetCheckpointPolicy(every uint64, generations int) {
	k.cfg.CheckpointEvery = every
	if generations > 0 {
		k.cfg.CheckpointGenerations = generations
	} else if k.cfg.CheckpointGenerations == 0 {
		k.cfg.CheckpointGenerations = 4
	}
}

// SetRecovery arms or disarms the supervisor at run time.
func (k *VMM) SetRecovery(enabled bool, budget int) {
	k.cfg.Recover = enabled
	if budget > 0 {
		k.cfg.RecoverBudget = budget
	} else if enabled && k.cfg.RecoverBudget == 0 {
		k.cfg.RecoverBudget = 8
	}
}
