package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/vax"
)

// The virtual VAX console command interface. Real VAX systems expose a
// console processor with EXAMINE/DEPOSIT/START/HALT commands; Section 5
// of the paper: "We chose a subset adequate for booting and debugging a
// VM." This is that subset, operating on one VM under the VMM.
//
// Commands (addresses are VM-physical, hex or decimal):
//
//	EXAMINE addr          print a longword of VM memory
//	DEPOSIT addr value    write a longword of VM memory
//	START addr            set the VM's PC (and clear a HALT) and mark runnable
//	HALT                  stop the VM at its current PC
//	CONTINUE              resume a console-halted VM
//	INITIALIZE            reset the virtual processor to power-up state

// ConsoleCommand executes one console command against vm and returns
// the console's reply.
func (k *VMM) ConsoleCommand(vm *VM, line string) (string, error) {
	fields := strings.Fields(strings.ToUpper(line))
	if len(fields) == 0 {
		return "", nil
	}
	parse := func(s string) (uint32, error) {
		v, err := strconv.ParseUint(strings.ToLower(s), 0, 32)
		if err != nil {
			return 0, fmt.Errorf("console: bad value %q", s)
		}
		return uint32(v), nil
	}
	cmd := fields[0]
	switch {
	case strings.HasPrefix("EXAMINE", cmd):
		if len(fields) != 2 {
			return "", fmt.Errorf("console: EXAMINE addr")
		}
		addr, err := parse(fields[1])
		if err != nil {
			return "", err
		}
		v, ok := vm.readPhys(addr)
		if !ok {
			return "", fmt.Errorf("console: %#x is outside VM memory", addr)
		}
		return fmt.Sprintf("P %08X %08X", addr, v), nil

	case strings.HasPrefix("DEPOSIT", cmd):
		if len(fields) != 3 {
			return "", fmt.Errorf("console: DEPOSIT addr value")
		}
		addr, err := parse(fields[1])
		if err != nil {
			return "", err
		}
		val, err := parse(fields[2])
		if err != nil {
			return "", err
		}
		if !vm.writePhys(addr, val) {
			return "", fmt.Errorf("console: %#x is outside VM memory", addr)
		}
		return fmt.Sprintf("P %08X %08X", addr, val), nil

	case strings.HasPrefix("START", cmd):
		if len(fields) != 2 {
			return "", fmt.Errorf("console: START addr")
		}
		addr, err := parse(fields[1])
		if err != nil {
			return "", err
		}
		k.consoleUnhalt(vm)
		vm.pc = addr
		return fmt.Sprintf("starting at %08X", addr), nil

	case strings.HasPrefix("CONTINUE", cmd):
		k.consoleUnhalt(vm)
		return fmt.Sprintf("continuing at %08X", vm.pc), nil

	case cmd == "HALT":
		if k.Current() == vm {
			k.suspend(vm)
		}
		vm.halted = true
		vm.haltMsg = "halted from the console"
		k.record(vm, AuditVMHalted, vm.haltMsg)
		return fmt.Sprintf("halted at %08X", vm.pc), nil

	case strings.HasPrefix("INITIALIZE", cmd):
		if k.Current() == vm {
			k.suspend(vm)
		}
		vm.regs = [14]uint32{}
		vm.pslLow = 0
		vm.vmpsl = vm.vmpsl.WithCur(0).WithPrv(0).WithIPL(31)
		vm.mapen = false
		vm.waiting = false
		vm.pendingIRQ = [32]vax.Vector{}
		return "initialized", nil
	}
	return "", fmt.Errorf("console: unknown command %q", cmd)
}

// consoleUnhalt makes a console-stopped VM schedulable again, clearing
// a machine-level halt if every VM had stopped.
func (k *VMM) consoleUnhalt(vm *VM) {
	vm.halted = false
	vm.haltMsg = ""
	vm.waiting = false
	k.CPU.ClearHalt()
}
