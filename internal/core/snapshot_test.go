package core

import (
	"strings"
	"testing"
)

// TestSnapshotRestoreRoundTrip checkpoints a VM mid-computation,
// restores it into a brand-new monitor, and requires the continuation
// to produce exactly the result an uninterrupted run produces.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := `
start:	clrl r2
	movl #20000, r11
loop:	addl2 r11, r2
	sobgtr r11, loop
	movl r2, @#0x80006000
	halt
`
	// Reference: uninterrupted run.
	kRef, vmRef, _ := bootVM(t, Config{}, src, nil)
	runVM(t, kRef, vmRef, 10_000_000)
	want := guestLong(t, vmRef, 0x6000)
	if want == 0 {
		t.Fatal("reference run produced nothing")
	}

	// Interrupted run: stop partway, snapshot, restore elsewhere.
	k1, vm1, _ := bootVM(t, Config{}, src, nil)
	k1.Run(5000) // partway through the loop
	if h, _ := vm1.Halted(); h {
		t.Fatal("ran to completion before the snapshot; shorten the prefix")
	}
	snap, err := k1.Snapshot(vm1)
	if err != nil {
		t.Fatal(err)
	}

	k2 := New(8<<20, Config{})
	vm2, err := k2.Restore("revived", snap)
	if err != nil {
		t.Fatal(err)
	}
	k2.Run(10_000_000)
	if h, msg := vm2.Halted(); !h || !strings.Contains(msg, "HALT") {
		t.Fatalf("restored VM did not finish: %t %q", h, msg)
	}
	if got := guestLong(t, vm2, 0x6000); got != want {
		t.Errorf("restored result %#x, want %#x", got, want)
	}
	// The original can keep running too (forked state).
	k1.Run(10_000_000)
	if got := guestLong(t, vm1, 0x6000); got != want {
		t.Errorf("original result %#x, want %#x", got, want)
	}
}

// TestSnapshotPreservesVirtualizedState checks the virtualized
// registers and device state survive the trip.
func TestSnapshotPreservesVirtualizedState(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, `
start:	mtpr #21, #18        ; park at IPL 21
spin:	brb spin
`, nil)
	copy(vm.Disk().Image(), []byte("persistent"))
	vm.FeedConsole("xy")
	k.Run(20000)
	snap, err := k.Snapshot(vm)
	if err != nil {
		t.Fatal(err)
	}

	k2 := New(8<<20, Config{})
	vm2, err := k2.Restore("copy", snap)
	if err != nil {
		t.Fatal(err)
	}
	if vm2.vmpsl.IPL() != 21 {
		t.Errorf("restored virtual IPL = %d, want 21", vm2.vmpsl.IPL())
	}
	if string(vm2.Disk().Image()[:10]) != "persistent" {
		t.Error("disk image lost")
	}
	if vm2.scbb != vm.scbb || vm2.sbr != vm.sbr || vm2.slr != vm.slr || !vm2.mapen {
		t.Error("virtualized mapping registers lost")
	}
	// Console input is host-side transient and intentionally not part
	// of the snapshot; memory must match exactly.
	d1, d2 := vm.DumpMemory(), vm2.DumpMemory()
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("memory differs at %#x", i)
		}
	}
}

// TestRestoreFlushesDecodeCache restores a snapshot into a monitor that
// has been executing VM code: every cached decoded instruction must be
// dropped, and the restored VM must still run to the right answer.
func TestRestoreFlushesDecodeCache(t *testing.T) {
	src := `
start:	clrl r2
	movl #20000, r11
loop:	addl2 r11, r2
	sobgtr r11, loop
	movl r2, @#0x80006000
	halt
`
	k, vm, _ := bootVM(t, Config{}, src, nil)
	k.Run(5000) // partway through the loop, decode cache warm
	if k.CPU.Stats.DecodeHits == 0 {
		t.Fatal("guest loop produced no decode-cache hits")
	}
	snap, err := k.Snapshot(vm)
	if err != nil {
		t.Fatal(err)
	}

	invBefore := k.CPU.Stats.DecodeInvalidations
	vm2, err := k.Restore("revived", snap)
	if err != nil {
		t.Fatal(err)
	}
	if k.CPU.Stats.DecodeInvalidations == invBefore {
		t.Error("restore into a warm monitor invalidated no decodes")
	}
	k.Run(50_000_000)
	if h, msg := vm2.Halted(); !h || !strings.Contains(msg, "HALT") {
		t.Fatalf("restored VM did not finish: %t %q", h, msg)
	}
	want := uint32(20000) * 20001 / 2
	if got := guestLong(t, vm2, 0x6000); got != want {
		t.Errorf("restored result %#x, want %#x", got, want)
	}
}

func TestSnapshotErrors(t *testing.T) {
	k, vm, _ := bootVM(t, Config{}, "start:\thalt", nil)
	runVM(t, k, vm, 1000)
	if _, err := k.Snapshot(vm); err == nil {
		t.Error("snapshot of a halted VM should fail")
	}
	k2 := New(8<<20, Config{})
	if _, err := k2.Restore("x", []byte("junkjunkjunk")); err == nil {
		t.Error("restore of junk should fail")
	}
	if _, err := k2.Restore("x", nil); err == nil {
		t.Error("restore of nil should fail")
	}
}
