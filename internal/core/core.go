// Package core implements the paper's primary contribution: a virtual
// machine monitor for the modified VAX architecture, in the style of the
// VAX security kernel (Hall & Robinson, ISCA 1991).
//
// The VMM attaches to the simulated processor's exception dispatch —
// exactly where the paper's VMM owns the real machine's kernel-mode SCB
// vectors — and implements:
//
//   - execution ring compression (Section 4.2): CHM, REI and the
//     privileged sensitive instructions are emulated out of the
//     VM-emulation trap, with the VM's modes held in VMPSL;
//   - memory ring compression with shadow page tables (Section 4.3):
//     null-PTE defaults, on-demand fills that compress protection
//     codes, optional multi-process shadow-table caching (Section 7.2)
//     and optional fill prefetching (the rejected experiment of
//     Section 4.3.1);
//   - the modify fault (Section 4.4.2);
//   - virtual I/O by KCALL start-I/O or, as a baseline, by emulated
//     memory-mapped registers (Section 4.4.3);
//   - virtual interrupts, a virtual interval timer with VMM-maintained
//     uptime, the WAIT idle handshake, and scheduling of multiple VMs
//     (Section 5).
//
// Every emulation path charges cycles to the machine from the cost
// model in internal/cpu/costs.go, so experiments measure the ratio of
// direct execution to trap-and-emulate work the paper reports on.
package core

import (
	"fmt"
	"sync"

	"repro/internal/cpu"
	"repro/internal/dev"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/vax"
)

// RingScheme selects the ring virtualization strategy (Section 7.1).
type RingScheme int

const (
	// RingCompression is the paper's scheme: virtual kernel and
	// executive both map to real executive; user and supervisor map to
	// themselves.
	RingCompression RingScheme = iota
	// TrapAll is Goldberg's first scheme: every instruction executed in
	// the VM's most privileged mode traps to the VMM for emulation.
	TrapAll
	// SeparateAddressSpace is the rejected alternative of Section 7.1
	// in which the VMM runs in its own address space: ring compression
	// plus an address-space switch (and TLB invalidation) on every VMM
	// entry and exit.
	SeparateAddressSpace
)

func (s RingScheme) String() string {
	switch s {
	case TrapAll:
		return "trap-all (Goldberg scheme 1)"
	case SeparateAddressSpace:
		return "separate address space"
	}
	return "ring compression"
}

// Config tunes the VMM; zero values give the paper's production design.
type Config struct {
	Scheme RingScheme

	// ShadowCacheSlots is the number of per-process shadow page tables
	// kept per VM (Section 7.2). 0 or 1 means no caching: a single
	// table cleared on every address-space change.
	ShadowCacheSlots int

	// PrefetchGroup is the number of consecutive shadow PTEs filled per
	// fault (Section 4.3.1's rejected experiment). 0 or 1 means pure
	// on-demand fill.
	PrefetchGroup int

	// FillBatch is the shadow-fill cluster size: on a demand fill the
	// VMM also fills up to FillBatch-1 following shadow PTEs from the
	// same guest page-table page, in one walk of the guest's tables.
	// Unlike PrefetchGroup (which re-walks the guest tables and pays
	// the full fill cost per extra PTE — the paper's rejected
	// experiment), the batch amortizes one walk across the cluster and
	// never overwrites a non-null shadow PTE. Bounded by the guest
	// PTE page, the region limit and the shadow table size. 0 selects
	// the default of 8; 1 (or negative) disables batching — the
	// experiment harness pins 1 to reproduce the paper's pure
	// demand-fill design point.
	FillBatch int

	// MMIOEmulatedIO makes virtual disks appear as memory-mapped
	// controllers whose every register reference traps for emulation,
	// instead of the KCALL start-I/O interface (Section 4.4.3).
	MMIOEmulatedIO bool

	// ReadOnlyShadow selects the modify-fault alternative the paper
	// considered and rejected (Section 4.4.2): instead of the modify
	// fault, unmodified pages get write-denying shadow protection; the
	// first write takes an access violation the VMM upgrades, and
	// PROBEW must trap to the VMM whenever the shadow denies a write.
	ReadOnlyShadow bool

	// CostScalePercent scales every VMM emulation-path cost (100 = the
	// calibrated model). The sensitivity experiment sweeps it to show
	// the paper's qualitative results do not hinge on calibration.
	CostScalePercent int

	// ClockPeriod is the real interval-timer period in cycles (one
	// "tick"); TimeSlice is the VM scheduling quantum in ticks;
	// WaitTimeout is the WAIT handshake timeout in ticks (Section 5:
	// "WAIT times out after some seconds").
	ClockPeriod uint32
	TimeSlice   uint64
	WaitTimeout uint64

	// Watchdog is the per-VM progress budget: a VM that runs this many
	// ticks of its own CPU time without a progress event (WAIT, CHM,
	// completed I/O, context switch) is halted so its neighbors keep
	// the processor. 0 disables the watchdog.
	Watchdog uint64

	// SelfCheckInterval runs the shadow-table self-check pass over
	// every VM each n real ticks. 0 disables the periodic scrub
	// (SelfCheck can still be called explicitly).
	SelfCheckInterval uint64

	// CheckpointEvery takes a periodic checkpoint of the running VM
	// every n ticks of its own virtual clock (n × ClockPeriod guest
	// cycles), quiesced at an instruction boundary, into an in-memory
	// ring of CheckpointGenerations generations per VM. 0 disables
	// periodic checkpointing; the disabled path costs one comparison
	// per tick and no allocation. A checkpoint is skipped while the VM
	// has made no progress event since its last one, so a stalling
	// guest cannot flood its ring with stall-state generations.
	CheckpointEvery uint64

	// CheckpointGenerations is the per-VM checkpoint ring depth. 0
	// selects the default of 4 when CheckpointEvery is set.
	CheckpointGenerations int

	// CheckpointCompress stores checkpoint sections DEFLATE-compressed
	// (slower to take, roughly 10x smaller for mostly-zero guests).
	CheckpointCompress bool

	// Recover arms the supervisor: a VM that dies from a watchdog trip
	// or a handler-less virtual machine check is rolled back to its
	// newest valid checkpoint generation instead of staying dead,
	// falling back a generation when one fails validation, and
	// escalating to a permanent halt after RecoverBudget recoveries.
	Recover bool

	// RecoverBudget bounds recoveries per VM (0 selects the default of
	// 8 when Recover is set).
	RecoverBudget int

	// Workers selects the execution engine. The default (0 or 1) is the
	// deterministic single-threaded round-robin scheduler, which every
	// experiment and the fault campaign rely on for exact replay. A
	// value above 1 makes Run use the parallel engine: a fixed pool of
	// Workers goroutines, each driving a private VMM shard, pulls
	// runnable VMs from a work queue (M:N scheduling; parked VMs cost
	// no worker time). Ignored — with a serial fallback — when a
	// fault injector is attached, because injection schedules are keyed
	// to the single machine-wide tick stream.
	Workers int

	// Translation enables the hot-trace superblock tier: decoded
	// instructions that stay hot are chained into superblocks the
	// processor replays without per-instruction fetch/decode (see
	// cpu.EnableTranslation). Off by default — the tier trades the
	// one-instruction-per-Step guarantee for throughput, so replay-
	// exact harnesses (fault campaigns, experiments) leave it off.
	// Usually set via WithTranslation.
	Translation bool

	// Recorder attaches a flight recorder: every VM created on this
	// monitor gets a per-VM event ring and latency histograms in it.
	// nil (the default) disables recording; the hot paths then pay one
	// pointer test and allocate nothing. Usually set via WithRecorder.
	Recorder *trace.Recorder

	// MemCache, when non-nil, sources the monitor's physical memory
	// from (and Release returns it to) a private mem.Cache instead of
	// the global buffer pool, so harness code that churns machines
	// across goroutines never contends on the pool lock. Usually set
	// via WithMemCache.
	MemCache *mem.Cache

	// Quota is the whole-monitor admission limit on VMs and nominal
	// pages (see quota.go); the zero value admits everything. Usually
	// set via WithQuota.
	Quota Quota
}

func (cfg Config) withDefaults() Config {
	if cfg.ShadowCacheSlots < 1 {
		cfg.ShadowCacheSlots = 1
	}
	if cfg.PrefetchGroup < 1 {
		cfg.PrefetchGroup = 1
	}
	if cfg.FillBatch == 0 {
		cfg.FillBatch = 8
	}
	if cfg.FillBatch < 1 {
		cfg.FillBatch = 1
	}
	if cfg.ClockPeriod == 0 {
		cfg.ClockPeriod = 5000
	}
	if cfg.TimeSlice == 0 {
		cfg.TimeSlice = 4
	}
	if cfg.WaitTimeout == 0 {
		cfg.WaitTimeout = 16
	}
	if cfg.CheckpointEvery > 0 && cfg.CheckpointGenerations == 0 {
		cfg.CheckpointGenerations = 4
	}
	if cfg.Recover && cfg.RecoverBudget == 0 {
		cfg.RecoverBudget = 8
	}
	return cfg
}

// Stats counts VMM-level events for the experiment harness.
type Stats struct {
	VMMEntries     uint64
	WorldSwitches  uint64
	VirtualIRQs    uint64
	ClockTicks     uint64
	ReflectedTraps uint64 // exceptions forwarded into a VM

	// Shadow page-table frame pool traffic: runs recycled from a
	// halted VM's tables versus runs carved fresh from the bump
	// allocator (which never reclaims on its own).
	ShadowPoolHits   uint64
	ShadowPoolMisses uint64
}

// vmmShared is the state genuinely shared between a root VMM and the
// per-worker shards of a parallel run. Everything else a VMM holds is
// goroutine-confined: either per-VM (shadow tables, statistics, cycle
// accounting), per-worker (CPU, MMU, TLB, decode cache, the allocator
// cache below) or owned by whichever engine is running. The global
// page pool sits behind a mutex because workers reach it only to
// refill or spill their local caches in batches; nothing touches it
// per step. Audit ordering needs no shared counter at all: shard
// events carry cycle stamps and are sequenced at the merge (audit.go).
type vmmShared struct {
	mu       sync.Mutex // guards nextPage and pageRuns (cold paths)
	nextPage uint32     // physical page bump allocator

	// pageRuns is the free list of recycled page runs, keyed by run
	// length in pages: the bump allocator never reclaims, so the runs
	// backing a halted VM's shadow tables are parked here and reused
	// by the next newShadowSpace of the same geometry.
	pageRuns map[uint32][]uint32

	// refs is the per-frame reference-count table behind COW cloning,
	// nil until the first Clone (machines that never clone pay nothing).
	// The pointer is written once, under mu, while no run is in flight;
	// shards read it without locking — the parallel engine's goroutine
	// start orders the store before any shard load. The counters inside
	// are atomics (see mem.PageRefs).
	refs *mem.PageRefs
}

// Per-worker allocator cache tuning. Spans and run batches are small:
// a worker shard allocates only on slow paths (a VM halting on it, a
// shadow space growing), so the cache exists to keep those paths off
// the global mutex, not to hoard memory.
const (
	// allocSpanPages is how many pages a worker shard carves from the
	// global bump allocator per refill; the remainder becomes its
	// private span served without locking.
	allocSpanPages = 64
	// runRefillBatch is how many recycled runs of one size a worker
	// pulls from the global pool under a single lock acquisition.
	runRefillBatch = 4
	// runCacheMax bounds the recycled runs of one size a worker keeps
	// before spilling half back to the global pool.
	runCacheMax = 8
)

// allocCache is a VMM instance's private allocator front. On the root
// it stays empty (the root allocates exactly and is single-threaded at
// allocation sites, keeping FreePages and out-of-memory semantics
// precise); on a worker shard it absorbs freeRun/allocRun traffic so
// steady-state halts and shadow growth never contend on vmmShared.mu.
type allocCache struct {
	spanPage uint32 // next free page of the private span
	spanLeft uint32 // pages remaining in the span
	runs     map[uint32][]uint32
}

// VMM is the virtual machine monitor.
type VMM struct {
	CPU   *cpu.CPU
	Mem   *mem.Memory
	Clock *dev.Clock

	cfg Config
	vms []*VM
	cur int // index of the VM owning the processor, -1 = none

	// nextID is the monotonic VM ID counter. IDs used to be the VM's
	// index in vms, which DestroyVM would recycle; with the counter a
	// destroyed VM's ID is never reissued (while nothing is destroyed
	// the numbering is identical to the old scheme).
	nextID int

	shared *vmmShared
	parent *VMM       // non-nil on a per-worker shard of a parallel run
	alloc  allocCache // this instance's private allocator front

	// workerShards is the root's pool of per-worker shard VMMs, built
	// lazily by RunParallel and reused across runs so repeated parallel
	// sections do not reconstruct CPUs (and their decode caches).
	workerShards []*VMM

	// auditNext is the audit sequence counter. Only the root assigns
	// sequence numbers — serially while recording its own events, and
	// at the merge when shard events (stamped with cycles, not
	// sequences) are folded in — so it is a plain integer, not the
	// per-step shared atomic it used to be.
	auditNext uint64

	audit  *trace.Last[AuditEvent]
	rec    *trace.Recorder // flight recorder, nil = disabled
	faults *fault.Injector // nil = no fault injection
	ioBuf  []byte          // scratch page for KCALL disk transfers

	// vmmCycles is the VMM housekeeping bucket: cycles spent on world
	// switches and tick-wide work (uptime maintenance, wake scans,
	// self-checks, the watchdog) that belong to no VM. switchStart
	// marks the cycle count at the last suspend so resume can bank the
	// between-VMs window here instead of letting it fall on a guest.
	vmmCycles   uint64
	switchStart uint64

	lastParallel ParallelRunStats

	Stats Stats
}

// New builds a VMM over a fresh modified-VAX machine with the given
// physical memory size. Options are applied to cfg in order, after
// which the configuration must pass Validate — a bad combination is a
// programmer error and panics rather than limping into a run.
func New(memBytes uint32, cfg Config, opts ...Option) *VMM {
	if len(opts) > 0 {
		// Apply options to a branch-local copy: taking cfg's own
		// address would spill the parameter to the heap on every call,
		// including the common no-option one.
		withOpts := cfg
		for _, opt := range opts {
			opt(&withOpts)
		}
		cfg = withOpts
	}
	if err := cfg.Validate(); err != nil {
		panic("core.New: " + err.Error())
	}
	var m *mem.Memory
	if cfg.MemCache != nil {
		m = cfg.MemCache.New(memBytes)
	} else {
		m = mem.New(memBytes)
	}
	c := cpu.New(m, cpu.ModifiedVAX)
	k := &VMM{
		CPU:   c,
		Mem:   m,
		Clock: dev.NewClock(),
		cfg:   cfg.withDefaults(),
		cur:   -1,
		rec:   cfg.Recorder,
		// page 0 reserved for the (unused) real SCB
		shared: &vmmShared{nextPage: 1, pageRuns: make(map[uint32][]uint32)},
		ioBuf:  make([]byte, vax.PageSize),
	}
	c.Sink = k
	c.AddDevice(k.Clock)
	c.TrapAllInVM = k.cfg.Scheme == TrapAll
	c.ProbeWTrapOnDeny = k.cfg.ReadOnlyShadow
	k.Clock.Interval(k.cfg.ClockPeriod)
	// The VMM parks the processor in kernel mode; VMs run with PSL<VM>.
	c.SetPSL(vax.PSL(0).WithCur(vax.Kernel))
	if k.cfg.Translation {
		k.enableTranslation(c)
	}
	return k
}

// enableTranslation opts a processor into the superblock tier and
// wires its compile callback into the flight recorder. The callback
// closure is created only on tier-on monitors, keeping the default
// construction path allocation-identical to previous releases.
func (k *VMM) enableTranslation(c *cpu.CPU) {
	c.EnableTranslation(true)
	c.OnTraceCompile = func(startVA uint32, steps int) {
		if vm := k.Current(); vm != nil && vm.rec != nil {
			vm.rec.Record(trace.EvTraceCompile, c.Cycles, startVA)
		}
	}
}

// Config returns the VMM's effective configuration.
func (k *VMM) Config() Config { return k.cfg }

// Recorder returns the attached flight recorder (nil when disabled).
func (k *VMM) Recorder() *trace.Recorder { return k.rec }

// EnableRecorder attaches a flight recorder after construction (the
// monitor's way to turn tracing on at run time) and registers every
// existing VM with it. Call only while no run is in flight; a no-op if
// a recorder is already attached.
func (k *VMM) EnableRecorder(ringCap int) *trace.Recorder {
	if k.rec == nil {
		k.rec = trace.NewRecorder(ringCap)
		for _, vm := range k.vms {
			vm.rec = k.rec.VM(vm.ID, vm.name)
		}
	}
	return k.rec
}

// VMs returns the created virtual machines.
func (k *VMM) VMs() []*VM { return k.vms }

// Current returns the VM owning the processor, or nil.
func (k *VMM) Current() *VM {
	if k.cur < 0 || k.cur >= len(k.vms) {
		return nil
	}
	return k.vms[k.cur]
}

// allocPages carves n contiguous physical pages out of real memory.
// The root allocates exactly (FreePages and out-of-memory reporting
// stay precise for the serial harness); a worker shard over-allocates
// a span and serves subsequent requests from it without locking.
func (k *VMM) allocPages(n uint32) (uint32, error) {
	p, err := k.allocPagesRaw(n)
	if err != nil {
		return 0, err
	}
	return p, k.zeroPages(p, n)
}

// allocPagesRaw carves page frames without zeroing them. Callers that
// fully initialize the run (shadow-table construction, COW page
// copies) skip the memclr; everything else goes through allocPages.
func (k *VMM) allocPagesRaw(n uint32) (uint32, error) {
	if k.alloc.spanLeft >= n && n > 0 {
		p := k.alloc.spanPage
		k.alloc.spanPage += n
		k.alloc.spanLeft -= n
		return p, nil
	}
	want := n
	if k.parent != nil && want < allocSpanPages {
		want = allocSpanPages
	}
	k.shared.mu.Lock()
	free := k.Mem.Pages() - k.shared.nextPage
	if want > free {
		want = n // batch does not fit; fall back to the exact request
	}
	if n > free {
		k.shared.mu.Unlock()
		return 0, fmt.Errorf("vmm: out of physical memory (%d pages requested, %d free)",
			n, free)
	}
	p := k.shared.nextPage
	k.shared.nextPage += want
	k.shared.mu.Unlock()
	if want > n {
		// Park any old span remainder as a recycled run, then adopt the
		// new span's tail as the private span.
		if k.alloc.spanLeft > 0 {
			k.freeRun(k.alloc.spanPage, k.alloc.spanLeft)
		}
		k.alloc.spanPage = p + n
		k.alloc.spanLeft = want - n
	}
	return p, nil
}

// zeroPages clears n page frames starting at p (allocPages' contract:
// carved pages come back zero regardless of their provenance).
func (k *VMM) zeroPages(p, n uint32) error {
	return k.Mem.ZeroRun(p, n)
}

// allocRun allocates a run of n pages for shadow-table storage,
// preferring recycled runs over the bump allocator — first from this
// instance's private cache, then from the global pool (a worker shard
// pulls a small batch under one lock so repeated allocations stay
// local). Runs are handed back with stale contents — pooled runs carry
// the previous owner's PTEs and carved runs skip the memclr — so every
// caller must initialize the run (clear-on-reuse restores the null-PTE
// default; COW breaks copy a whole page over it).
func (k *VMM) allocRun(n uint32) (uint32, error) {
	if local := k.alloc.runs[n]; len(local) > 0 {
		p := local[len(local)-1]
		k.alloc.runs[n] = local[:len(local)-1]
		k.Stats.ShadowPoolHits++
		return p, nil
	}
	k.shared.mu.Lock()
	if runs := k.shared.pageRuns[n]; len(runs) > 0 {
		take := 1
		if k.parent != nil && len(runs) > 1 {
			take = min(len(runs), runRefillBatch)
		}
		grabbed := runs[len(runs)-take:]
		k.shared.pageRuns[n] = runs[:len(runs)-take]
		k.shared.mu.Unlock()
		p := grabbed[len(grabbed)-1]
		if take > 1 {
			if k.alloc.runs == nil {
				k.alloc.runs = make(map[uint32][]uint32)
			}
			k.alloc.runs[n] = append(k.alloc.runs[n], grabbed[:len(grabbed)-1]...)
		}
		k.Stats.ShadowPoolHits++
		return p, nil
	}
	k.shared.mu.Unlock()
	k.Stats.ShadowPoolMisses++
	return k.allocPagesRaw(n)
}

// takeRun takes a recycled run of exactly n pages if one is pooled,
// without touching the shadow-pool statistics — it backs CreateVM's
// reuse of destroyed-VM memory, and the pool is empty on monitors that
// never destroy, so the counters (and allocation behavior) of every
// existing harness stay byte-identical. The run comes back with stale
// contents; the caller zeroes it and drops cached decodes.
func (k *VMM) takeRun(n uint32) (uint32, bool) {
	if local := k.alloc.runs[n]; len(local) > 0 {
		p := local[len(local)-1]
		k.alloc.runs[n] = local[:len(local)-1]
		return p, true
	}
	k.shared.mu.Lock()
	defer k.shared.mu.Unlock()
	if runs := k.shared.pageRuns[n]; len(runs) > 0 {
		p := runs[len(runs)-1]
		k.shared.pageRuns[n] = runs[:len(runs)-1]
		return p, true
	}
	return 0, false
}

// freeRun parks a page run for recycling. The root goes straight to
// the global pool (its freeing sites are single-threaded); a worker
// shard keeps the run in its private cache — the common halt-on-shard
// path then costs no lock at all — and spills half of an overfull size
// class back to the global pool so no worker hoards the free store.
func (k *VMM) freeRun(page, n uint32) {
	if n == 0 {
		return
	}
	if k.parent == nil {
		k.shared.mu.Lock()
		k.shared.pageRuns[n] = append(k.shared.pageRuns[n], page)
		k.shared.mu.Unlock()
		return
	}
	if k.alloc.runs == nil {
		k.alloc.runs = make(map[uint32][]uint32)
	}
	local := append(k.alloc.runs[n], page)
	if len(local) > runCacheMax {
		spill := len(local) / 2
		k.shared.mu.Lock()
		k.shared.pageRuns[n] = append(k.shared.pageRuns[n], local[:spill]...)
		k.shared.mu.Unlock()
		local = append(local[:0], local[spill:]...)
	}
	k.alloc.runs[n] = local
}

// spillAllocCache returns a worker shard's cached runs to the global
// pool. Called at the merge barrier so runs released by VMs that
// halted on this shard (and any span remainder's reuse value) become
// visible to the root's next CreateVM. The span itself stays with the
// shard — shards are reused across runs and keep their working set.
func (k *VMM) spillAllocCache() {
	if len(k.alloc.runs) == 0 {
		return
	}
	k.shared.mu.Lock()
	for n, runs := range k.alloc.runs {
		if len(runs) > 0 {
			k.shared.pageRuns[n] = append(k.shared.pageRuns[n], runs...)
		}
		delete(k.alloc.runs, n)
	}
	k.shared.mu.Unlock()
}

// Release returns the monitor's physical memory to the backing-store
// pool (mem.Release), zeroing only the extent the bump allocator ever
// handed out — everything the VMM or its VMs wrote lands in carved
// pages (or page 0), so the rest of the buffer is still zero. The
// monitor must not be used afterwards: every memory access fails as a
// bus error. Harness code calls this after reading a finished
// machine's statistics so the next machine reuses the 16 MB buffer.
func (k *VMM) Release() {
	if k.parent != nil {
		return
	}
	k.shared.mu.Lock()
	dirty := k.shared.nextPage * vax.PageSize
	k.shared.mu.Unlock()
	if k.cfg.MemCache != nil {
		k.cfg.MemCache.Release(k.Mem, dirty)
		return
	}
	k.Mem.Release(dirty)
}

// FreePages reports how many physical pages remain unallocated.
func (k *VMM) FreePages() uint32 {
	k.shared.mu.Lock()
	defer k.shared.mu.Unlock()
	return k.Mem.Pages() - k.shared.nextPage
}

// CarvedPages reports the bump allocator's high-water mark: the real
// page frames ever handed out (the allocator never reclaims, so this is
// also the monitor's resident footprint in pages). With COW cloning it
// can sit far below NominalPages — that gap is the overcommit.
func (k *VMM) CarvedPages() uint32 {
	k.shared.mu.Lock()
	defer k.shared.mu.Unlock()
	return k.shared.nextPage
}

// NominalPages sums every VM's configured memory in pages — what the
// fleet would occupy if each clone held private copies of all its
// pages. Clones make this exceed physical memory; CarvedPages is what
// is actually backed.
func (k *VMM) NominalPages() uint32 {
	var n uint32
	for _, vm := range k.vms {
		n += vm.MemSize / vax.PageSize
	}
	return n
}

// cowShared reports whether a real page frame currently backs more than
// one VM. Safe from worker shards: the refs pointer is published before
// any parallel run starts and the counters are atomics.
func (k *VMM) cowShared(frame uint32) bool {
	r := k.shared.refs
	return r != nil && r.Shared(frame)
}

// VMMCycles returns the cycles consumed by VMM housekeeping that is
// attributable to no VM: world-switch windows and tick-wide work done
// on behalf of the whole machine. Per-VM CyclesUsed excludes these, so
// isolation comparisons between VMs stay honest.
func (k *VMM) VMMCycles() uint64 { return k.vmmCycles }

// Run starts (or continues) executing virtual machines for at most
// maxSteps processor steps (0 = until everything halts).
//
// With Config.Workers > 1, more than one live VM and no fault injector
// attached, the parallel engine runs instead and maxSteps bounds each
// VM's worker rather than the machine; everything else uses the
// deterministic serial scheduler.
func (k *VMM) Run(maxSteps uint64) uint64 {
	if k.parent == nil && k.cfg.Workers > 1 && k.faults == nil && k.liveVMs() > 1 {
		return k.RunParallel(k.cfg.Workers, maxSteps)
	}
	if k.Current() == nil {
		k.scheduleNext()
	}
	if !k.cfg.Recover {
		return k.CPU.Run(maxSteps)
	}
	// With the supervisor armed, a machine halt may mean "every live VM
	// is dead but some are recoverable": recover them and keep going.
	// (Deaths while other VMs stay runnable are recovered by the tick
	// handler without the machine ever halting.)
	total := k.CPU.Run(maxSteps)
	for k.CPU.Halted && (maxSteps == 0 || total < maxSteps) {
		if !k.recoverPending() {
			break
		}
		k.CPU.ClearHalt()
		if k.Current() == nil {
			k.scheduleNext()
		}
		if k.CPU.Halted {
			break
		}
		var budget uint64
		if maxSteps > 0 {
			budget = maxSteps - total
		}
		total += k.CPU.Run(budget)
	}
	return total
}

// liveVMs counts VMs that have not halted.
func (k *VMM) liveVMs() int {
	n := 0
	for _, vm := range k.vms {
		if !vm.halted {
			n++
		}
	}
	return n
}

// compressMode maps a VM access mode to the real mode it executes in
// (Figure 3): virtual kernel shares real executive with virtual
// executive; the outer modes map to themselves.
func compressMode(m vax.Mode) vax.Mode {
	if m == vax.Kernel {
		return vax.Executive
	}
	return m
}

// charge adds VMM emulation-path cycles, scaled by the configured cost
// factor (CostScalePercent). Direct guest execution is never scaled:
// the factor models only how heavy the monitor's software paths are,
// which is what the sensitivity experiment varies.
func (k *VMM) charge(n uint64) {
	scale := uint64(k.cfg.CostScalePercent)
	if scale == 0 {
		scale = 100
	}
	k.CPU.AddCycles(n * scale / 100)
}
