package asm

import (
	"math/rand"
	"strings"
	"testing"
)

// Robustness: no input text may panic the assembler, and no byte
// sequence may panic the disassembler. Errors are fine; panics are not.

func TestAssemblerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pieces := []string{
		"movl", "addl3", "chmk", "brb", ".long", ".org", ".byte", ".ascii",
		"#", "@#", "@", "(", ")", "+", "-", "r0", "r15", "sp", "pc", "[", "]",
		"label:", "=", "0x", "start", ",", ";", "\"", "\t", " ", "\n", "99",
		".align", ".space", "calls", "probevmr", "movc3",
	}
	for trial := 0; trial < 500; trial++ {
		var b strings.Builder
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic %v on input %q", r, src)
				}
			}()
			_, _ = Assemble(src, uint32(rng.Intn(1<<20)))
		}()
	}
}

func TestDisassemblerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 2000; trial++ {
		code := make([]byte, rng.Intn(16))
		rng.Read(code)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic %v on code %x", r, code)
				}
			}()
			_, _, _ = Disassemble(code, uint32(rng.Intn(1<<30)))
			_ = DisassembleAll(code, 0)
		}()
	}
}
