package asm

import (
	"fmt"
	"strings"

	"repro/internal/vax"
)

// Disassembler: the inverse of the assembler, for debugging guests and
// for the round-trip property tests. It decodes one instruction at a
// time from a byte slice using the same instruction table the
// assembler encodes from.

var mnemonics = buildMnemonics()

// buildMnemonics inverts the instruction table, preferring the
// canonical name when opcodes alias (bcc/bgequ, bcs/blssu).
func buildMnemonics() map[uint16]struct {
	name string
	ops  []opdesc
} {
	out := make(map[uint16]struct {
		name string
		ops  []opdesc
	})
	for name, ins := range instructions {
		if prev, ok := out[ins.opcode]; ok && prev.name <= name {
			continue // keep the lexically first alias
		}
		out[ins.opcode] = struct {
			name string
			ops  []opdesc
		}{name, ins.ops}
	}
	return out
}

// Disassemble decodes the instruction at code[0:], assuming it is
// located at address pc, returning its text and encoded length.
func Disassemble(code []byte, pc uint32) (string, int, error) {
	if len(code) == 0 {
		return "", 0, fmt.Errorf("disasm: empty")
	}
	op := uint16(code[0])
	n := 1
	if code[0] == vax.ExtPrefix {
		if len(code) < 2 {
			return "", 0, fmt.Errorf("disasm: truncated extended opcode")
		}
		op = 0xFD00 | uint16(code[1])
		n = 2
	}
	ins, ok := mnemonics[op]
	if !ok {
		return fmt.Sprintf(".byte %#02x", code[0]), 1, nil
	}
	parts := make([]string, 0, len(ins.ops))
	for _, d := range ins.ops {
		text, used, err := disasmOperand(code[n:], pc+uint32(n), d)
		if err != nil {
			return "", 0, fmt.Errorf("disasm %s: %w", ins.name, err)
		}
		n += used
		parts = append(parts, text)
	}
	if len(parts) == 0 {
		return ins.name, n, nil
	}
	return ins.name + " " + strings.Join(parts, ", "), n, nil
}

var regNames = [16]string{
	"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7",
	"r8", "r9", "r10", "r11", "ap", "fp", "sp", "pc",
}

func disasmOperand(code []byte, pc uint32, d opdesc) (string, int, error) {
	need := func(n int) error {
		if len(code) < n {
			return fmt.Errorf("truncated operand")
		}
		return nil
	}
	rdU := func(at, n int) uint32 {
		var v uint32
		for i := 0; i < n; i++ {
			v |= uint32(code[at+i]) << (8 * i)
		}
		return v
	}

	// Branch displacements.
	if d.acc == accBranchB {
		if err := need(1); err != nil {
			return "", 0, err
		}
		return fmt.Sprintf("%#x", pc+1+uint32(int32(int8(code[0])))), 1, nil
	}
	if d.acc == accBranchW {
		if err := need(2); err != nil {
			return "", 0, err
		}
		return fmt.Sprintf("%#x", pc+2+uint32(int32(int16(rdU(0, 2))))), 2, nil
	}

	if err := need(1); err != nil {
		return "", 0, err
	}
	spec := code[0]
	mode := spec >> 4
	rn := spec & 0xF
	switch {
	case mode < 4:
		return fmt.Sprintf("#%d", spec&0x3F), 1, nil
	case mode == 4:
		base, used, err := disasmOperand(code[1:], pc+1, d)
		if err != nil {
			return "", 0, err
		}
		return fmt.Sprintf("%s[%s]", base, regNames[rn]), 1 + used, nil
	case mode == 5:
		return regNames[rn], 1, nil
	case mode == 6:
		return "(" + regNames[rn] + ")", 1, nil
	case mode == 7:
		return "-(" + regNames[rn] + ")", 1, nil
	case mode == 8:
		if rn == 15 { // immediate
			if err := need(1 + d.size); err != nil {
				return "", 0, err
			}
			return fmt.Sprintf("#%#x", rdU(1, d.size)), 1 + d.size, nil
		}
		return "(" + regNames[rn] + ")+", 1, nil
	case mode == 9:
		if rn == 15 { // absolute
			if err := need(5); err != nil {
				return "", 0, err
			}
			return fmt.Sprintf("@#%#x", rdU(1, 4)), 5, nil
		}
		return "@(" + regNames[rn] + ")+", 1, nil
	default:
		var disp int32
		var used int
		switch mode &^ 1 {
		case 0xA:
			if err := need(2); err != nil {
				return "", 0, err
			}
			disp, used = int32(int8(code[1])), 2
		case 0xC:
			if err := need(3); err != nil {
				return "", 0, err
			}
			disp, used = int32(int16(rdU(1, 2))), 3
		default:
			if err := need(5); err != nil {
				return "", 0, err
			}
			disp, used = int32(rdU(1, 4)), 5
		}
		at := ""
		if mode&1 == 1 {
			at = "@"
		}
		return fmt.Sprintf("%s%d(%s)", at, disp, regNames[rn]), used, nil
	}
}

// DisassembleAll renders a whole code region, one instruction per line.
func DisassembleAll(code []byte, base uint32) []string {
	var out []string
	off := 0
	for off < len(code) {
		text, n, err := Disassemble(code[off:], base+uint32(off))
		if err != nil {
			out = append(out, fmt.Sprintf("%08x: ??? (%v)", base+uint32(off), err))
			break
		}
		out = append(out, fmt.Sprintf("%08x: %s", base+uint32(off), text))
		off += n
	}
	return out
}
