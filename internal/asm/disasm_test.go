package asm

import (
	"math/rand"
	"strings"
	"testing"
)

func TestDisassembleBasics(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"nop", "nop"},
		{"movl r0, r1", "movl r0, r1"},
		{"movl #5, r0", "movl #5, r0"},
		{"movl (r2)+, -(sp)", "movl (r2)+, -(sp)"},
		{"movl @#0x1234, r1", "movl @#0x1234, r1"},
		{"movl 4(r2), r3", "movl 4(r2), r3"},
		{"movl @-4(fp), r3", "movl @-4(fp), r3"},
		{"chmk #3", "chmk #3"},
		{"wait", "wait"},
		{"prober #3, #4, (r0)", "prober #3, #4, (r0)"},
		{"rei", "rei"},
		{"calls #2, (r1)", "calls #2, (r1)"},
	}
	for _, c := range cases {
		p := mustAssemble(t, c.src, 0x1000)
		got, n, err := Disassemble(p.Code, 0x1000)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if n != len(p.Code) {
			t.Errorf("%q: consumed %d of %d bytes", c.src, n, len(p.Code))
		}
		if got != c.want {
			t.Errorf("%q: disassembled to %q", c.src, got)
		}
	}
}

func TestDisassembleBranchTargets(t *testing.T) {
	p := mustAssemble(t, "start:\tnop\n\tbrb start", 0x2000)
	text, _, err := Disassemble(p.Code[1:], 0x2001)
	if err != nil {
		t.Fatal(err)
	}
	if text != "brb 0x2000" {
		t.Errorf("got %q", text)
	}
}

func TestDisassembleUnknownByte(t *testing.T) {
	text, n, err := Disassemble([]byte{0xCF}, 0)
	if err != nil || n != 1 || !strings.HasPrefix(text, ".byte") {
		t.Errorf("got %q %d %v", text, n, err)
	}
}

func TestDisassembleTruncated(t *testing.T) {
	if _, _, err := Disassemble(nil, 0); err == nil {
		t.Error("empty input should error")
	}
	if _, _, err := Disassemble([]byte{0xFD}, 0); err == nil {
		t.Error("truncated extended opcode should error")
	}
	if _, _, err := Disassemble([]byte{0xD0, 0x8F, 0x01}, 0); err == nil {
		t.Error("truncated immediate should error")
	}
}

func TestDisassembleAll(t *testing.T) {
	p := mustAssemble(t, "start:\tmovl #1, r0\n\tincl r0\n\thalt", 0x400)
	lines := DisassembleAll(p.Code, 0x400)
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	if !strings.Contains(lines[0], "movl") || !strings.Contains(lines[2], "halt") {
		t.Errorf("lines: %v", lines)
	}
}

// TestAssembleDisassembleRoundTrip is the property test: generate
// random instructions from the mnemonic table with random (valid)
// operands, assemble, disassemble, re-assemble, and require identical
// machine code.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))

	// Mnemonics whose operands the generator can produce.
	names := make([]string, 0, len(instructions))
	for name := range instructions {
		names = append(names, name)
	}
	// Deterministic order for the RNG stream.
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}

	genOperand := func(d opdesc) string {
		if d.acc == accBranchB || d.acc == accBranchW {
			return "start" // branch back to the label
		}
		for {
			switch rng.Intn(7) {
			case 0:
				if d.acc == accAddr || d.acc == accWrite {
					continue
				}
				return "#5" // short literal
			case 1:
				if d.acc == accAddr {
					continue
				}
				return regNames[rng.Intn(13)] // r0..fp (avoid sp/pc quirks)
			case 2:
				return "(" + regNames[rng.Intn(12)] + ")"
			case 3:
				return "(" + regNames[rng.Intn(12)] + ")+"
			case 4:
				return "-(" + regNames[rng.Intn(12)] + ")"
			case 5:
				return "@#0x2000"
			default:
				return "8(r3)"
			}
		}
	}

	const trials = 400
	for i := 0; i < trials; i++ {
		name := names[rng.Intn(len(names))]
		ins := instructions[name]
		ops := make([]string, len(ins.ops))
		for j, d := range ins.ops {
			ops[j] = genOperand(d)
		}
		src := "start:\t" + name
		if len(ops) > 0 {
			src += " " + strings.Join(ops, ", ")
		}
		p1, err := Assemble(src, 0x1000)
		if err != nil {
			t.Fatalf("assemble %q: %v", src, err)
		}
		text, n, err := Disassemble(p1.Code, 0x1000)
		if err != nil {
			t.Fatalf("disassemble %q (%x): %v", src, p1.Code, err)
		}
		if n != len(p1.Code) {
			t.Fatalf("%q: disassembler consumed %d of %d bytes", src, n, len(p1.Code))
		}
		// Re-assemble the disassembly; the encodings must match.
		p2, err := Assemble("start:\t"+text, 0x1000)
		if err != nil {
			t.Fatalf("re-assemble %q (from %q): %v", text, src, err)
		}
		if string(p1.Code) != string(p2.Code) {
			t.Fatalf("round trip changed encoding:\n  src  %q -> %x\n  disa %q -> %x",
				src, p1.Code, text, p2.Code)
		}
	}
}
