package asm

import (
	"strconv"
	"strings"
)

// Operand encoding: translate one operand's text into a VAX operand
// specifier for the given instruction table entry.

func (a *assembler) operand(text string, d opdesc) error {
	if text == "" {
		return a.errf("empty operand")
	}

	// Branch displacements: bare expression, encoded relative to the PC
	// after the displacement field.
	if d.acc == accBranchB || d.acc == accBranchW {
		size := 1
		if d.acc == accBranchW {
			size = 2
		}
		off := uint32(len(a.code))
		if size == 1 {
			a.emit(0)
		} else {
			a.emitWord(0)
		}
		a.fixups = append(a.fixups, fixup{
			offset: off, size: size, expr: text,
			branch: true, nextPC: a.pc(), line: a.line,
		})
		return nil
	}

	switch {
	case strings.HasPrefix(text, "#"):
		return a.immediate(text[1:], d)

	case strings.HasPrefix(text, "@#"):
		a.emit(0x9F)
		return a.emitExprLong(text[2:])

	case strings.HasPrefix(text, "@"):
		// Displacement deferred @disp(Rn), or PC-relative deferred
		// @expr (the operand's address is stored at expr).
		if disp, reg, ok := splitDisp(text[1:]); ok {
			return a.dispOperand(disp, reg, true)
		}
		a.emit(0xFF) // longword displacement deferred off PC
		off := uint32(len(a.code))
		a.emitLong(0)
		a.fixups = append(a.fixups, fixup{
			offset: off, size: 4, expr: text[1:],
			branch: true, nextPC: a.pc(), line: a.line,
		})
		return nil

	case strings.HasPrefix(text, "-(") && strings.HasSuffix(text, ")"):
		reg, ok := registers[strings.ToLower(text[2:len(text)-1])]
		if !ok {
			return a.errf("bad register in %q", text)
		}
		a.emit(byte(0x70 | reg))
		return nil

	case strings.HasPrefix(text, "(") && strings.HasSuffix(text, ")+"):
		reg, ok := registers[strings.ToLower(text[1:len(text)-2])]
		if !ok {
			return a.errf("bad register in %q", text)
		}
		a.emit(byte(0x80 | reg))
		return nil

	case strings.HasPrefix(text, "(") && strings.HasSuffix(text, ")"):
		reg, ok := registers[strings.ToLower(text[1:len(text)-1])]
		if !ok {
			return a.errf("bad register in %q", text)
		}
		a.emit(byte(0x60 | reg))
		return nil
	}

	// Plain register?
	if reg, ok := registers[strings.ToLower(text)]; ok {
		if d.acc == accAddr {
			return a.errf("register %q invalid in address context", text)
		}
		a.emit(byte(0x50 | reg))
		return nil
	}

	// Displacement mode disp(Rn)?
	if disp, reg, ok := splitDisp(text); ok {
		return a.dispOperand(disp, reg, false)
	}

	// Bare expression: absolute reference @#expr.
	a.emit(0x9F)
	return a.emitExprLong(text)
}

// immediate encodes #expr: a short literal when the value is known and
// fits in 6 bits (and the context allows it), otherwise autoincrement-
// of-PC immediate sized to the operand width.
func (a *assembler) immediate(expr string, d opdesc) error {
	if d.acc == accAddr {
		return a.errf("immediate invalid in address context")
	}
	if d.acc == accWrite {
		return a.errf("immediate invalid as a result operand")
	}
	if v, err := a.evalNow(expr); err == nil && v < 64 {
		a.emit(byte(v)) // short literal
		return nil
	}
	a.emit(0x8F)
	switch d.size {
	case 1:
		v, err := a.evalNow(expr)
		if err != nil {
			return err
		}
		if v > 0xFF && v < 0xFFFFFF00 {
			return a.errf("immediate %#x does not fit in a byte", v)
		}
		a.emit(byte(v))
	case 2:
		v, err := a.evalNow(expr)
		if err != nil {
			return err
		}
		if v > 0xFFFF && v < 0xFFFF0000 {
			return a.errf("immediate %#x does not fit in a word", v)
		}
		a.emitWord(uint16(v))
	default:
		return a.emitExprLong(expr)
	}
	return nil
}

// dispOperand encodes disp(Rn) or @disp(Rn). Known displacements pick
// the shortest form; forward references use the long form.
func (a *assembler) dispOperand(dispExpr string, reg int, deferred bool) error {
	var deferBit byte
	if deferred {
		deferBit = 0x10
	}
	if dispExpr == "" {
		dispExpr = "0"
	}
	v, err := a.evalNow(dispExpr)
	if err != nil {
		// Forward reference: long displacement with fixup.
		a.emit(0xE0|deferBit|byte(reg), 0, 0, 0, 0)
		a.fixups = append(a.fixups, fixup{
			offset: uint32(len(a.code) - 4), size: 4, expr: dispExpr, line: a.line,
		})
		return nil
	}
	s := int32(v)
	switch {
	case s >= -128 && s <= 127:
		a.emit(0xA0|deferBit|byte(reg), byte(int8(s)))
	case s >= -32768 && s <= 32767:
		a.emit(0xC0 | deferBit | byte(reg))
		a.emitWord(uint16(int16(s)))
	default:
		a.emit(0xE0 | deferBit | byte(reg))
		a.emitLong(v)
	}
	return nil
}

// emitExprLong emits a longword expression, via fixup if not yet known.
func (a *assembler) emitExprLong(expr string) error {
	if v, err := a.evalNow(expr); err == nil {
		a.emitLong(v)
		return nil
	}
	a.fixups = append(a.fixups, fixup{offset: uint32(len(a.code)), size: 4, expr: expr, line: a.line})
	a.emitLong(0)
	return nil
}

// --- expression evaluation ---

// evalNow evaluates an expression using only symbols defined so far.
// "." names the current location counter.
func (a *assembler) evalNow(expr string) (uint32, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, a.errf("empty expression")
	}
	var total uint32
	neg := false
	rest := expr
	first := true
	for rest != "" {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		if !first || rest[0] == '+' || rest[0] == '-' {
			switch rest[0] {
			case '+':
				neg = false
				rest = rest[1:]
			case '-':
				neg = true
				rest = rest[1:]
			default:
				return 0, a.errf("expected operator in %q", expr)
			}
			rest = strings.TrimSpace(rest)
		}
		term, remainder, err := a.term(rest)
		if err != nil {
			return 0, err
		}
		if neg {
			total -= term
		} else {
			total += term
		}
		rest = remainder
		first = false
	}
	return total, nil
}

// term parses one number or symbol from the front of s.
func (a *assembler) term(s string) (uint32, string, error) {
	i := 0
	for i < len(s) && s[i] != '+' && s[i] != '-' && s[i] != ' ' && s[i] != '\t' {
		i++
	}
	tok, rest := s[:i], s[i:]
	if tok == "" {
		return 0, "", a.errf("empty term")
	}
	if tok == "." {
		return a.pc(), rest, nil
	}
	if v, err := strconv.ParseUint(tok, 0, 64); err == nil {
		return uint32(v), rest, nil
	}
	if v, ok := a.symbols[tok]; ok {
		return v, rest, nil
	}
	return 0, "", a.errf("undefined symbol %q", tok)
}

// --- lexical helpers ---

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case ';':
			if !inStr {
				return strings.TrimRight(s[:i], " \t\r")
			}
		}
	}
	return strings.TrimRight(s, " \t\r")
}

func splitWord(s string) (string, string) {
	s = strings.TrimSpace(s)
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return s[:i], s[i+1:]
		}
	}
	return s, ""
}

// splitOperands splits on commas outside string quotes.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// splitDisp splits "disp(Rn)" into the displacement expression and the
// register number.
func splitDisp(s string) (string, int, bool) {
	open := strings.LastIndex(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", 0, false
	}
	reg, ok := registers[strings.ToLower(s[open+1:len(s)-1])]
	if !ok {
		return "", 0, false
	}
	return strings.TrimSpace(s[:open]), reg, true
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '$':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
