// Package asm is a small two-operand-syntax VAX assembler used to build
// the guest programs and the miniature guest operating system of this
// reproduction. It supports labels, numeric and symbolic expressions,
// the implemented addressing modes, and data directives, assembling to
// real VAX machine code in a single pass with fixups for forward
// references.
//
// Syntax summary (one statement per line, ';' starts a comment):
//
//	label:  movl  #5, r0          ; immediate / short literal
//	        movl  r0, (r1)        ; register, register deferred
//	        movl  (r1)+, -(sp)    ; autoincrement, autodecrement
//	        movl  8(r2), @4(r3)   ; displacement, displacement deferred
//	        movl  @#0x80000000, r4; absolute
//	        movl  var, r5         ; bare symbol = absolute reference
//	        brb   label           ; branch displacement
//	        chmk  #3
//	        .org   0x400
//	        .long  1, label, 3
//	        .word  5
//	        .byte  1, 2, 3
//	        .ascii "text"
//	        .space 64
//	        .align 4
//	sym     = 0x1234              ; symbol definition
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/vax"
)

// Program is the result of assembly.
type Program struct {
	Origin  uint32
	Code    []byte
	Symbols map[string]uint32
}

// End returns the first address past the assembled code.
func (p *Program) End() uint32 { return p.Origin + uint32(len(p.Code)) }

// Symbol returns the value of a defined symbol.
func (p *Program) Symbol(name string) (uint32, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// MustSymbol returns a symbol value, panicking if undefined (for use in
// tests and fixed guest images).
func (p *Program) MustSymbol(name string) uint32 {
	v, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("asm: undefined symbol %q", name))
	}
	return v
}

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// operand access classes for the instruction table.
type access uint8

const (
	accRead  access = iota // value operand
	accWrite               // result operand (same encoding as read)
	accAddr                // address operand (MOVAx, JMP, JSB, PROBE base)
	accBranchB
	accBranchW
)

type opdesc struct {
	size int
	acc  access
}

type insn struct {
	opcode uint16
	ops    []opdesc
}

func rd(size int) opdesc  { return opdesc{size, accRead} }
func wr(size int) opdesc  { return opdesc{size, accWrite} }
func adr(size int) opdesc { return opdesc{size, accAddr} }

var instructions = map[string]insn{
	"halt":   {vax.OpHALT, nil},
	"nop":    {vax.OpNOP, nil},
	"rei":    {vax.OpREI, nil},
	"bpt":    {vax.OpBPT, nil},
	"rsb":    {vax.OpRSB, nil},
	"ldpctx": {vax.OpLDPCTX, nil},
	"svpctx": {vax.OpSVPCTX, nil},
	"xfc":    {vax.OpXFC, nil},

	"prober": {vax.OpPROBER, []opdesc{rd(1), rd(2), adr(1)}},
	"probew": {vax.OpPROBEW, []opdesc{rd(1), rd(2), adr(1)}},

	"wait":     {vax.OpWAIT, nil},
	"probevmr": {vax.OpPROBEVMR, []opdesc{rd(1), adr(1)}},
	"probevmw": {vax.OpPROBEVMW, []opdesc{rd(1), adr(1)}},

	"chmk": {vax.OpCHMK, []opdesc{rd(2)}},
	"chme": {vax.OpCHME, []opdesc{rd(2)}},
	"chms": {vax.OpCHMS, []opdesc{rd(2)}},
	"chmu": {vax.OpCHMU, []opdesc{rd(2)}},

	"movpsl": {vax.OpMOVPSL, []opdesc{wr(4)}},
	"mtpr":   {vax.OpMTPR, []opdesc{rd(4), rd(4)}},
	"mfpr":   {vax.OpMFPR, []opdesc{rd(4), wr(4)}},

	"movl":   {vax.OpMOVL, []opdesc{rd(4), wr(4)}},
	"movw":   {vax.OpMOVW, []opdesc{rd(2), wr(2)}},
	"movb":   {vax.OpMOVB, []opdesc{rd(1), wr(1)}},
	"movzbl": {vax.OpMOVZBL, []opdesc{rd(1), wr(4)}},
	"movzwl": {vax.OpMOVZWL, []opdesc{rd(2), wr(4)}},
	"moval":  {vax.OpMOVAL, []opdesc{adr(4), wr(4)}},
	"movab":  {vax.OpMOVAB, []opdesc{adr(1), wr(4)}},
	"pushl":  {vax.OpPUSHL, []opdesc{rd(4)}},
	"clrl":   {vax.OpCLRL, []opdesc{wr(4)}},
	"clrw":   {vax.OpCLRW, []opdesc{wr(2)}},
	"clrb":   {vax.OpCLRB, []opdesc{wr(1)}},
	"tstl":   {vax.OpTSTL, []opdesc{rd(4)}},
	"tstw":   {vax.OpTSTW, []opdesc{rd(2)}},
	"tstb":   {vax.OpTSTB, []opdesc{rd(1)}},
	"mnegl":  {vax.OpMNEGL, []opdesc{rd(4), wr(4)}},
	"mcomb":  {vax.OpMCOMB, []opdesc{rd(1), wr(1)}},
	"incl":   {vax.OpINCL, []opdesc{wr(4)}},
	"decl":   {vax.OpDECL, []opdesc{wr(4)}},

	"cmpl": {vax.OpCMPL, []opdesc{rd(4), rd(4)}},
	"cmpw": {vax.OpCMPW, []opdesc{rd(2), rd(2)}},
	"cmpb": {vax.OpCMPB, []opdesc{rd(1), rd(1)}},
	"bitl": {vax.OpBITL, []opdesc{rd(4), rd(4)}},

	"addl2": {vax.OpADDL2, []opdesc{rd(4), wr(4)}},
	"addl3": {vax.OpADDL3, []opdesc{rd(4), rd(4), wr(4)}},
	"subl2": {vax.OpSUBL2, []opdesc{rd(4), wr(4)}},
	"subl3": {vax.OpSUBL3, []opdesc{rd(4), rd(4), wr(4)}},
	"mull2": {vax.OpMULL2, []opdesc{rd(4), wr(4)}},
	"mull3": {vax.OpMULL3, []opdesc{rd(4), rd(4), wr(4)}},
	"divl2": {vax.OpDIVL2, []opdesc{rd(4), wr(4)}},
	"divl3": {vax.OpDIVL3, []opdesc{rd(4), rd(4), wr(4)}},
	"bisl2": {vax.OpBISL2, []opdesc{rd(4), wr(4)}},
	"bisl3": {vax.OpBISL3, []opdesc{rd(4), rd(4), wr(4)}},
	"bicl2": {vax.OpBICL2, []opdesc{rd(4), wr(4)}},
	"bicl3": {vax.OpBICL3, []opdesc{rd(4), rd(4), wr(4)}},
	"xorl2": {vax.OpXORL2, []opdesc{rd(4), wr(4)}},
	"xorl3": {vax.OpXORL3, []opdesc{rd(4), rd(4), wr(4)}},
	"ashl":  {vax.OpASHL, []opdesc{rd(1), rd(4), wr(4)}},

	"brb":   {vax.OpBRB, []opdesc{{1, accBranchB}}},
	"brw":   {vax.OpBRW, []opdesc{{2, accBranchW}}},
	"bneq":  {vax.OpBNEQ, []opdesc{{1, accBranchB}}},
	"beql":  {vax.OpBEQL, []opdesc{{1, accBranchB}}},
	"bgtr":  {vax.OpBGTR, []opdesc{{1, accBranchB}}},
	"bleq":  {vax.OpBLEQ, []opdesc{{1, accBranchB}}},
	"bgeq":  {vax.OpBGEQ, []opdesc{{1, accBranchB}}},
	"blss":  {vax.OpBLSS, []opdesc{{1, accBranchB}}},
	"bgtru": {vax.OpBGTRU, []opdesc{{1, accBranchB}}},
	"blequ": {vax.OpBLEQU, []opdesc{{1, accBranchB}}},
	"bvc":   {vax.OpBVC, []opdesc{{1, accBranchB}}},
	"bvs":   {vax.OpBVS, []opdesc{{1, accBranchB}}},
	"bcc":   {vax.OpBCC, []opdesc{{1, accBranchB}}},
	"bcs":   {vax.OpBCS, []opdesc{{1, accBranchB}}},
	"bgequ": {vax.OpBCC, []opdesc{{1, accBranchB}}}, // alias of BCC
	"blssu": {vax.OpBCS, []opdesc{{1, accBranchB}}}, // alias of BCS
	"bsbb":  {vax.OpBSBB, []opdesc{{1, accBranchB}}},
	"bsbw":  {vax.OpBSBW, []opdesc{{2, accBranchW}}},
	"blbs":  {vax.OpBLBS, []opdesc{rd(4), {1, accBranchB}}},
	"blbc":  {vax.OpBLBC, []opdesc{rd(4), {1, accBranchB}}},

	"jmp": {vax.OpJMP, []opdesc{adr(4)}},
	"jsb": {vax.OpJSB, []opdesc{adr(4)}},

	"calls":  {vax.OpCALLS, []opdesc{rd(4), adr(1)}},
	"movc3":  {vax.OpMOVC3, []opdesc{rd(2), adr(1), adr(1)}},
	"cmpc3":  {vax.OpCMPC3, []opdesc{rd(2), adr(1), adr(1)}},
	"insque": {vax.OpINSQUE, []opdesc{adr(1), adr(1)}},
	"remque": {vax.OpREMQUE, []opdesc{adr(1), wr(4)}},
	"ret":    {vax.OpRET, nil},
	// The bit-branch base is a variable bit field ("vb"): registers and
	// addressable operands are both legal.
	"bbs": {vax.OpBBS, []opdesc{rd(4), rd(1), {1, accBranchB}}},
	"bbc": {vax.OpBBC, []opdesc{rd(4), rd(1), {1, accBranchB}}},

	"cvtbl":  {vax.OpCVTBL, []opdesc{rd(1), wr(4)}},
	"cvtbw":  {vax.OpCVTBW, []opdesc{rd(1), wr(2)}},
	"cvtwl":  {vax.OpCVTWL, []opdesc{rd(2), wr(4)}},
	"cvtwb":  {vax.OpCVTWB, []opdesc{rd(2), wr(1)}},
	"cvtlb":  {vax.OpCVTLB, []opdesc{rd(4), wr(1)}},
	"cvtlw":  {vax.OpCVTLW, []opdesc{rd(4), wr(2)}},
	"acbl":   {vax.OpACBL, []opdesc{rd(4), rd(4), wr(4), {2, accBranchW}}},
	"aoblss": {vax.OpAOBLSS, []opdesc{rd(4), wr(4), {1, accBranchB}}},
	"aobleq": {vax.OpAOBLEQ, []opdesc{rd(4), wr(4), {1, accBranchB}}},
	"sobgeq": {vax.OpSOBGEQ, []opdesc{wr(4), {1, accBranchB}}},
	"sobgtr": {vax.OpSOBGTR, []opdesc{wr(4), {1, accBranchB}}},
}

var registers = map[string]int{
	"r0": 0, "r1": 1, "r2": 2, "r3": 3, "r4": 4, "r5": 5, "r6": 6, "r7": 7,
	"r8": 8, "r9": 9, "r10": 10, "r11": 11, "r12": 12, "r13": 13, "r14": 14,
	"r15": 15, "ap": 12, "fp": 13, "sp": 14, "pc": 15,
}

// fixup records a forward reference to patch once the symbol resolves.
type fixup struct {
	offset uint32 // position in code
	size   int    // 1, 2 or 4 bytes
	expr   string // expression to evaluate
	branch bool   // patch a branch displacement relative to nextPC
	nextPC uint32 // PC after the displacement field (branch fixups)
	addend uint32
	line   int
}

type assembler struct {
	origin  uint32
	code    []byte
	symbols map[string]uint32
	fixups  []fixup
	line    int
}

// Assemble translates source into a Program loaded at origin.
func Assemble(src string, origin uint32) (*Program, error) {
	a := &assembler{origin: origin, symbols: make(map[string]uint32)}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		if err := a.statement(raw); err != nil {
			return nil, err
		}
	}
	if err := a.resolve(); err != nil {
		return nil, err
	}
	return &Program{Origin: origin, Code: a.code, Symbols: a.symbols}, nil
}

func (a *assembler) errf(format string, args ...interface{}) error {
	return &Error{Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) pc() uint32 { return a.origin + uint32(len(a.code)) }

func (a *assembler) emit(bs ...byte) { a.code = append(a.code, bs...) }

func (a *assembler) emitLong(v uint32) {
	a.emit(byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func (a *assembler) emitWord(v uint16) { a.emit(byte(v), byte(v>>8)) }

func (a *assembler) define(name string, v uint32) error {
	if _, dup := a.symbols[name]; dup {
		return a.errf("duplicate symbol %q", name)
	}
	a.symbols[name] = v
	return nil
}

// statement assembles one source line.
func (a *assembler) statement(raw string) error {
	line := stripComment(raw)
	// Labels (possibly several) terminate with ':'.
	for {
		trimmed := strings.TrimSpace(line)
		idx := strings.Index(trimmed, ":")
		if idx <= 0 || !isIdent(trimmed[:idx]) {
			line = trimmed
			break
		}
		if err := a.define(trimmed[:idx], a.pc()); err != nil {
			return err
		}
		line = trimmed[idx+1:]
	}
	if line == "" {
		return nil
	}
	// Symbol definition: name = expr.
	if eq := strings.Index(line, "="); eq > 0 {
		name := strings.TrimSpace(line[:eq])
		if isIdent(name) {
			v, err := a.evalNow(strings.TrimSpace(line[eq+1:]))
			if err != nil {
				return err
			}
			return a.define(name, v)
		}
	}
	op, rest := splitWord(line)
	op = strings.ToLower(op)
	if strings.HasPrefix(op, ".") {
		return a.directive(op, rest)
	}
	ins, ok := instructions[op]
	if !ok {
		return a.errf("unknown instruction %q", op)
	}
	return a.instruction(ins, splitOperands(rest))
}

func (a *assembler) directive(name, rest string) error {
	args := splitOperands(rest)
	switch name {
	case ".org":
		if len(args) != 1 {
			return a.errf(".org takes one argument")
		}
		v, err := a.evalNow(args[0])
		if err != nil {
			return err
		}
		if v < a.pc() {
			return a.errf(".org %#x is behind current location %#x", v, a.pc())
		}
		for a.pc() < v {
			a.emit(0)
		}
		return nil
	case ".long":
		for _, arg := range args {
			if v, err := a.evalNow(arg); err == nil {
				a.emitLong(v)
			} else {
				a.fixups = append(a.fixups, fixup{offset: uint32(len(a.code)), size: 4, expr: arg, line: a.line})
				a.emitLong(0)
			}
		}
		return nil
	case ".word":
		for _, arg := range args {
			v, err := a.evalNow(arg)
			if err != nil {
				return err
			}
			a.emitWord(uint16(v))
		}
		return nil
	case ".byte":
		for _, arg := range args {
			v, err := a.evalNow(arg)
			if err != nil {
				return err
			}
			a.emit(byte(v))
		}
		return nil
	case ".ascii", ".asciz":
		s, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return a.errf("bad string: %v", err)
		}
		a.emit([]byte(s)...)
		if name == ".asciz" {
			a.emit(0)
		}
		return nil
	case ".space":
		if len(args) != 1 {
			return a.errf(".space takes one argument")
		}
		n, err := a.evalNow(args[0])
		if err != nil {
			return err
		}
		for i := uint32(0); i < n; i++ {
			a.emit(0)
		}
		return nil
	case ".align":
		if len(args) != 1 {
			return a.errf(".align takes one argument")
		}
		n, err := a.evalNow(args[0])
		if err != nil {
			return err
		}
		if n == 0 || n&(n-1) != 0 {
			return a.errf(".align argument must be a power of two")
		}
		for a.pc()%n != 0 {
			a.emit(0)
		}
		return nil
	}
	return a.errf("unknown directive %q", name)
}

func (a *assembler) instruction(ins insn, operands []string) error {
	if len(operands) != len(ins.ops) {
		return a.errf("want %d operands, got %d", len(ins.ops), len(operands))
	}
	if ins.opcode > 0xFF {
		a.emit(vax.ExtPrefix, byte(ins.opcode))
	} else {
		a.emit(byte(ins.opcode))
	}
	for i, text := range operands {
		if err := a.operand(strings.TrimSpace(text), ins.ops[i]); err != nil {
			return err
		}
	}
	return nil
}

// resolve patches every fixup now that all symbols are defined.
func (a *assembler) resolve() error {
	for _, f := range a.fixups {
		a.line = f.line
		v, err := a.evalNow(f.expr)
		if err != nil {
			return err
		}
		v += f.addend
		if f.branch {
			disp := int64(v) - int64(f.nextPC)
			switch f.size {
			case 1:
				if disp < -128 || disp > 127 {
					return a.errf("branch to %q out of byte range (%d)", f.expr, disp)
				}
				a.code[f.offset] = byte(int8(disp))
			case 2:
				if disp < -32768 || disp > 32767 {
					return a.errf("branch to %q out of word range (%d)", f.expr, disp)
				}
				a.code[f.offset] = byte(disp)
				a.code[f.offset+1] = byte(disp >> 8)
			case 4:
				// PC-relative longword displacement: always in range.
				d := uint32(disp)
				for i := 0; i < 4; i++ {
					a.code[f.offset+uint32(i)] = byte(d >> (8 * i))
				}
			}
			continue
		}
		for i := 0; i < f.size; i++ {
			a.code[f.offset+uint32(i)] = byte(v >> (8 * i))
		}
	}
	return nil
}
